// Socket transport battery: UDS framing round-trips, the PR 2 delivery
// invariant (sent == delivered + dropped after Close), peer-death
// detection via the close handler, and oversized-frame rejection.

#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_annotations.h"
#include "net/socket_transport.h"

namespace jet::net {
namespace {

using std::chrono::milliseconds;

std::string MakeSocketPath(const char* tag) {
  std::string tmpl = std::string("/tmp/jetsock-") + tag + "-XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return tmpl + "/s.sock";
}

/// Collects inbound frames and the close signal from one connection.
struct Sink {
  jet::Mutex mu;
  jet::CondVar cv;
  std::vector<Bytes> frames JET_GUARDED_BY(mu);
  bool closed JET_GUARDED_BY(mu) = false;

  SocketConnection::FrameHandler frame_handler() {
    return [this](Bytes frame) {
      jet::MutexLock lock(mu);
      frames.push_back(std::move(frame));
      cv.NotifyAll();
    };
  }
  SocketConnection::CloseHandler close_handler() {
    return [this]() {
      jet::MutexLock lock(mu);
      closed = true;
      cv.NotifyAll();
    };
  }
  bool WaitForFrames(size_t n, int64_t timeout_ms = 10'000) {
    jet::MutexLock lock(mu);
    return cv.WaitFor(mu, milliseconds(timeout_ms),
                      [&]() JET_REQUIRES(mu) { return frames.size() >= n; });
  }
  bool WaitForClose(int64_t timeout_ms = 10'000) {
    jet::MutexLock lock(mu);
    return cv.WaitFor(mu, milliseconds(timeout_ms),
                      [&]() JET_REQUIRES(mu) { return closed; });
  }
};

/// A server + one accepted connection, the common fixture shape.
struct Rendezvous {
  std::unique_ptr<SocketServer> server;
  std::shared_ptr<SocketConnection> accepted;
  jet::Mutex mu;
  jet::CondVar cv;

  explicit Rendezvous(const std::string& path, Sink* server_sink) {
    auto s = SocketServer::ListenUnix(path);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    server = std::move(s.value());
    server->Start([this, server_sink](std::unique_ptr<SocketConnection> conn) {
      std::shared_ptr<SocketConnection> shared = std::move(conn);
      shared->Start(server_sink->frame_handler(), server_sink->close_handler());
      jet::MutexLock lock(mu);
      accepted = std::move(shared);
      cv.NotifyAll();
    });
  }
  ~Rendezvous() {
    // Join the accept thread before `cv`/`mu` are destroyed — it notifies
    // them from the accept handler.
    server->Stop();
  }
  std::shared_ptr<SocketConnection> WaitAccepted(int64_t timeout_ms = 10'000) {
    jet::MutexLock lock(mu);
    cv.WaitFor(mu, milliseconds(timeout_ms),
               [&]() JET_REQUIRES(mu) { return accepted != nullptr; });
    return accepted;
  }
};

TEST(SocketTransport, FramesRoundTripBothDirections) {
  const std::string path = MakeSocketPath("rt");
  Sink server_sink;
  Rendezvous rv(path, &server_sink);

  auto client = SocketConnection::ConnectUnixWithRetry(path, 5000);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Sink client_sink;
  client.value()->Start(client_sink.frame_handler(), client_sink.close_handler());

  for (int i = 0; i < 100; ++i) {
    Bytes frame(static_cast<size_t>(i + 1), static_cast<uint8_t>(i));
    ASSERT_TRUE(client.value()->SendFrame(std::move(frame)).ok());
  }
  ASSERT_TRUE(server_sink.WaitForFrames(100));
  {
    jet::MutexLock lock(server_sink.mu);
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(server_sink.frames[static_cast<size_t>(i)].size(),
                static_cast<size_t>(i + 1));
      EXPECT_EQ(server_sink.frames[static_cast<size_t>(i)][0], static_cast<uint8_t>(i));
    }
  }

  auto accepted = rv.WaitAccepted();
  ASSERT_NE(accepted, nullptr);
  ASSERT_TRUE(accepted->SendFrame(Bytes{42}).ok());
  ASSERT_TRUE(client_sink.WaitForFrames(1));

  client.value()->Close();
  accepted->Close();
  EXPECT_EQ(client.value()->sent(), client.value()->delivered() + client.value()->dropped());
  EXPECT_EQ(accepted->sent(), accepted->delivered() + accepted->dropped());
}

TEST(SocketTransport, PeerCloseFiresCloseHandlerAndAccountingHolds) {
  const std::string path = MakeSocketPath("eof");
  Sink server_sink;
  Rendezvous rv(path, &server_sink);

  auto client = SocketConnection::ConnectUnixWithRetry(path, 5000);
  ASSERT_TRUE(client.ok());
  Sink client_sink;
  client.value()->Start(client_sink.frame_handler(), client_sink.close_handler());
  auto accepted = rv.WaitAccepted();
  ASSERT_NE(accepted, nullptr);

  // Server side goes away; the client must observe EOF exactly like a
  // member observes a kill -9'd peer.
  accepted->Close();
  ASSERT_TRUE(client_sink.WaitForClose());
  EXPECT_FALSE(client.value()->IsOpen());

  // Sends after close fail and count as dropped, preserving the invariant.
  EXPECT_FALSE(client.value()->SendFrame(Bytes{1, 2, 3}).ok());
  client.value()->Close();
  EXPECT_EQ(client.value()->sent(), client.value()->delivered() + client.value()->dropped());
  EXPECT_GE(client.value()->dropped(), 1u);
}

TEST(SocketTransport, OversizedFrameClosesConnection) {
  const std::string path = MakeSocketPath("big");
  Sink server_sink;
  Rendezvous rv(path, &server_sink);

  auto client = SocketConnection::ConnectUnixWithRetry(path, 5000);
  ASSERT_TRUE(client.ok());
  Sink client_sink;
  client.value()->Start(client_sink.frame_handler(), client_sink.close_handler());

  // A frame larger than kMaxWireFrameBytes must be refused by the sender
  // (never silently truncated onto the wire).
  Bytes huge(kMaxWireFrameBytes + 1, 0x00);
  EXPECT_FALSE(client.value()->SendFrame(std::move(huge)).ok());
  client.value()->Close();
  EXPECT_EQ(client.value()->sent(), client.value()->delivered() + client.value()->dropped());
}

TEST(SocketTransport, ManyThreadsSendConcurrently) {
  const std::string path = MakeSocketPath("mt");
  Sink server_sink;
  Rendezvous rv(path, &server_sink);

  auto client_result = SocketConnection::ConnectUnixWithRetry(path, 5000);
  ASSERT_TRUE(client_result.ok());
  std::shared_ptr<SocketConnection> client = std::move(client_result.value());
  Sink client_sink;
  client->Start(client_sink.frame_handler(), client_sink.close_handler());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([client, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        Bytes frame{static_cast<uint8_t>(t), static_cast<uint8_t>(i & 0xFF)};
        (void)client->SendFrame(std::move(frame));
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(server_sink.WaitForFrames(kThreads * kPerThread));
  client->Close();
  EXPECT_EQ(client->sent(), client->delivered() + client->dropped());
  EXPECT_EQ(client->delivered(), static_cast<uint64_t>(kThreads * kPerThread));
}

// The respawn path's connect primitive: a rejoining member dials the
// coordinator under a RetryBackoff policy instead of a fixed poll.
TEST(SocketTransport, ConnectUnixWithBackoffSucceedsOnceServerListens) {
  const std::string path = MakeSocketPath("bk");

  // Server comes up only after the client has already burned a few
  // attempts against a path nobody is listening on.
  Sink server_sink;
  std::unique_ptr<Rendezvous> rv;
  std::thread late_server([&]() {
    std::this_thread::sleep_for(milliseconds(150));
    rv = std::make_unique<Rendezvous>(path, &server_sink);
  });

  BackoffOptions backoff;
  backoff.retry_budget = 50;
  backoff.initial_backoff = 10 * kNanosPerMilli;
  backoff.max_backoff = 50 * kNanosPerMilli;
  auto client = SocketConnection::ConnectUnixWithBackoff(path, backoff, /*stream_id=*/1);
  late_server.join();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  Sink client_sink;
  client.value()->Start(client_sink.frame_handler(), client_sink.close_handler());
  ASSERT_TRUE(client.value()->SendFrame(Bytes{1, 2, 3}).ok());
  ASSERT_TRUE(server_sink.WaitForFrames(1));
  client.value()->Close();
}

TEST(SocketTransport, ConnectUnixWithBackoffGivesUpAfterBudget) {
  // Nothing ever listens here; the connect must fail after exactly
  // budget + 1 attempts (the first try plus one per backoff delay) and
  // say so in the error.
  const std::string path = MakeSocketPath("nolisten");
  BackoffOptions backoff;
  backoff.retry_budget = 3;
  backoff.initial_backoff = 1 * kNanosPerMilli;
  backoff.max_backoff = 4 * kNanosPerMilli;

  const auto t0 = std::chrono::steady_clock::now();
  auto client = SocketConnection::ConnectUnixWithBackoff(path, backoff);
  EXPECT_FALSE(client.ok());
  EXPECT_NE(client.status().ToString().find("4 attempts"), std::string::npos)
      << client.status().ToString();
  // Bounded: a handful of millisecond-scale delays, not a hang.
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));
}

}  // namespace
}  // namespace jet::net
