// Seeded chaos suite: randomized fault timelines (kill / join / partition /
// heal / delay spike / GC stall) run against a live exactly-once cluster
// job, and the §4.4 recovery protocol must keep the results exact. Every
// timeline derives purely from its seed; a failing seed replays with
//   JETSIM_CHAOS_SEED=<seed> ./chaos_test --gtest_filter='*SingleSeedFromEnv*'
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "testkit/chaos.h"
#include "testkit/wait.h"

namespace jet::testkit {
namespace {

// One full seeded chaos run: bring up the fixture, execute the timeline,
// then check exactly-once output, snapshot monotonicity, partition-table
// invariants, and network delivery accounting.
void RunSeededChaos(uint64_t seed) {
  ChaosTimelineOptions timeline_options;
  auto timeline = GenerateTimeline(seed, timeline_options);
  SCOPED_TRACE("chaos seed " + std::to_string(seed) +
               " timeline: " + TimelineToString(timeline) +
               "\nreproduce: JETSIM_CHAOS_SEED=" + std::to_string(seed) +
               " ./chaos_test --gtest_filter='*SingleSeedFromEnv*'");

  ClusterFixture fixture;
  ASSERT_TRUE(fixture.SubmitWindowedJob().ok());
  // Give the job a head start so most timelines recover from a real
  // snapshot rather than replaying from scratch.
  fixture.WaitForCommittedSnapshot(1, kNanosPerSecond);

  // Snapshot monotonicity watcher: committed ids must never go backwards,
  // across any number of recoveries.
  std::atomic<bool> stop_watcher{false};
  std::atomic<bool> monotonic{true};
  std::thread watcher([&]() {
    int64_t prev = 0;
    while (!stop_watcher.load(std::memory_order_acquire)) {
      int64_t cur = fixture.job()->last_committed_snapshot();
      if (cur < prev) monotonic.store(false, std::memory_order_release);
      if (cur > prev) prev = cur;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  ChaosScheduler scheduler(&fixture.cluster(), timeline);
  Status chaos = scheduler.Run();
  Status join = fixture.JoinJob();
  stop_watcher.store(true, std::memory_order_release);
  watcher.join();

  std::string applied;
  for (const auto& line : scheduler.log()) applied += "\n  " + line;
  ASSERT_TRUE(chaos.ok()) << "chaos scheduler failed: " << chaos.ToString() << applied;
  ASSERT_TRUE(join.ok()) << join.ToString() << applied;
  EXPECT_TRUE(monotonic.load()) << "committed snapshot id went backwards" << applied;

  // Partition-table version monotonicity across the whole event sequence.
  const auto& versions = scheduler.table_versions();
  for (size_t i = 1; i < versions.size(); ++i) {
    EXPECT_GE(versions[i], versions[i - 1]) << "table version regressed" << applied;
  }

  Status exact = fixture.VerifyExactlyOnce();
  EXPECT_TRUE(exact.ok()) << exact.ToString() << applied;
  Status invariants = fixture.VerifyClusterInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants.ToString() << applied;
  Status accounting = fixture.VerifyDeliveryAccounting();
  EXPECT_TRUE(accounting.ok()) << accounting.ToString() << applied;
}

class ChaosSuite : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSuite, SeededTimelineKeepsExactlyOnce) { RunSeededChaos(GetParam()); }

// >= 20 seeded random fault timelines (acceptance criterion). Each
// parameter is its own ctest entry, so the suite parallelizes under -j.
INSTANTIATE_TEST_SUITE_P(SeededTimelines, ChaosSuite,
                         ::testing::Range<uint64_t>(1, 21));

// Unattended variant: the SAME seeded timelines, but nobody scripts the
// recovery. Kills are bare fail-stops (CrashNode) and heals just unblock
// the link; detection, eviction, suspension and restarts are entirely the
// self-healing control plane's doing, and the results must still be
// exactly-once with the supervisor finishing in COMPLETED.
void RunUnattendedChaos(uint64_t seed) {
  ChaosTimelineOptions timeline_options;
  auto timeline = GenerateTimeline(seed, timeline_options);
  SCOPED_TRACE("unattended chaos seed " + std::to_string(seed) +
               " timeline: " + TimelineToString(timeline) +
               "\nreproduce: JETSIM_CHAOS_SEED=" + std::to_string(seed) +
               " ./chaos_test --gtest_filter='*UnattendedSeedFromEnv*'");

  FixtureOptions options;
  options.supervisor.enabled = true;
  ClusterFixture fixture(options);
  ASSERT_TRUE(fixture.SubmitWindowedJob().ok());
  fixture.WaitForCommittedSnapshot(1, kNanosPerSecond);

  ChaosScheduler scheduler(&fixture.cluster(), timeline, /*unattended=*/true);
  Status chaos = scheduler.Run();
  Status join = fixture.JoinJob();

  std::string applied;
  for (const auto& line : scheduler.log()) applied += "\n  " + line;
  ASSERT_TRUE(chaos.ok()) << "chaos scheduler failed: " << chaos.ToString() << applied;
  ASSERT_TRUE(join.ok()) << join.ToString() << applied;
  // COMPLETED is recorded by the control loop's next reconcile tick.
  EXPECT_TRUE(WaitUntil(
      [&fixture]() {
        return fixture.job()->supervisor()->state() == cluster::JobState::kCompleted;
      },
      5 * kNanosPerSecond))
      << applied;

  Status exact = fixture.VerifyExactlyOnce();
  EXPECT_TRUE(exact.ok()) << exact.ToString() << applied;
  Status invariants = fixture.VerifyClusterInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants.ToString() << applied;
  Status accounting = fixture.VerifyDeliveryAccounting();
  EXPECT_TRUE(accounting.ok()) << accounting.ToString() << applied;
}

class UnattendedChaosSuite : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnattendedChaosSuite, SelfHealingKeepsExactlyOnce) {
  RunUnattendedChaos(GetParam());
}

INSTANTIATE_TEST_SUITE_P(SeededTimelines, UnattendedChaosSuite,
                         ::testing::Range<uint64_t>(1, 11));

// One-command reproduction of a failing unattended seed.
TEST(ChaosRepro, UnattendedSeedFromEnv) {
  const char* seed_env = std::getenv("JETSIM_CHAOS_SEED");
  if (seed_env == nullptr) {
    GTEST_SKIP() << "set JETSIM_CHAOS_SEED=<seed> to replay one timeline";
  }
  RunUnattendedChaos(std::strtoull(seed_env, nullptr, 10));
}

// One-command reproduction of a failing seed from the suite above.
TEST(ChaosRepro, SingleSeedFromEnv) {
  const char* seed_env = std::getenv("JETSIM_CHAOS_SEED");
  if (seed_env == nullptr) {
    GTEST_SKIP() << "set JETSIM_CHAOS_SEED=<seed> to replay one timeline";
  }
  RunSeededChaos(std::strtoull(seed_env, nullptr, 10));
}

// Acceptance criterion: a link partition between two nodes — with NO node
// death — is survivable. The job stalls while the link is down (messages
// between the pair are dropped and counted), then Heal + restart from the
// last committed snapshot recovers exact results on the full membership.
TEST(ChaosScriptTest, LinkPartitionWithoutNodeDeathIsSurvivable) {
  ClusterFixture fixture;
  ASSERT_TRUE(fixture.SubmitWindowedJob().ok());
  ASSERT_TRUE(fixture.WaitForCommittedSnapshot(2, 5 * kNanosPerSecond));

  net::Network& network = fixture.network();
  int64_t dropped_before = network.dropped_count();
  network.Partition(0, 1);
  // The partition must actually bite: traffic between nodes 0 and 1 is
  // being dropped (the exchange is all-to-all, so a running job always
  // crosses this link).
  ASSERT_TRUE(WaitUntil(
      [&network, dropped_before]() { return network.dropped_count() > dropped_before; },
      5 * kNanosPerSecond))
      << "partition dropped no traffic";

  ASSERT_TRUE(
      fixture.cluster().RecoverAfterFault([&network]() { network.Heal(0, 1); }).ok());

  ASSERT_TRUE(fixture.JoinJob().ok());
  EXPECT_EQ(fixture.cluster().AliveNodes().size(), 3u) << "no node died";
  EXPECT_GE(fixture.job()->attempts_started(), 2);
  Status exact = fixture.VerifyExactlyOnce();
  EXPECT_TRUE(exact.ok()) << exact.ToString();
  Status invariants = fixture.VerifyClusterInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants.ToString();
  Status accounting = fixture.VerifyDeliveryAccounting();
  EXPECT_TRUE(accounting.ok()) << accounting.ToString();
}

// GC-style stall: freezing one member's workers mid-job delays output but
// must not lose or duplicate anything (no restart is even needed).
TEST(ChaosScriptTest, WorkerStallKeepsExactlyOnce) {
  ClusterFixture fixture;
  ASSERT_TRUE(fixture.SubmitWindowedJob().ok());
  ASSERT_TRUE(fixture.WaitForCommittedSnapshot(1, 5 * kNanosPerSecond));
  ASSERT_TRUE(fixture.cluster().StallNode(1, 200 * kNanosPerMilli).ok());
  ASSERT_TRUE(fixture.JoinJob().ok());
  Status exact = fixture.VerifyExactlyOnce();
  EXPECT_TRUE(exact.ok()) << exact.ToString();
  Status accounting = fixture.VerifyDeliveryAccounting();
  EXPECT_TRUE(accounting.ok()) << accounting.ToString();
}

// Scripted (non-seeded) timeline: kill, join, partition, heal in sequence,
// exercising the scheduler exactly as the seeded suite does but with a
// hand-written schedule.
TEST(ChaosScriptTest, ScriptedKillJoinPartitionHeal) {
  std::vector<ChaosEvent> timeline;
  ChaosEvent kill;
  kill.at = 250 * kNanosPerMilli;
  kill.type = ChaosEventType::kKillNode;
  kill.a = 1;
  timeline.push_back(kill);
  ChaosEvent join;
  join.at = 500 * kNanosPerMilli;
  join.type = ChaosEventType::kAddNode;
  join.a = 3;  // JetCluster assigns ids sequentially from initial_nodes
  timeline.push_back(join);
  ChaosEvent part;
  part.at = 750 * kNanosPerMilli;
  part.type = ChaosEventType::kPartition;
  part.a = 0;
  part.b = 3;
  timeline.push_back(part);
  ChaosEvent heal;
  heal.at = 1'050 * kNanosPerMilli;
  heal.type = ChaosEventType::kHeal;
  heal.a = 0;
  heal.b = 3;
  timeline.push_back(heal);

  ClusterFixture fixture;
  ASSERT_TRUE(fixture.SubmitWindowedJob().ok());
  fixture.WaitForCommittedSnapshot(1, kNanosPerSecond);
  ChaosScheduler scheduler(&fixture.cluster(), timeline);
  Status chaos = scheduler.Run();
  std::string applied;
  for (const auto& line : scheduler.log()) applied += "\n  " + line;
  ASSERT_TRUE(chaos.ok()) << chaos.ToString() << applied;
  ASSERT_TRUE(fixture.JoinJob().ok()) << applied;
  EXPECT_GE(fixture.job()->attempts_started(), 2);
  Status exact = fixture.VerifyExactlyOnce();
  EXPECT_TRUE(exact.ok()) << exact.ToString() << applied;
  Status invariants = fixture.VerifyClusterInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants.ToString() << applied;
  Status accounting = fixture.VerifyDeliveryAccounting();
  EXPECT_TRUE(accounting.ok()) << accounting.ToString() << applied;
}

// With serialize_exchange_frames every distributed hop round-trips its
// frames through the wire codec — the same bytes process mode puts on
// sockets — and the exactly-once result must be unchanged.
TEST(ChaosScriptTest, SerializedExchangeFramesKeepExactlyOnce) {
  FixtureOptions options;
  options.serialize_exchange_frames = true;
  ClusterFixture fixture(options);
  ASSERT_TRUE(fixture.SubmitWindowedJob().ok());
  ASSERT_TRUE(fixture.JoinJob().ok());
  Status exact = fixture.VerifyExactlyOnce();
  EXPECT_TRUE(exact.ok()) << exact.ToString();
  Status accounting = fixture.VerifyDeliveryAccounting();
  EXPECT_TRUE(accounting.ok()) << accounting.ToString();
}

// Serialization plus a node kill: barriers and watermarks survive the
// codec round-trip through a §4.4 recovery.
TEST(ChaosScriptTest, SerializedFramesSurviveNodeKill) {
  FixtureOptions options;
  options.serialize_exchange_frames = true;
  ClusterFixture fixture(options);
  ASSERT_TRUE(fixture.SubmitWindowedJob().ok());
  ASSERT_TRUE(fixture.WaitForCommittedSnapshot(1, 5 * kNanosPerSecond));
  ASSERT_TRUE(fixture.cluster().KillNode(1).ok());
  ASSERT_TRUE(fixture.JoinJob().ok());
  EXPECT_GE(fixture.job()->attempts_started(), 2);
  Status exact = fixture.VerifyExactlyOnce();
  EXPECT_TRUE(exact.ok()) << exact.ToString();
}

}  // namespace
}  // namespace jet::testkit
