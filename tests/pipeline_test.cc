#include <atomic>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/job.h"
#include "pipeline/pipeline.h"

namespace jet::pipeline {
namespace {

using core::GeneratorSourceP;
using core::WindowDef;
using core::WindowResult;

GeneratorSourceP<int64_t>::Options FastIntOptions(int64_t count) {
  GeneratorSourceP<int64_t>::Options opt;
  opt.events_per_second = 1e9;
  opt.duration = count;
  opt.watermark_interval = 1;
  opt.start_time = 0;
  return opt;
}

GeneratorSourceP<int64_t>::GenFn IntGen() {
  return [](int64_t seq) {
    return std::make_pair(seq, HashU64(static_cast<uint64_t>(seq)));
  };
}

Status RunPipeline(Pipeline* p, const PlanOptions& options = {}) {
  static ManualClock clock(int64_t{1} << 60);
  auto dag = p->ToDag(options);
  JET_RETURN_IF_ERROR(dag.status());
  core::JobParams params;
  params.dag = &*dag;
  params.cooperative_threads = 2;
  params.clock = &clock;
  auto job = core::Job::Create(params);
  JET_RETURN_IF_ERROR(job.status());
  JET_RETURN_IF_ERROR((*job)->Start());
  return (*job)->Join();
}

TEST(PipelineTest, MapFilterChain) {
  Pipeline p;
  auto counter = p.ReadFrom<int64_t>("ints", IntGen(), FastIntOptions(10'000))
                     .Map<int64_t>("triple", [](const int64_t& v) { return v * 3; })
                     .Filter("even", [](const int64_t& v) { return v % 2 == 0; })
                     .WriteToCountSink("count");
  ASSERT_TRUE(RunPipeline(&p).ok());
  EXPECT_EQ(counter->load(), 5'000);
}

TEST(PipelineTest, FusionDoesNotChangeResults) {
  for (bool fusion : {true, false}) {
    Pipeline p;
    auto collector =
        p.ReadFrom<int64_t>("ints", IntGen(), FastIntOptions(4'000))
            .Map<int64_t>("inc", [](const int64_t& v) { return v + 1; })
            .Map<int64_t>("dec", [](const int64_t& v) { return v - 1; })
            .Filter("mod3", [](const int64_t& v) { return v % 3 == 0; })
            .CollectTo("sink");
    PlanOptions options;
    options.enable_fusion = fusion;
    ASSERT_TRUE(RunPipeline(&p, options).ok());
    auto values = collector->Snapshot();
    std::set<int64_t> unique(values.begin(), values.end());
    EXPECT_EQ(unique.size(), static_cast<size_t>(4'000 / 3 + 1)) << "fusion=" << fusion;
  }
}

TEST(PipelineTest, FusionReducesVertexCount) {
  Pipeline p;
  p.ReadFrom<int64_t>("ints", IntGen(), FastIntOptions(10))
      .Map<int64_t>("a", [](const int64_t& v) { return v; })
      .Map<int64_t>("b", [](const int64_t& v) { return v; })
      .Map<int64_t>("c", [](const int64_t& v) { return v; })
      .WriteToCountSink("count");

  PlanOptions fused;
  auto dag_fused = p.ToDag(fused);
  ASSERT_TRUE(dag_fused.ok());
  // source + fused(a+b+c) + sink = 3.
  EXPECT_EQ(dag_fused->vertices().size(), 3u);

  PlanOptions unfused;
  unfused.enable_fusion = false;
  auto dag_unfused = p.ToDag(unfused);
  ASSERT_TRUE(dag_unfused.ok());
  // source + a + b + c + sink = 5.
  EXPECT_EQ(dag_unfused->vertices().size(), 5u);
}

TEST(PipelineTest, FlatMapProducesMultiple) {
  Pipeline p;
  auto counter =
      p.ReadFrom<int64_t>("ints", IntGen(), FastIntOptions(1'000))
          .FlatMap<int64_t>("dup",
                            [](const int64_t& v, std::vector<int64_t>* out) {
                              out->push_back(v);
                              out->push_back(-v);
                            })
          .WriteToCountSink("count");
  ASSERT_TRUE(RunPipeline(&p).ok());
  EXPECT_EQ(counter->load(), 2'000);
}

TEST(PipelineTest, WindowedAggregateCountsEverything) {
  constexpr int64_t kCount = 20'000;
  Pipeline p;
  GeneratorSourceP<int64_t>::Options opt;
  opt.events_per_second = 1e6;  // 1 event per us
  opt.duration = kCount * 1000;
  opt.watermark_interval = 100 * 1000;
  opt.start_time = 0;
  auto results =
      p.ReadFrom<int64_t>("ints", IntGen(), opt)
          .GroupingKey([](const int64_t& v) { return static_cast<uint64_t>(v % 10); })
          .Window(WindowDef::Tumbling(kNanosPerMilli))
          .Aggregate<int64_t, int64_t>("count", core::CountingAggregate<int64_t>())
          .CollectTo("sink");
  ASSERT_TRUE(RunPipeline(&p).ok());
  int64_t total = 0;
  for (const auto& r : results->Snapshot()) total += r.value;
  EXPECT_EQ(total, kCount);
}

TEST(PipelineTest, HashJoinEnrichesStream) {
  Pipeline p;
  std::vector<std::pair<int64_t, uint64_t>> dim;
  for (int64_t i = 0; i < 10; ++i) dim.push_back({i * 100, HashU64(static_cast<uint64_t>(i))});
  auto build = p.ReadFromList<int64_t>("dim", dim);

  auto collector =
      p.ReadFrom<int64_t>("ints", IntGen(), FastIntOptions(1'000))
          .HashJoin<int64_t, int64_t>(
              "join", build,
              [](const int64_t& b) { return static_cast<uint64_t>(b / 100); },
              [](const int64_t& v) { return static_cast<uint64_t>(v % 10); },
              [](const int64_t& v, const std::vector<int64_t>& matches,
                 std::vector<int64_t>* out) {
                for (int64_t m : matches) out->push_back(v + m);
              })
          .CollectTo("sink");
  ASSERT_TRUE(RunPipeline(&p).ok());
  auto values = collector->Snapshot();
  ASSERT_EQ(values.size(), 1'000u);
  // Every value v joins with exactly one build record (v % 10) * 100.
  std::multiset<int64_t> got(values.begin(), values.end());
  std::multiset<int64_t> expected;
  for (int64_t v = 0; v < 1'000; ++v) expected.insert(v + (v % 10) * 100);
  EXPECT_EQ(got, expected);
}

TEST(PipelineTest, WindowJoinMatchesWithinWindow) {
  constexpr int64_t kCount = 5'000;
  Pipeline p;
  GeneratorSourceP<int64_t>::Options opt;
  opt.events_per_second = 1e6;
  opt.duration = kCount * 1000;
  opt.watermark_interval = 100 * 1000;
  opt.start_time = 0;

  auto left = p.ReadFrom<int64_t>("left", IntGen(), opt);
  auto right = p.ReadFrom<int64_t>("right", IntGen(), opt);
  auto counter =
      left.WindowJoin<int64_t, int64_t>(
              "wjoin", right,
              [](const int64_t& v) { return static_cast<uint64_t>(v % 100); },
              [](const int64_t& v) { return static_cast<uint64_t>(v % 100); },
              [](const int64_t& l, const int64_t& r) { return l + r; },
              /*window_size=*/kNanosPerMilli)
          .WriteToCountSink("count");
  ASSERT_TRUE(RunPipeline(&p).ok());
  // Each 1ms window has 1000 events per side over 100 keys => 10 per key
  // per side => 100 pairs per key per window => 10000 pairs per window,
  // 5 windows => 50000 pairs total (both sources aligned at start 0).
  EXPECT_EQ(counter->load(), 50'000);
}

TEST(PipelineTest, MapRekeyRoutesByNewKey) {
  Pipeline p;
  auto results =
      p.ReadFrom<int64_t>("ints", IntGen(), FastIntOptions(6'000))
          .MapRekey<int64_t>(
              "rekey", [](const int64_t& v) { return v; },
              [](const int64_t& v) { return static_cast<uint64_t>(v % 7); })
          .GroupingKey([](const int64_t& v) { return static_cast<uint64_t>(v % 7); })
          .Window(WindowDef::Tumbling(kNanosPerMilli))
          .Aggregate<int64_t, int64_t>("count", core::CountingAggregate<int64_t>())
          .CollectTo("sink");
  ASSERT_TRUE(RunPipeline(&p).ok());
  int64_t total = 0;
  std::set<uint64_t> keys;
  for (const auto& r : results->Snapshot()) {
    total += r.value;
    keys.insert(r.key);
  }
  EXPECT_EQ(total, 6'000);
  EXPECT_EQ(keys.size(), 7u);
}

TEST(PipelineTest, EmptyPipelineFailsValidation) {
  Pipeline p;
  EXPECT_FALSE(p.ToDag().ok());
}

}  // namespace
}  // namespace jet::pipeline
