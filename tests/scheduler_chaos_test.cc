// Chaos coverage for the scheduler's migration protocol: stall injection
// (the testkit's stop-the-world pause) fired repeatedly while rebalance
// passes issue migrations must never break the single-owner invariant.
// Under JETSIM_DEBUG_CHECKS (the asan-ubsan preset) a violated
// ThreadOwnershipGuard aborts the process, so the test passing there is
// the real assertion; elsewhere it still exercises the interleavings
// under TSan.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/execution_service.h"
#include "obs/event_loop_profiler.h"
#include "obs/metrics_registry.h"

namespace jet::core {
namespace {

// Spins a per-call budget that differs per tasklet, so the load picture
// keeps the rebalancer issuing migrations in both directions.
class SkewedBusyTasklet final : public Tasklet {
 public:
  SkewedBusyTasklet(std::string name, Nanos busy_nanos, int64_t work_calls)
      : name_(std::move(name)), busy_nanos_(busy_nanos), work_calls_(work_calls) {}

  TaskletProgress Call() override {
    const Nanos until = WallClock::Global().Now() + busy_nanos_;
    while (WallClock::Global().Now() < until) {
    }
    return {true, ++calls_ >= work_calls_};
  }

  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  Nanos busy_nanos_;
  int64_t work_calls_;
  int64_t calls_ = 0;
};

TEST(SchedulerChaosTest, RebalanceUnderInjectedStallKeepsOwnershipSound) {
  obs::MetricsRegistry registry;
  obs::EventLoopProfiler profiler(&registry);

  ExecutionService::Options options;
  options.rebalance_interval = 0;  // hammered manually below
  options.skew_threshold = 1.2;
  options.min_hot_load = 10 * kNanosPerMicro;
  ExecutionService service(2, &profiler, options);
  ASSERT_TRUE(service.load_balancing_enabled());

  // Round-robin start puts the three light tasklets (10us) on worker 0 and
  // the three heavy ones (100us) on worker 1 — a 30:300 skew the rebalancer
  // must correct by moving one heavy across.
  std::vector<std::unique_ptr<SkewedBusyTasklet>> tasklets;
  std::vector<Tasklet*> raw;
  for (int i = 0; i < 6; ++i) {
    const Nanos busy = (i % 2 == 0 ? 10 : 100) * kNanosPerMicro;
    tasklets.push_back(std::make_unique<SkewedBusyTasklet>(
        "busy" + std::to_string(i), busy, /*work_calls=*/400));
    raw.push_back(tasklets.back().get());
  }
  ASSERT_TRUE(service.Start(raw).ok());

  // Bounded chaos phase: stall + rebalance bursts. The stalls land between
  // tasklet calls (workers finish the in-flight call first), which is
  // exactly where migration handoffs happen. Stalls are shorter than the
  // pacing sleep so the job keeps making progress.
  for (int i = 0; i < 50 && !service.IsComplete(); ++i) {
    service.InjectStall(300 * kNanosPerMicro);
    service.TriggerRebalance();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(service.AwaitCompletion().ok());
  // The loop above must have actually exercised migration, not just spun.
  EXPECT_GE(service.migrated_tasklets(), 1);
}

}  // namespace
}  // namespace jet::core
