// Wire-format codec battery: round-trips for every payload tag and frame
// type, decode error paths, byte-exact golden-fixture drift checks, and
// the process-mode control-message codec layered on CONTROL frames.

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/processors_window.h"
#include "net/wire_format.h"
#include "procmode/proc_proto.h"
#include "procmode/windowed_job.h"
#include "wire_fixture_corpus.h"

namespace jet::net {
namespace {

using core::Item;
using core::ItemKind;
using KeyedFrameI64 = core::KeyedFrame<int64_t>;
using WindowResultI64 = core::WindowResult<int64_t>;

FrameHeader TestHeader() { return testfixtures::CanonicalHeader(); }

Bytes EncodeData(const std::vector<Item>& items) {
  BytesWriter w;
  Status s = EncodeDataFrame(TestHeader(), items, &w);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return w.Take();
}

void ExpectHeaderEq(const FrameHeader& h, FrameType type) {
  EXPECT_EQ(h.type, type);
  EXPECT_EQ(h.edge_index, 3);
  EXPECT_EQ(h.from_node, 1);
  EXPECT_EQ(h.to_node, 2);
  EXPECT_EQ(h.epoch, 7);
}

// ---- round trips -----------------------------------------------------------

TEST(WireFormat, DataFrameRoundTripsEveryPayloadTag) {
  std::vector<Item> items;
  items.push_back(Item::Data<int64_t>(-1234567, 10, 1));
  items.push_back(Item::Data<uint64_t>(0xFFFFFFFFFFFFFFFFull, 20, 2));
  items.push_back(Item::Data<double>(-0.125, 30, 3));
  items.push_back(Item::Data<std::string>("hello \x01 wire", 40, 4));
  items.push_back(Item::Data<Bytes>(Bytes{0, 255, 7}, 50, 5));
  items.push_back(Item::Data<KeyedFrameI64>(KeyedFrameI64{3, -50, -9}, 60, 6));
  items.push_back(
      Item::Data<WindowResultI64>(WindowResultI64{4, -100, -50, 77}, 70, 7));

  auto decoded = DecodeFrame(EncodeData(items));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectHeaderEq(decoded->header, FrameType::kData);
  ASSERT_EQ(decoded->items.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(decoded->items[i].kind, ItemKind::kData);
    EXPECT_EQ(decoded->items[i].timestamp, items[i].timestamp);
    EXPECT_EQ(decoded->items[i].key_hash, items[i].key_hash);
  }
  EXPECT_EQ(decoded->items[0].payload.As<int64_t>(), -1234567);
  EXPECT_EQ(decoded->items[1].payload.As<uint64_t>(), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(decoded->items[2].payload.As<double>(), -0.125);
  EXPECT_EQ(decoded->items[3].payload.As<std::string>(), "hello \x01 wire");
  EXPECT_EQ(decoded->items[4].payload.As<Bytes>(), (Bytes{0, 255, 7}));
  const auto& kf = decoded->items[5].payload.As<KeyedFrameI64>();
  EXPECT_EQ(kf.key, 3u);
  EXPECT_EQ(kf.frame_end, -50);
  EXPECT_EQ(kf.acc, -9);
  const auto& wr = decoded->items[6].payload.As<WindowResultI64>();
  EXPECT_EQ(wr.key, 4u);
  EXPECT_EQ(wr.window_start, -100);
  EXPECT_EQ(wr.window_end, -50);
  EXPECT_EQ(wr.value, 77);
}

TEST(WireFormat, ControlItemsRoundTrip) {
  std::vector<Item> items;
  items.push_back(Item::WatermarkAt(-5));
  items.push_back(Item::BarrierFor(99));
  items.push_back(Item::Done());

  auto decoded = DecodeFrame(EncodeData(items));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->items.size(), 3u);
  EXPECT_TRUE(decoded->items[0].IsWatermark());
  EXPECT_EQ(decoded->items[0].timestamp, -5);
  EXPECT_TRUE(decoded->items[1].IsBarrier());
  EXPECT_EQ(decoded->items[1].timestamp, 99);
  EXPECT_TRUE(decoded->items[2].IsDone());
}

TEST(WireFormat, EmptyDataFrameRoundTrips) {
  auto decoded = DecodeFrame(EncodeData({}));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->items.empty());
}

TEST(WireFormat, AckFrameRoundTrips) {
  BytesWriter w;
  ASSERT_TRUE(EncodeAckFrame(TestHeader(), -123456789, &w).ok());
  auto decoded = DecodeFrame(w.Take());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectHeaderEq(decoded->header, FrameType::kAck);
  EXPECT_EQ(decoded->ack_limit, -123456789);
}

TEST(WireFormat, ControlFrameRoundTrips) {
  const Bytes body{1, 2, 3, 250, 251, 252};
  BytesWriter w;
  ASSERT_TRUE(EncodeControlFrame(body, &w).ok());
  auto decoded = DecodeFrame(w.Take());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->header.type, FrameType::kControl);
  EXPECT_EQ(decoded->control_body, body);
}

TEST(WireFormat, UnencodablePayloadReportsUnimplemented) {
  struct Exotic {
    int x = 0;
  };
  std::vector<Item> items;
  items.push_back(Item::Data<Exotic>(Exotic{1}, 0, 0));
  BytesWriter w;
  Status s = EncodeDataFrame(TestHeader(), items, &w);
  EXPECT_FALSE(s.ok());
}

// ---- decode error paths ----------------------------------------------------

TEST(WireFormat, RejectsBadMagic) {
  Bytes frame = EncodeData({Item::WatermarkAt(1)});
  frame[0] = 0x00;
  EXPECT_FALSE(DecodeFrame(frame).ok());
}

TEST(WireFormat, RejectsUnknownVersion) {
  Bytes frame = EncodeData({Item::WatermarkAt(1)});
  frame[2] = kWireFormatVersion + 1;
  EXPECT_FALSE(DecodeFrame(frame).ok());
}

TEST(WireFormat, RejectsUnknownFrameType) {
  Bytes frame = EncodeData({Item::WatermarkAt(1)});
  frame[3] = 0x7F;
  EXPECT_FALSE(DecodeFrame(frame).ok());
}

TEST(WireFormat, RejectsUnknownPayloadTag) {
  std::vector<Item> items;
  items.push_back(Item::Data<int64_t>(5, 0, 0));
  Bytes frame = EncodeData(items);
  // The I64 payload tag is the third byte from the end: tag, length 1,
  // zigzag(5). Overwrite it with a reserved value.
  frame[frame.size() - 3] = 9;
  EXPECT_FALSE(DecodeFrame(frame).ok());
}

TEST(WireFormat, RejectsTrailingBytes) {
  Bytes frame = EncodeData({Item::WatermarkAt(1)});
  frame.push_back(0x00);
  EXPECT_FALSE(DecodeFrame(frame).ok());
}

TEST(WireFormat, RejectsEveryTruncation) {
  std::vector<Item> items;
  items.push_back(Item::Data<std::string>("truncate me", 123, 9));
  items.push_back(Item::BarrierFor(3));
  const Bytes frame = EncodeData(items);
  for (size_t len = 0; len < frame.size(); ++len) {
    auto decoded = DecodeFrame(frame.data(), len);
    EXPECT_FALSE(decoded.ok()) << "truncation to " << len << " bytes decoded";
  }
}

TEST(WireFormat, RejectsItemCountBeyondBuffer) {
  // Body: hop identity (4 varints) + a count claiming 2^30 items.
  BytesWriter w;
  w.WriteU8(kFrameMagic0);
  w.WriteU8(kFrameMagic1);
  w.WriteU8(kWireFormatVersion);
  w.WriteU8(static_cast<uint8_t>(FrameType::kData));
  w.WriteVarU64(3);
  w.WriteVarU64(1);
  w.WriteVarU64(2);
  w.WriteVarU64(7);
  w.WriteVarU64(1u << 30);
  EXPECT_FALSE(DecodeFrame(w.Take()).ok());
}

TEST(WireFormat, RejectsPayloadLengthBeyondBuffer) {
  BytesWriter w;
  w.WriteU8(kFrameMagic0);
  w.WriteU8(kFrameMagic1);
  w.WriteU8(kWireFormatVersion);
  w.WriteU8(static_cast<uint8_t>(FrameType::kData));
  w.WriteVarU64(3);
  w.WriteVarU64(1);
  w.WriteVarU64(2);
  w.WriteVarU64(7);
  w.WriteVarU64(1);                                        // one item
  w.WriteU8(static_cast<uint8_t>(ItemKind::kData));        // kind
  w.WriteVarI64(0);                                        // timestamp
  w.WriteVarU64(0);                                        // key_hash
  w.WriteU8(static_cast<uint8_t>(PayloadTag::kBytes));     // tag
  w.WriteVarU64(0xFFFFFF);                                 // length >> buffer
  w.WriteU8(0xAB);
  EXPECT_FALSE(DecodeFrame(w.Take()).ok());
}

// ---- golden fixtures (drift detection) --------------------------------------

#ifndef JETSIM_WIRE_FIXTURE_DIR
#error "JETSIM_WIRE_FIXTURE_DIR must point at tests/wire_fixtures"
#endif

Bytes ReadHexFixture(const std::string& name) {
  const std::string path = std::string(JETSIM_WIRE_FIXTURE_DIR) + "/" + name + ".hex";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  Bytes bytes;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream tokens(line.substr(0, line.find('#')));
    std::string tok;
    while (tokens >> tok) {
      bytes.push_back(static_cast<uint8_t>(std::stoul(tok, nullptr, 16)));
    }
  }
  return bytes;
}

// Today's encoder must produce yesterday's bytes — any mismatch is an
// unversioned wire-format change. See tests/wire_fixtures/README.md.
TEST(WireFormat, GoldenFixturesMatchEncoderOutput) {
  for (const auto& fixture : testfixtures::BuildWireFixtures()) {
    EXPECT_EQ(fixture.bytes, ReadHexFixture(fixture.name))
        << "fixture " << fixture.name
        << " drifted — this is a wire format change; see wire_fixtures/README.md";
  }
}

// And today's decoder must still read the committed bytes.
TEST(WireFormat, GoldenFixturesStillDecode) {
  for (const auto& fixture : testfixtures::BuildWireFixtures()) {
    auto decoded = DecodeFrame(ReadHexFixture(fixture.name));
    EXPECT_TRUE(decoded.ok()) << fixture.name << ": " << decoded.status().ToString();
  }
}

TEST(WireFormat, GoldenDataFixtureFieldLevel) {
  auto decoded = DecodeFrame(ReadHexFixture("data_frame_v1"));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectHeaderEq(decoded->header, FrameType::kData);
  ASSERT_EQ(decoded->items.size(), 7u);
  EXPECT_EQ(decoded->items[0].payload.As<int64_t>(), -42);
  EXPECT_EQ(decoded->items[3].payload.As<std::string>(), "jet");
  const auto& wr = decoded->items[6].payload.As<WindowResultI64>();
  EXPECT_EQ(wr.window_end, 50'000'000);
  EXPECT_EQ(wr.value, 123);
}

}  // namespace
}  // namespace jet::net

// ---- process-mode control messages (CONTROL frame payloads) ----------------

namespace jet::procmode {
namespace {

TEST(ProcProto, StartJobRoundTrips) {
  ProcMsg msg;
  msg.type = ProcMsgType::kStartJob;
  msg.epoch = 2;
  msg.job_name = kWindowedCountJobName;
  msg.node_id = 1;
  msg.node_count = 3;
  msg.clock_anchor = 123456789;
  msg.threads = 2;
  msg.events_per_second = 20000.5;
  msg.duration = 1'200'000'000;
  msg.key_count = 16;
  msg.window_size = 50'000'000;
  msg.watermark_interval = 5'000'000;
  msg.restore_count = 115;
  msg.data_paths = {"/tmp/a.sock", "/tmp/b.sock", "/tmp/c.sock"};

  auto decoded = DecodeControlMessage(EncodeControlMessage(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, ProcMsgType::kStartJob);
  EXPECT_EQ(decoded->epoch, 2);
  EXPECT_EQ(decoded->job_name, kWindowedCountJobName);
  EXPECT_EQ(decoded->node_id, 1);
  EXPECT_EQ(decoded->node_count, 3);
  EXPECT_EQ(decoded->clock_anchor, 123456789);
  EXPECT_EQ(decoded->threads, 2);
  EXPECT_EQ(decoded->events_per_second, 20000.5);
  EXPECT_EQ(decoded->duration, 1'200'000'000);
  EXPECT_EQ(decoded->key_count, 16);
  EXPECT_EQ(decoded->window_size, 50'000'000);
  EXPECT_EQ(decoded->watermark_interval, 5'000'000);
  EXPECT_EQ(decoded->restore_count, 115);
  EXPECT_EQ(decoded->data_paths, msg.data_paths);
}

TEST(ProcProto, SnapshotEntryRoundTrips) {
  ProcMsg msg;
  msg.type = ProcMsgType::kSnapshotEntry;
  msg.epoch = 1;
  msg.snapshot_id = 4;
  msg.vertex_id = 2;
  msg.writer_index = 1;
  msg.key_hash = 0xDEADBEEFCAFEF00Dull;
  msg.key = Bytes{1, 2, 3};
  msg.value = Bytes{9, 8};

  auto decoded = DecodeControlMessage(EncodeControlMessage(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->snapshot_id, 4);
  EXPECT_EQ(decoded->vertex_id, 2);
  EXPECT_EQ(decoded->writer_index, 1);
  EXPECT_EQ(decoded->key_hash, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(decoded->key, (Bytes{1, 2, 3}));
  EXPECT_EQ(decoded->value, (Bytes{9, 8}));
}

TEST(ProcProto, SinkResultAndSimpleMessagesRoundTrip) {
  ProcMsg result;
  result.type = ProcMsgType::kSinkResult;
  result.epoch = 3;
  result.result_key = 7;
  result.window_start = 100;
  result.window_end = 150;
  result.result_value = 625;
  auto decoded = DecodeControlMessage(EncodeControlMessage(result));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->result_key, 7u);
  EXPECT_EQ(decoded->window_end, 150);
  EXPECT_EQ(decoded->result_value, 625);

  for (ProcMsgType type : {ProcMsgType::kReady, ProcMsgType::kGo,
                           ProcMsgType::kStopAttempt, ProcMsgType::kShutdown,
                           ProcMsgType::kAttemptStopped, ProcMsgType::kAttemptDone}) {
    ProcMsg simple;
    simple.type = type;
    simple.epoch = 9;
    auto d = DecodeControlMessage(EncodeControlMessage(simple));
    ASSERT_TRUE(d.ok()) << static_cast<int>(type);
    EXPECT_EQ(d->type, type);
    EXPECT_EQ(d->epoch, 9);
  }
}

// The self-healing additions: liveness heartbeats and the snapshot-replica
// handshake (entry / seal / ack) the coordinator uses to mirror each epoch
// onto a second process before committing it.
TEST(ProcProto, HeartbeatRoundTrips) {
  ProcMsg msg;
  msg.type = ProcMsgType::kHeartbeat;
  msg.epoch = 7;
  auto decoded = DecodeControlMessage(EncodeControlMessage(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, ProcMsgType::kHeartbeat);
  EXPECT_EQ(decoded->epoch, 7);
}

TEST(ProcProto, SnapshotReplicaEntryRoundTrips) {
  ProcMsg msg;
  msg.type = ProcMsgType::kSnapshotReplicaEntry;
  msg.epoch = 3;
  msg.snapshot_id = 5;
  msg.vertex_id = 2;
  msg.writer_index = 1;
  msg.key_hash = 0x0123456789ABCDEFull;
  msg.key = Bytes{0xAA, 0xBB};
  msg.value = Bytes{0x01};

  auto decoded = DecodeControlMessage(EncodeControlMessage(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, ProcMsgType::kSnapshotReplicaEntry);
  EXPECT_EQ(decoded->epoch, 3);
  EXPECT_EQ(decoded->snapshot_id, 5);
  EXPECT_EQ(decoded->vertex_id, 2);
  EXPECT_EQ(decoded->writer_index, 1);
  EXPECT_EQ(decoded->key_hash, 0x0123456789ABCDEFull);
  EXPECT_EQ(decoded->key, (Bytes{0xAA, 0xBB}));
  EXPECT_EQ(decoded->value, (Bytes{0x01}));
}

TEST(ProcProto, SnapshotReplicaSealAndAckRoundTrip) {
  ProcMsg seal;
  seal.type = ProcMsgType::kSnapshotReplicaSeal;
  seal.epoch = 3;
  seal.snapshot_id = 5;
  seal.entry_count = 115;
  auto decoded = DecodeControlMessage(EncodeControlMessage(seal));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, ProcMsgType::kSnapshotReplicaSeal);
  EXPECT_EQ(decoded->snapshot_id, 5);
  EXPECT_EQ(decoded->entry_count, 115);

  ProcMsg ack;
  ack.type = ProcMsgType::kSnapshotReplicaAck;
  ack.epoch = 3;
  ack.snapshot_id = 5;
  auto decoded_ack = DecodeControlMessage(EncodeControlMessage(ack));
  ASSERT_TRUE(decoded_ack.ok()) << decoded_ack.status().ToString();
  EXPECT_EQ(decoded_ack->type, ProcMsgType::kSnapshotReplicaAck);
  EXPECT_EQ(decoded_ack->snapshot_id, 5);
}

// The explicit negative ack (PR 10): carries the replica's actual entry
// count so the coordinator can log expected-vs-have on abort.
TEST(ProcProto, SnapshotReplicaRejectRoundTrips) {
  ProcMsg reject;
  reject.type = ProcMsgType::kSnapshotReplicaReject;
  reject.epoch = 4;
  reject.snapshot_id = 9;
  reject.entry_count = 42;
  const Bytes frame = EncodeControlMessage(reject);
  auto decoded = DecodeControlMessage(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, ProcMsgType::kSnapshotReplicaReject);
  EXPECT_EQ(decoded->epoch, 4);
  EXPECT_EQ(decoded->snapshot_id, 9);
  EXPECT_EQ(decoded->entry_count, 42);

  // Every truncation must error, never misparse.
  for (size_t len = 0; len < frame.size(); ++len) {
    Bytes prefix(frame.begin(), frame.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(DecodeControlMessage(prefix).ok())
        << "reject truncated to " << len;
  }
}

// Frozen encodings: any byte-level drift in the new messages is a wire
// version bump, not an accident. Vectors captured from the encoder at
// introduction (frame header 4A 57 01 = "JW" + version, then CONTROL body).
TEST(ProcProto, SelfHealingMessagesMatchGoldenBytes) {
  const Bytes kHeartbeatGolden = {
      0x4A, 0x57, 0x01, 0x03, 0x02, 0x10, 0x0E,
  };
  const Bytes kReplicaEntryGolden = {
      0x4A, 0x57, 0x01, 0x03, 0x13, 0x11, 0x06, 0x0A, 0x02, 0x01, 0xEF, 0x9B,
      0xAF, 0xCD, 0xF8, 0xAC, 0xD1, 0x91, 0x01, 0x02, 0xAA, 0xBB, 0x01, 0x01,
  };
  const Bytes kReplicaSealGolden = {
      0x4A, 0x57, 0x01, 0x03, 0x05, 0x12, 0x06, 0x0A, 0xE6, 0x01,
  };
  const Bytes kReplicaAckGolden = {
      0x4A, 0x57, 0x01, 0x03, 0x03, 0x13, 0x06, 0x0A,
  };

  ProcMsg hb;
  hb.type = ProcMsgType::kHeartbeat;
  hb.epoch = 7;
  EXPECT_EQ(EncodeControlMessage(hb), kHeartbeatGolden);

  ProcMsg entry;
  entry.type = ProcMsgType::kSnapshotReplicaEntry;
  entry.epoch = 3;
  entry.snapshot_id = 5;
  entry.vertex_id = 2;
  entry.writer_index = 1;
  entry.key_hash = 0x0123456789ABCDEFull;
  entry.key = Bytes{0xAA, 0xBB};
  entry.value = Bytes{0x01};
  EXPECT_EQ(EncodeControlMessage(entry), kReplicaEntryGolden);

  ProcMsg seal;
  seal.type = ProcMsgType::kSnapshotReplicaSeal;
  seal.epoch = 3;
  seal.snapshot_id = 5;
  seal.entry_count = 115;
  EXPECT_EQ(EncodeControlMessage(seal), kReplicaSealGolden);

  ProcMsg ack;
  ack.type = ProcMsgType::kSnapshotReplicaAck;
  ack.epoch = 3;
  ack.snapshot_id = 5;
  EXPECT_EQ(EncodeControlMessage(ack), kReplicaAckGolden);

  // And the frozen bytes decode back to the same fields.
  auto decoded = DecodeControlMessage(kReplicaEntryGolden);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->key_hash, 0x0123456789ABCDEFull);
  auto decoded_seal = DecodeControlMessage(kReplicaSealGolden);
  ASSERT_TRUE(decoded_seal.ok());
  EXPECT_EQ(decoded_seal->entry_count, 115);
}

// Every truncation of each new message must error, never misparse.
TEST(ProcProto, SelfHealingMessagesRejectEveryTruncation) {
  std::vector<ProcMsg> msgs(4);
  msgs[0].type = ProcMsgType::kHeartbeat;
  msgs[0].epoch = 7;
  msgs[1].type = ProcMsgType::kSnapshotReplicaEntry;
  msgs[1].epoch = 3;
  msgs[1].snapshot_id = 5;
  msgs[1].vertex_id = 2;
  msgs[1].writer_index = 1;
  msgs[1].key_hash = 0x0123456789ABCDEFull;
  msgs[1].key = Bytes{0xAA, 0xBB};
  msgs[1].value = Bytes{0x01};
  msgs[2].type = ProcMsgType::kSnapshotReplicaSeal;
  msgs[2].epoch = 3;
  msgs[2].snapshot_id = 5;
  msgs[2].entry_count = 115;
  msgs[3].type = ProcMsgType::kSnapshotReplicaAck;
  msgs[3].epoch = 3;
  msgs[3].snapshot_id = 5;

  for (const ProcMsg& m : msgs) {
    const Bytes frame = EncodeControlMessage(m);
    for (size_t len = 0; len < frame.size(); ++len) {
      Bytes prefix(frame.begin(), frame.begin() + static_cast<ptrdiff_t>(len));
      EXPECT_FALSE(DecodeControlMessage(prefix).ok())
          << "type " << static_cast<int>(m.type) << " truncated to " << len;
    }
  }
}

TEST(ProcProto, RejectsMalformedMessages) {
  // Not a control frame at all.
  EXPECT_FALSE(DecodeControlMessage(Bytes{1, 2, 3}).ok());

  // Valid CONTROL frame whose body is an unknown message type.
  BytesWriter body;
  body.WriteU8(200);
  BytesWriter w;
  ASSERT_TRUE(net::EncodeControlFrame(body.Take(), &w).ok());
  EXPECT_FALSE(DecodeControlMessage(w.Take()).ok());

  // Truncations of a real message must all error.
  const Bytes frame = EncodeControlMessage([] {
    ProcMsg m;
    m.type = ProcMsgType::kHello;
    m.member_index = 2;
    m.pid = 1234;
    m.data_path = "/tmp/data.sock";
    return m;
  }());
  for (size_t len = 0; len < frame.size(); ++len) {
    Bytes prefix(frame.begin(), frame.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(DecodeControlMessage(prefix).ok()) << "truncation to " << len;
  }

  // Trailing garbage after a complete message must error.
  {
    ProcMsg m;
    m.type = ProcMsgType::kGo;
    Bytes inner = EncodeControlMessage(m);
    // Rebuild the CONTROL frame with an extended body.
    auto decoded = net::DecodeFrame(inner);
    ASSERT_TRUE(decoded.ok());
    Bytes body_bytes = decoded->control_body;
    body_bytes.push_back(0xFF);
    BytesWriter rewrapped;
    ASSERT_TRUE(net::EncodeControlFrame(body_bytes, &rewrapped).ok());
    EXPECT_FALSE(DecodeControlMessage(rewrapped.Take()).ok());
  }
}

}  // namespace
}  // namespace jet::procmode
