#include <map>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "core/dag.h"
#include "core/job.h"
#include "core/processors_basic.h"
#include "core/processors_window.h"

namespace jet::core {
namespace {

// Event for keyed windowed aggregation tests.
struct Event {
  uint64_t key = 0;
  int64_t amount = 0;
};

struct WindowedJobResult {
  std::vector<WindowResult<int64_t>> results;
};

// Runs: generator(count events, one per `period_ns` of event time, key =
// seq % key_count) -> accumulate (parallelism ap) -> combine (parallelism
// cp, partitioned) -> collect. Returns all emitted window results.
std::vector<WindowResult<int64_t>> RunCountWindowJob(
    int64_t count, int64_t key_count, Nanos period_ns, WindowDef window,
    AggregateOperation<Event, int64_t, int64_t> op, int32_t ap = 2, int32_t cp = 2) {
  // A manual clock far in the future makes every event due immediately and
  // anchors event time 0 deterministically, so runs are exactly comparable.
  static ManualClock manual_clock(int64_t{1} << 60);
  Dag dag;
  VertexId source = dag.AddVertex(
      "source",
      [count, key_count, period_ns](const ProcessorMeta&) -> std::unique_ptr<Processor> {
        GeneratorSourceP<Event>::Options opt;
        opt.events_per_second = 1e9 / static_cast<double>(period_ns);
        opt.duration = count * period_ns;
        opt.watermark_interval = period_ns;
        opt.start_time = 0;
        return std::make_unique<GeneratorSourceP<Event>>(
            [key_count](int64_t seq) {
              Event e{static_cast<uint64_t>(seq % key_count), seq};
              return std::make_pair(e, HashU64(e.key));
            },
            opt);
      },
      1);
  VertexId accumulate = dag.AddVertex(
      "accumulate",
      [op, window](const ProcessorMeta&) {
        return std::make_unique<AccumulateByFrameP<Event, int64_t, int64_t>>(
            op, [](const Event& e) { return e.key; }, window);
      },
      ap);
  VertexId combine = dag.AddVertex(
      "combine",
      [op, window](const ProcessorMeta&) {
        return std::make_unique<CombineFramesP<Event, int64_t, int64_t>>(op, window);
      },
      cp);
  auto collector = std::make_shared<SyncCollector<WindowResult<int64_t>>>();
  VertexId sink = dag.AddVertex(
      "sink",
      [collector](const ProcessorMeta&) {
        return std::make_unique<CollectSinkP<WindowResult<int64_t>>>(collector);
      },
      1);
  dag.AddEdge(source, accumulate);
  dag.AddEdge(accumulate, combine).routing = RoutingPolicy::kPartitioned;
  dag.AddEdge(combine, sink);

  JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 2;
  params.clock = &manual_clock;
  auto job = Job::Create(params);
  EXPECT_TRUE(job.ok()) << job.status().ToString();
  EXPECT_TRUE((*job)->Start().ok());
  EXPECT_TRUE((*job)->Join().ok());
  return collector->Snapshot();
}

// Reference: brute-force tumbling window counts. Event seq has timestamp
// anchored at the source's start; windows are relative so we only compare
// relative structure: counts per (key, windows-since-first).
TEST(WindowTest, TumblingCountMatchesReference) {
  constexpr int64_t kCount = 10'000;
  constexpr int64_t kKeys = 10;
  constexpr Nanos kPeriod = 1000;  // 1 event / us
  WindowDef window = WindowDef::Tumbling(kNanosPerMilli);  // 1000 events per window

  auto results =
      RunCountWindowJob(kCount, kKeys, kPeriod, window, CountingAggregate<Event>());

  // Total counted events across all windows must equal the event count.
  int64_t total = 0;
  for (const auto& r : results) total += r.value;
  EXPECT_EQ(total, kCount);

  // Each (key, window_end) appears at most once.
  std::set<std::pair<uint64_t, Nanos>> seen;
  for (const auto& r : results) {
    auto [it, inserted] = seen.insert({r.key, r.window_end});
    EXPECT_TRUE(inserted) << "duplicate window result for key " << r.key;
    EXPECT_EQ(r.window_end - r.window_start, window.size);
  }

  // Full windows hold exactly events/window / keys per key.
  std::map<Nanos, int64_t> per_window_total;
  for (const auto& r : results) per_window_total[r.window_end] += r.value;
  int64_t full_windows = 0;
  for (const auto& [end, sum] : per_window_total) {
    if (sum == kNanosPerMilli / kPeriod) ++full_windows;
  }
  EXPECT_GE(full_windows, kCount * kPeriod / kNanosPerMilli - 2);
}

// Sliding windows: every event is counted window_size/slide times.
TEST(WindowTest, SlidingCountCountsEachEventNTimes) {
  constexpr int64_t kCount = 4'000;
  constexpr int64_t kKeys = 7;
  constexpr Nanos kPeriod = 1000;
  WindowDef window = WindowDef::Sliding(4 * kNanosPerMilli, kNanosPerMilli);

  auto results =
      RunCountWindowJob(kCount, kKeys, kPeriod, window, CountingAggregate<Event>());

  int64_t total = 0;
  for (const auto& r : results) total += r.value;
  // Each event appears in exactly 4 windows (all windows flushed at end).
  EXPECT_EQ(total, kCount * 4);
}

// The deduct-based path and the recombine path must agree exactly.
TEST(WindowTest, DeductAndRecombinePathsAgree) {
  constexpr int64_t kCount = 6'000;
  constexpr int64_t kKeys = 13;
  constexpr Nanos kPeriod = 1000;
  WindowDef window = WindowDef::Sliding(3 * kNanosPerMilli, kNanosPerMilli);

  auto with_deduct = CountingAggregate<Event>();
  auto without_deduct = CountingAggregate<Event>();
  without_deduct.deduct = nullptr;

  auto a = RunCountWindowJob(kCount, kKeys, kPeriod, window, with_deduct);
  auto b = RunCountWindowJob(kCount, kKeys, kPeriod, window, without_deduct);

  // With the deterministic clock, both runs must produce identical
  // (key, window_end) -> value mappings.
  std::map<std::pair<uint64_t, Nanos>, int64_t> ma, mb;
  for (const auto& r : a) ma[{r.key, r.window_end}] = r.value;
  for (const auto& r : b) mb[{r.key, r.window_end}] = r.value;
  EXPECT_EQ(ma, mb);
}

// Summing aggregate over sliding windows preserves the total mass
// (each event's amount counted size/slide times).
TEST(WindowTest, SlidingSumPreservesMass) {
  constexpr int64_t kCount = 3'000;
  constexpr int64_t kKeys = 5;
  constexpr Nanos kPeriod = 1000;
  WindowDef window = WindowDef::Sliding(2 * kNanosPerMilli, kNanosPerMilli);

  auto op = SummingAggregate<Event>([](const Event& e) { return e.amount; });
  auto results = RunCountWindowJob(kCount, kKeys, kPeriod, window, op);

  int64_t total = 0;
  for (const auto& r : results) total += r.value;
  EXPECT_EQ(total, 2 * kCount * (kCount - 1) / 2);
}

// Max aggregate (no deduct) across tumbling windows: max of each window is
// bounded by the global max and appears for each key.
TEST(WindowTest, TumblingMaxEmitsPerKey) {
  constexpr int64_t kCount = 2'000;
  constexpr int64_t kKeys = 4;
  constexpr Nanos kPeriod = 1000;
  WindowDef window = WindowDef::Tumbling(kNanosPerMilli);

  auto op = MaxAggregate<Event>([](const Event& e) { return e.amount; });
  auto results = RunCountWindowJob(kCount, kKeys, kPeriod, window, op);

  ASSERT_FALSE(results.empty());
  std::set<uint64_t> keys;
  for (const auto& r : results) {
    EXPECT_LT(r.value, kCount);
    EXPECT_GE(r.value, 0);
    keys.insert(r.key);
  }
  EXPECT_EQ(keys.size(), static_cast<size_t>(kKeys));
}

// Window definition helpers.
TEST(WindowDefTest, FrameEndComputation) {
  WindowDef w = WindowDef::Sliding(100, 10);
  EXPECT_EQ(w.FrameEndFor(0), 10);
  EXPECT_EQ(w.FrameEndFor(9), 10);
  EXPECT_EQ(w.FrameEndFor(10), 20);
  EXPECT_EQ(w.FrameEndFor(95), 100);
}

// Higher parallelism in both stages must not change the aggregate result.
TEST(WindowTest, ParallelismInvariance) {
  constexpr int64_t kCount = 3'000;
  constexpr int64_t kKeys = 11;
  constexpr Nanos kPeriod = 1000;
  WindowDef window = WindowDef::Tumbling(kNanosPerMilli);

  auto r1 = RunCountWindowJob(kCount, kKeys, kPeriod, window, CountingAggregate<Event>(),
                              /*ap=*/1, /*cp=*/1);
  auto r4 = RunCountWindowJob(kCount, kKeys, kPeriod, window, CountingAggregate<Event>(),
                              /*ap=*/4, /*cp=*/4);

  int64_t t1 = 0, t4 = 0;
  for (const auto& r : r1) t1 += r.value;
  for (const auto& r : r4) t4 += r.value;
  EXPECT_EQ(t1, kCount);
  EXPECT_EQ(t4, kCount);
}

}  // namespace
}  // namespace jet::core
