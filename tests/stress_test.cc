#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/job.h"
#include "core/processors_basic.h"
#include "core/processors_window.h"
#include "imdg/grid.h"
#include "imdg/snapshot_store.h"
#include "testkit/wait.h"

namespace jet::core {
namespace {

struct Event {
  uint64_t key = 0;
};

// Builds a randomized windowed pipeline shape from `rng`.
struct FuzzJob {
  Dag dag;
  std::shared_ptr<std::atomic<int64_t>> sink_count =
      std::make_shared<std::atomic<int64_t>>(0);

  explicit FuzzJob(Rng* rng) {
    auto source_p = static_cast<int32_t>(1 + rng->NextBounded(2));
    auto acc_p = static_cast<int32_t>(1 + rng->NextBounded(3));
    auto comb_p = static_cast<int32_t>(1 + rng->NextBounded(3));
    auto keys = static_cast<int64_t>(4 + rng->NextBounded(28));
    Nanos window = static_cast<Nanos>(20 + rng->NextBounded(60)) * kNanosPerMilli;
    Nanos slide = window / static_cast<Nanos>(1 + rng->NextBounded(4));
    auto queue_size = static_cast<int32_t>(8 << rng->NextBounded(5));

    auto op = CountingAggregate<Event>();
    WindowDef def = WindowDef::Sliding(window, std::max<Nanos>(slide, kNanosPerMilli));

    VertexId source = dag.AddVertex(
        "source",
        [keys](const ProcessorMeta&) -> std::unique_ptr<Processor> {
          GeneratorSourceP<Event>::Options opt;
          opt.events_per_second = 100'000;
          opt.duration = 400 * kNanosPerMilli;
          opt.watermark_interval = 5 * kNanosPerMilli;
          return std::make_unique<GeneratorSourceP<Event>>(
              [keys](int64_t seq) {
                Event e{static_cast<uint64_t>(seq % keys)};
                return std::make_pair(e, HashU64(e.key));
              },
              opt);
        },
        source_p);
    VertexId accumulate = dag.AddVertex(
        "accumulate",
        [op, def](const ProcessorMeta&) {
          return std::make_unique<AccumulateByFrameP<Event, int64_t, int64_t>>(
              op, [](const Event& e) { return e.key; }, def);
        },
        acc_p);
    VertexId combine = dag.AddVertex(
        "combine",
        [op, def](const ProcessorMeta&) {
          return std::make_unique<CombineFramesP<Event, int64_t, int64_t>>(op, def);
        },
        comb_p);
    VertexId sink = dag.AddVertex(
        "sink",
        [counter = sink_count](const ProcessorMeta&) {
          return std::make_unique<CountSinkP<WindowResult<int64_t>>>(counter);
        },
        1);
    auto& e1 = dag.AddEdge(source, accumulate);
    e1.queue_size = queue_size;
    auto& e2 = dag.AddEdge(accumulate, combine);
    e2.routing = RoutingPolicy::kPartitioned;
    e2.queue_size = queue_size;
    dag.AddEdge(combine, sink).queue_size = queue_size;
  }
};

// Hard-cancels randomized jobs at random points; the engine must neither
// crash nor hang (Join bounded), whatever the timing.
TEST(StressTest, RandomCancellationNeverHangs) {
  Rng rng(20260706);
  for (int round = 0; round < 8; ++round) {
    FuzzJob fuzz(&rng);
    imdg::DataGrid grid(1);
    ASSERT_TRUE(grid.AddMember(0).ok());
    imdg::SnapshotStore store(&grid);

    JobParams params;
    params.dag = &fuzz.dag;
    params.cooperative_threads = 2;
    bool with_guarantee = rng.NextBounded(2) == 0;
    if (with_guarantee) {
      params.config.guarantee = rng.NextBounded(2) == 0
                                    ? ProcessingGuarantee::kExactlyOnce
                                    : ProcessingGuarantee::kAtLeastOnce;
      params.config.snapshot_interval = 15 * kNanosPerMilli;
      params.snapshot_store = &store;
      params.job_id = 100 + round;
    }

    auto job = Job::Create(params);
    ASSERT_TRUE(job.ok()) << "round " << round << ": " << job.status().ToString();
    ASSERT_TRUE((*job)->Start().ok());

    auto cancel_after = std::chrono::milliseconds(rng.NextBounded(120));
    std::this_thread::sleep_for(cancel_after);
    (*job)->Cancel();

    WallClock clock;
    Nanos t0 = clock.Now();
    Status s = (*job)->Join();
    Nanos join_time = clock.Now() - t0;
    EXPECT_TRUE(s.ok()) << "round " << round;
    EXPECT_LT(join_time, 5 * kNanosPerSecond) << "round " << round << " Join hung";
  }
}

// Kill + restore repeatedly in one lineage: state stays exact through a
// CHAIN of failures (not just one).
TEST(StressTest, RepeatedKillRestoreChainStaysExact) {
  constexpr double kRate = 100'000;
  constexpr Nanos kDuration = 1'500 * kNanosPerMilli;
  const auto kExpected = static_cast<int64_t>(kRate * (kDuration / 1e9));

  imdg::DataGrid grid(1);
  ASSERT_TRUE(grid.AddMember(0).ok());
  imdg::SnapshotStore store(&grid);

  auto collector = std::make_shared<SyncCollector<WindowResult<int64_t>>>();
  Dag dag;
  auto op = CountingAggregate<Event>();
  WindowDef window = WindowDef::Tumbling(50 * kNanosPerMilli);
  VertexId source = dag.AddVertex(
      "source",
      [](const ProcessorMeta&) -> std::unique_ptr<Processor> {
        GeneratorSourceP<Event>::Options opt;
        opt.events_per_second = kRate;
        opt.duration = kDuration;
        opt.watermark_interval = 5 * kNanosPerMilli;
        return std::make_unique<GeneratorSourceP<Event>>(
            [](int64_t seq) {
              Event e{static_cast<uint64_t>(seq % 16)};
              return std::make_pair(e, HashU64(e.key));
            },
            opt);
      },
      1);
  VertexId accumulate = dag.AddVertex(
      "accumulate",
      [op, window](const ProcessorMeta&) {
        return std::make_unique<AccumulateByFrameP<Event, int64_t, int64_t>>(
            op, [](const Event& e) { return e.key; }, window);
      },
      2);
  VertexId combine = dag.AddVertex(
      "combine",
      [op, window](const ProcessorMeta&) {
        return std::make_unique<CombineFramesP<Event, int64_t, int64_t>>(op, window);
      },
      2);
  VertexId sink = dag.AddVertex(
      "sink",
      [collector](const ProcessorMeta&) {
        return std::make_unique<CollectSinkP<WindowResult<int64_t>>>(collector);
      },
      1);
  dag.AddEdge(source, accumulate);
  dag.AddEdge(accumulate, combine).routing = RoutingPolicy::kPartitioned;
  dag.AddEdge(combine, sink);

  JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 2;
  params.config.guarantee = ProcessingGuarantee::kExactlyOnce;
  params.config.snapshot_interval = 40 * kNanosPerMilli;
  params.snapshot_store = &store;
  params.job_id = 55;

  int64_t restore_from = -1;
  for (int attempt = 0; attempt < 4; ++attempt) {
    if (restore_from >= 0) params.restore_snapshot_id = restore_from;
    auto job = Job::Create(params);
    ASSERT_TRUE(job.ok()) << "attempt " << attempt;
    ASSERT_TRUE((*job)->Start().ok());

    if (attempt < 3) {
      // Crash after at least one NEW snapshot commits in this attempt.
      int64_t target = restore_from >= 0 ? restore_from + 1 : 1;
      (void)testkit::WaitUntil(
          [&job, target]() { return (*job)->last_committed_snapshot() >= target; },
          4 * kNanosPerSecond);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      (*job)->Cancel();
      (void)(*job)->Join();
      int64_t committed = (*job)->last_committed_snapshot();
      if (committed <= 0) {
        // The job finished before a snapshot landed; accept completion.
        break;
      }
      restore_from = committed;
    } else {
      ASSERT_TRUE((*job)->Join().ok());
    }
    if ((*job)->IsComplete() && attempt == 3) break;
  }

  std::map<std::pair<uint64_t, Nanos>, int64_t> distinct;
  for (const auto& r : collector->Snapshot()) {
    auto it = distinct.find({r.key, r.window_end});
    if (it == distinct.end()) {
      distinct[{r.key, r.window_end}] = r.value;
    } else {
      EXPECT_EQ(it->second, r.value) << "conflicting duplicates across the chain";
    }
  }
  int64_t total = 0;
  for (const auto& [kw, v] : distinct) total += v;
  EXPECT_EQ(total, kExpected);
}

}  // namespace
}  // namespace jet::core
