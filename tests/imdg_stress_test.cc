// IMDG at scale: >=1M entries through an IMap, migration under concurrent
// writes, capacity/usage accounting, and the partition-count sweep. These
// carry the `stress` label, so the CI sanitizer lanes run them explicitly.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/serde.h"
#include "imdg/grid.h"
#include "imdg/imap.h"

namespace jet::imdg {
namespace {

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define JETSIM_SANITIZED 1
#endif
#endif
#if !defined(JETSIM_SANITIZED) && defined(__SANITIZE_ADDRESS__)
#define JETSIM_SANITIZED 1
#endif

// Sanitizer lanes run the same scenarios at reduced entry counts (the
// instrumentation costs ~10-30x); the plain build drives the full >=1M.
#ifdef JETSIM_SANITIZED
constexpr int64_t kMillion = 100'000;
#else
constexpr int64_t kMillion = 1'000'000;
#endif

TEST(ImdgStressTest, MillionEntriesThroughIMapWithUsageAccounting) {
  DataGrid grid(/*backup_count=*/1, /*partition_count=*/271);
  ASSERT_TRUE(grid.AddMember(1).ok());
  ASSERT_TRUE(grid.AddMember(2).ok());
  IMap<uint64_t, std::string> map(&grid, "bulk");
  ASSERT_TRUE(map.Reserve(kMillion).ok());

  const std::string value = "0123456789abcdef";  // 16 bytes + codec framing
  for (int64_t i = 0; i < kMillion; ++i) {
    ASSERT_TRUE(map.Put(static_cast<uint64_t>(i), value).ok());
  }
  EXPECT_EQ(map.Size(), kMillion);

  // Point reads still work at scale.
  auto hit = map.Get(static_cast<uint64_t>(kMillion / 2));
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(hit->has_value());
  EXPECT_EQ(**hit, value);

  // Usage accounting: entries exact; bytes cover key + encoded value; a
  // uniform load must not concentrate into few partitions.
  GridUsage usage = grid.Usage();
  EXPECT_EQ(usage.entries, kMillion);
  EXPECT_GE(usage.bytes_approx, kMillion * (8 + 16));
  EXPECT_LE(usage.bytes_approx, kMillion * (8 + 16 + 16));
  EXPECT_GT(usage.max_partition_entries, 0);
  EXPECT_GE(usage.partition_skew, 1.0);
  EXPECT_LT(usage.partition_skew, 1.5) << "uniform keys should spread evenly";

  // Replicas stayed in lockstep through the whole load.
  ASSERT_TRUE(grid.CheckReplicaConsistency("bulk").ok());
}

TEST(ImdgStressTest, MigrationUnderConcurrentWrites) {
  DataGrid grid(/*backup_count=*/1, /*partition_count=*/271);
  ASSERT_TRUE(grid.AddMember(1).ok());
  ASSERT_TRUE(grid.AddMember(2).ok());
  IMap<uint64_t, int64_t> map(&grid, "live");

  const int64_t preload = kMillion / 4;
  ASSERT_TRUE(map.Reserve(preload).ok());
  for (int64_t i = 0; i < preload; ++i) {
    ASSERT_TRUE(map.Put(static_cast<uint64_t>(i), i).ok());
  }

  // Writers keep mutating while two more members join (each join migrates
  // partitions under the writers' feet).
  std::atomic<bool> stop{false};
  std::atomic<int64_t> writes{0};
  std::thread writer([&]() {
    Rng rng(99);
    while (!stop.load(std::memory_order_acquire)) {
      const auto key = rng.NextBounded(static_cast<uint64_t>(preload));
      if (map.Put(key, static_cast<int64_t>(key) + 1).ok()) {
        writes.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  auto migrated3 = grid.AddMember(3);
  ASSERT_TRUE(migrated3.ok());
  EXPECT_GT(*migrated3, 0) << "a join at this scale must move data";
  auto migrated4 = grid.AddMember(4);
  ASSERT_TRUE(migrated4.ok());
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_GT(writes.load(std::memory_order_relaxed), 0);

  // No entry lost, no replica divergence, and the stats saw the
  // migrations.
  EXPECT_EQ(map.Size(), preload);
  ASSERT_TRUE(grid.CheckReplicaConsistency("live").ok());
  ASSERT_TRUE(grid.ValidateTable().ok());
  EXPECT_GE(grid.stats().migrated_entries, *migrated3);
}

// Batched partition migration racing single-writer owned access (PR 10):
// members join while a writer thread mutates its owned partitions through
// OwnedPartitionHandles. The join must hand whole partition stores to the
// new owner as batches (stats().batched_moves), the quiesce protocol must
// fence the owned writers across each layout change, and no write — owned
// or locked — may be lost.
TEST(ImdgStressTest, BatchedMigrationUnderConcurrentOwnedWrites) {
  DataGrid grid(/*backup_count=*/0, /*partition_count=*/64);
  ASSERT_TRUE(grid.AddMember(1).ok());
  IMap<uint64_t, int64_t> plain(&grid, "plain");
  const int64_t preload = kMillion / 10;
  ASSERT_TRUE(plain.Reserve(preload).ok());
  for (int64_t i = 0; i < preload; ++i) {
    ASSERT_TRUE(plain.Put(static_cast<uint64_t>(i), i).ok());
  }

  constexpr PartitionId kOwnedPartitions = 8;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> owned_writes{0};
  Status writer_error;
  std::thread owner([&]() {
    // Claim + acquire on the writer thread: the handles bind here and the
    // membership changes below must quiesce around every operation.
    std::vector<std::unique_ptr<OwnedPartitionHandle>> handles;
    for (PartitionId p = 0; p < kOwnedPartitions; ++p) {
      Status s = grid.ownership().Claim(p, 0, /*tasklet=*/p);
      if (!s.ok()) {
        writer_error = s;
        return;
      }
      auto handle = grid.AcquireOwnedPartition("owned", p, p);
      if (!handle.ok()) {
        writer_error = handle.status();
        return;
      }
      handles.push_back(std::move(handle).value());
    }
    const Bytes key = {0x42};
    while (!stop.load(std::memory_order_acquire)) {
      for (auto& h : handles) {
        Status s = h->Update(key, [](Bytes* v) {
          if (v->empty()) v->assign(8, 0);
          for (size_t i = 0; i < v->size(); ++i) {
            if (++(*v)[i] != 0) break;
          }
        });
        if (!s.ok()) {
          writer_error = s;
          return;
        }
      }
      owned_writes.fetch_add(1, std::memory_order_acq_rel);
    }
    // Read back before releasing: exactly-one-writer means the counter
    // equals this thread's write count on every partition, across every
    // batched migration that moved the store under the handle.
    const int64_t expected = owned_writes.load(std::memory_order_acquire);
    for (auto& h : handles) {
      std::optional<Bytes> v = h->Get(key);
      int64_t counted = 0;
      if (v.has_value()) {
        for (size_t i = 0; i < 8 && i < v->size(); ++i) {
          counted |= static_cast<int64_t>((*v)[i]) << (8 * i);
        }
      }
      if (counted != expected) {
        writer_error = InternalError(
            "owned partition " + std::to_string(h->partition()) + " counted " +
            std::to_string(counted) + ", writer performed " +
            std::to_string(expected));
        return;
      }
    }
    handles.clear();
    for (PartitionId p = 0; p < kOwnedPartitions; ++p) {
      (void)grid.ownership().Release(p, p);
    }
  });

  // Wait until the owned writer is actually running before migrating.
  while (owned_writes.load(std::memory_order_acquire) < 10 && !stop.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  auto migrated2 = grid.AddMember(2);
  ASSERT_TRUE(migrated2.ok());
  EXPECT_GT(*migrated2, 0);
  auto migrated3 = grid.AddMember(3);
  ASSERT_TRUE(migrated3.ok());
  stop.store(true, std::memory_order_release);
  owner.join();
  ASSERT_TRUE(writer_error.ok()) << writer_error.ToString();
  EXPECT_GT(owned_writes.load(std::memory_order_acquire), 0);

  // The joins moved whole stores, not entry-by-entry copies under the
  // partition lock.
  EXPECT_GT(grid.stats().batched_moves, 0);
  // The locked-mode preload survived the same migrations untouched.
  EXPECT_EQ(plain.Size(), preload);
  ASSERT_TRUE(grid.ValidateTable().ok());
}

TEST(ImdgStressTest, SnapshotSizedStateStaysAccountable) {
  // Snapshot-size sanity: state entries the size of real matcher
  // snapshots (4 KiB values) at 6-figure entry counts, with byte
  // accounting that must track the payload volume.
  DataGrid grid(/*backup_count=*/1, /*partition_count=*/271);
  ASSERT_TRUE(grid.AddMember(1).ok());
  ASSERT_TRUE(grid.AddMember(2).ok());

  const int64_t entries = kMillion / 10;
  const Bytes value(4096, 0x5A);
  ASSERT_TRUE(grid.Reserve("snap", entries).ok());
  for (int64_t i = 0; i < entries; ++i) {
    BytesWriter key;
    key.WriteU64(HashU64(static_cast<uint64_t>(i)));
    ASSERT_TRUE(grid.Put("snap", key.buffer(), value).ok());
  }

  GridUsage usage = grid.Usage();
  EXPECT_EQ(usage.entries, entries);
  EXPECT_GE(usage.bytes_approx, entries * 4096);
  EXPECT_LT(usage.bytes_approx, entries * (4096 + 64));
  // Replicated bytes: every put wrote key+value to exactly one backup.
  EXPECT_GE(grid.stats().replicated_bytes, entries * 4096);
}

TEST(ImdgStressTest, PartitionCountSweepSpreadsLoad) {
  for (int32_t partitions : {16, 271, 1024}) {
    DataGrid grid(/*backup_count=*/1, partitions);
    ASSERT_TRUE(grid.AddMember(1).ok());
    ASSERT_TRUE(grid.AddMember(2).ok());
    IMap<uint64_t, int64_t> map(&grid, "sweep");
    ASSERT_TRUE(map.Reserve(100'000).ok());
    for (int64_t i = 0; i < 100'000; ++i) {
      ASSERT_TRUE(map.Put(HashU64(static_cast<uint64_t>(i)), i).ok());
    }
    EXPECT_EQ(map.Size(), 100'000);
    GridUsage usage = grid.Usage();
    EXPECT_EQ(usage.entries, 100'000);
    // The fullest partition must stay near the even share; the tolerable
    // excess shrinks as partitions get bigger (relative noise drops).
    const double mean = 100'000.0 / partitions;
    EXPECT_LT(static_cast<double>(usage.max_partition_entries), mean * 1.6)
        << "partitions=" << partitions;
    ASSERT_TRUE(grid.CheckReplicaConsistency("sweep").ok());
  }
}

TEST(ImdgStressTest, ReserveIsIdempotentAndPreservesData) {
  DataGrid grid(/*backup_count=*/1, /*partition_count=*/64);
  ASSERT_TRUE(grid.AddMember(1).ok());
  IMap<uint64_t, int64_t> map(&grid, "reserved");
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(map.Put(static_cast<uint64_t>(i), i).ok());
  }
  // Reserving mid-life (larger, then smaller-than-current) never disturbs
  // entries.
  ASSERT_TRUE(map.Reserve(500'000).ok());
  ASSERT_TRUE(map.Reserve(10).ok());
  EXPECT_EQ(map.Size(), 1000);
  for (int64_t i = 0; i < 1000; i += 97) {
    auto v = map.Get(static_cast<uint64_t>(i));
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(v->has_value());
    EXPECT_EQ(**v, i);
  }
}

TEST(ImdgStressTest, ReserveRequiresMembers) {
  DataGrid grid;
  EXPECT_FALSE(grid.Reserve("empty", 100).ok());
  EXPECT_FALSE([&] {
    DataGrid g;
    (void)g.AddMember(1);
    return g.Reserve("neg", -1).ok();
  }());
}

}  // namespace
}  // namespace jet::imdg
