#include <chrono>
#include <map>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "core/dag.h"
#include "core/job.h"
#include "core/processors_basic.h"
#include "core/processors_window.h"
#include "imdg/grid.h"
#include "imdg/snapshot_store.h"

namespace jet::core {
namespace {

struct Event {
  uint64_t key = 0;
  int64_t amount = 0;
};

struct WindowedFixture {
  std::shared_ptr<SyncCollector<WindowResult<int64_t>>> collector;
  Dag dag;
};

// Builds source(rate, duration) -> accumulate -> combine(count) -> collect
// over tumbling 50ms windows, all counting events per key.
std::unique_ptr<WindowedFixture> MakeWindowedCountDag(double events_per_second,
                                                      Nanos duration, int64_t keys) {
  auto fx = std::make_unique<WindowedFixture>();
  fx->collector = std::make_shared<SyncCollector<WindowResult<int64_t>>>();
  WindowDef window = WindowDef::Tumbling(50 * kNanosPerMilli);
  auto op = CountingAggregate<Event>();

  VertexId source = fx->dag.AddVertex(
      "source",
      [events_per_second, duration, keys](const ProcessorMeta&)
          -> std::unique_ptr<Processor> {
        GeneratorSourceP<Event>::Options opt;
        opt.events_per_second = events_per_second;
        opt.duration = duration;
        opt.watermark_interval = 5 * kNanosPerMilli;
        return std::make_unique<GeneratorSourceP<Event>>(
            [keys](int64_t seq) {
              Event e{static_cast<uint64_t>(seq % keys), seq};
              return std::make_pair(e, HashU64(e.key));
            },
            opt);
      },
      1);
  VertexId accumulate = fx->dag.AddVertex(
      "accumulate",
      [op, window](const ProcessorMeta&) {
        return std::make_unique<AccumulateByFrameP<Event, int64_t, int64_t>>(
            op, [](const Event& e) { return e.key; }, window);
      },
      2);
  VertexId combine = fx->dag.AddVertex(
      "combine",
      [op, window](const ProcessorMeta&) {
        return std::make_unique<CombineFramesP<Event, int64_t, int64_t>>(op, window);
      },
      2);
  VertexId sink = fx->dag.AddVertex(
      "sink",
      [collector = fx->collector](const ProcessorMeta&) {
        return std::make_unique<CollectSinkP<WindowResult<int64_t>>>(collector);
      },
      1);
  fx->dag.AddEdge(source, accumulate);
  fx->dag.AddEdge(accumulate, combine).routing = RoutingPolicy::kPartitioned;
  fx->dag.AddEdge(combine, sink);
  return fx;
}

// A job with exactly-once guarantee that never fails produces the same
// results as one without snapshots.
TEST(SnapshotTest, ExactlyOnceWithoutFailureIsCorrect) {
  constexpr double kRate = 200'000;
  constexpr Nanos kDuration = 500 * kNanosPerMilli;
  const auto kExpected = static_cast<int64_t>(kRate * (kDuration / 1e9));

  imdg::DataGrid grid(/*backup_count=*/1);
  ASSERT_TRUE(grid.AddMember(0).ok());
  imdg::SnapshotStore store(&grid);

  auto fx = MakeWindowedCountDag(kRate, kDuration, 16);
  JobParams params;
  params.dag = &fx->dag;
  params.cooperative_threads = 2;
  params.config.guarantee = ProcessingGuarantee::kExactlyOnce;
  params.config.snapshot_interval = 50 * kNanosPerMilli;
  params.snapshot_store = &store;
  params.job_id = 7;

  auto job = Job::Create(params);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());
  EXPECT_GT((*job)->snapshots_taken(), 0);

  int64_t total = 0;
  for (const auto& r : fx->collector->Snapshot()) total += r.value;
  EXPECT_EQ(total, kExpected);
}

// Kill the job mid-flight after a committed snapshot, restore a new job
// from it, and verify the Chandy-Lamport exactly-once property: every
// window result is present, duplicated emissions agree byte-for-byte, and
// the distinct windows account for every event exactly once (§4.4).
TEST(SnapshotTest, ExactlyOnceSurvivesFailureAndRestore) {
  constexpr double kRate = 100'000;
  constexpr Nanos kDuration = 1'500 * kNanosPerMilli;
  const auto kExpected = static_cast<int64_t>(kRate * (kDuration / 1e9));

  imdg::DataGrid grid(/*backup_count=*/1);
  ASSERT_TRUE(grid.AddMember(0).ok());
  imdg::SnapshotStore store(&grid);

  auto fx = MakeWindowedCountDag(kRate, kDuration, 16);
  JobParams params;
  params.dag = &fx->dag;
  params.cooperative_threads = 2;
  params.config.guarantee = ProcessingGuarantee::kExactlyOnce;
  params.config.snapshot_interval = 50 * kNanosPerMilli;
  params.snapshot_store = &store;
  params.job_id = 9;

  auto job1 = Job::Create(params);
  ASSERT_TRUE(job1.ok());
  ASSERT_TRUE((*job1)->Start().ok());

  // Wait for at least two committed snapshots, then hard-kill the job.
  for (int i = 0; i < 2000 && (*job1)->last_committed_snapshot() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE((*job1)->last_committed_snapshot(), 2) << "no snapshot committed in time";
  (*job1)->Cancel();
  (void)(*job1)->Join();
  int64_t restore_id = (*job1)->last_committed_snapshot();
  job1->reset();

  // Restore: same DAG, same collector (sinks are external observers), same
  // snapshot store.
  auto committed = store.LastCommitted(9);
  ASSERT_TRUE(committed.ok());
  ASSERT_TRUE(committed->has_value());
  EXPECT_EQ(**committed, restore_id);

  params.restore_snapshot_id = restore_id;
  auto job2 = Job::Create(params);
  ASSERT_TRUE(job2.ok()) << job2.status().ToString();
  ASSERT_TRUE((*job2)->Start().ok());
  ASSERT_TRUE((*job2)->Join().ok());

  // Group results by (key, window_end): duplicates (windows emitted both
  // before the crash and after restore) must agree on the value.
  std::map<std::pair<uint64_t, Nanos>, int64_t> distinct;
  for (const auto& r : fx->collector->Snapshot()) {
    auto it = distinct.find({r.key, r.window_end});
    if (it == distinct.end()) {
      distinct[{r.key, r.window_end}] = r.value;
    } else {
      EXPECT_EQ(it->second, r.value)
          << "conflicting duplicate for key " << r.key << " window " << r.window_end;
    }
  }
  int64_t total = 0;
  for (const auto& [kw, v] : distinct) total += v;
  EXPECT_EQ(total, kExpected);
}

// At-least-once: no barrier alignment, so after a crash+restore some events
// may be double-counted, but none may be lost.
TEST(SnapshotTest, AtLeastOnceNeverLosesEvents) {
  constexpr double kRate = 100'000;
  constexpr Nanos kDuration = 1'200 * kNanosPerMilli;
  const auto kExpected = static_cast<int64_t>(kRate * (kDuration / 1e9));

  imdg::DataGrid grid(/*backup_count=*/1);
  ASSERT_TRUE(grid.AddMember(0).ok());
  imdg::SnapshotStore store(&grid);

  auto fx = MakeWindowedCountDag(kRate, kDuration, 16);
  JobParams params;
  params.dag = &fx->dag;
  params.cooperative_threads = 2;
  params.config.guarantee = ProcessingGuarantee::kAtLeastOnce;
  params.config.snapshot_interval = 50 * kNanosPerMilli;
  params.snapshot_store = &store;
  params.job_id = 11;

  auto job1 = Job::Create(params);
  ASSERT_TRUE(job1.ok());
  ASSERT_TRUE((*job1)->Start().ok());
  for (int i = 0; i < 2000 && (*job1)->last_committed_snapshot() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE((*job1)->last_committed_snapshot(), 2);
  (*job1)->Cancel();
  (void)(*job1)->Join();
  int64_t restore_id = (*job1)->last_committed_snapshot();
  job1->reset();

  params.restore_snapshot_id = restore_id;
  auto job2 = Job::Create(params);
  ASSERT_TRUE(job2.ok());
  ASSERT_TRUE((*job2)->Start().ok());
  ASSERT_TRUE((*job2)->Join().ok());

  std::map<std::pair<uint64_t, Nanos>, int64_t> distinct;
  for (const auto& r : fx->collector->Snapshot()) {
    auto key = std::make_pair(r.key, r.window_end);
    distinct[key] = std::max(distinct[key], r.value);
  }
  int64_t total = 0;
  for (const auto& [kw, v] : distinct) total += v;
  EXPECT_GE(total, kExpected);  // no loss
}

// Snapshots must not be committed unless every tasklet acked; a job without
// a guarantee must take none.
TEST(SnapshotTest, NoGuaranteeTakesNoSnapshots) {
  auto fx = MakeWindowedCountDag(50'000, 200 * kNanosPerMilli, 8);
  JobParams params;
  params.dag = &fx->dag;
  params.cooperative_threads = 2;
  auto job = Job::Create(params);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());
  EXPECT_EQ((*job)->snapshots_taken(), 0);
  EXPECT_EQ((*job)->last_committed_snapshot(), 0);
}

}  // namespace
}  // namespace jet::core
