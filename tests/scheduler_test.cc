// Regression tests for the load-balanced cooperative scheduler: the
// AwaitCompletion data race, the mid-round-erase fairness skew, and the
// starvation scenario the rebalancer exists to fix (two always-busy
// tasklets pinned to one worker while a sibling idles, §3.2).

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/execution_service.h"
#include "obs/event_loop_profiler.h"
#include "obs/metrics_registry.h"

namespace jet::core {
namespace {

// Minimal scripted tasklet.
class ScriptedTasklet final : public Tasklet {
 public:
  ScriptedTasklet(std::string name, int64_t work_calls)
      : name_(std::move(name)), work_calls_(work_calls) {}

  TaskletProgress Call() override {
    int64_t done_so_far = calls_.fetch_add(1) + 1;
    return {true, done_so_far >= work_calls_};
  }

  const std::string& name() const override { return name_; }
  int64_t calls() const { return calls_.load(); }

 private:
  std::string name_;
  int64_t work_calls_;
  std::atomic<int64_t> calls_{0};
};

// Spins `busy_nanos` of wall time per call until `stop` is raised.
class BusyTasklet final : public Tasklet {
 public:
  BusyTasklet(std::string name, Nanos busy_nanos, const std::atomic<bool>* stop)
      : name_(std::move(name)), busy_nanos_(busy_nanos), stop_(stop) {}

  TaskletProgress Call() override {
    const Nanos until = WallClock::Global().Now() + busy_nanos_;
    while (WallClock::Global().Now() < until) {
    }
    calls_.fetch_add(1, std::memory_order_acq_rel);
    return {true, stop_->load(std::memory_order_acquire)};
  }

  const std::string& name() const override { return name_; }
  int64_t calls() const { return calls_.load(std::memory_order_acquire); }

 private:
  std::string name_;
  Nanos busy_nanos_;
  const std::atomic<bool>* stop_;
  std::atomic<int64_t> calls_{0};
};

// Never makes progress; completes when `stop` is raised.
class IdleTasklet final : public Tasklet {
 public:
  IdleTasklet(std::string name, const std::atomic<bool>* stop)
      : name_(std::move(name)), stop_(stop) {}

  TaskletProgress Call() override {
    return {false, stop_->load(std::memory_order_acquire)};
  }

  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  const std::atomic<bool>* stop_;
};

// Appends its name to a shared log on every call. Only valid on a
// single-worker service (one writer); the service join orders the reads.
class LoggingTasklet final : public Tasklet {
 public:
  LoggingTasklet(std::string name, int64_t work_calls, std::vector<std::string>* log)
      : name_(std::move(name)), work_calls_(work_calls), log_(log) {}

  TaskletProgress Call() override {
    log_->push_back(name_);
    return {true, ++calls_ >= work_calls_};
  }

  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  int64_t work_calls_;
  std::vector<std::string>* log_;
  int64_t calls_ = 0;
};

// Busy time is test-granted in exact quanta: each Grant(n) makes exactly
// one Call() spin n wall-nanos, so a rebalance pass sees precisely the
// deltas the test scripted — no wall-clock ratios, no flakiness. Between
// grants every call is an instant no-progress return (the worker parks).
class GateTasklet final : public Tasklet {
 public:
  GateTasklet(std::string name, const std::atomic<bool>* stop)
      : name_(std::move(name)), stop_(stop) {}

  TaskletProgress Call() override {
    const Nanos want = grant_.exchange(0, std::memory_order_acq_rel);
    if (want > 0) {
      const Nanos until = WallClock::Global().Now() + want;
      while (WallClock::Global().Now() < until) {
      }
      consumed_.fetch_add(1, std::memory_order_acq_rel);
      return {true, stop_->load(std::memory_order_acquire)};
    }
    return {false, stop_->load(std::memory_order_acquire)};
  }

  void OnWorkerAdopted(int32_t worker_index) override {
    adopted_worker_.store(worker_index, std::memory_order_release);
  }

  void Grant(Nanos n) { grant_.store(n, std::memory_order_release); }
  void AwaitConsumed(int64_t count) const {
    while (consumed_.load(std::memory_order_acquire) < count) {
      std::this_thread::yield();
    }
  }
  int32_t adopted_worker() const {
    return adopted_worker_.load(std::memory_order_acquire);
  }

  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  const std::atomic<bool>* stop_;
  std::atomic<Nanos> grant_{0};
  std::atomic<int64_t> consumed_{0};
  std::atomic<int32_t> adopted_worker_{-1};
};

// Regression for the AwaitCompletion race: joined_ was a plain bool and
// first_error_ was read without its mutex, so two concurrent waiters (the
// job's Join() and the supervisor's health probe) raced on both. Under
// TSan this test fails on the old code.
TEST(SchedulerTest, AwaitCompletionIsSafeFromConcurrentThreads) {
  ScriptedTasklet a("a", 2000), b("b", 1000);
  ExecutionService service(2);
  ASSERT_TRUE(service.Start({&a, &b}).ok());

  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  std::vector<Status> results(kWaiters);
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&service, &results, i]() { results[static_cast<size_t>(i)] = service.AwaitCompletion(); });
  }
  for (auto& t : waiters) t.join();
  for (const Status& s : results) EXPECT_TRUE(s.ok());
  EXPECT_TRUE(service.IsComplete());
  EXPECT_EQ(a.calls(), 2000);
  EXPECT_EQ(b.calls(), 1000);
}

TEST(SchedulerTest, AwaitCompletionRacingAnInitErrorReportsIt) {
  // The error is recorded by a worker while waiters race on the join path.
  class FailingTasklet final : public Tasklet {
   public:
    Status Init() override { return InternalError("boom"); }
    TaskletProgress Call() override { return {false, true}; }
    const std::string& name() const override { return name_; }

   private:
    std::string name_ = "failing";
  };
  FailingTasklet bad;
  ScriptedTasklet good("good", 1'000'000'000);
  ExecutionService service(2);
  ASSERT_TRUE(service.Start({&good, &bad}).ok());
  std::vector<std::thread> waiters;
  std::vector<Status> results(2);
  for (int i = 0; i < 2; ++i) {
    waiters.emplace_back([&service, &results, i]() { results[static_cast<size_t>(i)] = service.AwaitCompletion(); });
  }
  for (auto& t : waiters) t.join();
  for (const Status& s : results) EXPECT_EQ(s.code(), StatusCode::kInternal);
}

// Regression for the fairness skew: a tasklet finishing mid-round used to
// be erased from the round vector on the spot, shifting its successors
// forward and handing them a second call within the same round. Removal is
// now deferred to the round boundary, so the round-robin order of the
// survivors is stable.
TEST(SchedulerTest, DoneTaskletRemovalPreservesRoundOrder) {
  std::vector<std::string> log;
  LoggingTasklet a("a", 9, &log), b("b", 1, &log), c("c", 9, &log);
  ExecutionService service(1);  // single worker: deterministic round order
  ASSERT_TRUE(service.Start({&a, &b, &c}).ok());
  ASSERT_TRUE(service.AwaitCompletion().ok());

  // Round 1 runs a, b, c; b is done and must still not disturb c's slot.
  ASSERT_GE(log.size(), 3u);
  EXPECT_EQ(log[0], "a");
  EXPECT_EQ(log[1], "b");
  EXPECT_EQ(log[2], "c");
  // Every later round is exactly [a, c]: strict alternation, no double
  // calls within a round.
  ASSERT_EQ(log.size(), 3u + 2u * 8u);
  for (size_t i = 3; i < log.size(); ++i) {
    EXPECT_EQ(log[i], (i - 3) % 2 == 0 ? "a" : "c") << "position " << i;
  }
}

// The starvation scenario (§3.2): round-robin assignment pins both heavy
// tasklets to worker 0 while worker 1 hosts only idle ones. The rebalance
// pass must migrate one heavy to worker 1; the proof is in the registry —
// the migrated tasklet gains a call histogram under worker 1's tag, and
// its scheduling delay (the time it waits for its sibling's calls)
// collapses at the 99.99th percentile.
TEST(SchedulerTest, RebalancerSpreadsStarvedHeavyTasklets) {
  obs::MetricsRegistry registry;
  obs::EventLoopProfiler profiler(&registry);
  std::atomic<bool> stop{false};
  constexpr Nanos kBusy = 200 * kNanosPerMicro;
  BusyTasklet heavy0("heavy0", kBusy, &stop);
  IdleTasklet idle0("idle0", &stop);
  BusyTasklet heavy1("heavy1", kBusy, &stop);
  IdleTasklet idle1("idle1", &stop);

  ExecutionService::Options options;
  options.rebalance_interval = 0;  // manual passes only: deterministic
  options.skew_threshold = 1.5;
  options.min_hot_load = 100 * kNanosPerMicro;
  ExecutionService service(2, &profiler, options);
  ASSERT_TRUE(service.load_balancing_enabled());
  // Round-robin start: heavy0, heavy1 -> worker 0; idle0, idle1 -> worker 1.
  ASSERT_TRUE(service.Start({&heavy0, &idle0, &heavy1, &idle1}).ok());

  // Contended phase: enough calls that the 99.99th percentile of the
  // scheduling delay is backed by real samples.
  while (heavy0.calls() < 100 || heavy1.calls() < 100) {
    std::this_thread::yield();
  }
  for (int i = 0; i < 200 && service.migrated_tasklets() == 0; ++i) {
    service.TriggerRebalance();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(service.migrated_tasklets(), 1);
  EXPECT_GE(service.rebalances(), 1);

  // Post-migration phase: populate the migrated tasklet's fresh histograms
  // under the new worker tag.
  const int64_t target0 = heavy0.calls() + 100;
  const int64_t target1 = heavy1.calls() + 100;
  while (heavy0.calls() < target0 || heavy1.calls() < target1) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  ASSERT_TRUE(service.AwaitCompletion().ok());

  // One heavy tasklet now reports call durations from worker 1.
  int64_t migrated_p9999 = -1;
  int64_t contended_p9999 = -1;
  std::string migrated_name;
  for (const auto& m : registry.Snapshot()) {
    if (m.id.name != "tasklet.call_nanos" || m.id.tags.worker != 1) continue;
    if (m.id.tags.tasklet.rfind("heavy", 0) != 0) continue;
    if (m.histogram == nullptr || m.histogram->count() == 0) continue;
    migrated_name = m.id.tags.tasklet;
  }
  ASSERT_FALSE(migrated_name.empty())
      << "no heavy tasklet ever recorded calls on worker 1";

  // The migrated tasklet's p99.99 scheduling delay on worker 1 (where its
  // only neighbors are idle) is far below what it suffered on worker 0
  // next to the other heavy (one full 200us call per round).
  for (const auto& m : registry.Snapshot()) {
    if (m.id.name != "tasklet.sched_delay_nanos") continue;
    if (m.id.tags.tasklet != migrated_name) continue;
    if (m.histogram == nullptr || m.histogram->count() == 0) continue;
    if (m.id.tags.worker == 0) contended_p9999 = m.histogram->ValueAtQuantile(0.9999);
    if (m.id.tags.worker == 1) migrated_p9999 = m.histogram->ValueAtQuantile(0.9999);
  }
  ASSERT_GE(contended_p9999, 0) << "no contended-phase delay samples";
  ASSERT_GE(migrated_p9999, 0) << "no post-migration delay samples";
  // Contended: each round waits out the sibling's full busy call.
  EXPECT_GE(contended_p9999, kBusy / 2);
  EXPECT_LT(migrated_p9999, contended_p9999);
}

TEST(SchedulerTest, NoRebalancingWithoutProfiler) {
  ExecutionService service(2);
  EXPECT_FALSE(service.load_balancing_enabled());
  std::atomic<bool> stop{true};
  BusyTasklet h0("h0", kNanosPerMicro, &stop);
  BusyTasklet h1("h1", kNanosPerMicro, &stop);
  ASSERT_TRUE(service.Start({&h0, &h1}).ok());
  service.TriggerRebalance();  // must be a harmless no-op
  ASSERT_TRUE(service.AwaitCompletion().ok());
  EXPECT_EQ(service.migrated_tasklets(), 0);
}

TEST(SchedulerTest, BackgroundRebalanceRunsWithoutManualTrigger) {
  obs::MetricsRegistry registry;
  obs::EventLoopProfiler profiler(&registry);
  std::atomic<bool> stop{false};
  constexpr Nanos kBusy = 100 * kNanosPerMicro;
  BusyTasklet heavy0("heavy0", kBusy, &stop);
  IdleTasklet idle0("idle0", &stop);
  BusyTasklet heavy1("heavy1", kBusy, &stop);
  IdleTasklet idle1("idle1", &stop);

  ExecutionService::Options options;
  options.rebalance_interval = 2 * kNanosPerMilli;
  options.min_hot_load = 50 * kNanosPerMicro;
  ExecutionService service(2, &profiler, options);
  ASSERT_TRUE(service.Start({&heavy0, &idle0, &heavy1, &idle1}).ok());

  for (int i = 0; i < 2000 && service.migrated_tasklets() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  ASSERT_TRUE(service.AwaitCompletion().ok());
  EXPECT_GE(service.migrated_tasklets(), 1);
}

// Regression for rebalancer load misattribution (PR 10 satellite): a
// migrated tasklet's busy delta straddles its old and new workers, and the
// old code attributed the whole of it to the new worker — fabricating a
// phantom hot spot there and ping-ponging the freshly adopted tasklet (or
// an innocent neighbor) straight back on the first post-migration pass.
// The fix zeroes the delta of any tasklet adopted since the previous pass.
//
// Fully deterministic: GateTasklet busy time is granted in exact quanta
// and every TriggerRebalance pass is manual, so the pass sees precisely
// the scripted deltas.
TEST(SchedulerTest, AdoptedTaskletIsNotPingPongedOnFirstPass) {
  obs::MetricsRegistry registry;
  obs::EventLoopProfiler profiler(&registry);
  std::atomic<bool> stop{false};
  GateTasklet g1("g1", &stop);   // worker 0 (round-robin)
  GateTasklet pad("pad", &stop); // worker 1
  GateTasklet g2("g2", &stop);   // worker 0

  ExecutionService::Options options;
  options.rebalance_interval = 0;  // manual passes only
  options.skew_threshold = 1.5;
  options.min_hot_load = 500 * kNanosPerMicro;
  ExecutionService service(2, &profiler, options);
  ASSERT_TRUE(service.Start({&g1, &pad, &g2}).ok());

  // Pass 1 sees worker 0 at 4ms (g1=3, g2=1) against worker 1's 200us: the
  // skew is real and one of the gates migrates to worker 1 (on an idle
  // host that is g2, whose 1ms lands nearer the gap midpoint than g1's
  // 3ms; spin-quantum overshoot under load can flip the pick, which is
  // fine — the property under test only needs *an* adopted tasklet).
  g1.Grant(3 * kNanosPerMilli);
  g2.Grant(1 * kNanosPerMilli);
  pad.Grant(200 * kNanosPerMicro);
  g1.AwaitConsumed(1);
  g2.AwaitConsumed(1);
  pad.AwaitConsumed(1);
  service.TriggerRebalance();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (g1.adopted_worker() != 1 && g2.adopted_worker() != 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  GateTasklet& moved = g2.adopted_worker() == 1 ? g2 : g1;
  ASSERT_EQ(moved.adopted_worker(), 1) << "expected a gate on worker 1";
  ASSERT_EQ(service.migrated_tasklets(), 1);

  // Between the passes the adopted gate burns another 1ms and pad 3ms,
  // all on worker 1. Old code: pass 2 charges the adopted gate's full
  // delta to worker 1 on top of pad's, sees a 4ms-vs-idle hot spot with
  // two movable tasklets, and issues a bounce migration. Fixed code: the
  // adopted gate's delta is zeroed for the first pass after its adoption,
  // pad alone carries worker 1's load and is rejected as a move (it IS
  // the whole load), so no migration is issued.
  moved.Grant(1 * kNanosPerMilli);
  pad.Grant(3 * kNanosPerMilli);
  moved.AwaitConsumed(2);
  pad.AwaitConsumed(2);
  service.TriggerRebalance();
  EXPECT_EQ(service.migrated_tasklets(), 1)
      << "first post-adoption pass issued a bounce migration";

  stop.store(true, std::memory_order_release);
  // Unpark everyone: a granted call observes the stop flag and finishes.
  g1.Grant(1);
  pad.Grant(1);
  g2.Grant(1);
  ASSERT_TRUE(service.AwaitCompletion().ok());
  EXPECT_EQ(service.migrated_tasklets(), 1);
}

}  // namespace
}  // namespace jet::core
