#include <atomic>
#include <map>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "core/job.h"
#include "core/processors_basic.h"
#include "core/processors_window.h"
#include "imdg/grid.h"
#include "imdg/snapshot_store.h"
#include "pipeline/pipeline.h"

namespace jet::core {
namespace {

// ---------------------------------------------------------------------------
// Out-of-order streams (§1/§8: out-of-order processing)
// ---------------------------------------------------------------------------

// With bounded disorder and a watermark lagging by the disorder bound, the
// windowed counts are exact: nothing is dropped, nothing double-counted.
TEST(OutOfOrderTest, BoundedDisorderCountsAreExact) {
  constexpr int64_t kCount = 20'000;
  static ManualClock clock(int64_t{1} << 60);

  auto late = std::make_shared<std::atomic<int64_t>>(0);
  Dag dag;
  auto op = CountingAggregate<int64_t>();
  WindowDef window = WindowDef::Tumbling(kNanosPerMilli);
  VertexId source = dag.AddVertex(
      "source",
      [](const ProcessorMeta&) -> std::unique_ptr<Processor> {
        GeneratorSourceP<int64_t>::Options opt;
        opt.events_per_second = 1e6;  // 1 event per us of event time
        opt.duration = kCount * 1000;
        opt.watermark_interval = 50 * 1000;
        opt.start_time = 0;
        opt.max_disorder = 300 * 1000;  // 300us of shuffle
        return std::make_unique<GeneratorSourceP<int64_t>>(
            [](int64_t seq) {
              return std::make_pair(seq, HashU64(static_cast<uint64_t>(seq % 8)));
            },
            opt);
      },
      1);
  VertexId accumulate = dag.AddVertex(
      "accumulate",
      [op, window, late](const ProcessorMeta&) {
        return std::make_unique<AccumulateByFrameP<int64_t, int64_t, int64_t>>(
            op, [](const int64_t& v) { return static_cast<uint64_t>(v % 8); }, window,
            late);
      },
      2);
  VertexId combine = dag.AddVertex(
      "combine",
      [op, window](const ProcessorMeta&) {
        return std::make_unique<CombineFramesP<int64_t, int64_t, int64_t>>(op, window);
      },
      2);
  auto collector = std::make_shared<SyncCollector<WindowResult<int64_t>>>();
  VertexId sink = dag.AddVertex(
      "sink",
      [collector](const ProcessorMeta&) {
        return std::make_unique<CollectSinkP<WindowResult<int64_t>>>(collector);
      },
      1);
  dag.AddEdge(source, accumulate);
  dag.AddEdge(accumulate, combine).routing = RoutingPolicy::kPartitioned;
  dag.AddEdge(combine, sink);

  JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 2;
  params.clock = &clock;
  auto job = Job::Create(params);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());

  int64_t total = 0;
  for (const auto& r : collector->Snapshot()) total += r.value;
  EXPECT_EQ(total, kCount);
  EXPECT_EQ(late->load(), 0) << "watermark must lag by the disorder bound";
}

// Events arriving after their frame was flushed are counted and dropped
// instead of resurrecting already-emitted windows.
TEST(OutOfOrderTest, LateEventsBeyondWatermarkAreDroppedAndCounted) {
  Outbox outbox(1, 1024);
  ProcessorContext ctx;
  ctx.outbox = &outbox;
  static ManualClock clock(0);
  ctx.clock = &clock;

  auto late = std::make_shared<std::atomic<int64_t>>(0);
  auto op = CountingAggregate<int64_t>();
  AccumulateByFrameP<int64_t, int64_t, int64_t> processor(
      op, [](const int64_t& v) { return static_cast<uint64_t>(v); },
      WindowDef::Tumbling(100), late);
  ASSERT_TRUE(processor.Init(&ctx).ok());

  Inbox inbox;
  inbox.Add(Item::Data<int64_t>(1, 50, HashU64(1)));
  inbox.Add(Item::Data<int64_t>(1, 150, HashU64(1)));
  processor.Process(0, &inbox);
  ASSERT_TRUE(processor.TryProcessWatermark(100));  // flushes frame [0,100)

  // Event at ts=70 now belongs to the flushed frame: late.
  inbox.Add(Item::Data<int64_t>(1, 70, HashU64(1)));
  processor.Process(0, &inbox);
  EXPECT_EQ(processor.late_events_dropped(), 1);
  EXPECT_EQ(late->load(), 1);

  // Frame [100,200) is still open; on-time event accepted.
  inbox.Add(Item::Data<int64_t>(1, 160, HashU64(1)));
  processor.Process(0, &inbox);
  ASSERT_TRUE(processor.TryProcessWatermark(200));

  // Total emitted partials: frame1 count 1, frame2 count 2.
  int64_t emitted = 0;
  for (auto& item : outbox.bucket(0)) {
    if (item.IsData()) emitted += item.payload.As<KeyedFrame<int64_t>>().acc;
  }
  EXPECT_EQ(emitted, 3);
}

// ---------------------------------------------------------------------------
// Rolling aggregates
// ---------------------------------------------------------------------------

TEST(RollingAggregateTest, EmitsRunningValuesPerKey) {
  constexpr int64_t kCount = 6'000;
  static ManualClock clock(int64_t{1} << 60);

  pipeline::Pipeline p;
  GeneratorSourceP<int64_t>::Options opt;
  opt.events_per_second = 1e9;
  opt.duration = kCount;
  opt.watermark_interval = 1000;
  opt.start_time = 0;
  auto results =
      p.ReadFrom<int64_t>(
           "ints",
           [](int64_t seq) {
             return std::make_pair(seq, HashU64(static_cast<uint64_t>(seq % 3)));
           },
           opt)
          .GroupingKey([](const int64_t& v) { return static_cast<uint64_t>(v % 3); })
          .RollingAggregate<int64_t, int64_t>("running-count",
                                              CountingAggregate<int64_t>())
          .CollectTo("sink");

  auto dag = p.ToDag();
  ASSERT_TRUE(dag.ok()) << dag.status().ToString();
  JobParams params;
  params.dag = &*dag;
  params.cooperative_threads = 2;
  params.clock = &clock;
  auto job = Job::Create(params);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());

  // One output per input; per key the max running value is the key's total.
  auto values = results->Snapshot();
  ASSERT_EQ(values.size(), static_cast<size_t>(kCount));
  std::map<uint64_t, int64_t> max_per_key;
  for (const auto& r : values) {
    max_per_key[r.key] = std::max(max_per_key[r.key], r.value);
  }
  ASSERT_EQ(max_per_key.size(), 3u);
  for (const auto& [key, max_count] : max_per_key) EXPECT_EQ(max_count, kCount / 3);
}

TEST(RollingAggregateTest, StateSurvivesExactlyOnceRestore) {
  imdg::DataGrid grid(1);
  ASSERT_TRUE(grid.AddMember(0).ok());
  imdg::SnapshotStore store(&grid);

  auto build_dag = [](std::shared_ptr<SyncCollector<RollingResult<int64_t>>> collector,
                      Dag* dag) {
    auto op = CountingAggregate<int64_t>();
    VertexId source = dag->AddVertex(
        "source",
        [](const ProcessorMeta&) -> std::unique_ptr<Processor> {
          GeneratorSourceP<int64_t>::Options opt;
          opt.events_per_second = 100'000;
          opt.duration = 1'200 * kNanosPerMilli;
          opt.watermark_interval = 10 * kNanosPerMilli;
          return std::make_unique<GeneratorSourceP<int64_t>>(
              [](int64_t seq) {
                return std::make_pair(seq, HashU64(static_cast<uint64_t>(seq % 4)));
              },
              opt);
        },
        1);
    VertexId rolling = dag->AddVertex(
        "rolling",
        [op](const ProcessorMeta&) {
          return std::make_unique<RollingAggregateP<int64_t, int64_t, int64_t>>(
              op, [](const int64_t& v) { return static_cast<uint64_t>(v % 4); });
        },
        2);
    VertexId sink = dag->AddVertex(
        "sink",
        [collector](const ProcessorMeta&) {
          return std::make_unique<CollectSinkP<RollingResult<int64_t>>>(collector);
        },
        1);
    auto& e = dag->AddEdge(source, rolling);
    e.routing = RoutingPolicy::kPartitioned;
    dag->AddEdge(rolling, sink);
  };

  auto collector = std::make_shared<SyncCollector<RollingResult<int64_t>>>();
  Dag dag;
  build_dag(collector, &dag);

  JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 2;
  params.config.guarantee = ProcessingGuarantee::kExactlyOnce;
  params.config.snapshot_interval = 50 * kNanosPerMilli;
  params.snapshot_store = &store;
  params.job_id = 31;

  auto job1 = Job::Create(params);
  ASSERT_TRUE(job1.ok());
  ASSERT_TRUE((*job1)->Start().ok());
  for (int i = 0; i < 3000 && (*job1)->last_committed_snapshot() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE((*job1)->last_committed_snapshot(), 2);
  (*job1)->Cancel();
  (void)(*job1)->Join();
  int64_t restore = (*job1)->last_committed_snapshot();
  job1->reset();

  params.restore_snapshot_id = restore;
  auto job2 = Job::Create(params);
  ASSERT_TRUE(job2.ok());
  ASSERT_TRUE((*job2)->Start().ok());
  ASSERT_TRUE((*job2)->Join().ok());

  // Exactly-once state: the final running count per key is exactly the
  // number of events of that key (duplicates at the sink allowed; the MAX
  // per key reflects the state).
  std::map<uint64_t, int64_t> max_per_key;
  for (const auto& r : collector->Snapshot()) {
    max_per_key[r.key] = std::max(max_per_key[r.key], r.value);
  }
  const int64_t expected_per_key = 120'000 / 4;
  ASSERT_EQ(max_per_key.size(), 4u);
  for (const auto& [key, max_count] : max_per_key) {
    EXPECT_EQ(max_count, expected_per_key) << "key " << key;
  }
}

// ---------------------------------------------------------------------------
// Metrics (Management Center view)
// ---------------------------------------------------------------------------

TEST(MetricsTest, JobMetricsReflectWork) {
  constexpr int64_t kCount = 5'000;
  Dag dag;
  VertexId source = dag.AddVertex(
      "source",
      [](const ProcessorMeta&) -> std::unique_ptr<Processor> {
        GeneratorSourceP<int64_t>::Options opt;
        opt.events_per_second = 1e9;
        opt.duration = kCount;
        opt.watermark_interval = 1000;
        return std::make_unique<GeneratorSourceP<int64_t>>(
            [](int64_t seq) { return std::make_pair(seq, HashU64(static_cast<uint64_t>(seq))); },
            opt);
      },
      1);
  auto counter = std::make_shared<std::atomic<int64_t>>(0);
  VertexId sink = dag.AddVertex(
      "the-sink",
      [counter](const ProcessorMeta&) {
        return std::make_unique<CountSinkP<int64_t>>(counter);
      },
      1);
  dag.AddEdge(source, sink);

  JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 2;
  params.job_id = 77;
  auto job = Job::Create(params);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());

  JobMetrics m = (*job)->Metrics();
  EXPECT_EQ(m.job_id, 77);
  ASSERT_EQ(m.tasklets.size(), 2u);
  EXPECT_EQ(m.TotalItemsProcessed(), kCount);  // sink consumed every event
  for (const auto& t : m.tasklets) {
    EXPECT_TRUE(t.done);
    EXPECT_GT(t.calls, 0);
    EXPECT_GE(t.idle_calls, 0);
    EXPECT_LE(t.idle_calls, t.calls);
  }
  std::string report = m.ToString();
  EXPECT_NE(report.find("the-sink"), std::string::npos);
  EXPECT_NE(report.find("job 77"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Non-cooperative processors (§3.2: dedicated threads)
// ---------------------------------------------------------------------------

// A "blocking" source (models a 3rd-party API with blocking reads, §3.1):
// runs on a dedicated thread, so it may sleep without stalling the
// cooperative workers.
class BlockingSourceP final : public Processor {
 public:
  explicit BlockingSourceP(int64_t count) : count_(count) {}

  bool IsCooperative() const override { return false; }

  bool Complete() override {
    if (ctx()->IsCancelled()) return true;
    // Deliberately block (forbidden for cooperative tasklets).
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    int32_t batch = 64;
    while (batch-- > 0 && emitted_ < count_) {
      if (!ctx()->outbox->OfferToAll(
              Item::Data<int64_t>(emitted_, emitted_,
                                  HashU64(static_cast<uint64_t>(emitted_))))) {
        return false;
      }
      ++emitted_;
    }
    return emitted_ >= count_;
  }

 private:
  int64_t count_;
  int64_t emitted_ = 0;
};

TEST(NonCooperativeTest, BlockingSourceRunsOnDedicatedThread) {
  constexpr int64_t kCount = 2'000;
  Dag dag;
  VertexId source = dag.AddVertex(
      "blocking-source",
      [kCount](const ProcessorMeta&) { return std::make_unique<BlockingSourceP>(kCount); },
      1);
  auto collector = std::make_shared<SyncCollector<int64_t>>();
  VertexId sink = dag.AddVertex(
      "sink",
      [collector](const ProcessorMeta&) {
        return std::make_unique<CollectSinkP<int64_t>>(collector);
      },
      1);
  dag.AddEdge(source, sink);

  JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 1;  // the blocking source must not occupy it
  auto job = Job::Create(params);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());

  auto values = collector->Snapshot();
  std::set<int64_t> unique(values.begin(), values.end());
  EXPECT_EQ(unique.size(), static_cast<size_t>(kCount));
}

}  // namespace
}  // namespace jet::core
