// Deterministic mutation fuzzing of the wire codec (and the process-mode
// control-message codec layered on it).
//
// Every decode of hostile bytes must return an error Status or a valid
// frame — never crash, never read past the buffer. The "never read past"
// half of the contract is enforced by running this suite in the CI
// sanitizer lanes (ASan/UBSan), where an over-read aborts the test; here
// we drive the decoder through a seeded corpus of truncations, bit flips,
// splices and garbage so those lanes have something to catch.
//
// All randomness is std::mt19937_64 with fixed seeds: a failure reproduces
// exactly, every run, on every machine.

#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "net/wire_format.h"
#include "procmode/proc_proto.h"
#include "procmode/windowed_job.h"
#include "wire_fixture_corpus.h"

namespace jet::net {
namespace {

std::vector<Bytes> SeedCorpus() {
  std::vector<Bytes> corpus;
  for (auto& fixture : testfixtures::BuildWireFixtures()) {
    corpus.push_back(std::move(fixture.bytes));
  }
  // A couple of process-mode control messages, which nest a second codec
  // inside the CONTROL body.
  {
    procmode::ProcMsg m;
    m.type = procmode::ProcMsgType::kStartJob;
    m.epoch = 3;
    m.job_name = procmode::kWindowedCountJobName;
    m.node_count = 3;
    m.events_per_second = 20000;
    m.duration = 1'200'000'000;
    m.data_paths = {"/tmp/a", "/tmp/b", "/tmp/c"};
    corpus.push_back(procmode::EncodeControlMessage(m));
  }
  {
    procmode::ProcMsg m;
    m.type = procmode::ProcMsgType::kSnapshotEntry;
    m.snapshot_id = 9;
    m.key = Bytes{1, 2, 3, 4};
    m.value = Bytes(64, 0xAB);
    corpus.push_back(procmode::EncodeControlMessage(m));
  }
  return corpus;
}

// Decode through both codec layers; the only requirement is "no crash, no
// over-read" — hostile bytes may legitimately decode as some other valid
// frame (a flipped varint bit is still a varint).
void DecodeHostile(const Bytes& bytes) {
  auto frame = DecodeFrame(bytes);
  if (frame.ok() && frame->header.type == FrameType::kControl) {
    (void)procmode::DecodeControlMessage(bytes);
  }
}

TEST(WireFuzz, EveryTruncationErrors) {
  // Full-consumption rule: a frame is only valid at its exact length, so
  // every proper prefix must be rejected.
  for (const Bytes& frame : SeedCorpus()) {
    for (size_t len = 0; len < frame.size(); ++len) {
      auto decoded = DecodeFrame(frame.data(), len);
      EXPECT_FALSE(decoded.ok()) << "prefix of length " << len << " decoded";
    }
  }
}

TEST(WireFuzz, BitFlipsNeverCrash) {
  std::mt19937_64 rng(0x6A65745F666C6970ull);  // "jet_flip"
  const auto corpus = SeedCorpus();
  for (const Bytes& seed : corpus) {
    for (int round = 0; round < 2000; ++round) {
      Bytes mutated = seed;
      const int flips = 1 + static_cast<int>(rng() % 8);
      for (int i = 0; i < flips; ++i) {
        mutated[rng() % mutated.size()] ^= static_cast<uint8_t>(1u << (rng() % 8));
      }
      DecodeHostile(mutated);
    }
  }
}

TEST(WireFuzz, RandomGarbageNeverCrashes) {
  std::mt19937_64 rng(0x6A65745F67617262ull);  // "jet_garb"
  for (int round = 0; round < 5000; ++round) {
    Bytes garbage(rng() % 256);
    for (auto& b : garbage) b = static_cast<uint8_t>(rng());
    DecodeHostile(garbage);
  }
}

TEST(WireFuzz, ValidHeaderGarbageBodyNeverCrashes) {
  // Focus the fuzz on body parsing: keep the 4 header bytes valid so every
  // round reaches the varint/length-prefix logic.
  std::mt19937_64 rng(0x6A65745F68647221ull);  // "jet_hdr!"
  const uint8_t types[] = {1, 2, 3};
  for (int round = 0; round < 5000; ++round) {
    Bytes frame{kFrameMagic0, kFrameMagic1, kWireFormatVersion, types[rng() % 3]};
    const size_t body_len = rng() % 128;
    for (size_t i = 0; i < body_len; ++i) frame.push_back(static_cast<uint8_t>(rng()));
    DecodeHostile(frame);
  }
}

TEST(WireFuzz, SplicedFramesNeverCrash) {
  // Head of one valid frame + tail of another: plausible-looking structure
  // with inconsistent counts and lengths.
  std::mt19937_64 rng(0x73706C6963653231ull);  // "splice21"
  const auto corpus = SeedCorpus();
  for (int round = 0; round < 2000; ++round) {
    const Bytes& a = corpus[rng() % corpus.size()];
    const Bytes& b = corpus[rng() % corpus.size()];
    const size_t cut_a = rng() % (a.size() + 1);
    const size_t cut_b = rng() % (b.size() + 1);
    Bytes spliced(a.begin(), a.begin() + static_cast<ptrdiff_t>(cut_a));
    spliced.insert(spliced.end(), b.begin() + static_cast<ptrdiff_t>(cut_b), b.end());
    if (spliced.empty()) continue;
    DecodeHostile(spliced);
  }
}

TEST(WireFuzz, ControlMessageMutationsNeverCrash) {
  std::mt19937_64 rng(0x70726F746F666Dull);
  procmode::ProcMsg m;
  m.type = procmode::ProcMsgType::kStartJob;
  m.job_name = "windowed_count";
  m.node_count = 3;
  m.data_paths = {"/a", "/b", "/c"};
  const Bytes seed = procmode::EncodeControlMessage(m);
  for (int round = 0; round < 5000; ++round) {
    Bytes mutated = seed;
    const int flips = 1 + static_cast<int>(rng() % 6);
    for (int i = 0; i < flips; ++i) {
      mutated[rng() % mutated.size()] ^= static_cast<uint8_t>(1u << (rng() % 8));
    }
    (void)procmode::DecodeControlMessage(mutated);
  }
}

}  // namespace
}  // namespace jet::net
