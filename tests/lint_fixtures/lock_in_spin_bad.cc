// jet-verify fixture: known-bad (advisory). A mutex acquired inside a
// busy-wait loop that never sleeps: under contention the spinner burns a
// core while serializing on the lock. The lock-in-spin rule must fire.
#include <atomic>
#include <vector>

#include "common/thread_annotations.h"

namespace jet::fixture {

class SpinningDrain {
 public:
  void DrainUntilDone() {
    while (!done_.load(std::memory_order_acquire)) {
      jet::MutexLock lock(mutex_);
      if (!pending_.empty()) pending_.pop_back();
    }
  }

 private:
  std::atomic<bool> done_{false};
  jet::Mutex mutex_;
  std::vector<int> pending_ JET_GUARDED_BY(mutex_);
};

}  // namespace jet::fixture
