// jet-verify fixture: known-good twin of single_writer_bad.cc. The relaxed
// write carries an inline suppression stating the single-writer argument,
// so the rule stays quiet — and because the suppression is *used*, the
// hygiene pass stays quiet too.
#include <atomic>
#include <cstdint>

namespace jet::fixture {

class Stats {
 public:
  void Record(int64_t n) {
    // jet-verify: allow(single-writer) — single-writer cell: only the
    // owning worker calls Record; readers are monitoring pollers that
    // tolerate staleness.
    total_.store(total_.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> total_{0};
};

}  // namespace jet::fixture
