// jet-verify fixture: known-bad. Raw std primitives outside
// common/thread_annotations.h are invisible to both enforcement layers;
// the raw-mutex rule must fire.
#include <mutex>
#include <vector>

namespace jet::fixture {

class RawGuarded {
 public:
  void Add(int v) {
    std::scoped_lock lock(mutex_);
    values_.push_back(v);
  }

 private:
  std::mutex mutex_;
  std::vector<int> values_;
};

}  // namespace jet::fixture
