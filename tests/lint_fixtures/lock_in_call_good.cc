// jet-verify fixture: known-good twin of lock_in_call_bad.cc. The bounded
// critical section lives in a helper that has been audited and declared a
// JET_COOPERATIVE boundary, so the reachability pass does not propagate its
// lock back to the root.
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "core/tasklet.h"

namespace jet::fixture {

class AuditedTasklet final : public core::Tasklet {
 public:
  core::TaskletProgress Call() override {
    RecordTick();
    return {true, false};
  }

  const std::string& name() const override { return name_; }

 private:
  // Bounded critical section: one push_back under an uncontended lock,
  // audited as fitting the cooperative budget.
  void RecordTick() JET_COOPERATIVE {
    jet::MutexLock lock(mutex_);
    items_.push_back("tick");
  }

  jet::Mutex mutex_;
  std::vector<std::string> items_ JET_GUARDED_BY(mutex_);
  std::string name_ = "fixture/audited";
};

}  // namespace jet::fixture
