// Thread-safety-analysis fixture: known-good twin of thread_safety_bad.cc.
// Every access to the guarded member holds the mutex (scoped lock or a
// JET_REQUIRES contract the caller discharges), so the TU compiles clean
// under -Wthread-safety -Werror=thread-safety.
#include <cstdint>

#include "common/thread_annotations.h"

namespace jet::fixture {

class LockedAccess {
 public:
  void Increment() {
    jet::MutexLock lock(mutex_);
    ++count_;
  }

  int64_t Get() const {
    jet::MutexLock lock(mutex_);
    return count_;
  }

 private:
  // Callers must hold mutex_; the analysis checks both sides of the
  // contract.
  void BumpLocked() JET_REQUIRES(mutex_) { ++count_; }

  mutable jet::Mutex mutex_;
  int64_t count_ JET_GUARDED_BY(mutex_) = 0;
};

}  // namespace jet::fixture
