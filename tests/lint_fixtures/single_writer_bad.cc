// jet-verify fixture: known-bad. A relaxed atomic write with no inline
// suppression documenting the single-writer discipline; the single-writer
// rule must fire.
#include <atomic>
#include <cstdint>

namespace jet::fixture {

class Stats {
 public:
  void Record(int64_t n) {
    total_.store(total_.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> total_{0};
};

}  // namespace jet::fixture
