// jet-verify fixture: known-bad. Three ways a suppression comment can rot;
// each must surface as a 'suppression' hygiene error so suppressions cannot
// accumulate silently.
#include <atomic>
#include <cstdint>

namespace jet::fixture {

class RottenSuppressions {
 public:
  void UnknownRule() {
    // jet-verify: allow(bogus-rule) — this rule name does not exist.
    counter_.store(1, std::memory_order_release);
  }

  void MissingReason() {
    // jet-verify: allow(single-writer)
    counter_.store(counter_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  }

  void Stale() {
    // jet-verify: allow(volatile) — nothing below is volatile, so this
    // suppression matches no finding and must be reported as stale.
    counter_.store(3, std::memory_order_release);
  }

 private:
  std::atomic<int64_t> counter_{0};
};

}  // namespace jet::fixture
