// jet-verify fixture: known-good twin of blocking_in_call_bad.cc. The
// cooperative root does only bounded work: instead of sleeping until the
// downstream is ready it returns {did_work=false} and lets the execution
// service reschedule it — the §3.2 contract.
#include <cstdint>

#include "core/tasklet.h"

namespace jet::fixture {

inline bool DownstreamReady(int64_t credit) { return credit > 0; }

class PoliteTasklet final : public core::Tasklet {
 public:
  core::TaskletProgress Call() override {
    if (!DownstreamReady(credit_)) return {false, false};
    --credit_;
    return {true, false};
  }

  const std::string& name() const override { return name_; }

 private:
  int64_t credit_ = 8;
  std::string name_ = "fixture/polite";
};

}  // namespace jet::fixture
