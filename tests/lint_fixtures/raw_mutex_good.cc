// jet-verify fixture: known-good twin of raw_mutex_bad.cc. The jet::
// wrappers carry the capability annotations, so clang's -Wthread-safety
// sees the lock discipline and jet-verify sees the acquisition.
#include <vector>

#include "common/thread_annotations.h"

namespace jet::fixture {

class WrappedGuarded {
 public:
  void Add(int v) {
    jet::MutexLock lock(mutex_);
    values_.push_back(v);
  }

 private:
  jet::Mutex mutex_;
  std::vector<int> values_ JET_GUARDED_BY(mutex_);
};

}  // namespace jet::fixture
