// jet-verify fixture: known-bad. A cooperative root (Tasklet::Call
// override) reaches an unbounded wait through a helper; the blocking-in-call
// rule must fire with the helper in the witness chain.
#include <chrono>
#include <thread>

#include "core/tasklet.h"

namespace jet::fixture {

// Looks innocent from the call site; the sleep is one hop away.
inline void WaitForDownstreamFlush() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

class SleepyTasklet final : public core::Tasklet {
 public:
  core::TaskletProgress Call() override {
    WaitForDownstreamFlush();
    return {true, false};
  }

  const std::string& name() const override { return name_; }

 private:
  std::string name_ = "fixture/sleepy";
};

}  // namespace jet::fixture
