// jet-verify fixture: known-bad. `volatile` is not a synchronization
// primitive; the volatile rule must fire.
#include <cstdint>

namespace jet::fixture {

class Flag {
 public:
  void Raise() { raised_ = 1; }
  bool IsRaised() const { return raised_ != 0; }

 private:
  volatile int64_t raised_ = 0;
};

}  // namespace jet::fixture
