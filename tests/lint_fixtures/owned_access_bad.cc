// jet-verify fixture: known-bad. A mutex acquired while an
// OwnedPartitionHandle is live in the same function: owned-partition
// access is the zero-lock single-writer fast path, and a lock inside its
// scope reintroduces the contention the handle removes (and can deadlock
// against the grid's quiesce protocol). The owned-access rule must fire.
#include <memory>
#include <utility>

#include "common/thread_annotations.h"
#include "imdg/grid.h"

namespace jet::fixture {

class OwnedAggregator {
 public:
  void ProcessBatch(imdg::DataGrid* grid) {
    auto handle = grid->AcquireOwnedPartition("agg", 3, /*tasklet=*/7);
    if (!handle.ok()) return;
    jet::MutexLock lock(stats_mutex_);  // inside the owned scope: flagged
    ++batches_;
  }

 private:
  jet::Mutex stats_mutex_;
  int64_t batches_ JET_GUARDED_BY(stats_mutex_) = 0;
};

}  // namespace jet::fixture
