// jet-verify fixture: known-good twin of owned_access_bad.cc. The stats
// lock is taken and released *before* the owned handle is acquired, so no
// lock operation happens inside the owned-partition scope — the zero-lock
// fast path stays zero-lock.
#include <memory>
#include <utility>

#include "common/thread_annotations.h"
#include "imdg/grid.h"

namespace jet::fixture {

class OwnedAggregator {
 public:
  void ProcessBatch(imdg::DataGrid* grid) {
    {
      jet::MutexLock lock(stats_mutex_);
      ++batches_;
    }
    auto handle = grid->AcquireOwnedPartition("agg", 3, /*tasklet=*/7);
    if (!handle.ok()) return;
    handle.value()->Put({0x01}, {0x02});
  }

 private:
  jet::Mutex stats_mutex_;
  int64_t batches_ JET_GUARDED_BY(stats_mutex_) = 0;
};

}  // namespace jet::fixture
