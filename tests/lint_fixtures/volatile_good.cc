// jet-verify fixture: known-good twin of volatile_bad.cc. Cross-thread
// flags are std::atomic with explicit ordering.
#include <atomic>

namespace jet::fixture {

class Flag {
 public:
  void Raise() { raised_.store(true, std::memory_order_release); }
  bool IsRaised() const { return raised_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> raised_{false};
};

}  // namespace jet::fixture
