// jet-verify fixture: known-good twin of suppression_bad.cc. One
// well-formed suppression — known rule, stated reason — that actually
// covers a finding, so neither the rule nor the hygiene pass complains.
#include <atomic>
#include <cstdint>

namespace jet::fixture {

class HealthySuppression {
 public:
  void Record() {
    // jet-verify: allow(single-writer) — single-writer cell: the owning
    // worker is the only caller; monitoring readers tolerate staleness.
    counter_.store(counter_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> counter_{0};
};

}  // namespace jet::fixture
