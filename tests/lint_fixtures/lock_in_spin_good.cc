// jet-verify fixture: known-good twin of lock_in_spin_bad.cc. The loop
// sleeps each round, so it is a poll, not a spin — the rule skips loops
// that contain a blocking call.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace jet::fixture {

class PollingDrain {
 public:
  void DrainUntilDone() {
    while (!done_.load(std::memory_order_acquire)) {
      {
        jet::MutexLock lock(mutex_);
        if (!pending_.empty()) pending_.pop_back();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

 private:
  std::atomic<bool> done_{false};
  jet::Mutex mutex_;
  std::vector<int> pending_ JET_GUARDED_BY(mutex_);
};

}  // namespace jet::fixture
