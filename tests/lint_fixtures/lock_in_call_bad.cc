// jet-verify fixture: known-bad. A cooperative root acquires a mutex with
// no inline suppression and no JET_COOPERATIVE audit on the path; the
// lock-in-call rule must fire.
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "core/tasklet.h"

namespace jet::fixture {

class LockingTasklet final : public core::Tasklet {
 public:
  core::TaskletProgress Call() override {
    jet::MutexLock lock(mutex_);
    items_.push_back("tick");
    return {true, false};
  }

  const std::string& name() const override { return name_; }

 private:
  jet::Mutex mutex_;
  std::vector<std::string> items_ JET_GUARDED_BY(mutex_);
  std::string name_ = "fixture/locking";
};

}  // namespace jet::fixture
