// Thread-safety-analysis fixture: known-bad. Reads and writes a
// JET_GUARDED_BY member without holding its mutex. Registered as a
// WILL_FAIL compile test when the compiler is Clang: it must be rejected
// under -Wthread-safety -Werror=thread-safety. (Under GCC the annotations
// are no-ops and this file is never compiled.)
#include <cstdint>

#include "common/thread_annotations.h"

namespace jet::fixture {

class UnlockedAccess {
 public:
  void Increment() {
    ++count_;  // error: writing count_ requires holding mutex_
  }

  int64_t Get() const {
    return count_;  // error: reading count_ requires holding mutex_
  }

 private:
  mutable jet::Mutex mutex_;
  int64_t count_ JET_GUARDED_BY(mutex_) = 0;
};

}  // namespace jet::fixture
