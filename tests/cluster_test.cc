#include <chrono>
#include <map>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "cluster/jet_cluster.h"
#include "core/processors_basic.h"
#include "core/processors_window.h"
#include "testkit/wait.h"

namespace jet::cluster {
namespace {

using core::Dag;
using core::GeneratorSourceP;
using core::ProcessorMeta;
using core::RoutingPolicy;
using core::VertexId;
using core::WindowResult;

struct Event {
  uint64_t key = 0;
  int64_t seq = 0;
};

// source(1/node) -> [distributed partitioned] -> collect sink(1/node)
struct SimpleJobParts {
  Dag dag;
  std::shared_ptr<core::SyncCollector<int64_t>> collector;
};

std::unique_ptr<SimpleJobParts> MakeDistributedPassthrough(double rate, Nanos duration) {
  auto parts = std::make_unique<SimpleJobParts>();
  parts->collector = std::make_shared<core::SyncCollector<int64_t>>();
  VertexId source = parts->dag.AddVertex(
      "source",
      [rate, duration](const ProcessorMeta&) -> std::unique_ptr<core::Processor> {
        GeneratorSourceP<int64_t>::Options opt;
        opt.events_per_second = rate;
        opt.duration = duration;
        opt.watermark_interval = 10 * kNanosPerMilli;
        return std::make_unique<GeneratorSourceP<int64_t>>(
            [](int64_t seq) { return std::make_pair(seq, HashU64(static_cast<uint64_t>(seq))); },
            opt);
      },
      1);
  VertexId sink = parts->dag.AddVertex(
      "sink",
      [collector = parts->collector](const ProcessorMeta&) {
        return std::make_unique<core::CollectSinkP<int64_t>>(collector);
      },
      1);
  auto& edge = parts->dag.AddEdge(source, sink);
  edge.routing = RoutingPolicy::kPartitioned;
  edge.distributed = true;
  return parts;
}

struct WindowedJobParts {
  Dag dag;
  std::shared_ptr<core::SyncCollector<WindowResult<int64_t>>> collector;
};

std::unique_ptr<WindowedJobParts> MakeDistributedWindowedCount(double rate,
                                                               Nanos duration,
                                                               int64_t keys) {
  auto parts = std::make_unique<WindowedJobParts>();
  parts->collector = std::make_shared<core::SyncCollector<WindowResult<int64_t>>>();
  core::WindowDef window = core::WindowDef::Tumbling(50 * kNanosPerMilli);
  auto op = core::CountingAggregate<Event>();

  VertexId source = parts->dag.AddVertex(
      "source",
      [rate, duration, keys](const ProcessorMeta&) -> std::unique_ptr<core::Processor> {
        GeneratorSourceP<Event>::Options opt;
        opt.events_per_second = rate;
        opt.duration = duration;
        opt.watermark_interval = 5 * kNanosPerMilli;
        return std::make_unique<GeneratorSourceP<Event>>(
            [keys](int64_t seq) {
              Event e{static_cast<uint64_t>(seq % keys), seq};
              return std::make_pair(e, HashU64(e.key));
            },
            opt);
      },
      1);
  VertexId accumulate = parts->dag.AddVertex(
      "accumulate",
      [op, window](const ProcessorMeta&) {
        return std::make_unique<core::AccumulateByFrameP<Event, int64_t, int64_t>>(
            op, [](const Event& e) { return e.key; }, window);
      },
      1);
  VertexId combine = parts->dag.AddVertex(
      "combine",
      [op, window](const ProcessorMeta&) {
        return std::make_unique<core::CombineFramesP<Event, int64_t, int64_t>>(op,
                                                                               window);
      },
      1);
  VertexId sink = parts->dag.AddVertex(
      "sink",
      [collector = parts->collector](const ProcessorMeta&) {
        return std::make_unique<core::CollectSinkP<WindowResult<int64_t>>>(collector);
      },
      1);
  parts->dag.AddEdge(source, accumulate);
  auto& e = parts->dag.AddEdge(accumulate, combine);
  e.routing = RoutingPolicy::kPartitioned;
  e.distributed = true;
  parts->dag.AddEdge(combine, sink);
  return parts;
}

TEST(ClusterTest, DistributedEdgeDeliversEverythingExactlyOnce) {
  ClusterConfig config;
  config.initial_nodes = 3;
  config.threads_per_node = 1;
  JetCluster cluster(config);

  constexpr double kRate = 100'000;
  constexpr Nanos kDuration = 300 * kNanosPerMilli;
  auto parts = MakeDistributedPassthrough(kRate, kDuration);

  auto job = cluster.SubmitJob(&parts->dag, core::JobConfig{}, 1);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE((*job)->Join().ok());

  auto values = parts->collector->Snapshot();
  const auto kExpected = static_cast<int64_t>(kRate * (kDuration / 1e9));
  std::set<int64_t> unique(values.begin(), values.end());
  EXPECT_EQ(values.size(), static_cast<size_t>(kExpected));
  EXPECT_EQ(unique.size(), static_cast<size_t>(kExpected));
}

TEST(ClusterTest, WindowedAggregationAcrossNodes) {
  ClusterConfig config;
  config.initial_nodes = 3;
  config.threads_per_node = 1;
  JetCluster cluster(config);

  constexpr double kRate = 100'000;
  constexpr Nanos kDuration = 400 * kNanosPerMilli;
  auto parts = MakeDistributedWindowedCount(kRate, kDuration, 16);

  auto job = cluster.SubmitJob(&parts->dag, core::JobConfig{}, 2);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE((*job)->Join().ok());

  int64_t total = 0;
  for (const auto& r : parts->collector->Snapshot()) total += r.value;
  EXPECT_EQ(total, static_cast<int64_t>(kRate * (kDuration / 1e9)));
}

TEST(ClusterTest, ExactlyOnceSurvivesNodeFailure) {
  ClusterConfig config;
  config.initial_nodes = 3;
  config.threads_per_node = 1;
  JetCluster cluster(config);

  constexpr double kRate = 50'000;
  constexpr Nanos kDuration = 2'000 * kNanosPerMilli;
  const auto kExpected = static_cast<int64_t>(kRate * (kDuration / 1e9));
  auto parts = MakeDistributedWindowedCount(kRate, kDuration, 16);

  core::JobConfig jc;
  jc.guarantee = core::ProcessingGuarantee::kExactlyOnce;
  jc.snapshot_interval = 100 * kNanosPerMilli;
  auto job = cluster.SubmitJob(&parts->dag, jc, 3);
  ASSERT_TRUE(job.ok()) << job.status().ToString();

  // Wait for a committed snapshot, then kill a member.
  ASSERT_TRUE(testkit::WaitUntil(
      [&job]() { return (*job)->last_committed_snapshot() >= 2; },
      5 * kNanosPerSecond))
      << "no snapshot committed in time";
  ASSERT_TRUE(cluster.KillNode(1).ok());
  EXPECT_EQ(cluster.AliveNodes().size(), 2u);

  ASSERT_TRUE((*job)->Join().ok());
  EXPECT_GE((*job)->attempts_started(), 2);

  // Exactly-once: duplicated window emissions agree; distinct windows
  // account for every event exactly once.
  std::map<std::pair<uint64_t, Nanos>, int64_t> distinct;
  for (const auto& r : parts->collector->Snapshot()) {
    auto it = distinct.find({r.key, r.window_end});
    if (it == distinct.end()) {
      distinct[{r.key, r.window_end}] = r.value;
    } else {
      EXPECT_EQ(it->second, r.value) << "conflicting duplicate window result";
    }
  }
  int64_t total = 0;
  for (const auto& [kw, v] : distinct) total += v;
  EXPECT_EQ(total, kExpected);
}

TEST(ClusterTest, ExactlyOnceSurvivesScaleOut) {
  ClusterConfig config;
  config.initial_nodes = 2;
  config.threads_per_node = 1;
  JetCluster cluster(config);

  constexpr double kRate = 50'000;
  constexpr Nanos kDuration = 2'000 * kNanosPerMilli;
  const auto kExpected = static_cast<int64_t>(kRate * (kDuration / 1e9));
  auto parts = MakeDistributedWindowedCount(kRate, kDuration, 16);

  core::JobConfig jc;
  jc.guarantee = core::ProcessingGuarantee::kExactlyOnce;
  jc.snapshot_interval = 100 * kNanosPerMilli;
  auto job = cluster.SubmitJob(&parts->dag, jc, 4);
  ASSERT_TRUE(job.ok()) << job.status().ToString();

  ASSERT_TRUE(testkit::WaitUntil(
      [&job]() { return (*job)->last_committed_snapshot() >= 2; },
      5 * kNanosPerSecond));
  auto added = cluster.AddNode();
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(cluster.AliveNodes().size(), 3u);

  ASSERT_TRUE((*job)->Join().ok());
  EXPECT_GE((*job)->attempts_started(), 2);

  std::map<std::pair<uint64_t, Nanos>, int64_t> distinct;
  for (const auto& r : parts->collector->Snapshot()) {
    auto it = distinct.find({r.key, r.window_end});
    if (it == distinct.end()) {
      distinct[{r.key, r.window_end}] = r.value;
    } else {
      EXPECT_EQ(it->second, r.value);
    }
  }
  int64_t total = 0;
  for (const auto& [kw, v] : distinct) total += v;
  EXPECT_EQ(total, kExpected);
}

TEST(ClusterTest, KillUnknownNodeFails) {
  ClusterConfig config;
  config.initial_nodes = 2;
  config.threads_per_node = 1;
  JetCluster cluster(config);
  EXPECT_FALSE(cluster.KillNode(99).ok());
}

}  // namespace
}  // namespace jet::cluster
