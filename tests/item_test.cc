#include <gtest/gtest.h>

#include <string>

#include "core/item.h"

namespace jet::core {
namespace {

TEST(AnyTest, HoldsAndReturnsValue) {
  Any a = Any::Of<int64_t>(42);
  EXPECT_FALSE(a.Empty());
  EXPECT_EQ(a.As<int64_t>(), 42);
}

TEST(AnyTest, TryAsChecksType) {
  Any a = Any::Of<std::string>("hello");
  EXPECT_EQ(a.TryAs<int64_t>(), nullptr);
  ASSERT_NE(a.TryAs<std::string>(), nullptr);
  EXPECT_EQ(*a.TryAs<std::string>(), "hello");
}

TEST(AnyTest, CopySharesImmutableValue) {
  Any a = Any::Of<std::string>("shared");
  Any b = a;  // refcount bump, no deep copy
  EXPECT_EQ(&a.As<std::string>(), &b.As<std::string>());
}

TEST(AnyTest, EmptyByDefault) {
  Any a;
  EXPECT_TRUE(a.Empty());
  EXPECT_EQ(a.TryAs<int>(), nullptr);
}

TEST(ItemTest, FactoryKindsAndFields) {
  Item data = Item::Data<int>(7, 123, 99);
  EXPECT_TRUE(data.IsData());
  EXPECT_EQ(data.timestamp, 123);
  EXPECT_EQ(data.key_hash, 99u);
  EXPECT_EQ(data.payload.As<int>(), 7);

  Item wm = Item::WatermarkAt(555);
  EXPECT_TRUE(wm.IsWatermark());
  EXPECT_EQ(wm.timestamp, 555);

  Item barrier = Item::BarrierFor(3);
  EXPECT_TRUE(barrier.IsBarrier());
  EXPECT_EQ(barrier.timestamp, 3);

  Item done = Item::Done();
  EXPECT_TRUE(done.IsDone());
  EXPECT_FALSE(done.IsData());
}

}  // namespace
}  // namespace jet::core
