// Seeded procmode chaos battery: randomized kill -9 loops, SIGSTOP stall
// detection, respawn-budget exhaustion and replica-holder loss, all run
// against real jet_member OS processes and all required to keep the
// windowed job's results exactly-once.
//
// Every randomized timeline derives purely from its seed; a failing seed
// replays with
//   JETSIM_PROCMODE_SEED=<seed> ./procmode_chaos_test \
//       --gtest_filter='*SeededKillLoop*'

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "procmode/process_cluster.h"

namespace jet::procmode {
namespace {

#ifndef JETSIM_MEMBER_BIN
#error "JETSIM_MEMBER_BIN must point at the jet_member executable"
#endif

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define JETSIM_SANITIZED 1
#endif
#endif
#if !defined(JETSIM_SANITIZED) && defined(__SANITIZE_ADDRESS__)
#define JETSIM_SANITIZED 1
#endif

// Sanitizer lanes fork/respawn the same scenarios at reduced iteration
// counts; the plain build drives the full ten-kill acceptance loop.
#ifdef JETSIM_SANITIZED
constexpr int kKillIterations = 3;
constexpr Nanos kKillLoopJobDuration = 2000 * kNanosPerMilli;
#else
constexpr int kKillIterations = 10;
constexpr Nanos kKillLoopJobDuration = 4000 * kNanosPerMilli;
#endif

std::string MakeWorkDir(const char* tag) {
  // Unix-domain socket paths are limited to ~108 bytes; keep it short.
  std::string tmpl = std::string("/tmp/jetchaos-") + tag + "-XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return tmpl;
}

void RemoveWorkDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

ProcessCluster::Options BaseOptions(const char* tag) {
  ProcessCluster::Options options;
  options.member_binary = JETSIM_MEMBER_BIN;
  options.work_dir = MakeWorkDir(tag);
  options.initial_members = 3;
  options.threads_per_member = 1;
  options.job_params.events_per_second = 20'000;
  options.job_params.duration = 2000 * kNanosPerMilli;
  options.job_params.key_count = 16;
  options.job_params.window_size = 50 * kNanosPerMilli;
  options.job_params.watermark_interval = 5 * kNanosPerMilli;
  options.snapshot_interval = 50 * kNanosPerMilli;
  return options;
}

// Probe without blocking: AwaitJobCompletion with an already-expired
// deadline returns OK only when the job has reached its terminal phase.
bool JobDone(ProcessCluster& cluster) {
  return cluster.AwaitJobCompletion(1).ok();
}

uint64_t SeedFromEnvOr(uint64_t fallback) {
  const char* env = std::getenv("JETSIM_PROCMODE_SEED");
  if (env == nullptr || env[0] == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

void SleepMillis(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// The acceptance loop: kill -9 a random live member, ten times in a row
// (random victim, random dwell, occasionally a second kill mid-recovery),
// and require the cluster back at full DOP after every kill and the final
// result exactly-once. The backoff ladder is tuned so ten deliberate kills
// stay inside the budget: real chaos here is the test harness, not a
// crashing binary, so the stability window is short and the budget large.
TEST(ProcChaos, SeededKillLoopHealsToFullDop) {
  const uint64_t seed = SeedFromEnvOr(0xC4A05u);
  SCOPED_TRACE("reproduce: JETSIM_PROCMODE_SEED=" + std::to_string(seed) +
               " ./procmode_chaos_test --gtest_filter='*SeededKillLoop*'");
  Rng rng(seed);

  auto options = BaseOptions("loop");
  options.job_params.duration = kKillLoopJobDuration;
  options.respawn.backoff.retry_budget = 64;
  options.respawn.backoff.initial_backoff = 10 * kNanosPerMilli;
  options.respawn.backoff.max_backoff = 100 * kNanosPerMilli;
  options.respawn.stability_period = 200 * kNanosPerMilli;
  {
    ProcessCluster cluster(options);
    ASSERT_TRUE(cluster.Start().ok());
    ASSERT_TRUE(cluster.SubmitWindowedJob().ok());
    ASSERT_TRUE(cluster.WaitForCommittedSnapshot(1, 60 * kNanosPerSecond).ok());

    int healed = 0;
    bool raced_with_completion = false;
    for (int i = 0; i < kKillIterations && !JobDone(cluster); ++i) {
      // Random phase: sometimes strike right after a commit, sometimes let
      // the job run a little first.
      SleepMillis(static_cast<int64_t>(rng.NextBounded(120)));
      const auto victim = static_cast<int32_t>(rng.NextBounded(3));
      if (!cluster.KillMember(victim).ok()) continue;  // already down

      // One kill in three lands during the recovery of the previous one:
      // a second victim goes down before the cluster is whole again,
      // exercising the restart-storm coalescing path.
      if (rng.NextBounded(3) == 0) {
        const auto second = static_cast<int32_t>(rng.NextBounded(3));
        if (second != victim) (void)cluster.KillMember(second);
      }

      // SIGKILL -> control EOF is asynchronous: wait until the coordinator
      // actually observed the death before waiting for the heal, or a
      // second kill could land on the same dying pid and count twice.
      const auto observe_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (cluster.live_member_count() == 3 && !JobDone(cluster) &&
             std::chrono::steady_clock::now() < observe_deadline) {
        SleepMillis(1);
      }

      // Full membership must come back after every kill — unless the kill
      // raced with job completion, in which case there is nothing to heal.
      bool whole = false;
      const auto heal_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(60);
      while (std::chrono::steady_clock::now() < heal_deadline) {
        ASSERT_TRUE(cluster.failure_message().empty())
            << "after kill " << healed + 1 << ": " << cluster.failure_message();
        if (cluster.WaitForFullMembership(50 * kNanosPerMilli).ok()) {
          whole = true;
          break;
        }
        if (JobDone(cluster)) break;
      }
      if (!whole) {
        ASSERT_TRUE(JobDone(cluster)) << "cluster never healed after kill "
                                      << healed + 1;
        raced_with_completion = true;
        break;
      }
      ++healed;
      ASSERT_EQ(cluster.live_member_count(), 3) << "after kill " << healed;
    }

    Status done = cluster.AwaitJobCompletion(180 * kNanosPerSecond);
    ASSERT_TRUE(done.ok()) << done.ToString();
    EXPECT_GE(healed, 1);
    EXPECT_GE(cluster.respawn_count(), healed);
    if (!raced_with_completion) {
      EXPECT_EQ(cluster.live_member_count(), 3);
      EXPECT_EQ(cluster.current_attempt_dop(), 3);
    }
    Status verdict = cluster.VerifyExactlyOnce();
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
    cluster.Shutdown();
  }
  RemoveWorkDir(options.work_dir);
}

// A SIGSTOP'd member keeps its sockets open but stops heartbeating: the
// coordinator must move it suspect -> down on heartbeat silence alone,
// replace it, and finish exactly-once — no operator input.
TEST(ProcChaos, StalledMemberIsDetectedAndReplaced) {
  auto options = BaseOptions("stall");
  options.liveness.heartbeat_interval = 10 * kNanosPerMilli;
  options.liveness.suspect_after = 100 * kNanosPerMilli;
  options.liveness.down_after = 400 * kNanosPerMilli;
  options.job_params.duration = 2000 * kNanosPerMilli;
  {
    ProcessCluster cluster(options);
    ASSERT_TRUE(cluster.Start().ok());
    ASSERT_TRUE(cluster.SubmitWindowedJob().ok());
    ASSERT_TRUE(cluster.WaitForCommittedSnapshot(1, 60 * kNanosPerSecond).ok());

    ASSERT_TRUE(cluster.StallMember(1).ok());

    // Suspicion first (heartbeat silence > suspect_after) ...
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (cluster.suspected_member_count() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      SleepMillis(5);
    }
    EXPECT_GE(cluster.suspected_member_count(), 1);

    // ... then down: the coordinator SIGKILLs the zombie and respawns it.
    while (cluster.respawn_count() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      SleepMillis(5);
    }
    EXPECT_GE(cluster.respawn_count(), 1);
    ASSERT_TRUE(cluster.WaitForFullMembership(60 * kNanosPerSecond).ok());

    Status done = cluster.AwaitJobCompletion(180 * kNanosPerSecond);
    ASSERT_TRUE(done.ok()) << done.ToString();
    EXPECT_EQ(cluster.live_member_count(), 3);
    Status verdict = cluster.VerifyExactlyOnce();
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
    cluster.Shutdown();
  }
  RemoveWorkDir(options.work_dir);
}

// A transient stall must NOT escalate: suspect on silence, but when the
// member resumes beating before down_after the suspicion clears and the
// job finishes on the original processes — one attempt, zero respawns.
TEST(ProcChaos, StallSuspicionClearsAfterSigcont) {
  auto options = BaseOptions("gcstall");
  options.liveness.heartbeat_interval = 10 * kNanosPerMilli;
  options.liveness.suspect_after = 100 * kNanosPerMilli;
  options.liveness.down_after = 20 * kNanosPerSecond;  // never reached here
  options.job_params.duration = 2000 * kNanosPerMilli;
  {
    ProcessCluster cluster(options);
    ASSERT_TRUE(cluster.Start().ok());
    ASSERT_TRUE(cluster.SubmitWindowedJob().ok());
    ASSERT_TRUE(cluster.WaitForCommittedSnapshot(1, 60 * kNanosPerSecond).ok());

    ASSERT_TRUE(cluster.StallMember(2).ok());
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (cluster.suspected_member_count() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      SleepMillis(5);
    }
    EXPECT_GE(cluster.suspected_member_count(), 1);

    ASSERT_TRUE(cluster.ResumeMember(2).ok());
    while (cluster.suspected_member_count() != 0 &&
           std::chrono::steady_clock::now() < deadline) {
      SleepMillis(5);
    }
    EXPECT_EQ(cluster.suspected_member_count(), 0);

    Status done = cluster.AwaitJobCompletion(180 * kNanosPerSecond);
    ASSERT_TRUE(done.ok()) << done.ToString();
    EXPECT_EQ(cluster.attempts(), 1);
    EXPECT_EQ(cluster.respawn_count(), 0);
    Status verdict = cluster.VerifyExactlyOnce();
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
    cluster.Shutdown();
  }
  RemoveWorkDir(options.work_dir);
}

// When the retry budget runs dry the cluster must land in a clean terminal
// FAILED — error surfaced to every waiter, no hang, no half-respawned
// member. Budget of one: the first kill is healed, the second is fatal.
TEST(ProcChaos, RespawnBudgetExhaustionFailsCleanly) {
  auto options = BaseOptions("budget");
  options.respawn.backoff.retry_budget = 1;
  options.respawn.stability_period = 60 * kNanosPerSecond;  // never resets
  options.job_params.duration = 20 * kNanosPerSecond;  // outlives the test
  {
    ProcessCluster cluster(options);
    ASSERT_TRUE(cluster.Start().ok());
    ASSERT_TRUE(cluster.SubmitWindowedJob().ok());
    ASSERT_TRUE(cluster.WaitForCommittedSnapshot(1, 60 * kNanosPerSecond).ok());

    ASSERT_TRUE(cluster.KillMember(0).ok());
    // Wait for the death to be observed and the (only) respawn to fire
    // before judging the budget: SIGKILL -> EOF is asynchronous.
    const auto observe_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (cluster.respawn_count() == 0 &&
           std::chrono::steady_clock::now() < observe_deadline) {
      SleepMillis(2);
    }
    ASSERT_GE(cluster.respawn_count(), 1);
    ASSERT_TRUE(cluster.WaitForFullMembership(60 * kNanosPerSecond).ok());
    EXPECT_EQ(cluster.retry_budget_remaining(), 0);

    ASSERT_TRUE(cluster.KillMember(0).ok());
    const auto t0 = std::chrono::steady_clock::now();
    Status done = cluster.AwaitJobCompletion(60 * kNanosPerSecond);
    EXPECT_FALSE(done.ok());
    EXPECT_NE(done.ToString().find("budget exhausted"), std::string::npos)
        << done.ToString();
    EXPECT_NE(cluster.failure_message().find("budget exhausted"), std::string::npos)
        << cluster.failure_message();
    // Terminal, not a hang: failure within seconds, nowhere near the
    // 60 s wait ceiling or the 20 s job duration.
    EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(20));
    cluster.Shutdown();
  }
  RemoveWorkDir(options.work_dir);
}

// Killing the member that holds the replica of the last committed epoch
// must lose nothing: the coordinator's own copy still satisfies the >= 2
// process guarantee, recovery restores that epoch, and committed ids never
// move backwards.
TEST(ProcChaos, KillReplicaHolderLosesNoCommittedEpoch) {
  auto options = BaseOptions("replica");
  options.job_params.duration = 2000 * kNanosPerMilli;
  {
    ProcessCluster cluster(options);
    ASSERT_TRUE(cluster.Start().ok());
    ASSERT_TRUE(cluster.SubmitWindowedJob().ok());
    ASSERT_TRUE(cluster.WaitForCommittedSnapshot(2, 60 * kNanosPerSecond).ok());

    const int32_t holder = cluster.snapshot_replica_member();
    ASSERT_GE(holder, 0) << "no replica holder recorded for the last commit";
    const int64_t committed_before = cluster.last_committed_snapshot();
    ASSERT_GE(committed_before, 2);

    ASSERT_TRUE(cluster.KillMember(holder).ok());
    ASSERT_TRUE(cluster.WaitForFullMembership(60 * kNanosPerSecond).ok());

    Status done = cluster.AwaitJobCompletion(180 * kNanosPerSecond);
    ASSERT_TRUE(done.ok()) << done.ToString();
    EXPECT_GE(cluster.attempts(), 2);
    // The committed epoch survived the loss of its replica holder.
    EXPECT_GE(cluster.last_committed_snapshot(), committed_before);
    Status verdict = cluster.VerifyExactlyOnce();
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
    cluster.Shutdown();
  }
  RemoveWorkDir(options.work_dir);
}

// A replica that detects a seal/entry-count mismatch must send an explicit
// kSnapshotReplicaReject so the coordinator aborts immediately — NOT sit
// silent until the ack-timeout watchdog fires. The watchdog here is set far
// beyond the test deadline, so only the explicit negative ack can produce
// the abort this test requires.
TEST(ProcChaos, ReplicaSealMismatchAbortsImmediately) {
  auto options = BaseOptions("reject");
  options.job_params.duration = 4000 * kNanosPerMilli;
  // If the reject path were still silent, the corrupted snapshot would hang
  // until this watchdog — minutes past every deadline below.
  options.snapshot_ack_timeout = 300 * kNanosPerSecond;
  {
    ProcessCluster cluster(options);
    ASSERT_TRUE(cluster.Start().ok());
    ASSERT_TRUE(cluster.SubmitWindowedJob().ok());
    ASSERT_TRUE(cluster.WaitForCommittedSnapshot(1, 60 * kNanosPerSecond).ok());

    const int64_t committed_before = cluster.last_committed_snapshot();
    cluster.CorruptNextReplicaSeal();

    // The explicit reject must land well inside the watchdog window.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (cluster.replica_reject_count() == 0 && !JobDone(cluster) &&
           std::chrono::steady_clock::now() < deadline) {
      SleepMillis(5);
    }
    EXPECT_GE(cluster.replica_reject_count(), 1)
        << "corrupted seal was not rejected before the deadline — the "
           "member stayed silent and only the watchdog could abort";

    // The aborted snapshot is not fatal: later snapshots commit and the
    // job still finishes exactly-once.
    ASSERT_TRUE(cluster
                    .WaitForCommittedSnapshot(committed_before + 1,
                                              60 * kNanosPerSecond)
                    .ok());
    Status done = cluster.AwaitJobCompletion(180 * kNanosPerSecond);
    ASSERT_TRUE(done.ok()) << done.ToString();
    Status verdict = cluster.VerifyExactlyOnce();
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();

    // The reject is exported as proc.replica_rejects.
    const auto dump = cluster.DiagnosticsDump();
    EXPECT_NE(dump.json.find("proc.replica_rejects"), std::string::npos);
    cluster.Shutdown();
  }
  RemoveWorkDir(options.work_dir);
}

}  // namespace
}  // namespace jet::procmode
