#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/job.h"
#include "nexmark/generator.h"
#include "nexmark/queries.h"

namespace jet::nexmark {
namespace {

TEST(GeneratorTest, Deterministic) {
  GeneratorConfig config;
  for (int64_t seq = 0; seq < 1000; ++seq) {
    Event a = MakeEvent(config, seq);
    Event b = MakeEvent(config, seq);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.bid.auction, b.bid.auction);
    EXPECT_EQ(a.person.id, b.person.id);
    EXPECT_EQ(a.auction.id, b.auction.id);
  }
}

TEST(GeneratorTest, Proportions) {
  GeneratorConfig config;
  int64_t persons = 0, auctions = 0, bids = 0;
  constexpr int64_t kN = 50'000;
  for (int64_t seq = 0; seq < kN; ++seq) {
    switch (MakeEvent(config, seq).kind) {
      case EventKind::kPerson:
        ++persons;
        break;
      case EventKind::kAuction:
        ++auctions;
        break;
      case EventKind::kBid:
        ++bids;
        break;
    }
  }
  EXPECT_EQ(persons, kN / 50);
  EXPECT_EQ(auctions, kN * 3 / 50);
  EXPECT_EQ(bids, kN * 46 / 50);
}

TEST(GeneratorTest, KeysWithinConfiguredRanges) {
  GeneratorConfig config;
  config.people = 100;
  config.auctions = 200;
  std::set<int64_t> person_ids, auction_ids;
  for (int64_t seq = 0; seq < 100'000; ++seq) {
    Event e = MakeEvent(config, seq);
    switch (e.kind) {
      case EventKind::kPerson:
        EXPECT_GE(e.person.id, 0);
        EXPECT_LT(e.person.id, 100);
        person_ids.insert(e.person.id);
        break;
      case EventKind::kAuction:
        EXPECT_GE(e.auction.id, 0);
        EXPECT_LT(e.auction.id, 200);
        EXPECT_GE(e.auction.seller, 0);
        EXPECT_LT(e.auction.seller, 100);
        auction_ids.insert(e.auction.id);
        break;
      case EventKind::kBid:
        EXPECT_GE(e.bid.auction, 0);
        EXPECT_LT(e.bid.auction, 200);
        break;
    }
  }
  // With 100k draws, the small key spaces should be (nearly) saturated.
  EXPECT_GT(person_ids.size(), 95u);
  EXPECT_GT(auction_ids.size(), 190u);
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig a, b;
  b.seed = a.seed + 1;
  int differences = 0;
  for (int64_t seq = 0; seq < 1000; ++seq) {
    Event ea = MakeEvent(a, seq);
    Event eb = MakeEvent(b, seq);
    if (ea.kind == EventKind::kBid && eb.kind == EventKind::kBid &&
        ea.bid.auction != eb.bid.auction) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 500);
}

// Runs a query at low rate for a short burst; returns its histogram.
Histogram RunQuery(int number, double rate = 100'000, Nanos duration = 300 * kNanosPerMilli,
                   Nanos window_size = 100 * kNanosPerMilli,
                   Nanos window_slide = 20 * kNanosPerMilli) {
  QueryConfig config;
  config.events_per_second = rate;
  config.duration = duration;
  config.window_size = window_size;
  config.window_slide = window_slide;
  config.watermark_interval = 5 * kNanosPerMilli;
  auto query = BuildQuery(number, config);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  auto dag = (*query)->pipeline.ToDag();
  EXPECT_TRUE(dag.ok()) << dag.status().ToString();
  core::JobParams params;
  params.dag = &*dag;
  params.cooperative_threads = 2;
  auto job = core::Job::Create(params);
  EXPECT_TRUE(job.ok()) << job.status().ToString();
  EXPECT_TRUE((*job)->Start().ok());
  EXPECT_TRUE((*job)->Join().ok());
  return (*query)->MergedLatency();
}

TEST(NexmarkQueryTest, Q1EmitsOneResultPerBid) {
  Histogram h = RunQuery(1);
  // 300ms at 100k/s = 30000 events, 46/50 of which are bids.
  EXPECT_EQ(h.count(), 30'000 * 46 / 50);
}

TEST(NexmarkQueryTest, Q2SelectsSubset) {
  Histogram h = RunQuery(2);
  EXPECT_GT(h.count(), 0);
  EXPECT_LT(h.count(), 30'000 * 46 / 50 / 50);  // 1/123 of bids + slack
}

TEST(NexmarkQueryTest, Q3JoinsPersonsAndAuctions) {
  Histogram h = RunQuery(3);
  EXPECT_GT(h.count(), 0);
}

TEST(NexmarkQueryTest, Q4EmitsCategoryAverages) {
  Histogram h = RunQuery(4);
  // Per full window: at most kCategories results.
  EXPECT_GT(h.count(), 0);
  EXPECT_LE(h.count(), 5 * 8);
}

TEST(NexmarkQueryTest, Q5EmitsPerAuctionCounts) {
  Histogram h = RunQuery(5);
  EXPECT_GT(h.count(), 0);
}

TEST(NexmarkQueryTest, Q6EmitsSellerAverages) {
  Histogram h = RunQuery(6);
  EXPECT_GT(h.count(), 0);
}

TEST(NexmarkQueryTest, Q7EmitsOneHighestBidPerWindow) {
  Histogram h = RunQuery(7);
  EXPECT_GT(h.count(), 0);
  EXPECT_LE(h.count(), 8);  // one result per full window
}

TEST(NexmarkQueryTest, Q8EmitsNewUserJoins) {
  Histogram h = RunQuery(8);
  EXPECT_GT(h.count(), 0);
}

TEST(NexmarkQueryTest, Q13EnrichesEveryBid) {
  Histogram h = RunQuery(13);
  EXPECT_EQ(h.count(), 30'000 * 46 / 50);
}

TEST(NexmarkQueryTest, UnsupportedQueryRejected) {
  QueryConfig config;
  EXPECT_FALSE(BuildQuery(9, config).ok());
  EXPECT_FALSE(BuildQuery(0, config).ok());
  EXPECT_TRUE(IsQuerySupported(5));
  EXPECT_FALSE(IsQuerySupported(12));
}

// The paper's methodology fixes throughput and measures latency; verify the
// latency sink actually records sane values (non-negative, sub-second at
// this trivial load).
TEST(NexmarkQueryTest, LatencyRecordingsAreSane) {
  Histogram h = RunQuery(1, /*rate=*/50'000, /*duration=*/200 * kNanosPerMilli);
  ASSERT_GT(h.count(), 0);
  EXPECT_GE(h.min(), 0);
  EXPECT_LT(h.ValueAtQuantile(0.5), kNanosPerSecond);
}

}  // namespace
}  // namespace jet::nexmark
