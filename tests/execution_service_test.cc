#include <atomic>
#include <string>

#include <gtest/gtest.h>

#include "core/execution_service.h"

namespace jet::core {
namespace {

// Minimal scripted tasklet.
class ScriptedTasklet final : public Tasklet {
 public:
  ScriptedTasklet(std::string name, int64_t work_calls, Status init = Status::OK(),
                  bool cooperative = true)
      : name_(std::move(name)),
        work_calls_(work_calls),
        init_(init),
        cooperative_(cooperative) {}

  Status Init() override {
    init_called_.store(true);
    return init_;
  }

  TaskletProgress Call() override {
    int64_t done_so_far = calls_.fetch_add(1) + 1;
    return {true, done_so_far >= work_calls_};
  }

  bool IsCooperative() const override { return cooperative_; }
  const std::string& name() const override { return name_; }

  int64_t calls() const { return calls_.load(); }
  bool init_called() const { return init_called_.load(); }

 private:
  std::string name_;
  int64_t work_calls_;
  Status init_;
  bool cooperative_;
  std::atomic<int64_t> calls_{0};
  std::atomic<bool> init_called_{false};
};

TEST(ExecutionServiceTest, RunsAllTaskletsToCompletion) {
  ScriptedTasklet a("a", 100), b("b", 50), c("c", 1);
  ExecutionService service(2);
  ASSERT_TRUE(service.Start({&a, &b, &c}).ok());
  ASSERT_TRUE(service.AwaitCompletion().ok());
  EXPECT_TRUE(service.IsComplete());
  EXPECT_EQ(a.calls(), 100);
  EXPECT_EQ(b.calls(), 50);
  EXPECT_EQ(c.calls(), 1);
}

TEST(ExecutionServiceTest, InitErrorPropagatesAndCancels) {
  ScriptedTasklet good("good", 1'000'000'000);  // would run a long time
  ScriptedTasklet bad("bad", 10, InternalError("boom"));
  ExecutionService service(2);
  ASSERT_TRUE(service.Start({&good, &bad}).ok());
  Status s = service.AwaitCompletion();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(ExecutionServiceTest, CancelStopsLongRunningTasklets) {
  ScriptedTasklet endless("endless", int64_t{1} << 60);
  ExecutionService service(1);
  ASSERT_TRUE(service.Start({&endless}).ok());
  service.Cancel();
  ASSERT_TRUE(service.AwaitCompletion().ok());
  EXPECT_TRUE(service.IsComplete());
}

TEST(ExecutionServiceTest, NonCooperativeGetsDedicatedThread) {
  // One cooperative worker + a non-cooperative tasklet: both finish even
  // though the non-cooperative one would monopolize a shared thread.
  ScriptedTasklet coop("coop", 1000);
  ScriptedTasklet blocking("blocking", 1000, Status::OK(), /*cooperative=*/false);
  ExecutionService service(1);
  ASSERT_TRUE(service.Start({&coop, &blocking}).ok());
  ASSERT_TRUE(service.AwaitCompletion().ok());
  EXPECT_EQ(coop.calls(), 1000);
  EXPECT_EQ(blocking.calls(), 1000);
}

TEST(ExecutionServiceTest, DoubleStartRejected) {
  ScriptedTasklet t("t", 1);
  ExecutionService service(1);
  ASSERT_TRUE(service.Start({&t}).ok());
  EXPECT_FALSE(service.Start({&t}).ok());
  (void)service.AwaitCompletion();
}

TEST(ExecutionServiceTest, EmptyTaskletListCompletesImmediately) {
  ExecutionService service(2);
  ASSERT_TRUE(service.Start({}).ok());
  ASSERT_TRUE(service.AwaitCompletion().ok());
  EXPECT_TRUE(service.IsComplete());
}

}  // namespace
}  // namespace jet::core
