// Self-healing control plane tests: member death, snapshot watchdog,
// retry-budget exhaustion, flap damping and quorum-aware degradation, all
// WITHOUT any test-driven KillNode / RecoverAfterFault calls — detection
// and recovery are the supervisor's job (§4.4's autonomous story).
#include <string>

#include <gtest/gtest.h>

#include "cluster/jet_cluster.h"
#include "cluster/job_supervisor.h"
#include "testkit/chaos.h"
#include "testkit/wait.h"

namespace jet::cluster {
namespace {

using testkit::ClusterFixture;
using testkit::FixtureOptions;
using testkit::HeldFalseFor;
using testkit::WaitUntil;

constexpr Nanos kWait = 10 * kNanosPerSecond;

// A member dies mid-snapshot. The watchdog is tighter than failure
// detection here, so the in-flight epoch must be aborted (and GC'd) before
// the death is even diagnosed; then the control plane evicts the member
// and restarts the job from the last committed snapshot on the survivors.
// Restart count, abort count and the final RUNNING state are all readable
// from DiagnosticsDump(). No RecoverAfterFault anywhere.
TEST(SupervisorTest, KillDuringSnapshotAbortsEpochAndSelfHeals) {
  FixtureOptions options;
  options.supervisor.enabled = true;
  options.supervisor.snapshot_ack_timeout = 120 * kNanosPerMilli;
  options.supervisor.suspicion_timeout = 400 * kNanosPerMilli;
  options.source_duration = 2 * kNanosPerSecond;
  ClusterFixture fixture(options);
  ASSERT_TRUE(fixture.SubmitWindowedJob().ok());
  ASSERT_TRUE(fixture.WaitForCommittedSnapshot(2, kWait));

  JobSupervisor* sup = fixture.job()->supervisor();
  ASSERT_NE(sup, nullptr);
  ASSERT_TRUE(fixture.cluster().CrashNode(2).ok());

  // The coordinator's next epoch cannot complete with a dead participant:
  // the watchdog must abandon it well before detection fires.
  ASSERT_TRUE(WaitUntil(
      [&fixture]() { return fixture.job()->snapshots_aborted() >= 1; }, kWait));
  // Detection then evicts the member and the supervisor restarts the job.
  ASSERT_TRUE(WaitUntil([&fixture]() {
                return fixture.cluster().AliveNodes().size() == 2;
              }, kWait));
  ASSERT_TRUE(WaitUntil([sup]() {
                return sup->state() == JobState::kRunning && sup->restarts() >= 1;
              }, kWait));

  // The whole story is visible to an operator in the diagnostics dump.
  auto dump = fixture.cluster().DiagnosticsDump();
  EXPECT_NE(dump.json.find("job.state"), std::string::npos);
  EXPECT_NE(dump.json.find("job.restarts"), std::string::npos);
  EXPECT_NE(dump.json.find("job.backoff_nanos"), std::string::npos);
  EXPECT_NE(dump.json.find("snapshot.aborted"), std::string::npos);
  EXPECT_NE(dump.prometheus.find("job_state"), std::string::npos);

  ASSERT_TRUE(fixture.JoinJob().ok());
  // COMPLETED is recorded by the control loop's next reconcile tick.
  EXPECT_TRUE(WaitUntil(
      [sup]() { return sup->state() == JobState::kCompleted; }, kWait));
  Status exact = fixture.VerifyExactlyOnce();
  EXPECT_TRUE(exact.ok()) << exact.ToString();
  Status invariants = fixture.VerifyClusterInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants.ToString();
  Status accounting = fixture.VerifyDeliveryAccounting();
  EXPECT_TRUE(accounting.ok()) << accounting.ToString();
}

// Retry budget exhaustion: with a budget of one, the second member death
// cannot be recovered from and the job must land in terminal FAILED, with
// Join() releasing its caller with an error instead of hanging.
TEST(SupervisorTest, RetryBudgetExhaustionFailsTerminally) {
  FixtureOptions options;
  options.initial_nodes = 5;
  options.supervisor.enabled = true;
  options.supervisor.retry_budget = 1;
  // Keep the watchdog out of the way so only member deaths are charged.
  options.supervisor.snapshot_ack_timeout = 5 * kNanosPerSecond;
  options.source_duration = 30 * kNanosPerSecond;  // never finishes naturally
  ClusterFixture fixture(options);
  ASSERT_TRUE(fixture.SubmitWindowedJob().ok());
  ASSERT_TRUE(fixture.WaitForCommittedSnapshot(1, kWait));

  JobSupervisor* sup = fixture.job()->supervisor();
  ASSERT_NE(sup, nullptr);
  EXPECT_EQ(sup->budget_remaining(), 1);

  ASSERT_TRUE(fixture.cluster().CrashNode(4).ok());
  ASSERT_TRUE(WaitUntil([sup]() {
                return sup->state() == JobState::kRunning && sup->restarts() >= 1;
              }, kWait));
  EXPECT_EQ(sup->budget_remaining(), 0);

  ASSERT_TRUE(fixture.cluster().CrashNode(3).ok());
  ASSERT_TRUE(WaitUntil([sup]() { return sup->state() == JobState::kFailed; }, kWait));

  Status join = fixture.JoinJob();
  EXPECT_FALSE(join.ok());
  EXPECT_NE(join.ToString().find("retry budget exhausted"), std::string::npos)
      << join.ToString();
  EXPECT_EQ(sup->state(), JobState::kFailed);
}

// Quorum-aware degradation: a 2-2 partition leaves no majority, so the
// job suspends — no split-brain double-processing, no backup promotion,
// no budget charge for the suspension. Healing restores quorum and the
// job resumes on its own, still exactly-once.
TEST(SupervisorTest, MinorityPartitionSuspendsThenResumes) {
  FixtureOptions options;
  options.initial_nodes = 4;
  options.supervisor.enabled = true;
  options.supervisor.snapshot_ack_timeout = 5 * kNanosPerSecond;
  ClusterFixture fixture(options);
  ASSERT_TRUE(fixture.SubmitWindowedJob().ok());
  ASSERT_TRUE(fixture.WaitForCommittedSnapshot(1, kWait));

  JobSupervisor* sup = fixture.job()->supervisor();
  ASSERT_NE(sup, nullptr);

  // Split {0,1} from {2,3}: both halves are minorities.
  net::Network& network = fixture.network();
  network.Partition(0, 2);
  network.Partition(0, 3);
  network.Partition(1, 2);
  network.Partition(1, 3);

  ASSERT_TRUE(
      WaitUntil([sup]() { return sup->state() == JobState::kSuspended; }, kWait));
  // No membership change happened: suspension is graceful degradation, not
  // eviction.
  EXPECT_EQ(fixture.cluster().AliveNodes().size(), 4u);

  network.Heal(0, 2);
  network.Heal(0, 3);
  network.Heal(1, 2);
  network.Heal(1, 3);

  ASSERT_TRUE(
      WaitUntil([sup]() { return sup->state() == JobState::kRunning; }, kWait));
  ASSERT_TRUE(fixture.JoinJob().ok());
  Status exact = fixture.VerifyExactlyOnce();
  EXPECT_TRUE(exact.ok()) << exact.ToString();
  Status accounting = fixture.VerifyDeliveryAccounting();
  EXPECT_TRUE(accounting.ok()) << accounting.ToString();
}

// Flap damping: a transient heartbeat delay pushes a member into the
// suspected set, a fresh heartbeat refutes it, and the control plane never
// restarts anything — suspicion alone is not failure.
TEST(SupervisorTest, FlappingSuspicionIsRefutedWithoutRestart) {
  FixtureOptions options;
  options.supervisor.enabled = true;
  options.supervisor.snapshot_ack_timeout = 5 * kNanosPerSecond;
  ClusterFixture fixture(options);
  ASSERT_TRUE(fixture.SubmitWindowedJob().ok());
  ASSERT_TRUE(fixture.WaitForCommittedSnapshot(1, kWait));

  JobSupervisor* sup = fixture.job()->supervisor();
  ClusterHealthMonitor* monitor = fixture.cluster().health_monitor();
  ASSERT_NE(sup, nullptr);
  ASSERT_NE(monitor, nullptr);

  // A delay spike (no loss!) longer than suspect_after but far below the
  // suspicion timeout: heartbeats arrive late enough to raise suspicion
  // and then refute it.
  net::Network& network = fixture.network();
  net::FaultPlan plan;
  plan.extra_latency = 70 * kNanosPerMilli;
  network.SetLinkFault(0, 1, plan);
  network.SetLinkFault(1, 0, plan);

  ASSERT_TRUE(
      WaitUntil([monitor]() { return monitor->refutation_count() >= 1; }, kWait));

  network.SetLinkFault(0, 1, net::FaultPlan{});
  network.SetLinkFault(1, 0, net::FaultPlan{});

  ASSERT_TRUE(fixture.JoinJob().ok());
  EXPECT_EQ(sup->restarts(), 0) << "suspicion alone must not trigger a restart";
  EXPECT_EQ(sup->budget_remaining(), fixture.cluster().config().supervisor.retry_budget);
  Status exact = fixture.VerifyExactlyOnce();
  EXPECT_TRUE(exact.ok()) << exact.ToString();
}

// Scale-out under supervision: AddNode routes through the control plane as
// a free restart — no budget charge, and the job still completes exactly
// once on the grown membership.
TEST(SupervisorTest, ScaleOutIsAFreeRestart) {
  FixtureOptions options;
  options.supervisor.enabled = true;
  options.supervisor.snapshot_ack_timeout = 5 * kNanosPerSecond;
  ClusterFixture fixture(options);
  ASSERT_TRUE(fixture.SubmitWindowedJob().ok());
  ASSERT_TRUE(fixture.WaitForCommittedSnapshot(1, kWait));

  JobSupervisor* sup = fixture.job()->supervisor();
  ASSERT_NE(sup, nullptr);
  auto added = fixture.cluster().AddNode();
  ASSERT_TRUE(added.ok());
  ASSERT_TRUE(WaitUntil([sup]() {
                return sup->state() == JobState::kRunning && sup->restarts() >= 1;
              }, kWait));
  EXPECT_EQ(sup->budget_remaining(), fixture.cluster().config().supervisor.retry_budget);

  ASSERT_TRUE(fixture.JoinJob().ok());
  EXPECT_EQ(fixture.cluster().AliveNodes().size(), 4u);
  Status exact = fixture.VerifyExactlyOnce();
  EXPECT_TRUE(exact.ok()) << exact.ToString();
}

// CrashNode is the supervised fail-stop; without a control plane to pick
// up the pieces it must refuse to run.
TEST(SupervisorTest, CrashNodeRequiresSupervisor) {
  ClusterConfig config;
  config.initial_nodes = 2;
  config.threads_per_node = 1;
  JetCluster cluster(config);
  Status s = cluster.CrashNode(0);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();
}

// The backoff ladder: deterministic per seed, exponential until capped,
// jittered within its configured fraction, and reset by a stable stretch.
TEST(JobSupervisorTest, BackoffIsExponentialJitteredAndSeeded) {
  SupervisorOptions options;
  options.enabled = true;
  options.retry_budget = 100;
  options.initial_backoff = 10 * kNanosPerMilli;
  options.backoff_multiplier = 2.0;
  options.max_backoff = 100 * kNanosPerMilli;
  options.jitter_fraction = 0.5;
  options.stability_period = kNanosPerSecond;

  auto ladder = [&options](int64_t job_id) {
    JobSupervisor sup(job_id, options);
    std::vector<Nanos> delays;
    Nanos now = 0;
    for (int i = 0; i < 6; ++i) {
      auto d = sup.OnFailure(now);
      EXPECT_TRUE(d.has_value());
      delays.push_back(*d);
      now += *d + 1;
      sup.OnRestartStarted(now);  // quick relapse: no stability reset
    }
    return delays;
  };

  auto a = ladder(7);
  auto b = ladder(7);
  EXPECT_EQ(a, b) << "same seed + job id must give the same jitter stream";
  EXPECT_NE(a, ladder(8)) << "different job ids must de-synchronize";

  for (size_t i = 0; i < a.size(); ++i) {
    Nanos base = std::min<Nanos>(
        static_cast<Nanos>(10 * kNanosPerMilli * (1LL << i)), 100 * kNanosPerMilli);
    EXPECT_GE(a[i], base) << "step " << i;
    EXPECT_LE(a[i], base + base / 2) << "step " << i << " exceeds jitter bound";
  }

  // A long stable RUNNING stretch resets the exponent back to the bottom.
  JobSupervisor sup(7, options);
  Nanos now = 0;
  for (int i = 0; i < 4; ++i) {
    auto d = sup.OnFailure(now);
    ASSERT_TRUE(d.has_value());
    now += *d + 1;
    sup.OnRestartStarted(now);
  }
  now += 2 * options.stability_period;
  auto after_stable = sup.OnFailure(now);
  ASSERT_TRUE(after_stable.has_value());
  EXPECT_LE(*after_stable, options.initial_backoff + options.initial_backoff / 2);
}

// Incidents arriving while a restart is already pending coalesce into it:
// one root cause, one restart, one budget charge.
TEST(JobSupervisorTest, ConcurrentIncidentsCoalesceIntoOneRestart) {
  SupervisorOptions options;
  options.enabled = true;
  options.retry_budget = 5;
  JobSupervisor sup(1, options);
  ASSERT_TRUE(sup.OnFailure(0).has_value());
  EXPECT_EQ(sup.budget_remaining(), 4);
  // Second symptom of the same incident: folded, not charged.
  ASSERT_TRUE(sup.OnFailure(1).has_value());
  EXPECT_EQ(sup.budget_remaining(), 4);
  EXPECT_EQ(sup.state(), JobState::kRestarting);
}

}  // namespace
}  // namespace jet::cluster
