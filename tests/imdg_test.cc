#include <set>

#include <gtest/gtest.h>

#include "imdg/grid.h"
#include "imdg/imap.h"
#include "imdg/partition_table.h"
#include "imdg/snapshot_store.h"

namespace jet::imdg {
namespace {

Bytes Key(uint64_t k) {
  BytesWriter w;
  w.WriteU64(k);
  return w.Take();
}

Bytes Value(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

// ---------------------------------------------------------------------------
// PartitionTable — property sweep over member counts
// ---------------------------------------------------------------------------

class PartitionTableSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartitionTableSweep, AssignmentIsBalancedAndValid) {
  const int members = GetParam();
  PartitionTable table(kDefaultPartitionCount, /*backup_count=*/1);
  std::vector<MemberId> ids;
  for (int i = 0; i < members; ++i) ids.push_back(i);
  ASSERT_TRUE(table.Assign(ids).ok());
  ASSERT_TRUE(table.Validate().ok());

  // Every partition has a primary; primaries are balanced within 1.
  int32_t min_p = kDefaultPartitionCount, max_p = 0;
  for (MemberId m : ids) {
    auto p = static_cast<int32_t>(table.PrimariesOf(m).size());
    min_p = std::min(min_p, p);
    max_p = std::max(max_p, p);
  }
  EXPECT_LE(max_p - min_p, 1);

  // With >= 2 members every partition has a backup on a different member.
  if (members >= 2) {
    for (PartitionId p = 0; p < kDefaultPartitionCount; ++p) {
      EXPECT_NE(table.ReplicaFor(p, 1), kInvalidMember);
      EXPECT_NE(table.ReplicaFor(p, 1), table.PrimaryFor(p));
    }
  }
}

TEST_P(PartitionTableSweep, RemoveMemberPromotesBackups) {
  const int members = GetParam();
  if (members < 2) GTEST_SKIP();
  PartitionTable table(kDefaultPartitionCount, 1);
  std::vector<MemberId> ids;
  for (int i = 0; i < members; ++i) ids.push_back(i);
  ASSERT_TRUE(table.Assign(ids).ok());

  // Record who was the backup of each partition primaried on member 0.
  auto victims = table.PrimariesOf(0);
  std::vector<MemberId> backups;
  for (PartitionId p : victims) backups.push_back(table.ReplicaFor(p, 1));

  table.RemoveMember(0);
  ASSERT_TRUE(table.Validate().ok());
  for (size_t i = 0; i < victims.size(); ++i) {
    // Promotion (Fig 6): the old backup is the new primary — no data moves.
    EXPECT_EQ(table.PrimaryFor(victims[i]), backups[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(MemberCounts, PartitionTableSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

TEST(PartitionTableTest, AddMemberMovesMinimalData) {
  PartitionTable table(kDefaultPartitionCount, 1);
  ASSERT_TRUE(table.Assign({0, 1, 2}).ok());
  auto migrations = table.AddMember(3);
  ASSERT_TRUE(table.Validate().ok());
  // Only the new member's fair share of primaries moves: ~271/4 ≈ 67.
  EXPECT_LE(migrations.size(), static_cast<size_t>(kDefaultPartitionCount / 4 + 1));
  for (const auto& m : migrations) {
    EXPECT_EQ(m.destination, 3);
    EXPECT_EQ(m.replica_index, 0);
  }
  auto new_share = table.PrimariesOf(3).size();
  EXPECT_GE(new_share, static_cast<size_t>(kDefaultPartitionCount / 4 - 1));
}

TEST(PartitionTableTest, MigrationSourceDiesMidMigration) {
  // A member joins and migrations toward it are "in flight" when one of the
  // migration sources dies. The table must promote backups for the dead
  // member's primaries and stay fully valid — no partition may be left
  // pointing at the dead member at any replica index.
  PartitionTable table(kDefaultPartitionCount, /*backup_count=*/1);
  ASSERT_TRUE(table.Assign({0, 1, 2}).ok());
  int64_t version_before_join = table.version();
  auto migrations = table.AddMember(3);
  ASSERT_FALSE(migrations.empty());
  EXPECT_GT(table.version(), version_before_join);

  // Pick the source of the first pending migration and kill it.
  MemberId victim = migrations[0].source;
  ASSERT_NE(victim, 3);
  int64_t version_before_kill = table.version();
  table.RemoveMember(victim);
  EXPECT_GT(table.version(), version_before_kill);
  ASSERT_TRUE(table.Validate().ok());
  for (PartitionId p = 0; p < kDefaultPartitionCount; ++p) {
    EXPECT_NE(table.PrimaryFor(p), victim) << "partition " << p;
    EXPECT_NE(table.PrimaryFor(p), kInvalidMember) << "partition " << p;
    EXPECT_NE(table.ReplicaFor(p, 1), victim) << "partition " << p;
  }
}

TEST(PartitionTableTest, HashMappingIsStable) {
  // Partition of a key never depends on membership (§4.1 alignment).
  EXPECT_EQ(PartitionForHash(12345, 271), PartitionForHash(12345, 271));
  EXPECT_EQ(PartitionForKey(7, 271), PartitionForHash(HashU64(7), 271));
}

// ---------------------------------------------------------------------------
// DataGrid
// ---------------------------------------------------------------------------

TEST(DataGridTest, PutGetRemove) {
  DataGrid grid(1);
  ASSERT_TRUE(grid.AddMember(0).ok());
  ASSERT_TRUE(grid.Put("m", Key(1), Value("a")).ok());
  auto got = grid.Get("m", Key(1));
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, Value("a"));

  auto removed = grid.Remove("m", Key(1));
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(*removed);
  got = grid.Get("m", Key(1));
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->has_value());
}

TEST(DataGridTest, GetMissingReturnsNullopt) {
  DataGrid grid(1);
  ASSERT_TRUE(grid.AddMember(0).ok());
  auto got = grid.Get("m", Key(42));
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->has_value());
}

TEST(DataGridTest, OperationsWithoutMembersFail) {
  DataGrid grid(1);
  EXPECT_FALSE(grid.Put("m", Key(1), Value("a")).ok());
}

TEST(DataGridTest, ReplicationKeepsBackupsInSync) {
  DataGrid grid(1);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(grid.AddMember(i).ok());
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(grid.Put("m", Key(k), Value(std::to_string(k))).ok());
  }
  EXPECT_TRUE(grid.CheckReplicaConsistency("m").ok());
  EXPECT_EQ(grid.Size("m"), 1000);
}

TEST(DataGridTest, DataSurvivesMemberFailure) {
  DataGrid grid(1);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(grid.AddMember(i).ok());
  for (uint64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(grid.Put("m", Key(k), Value(std::to_string(k))).ok());
  }
  ASSERT_TRUE(grid.RemoveMember(1).ok());
  // Every entry is still readable and replicas are re-established.
  for (uint64_t k = 0; k < 2000; ++k) {
    auto got = grid.Get("m", Key(k));
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value()) << "lost key " << k;
    EXPECT_EQ(**got, Value(std::to_string(k)));
  }
  EXPECT_TRUE(grid.CheckReplicaConsistency("m").ok());
}

TEST(DataGridTest, DataSurvivesSequentialFailures) {
  DataGrid grid(/*backup_count=*/1);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(grid.AddMember(i).ok());
  for (uint64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(grid.Put("m", Key(k), Value("v")).ok());
  }
  // One failure at a time, re-replicating in between, never loses data.
  ASSERT_TRUE(grid.RemoveMember(0).ok());
  ASSERT_TRUE(grid.RemoveMember(2).ok());
  for (uint64_t k = 0; k < 500; ++k) {
    auto got = grid.Get("m", Key(k));
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->has_value()) << "lost key " << k;
  }
}

TEST(DataGridTest, VersionMonotonicAcrossConsecutiveKills) {
  // Two consecutive member failures: the partition-table version advances
  // strictly at each membership change, backups re-form in between, and no
  // entry is lost (the §4.2 restore path depends on exactly this).
  DataGrid grid(/*backup_count=*/1);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(grid.AddMember(i).ok());
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(grid.Put("m", Key(k), Value(std::to_string(k))).ok());
  }
  int64_t v0 = grid.table().version();
  ASSERT_TRUE(grid.RemoveMember(1).ok());
  int64_t v1 = grid.table().version();
  EXPECT_GT(v1, v0);
  ASSERT_TRUE(grid.table().Validate().ok());
  EXPECT_TRUE(grid.CheckReplicaConsistency("m").ok());

  ASSERT_TRUE(grid.RemoveMember(3).ok());
  int64_t v2 = grid.table().version();
  EXPECT_GT(v2, v1);
  ASSERT_TRUE(grid.table().Validate().ok());
  EXPECT_TRUE(grid.CheckReplicaConsistency("m").ok());
  for (uint64_t k = 0; k < 1000; ++k) {
    auto got = grid.Get("m", Key(k));
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value()) << "lost key " << k;
    EXPECT_EQ(**got, Value(std::to_string(k)));
  }
}

TEST(DataGridTest, JoinRebalancesAndPreservesData) {
  DataGrid grid(1);
  ASSERT_TRUE(grid.AddMember(0).ok());
  ASSERT_TRUE(grid.AddMember(1).ok());
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(grid.Put("m", Key(k), Value("x")).ok());
  }
  auto migrated = grid.AddMember(2);
  ASSERT_TRUE(migrated.ok());
  EXPECT_GT(*migrated, 0);
  for (uint64_t k = 0; k < 1000; ++k) {
    auto got = grid.Get("m", Key(k));
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->has_value());
  }
  EXPECT_TRUE(grid.CheckReplicaConsistency("m").ok());
  // The new member now owns a fair share of primaries.
  EXPECT_GT(grid.table().PrimariesOf(2).size(), static_cast<size_t>(60));
}

TEST(DataGridTest, PutInPartitionPlacesExplicitly) {
  DataGrid grid(1);
  ASSERT_TRUE(grid.AddMember(0).ok());
  ASSERT_TRUE(grid.PutInPartition("m", 42, Key(1), Value("a")).ok());
  auto entries = grid.EntriesInPartition("m", 42);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].second, Value("a"));
  EXPECT_FALSE(grid.PutInPartition("m", 100000, Key(1), Value("a")).ok());
}

TEST(DataGridTest, ClearAndDestroy) {
  DataGrid grid(1);
  ASSERT_TRUE(grid.AddMember(0).ok());
  ASSERT_TRUE(grid.Put("m", Key(1), Value("a")).ok());
  grid.Clear("m");
  EXPECT_EQ(grid.Size("m"), 0);
  ASSERT_TRUE(grid.Put("m", Key(2), Value("b")).ok());
  grid.Destroy("m");
  EXPECT_EQ(grid.Size("m"), 0);
}

TEST(DataGridTest, StatsAreCounted) {
  DataGrid grid(1);
  ASSERT_TRUE(grid.AddMember(0).ok());
  ASSERT_TRUE(grid.AddMember(1).ok());
  (void)grid.Put("m", Key(1), Value("a"));
  (void)grid.Get("m", Key(1));
  auto stats = grid.stats();
  EXPECT_EQ(stats.puts, 1);
  EXPECT_EQ(stats.gets, 1);
  EXPECT_GT(stats.replicated_bytes, 0);
}

// ---------------------------------------------------------------------------
// IMap typed facade
// ---------------------------------------------------------------------------

TEST(IMapTest, TypedRoundTrip) {
  DataGrid grid(0);
  ASSERT_TRUE(grid.AddMember(0).ok());
  IMap<int64_t, std::string> map(&grid, "users");
  ASSERT_TRUE(map.Put(7, "alice").ok());
  ASSERT_TRUE(map.Put(8, "bob").ok());
  auto got = map.Get(7);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, "alice");
  EXPECT_EQ(map.Size(), 2);
  auto removed = map.Remove(7);
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(*removed);
  EXPECT_EQ(map.Size(), 1);
}

TEST(IMapTest, TwoViewsShareData) {
  DataGrid grid(0);
  ASSERT_TRUE(grid.AddMember(0).ok());
  IMap<int64_t, double> a(&grid, "shared");
  IMap<int64_t, double> b(&grid, "shared");
  ASSERT_TRUE(a.Put(1, 2.5).ok());
  auto got = b.Get(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, 2.5);
}

// ---------------------------------------------------------------------------
// SnapshotStore
// ---------------------------------------------------------------------------

TEST(SnapshotStoreTest, WriteCommitRead) {
  DataGrid grid(1);
  ASSERT_TRUE(grid.AddMember(0).ok());
  ASSERT_TRUE(grid.AddMember(1).ok());
  SnapshotStore store(&grid);

  SnapshotStateEntry entry;
  entry.vertex_id = 2;
  entry.writer_index = 0;
  entry.key_hash = HashU64(5);
  entry.key = Key(5);
  entry.value = Value("state");
  ASSERT_TRUE(store.WriteEntry(1, 1, entry).ok());
  ASSERT_TRUE(store.Commit(1, 1).ok());

  auto committed = store.LastCommitted(1);
  ASSERT_TRUE(committed.ok());
  ASSERT_TRUE(committed->has_value());
  EXPECT_EQ(**committed, 1);

  int found = 0;
  PartitionId p = PartitionForHash(entry.key_hash, grid.partition_count());
  ASSERT_TRUE(store
                  .ReadEntries(1, 1, 2, p,
                               [&found](SnapshotStateEntry e) {
                                 EXPECT_EQ(e.value, Value("state"));
                                 ++found;
                               })
                  .ok());
  EXPECT_EQ(found, 1);
}

TEST(SnapshotStoreTest, EveryEpochGetsItsOwnMap) {
  // Per-epoch maps: an aborted epoch can be GC'd without touching any
  // other, and a late writer of epoch N can never pollute epoch N+2.
  EXPECT_NE(SnapshotStore::MapNameFor(1, 1), SnapshotStore::MapNameFor(1, 2));
  EXPECT_NE(SnapshotStore::MapNameFor(1, 1), SnapshotStore::MapNameFor(1, 3));
  EXPECT_NE(SnapshotStore::MapNameFor(1, 2), SnapshotStore::MapNameFor(2, 2));
}

TEST(SnapshotStoreTest, CommitRetainsLastTwoCommittedEpochs) {
  DataGrid grid(0);
  ASSERT_TRUE(grid.AddMember(0).ok());
  SnapshotStore store(&grid);
  for (int64_t snap = 1; snap <= 4; ++snap) {
    SnapshotStateEntry e;
    e.vertex_id = 1;
    e.key_hash = 1;
    e.key = Key(1);
    e.value = Value("v" + std::to_string(snap));
    ASSERT_TRUE(store.WriteEntry(1, snap, e).ok());
    ASSERT_TRUE(store.Commit(1, snap).ok());
  }
  // Only the last two committed snapshots survive (the previous one stays
  // as a fallback restore point while the newest is the primary).
  EXPECT_EQ(store.CommittedSnapshots(1), (std::vector<int64_t>{3, 4}));
  EXPECT_EQ(store.EntryCount(1, 1), 0);
  EXPECT_EQ(store.EntryCount(1, 2), 0);
  EXPECT_EQ(store.EntryCount(1, 3), 1);
  EXPECT_EQ(store.EntryCount(1, 4), 1);
}

TEST(SnapshotStoreTest, AbortDestroysEpochAndCounts) {
  DataGrid grid(0);
  ASSERT_TRUE(grid.AddMember(0).ok());
  SnapshotStore store(&grid);
  SnapshotStateEntry e;
  e.vertex_id = 1;
  e.key_hash = 1;
  e.key = Key(1);
  e.value = Value("partial");
  ASSERT_TRUE(store.WriteEntry(1, 1, e).ok());
  ASSERT_TRUE(store.Commit(1, 1).ok());
  ASSERT_TRUE(store.WriteEntry(1, 2, e).ok());
  store.Abort(1, 2);
  EXPECT_EQ(store.EntryCount(1, 2), 0);
  EXPECT_EQ(store.aborted_count(), 1);
  // Aborting a committed epoch is a no-op.
  store.Abort(1, 1);
  EXPECT_EQ(store.EntryCount(1, 1), 1);
  EXPECT_EQ(store.aborted_count(), 1);
  auto committed = store.LastCommitted(1);
  ASSERT_TRUE(committed.ok());
  ASSERT_TRUE(committed->has_value());
  EXPECT_EQ(**committed, 1);
}

TEST(SnapshotStoreTest, DistinctWritersDoNotOverwrite) {
  DataGrid grid(0);
  ASSERT_TRUE(grid.AddMember(0).ok());
  SnapshotStore store(&grid);
  // Two instances hold partial state for the same key (two-stage
  // aggregation); both entries must survive.
  for (int32_t writer : {0, 1}) {
    SnapshotStateEntry e;
    e.vertex_id = 1;
    e.writer_index = writer;
    e.key_hash = HashU64(9);
    e.key = Key(9);
    e.value = Value("partial" + std::to_string(writer));
    ASSERT_TRUE(store.WriteEntry(4, 1, e).ok());
  }
  EXPECT_EQ(store.EntryCount(4, 1), 2);
}

TEST(SnapshotStoreTest, ClearInFlightRemovesStaleEntries) {
  DataGrid grid(0);
  ASSERT_TRUE(grid.AddMember(0).ok());
  SnapshotStore store(&grid);
  SnapshotStateEntry e;
  e.vertex_id = 1;
  e.key_hash = 1;
  e.key = Key(1);
  e.value = Value("stale");
  ASSERT_TRUE(store.WriteEntry(2, 2, e).ok());
  ASSERT_TRUE(store.Commit(2, 2).ok());
  ASSERT_TRUE(store.WriteEntry(2, 3, e).ok());
  ASSERT_TRUE(store.WriteEntry(2, 4, e).ok());
  store.ClearInFlight(2);
  // Every uncommitted epoch is swept; committed ones survive.
  EXPECT_EQ(store.EntryCount(2, 3), 0);
  EXPECT_EQ(store.EntryCount(2, 4), 0);
  EXPECT_EQ(store.EntryCount(2, 2), 1);
  EXPECT_EQ(store.LiveSnapshots(2), (std::vector<int64_t>{2}));
}

TEST(SnapshotStoreTest, DeleteJobRemovesEverything) {
  DataGrid grid(0);
  ASSERT_TRUE(grid.AddMember(0).ok());
  SnapshotStore store(&grid);
  SnapshotStateEntry e;
  e.vertex_id = 1;
  e.key_hash = 1;
  e.key = Key(1);
  e.value = Value("v");
  ASSERT_TRUE(store.WriteEntry(3, 1, e).ok());
  ASSERT_TRUE(store.Commit(3, 1).ok());
  store.DeleteJob(3);
  auto committed = store.LastCommitted(3);
  ASSERT_TRUE(committed.ok());
  EXPECT_FALSE(committed->has_value());
  EXPECT_EQ(store.EntryCount(3, 1), 0);
}

}  // namespace
}  // namespace jet::imdg
