// Wraparound, size, and misuse-detection coverage for SpscQueue (ISSUE 1).
//
// The wraparound tests use SpscQueue::SeedIndexesForTest to start the
// monotonically increasing head/tail indices near SIZE_MAX, so the
// `index & mask_` addressing and the `head - tail` unsigned arithmetic are
// exercised across the 2^64 boundary without 2^64 pushes.

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/debug_check.h"
#include "common/spsc_queue.h"

namespace jet {
namespace {

TEST(SpscQueueWrapTest, PushBatchAcrossIndexBoundary) {
  SpscQueue<int> q(8);
  // 3 slots before the index wraps to 0 mid-batch.
  q.SeedIndexesForTest(std::numeric_limits<size_t>::max() - 2);
  std::vector<int> in = {10, 11, 12, 13, 14, 15};
  EXPECT_EQ(q.PushBatch(in.begin(), in.end()), 6u);
  EXPECT_EQ(q.SizeApprox(), 6u);
  std::vector<int> out;
  EXPECT_EQ(q.DrainTo([&out](int&& v) { out.push_back(v); }, 100), 6u);
  EXPECT_EQ(out, (std::vector<int>{10, 11, 12, 13, 14, 15}));
  EXPECT_EQ(q.SizeApprox(), 0u);
}

TEST(SpscQueueWrapTest, DrainToAcrossIndexBoundary) {
  SpscQueue<int> q(4);
  q.SeedIndexesForTest(std::numeric_limits<size_t>::max() - 1);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(q.TryPush(v));
  }
  int overflow = 99;
  EXPECT_FALSE(q.TryPush(overflow));  // full across the boundary
  std::vector<int> out;
  EXPECT_EQ(q.DrainTo([&out](int&& v) { out.push_back(v); }, 2), 2u);
  EXPECT_EQ(q.DrainTo([&out](int&& v) { out.push_back(v); }, 2), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SpscQueueWrapTest, TryPopAndPeekAcrossIndexBoundary) {
  SpscQueue<std::string> q(2);
  q.SeedIndexesForTest(std::numeric_limits<size_t>::max());
  std::string a = "a", b = "b";
  EXPECT_TRUE(q.TryPush(a));  // lands at index SIZE_MAX
  EXPECT_TRUE(q.TryPush(b));  // lands at index 0 after wrap
  ASSERT_NE(q.Peek(), nullptr);
  EXPECT_EQ(*q.Peek(), "a");
  q.PopFront();
  std::string out;
  EXPECT_TRUE(q.TryPop(out));
  EXPECT_EQ(out, "b");
  EXPECT_TRUE(q.EmptyApprox());
}

TEST(SpscQueueWrapTest, TwoThreadStressAcrossIndexBoundary) {
  constexpr int64_t kItems = 200'000;
  SpscQueue<int64_t> q(64);
  q.SeedIndexesForTest(std::numeric_limits<size_t>::max() - kItems / 2);
  std::thread producer([&q]() {
    for (int64_t i = 0; i < kItems;) {
      int64_t v = i;
      if (q.TryPush(v)) ++i;
    }
  });
  int64_t expected = 0;
  while (expected < kItems) {
    int64_t out;
    if (q.TryPop(out)) {
      ASSERT_EQ(out, expected);  // strict FIFO across the wrap
      ++expected;
    }
  }
  producer.join();
}

TEST(SpscQueueTest, RvalueTryPushRestoresItemOnFailure) {
  SpscQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.TryPush(std::make_unique<int>(1)));
  EXPECT_TRUE(q.TryPush(std::make_unique<int>(2)));
  auto third = std::make_unique<int>(3);
  EXPECT_FALSE(q.TryPush(std::move(third)));
  // Failed rvalue push must leave the caller's object intact for retry.
  ASSERT_NE(third, nullptr);
  EXPECT_EQ(*third, 3);
  std::unique_ptr<int> out;
  EXPECT_TRUE(q.TryPop(out));
  EXPECT_TRUE(q.TryPush(std::move(third)));
  EXPECT_EQ(third, nullptr);  // success consumes the item
}

TEST(SpscQueueTest, SizeApproxNeverExceedsCapacityUnderConcurrency) {
  // The old implementation loaded head before tail, so a consumer advancing
  // tail between the loads made `head - tail` wrap to a huge size_t. Load
  // order plus clamping bounds it by capacity() always.
  constexpr int64_t kItems = 300'000;
  SpscQueue<int64_t> q(16);
  std::thread producer([&q]() {
    for (int64_t i = 0; i < kItems;) {
      int64_t v = i;
      if (q.TryPush(v)) ++i;
    }
  });
  std::thread observer([&q]() {
    for (int i = 0; i < 200'000; ++i) {
      size_t size = q.SizeApprox();
      ASSERT_LE(size, q.capacity());
    }
  });
  int64_t popped = 0;
  while (popped < kItems) {
    int64_t out;
    if (q.TryPop(out)) ++popped;
  }
  producer.join();
  observer.join();
}

#if JETSIM_DEBUG_CHECKS

using SpscQueueDeathTest = ::testing::Test;

TEST(SpscQueueDeathTest, PopFrontWithoutPeekAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ASSERT_DEATH(
      {
        SpscQueue<int> q(4);
        int v = 1;
        q.TryPush(v);
        // Misuse: PopFront without a preceding successful Peek — the
        // consumer's cached head was never refreshed.
        q.PopFront();
      },
      "PopFront without preceding Peek");
}

TEST(SpscQueueDeathTest, PopFrontOnEmptyQueueAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ASSERT_DEATH(
      {
        SpscQueue<int> q(4);
        int v = 1;
        q.TryPush(v);
        (void)q.Peek();
        q.PopFront();
        q.PopFront();  // queue is empty now
      },
      "PopFront");
}

#else

TEST(SpscQueueDeathTest, PopFrontMisuseRequiresDebugChecks) {
  GTEST_SKIP() << "JETSIM_DEBUG_CHECKS is off; misuse aborts are compiled out "
                  "(run the asan-ubsan preset)";
}

#endif  // JETSIM_DEBUG_CHECKS

}  // namespace
}  // namespace jet
