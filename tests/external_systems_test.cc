#include <chrono>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "core/dag.h"
#include "core/job.h"
#include "core/processors_basic.h"
#include "core/processors_external.h"
#include "imdg/grid.h"
#include "imdg/snapshot_store.h"

namespace jet::core {
namespace {

// ---------------------------------------------------------------------------
// AckingBroker unit tests
// ---------------------------------------------------------------------------

TEST(AckingBrokerTest, DeliverAckRedeliver) {
  AckingBroker<int> broker;
  broker.Publish(1, 10, 100);
  broker.Publish(2, 20, 200);

  auto r1 = broker.Poll();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->id, 1);
  auto r2 = broker.Poll();
  ASSERT_TRUE(r2.has_value());
  EXPECT_FALSE(broker.Poll().has_value());  // drained

  broker.Ack({1});
  EXPECT_EQ(broker.UnackedCount(), 1u);

  broker.RedeliverUnacked();
  auto again = broker.Poll();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->id, 2);  // only the unacked record comes back
  EXPECT_FALSE(broker.Poll().has_value());
}

TEST(AckingBrokerTest, AckedRecordsNeverRedelivered) {
  AckingBroker<int> broker;
  for (int i = 0; i < 10; ++i) broker.Publish(i, i, i);
  for (int i = 0; i < 10; ++i) (void)broker.Poll();
  broker.Ack({0, 1, 2, 3, 4});
  broker.RedeliverUnacked();
  std::set<int64_t> redelivered;
  while (auto r = broker.Poll()) redelivered.insert(r->id);
  EXPECT_EQ(redelivered, (std::set<int64_t>{5, 6, 7, 8, 9}));
}

// ---------------------------------------------------------------------------
// TransactionalCollector unit tests
// ---------------------------------------------------------------------------

TEST(TransactionalCollectorTest, PrepareThenCommitPublishes) {
  TransactionalCollector<int> collector;
  collector.Prepare(1, {10, 20});
  EXPECT_EQ(collector.VisibleCount(), 0u);  // withheld until commit
  collector.Commit(1);
  EXPECT_EQ(collector.Visible(), (std::vector<int>{10, 20}));
}

TEST(TransactionalCollectorTest, CommitIsIdempotent) {
  TransactionalCollector<int> collector;
  collector.Prepare(1, {10});
  collector.Commit(1);
  collector.Commit(1);
  collector.Prepare(1, {99});  // re-prepare of a committed txn: no-op
  collector.Commit(1);
  EXPECT_EQ(collector.Visible(), (std::vector<int>{10}));
}

TEST(TransactionalCollectorTest, AbortDropsPrepared) {
  TransactionalCollector<int> collector;
  collector.Prepare(2, {1, 2, 3});
  collector.Abort(2);
  collector.Commit(2);
  EXPECT_EQ(collector.VisibleCount(), 0u);
}

TEST(IdempotentStoreTest, RepeatedWritesHaveSameEffect) {
  IdempotentStore<int64_t> store;
  store.Put(7, 100);
  store.Put(7, 100);
  store.Put(7, 100);
  EXPECT_EQ(store.Size(), 1u);
  EXPECT_EQ(store.WriteCount(), 3);
  EXPECT_EQ(*store.Get(7), 100);
}

// ---------------------------------------------------------------------------
// End-to-end: exactly-once DELIVERY with acking source + transactional sink
// across a kill/restore cycle (§4.5).
// ---------------------------------------------------------------------------

struct EndToEndFixture {
  std::shared_ptr<AckingBroker<int64_t>> broker =
      std::make_shared<AckingBroker<int64_t>>();
  std::shared_ptr<TransactionalCollector<int64_t>> collector =
      std::make_shared<TransactionalCollector<int64_t>>();
  Dag dag;

  EndToEndFixture() {
    VertexId source = dag.AddVertex(
        "acking-source",
        [this](const ProcessorMeta&) {
          return std::make_unique<AcknowledgingSourceP<int64_t>>(
              broker, [](const int64_t& v) { return HashU64(static_cast<uint64_t>(v)); });
        },
        1);
    VertexId sink = dag.AddVertex(
        "txn-sink",
        [this](const ProcessorMeta&) {
          return std::make_unique<TransactionalSinkP<int64_t>>(collector);
        },
        1);
    dag.AddEdge(source, sink);
  }
};

TEST(EndToEndDeliveryTest, ExactlyOnceDeliveryWithoutFailure) {
  EndToEndFixture fx;
  constexpr int64_t kRecords = 5'000;
  for (int64_t i = 0; i < kRecords; ++i) fx.broker->Publish(i, i, i * 1000);

  imdg::DataGrid grid(1);
  ASSERT_TRUE(grid.AddMember(0).ok());
  imdg::SnapshotStore store(&grid);

  JobParams params;
  params.dag = &fx.dag;
  params.cooperative_threads = 2;
  params.config.guarantee = ProcessingGuarantee::kExactlyOnce;
  params.config.snapshot_interval = 30 * kNanosPerMilli;
  params.snapshot_store = &store;
  params.job_id = 21;

  auto job = Job::Create(params);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE((*job)->Start().ok());

  // Wait until every record is visible at the external system.
  for (int i = 0; i < 10'000 && fx.collector->VisibleCount() < kRecords; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fx.collector->VisibleCount(), static_cast<size_t>(kRecords));
  // All records eventually acked at the broker.
  for (int i = 0; i < 5'000 && fx.broker->UnackedCount() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fx.broker->UnackedCount(), 0u);

  (*job)->Cancel();
  (void)(*job)->Join();

  std::set<int64_t> unique;
  for (int64_t v : fx.collector->Visible()) unique.insert(v);
  EXPECT_EQ(unique.size(), static_cast<size_t>(kRecords));
}

TEST(EndToEndDeliveryTest, ExactlyOnceDeliverySurvivesKillAndRestore) {
  EndToEndFixture fx;
  constexpr int64_t kRecords = 50'000;
  // A live publisher keeps feeding the broker so the crash lands
  // mid-stream with unacknowledged records outstanding.
  std::thread publisher([&fx]() {
    for (int64_t i = 0; i < kRecords; ++i) {
      fx.broker->Publish(i, i, i * 1000);
      if (i % 200 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  imdg::DataGrid grid(1);
  ASSERT_TRUE(grid.AddMember(0).ok());
  imdg::SnapshotStore store(&grid);

  JobParams params;
  params.dag = &fx.dag;
  params.cooperative_threads = 2;
  params.config.guarantee = ProcessingGuarantee::kExactlyOnce;
  params.config.snapshot_interval = 20 * kNanosPerMilli;
  params.snapshot_store = &store;
  params.job_id = 22;

  // Run attempt 1, kill it after some output is already visible.
  auto job1 = Job::Create(params);
  ASSERT_TRUE(job1.ok());
  ASSERT_TRUE((*job1)->Start().ok());
  for (int i = 0; i < 10'000; ++i) {
    if ((*job1)->last_committed_snapshot() >= 2 && fx.collector->VisibleCount() > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE((*job1)->last_committed_snapshot(), 2);
  size_t visible_before_crash = fx.collector->VisibleCount();
  ASSERT_GT(visible_before_crash, 0u);
  ASSERT_LT(visible_before_crash, static_cast<size_t>(kRecords))
      << "crash happened too late to be interesting";
  int64_t restore_id = (*job1)->last_committed_snapshot();
  (*job1)->Cancel();
  (void)(*job1)->Join();
  job1->reset();
  publisher.join();

  // Attempt 2: restore from the last committed snapshot; the broker
  // re-sends unacked records, the source dedups, the sink re-commits.
  params.restore_snapshot_id = restore_id;
  auto job2 = Job::Create(params);
  ASSERT_TRUE(job2.ok()) << job2.status().ToString();
  ASSERT_TRUE((*job2)->Start().ok());
  for (int i = 0; i < 20'000 && fx.collector->VisibleCount() < kRecords; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  (*job2)->Cancel();
  (void)(*job2)->Join();

  // THE §4.5 guarantee: every record visible exactly once despite the
  // crash, the replay, and the re-commit.
  auto visible = fx.collector->Visible();
  std::set<int64_t> unique(visible.begin(), visible.end());
  EXPECT_EQ(visible.size(), static_cast<size_t>(kRecords)) << "duplicates delivered";
  EXPECT_EQ(unique.size(), static_cast<size_t>(kRecords)) << "records lost";
}

// ---------------------------------------------------------------------------
// Idempotent sink: duplicates after at-least-once recovery collapse.
// ---------------------------------------------------------------------------

TEST(IdempotentSinkTest, ReprocessingCollapses) {
  auto store = std::make_shared<IdempotentStore<int64_t>>();
  Dag dag;
  VertexId source = dag.AddVertex(
      "source",
      [](const ProcessorMeta&) -> std::unique_ptr<Processor> {
        GeneratorSourceP<int64_t>::Options opt;
        opt.events_per_second = 1e9;
        opt.duration = 5'000;
        opt.watermark_interval = 100;
        return std::make_unique<GeneratorSourceP<int64_t>>(
            [](int64_t seq) {
              // Each key written twice (seq and seq + 2500 share a key).
              return std::make_pair(seq % 2'500, HashU64(static_cast<uint64_t>(seq % 2'500)));
            },
            opt);
      },
      1);
  VertexId sink = dag.AddVertex(
      "idempotent-sink",
      [store](const ProcessorMeta&) {
        return std::make_unique<IdempotentSinkP<int64_t, int64_t>>(
            store, [](const int64_t& v) { return static_cast<uint64_t>(v); },
            [](const int64_t& v) { return v * 10; });
      },
      1);
  dag.AddEdge(source, sink);

  JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 2;
  auto job = Job::Create(params);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());

  EXPECT_EQ(store->Size(), 2'500u);      // distinct keys
  EXPECT_EQ(store->WriteCount(), 5'000);  // every event applied
  EXPECT_EQ(*store->Get(7), 70);
}

}  // namespace
}  // namespace jet::core
