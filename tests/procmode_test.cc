// Cross-process cluster battery: a ProcessCluster coordinator spawning real
// jet_member OS processes wired over Unix-domain sockets, including the
// kill -9 chaos test demanded by §4.4 — recovery from the last committed
// snapshot with exactly-once results.
//
// The member binary's path is injected at compile time (JETSIM_MEMBER_BIN)
// so the test runs from any build directory.

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "procmode/process_cluster.h"

namespace jet::procmode {
namespace {

#ifndef JETSIM_MEMBER_BIN
#error "JETSIM_MEMBER_BIN must point at the jet_member executable"
#endif

std::string MakeWorkDir(const char* tag) {
  // Unix-domain socket paths are limited to ~108 bytes; keep it short.
  std::string tmpl = std::string("/tmp/jetproc-") + tag + "-XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return tmpl;
}

void RemoveWorkDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

ProcessCluster::Options BaseOptions(const char* tag) {
  ProcessCluster::Options options;
  options.member_binary = JETSIM_MEMBER_BIN;
  options.work_dir = MakeWorkDir(tag);
  options.initial_members = 3;
  options.threads_per_member = 1;
  options.job_params.events_per_second = 20'000;
  options.job_params.duration = 600 * kNanosPerMilli;
  options.job_params.key_count = 16;
  options.job_params.window_size = 50 * kNanosPerMilli;
  options.job_params.watermark_interval = 5 * kNanosPerMilli;
  options.snapshot_interval = 50 * kNanosPerMilli;
  return options;
}

// The tentpole's baseline claim: a JetCluster-equivalent job runs as three
// real OS processes exchanging serialized frames over sockets, and the
// result is exactly the in-process result.
TEST(ProcMode, ThreeProcessWindowedJob) {
  auto options = BaseOptions("happy");
  {
    ProcessCluster cluster(options);
    ASSERT_TRUE(cluster.Start().ok());
    EXPECT_EQ(cluster.live_member_count(), 3);
    ASSERT_TRUE(cluster.SubmitWindowedJob().ok());
    ASSERT_TRUE(cluster.AwaitJobCompletion(120 * kNanosPerSecond).ok());
    EXPECT_EQ(cluster.attempts(), 1);
    EXPECT_TRUE(cluster.VerifyExactlyOnce().ok())
        << cluster.VerifyExactlyOnce().ToString();
    cluster.Shutdown();
  }
  RemoveWorkDir(options.work_dir);
}

// Snapshots commit while the job runs: state entries stream over the
// control sockets into the coordinator's store and the FIFO-ordered acks
// gate each commit.
TEST(ProcMode, SnapshotsCommitAcrossProcesses) {
  auto options = BaseOptions("snap");
  options.job_params.duration = 900 * kNanosPerMilli;
  {
    ProcessCluster cluster(options);
    ASSERT_TRUE(cluster.Start().ok());
    ASSERT_TRUE(cluster.SubmitWindowedJob().ok());
    Status committed = cluster.WaitForCommittedSnapshot(2, 60 * kNanosPerSecond);
    EXPECT_TRUE(committed.ok()) << committed.ToString();
    ASSERT_TRUE(cluster.AwaitJobCompletion(120 * kNanosPerSecond).ok());
    EXPECT_GE(cluster.last_committed_snapshot(), 2);
    EXPECT_TRUE(cluster.VerifyExactlyOnce().ok())
        << cluster.VerifyExactlyOnce().ToString();
    cluster.Shutdown();
  }
  RemoveWorkDir(options.work_dir);
}

// The chaos test: kill -9 one member mid-job. The coordinator must detect
// the death (control-socket EOF), stop the attempt on the survivors,
// respawn the dead member under its backoff policy, restore from the last
// committed snapshot at full DOP, and finish with exactly-once results —
// no lost windows, no conflicting duplicates, no permanent degradation.
TEST(ProcMode, Kill9MemberRecoversFromLastCommittedSnapshot) {
  auto options = BaseOptions("kill9");
  options.job_params.duration = 1500 * kNanosPerMilli;
  {
    ProcessCluster cluster(options);
    ASSERT_TRUE(cluster.Start().ok());
    ASSERT_TRUE(cluster.SubmitWindowedJob().ok());

    // Let at least one snapshot commit so there is real state to restore.
    Status committed = cluster.WaitForCommittedSnapshot(1, 60 * kNanosPerSecond);
    ASSERT_TRUE(committed.ok()) << committed.ToString();
    ASSERT_TRUE(cluster.KillMember(1).ok());

    Status done = cluster.AwaitJobCompletion(180 * kNanosPerSecond);
    ASSERT_TRUE(done.ok()) << done.ToString();
    EXPECT_GE(cluster.attempts(), 2);
    // Self-healing: the replacement process rejoined and the final attempt
    // ran at full parallelism again.
    EXPECT_EQ(cluster.live_member_count(), 3);
    EXPECT_GE(cluster.respawn_count(), 1);
    EXPECT_EQ(cluster.current_attempt_dop(), 3);
    Status verdict = cluster.VerifyExactlyOnce();
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();

    // The healing shows up in the diagnostics dump under both renderings.
    ProcessCluster::Diagnostics diag = cluster.DiagnosticsDump();
    EXPECT_NE(diag.prometheus.find("proc_respawns"), std::string::npos);
    EXPECT_NE(diag.json.find("proc.respawns"), std::string::npos);
    cluster.Shutdown();
  }
  RemoveWorkDir(options.work_dir);
}

// With respawn disabled the PR-7 degraded-mode behaviour is preserved: the
// survivors finish the job at reduced DOP and the cluster stays at two
// members. Operators can opt out of self-healing.
TEST(ProcMode, DegradedModeKill9RunsOnSurvivors) {
  auto options = BaseOptions("degraded");
  options.respawn.enabled = false;
  options.job_params.duration = 1500 * kNanosPerMilli;
  {
    ProcessCluster cluster(options);
    ASSERT_TRUE(cluster.Start().ok());
    ASSERT_TRUE(cluster.SubmitWindowedJob().ok());

    Status committed = cluster.WaitForCommittedSnapshot(1, 60 * kNanosPerSecond);
    ASSERT_TRUE(committed.ok()) << committed.ToString();
    ASSERT_TRUE(cluster.KillMember(1).ok());

    Status done = cluster.AwaitJobCompletion(180 * kNanosPerSecond);
    ASSERT_TRUE(done.ok()) << done.ToString();
    EXPECT_GE(cluster.attempts(), 2);
    EXPECT_EQ(cluster.live_member_count(), 2);
    EXPECT_EQ(cluster.respawn_count(), 0);
    Status verdict = cluster.VerifyExactlyOnce();
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
    cluster.Shutdown();
  }
  RemoveWorkDir(options.work_dir);
}

// A member that dies before it ever says Hello must fail Start() fast via
// the control-EOF / reap-scan path — not stall until bring_up_timeout.
// /bin/false exits immediately without touching the control socket.
TEST(ProcMode, MemberDeathDuringBringUpFailsFast) {
  auto options = BaseOptions("bringup");
  options.member_binary = "/bin/false";
  options.respawn.enabled = false;
  options.bring_up_timeout = 30 * kNanosPerSecond;
  {
    ProcessCluster cluster(options);
    const auto t0 = std::chrono::steady_clock::now();
    Status status = cluster.Start();
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.ToString().find("bring-up"), std::string::npos)
        << status.ToString();
    // Well under the 30 s bring-up timeout: the death itself is the signal.
    EXPECT_LT(elapsed, std::chrono::seconds(10));
    cluster.Shutdown();
  }
  RemoveWorkDir(options.work_dir);
}

}  // namespace
}  // namespace jet::procmode
