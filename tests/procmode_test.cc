// Cross-process cluster battery: a ProcessCluster coordinator spawning real
// jet_member OS processes wired over Unix-domain sockets, including the
// kill -9 chaos test demanded by §4.4 — recovery from the last committed
// snapshot with exactly-once results.
//
// The member binary's path is injected at compile time (JETSIM_MEMBER_BIN)
// so the test runs from any build directory.

#include <unistd.h>

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "procmode/process_cluster.h"

namespace jet::procmode {
namespace {

#ifndef JETSIM_MEMBER_BIN
#error "JETSIM_MEMBER_BIN must point at the jet_member executable"
#endif

std::string MakeWorkDir(const char* tag) {
  // Unix-domain socket paths are limited to ~108 bytes; keep it short.
  std::string tmpl = std::string("/tmp/jetproc-") + tag + "-XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return tmpl;
}

void RemoveWorkDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

ProcessCluster::Options BaseOptions(const char* tag) {
  ProcessCluster::Options options;
  options.member_binary = JETSIM_MEMBER_BIN;
  options.work_dir = MakeWorkDir(tag);
  options.initial_members = 3;
  options.threads_per_member = 1;
  options.job_params.events_per_second = 20'000;
  options.job_params.duration = 600 * kNanosPerMilli;
  options.job_params.key_count = 16;
  options.job_params.window_size = 50 * kNanosPerMilli;
  options.job_params.watermark_interval = 5 * kNanosPerMilli;
  options.snapshot_interval = 50 * kNanosPerMilli;
  return options;
}

// The tentpole's baseline claim: a JetCluster-equivalent job runs as three
// real OS processes exchanging serialized frames over sockets, and the
// result is exactly the in-process result.
TEST(ProcMode, ThreeProcessWindowedJob) {
  auto options = BaseOptions("happy");
  {
    ProcessCluster cluster(options);
    ASSERT_TRUE(cluster.Start().ok());
    EXPECT_EQ(cluster.live_member_count(), 3);
    ASSERT_TRUE(cluster.SubmitWindowedJob().ok());
    ASSERT_TRUE(cluster.AwaitJobCompletion(120 * kNanosPerSecond).ok());
    EXPECT_EQ(cluster.attempts(), 1);
    EXPECT_TRUE(cluster.VerifyExactlyOnce().ok())
        << cluster.VerifyExactlyOnce().ToString();
    cluster.Shutdown();
  }
  RemoveWorkDir(options.work_dir);
}

// Snapshots commit while the job runs: state entries stream over the
// control sockets into the coordinator's store and the FIFO-ordered acks
// gate each commit.
TEST(ProcMode, SnapshotsCommitAcrossProcesses) {
  auto options = BaseOptions("snap");
  options.job_params.duration = 900 * kNanosPerMilli;
  {
    ProcessCluster cluster(options);
    ASSERT_TRUE(cluster.Start().ok());
    ASSERT_TRUE(cluster.SubmitWindowedJob().ok());
    Status committed = cluster.WaitForCommittedSnapshot(2, 60 * kNanosPerSecond);
    EXPECT_TRUE(committed.ok()) << committed.ToString();
    ASSERT_TRUE(cluster.AwaitJobCompletion(120 * kNanosPerSecond).ok());
    EXPECT_GE(cluster.last_committed_snapshot(), 2);
    EXPECT_TRUE(cluster.VerifyExactlyOnce().ok())
        << cluster.VerifyExactlyOnce().ToString();
    cluster.Shutdown();
  }
  RemoveWorkDir(options.work_dir);
}

// The chaos test: kill -9 one member mid-job. The coordinator must detect
// the death (control-socket EOF), stop the attempt on the survivors,
// restore from the last committed snapshot and finish with exactly-once
// results — no lost windows, no conflicting duplicates.
TEST(ProcMode, Kill9MemberRecoversFromLastCommittedSnapshot) {
  auto options = BaseOptions("kill9");
  options.job_params.duration = 1500 * kNanosPerMilli;
  {
    ProcessCluster cluster(options);
    ASSERT_TRUE(cluster.Start().ok());
    ASSERT_TRUE(cluster.SubmitWindowedJob().ok());

    // Let at least one snapshot commit so there is real state to restore.
    Status committed = cluster.WaitForCommittedSnapshot(1, 60 * kNanosPerSecond);
    ASSERT_TRUE(committed.ok()) << committed.ToString();
    ASSERT_TRUE(cluster.KillMember(1).ok());

    Status done = cluster.AwaitJobCompletion(180 * kNanosPerSecond);
    ASSERT_TRUE(done.ok()) << done.ToString();
    EXPECT_GE(cluster.attempts(), 2);
    EXPECT_EQ(cluster.live_member_count(), 2);
    Status verdict = cluster.VerifyExactlyOnce();
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
    cluster.Shutdown();
  }
  RemoveWorkDir(options.work_dir);
}

}  // namespace
}  // namespace jet::procmode
