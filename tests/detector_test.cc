#include <chrono>
#include <map>
#include <thread>

#include <gtest/gtest.h>

#include "cluster/failure_detector.h"
#include "cluster/jet_cluster.h"
#include "core/processors_basic.h"
#include "core/processors_window.h"
#include "testkit/wait.h"

namespace jet::cluster {
namespace {

using testkit::HeldFalseFor;
using testkit::WaitUntil;

TEST(FailureDetectorTest, HealthyMembersNotSuspected) {
  net::Network network;
  std::atomic<int> failures{0};
  HeartbeatFailureDetector::Options options;
  options.heartbeat_interval = 10 * kNanosPerMilli;
  options.suspicion_timeout = 60 * kNanosPerMilli;
  HeartbeatFailureDetector detector(&network, options,
                                    [&failures](int32_t) { failures.fetch_add(1); });
  detector.AddMember(0);
  detector.AddMember(1);
  detector.Start();
  EXPECT_TRUE(HeldFalseFor([&failures]() { return failures.load() > 0; },
                           200 * kNanosPerMilli));
  detector.Stop();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(detector.FailedMembers().empty());
}

TEST(FailureDetectorTest, SilentMemberIsDeclaredFailedOnce) {
  net::Network network;
  std::vector<int32_t> failed;
  std::mutex mutex;
  HeartbeatFailureDetector::Options options;
  options.heartbeat_interval = 10 * kNanosPerMilli;
  options.suspicion_timeout = 50 * kNanosPerMilli;
  HeartbeatFailureDetector detector(&network, options, [&](int32_t member) {
    std::scoped_lock lock(mutex);
    failed.push_back(member);
  });
  detector.AddMember(0);
  detector.AddMember(1);
  detector.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  detector.StopHeartbeats(1);  // member 1 "crashes"
  auto failure_count = [&failed, &mutex]() {
    std::scoped_lock lock(mutex);
    return failed.size();
  };
  ASSERT_TRUE(WaitUntil([&failure_count]() { return failure_count() >= 1; },
                        5 * kNanosPerSecond));
  EXPECT_TRUE(HeldFalseFor([&failure_count]() { return failure_count() > 1; },
                           100 * kNanosPerMilli));  // no double-fire
  detector.Stop();
  std::scoped_lock lock(mutex);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], 1);
}

// Suspicion phase: a partitioned heartbeat link pushes a member into the
// suspected set; healing the link lets a fresh heartbeat refute the
// suspicion before the failure timeout fires (two-phase detection, like
// Hazelcast's phi-accrual detector).
TEST(FailureDetectorTest, LateHeartbeatRefutesSuspicion) {
  net::Network network;
  std::atomic<int> failures{0};
  HeartbeatFailureDetector::Options options;
  options.heartbeat_interval = 10 * kNanosPerMilli;
  options.suspect_after = 50 * kNanosPerMilli;
  options.suspicion_timeout = 5 * kNanosPerSecond;  // far away: suspicion only
  options.observer_node = 0;
  HeartbeatFailureDetector detector(&network, options,
                                    [&failures](int32_t) { failures.fetch_add(1); });
  detector.AddMember(1);
  detector.AddMember(2);
  detector.Start();

  // Starve member 1's heartbeats (its pump keeps running; the link eats
  // them) until the detector suspects it.
  network.Partition(1, 0);
  ASSERT_TRUE(WaitUntil(
      [&detector]() {
        auto suspected = detector.SuspectedMembers();
        return suspected.size() == 1 && suspected[0] == 1;
      },
      5 * kNanosPerSecond));
  EXPECT_TRUE(detector.FailedMembers().empty());

  // Heal: the next heartbeat through refutes the suspicion.
  network.Heal(1, 0);
  ASSERT_TRUE(WaitUntil([&detector]() { return detector.refutation_count() >= 1; },
                        5 * kNanosPerSecond));
  EXPECT_TRUE(detector.SuspectedMembers().empty());
  detector.Stop();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(detector.FailedMembers().empty());
}

// Two members crash at once: both are declared failed, each exactly once.
TEST(FailureDetectorTest, SimultaneousSuspicionOfTwoMembers) {
  net::Network network;
  std::vector<int32_t> failed;
  std::mutex mutex;
  HeartbeatFailureDetector::Options options;
  options.heartbeat_interval = 10 * kNanosPerMilli;
  options.suspicion_timeout = 50 * kNanosPerMilli;
  HeartbeatFailureDetector detector(&network, options, [&](int32_t member) {
    std::scoped_lock lock(mutex);
    failed.push_back(member);
  });
  detector.AddMember(0);
  detector.AddMember(1);
  detector.AddMember(2);
  detector.Start();
  detector.StopHeartbeats(1);
  detector.StopHeartbeats(2);
  auto failure_count = [&failed, &mutex]() {
    std::scoped_lock lock(mutex);
    return failed.size();
  };
  ASSERT_TRUE(WaitUntil([&failure_count]() { return failure_count() >= 2; },
                        5 * kNanosPerSecond));
  EXPECT_TRUE(HeldFalseFor([&failure_count]() { return failure_count() > 2; },
                           100 * kNanosPerMilli));  // each fired exactly once
  detector.Stop();
  std::scoped_lock lock(mutex);
  std::vector<int32_t> sorted = failed;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int32_t>{1, 2}));
}

// A sustained link partition is indistinguishable from a crash to a
// heartbeat detector: the partitioned member is declared failed even
// though its process (pump thread) never stopped. The un-partitioned
// member is unaffected.
TEST(FailureDetectorTest, SustainedPartitionIsDeclaredFailure) {
  net::Network network;
  std::vector<int32_t> failed;
  std::mutex mutex;
  HeartbeatFailureDetector::Options options;
  options.heartbeat_interval = 10 * kNanosPerMilli;
  options.suspicion_timeout = 60 * kNanosPerMilli;
  options.observer_node = 0;
  HeartbeatFailureDetector detector(&network, options, [&](int32_t member) {
    std::scoped_lock lock(mutex);
    failed.push_back(member);
  });
  detector.AddMember(1);
  detector.AddMember(2);
  detector.Start();
  int64_t dropped_before = network.dropped_count();
  network.Partition(1, 0);
  ASSERT_TRUE(WaitUntil(
      [&failed, &mutex]() {
        std::scoped_lock lock(mutex);
        return failed.size() == 1 && failed[0] == 1;
      },
      5 * kNanosPerSecond));
  EXPECT_GT(network.dropped_count(), dropped_before);  // heartbeats were eaten
  detector.Stop();
  std::scoped_lock lock(mutex);
  EXPECT_EQ(failed, (std::vector<int32_t>{1}));  // member 2 never declared
}

// Rejoin: re-registering a member that was declared failed (or whose
// heartbeats were stopped) resets its per-member state — the detector can
// declare it failed a second time instead of latching the first verdict
// forever.
TEST(FailureDetectorTest, RejoinedMemberCanFailAgain) {
  net::Network network;
  std::atomic<int> failures{0};
  HeartbeatFailureDetector::Options options;
  options.heartbeat_interval = 10 * kNanosPerMilli;
  options.suspicion_timeout = 50 * kNanosPerMilli;
  HeartbeatFailureDetector detector(&network, options,
                                    [&failures](int32_t) { failures.fetch_add(1); });
  detector.AddMember(0);
  detector.AddMember(1);
  detector.Start();
  detector.StopHeartbeats(1);
  ASSERT_TRUE(WaitUntil([&failures]() { return failures.load() == 1; },
                        5 * kNanosPerSecond));
  ASSERT_EQ(detector.FailedMembers(), (std::vector<int32_t>{1}));

  // The member restarts and rejoins: fresh heartbeats, clean slate.
  detector.AddMember(1);
  ASSERT_TRUE(WaitUntil([&detector]() { return detector.FailedMembers().empty(); },
                        5 * kNanosPerSecond));
  EXPECT_TRUE(HeldFalseFor([&failures]() { return failures.load() > 1; },
                           150 * kNanosPerMilli));  // healthy rejoin: no refire

  // It crashes again: the second death must fire a second callback.
  detector.StopHeartbeats(1);
  ASSERT_TRUE(WaitUntil([&failures]() { return failures.load() == 2; },
                        5 * kNanosPerSecond));
  detector.Stop();
  EXPECT_EQ(detector.FailedMembers(), (std::vector<int32_t>{1}));
}

// Full detection -> recovery loop: a member stops heartbeating; the
// detector fires; the cluster removes it; the exactly-once job recovers
// with exact results (§4.4 end to end, including the detection step).
TEST(FailureDetectorTest, DetectionDrivesClusterRecovery) {
  ClusterConfig config;
  config.initial_nodes = 3;
  config.threads_per_node = 1;
  JetCluster cluster(config);

  HeartbeatFailureDetector::Options options;
  options.heartbeat_interval = 20 * kNanosPerMilli;
  options.suspicion_timeout = 100 * kNanosPerMilli;
  HeartbeatFailureDetector detector(
      &cluster.network(), options,
      [&cluster](int32_t member) { (void)cluster.KillNode(member); });
  for (int32_t node : cluster.AliveNodes()) detector.AddMember(node);
  detector.Start();

  constexpr double kRate = 50'000;
  constexpr Nanos kDuration = 2 * kNanosPerSecond;
  const auto kExpected = static_cast<int64_t>(kRate * (kDuration / 1e9));

  struct Event {
    uint64_t key = 0;
  };
  core::Dag dag;
  auto collector =
      std::make_shared<core::SyncCollector<core::WindowResult<int64_t>>>();
  auto op = core::CountingAggregate<Event>();
  core::WindowDef window = core::WindowDef::Tumbling(50 * kNanosPerMilli);
  auto source = dag.AddVertex(
      "source",
      [kDuration](const core::ProcessorMeta&) -> std::unique_ptr<core::Processor> {
        core::GeneratorSourceP<Event>::Options opt;
        opt.events_per_second = kRate;
        opt.duration = kDuration;
        opt.watermark_interval = 5 * kNanosPerMilli;
        return std::make_unique<core::GeneratorSourceP<Event>>(
            [](int64_t seq) {
              Event e{static_cast<uint64_t>(seq % 16)};
              return std::make_pair(e, HashU64(e.key));
            },
            opt);
      },
      1);
  auto accumulate = dag.AddVertex(
      "accumulate",
      [op, window](const core::ProcessorMeta&) {
        return std::make_unique<core::AccumulateByFrameP<Event, int64_t, int64_t>>(
            op, [](const Event& e) { return e.key; }, window);
      },
      1);
  auto combine = dag.AddVertex(
      "combine",
      [op, window](const core::ProcessorMeta&) {
        return std::make_unique<core::CombineFramesP<Event, int64_t, int64_t>>(op,
                                                                               window);
      },
      1);
  auto sink = dag.AddVertex(
      "sink",
      [collector](const core::ProcessorMeta&) {
        return std::make_unique<core::CollectSinkP<core::WindowResult<int64_t>>>(
            collector);
      },
      1);
  dag.AddEdge(source, accumulate);
  auto& e = dag.AddEdge(accumulate, combine);
  e.routing = core::RoutingPolicy::kPartitioned;
  e.distributed = true;
  dag.AddEdge(combine, sink);

  core::JobConfig jc;
  jc.guarantee = core::ProcessingGuarantee::kExactlyOnce;
  jc.snapshot_interval = 100 * kNanosPerMilli;
  auto job = cluster.SubmitJob(&dag, jc, 5);
  ASSERT_TRUE(job.ok());

  ASSERT_TRUE(WaitUntil([&job]() { return (*job)->last_committed_snapshot() >= 2; },
                        3 * kNanosPerSecond));

  // The node's process "crashes": heartbeats cease; detection takes over.
  detector.StopHeartbeats(2);

  ASSERT_TRUE((*job)->Join().ok());
  detector.Stop();
  EXPECT_EQ(cluster.AliveNodes().size(), 2u);
  EXPECT_GE((*job)->attempts_started(), 2);

  std::map<std::pair<uint64_t, Nanos>, int64_t> distinct;
  for (const auto& r : collector->Snapshot()) {
    auto it = distinct.find({r.key, r.window_end});
    if (it == distinct.end()) {
      distinct[{r.key, r.window_end}] = r.value;
    } else {
      EXPECT_EQ(it->second, r.value);
    }
  }
  int64_t total = 0;
  for (const auto& [kw, v] : distinct) total += v;
  EXPECT_EQ(total, kExpected);
}

}  // namespace
}  // namespace jet::cluster
