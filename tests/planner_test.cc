#include <gtest/gtest.h>

#include "core/job.h"
#include "pipeline/pipeline.h"

namespace jet::pipeline {
namespace {

using core::GeneratorSourceP;

GeneratorSourceP<int64_t>::Options SmallInts(int64_t count) {
  GeneratorSourceP<int64_t>::Options opt;
  opt.events_per_second = 1e9;
  opt.duration = count;
  opt.watermark_interval = 1000;
  opt.start_time = 0;
  return opt;
}

GeneratorSourceP<int64_t>::GenFn Gen() {
  return [](int64_t seq) {
    return std::make_pair(seq, HashU64(static_cast<uint64_t>(seq)));
  };
}

// Fusion must stop at a branch point: a stage with two consumers keeps its
// own vertex so both branches see its output.
TEST(PlannerTest, FusionStopsAtBranch) {
  Pipeline p;
  auto base = p.ReadFrom<int64_t>("ints", Gen(), SmallInts(1000))
                  .Map<int64_t>("shared", [](const int64_t& v) { return v + 1; });
  auto counter_a =
      base.Map<int64_t>("branch-a", [](const int64_t& v) { return v * 2; })
          .WriteToCountSink("count-a");
  auto counter_b =
      base.Filter("branch-b", [](const int64_t& v) { return v % 2 == 0; })
          .WriteToCountSink("count-b");

  auto dag = p.ToDag();
  ASSERT_TRUE(dag.ok()) << dag.status().ToString();
  // source, shared, branch-a, branch-b, 2 sinks = 6 vertices ('shared' must
  // not fuse into either branch).
  EXPECT_EQ(dag->vertices().size(), 6u);

  static ManualClock clock(int64_t{1} << 60);
  core::JobParams params;
  params.dag = &*dag;
  params.cooperative_threads = 2;
  params.clock = &clock;
  auto job = core::Job::Create(params);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());
  EXPECT_EQ(counter_a->load(), 1000);
  // 'shared' adds 1, so evens of (v+1) are the odd v: 500.
  EXPECT_EQ(counter_b->load(), 500);
}

// Fusion must not cross a parallelism change.
TEST(PlannerTest, FusionRespectsParallelismBoundaries) {
  Pipeline p;
  auto stage = p.ReadFrom<int64_t>("ints", Gen(), SmallInts(10));
  // Explicit parallelism changes via WriteTo-style construction are not
  // exposed for stateless stages (they inherit -1), so verify instead that
  // a chain through an aggregate is never fused.
  stage.GroupingKey([](const int64_t& v) { return static_cast<uint64_t>(v); })
      .Window(core::WindowDef::Tumbling(1000))
      .Aggregate<int64_t, int64_t>("agg", core::CountingAggregate<int64_t>())
      .Map<core::WindowResult<int64_t>>("post",
                                        [](const core::WindowResult<int64_t>& r) {
                                          return r;
                                        })
      .WriteToCountSink("count");
  auto dag = p.ToDag();
  ASSERT_TRUE(dag.ok());
  // source + accumulate + combine + post + sink = 5.
  EXPECT_EQ(dag->vertices().size(), 5u);
}

// The isolated-edge upgrade only applies to equal-parallelism hops.
TEST(PlannerTest, IsolationRequiresEqualParallelism) {
  Pipeline p;
  p.ReadFrom<int64_t>("ints", Gen(), SmallInts(10), /*local_parallelism=*/2)
      .Map<int64_t>("map", [](const int64_t& v) { return v; })
      .WriteToCountSink("count", /*local_parallelism=*/1);
  auto dag = p.ToDag();
  ASSERT_TRUE(dag.ok());
  bool found_isolated = false;
  bool found_unicast = false;
  for (const auto& e : dag->edges()) {
    if (e.routing == core::RoutingPolicy::kIsolated) found_isolated = true;
    if (e.routing == core::RoutingPolicy::kUnicast) found_unicast = true;
  }
  // map keeps the source's default parallelism (-1), so source(2)->map(-1)
  // differ and map(-1)->sink(1) differ when the default is not 1/2; at
  // minimum the sink edge (parallelism 1) must stay unicast when the map
  // runs wider.
  EXPECT_TRUE(found_unicast || found_isolated);
}

// The planner rejects pipelines whose DAG would be invalid.
TEST(PlannerTest, InvalidGraphRejected) {
  StageGraph graph;
  StageNode orphan;
  orphan.kind = StageNode::Kind::kStateless;  // stateless with no transform
  orphan.name = "bad";
  orphan.inputs.push_back(StageNode::Input{-1, core::RoutingPolicy::kUnicast, false, 0});
  graph.AddNode(std::move(orphan));
  // Input node -1 is out of range; BuildDag must not crash. (It may throw
  // an error status or produce an invalid dag caught by Validate.)
  auto result = BuildDag(graph);
  EXPECT_FALSE(result.ok());
}

// Named vertices of fused chains concatenate their stage names, keeping
// metrics readable.
TEST(PlannerTest, FusedVertexNamesConcatenate) {
  Pipeline p;
  p.ReadFrom<int64_t>("ints", Gen(), SmallInts(10))
      .Map<int64_t>("alpha", [](const int64_t& v) { return v; })
      .Map<int64_t>("beta", [](const int64_t& v) { return v; })
      .WriteToCountSink("count");
  auto dag = p.ToDag();
  ASSERT_TRUE(dag.ok());
  bool found = false;
  for (const auto& v : dag->vertices()) {
    if (v.name == "alpha+beta") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace jet::pipeline
