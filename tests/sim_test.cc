#include <gtest/gtest.h>

#include "sim/cluster_sim.h"

namespace jet::sim {
namespace {

SimConfig BaseConfig() {
  SimConfig c;
  c.profile = ProfileForQuery(5);
  c.duration = 20 * kNanosPerSecond;
  c.warmup = 2 * kNanosPerSecond;
  c.window_size = 2 * kNanosPerSecond;  // shorter fill for short runs
  return c;
}

TEST(ClusterSimTest, DeterministicForSameSeed) {
  SimConfig c = BaseConfig();
  SimResult a = RunClusterSim(c);
  SimResult b = RunClusterSim(c);
  EXPECT_EQ(a.latency.ValueAtQuantile(0.9999), b.latency.ValueAtQuantile(0.9999));
  EXPECT_EQ(a.gc_pause_count, b.gc_pause_count);
}

TEST(ClusterSimTest, SeedChangesTail) {
  SimConfig a = BaseConfig();
  SimConfig b = BaseConfig();
  b.seed = a.seed + 99;
  SimResult ra = RunClusterSim(a);
  SimResult rb = RunClusterSim(b);
  // Same medians (deterministic load), different GC draws.
  EXPECT_NE(ra.gc_pause_count == rb.gc_pause_count &&
                ra.max_gc_pause == rb.max_gc_pause,
            true);
}

TEST(ClusterSimTest, LatencyGrowsWithLoad) {
  SimConfig low = BaseConfig();
  low.events_per_second = 0.25e6 * 12;
  SimConfig high = BaseConfig();
  high.events_per_second = 1.5e6 * 12;
  int64_t p50_low = RunClusterSim(low).latency.ValueAtQuantile(0.5);
  int64_t p50_high = RunClusterSim(high).latency.ValueAtQuantile(0.5);
  EXPECT_GT(p50_high, p50_low);
}

TEST(ClusterSimTest, OverloadSaturates) {
  SimConfig c = BaseConfig();
  c.events_per_second = 4e6 * 12;  // far beyond per-core capacity
  SimResult r = RunClusterSim(c);
  EXPECT_TRUE(r.saturated);
  EXPECT_LT(r.achieved_throughput, c.events_per_second);
}

TEST(ClusterSimTest, ScaleOutRestoresHeadroom) {
  // 20x the rate on 20x the nodes should not saturate (Fig 10's premise).
  SimConfig one = BaseConfig();
  one.events_per_second = 1e6;
  SimConfig twenty = BaseConfig();
  twenty.nodes = 20;
  twenty.events_per_second = 20e6;
  SimResult r1 = RunClusterSim(one);
  SimResult r20 = RunClusterSim(twenty);
  EXPECT_FALSE(r1.saturated);
  EXPECT_FALSE(r20.saturated);
  // Tail latency stays in the same order of magnitude (paper: <=17ms).
  EXPECT_LT(r20.latency.ValueAtQuantile(0.9999), 40 * kNanosPerMilli);
}

TEST(ClusterSimTest, GcPausesScaleWithAllocationRate) {
  SimConfig slow = BaseConfig();
  slow.events_per_second = 0.1e6;
  SimConfig fast = BaseConfig();
  fast.events_per_second = 12e6;
  EXPECT_LT(RunClusterSim(slow).gc_pause_count, RunClusterSim(fast).gc_pause_count);
}

TEST(ClusterSimTest, ExactlyOnceAddsTailKnee) {
  SimConfig off = BaseConfig();
  SimConfig on = BaseConfig();
  on.exactly_once = true;
  SimResult r_off = RunClusterSim(off);
  SimResult r_on = RunClusterSim(on);
  // Median barely moves, p99.99 explodes (Fig 13 vs Fig 7 contrast).
  EXPECT_LT(r_on.latency.ValueAtQuantile(0.5), 20 * kNanosPerMilli);
  EXPECT_GT(r_on.latency.ValueAtQuantile(0.9999),
            4 * r_off.latency.ValueAtQuantile(0.9999));
}

TEST(ClusterSimTest, MultiTenancyIncreasesLatency) {
  SimConfig single = BaseConfig();
  single.window_slide = 50 * kNanosPerMilli;
  SimConfig many = single;
  many.concurrent_jobs = 50;
  int64_t p9999_single = RunClusterSim(single).latency.ValueAtQuantile(0.9999);
  int64_t p9999_many = RunClusterSim(many).latency.ValueAtQuantile(0.9999);
  EXPECT_GT(p9999_many, 2 * p9999_single);
}

TEST(ClusterSimTest, StatelessQueriesAreFasterThanWindowed) {
  SimConfig q1 = BaseConfig();
  q1.profile = ProfileForQuery(1);
  SimConfig q5 = BaseConfig();
  int64_t p99_q1 = RunClusterSim(q1).latency.ValueAtQuantile(0.99);
  int64_t p99_q5 = RunClusterSim(q5).latency.ValueAtQuantile(0.99);
  EXPECT_LT(p99_q1, p99_q5);
}

TEST(ClusterSimTest, ProfilesExistForPaperQueries) {
  for (int query : {1, 2, 3, 4, 5, 6, 7, 8, 13}) {
    QueryProfile p = ProfileForQuery(query);
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.stage1_cost_ns, 0);
  }
}

TEST(GcModelTest, IntervalShrinksWithRate) {
  GcConfig config;
  GcModel slow(config, 1e5, 1);
  GcModel fast(config, 1e7, 1);
  EXPECT_GT(slow.mean_interval_ns(), fast.mean_interval_ns());
}

TEST(GcModelTest, PausesArePositiveAndBounded) {
  GcConfig config;
  GcModel model(config, 1e6, 7);
  for (int i = 0; i < 10'000; ++i) {
    Nanos pause = model.NextPause();
    EXPECT_GT(pause, 0);
    EXPECT_LT(pause, 500 * kNanosPerMilli);
  }
}

}  // namespace
}  // namespace jet::sim
