#include <atomic>
#include <map>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "cluster/jet_cluster.h"
#include "imdg/grid.h"
#include "imdg/imap.h"
#include "nexmark/queries.h"

namespace jet::imdg {
namespace {

// ---------------------------------------------------------------------------
// Observable maps (§4.2, powering the §6 CDC use cases)
// ---------------------------------------------------------------------------

TEST(ObservableMapTest, ListenerSeesEveryPut) {
  DataGrid grid(0);
  ASSERT_TRUE(grid.AddMember(0).ok());
  IMap<int64_t, std::string> map(&grid, "users");

  std::map<int64_t, std::string> observed;
  std::mutex mutex;
  map.AddListener([&](const int64_t& k, const std::string& v) {
    std::scoped_lock lock(mutex);
    observed[k] = v;
  });

  ASSERT_TRUE(map.Put(1, "a").ok());
  ASSERT_TRUE(map.Put(2, "b").ok());
  ASSERT_TRUE(map.Put(1, "a2").ok());

  std::scoped_lock lock(mutex);
  EXPECT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[1], "a2");
  EXPECT_EQ(observed[2], "b");
}

TEST(ObservableMapTest, ListenerScopedToMapName) {
  DataGrid grid(0);
  ASSERT_TRUE(grid.AddMember(0).ok());
  IMap<int64_t, int64_t> a(&grid, "a");
  IMap<int64_t, int64_t> b(&grid, "b");
  std::atomic<int> a_events{0};
  a.AddListener([&](const int64_t&, const int64_t&) { a_events.fetch_add(1); });
  ASSERT_TRUE(a.Put(1, 1).ok());
  ASSERT_TRUE(b.Put(1, 1).ok());
  EXPECT_EQ(a_events.load(), 1);
}

TEST(ObservableMapTest, RemovedListenerStopsFiring) {
  DataGrid grid(0);
  ASSERT_TRUE(grid.AddMember(0).ok());
  IMap<int64_t, int64_t> map(&grid, "m");
  std::atomic<int> events{0};
  int64_t id = map.AddListener([&](const int64_t&, const int64_t&) { events.fetch_add(1); });
  ASSERT_TRUE(map.Put(1, 1).ok());
  grid.RemoveEntryListener(id);
  ASSERT_TRUE(map.Put(2, 2).ok());
  EXPECT_EQ(events.load(), 1);
}

TEST(QueryableMapTest, PredicateQueriesFilter) {
  DataGrid grid(0);
  ASSERT_TRUE(grid.AddMember(0).ok());
  IMap<int64_t, int64_t> map(&grid, "scores");
  for (int64_t i = 0; i < 100; ++i) ASSERT_TRUE(map.Put(i, i * 10).ok());

  auto high = map.EntriesWhere(
      [](const int64_t&, const int64_t& value) { return value >= 900; });
  EXPECT_EQ(high.size(), 10u);
  for (const auto& [k, v] : high) EXPECT_GE(v, 900);
}

// ---------------------------------------------------------------------------
// NEXMark on the real multi-node cluster (integration)
// ---------------------------------------------------------------------------

TEST(NexmarkClusterTest, Q5RunsAcrossNodes) {
  cluster::ClusterConfig config;
  config.initial_nodes = 2;
  config.threads_per_node = 1;
  cluster::JetCluster jet_cluster(config);

  nexmark::QueryConfig qc;
  qc.events_per_second = 50'000;
  qc.duration = 400 * kNanosPerMilli;
  qc.window_size = 100 * kNanosPerMilli;
  qc.window_slide = 20 * kNanosPerMilli;
  qc.watermark_interval = 5 * kNanosPerMilli;
  auto query = nexmark::BuildQuery(5, qc);
  ASSERT_TRUE(query.ok());

  // Mark the keyed exchange distributed so state spreads across nodes.
  auto dag = (*query)->pipeline.ToDag();
  ASSERT_TRUE(dag.ok());
  for (size_t i = 0; i < dag->edges().size(); ++i) {
    auto& e = const_cast<core::Edge&>(dag->edges()[i]);
    if (e.routing == core::RoutingPolicy::kPartitioned) e.distributed = true;
  }

  auto job = jet_cluster.SubmitJob(&*dag, core::JobConfig{}, 1);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE((*job)->Join().ok());

  Histogram h = (*query)->MergedLatency();
  EXPECT_GT(h.count(), 0);
  // Metrics cover tasklets from both nodes plus network exchange tasklets.
  core::JobMetrics m = (*job)->Metrics();
  EXPECT_GT(m.tasklets.size(), 8u);
  bool has_sender = false, has_receiver = false;
  for (const auto& t : m.tasklets) {
    if (t.name.find("sender") != std::string::npos) has_sender = true;
    if (t.name.find("receiver") != std::string::npos) has_receiver = true;
  }
  EXPECT_TRUE(has_sender);
  EXPECT_TRUE(has_receiver);
}

}  // namespace
}  // namespace jet::imdg
