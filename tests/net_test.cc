#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/exchange.h"
#include "net/flow_control.h"
#include "net/network.h"
#include "testkit/wait.h"

namespace jet::net {
namespace {

using testkit::WaitUntil;

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

TEST(NetworkTest, DeliversMessages) {
  Network network(LinkModel{/*base=*/100'000, /*jitter=*/0});
  ChannelId ch = network.OpenChannel();
  std::atomic<int> delivered{0};
  for (int i = 0; i < 10; ++i) {
    network.Send(ch, [&delivered]() { delivered.fetch_add(1); });
  }
  EXPECT_TRUE(WaitUntil([&delivered]() { return delivered.load() >= 10; },
                        5 * kNanosPerSecond));
  EXPECT_EQ(delivered.load(), 10);
  EXPECT_EQ(network.delivered_count(), 10);
}

TEST(NetworkTest, FifoPerChannelDespiteJitter) {
  Network network(LinkModel{/*base=*/50'000, /*jitter=*/500'000});
  ChannelId ch = network.OpenChannel();
  std::vector<int> order;
  std::mutex mutex;
  constexpr int kN = 200;
  std::atomic<int> delivered{0};
  for (int i = 0; i < kN; ++i) {
    network.Send(ch, [i, &order, &mutex, &delivered]() {
      std::scoped_lock lock(mutex);
      order.push_back(i);
      delivered.fetch_add(1);
    });
  }
  ASSERT_TRUE(WaitUntil([&delivered]() { return delivered.load() >= kN; },
                        10 * kNanosPerSecond));
  ASSERT_EQ(order.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(NetworkTest, LatencyIsApplied) {
  Network network(LinkModel{/*base=*/20 * kNanosPerMilli, /*jitter=*/0});
  ChannelId ch = network.OpenChannel();
  WallClock clock;
  std::atomic<Nanos> delivered_at{0};
  Nanos sent_at = clock.Now();
  network.Send(ch, [&]() { delivered_at.store(clock.Now()); });
  ASSERT_TRUE(WaitUntil([&delivered_at]() { return delivered_at.load() != 0; },
                        5 * kNanosPerSecond));
  EXPECT_GE(delivered_at.load() - sent_at, 20 * kNanosPerMilli);
}

TEST(NetworkTest, ShutdownDropsUndelivered) {
  auto network = std::make_unique<Network>(LinkModel{10 * kNanosPerSecond, 0});
  ChannelId ch = network->OpenChannel();
  std::atomic<int> delivered{0};
  network->Send(ch, [&delivered]() { delivered.fetch_add(1); });
  network->Shutdown();
  EXPECT_EQ(delivered.load(), 0);
  // A message stranded by shutdown is not silently lost from the books: it
  // is counted as dropped, as is a send issued after shutdown.
  network->Send(ch, [&delivered]() { delivered.fetch_add(1); });
  EXPECT_EQ(delivered.load(), 0);
  EXPECT_EQ(network->sent_count(), 2);
  EXPECT_EQ(network->dropped_count(), 2);
  EXPECT_EQ(network->sent_count(),
            network->delivered_count() + network->dropped_count());
}

// ---------------------------------------------------------------------------
// Flow control (§3.3)
// ---------------------------------------------------------------------------

TEST(FlowControlTest, SenderBlockedUntilFirstAck) {
  SenderFlowState flow;
  EXPECT_FALSE(flow.MaySend(0));
  flow.OnAck(100);
  EXPECT_TRUE(flow.MaySend(0));
  EXPECT_TRUE(flow.MaySend(99));
  EXPECT_FALSE(flow.MaySend(100));
}

TEST(FlowControlTest, AcksAreMonotonic) {
  SenderFlowState flow;
  flow.OnAck(100);
  flow.OnAck(50);  // late/reordered ack must not shrink the window
  EXPECT_TRUE(flow.MaySend(99));
}

TEST(FlowControlTest, FirstAckIsImmediate) {
  ReceiveWindowController ctl;
  int64_t limit = ctl.MaybeAck(/*now=*/0, /*processed=*/0);
  EXPECT_GT(limit, 0);  // initial window granted immediately
}

TEST(FlowControlTest, AcksRespectInterval) {
  ReceiveWindowController::Options options;
  options.ack_interval = 100 * kNanosPerMilli;
  ReceiveWindowController ctl(options);
  EXPECT_GT(ctl.MaybeAck(0, 0), 0);
  EXPECT_EQ(ctl.MaybeAck(50 * kNanosPerMilli, 1000), -1);  // too soon
  EXPECT_GT(ctl.MaybeAck(100 * kNanosPerMilli, 1000), 0);
}

TEST(FlowControlTest, WindowAdaptsToThroughput) {
  // Paper: "In stable state the receive_window contains roughly 300
  // milliseconds' worth of data" (3x the 100ms ack period's throughput).
  ReceiveWindowController::Options options;
  options.ack_interval = 100 * kNanosPerMilli;
  options.window_multiplier = 3.0;
  options.max_window = 100'000'000;
  ReceiveWindowController ctl(options);

  Nanos now = 0;
  int64_t processed = 0;
  (void)ctl.MaybeAck(now, processed);
  // Steady 50k items per 100ms ack period.
  for (int i = 0; i < 20; ++i) {
    now += 100 * kNanosPerMilli;
    processed += 50'000;
    int64_t limit = ctl.MaybeAck(now, processed);
    ASSERT_GT(limit, 0);
  }
  EXPECT_NEAR(static_cast<double>(ctl.window()), 150'000, 1'500);  // 3 x 50k

  // Throughput drops 10x; the window shrinks with it.
  for (int i = 0; i < 20; ++i) {
    now += 100 * kNanosPerMilli;
    processed += 5'000;
    (void)ctl.MaybeAck(now, processed);
  }
  EXPECT_NEAR(static_cast<double>(ctl.window()), 15'000, 200);
}

TEST(FlowControlTest, WindowIsClamped) {
  ReceiveWindowController::Options options;
  options.min_window = 1000;
  options.max_window = 2000;
  ReceiveWindowController ctl(options);
  Nanos now = 0;
  int64_t processed = 0;
  (void)ctl.MaybeAck(now, processed);
  for (int i = 0; i < 5; ++i) {
    now += options.ack_interval;
    processed += 1'000'000;  // huge throughput
    (void)ctl.MaybeAck(now, processed);
  }
  EXPECT_EQ(ctl.window(), 2000);
  for (int i = 0; i < 5; ++i) {
    now += options.ack_interval;
    (void)ctl.MaybeAck(now, processed);  // zero throughput
  }
  EXPECT_EQ(ctl.window(), 1000);
}

// ---------------------------------------------------------------------------
// WireBuffer
// ---------------------------------------------------------------------------

TEST(WireBufferTest, PushDrainPreservesOrder) {
  WireBuffer buffer;
  std::vector<core::Item> batch;
  for (int i = 0; i < 5; ++i) batch.push_back(core::Item::Data<int>(i, i));
  buffer.Push(std::move(batch));
  EXPECT_EQ(buffer.Size(), 5u);

  std::deque<core::Item> out;
  EXPECT_EQ(buffer.Drain(&out, 3), 3u);
  EXPECT_EQ(buffer.Size(), 2u);
  EXPECT_EQ(out[0].payload.As<int>(), 0);
  EXPECT_EQ(out[2].payload.As<int>(), 2);
}

TEST(WireBufferTest, ConcurrentPushDrain) {
  WireBuffer buffer;
  constexpr int kBatches = 1000;
  std::thread producer([&buffer]() {
    for (int b = 0; b < kBatches; ++b) {
      std::vector<core::Item> batch;
      for (int i = 0; i < 4; ++i) batch.push_back(core::Item::Data<int>(b * 4 + i, 0));
      buffer.Push(std::move(batch));
    }
  });
  std::deque<core::Item> out;
  int64_t drained = 0;
  while (drained < kBatches * 4) {
    drained += static_cast<int64_t>(buffer.Drain(&out, 64));
  }
  producer.join();
  ASSERT_EQ(out.size(), static_cast<size_t>(kBatches * 4));
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].payload.As<int>(), static_cast<int>(i));  // per-producer FIFO
  }
}

// ---------------------------------------------------------------------------
// ExchangeRegistry
// ---------------------------------------------------------------------------

TEST(ExchangeRegistryTest, SameKeySameChannel) {
  Network network;
  ExchangeRegistry registry(&network);
  auto a = registry.GetOrCreate(1, 0, 2);
  auto b = registry.GetOrCreate(1, 0, 2);
  auto c = registry.GetOrCreate(1, 2, 0);  // reverse direction differs
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_NE(a->data_channel, a->ack_channel);
}

}  // namespace
}  // namespace jet::net
