#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serde.h"
#include "imdg/grid.h"
#include "imdg/snapshot_store.h"

namespace jet {
namespace {

// Random bytes fed to every reader method must error or succeed — never
// crash or read out of bounds (the snapshot-restore path consumes
// grid-stored bytes that could in principle be corrupted).
TEST(SerdeFuzzTest, RandomBytesNeverCrashReaders) {
  Rng rng(0xF0221);
  for (int round = 0; round < 2'000; ++round) {
    Bytes junk(rng.NextBounded(48));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.NextU64());

    BytesReader r(junk);
    uint8_t u8;
    uint32_t u32;
    uint64_t u64;
    int64_t i64;
    double d;
    std::string s;
    Bytes bytes;
    switch (rng.NextBounded(7)) {
      case 0: (void)r.ReadU8(&u8); break;
      case 1: (void)r.ReadU32(&u32); break;
      case 2: (void)r.ReadU64(&u64); break;
      case 3: (void)r.ReadVarI64(&i64); break;
      case 4: (void)r.ReadDouble(&d); break;
      case 5: (void)r.ReadString(&s); break;
      case 6: (void)r.ReadBytes(&bytes); break;
    }
    // Chain reads until error; must terminate.
    while (r.ReadVarU64(&u64).ok() && r.Remaining() > 0) {
    }
  }
  SUCCEED();
}

// Snapshot-store decode of corrupted entries returns errors, not crashes.
TEST(SerdeFuzzTest, SnapshotStoreToleratesCorruptEntries) {
  imdg::DataGrid grid(0);
  ASSERT_TRUE(grid.AddMember(0).ok());
  imdg::SnapshotStore store(&grid);
  Rng rng(0xBAD);
  // Write garbage directly under the snapshot map's name.
  for (int i = 0; i < 200; ++i) {
    Bytes key(1 + rng.NextBounded(12)), value(rng.NextBounded(12));
    for (auto& b : key) b = static_cast<uint8_t>(rng.NextU64());
    for (auto& b : value) b = static_cast<uint8_t>(rng.NextU64());
    (void)grid.Put(imdg::SnapshotStore::MapNameFor(9, 1), key, value);
  }
  for (imdg::PartitionId p = 0; p < grid.partition_count(); ++p) {
    // Must return (ok or error), never crash.
    (void)store.ReadEntries(9, 1, 0, p, [](imdg::SnapshotStateEntry) {});
  }
  SUCCEED();
}

// Replication sweep: with backup_count B, data survives B sequential
// member failures (re-replicating between failures).
class ReplicationSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReplicationSweep, SurvivesBackupCountFailures) {
  const int backups = GetParam();
  imdg::DataGrid grid(backups);
  const int members = backups + 3;
  for (int m = 0; m < members; ++m) ASSERT_TRUE(grid.AddMember(m).ok());

  BytesWriter kw;
  for (uint64_t k = 0; k < 400; ++k) {
    Bytes key(8);
    std::memcpy(key.data(), &k, 8);
    ASSERT_TRUE(grid.Put("m", key, Bytes{1, 2, 3}).ok());
  }
  for (int killed = 0; killed < backups; ++killed) {
    ASSERT_TRUE(grid.RemoveMember(killed).ok());
    for (uint64_t k = 0; k < 400; ++k) {
      Bytes key(8);
      std::memcpy(key.data(), &k, 8);
      auto got = grid.Get("m", key);
      ASSERT_TRUE(got.ok());
      ASSERT_TRUE(got->has_value()) << "lost key " << k << " after failure " << killed;
    }
  }
  EXPECT_TRUE(grid.CheckReplicaConsistency("m").ok());
}

INSTANTIATE_TEST_SUITE_P(BackupCounts, ReplicationSweep, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace jet
