#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/job.h"
#include "core/processors_window.h"
#include "pipeline/pipeline.h"

namespace jet::core {
namespace {

// Unit-level driver around SessionWindowP.
class SessionHarness {
 public:
  SessionHarness(Nanos gap)
      : outbox_(1, 4096),
        processor_(CountingAggregate<int64_t>(),
                   [](const int64_t& v) { return static_cast<uint64_t>(v); }, gap) {
    ctx_.outbox = &outbox_;
    static ManualClock clock(0);
    ctx_.clock = &clock;
    JET_CHECK(processor_.Init(&ctx_).ok());
  }

  void Event(int64_t key, Nanos ts) {
    Inbox inbox;
    inbox.Add(Item::Data<int64_t>(key, ts, HashU64(static_cast<uint64_t>(key))));
    processor_.Process(0, &inbox);
  }

  std::vector<WindowResult<int64_t>> Watermark(Nanos wm) {
    JET_CHECK(processor_.TryProcessWatermark(wm));
    std::vector<WindowResult<int64_t>> results;
    for (auto& item : outbox_.bucket(0)) {
      if (item.IsData()) results.push_back(item.payload.As<WindowResult<int64_t>>());
    }
    outbox_.bucket(0).clear();
    return results;
  }

  SessionWindowP<int64_t, int64_t, int64_t>& processor() { return processor_; }
  Outbox& outbox() { return outbox_; }

 private:
  Outbox outbox_;
  ProcessorContext ctx_;
  SessionWindowP<int64_t, int64_t, int64_t> processor_;
};

TEST(SessionWindowTest, EventsWithinGapFormOneSession) {
  SessionHarness h(/*gap=*/100);
  h.Event(1, 10);
  h.Event(1, 50);
  h.Event(1, 120);  // within 100 of 50 -> same session
  auto results = h.Watermark(500);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].value, 3);
  EXPECT_EQ(results[0].window_start, 10);
  EXPECT_EQ(results[0].window_end, 220);  // last event + gap
}

TEST(SessionWindowTest, GapSplitsSessions) {
  SessionHarness h(/*gap=*/100);
  h.Event(1, 10);
  h.Event(1, 300);  // 300 - 10 > gap: new session
  auto results = h.Watermark(1000);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].value + results[1].value, 2);
}

TEST(SessionWindowTest, KeysHaveIndependentSessions) {
  SessionHarness h(/*gap=*/100);
  h.Event(1, 10);
  h.Event(2, 20);
  h.Event(1, 50);
  auto results = h.Watermark(1000);
  ASSERT_EQ(results.size(), 2u);
  std::map<uint64_t, int64_t> by_key;
  for (const auto& r : results) by_key[r.key] = r.value;
  EXPECT_EQ(by_key[1], 2);
  EXPECT_EQ(by_key[2], 1);
}

TEST(SessionWindowTest, OutOfOrderEventMergesSessions) {
  SessionHarness h(/*gap=*/100);
  h.Event(1, 10);   // session [10, 110)
  h.Event(1, 180);  // separate session [180, 280)
  h.Event(1, 100);  // late event bridges both -> one merged session
  auto results = h.Watermark(1000);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].value, 3);
  EXPECT_EQ(results[0].window_start, 10);
  EXPECT_EQ(results[0].window_end, 280);
}

TEST(SessionWindowTest, OpenSessionsSurviveWatermarkBeforeClose) {
  SessionHarness h(/*gap=*/100);
  h.Event(1, 10);
  auto early = h.Watermark(50);  // session ends at 110 > wm
  EXPECT_TRUE(early.empty());
  EXPECT_EQ(h.processor().open_session_count(), 1u);
  h.Event(1, 90);  // extends to 190
  auto later = h.Watermark(200);
  ASSERT_EQ(later.size(), 1u);
  EXPECT_EQ(later[0].value, 2);
}

TEST(SessionWindowTest, SnapshotRoundTrip) {
  SessionHarness a(/*gap=*/100);
  a.Event(1, 10);
  a.Event(1, 60);
  a.Event(2, 500);
  ASSERT_TRUE(a.processor().SaveToSnapshot());

  // Transfer the state entries into a fresh processor (what the tasklet
  // does during restore) and verify identical emissions.
  SessionHarness b(/*gap=*/100);
  for (auto& entry : a.outbox().snapshot_bucket()) {
    ASSERT_TRUE(b.processor().RestoreFromSnapshot(entry).ok());
  }
  ASSERT_TRUE(b.processor().FinishSnapshotRestore());
  EXPECT_EQ(b.processor().open_session_count(), a.processor().open_session_count());

  auto resa = a.Watermark(10'000);
  auto resb = b.Watermark(10'000);
  ASSERT_EQ(resa.size(), resb.size());
  std::map<std::pair<uint64_t, Nanos>, int64_t> ma, mb;
  for (const auto& r : resa) ma[{r.key, r.window_end}] = r.value;
  for (const auto& r : resb) mb[{r.key, r.window_end}] = r.value;
  EXPECT_EQ(ma, mb);
}

// Pipeline-level end-to-end session aggregation.
TEST(SessionWindowTest, PipelineSessionAggregate) {
  static ManualClock clock(int64_t{1} << 60);
  constexpr int64_t kCount = 9'000;

  pipeline::Pipeline p;
  GeneratorSourceP<int64_t>::Options opt;
  opt.events_per_second = 1e6;  // 1 event per us
  opt.duration = kCount * 1000;
  opt.watermark_interval = 100 * 1000;
  opt.start_time = 0;
  // 3 keys; each key gets an event every 3us -> continuous activity, so a
  // gap of 1ms keeps one giant session per key until end-of-stream.
  auto results =
      p.ReadFrom<int64_t>(
           "ints",
           [](int64_t seq) {
             return std::make_pair(seq, HashU64(static_cast<uint64_t>(seq % 3)));
           },
           opt)
          .GroupingKey([](const int64_t& v) { return static_cast<uint64_t>(v % 3); })
          .SessionWindow(kNanosPerMilli)
          .Aggregate<int64_t, int64_t>("session-count", CountingAggregate<int64_t>())
          .CollectTo("sink");

  auto dag = p.ToDag();
  ASSERT_TRUE(dag.ok()) << dag.status().ToString();
  JobParams params;
  params.dag = &*dag;
  params.cooperative_threads = 2;
  params.clock = &clock;
  auto job = Job::Create(params);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());

  auto values = results->Snapshot();
  int64_t total = 0;
  for (const auto& r : values) total += r.value;
  EXPECT_EQ(total, kCount);
  EXPECT_EQ(values.size(), 3u);  // one continuous session per key
}

}  // namespace
}  // namespace jet::core
