#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/backoff.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/idle_strategy.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/spsc_queue.h"
#include "common/status.h"

namespace jet {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::vector<Status> statuses = {
      InvalidArgumentError("x"), NotFoundError("x"),    AlreadyExistsError("x"),
      FailedPreconditionError("x"), OutOfRangeError("x"), UnimplementedError("x"),
      InternalError("x"),        UnavailableError("x"), AbortedError("x"),
      ResourceExhaustedError("x"), CancelledError("x"), TimedOutError("x")};
  std::vector<StatusCode> codes;
  for (const auto& s : statuses) {
    EXPECT_FALSE(s.ok());
    codes.push_back(s.code());
  }
  std::sort(codes.begin(), codes.end());
  EXPECT_EQ(std::unique(codes.begin(), codes.end()), codes.end());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 0);
  EXPECT_EQ(h.Mean(), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1'000'000);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 1'000'000);
  // Bucket rounding error is bounded by ~1/64 relative.
  EXPECT_NEAR(static_cast<double>(h.ValueAtQuantile(0.5)), 1e6, 1e6 / 64 + 1);
}

TEST(HistogramTest, MergePreservesCountAndSum) {
  Histogram a, b;
  for (int i = 1; i <= 100; ++i) a.Record(i * 1000);
  for (int i = 1; i <= 50; ++i) b.Record(i * 2000);
  double mean_combined =
      (a.Mean() * static_cast<double>(a.count()) + b.Mean() * static_cast<double>(b.count())) /
      150.0;
  a.Merge(b);
  EXPECT_EQ(a.count(), 150);
  EXPECT_NEAR(a.Mean(), mean_combined, 1.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(123);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, ClampsToMaxValue) {
  Histogram h(/*max_value=*/1000);
  h.Record(50'000);
  EXPECT_LE(h.max(), 1000);
  EXPECT_EQ(h.count(), 1);
}

TEST(HistogramTest, PercentileCurveIsMonotonic) {
  Histogram h;
  Rng rng(7);
  for (int i = 0; i < 100'000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextBounded(10'000'000)));
  }
  auto curve = h.PercentileCurve();
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].second, curve[i].second);
    EXPECT_LE(curve[i - 1].first, curve[i].first);
  }
}

TEST(HistogramTest, QuantileZeroAndOneAreExactMinMax) {
  Histogram h;
  h.Record(1234);
  h.Record(999'999);
  h.Record(31);
  // q<=0 and q>=1 bypass bucket interpolation and return the exact
  // extremes, not bucket upper edges.
  EXPECT_EQ(h.ValueAtQuantile(0.0), 31);
  EXPECT_EQ(h.ValueAtQuantile(-0.5), 31);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 999'999);
  EXPECT_EQ(h.ValueAtQuantile(2.0), 999'999);
}

TEST(HistogramTest, SingleValueAllQuantiles) {
  Histogram h;
  h.Record(5'000);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.9999, 1.0}) {
    int64_t v = h.ValueAtQuantile(q);
    EXPECT_GE(v, 5'000) << "q=" << q;
    EXPECT_LE(v, 5'000 + 5'000 / 64 + 1) << "q=" << q;
  }
  // Exact at the endpoints.
  EXPECT_EQ(h.ValueAtQuantile(0.0), 5'000);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 5'000);
}

TEST(HistogramTest, TopBucketClampKeepsQuantilesBounded) {
  Histogram h(/*max_value=*/1000);
  for (int i = 0; i < 100; ++i) h.Record(1'000'000 + i);  // all clamp
  EXPECT_EQ(h.count(), 100);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_LE(h.ValueAtQuantile(q), 1000) << "q=" << q;
  }
  EXPECT_EQ(h.max(), 1000);
}

TEST(HistogramTest, MergeRejectsDifferentMaxValue) {
  Histogram a(/*max_value=*/1 << 20);
  Histogram b(/*max_value=*/1 << 30);
  a.Record(100);
  b.Record(200);
  // Different max_value => different bucket layouts; merging must refuse
  // rather than misattribute counts.
  EXPECT_FALSE(a.Merge(b));
  EXPECT_EQ(a.count(), 1);  // untouched
  EXPECT_EQ(a.max(), 100);

  Histogram c(/*max_value=*/1 << 20);
  c.Record(300);
  EXPECT_TRUE(a.Merge(c));
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.max(), 300);
}

TEST(HistogramTest, MergeEmptyIsNoop) {
  Histogram a, b;
  a.Record(42);
  EXPECT_TRUE(a.Merge(b));
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(b.count(), 0);
}

TEST(HistogramTest, BucketLayoutHelpersAreConsistent) {
  const int64_t max_value = int64_t{1} << 42;
  const int n = Histogram::BucketCountFor(max_value);
  EXPECT_GT(n, 0);
  // Every bucket's upper edge maps back into that bucket, and edges are
  // strictly increasing — the contract obs::AtomicHistogram relies on.
  int64_t prev_edge = -1;
  for (int i = 0; i < n; ++i) {
    int64_t edge = Histogram::BucketUpperEdgeOf(i);
    EXPECT_GT(edge, prev_edge) << "bucket " << i;
    if (edge <= max_value) {
      EXPECT_EQ(Histogram::BucketIndexOf(edge, max_value), i) << "bucket " << i;
    }
    prev_edge = edge;
  }
}

// Property sweep: histogram quantiles track exact quantiles within the
// bucket resolution for several distributions.
class HistogramAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramAccuracyTest, QuantilesMatchSortedData) {
  const int distribution = GetParam();
  Rng rng(42 + static_cast<uint64_t>(distribution));
  std::vector<int64_t> values;
  Histogram h;
  for (int i = 0; i < 200'000; ++i) {
    int64_t v = 0;
    switch (distribution) {
      case 0:  // uniform
        v = static_cast<int64_t>(rng.NextBounded(1'000'000));
        break;
      case 1:  // exponential
        v = static_cast<int64_t>(rng.NextExponential(50'000));
        break;
      case 2:  // bimodal (fast path + rare slow tail)
        v = rng.NextDouble() < 0.99
                ? static_cast<int64_t>(rng.NextBounded(10'000))
                : static_cast<int64_t>(5'000'000 + rng.NextBounded(1'000'000));
        break;
      case 3:  // constant
        v = 777;
        break;
      default:
        break;
    }
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99, 0.999, 0.9999}) {
    auto idx = static_cast<size_t>(q * static_cast<double>(values.size() - 1));
    double exact = static_cast<double>(values[idx]);
    double approx = static_cast<double>(h.ValueAtQuantile(q));
    // Within bucket resolution (~1/64 relative) plus a small absolute slack.
    EXPECT_NEAR(approx, exact, exact / 32 + 64)
        << "dist=" << distribution << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, HistogramAccuracyTest,
                         ::testing::Values(0, 1, 2, 3));

// ---------------------------------------------------------------------------
// SpscQueue
// ---------------------------------------------------------------------------

TEST(SpscQueueTest, PushPopSingleThread) {
  SpscQueue<int> q(8);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.TryPush(std::move(i)));
    int overflow = 99;
    EXPECT_FALSE(q.TryPush(overflow));  // full
    for (int i = 0; i < 8; ++i) {
      int out = -1;
      EXPECT_TRUE(q.TryPop(out));
      EXPECT_EQ(out, i);
    }
    int out;
    EXPECT_FALSE(q.TryPop(out));  // empty
  }
}

TEST(SpscQueueTest, CapacityRoundsToPowerOfTwo) {
  SpscQueue<int> q(100);
  EXPECT_EQ(q.capacity(), 128u);
  SpscQueue<int> q2(1);
  EXPECT_EQ(q2.capacity(), 2u);
}

TEST(SpscQueueTest, PeekAndPopFront) {
  SpscQueue<int> q(4);
  EXPECT_EQ(q.Peek(), nullptr);
  int v = 5;
  q.TryPush(v);
  ASSERT_NE(q.Peek(), nullptr);
  EXPECT_EQ(*q.Peek(), 5);
  q.PopFront();
  EXPECT_EQ(q.Peek(), nullptr);
}

TEST(SpscQueueTest, BatchOperations) {
  SpscQueue<int> q(16);
  std::vector<int> in = {1, 2, 3, 4, 5};
  EXPECT_EQ(q.PushBatch(in.begin(), in.end()), 5u);
  std::vector<int> out;
  EXPECT_EQ(q.DrainTo([&out](int&& v) { out.push_back(v); }, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.SizeApprox(), 2u);
}

TEST(SpscQueueTest, TwoThreadStressPreservesFifoAndCount) {
  constexpr int64_t kItems = 2'000'000;
  SpscQueue<int64_t> q(1024);
  std::thread producer([&q]() {
    for (int64_t i = 0; i < kItems;) {
      int64_t v = i;
      if (q.TryPush(v)) ++i;
    }
  });
  int64_t expected = 0;
  int64_t sum = 0;
  while (expected < kItems) {
    int64_t out;
    if (q.TryPop(out)) {
      ASSERT_EQ(out, expected);  // strict FIFO
      sum += out;
      ++expected;
    }
  }
  producer.join();
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
}

TEST(SpscQueueTest, MoveOnlyPayload) {
  SpscQueue<std::unique_ptr<int>> q(4);
  EXPECT_TRUE(q.TryPush(std::make_unique<int>(3)));
  std::unique_ptr<int> out;
  EXPECT_TRUE(q.TryPop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 3);
}

// ---------------------------------------------------------------------------
// Serde
// ---------------------------------------------------------------------------

TEST(SerdeTest, PrimitiveRoundTrip) {
  BytesWriter w;
  w.WriteU8(7);
  w.WriteU32(123456);
  w.WriteU64(0xDEADBEEFCAFEBABEULL);
  w.WriteI64(-42);
  w.WriteDouble(3.25);
  w.WriteString("hello");
  Bytes b = w.Take();

  BytesReader r(b);
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  std::string s;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadDouble(&d).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 123456u);
  EXPECT_EQ(u64, 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(d, 3.25);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, VarintRoundTripSweep) {
  std::vector<int64_t> values = {0,  1,  -1, 127,  128,  -128, 300, -300,
                                 1'000'000, -1'000'000};
  values.push_back(std::numeric_limits<int64_t>::max());
  values.push_back(std::numeric_limits<int64_t>::min());
  for (int64_t v : values) {
    BytesWriter w;
    w.WriteVarI64(v);
    BytesReader r(w.buffer());
    int64_t out = 0;
    ASSERT_TRUE(r.ReadVarI64(&out).ok());
    EXPECT_EQ(out, v);
  }
}

TEST(SerdeTest, VarintIsCompactForSmallValues) {
  BytesWriter w;
  w.WriteVarU64(5);
  EXPECT_EQ(w.size(), 1u);
  w.WriteVarU64(1ull << 60);
  EXPECT_GE(w.size(), 9u);
}

TEST(SerdeTest, UnderflowReturnsError) {
  Bytes b = {1, 2};
  BytesReader r(b);
  uint64_t v;
  EXPECT_FALSE(r.ReadU64(&v).ok());
}

TEST(SerdeTest, TruncatedStringReturnsError) {
  BytesWriter w;
  w.WriteVarU64(100);  // claims 100 bytes follow
  w.WriteU8('x');
  BytesReader r(w.buffer());
  std::string s;
  EXPECT_FALSE(r.ReadString(&s).ok());
}

TEST(SerdeTest, TruncatedVarintReturnsError) {
  Bytes b = {0x80};  // continuation bit set, no next byte
  BytesReader r(b);
  uint64_t v;
  EXPECT_FALSE(r.ReadVarU64(&v).ok());
}

TEST(SerdeTest, TenByteVarintBoundaryRoundTrips) {
  // UINT64_MAX encodes as exactly 10 bytes; the 10th byte carries bit 63.
  BytesWriter w;
  w.WriteVarU64(std::numeric_limits<uint64_t>::max());
  ASSERT_EQ(w.size(), 10u);
  BytesReader r(w.buffer());
  uint64_t v = 0;
  ASSERT_TRUE(r.ReadVarU64(&v).ok());
  EXPECT_EQ(v, std::numeric_limits<uint64_t>::max());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, OverflowingTenthByteReturnsInvalidArgument) {
  // 9 continuation bytes put the 10th byte at shift 63, where only bit 0
  // fits. A 10th byte with any of bits 1..6 set encodes a value >= 2^64;
  // the reader must reject it instead of silently dropping the high bits.
  for (uint8_t tenth : {uint8_t{0x02}, uint8_t{0x7E}, uint8_t{0x40}}) {
    Bytes b(9, 0x80);
    b.push_back(tenth);
    BytesReader r(b);
    uint64_t v = 0;
    Status s = r.ReadVarU64(&v);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << int(tenth);
  }
  // Bit 0 alone in the 10th byte is the top bit of a valid u64.
  Bytes ok(9, 0x80);
  ok.push_back(0x01);
  BytesReader r(ok);
  uint64_t v = 0;
  ASSERT_TRUE(r.ReadVarU64(&v).ok());
  EXPECT_EQ(v, 1ull << 63);
}

TEST(SerdeTest, OverlongVarintReturnsInvalidArgument) {
  // 10 continuation bytes push shift past 64: "varint too long".
  Bytes b(10, 0x80);
  b.push_back(0x00);
  BytesReader r(b);
  uint64_t v = 0;
  EXPECT_EQ(r.ReadVarU64(&v).code(), StatusCode::kInvalidArgument);
}

TEST(SerdeTest, Int64MinZigzagRoundTrip) {
  // INT64_MIN zigzags to UINT64_MAX — the exact 10-byte boundary case the
  // old reader mis-decoded by discarding the 10th byte's high bits.
  BytesWriter w;
  w.WriteVarI64(std::numeric_limits<int64_t>::min());
  ASSERT_EQ(w.size(), 10u);
  BytesReader r(w.buffer());
  int64_t v = 0;
  ASSERT_TRUE(r.ReadVarI64(&v).ok());
  EXPECT_EQ(v, std::numeric_limits<int64_t>::min());
}

// ---------------------------------------------------------------------------
// Rng / hashing
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanIsClose) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += rng.NextExponential(100.0);
  EXPECT_NEAR(sum / kN, 100.0, 2.0);
}

TEST(HashTest, AvalancheChangesManyBits) {
  int total_flips = 0;
  for (uint64_t x = 0; x < 1000; ++x) {
    uint64_t h1 = HashU64(x);
    uint64_t h2 = HashU64(x + 1);
    total_flips += __builtin_popcountll(h1 ^ h2);
  }
  // Average flips should be near 32 of 64 bits.
  EXPECT_GT(total_flips / 1000, 24);
  EXPECT_LT(total_flips / 1000, 40);
}

TEST(HashTest, BytesHashDiffersOnContent) {
  std::string a = "hello world";
  std::string b = "hello worle";
  EXPECT_NE(HashBytes(a.data(), a.size()), HashBytes(b.data(), b.size()));
}

// ---------------------------------------------------------------------------
// Clocks & idle strategy
// ---------------------------------------------------------------------------

TEST(ClockTest, WallClockAdvances) {
  WallClock clock;
  Nanos a = clock.Now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  Nanos b = clock.Now();
  EXPECT_GT(b, a);
}

TEST(ClockTest, ManualClockOnlyMovesWhenAsked) {
  ManualClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.SetTime(1000);
  EXPECT_EQ(clock.Now(), 1000);
}

TEST(IdleStrategyTest, EscalatesToParkingAndResets) {
  BackoffIdleStrategy idle(/*max_spins=*/2, /*max_yields=*/2,
                           /*min_park_nanos=*/100, /*max_park_nanos=*/1000);
  EXPECT_FALSE(idle.IsParking());
  for (int i = 0; i < 4; ++i) idle.Idle();
  EXPECT_TRUE(idle.IsParking());
  idle.Reset();
  EXPECT_FALSE(idle.IsParking());
}

// ---------------------------------------------------------------------------
// RetryBackoff (shared by JobSupervisor restarts, procmode respawns and
// socket connect retries)
// ---------------------------------------------------------------------------

TEST(RetryBackoffTest, LadderIsDeterministicPerSeedAndStream) {
  BackoffOptions options;
  options.retry_budget = 5;
  options.initial_backoff = 100;
  options.backoff_multiplier = 2.0;
  options.max_backoff = 1000;
  options.jitter_seed = 42;
  options.jitter_fraction = 0.25;

  RetryBackoff a(options, /*stream_id=*/7);
  RetryBackoff b(options, /*stream_id=*/7);
  RetryBackoff other_stream(options, /*stream_id=*/8);

  bool any_stream_difference = false;
  Nanos prev = 0;
  for (int i = 0; i < 5; ++i) {
    auto da = a.NextDelay();
    auto db = b.NextDelay();
    auto dc = other_stream.NextDelay();
    ASSERT_TRUE(da.has_value());
    ASSERT_TRUE(db.has_value());
    ASSERT_TRUE(dc.has_value());
    // Same seed + same stream -> identical delays; replayable timelines.
    EXPECT_EQ(*da, *db) << "attempt " << i;
    if (*da != *dc) any_stream_difference = true;
    // Base doubles up to the cap; jitter only ever adds (<= 25% here).
    EXPECT_GE(*da, prev == 0 ? options.initial_backoff : 0);
    EXPECT_LE(*da, options.max_backoff + options.max_backoff / 4);
    prev = *da;
  }
  // Different streams decorrelate: at least one delay differs.
  EXPECT_TRUE(any_stream_difference);
}

TEST(RetryBackoffTest, BudgetExhaustsAndChargeCountsAgainstIt) {
  BackoffOptions options;
  options.retry_budget = 3;
  options.initial_backoff = 10;
  options.max_backoff = 100;

  RetryBackoff backoff(options, 0);
  EXPECT_EQ(backoff.budget_remaining(), 3);
  EXPECT_TRUE(backoff.NextDelay().has_value());
  EXPECT_EQ(backoff.budget_remaining(), 2);
  // Charge consumes budget without producing a delay (storm coalescing).
  EXPECT_TRUE(backoff.Charge());
  EXPECT_EQ(backoff.budget_remaining(), 1);
  EXPECT_TRUE(backoff.NextDelay().has_value());
  EXPECT_EQ(backoff.budget_remaining(), 0);
  // Dry: both forms refuse.
  EXPECT_FALSE(backoff.NextDelay().has_value());
  EXPECT_FALSE(backoff.Charge());
  EXPECT_EQ(backoff.budget_remaining(), 0);
}

TEST(RetryBackoffTest, ResetLadderRestartsDelaysButNotBudget) {
  BackoffOptions options;
  options.retry_budget = 100;
  options.initial_backoff = 100;
  options.backoff_multiplier = 2.0;
  options.max_backoff = 100'000;
  options.jitter_fraction = 0.0;  // exact ladder values

  RetryBackoff backoff(options, 0);
  EXPECT_EQ(*backoff.NextDelay(), 100);
  EXPECT_EQ(*backoff.NextDelay(), 200);
  EXPECT_EQ(*backoff.NextDelay(), 400);
  EXPECT_EQ(backoff.consecutive_failures(), 3);

  backoff.ResetLadder();  // stability window elapsed
  EXPECT_EQ(backoff.consecutive_failures(), 0);
  EXPECT_EQ(*backoff.NextDelay(), 100);   // ladder restarted
  EXPECT_EQ(backoff.budget_remaining(), 100 - 4);  // budget did not refill
}

TEST(RetryBackoffTest, DelayNeverExceedsJitteredCap) {
  BackoffOptions options;
  options.retry_budget = 50;
  options.initial_backoff = 10;
  options.backoff_multiplier = 3.0;
  options.max_backoff = 500;
  options.jitter_fraction = 0.5;

  RetryBackoff backoff(options, 3);
  for (int i = 0; i < 50; ++i) {
    auto delay = backoff.NextDelay();
    ASSERT_TRUE(delay.has_value());
    EXPECT_LE(*delay, options.max_backoff + options.max_backoff / 2);
    EXPECT_GE(*delay, options.initial_backoff);
  }
  EXPECT_FALSE(backoff.NextDelay().has_value());
}

}  // namespace
}  // namespace jet
