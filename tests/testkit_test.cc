#include <atomic>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "net/network.h"
#include "testkit/chaos.h"
#include "testkit/wait.h"

namespace jet::testkit {
namespace {

using net::ChannelId;
using net::FaultPlan;
using net::LinkModel;
using net::Network;

constexpr LinkModel kFastLink{/*base_latency=*/50 * kNanosPerMicro, /*jitter=*/0};

// ---------------------------------------------------------------------------
// WaitUntil
// ---------------------------------------------------------------------------

TEST(WaitTest, ReturnsAsSoonAsPredicateHolds) {
  std::atomic<bool> flag{false};
  std::thread setter([&flag]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    flag.store(true);
  });
  WallClock clock;
  Nanos t0 = clock.Now();
  EXPECT_TRUE(WaitUntil([&flag]() { return flag.load(); }, 5 * kNanosPerSecond));
  EXPECT_LT(clock.Now() - t0, kNanosPerSecond);  // far below the timeout
  setter.join();
}

TEST(WaitTest, TimesOutWhenPredicateNeverHolds) {
  EXPECT_FALSE(WaitUntil([]() { return false; }, 20 * kNanosPerMilli));
  EXPECT_TRUE(HeldFalseFor([]() { return false; }, 20 * kNanosPerMilli));
}

// ---------------------------------------------------------------------------
// Network fault plans & accounting
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, BlockedLinkDropsEverything) {
  Network network(kFastLink);
  ChannelId ab = network.OpenChannel(/*from=*/0, /*to=*/1);
  network.Partition(0, 1);
  std::atomic<int> delivered{0};
  for (int i = 0; i < 10; ++i) {
    network.Send(ab, [&delivered]() { delivered.fetch_add(1); });
  }
  EXPECT_EQ(network.dropped_count(), 10);
  EXPECT_TRUE(HeldFalseFor([&delivered]() { return delivered.load() > 0; },
                           20 * kNanosPerMilli));
}

TEST(FaultPlanTest, PartitionBlocksBothDirectionsAndHealRestores) {
  Network network(kFastLink);
  ChannelId ab = network.OpenChannel(0, 1);
  ChannelId ba = network.OpenChannel(1, 0);
  network.Partition(0, 1);
  EXPECT_TRUE(network.IsBlocked(0, 1));
  EXPECT_TRUE(network.IsBlocked(1, 0));
  std::atomic<int> delivered{0};
  network.Send(ab, [&delivered]() { delivered.fetch_add(1); });
  network.Send(ba, [&delivered]() { delivered.fetch_add(1); });
  EXPECT_EQ(network.dropped_count(), 2);

  network.Heal(0, 1);
  EXPECT_FALSE(network.IsBlocked(0, 1));
  network.Send(ab, [&delivered]() { delivered.fetch_add(1); });
  network.Send(ba, [&delivered]() { delivered.fetch_add(1); });
  EXPECT_TRUE(WaitUntil([&delivered]() { return delivered.load() == 2; },
                        2 * kNanosPerSecond));
}

TEST(FaultPlanTest, OneWayFaultLeavesReverseDirectionAlone) {
  Network network(kFastLink);
  ChannelId ab = network.OpenChannel(0, 1);
  ChannelId ba = network.OpenChannel(1, 0);
  FaultPlan plan;
  plan.blocked = true;
  network.SetLinkFault(0, 1, plan);
  std::atomic<int> forward{0};
  std::atomic<int> reverse{0};
  network.Send(ab, [&forward]() { forward.fetch_add(1); });
  network.Send(ba, [&reverse]() { reverse.fetch_add(1); });
  EXPECT_TRUE(WaitUntil([&reverse]() { return reverse.load() == 1; },
                        2 * kNanosPerSecond));
  EXPECT_EQ(forward.load(), 0);
  EXPECT_EQ(network.dropped_count(), 1);
}

TEST(FaultPlanTest, UntaggedChannelsAreImmuneToLinkFaults) {
  Network network(kFastLink);
  ChannelId untagged = network.OpenChannel();
  network.Partition(0, 1);
  std::atomic<int> delivered{0};
  network.Send(untagged, [&delivered]() { delivered.fetch_add(1); });
  EXPECT_TRUE(WaitUntil([&delivered]() { return delivered.load() == 1; },
                        2 * kNanosPerSecond));
  EXPECT_EQ(network.dropped_count(), 0);
}

TEST(FaultPlanTest, DropProbabilityIsSeedDeterministic) {
  auto run = [](uint64_t seed) {
    Network network(kFastLink, seed);
    ChannelId ch = network.OpenChannel(0, 1);
    FaultPlan plan;
    plan.drop_probability = 0.5;
    network.SetLinkFault(0, 1, plan);
    for (int i = 0; i < 200; ++i) {
      network.Send(ch, []() {});
    }
    return network.dropped_count();
  };
  int64_t first = run(7);
  EXPECT_EQ(first, run(7));  // same seed, same send sequence => same drops
  EXPECT_GT(first, 50);      // ~100 expected
  EXPECT_LT(first, 150);
  EXPECT_NE(first, run(8));  // different seed diverges (overwhelmingly likely)
}

TEST(FaultPlanTest, ExtraLatencyDelaysDelivery) {
  Network network(kFastLink);
  ChannelId ch = network.OpenChannel(0, 1);
  FaultPlan plan;
  plan.extra_latency = 30 * kNanosPerMilli;
  network.SetLinkFault(0, 1, plan);
  WallClock clock;
  std::atomic<Nanos> delivered_at{0};
  Nanos sent_at = clock.Now();
  network.Send(ch, [&]() { delivered_at.store(clock.Now()); });
  ASSERT_TRUE(
      WaitUntil([&delivered_at]() { return delivered_at.load() != 0; },
                2 * kNanosPerSecond));
  EXPECT_GE(delivered_at.load() - sent_at, 30 * kNanosPerMilli);
}

TEST(FaultPlanTest, AccountingClosesAfterShutdown) {
  auto network = std::make_unique<Network>(kFastLink);
  ChannelId good = network->OpenChannel(0, 1);
  ChannelId bad = network->OpenChannel(1, 2);
  network->Partition(1, 2);
  std::atomic<int> delivered{0};
  for (int i = 0; i < 20; ++i) {
    network->Send(good, [&delivered]() { delivered.fetch_add(1); });
    network->Send(bad, [&delivered]() { delivered.fetch_add(1); });
  }
  // Queue one far-future message that shutdown will strand.
  network->set_link(LinkModel{10 * kNanosPerSecond, 0});
  network->Send(good, [&delivered]() { delivered.fetch_add(1); });
  ASSERT_TRUE(WaitUntil([&delivered]() { return delivered.load() >= 20; },
                        5 * kNanosPerSecond));
  network->Shutdown();
  // Send after shutdown: counted, dropped, never delivered.
  network->Send(good, [&delivered]() { delivered.fetch_add(1); });
  EXPECT_EQ(network->sent_count(), 42);
  EXPECT_EQ(network->sent_count(),
            network->delivered_count() + network->dropped_count());
  EXPECT_EQ(network->delivered_count(), 20);
}

// ---------------------------------------------------------------------------
// Timeline generator
// ---------------------------------------------------------------------------

TEST(TimelineTest, SameSeedSameTimeline) {
  ChaosTimelineOptions options;
  options.events = 6;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    auto a = GenerateTimeline(seed, options);
    auto b = GenerateTimeline(seed, options);
    ASSERT_EQ(TimelineToString(a), TimelineToString(b)) << "seed " << seed;
    ASSERT_FALSE(a.empty()) << "seed " << seed;
  }
  EXPECT_NE(TimelineToString(GenerateTimeline(1, options)),
            TimelineToString(GenerateTimeline(2, options)));
}

TEST(TimelineTest, GeneratedTimelinesAreValid) {
  ChaosTimelineOptions options;
  options.events = 8;
  options.initial_nodes = 3;
  options.min_alive = 2;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    auto timeline = GenerateTimeline(seed, options);
    std::set<int32_t> alive = {0, 1, 2};
    int32_t next_id = 3;
    int open_faults = 0;
    Nanos prev_at = 0;
    for (const auto& e : timeline) {
      ASSERT_GE(e.at, prev_at) << "seed " << seed << ": " << TimelineToString(timeline);
      prev_at = e.at;
      switch (e.type) {
        case ChaosEventType::kKillNode:
          ASSERT_TRUE(alive.count(e.a)) << "seed " << seed << " kills dead node";
          alive.erase(e.a);
          ASSERT_GE(static_cast<int32_t>(alive.size()), options.min_alive)
              << "seed " << seed << " drops below min_alive";
          break;
        case ChaosEventType::kAddNode:
          ASSERT_EQ(e.a, next_id) << "seed " << seed << " join id mismatch";
          alive.insert(next_id++);
          break;
        case ChaosEventType::kPartition:
        case ChaosEventType::kDelaySpike:
          ASSERT_NE(e.a, e.b);
          ++open_faults;
          ASSERT_LE(open_faults, 1) << "seed " << seed << " overlapping link faults";
          break;
        case ChaosEventType::kHeal:
        case ChaosEventType::kClearLink:
          --open_faults;
          break;
        case ChaosEventType::kStallWorker:
          ASSERT_GT(e.duration, 0);
          break;
      }
    }
    ASSERT_EQ(open_faults, 0)
        << "seed " << seed << " leaves a fault open: " << TimelineToString(timeline);
  }
}

}  // namespace
}  // namespace jet::testkit
