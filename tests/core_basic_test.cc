#include <atomic>
#include <memory>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "core/dag.h"
#include "core/job.h"
#include "core/processors_basic.h"

namespace jet::core {
namespace {

// Builds a source vertex emitting the integers [0, n) as fast as possible
// (event time = sequence * 1us), completing afterwards.
VertexId AddIntSource(Dag* dag, int64_t n, int32_t parallelism = 1) {
  return dag->AddVertex(
      "source",
      [n](const ProcessorMeta&) -> std::unique_ptr<Processor> {
        GeneratorSourceP<int64_t>::Options opt;
        opt.events_per_second = 1e9;  // 1 event per ns: effectively "as fast as possible"
        opt.duration = n;             // n events at 1/ns
        opt.watermark_interval = 1;
        return std::make_unique<GeneratorSourceP<int64_t>>(
            [](int64_t seq) { return std::make_pair(seq, HashU64(static_cast<uint64_t>(seq))); },
            opt);
      },
      parallelism);
}

TEST(DagTest, ValidateRejectsEmptyDag) {
  Dag dag;
  EXPECT_FALSE(dag.Validate().ok());
}

TEST(DagTest, ValidateRejectsCycle) {
  Dag dag;
  auto supplier = [](const ProcessorMeta&) -> std::unique_ptr<Processor> {
    return MakeFilterP<int64_t>([](const int64_t&) { return true; });
  };
  VertexId a = dag.AddVertex("a", supplier, 1);
  VertexId b = dag.AddVertex("b", supplier, 1);
  dag.AddEdge(a, b);
  dag.AddEdge(b, a);
  EXPECT_FALSE(dag.Validate().ok());
}

TEST(DagTest, ValidateRejectsSelfLoop) {
  Dag dag;
  auto supplier = [](const ProcessorMeta&) -> std::unique_ptr<Processor> {
    return MakeFilterP<int64_t>([](const int64_t&) { return true; });
  };
  VertexId a = dag.AddVertex("a", supplier, 1);
  dag.AddEdge(a, a);
  EXPECT_FALSE(dag.Validate().ok());
}

TEST(DagTest, ValidateRejectsIsolatedEdgeWithMismatchedParallelism) {
  Dag dag;
  auto supplier = [](const ProcessorMeta&) -> std::unique_ptr<Processor> {
    return MakeFilterP<int64_t>([](const int64_t&) { return true; });
  };
  VertexId a = dag.AddVertex("a", supplier, 2);
  VertexId b = dag.AddVertex("b", supplier, 3);
  dag.AddEdge(a, b).routing = RoutingPolicy::kIsolated;
  EXPECT_FALSE(dag.Validate().ok());
}

TEST(DagTest, TopologicalOrderRespectsEdges) {
  Dag dag;
  auto supplier = [](const ProcessorMeta&) -> std::unique_ptr<Processor> {
    return MakeFilterP<int64_t>([](const int64_t&) { return true; });
  };
  VertexId a = dag.AddVertex("a", supplier, 1);
  VertexId b = dag.AddVertex("b", supplier, 1);
  VertexId c = dag.AddVertex("c", supplier, 1);
  dag.AddEdge(a, b);
  dag.AddEdge(b, c);
  auto order = dag.TopologicalOrder();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], a);
  EXPECT_EQ(order[1], b);
  EXPECT_EQ(order[2], c);
}

// End-to-end: source -> collect sink; every emitted integer arrives once.
TEST(ExecutionTest, SourceToSinkDeliversEverything) {
  constexpr int64_t kCount = 10'000;
  Dag dag;
  VertexId source = AddIntSource(&dag, kCount);
  auto collector = std::make_shared<SyncCollector<int64_t>>();
  VertexId sink = dag.AddVertex(
      "sink",
      [collector](const ProcessorMeta&) {
        return std::make_unique<CollectSinkP<int64_t>>(collector);
      },
      1);
  dag.AddEdge(source, sink);

  JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 2;
  auto job = Job::Create(params);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());

  auto values = collector->Snapshot();
  ASSERT_EQ(values.size(), static_cast<size_t>(kCount));
  std::set<int64_t> unique(values.begin(), values.end());
  EXPECT_EQ(unique.size(), static_cast<size_t>(kCount));
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), kCount - 1);
}

// Map transform applies to every element.
TEST(ExecutionTest, MapTransformsEveryItem) {
  constexpr int64_t kCount = 5'000;
  Dag dag;
  VertexId source = AddIntSource(&dag, kCount);
  VertexId map = dag.AddVertex(
      "map",
      [](const ProcessorMeta&) {
        return MakeMapP<int64_t, int64_t>([](const int64_t& v) { return v * 2; });
      },
      2);
  auto collector = std::make_shared<SyncCollector<int64_t>>();
  VertexId sink = dag.AddVertex(
      "sink",
      [collector](const ProcessorMeta&) {
        return std::make_unique<CollectSinkP<int64_t>>(collector);
      },
      1);
  dag.AddEdge(source, map);
  dag.AddEdge(map, sink);

  JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 2;
  auto job = Job::Create(params);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());

  auto values = collector->Snapshot();
  ASSERT_EQ(values.size(), static_cast<size_t>(kCount));
  int64_t sum = std::accumulate(values.begin(), values.end(), int64_t{0});
  EXPECT_EQ(sum, kCount * (kCount - 1));  // 2 * sum(0..n-1)
}

// Filter keeps only matching elements.
TEST(ExecutionTest, FilterDropsNonMatching) {
  constexpr int64_t kCount = 4'000;
  Dag dag;
  VertexId source = AddIntSource(&dag, kCount);
  VertexId filter = dag.AddVertex(
      "filter",
      [](const ProcessorMeta&) {
        return MakeFilterP<int64_t>([](const int64_t& v) { return v % 4 == 0; });
      },
      2);
  auto counter = std::make_shared<std::atomic<int64_t>>(0);
  VertexId sink = dag.AddVertex(
      "sink",
      [counter](const ProcessorMeta&) {
        return std::make_unique<CountSinkP<int64_t>>(counter);
      },
      1);
  dag.AddEdge(source, filter);
  dag.AddEdge(filter, sink);

  JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 2;
  auto job = Job::Create(params);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());
  EXPECT_EQ(counter->load(), kCount / 4);
}

// FlatMap fan-out produces several outputs per input.
TEST(ExecutionTest, FlatMapFansOut) {
  constexpr int64_t kCount = 2'000;
  Dag dag;
  VertexId source = AddIntSource(&dag, kCount);
  VertexId flat = dag.AddVertex(
      "flatmap",
      [](const ProcessorMeta&) {
        return std::make_unique<FlatMapP<int64_t, int64_t>>(
            [](const int64_t& v, std::vector<OutRecord<int64_t>>* out) {
              for (int i = 0; i < 3; ++i) {
                out->push_back(OutRecord<int64_t>{v, std::nullopt, std::nullopt});
              }
            });
      },
      1);
  auto counter = std::make_shared<std::atomic<int64_t>>(0);
  VertexId sink = dag.AddVertex(
      "sink",
      [counter](const ProcessorMeta&) {
        return std::make_unique<CountSinkP<int64_t>>(counter);
      },
      1);
  dag.AddEdge(source, flat);
  dag.AddEdge(flat, sink);

  JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 2;
  auto job = Job::Create(params);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());
  EXPECT_EQ(counter->load(), kCount * 3);
}

// Parallel source instances shard the sequence space without overlap, and a
// partitioned edge routes each key consistently.
TEST(ExecutionTest, ParallelSourceAndPartitionedEdge) {
  constexpr int64_t kCount = 8'000;
  Dag dag;
  VertexId source = AddIntSource(&dag, kCount, /*parallelism=*/3);
  auto collector = std::make_shared<SyncCollector<int64_t>>();
  VertexId sink = dag.AddVertex(
      "sink",
      [collector](const ProcessorMeta&) {
        return std::make_unique<CollectSinkP<int64_t>>(collector);
      },
      4);
  dag.AddEdge(source, sink).routing = RoutingPolicy::kPartitioned;

  JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 2;
  auto job = Job::Create(params);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());

  auto values = collector->Snapshot();
  std::set<int64_t> unique(values.begin(), values.end());
  EXPECT_EQ(values.size(), static_cast<size_t>(kCount));
  EXPECT_EQ(unique.size(), static_cast<size_t>(kCount));
}

// Broadcast delivers every item to every consumer instance.
TEST(ExecutionTest, BroadcastDeliversToAllInstances) {
  constexpr int64_t kCount = 1'000;
  constexpr int32_t kSinkParallelism = 3;
  Dag dag;
  VertexId source = AddIntSource(&dag, kCount);
  auto counter = std::make_shared<std::atomic<int64_t>>(0);
  VertexId sink = dag.AddVertex(
      "sink",
      [counter](const ProcessorMeta&) {
        return std::make_unique<CountSinkP<int64_t>>(counter);
      },
      kSinkParallelism);
  dag.AddEdge(source, sink).routing = RoutingPolicy::kBroadcast;

  JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 2;
  auto job = Job::Create(params);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());
  EXPECT_EQ(counter->load(), kCount * kSinkParallelism);
}

// Tiny queues force backpressure; everything still arrives exactly once.
TEST(ExecutionTest, BackpressureWithTinyQueues) {
  constexpr int64_t kCount = 5'000;
  Dag dag;
  VertexId source = AddIntSource(&dag, kCount);
  auto collector = std::make_shared<SyncCollector<int64_t>>();
  VertexId sink = dag.AddVertex(
      "sink",
      [collector](const ProcessorMeta&) {
        return std::make_unique<CollectSinkP<int64_t>>(collector);
      },
      1);
  dag.AddEdge(source, sink).queue_size = 4;

  JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 2;
  auto job = Job::Create(params);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());

  auto values = collector->Snapshot();
  std::set<int64_t> unique(values.begin(), values.end());
  EXPECT_EQ(values.size(), static_cast<size_t>(kCount));
  EXPECT_EQ(unique.size(), static_cast<size_t>(kCount));
}

// The isolated routing policy pins instance i of the producer to instance i
// of the consumer.
TEST(ExecutionTest, IsolatedEdgePreservesInstancePairs) {
  constexpr int64_t kCount = 3'000;
  Dag dag;
  VertexId source = AddIntSource(&dag, kCount, /*parallelism=*/2);
  VertexId map = dag.AddVertex(
      "map",
      [](const ProcessorMeta&) {
        return MakeMapP<int64_t, int64_t>([](const int64_t& v) { return v; });
      },
      2);
  auto collector = std::make_shared<SyncCollector<int64_t>>();
  VertexId sink = dag.AddVertex(
      "sink",
      [collector](const ProcessorMeta&) {
        return std::make_unique<CollectSinkP<int64_t>>(collector);
      },
      1);
  dag.AddEdge(source, map).routing = RoutingPolicy::kIsolated;
  dag.AddEdge(map, sink);

  JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 2;
  auto job = Job::Create(params);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());
  EXPECT_EQ(collector->Size(), static_cast<size_t>(kCount));
}

}  // namespace
}  // namespace jet::core
