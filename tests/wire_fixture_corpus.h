// Canonical frames pinned by the golden fixtures under tests/wire_fixtures/.
//
// Shared by tools/gen_wire_fixtures.cc (which writes the .hex files) and
// tests/wire_format_test.cc (which re-encodes each frame and requires
// byte-exact equality with the committed fixture). Changing anything here
// or in the codec that alters a committed byte sequence is a format change:
// follow the version-bump procedure in tests/wire_fixtures/README.md.

#ifndef JETSIM_TESTS_WIRE_FIXTURE_CORPUS_H_
#define JETSIM_TESTS_WIRE_FIXTURE_CORPUS_H_

#include <string>
#include <vector>

#include "common/debug_check.h"
#include "core/processors_window.h"
#include "net/wire_format.h"

namespace jet::testfixtures {

struct WireFixture {
  std::string name;  // file stem: tests/wire_fixtures/<name>.hex
  Bytes bytes;
};

inline net::FrameHeader CanonicalHeader() {
  net::FrameHeader h;
  h.edge_index = 3;
  h.from_node = 1;
  h.to_node = 2;
  h.epoch = 7;
  return h;
}

/// The committed v1 corpus: one fixture per frame shape the exchange and
/// control planes put on the wire.
inline std::vector<WireFixture> BuildWireFixtures() {
  using core::Item;
  std::vector<WireFixture> fixtures;
  const net::FrameHeader header = CanonicalHeader();

  {
    // Every payload tag in one DATA frame, plus the timestamp/key_hash
    // framing around them.
    std::vector<Item> items;
    items.push_back(Item::Data<int64_t>(-42, 1'000, 11));
    items.push_back(Item::Data<uint64_t>(42, 2'000, 12));
    items.push_back(Item::Data<double>(3.5, 3'000, 13));
    items.push_back(Item::Data<std::string>("jet", 4'000, 14));
    items.push_back(Item::Data<Bytes>(Bytes{0xDE, 0xAD, 0xBE, 0xEF}, 5'000, 15));
    items.push_back(Item::Data<core::KeyedFrame<int64_t>>(
        core::KeyedFrame<int64_t>{9, 50'000'000, 123}, 50'000'000, 16));
    items.push_back(Item::Data<core::WindowResult<int64_t>>(
        core::WindowResult<int64_t>{9, 0, 50'000'000, 123}, 50'000'000, 17));
    BytesWriter w;
    JET_DCHECK_OK(net::EncodeDataFrame(header, items, &w));
    fixtures.push_back({"data_frame_v1", w.Take()});
  }
  {
    std::vector<Item> items;
    items.push_back(Item::WatermarkAt(123'456'789));
    BytesWriter w;
    JET_DCHECK_OK(net::EncodeDataFrame(header, items, &w));
    fixtures.push_back({"watermark_frame_v1", w.Take()});
  }
  {
    std::vector<Item> items;
    items.push_back(Item::BarrierFor(17));
    items.push_back(Item::Done());
    BytesWriter w;
    JET_DCHECK_OK(net::EncodeDataFrame(header, items, &w));
    fixtures.push_back({"barrier_done_frame_v1", w.Take()});
  }
  {
    BytesWriter w;
    JET_DCHECK_OK(net::EncodeAckFrame(header, 123'456, &w));
    fixtures.push_back({"ack_frame_v1", w.Take()});
  }
  {
    BytesWriter w;
    JET_DCHECK_OK(net::EncodeControlFrame(Bytes{0x01, 0x02, 0x03, 0x04, 0x05}, &w));
    fixtures.push_back({"control_frame_v1", w.Take()});
  }
  return fixtures;
}

}  // namespace jet::testfixtures

#endif  // JETSIM_TESTS_WIRE_FIXTURE_CORPUS_H_
