// Tests of the jet::shufflebench workload subsystem: seeded-deterministic
// generation (byte-identical replay), Zipf skew, the registered Record
// wire codec (payload tag 18), the matcher aggregate, and an end-to-end
// exactly-once matcher job over a serializing distributed exchange.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>

#include "cluster/jet_cluster.h"
#include "common/serde.h"
#include "core/item.h"
#include "net/wire_format.h"
#include "shufflebench/generator.h"
#include "shufflebench/matcher.h"
#include "shufflebench/pipeline.h"
#include "shufflebench/wire.h"

namespace jet::shufflebench {
namespace {

// ---------------------------------------------------------------------------
// Generator determinism
// ---------------------------------------------------------------------------

TEST(ShuffleBenchGeneratorTest, SameSeedProducesByteIdenticalStreams) {
  GeneratorConfig config;
  config.key_cardinality = 10'000;
  config.payload_bytes = 48;
  config.seed = 42;
  RecordGenerator a(config);
  RecordGenerator b(config);
  for (int64_t seq = 0; seq < 20'000; ++seq) {
    Record ra = a.MakeRecord(seq);
    Record rb = b.MakeRecord(seq);
    ASSERT_EQ(ra.key, rb.key) << "seq " << seq;
    ASSERT_EQ(ra.payload, rb.payload) << "seq " << seq;
  }
}

TEST(ShuffleBenchGeneratorTest, ReplayFromAnyOffsetIsIdentical) {
  // MakeRecord is pure in (config, seq): regenerating a suffix after
  // "recovery" must equal the original run — the replayable-source
  // property snapshots rely on.
  GeneratorConfig config;
  config.seed = 7;
  RecordGenerator gen(config);
  std::vector<Record> first_run;
  for (int64_t seq = 500; seq < 600; ++seq) first_run.push_back(gen.MakeRecord(seq));
  RecordGenerator replay(config);
  for (int64_t seq = 500; seq < 600; ++seq) {
    EXPECT_EQ(replay.MakeRecord(seq), first_run[static_cast<size_t>(seq - 500)]);
  }
}

TEST(ShuffleBenchGeneratorTest, DifferentSeedsDiverge) {
  GeneratorConfig a_cfg;
  a_cfg.seed = 1;
  GeneratorConfig b_cfg;
  b_cfg.seed = 2;
  RecordGenerator a(a_cfg);
  RecordGenerator b(b_cfg);
  int differing = 0;
  for (int64_t seq = 0; seq < 1000; ++seq) {
    if (a.MakeRecord(seq).key != b.MakeRecord(seq).key) ++differing;
  }
  EXPECT_GT(differing, 900);
}

TEST(ShuffleBenchGeneratorTest, UniformKeysCoverCardinalityInRange) {
  GeneratorConfig config;
  config.key_cardinality = 1000;
  config.payload_bytes = 8;
  RecordGenerator gen(config);
  std::set<uint64_t> seen;
  for (int64_t seq = 0; seq < 20'000; ++seq) {
    Record r = gen.MakeRecord(seq);
    ASSERT_LT(r.key, 1000u);
    ASSERT_EQ(r.payload.size(), 8u);
    seen.insert(r.key);
  }
  // 20k uniform draws over 1k keys: missing more than a sliver of the key
  // space would mean the draw is not uniform.
  EXPECT_GT(seen.size(), 990u);
}

TEST(ShuffleBenchGeneratorTest, ZipfSkewConcentratesTraffic) {
  GeneratorConfig uniform;
  uniform.key_cardinality = 10'000;
  GeneratorConfig zipf = uniform;
  zipf.zipf_exponent = 1.0;
  RecordGenerator ugen(uniform);
  RecordGenerator zgen(zipf);

  auto top_key_share = [](const RecordGenerator& gen) {
    std::map<uint64_t, int64_t> counts;
    constexpr int64_t kDraws = 50'000;
    for (int64_t seq = 0; seq < kDraws; ++seq) ++counts[gen.MakeRecord(seq).key];
    int64_t top = 0;
    for (const auto& [k, c] : counts) top = std::max(top, c);
    return static_cast<double>(top) / kDraws;
  };

  const double uniform_share = top_key_share(ugen);
  const double zipf_share = top_key_share(zgen);
  // Uniform: every key has ~1e-4 of the traffic. Zipf(1.0) over 10k keys:
  // the hottest key should carry around 1/ln(10k) ~ 10%.
  EXPECT_LT(uniform_share, 0.01);
  EXPECT_GT(zipf_share, 0.05);
  // Zipf keys still live in the configured key space.
  for (int64_t seq = 0; seq < 1000; ++seq) {
    ASSERT_LT(zgen.MakeRecord(seq).key, 10'000u);
  }
}

// ---------------------------------------------------------------------------
// Wire codec (payload tag 18)
// ---------------------------------------------------------------------------

TEST(ShuffleBenchWireTest, RegistrationIsIdempotent) {
  EXPECT_TRUE(RegisterShuffleBenchPayload().ok());
  EXPECT_TRUE(RegisterShuffleBenchPayload().ok());
}

TEST(ShuffleBenchWireTest, RecordRoundTripsThroughDataFrame) {
  ASSERT_TRUE(RegisterShuffleBenchPayload().ok());
  GeneratorConfig config;
  config.payload_bytes = 100;
  RecordGenerator gen(config);

  std::vector<core::Item> items;
  for (int64_t seq = 0; seq < 64; ++seq) {
    Record rec = gen.MakeRecord(seq);
    const uint64_t hash = RecordGenerator::KeyHash(rec);
    items.push_back(core::Item::Data<Record>(std::move(rec), seq * 1000, hash));
  }

  net::FrameHeader header;
  header.edge_index = 3;
  header.from_node = 1;
  header.to_node = 2;
  BytesWriter w;
  ASSERT_TRUE(net::EncodeDataFrame(header, items, &w).ok());

  auto decoded = net::DecodeFrame(w.buffer());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->items.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    const Record* original = items[i].payload.TryAs<Record>();
    const Record* round_tripped = decoded->items[i].payload.TryAs<Record>();
    ASSERT_NE(round_tripped, nullptr) << "decoded payload lost its type";
    EXPECT_EQ(*round_tripped, *original);
    EXPECT_EQ(decoded->items[i].key_hash, items[i].key_hash);
    EXPECT_EQ(decoded->items[i].timestamp, items[i].timestamp);
  }
}

TEST(ShuffleBenchWireTest, EncodedTagIsTheCommittedAllocation) {
  ASSERT_TRUE(RegisterShuffleBenchPayload().ok());
  Record rec;
  rec.key = 77;
  rec.payload = {1, 2, 3};
  BytesWriter w;
  ASSERT_TRUE(
      net::EncodeItem(core::Item::Data<Record>(rec, /*event_time=*/0), &w).ok());
  // Item layout: u8 kind, varint ts, varint key_hash, u8 payload tag, ...
  // kind/ts/key_hash are all single-byte here (0), so the tag is byte 3.
  ASSERT_GT(w.buffer().size(), 3u);
  EXPECT_EQ(w.buffer()[3], static_cast<uint8_t>(net::PayloadTag::kShuffleBenchRecord));
}

TEST(ShuffleBenchWireTest, ConflictingRegistrationsAreRejected) {
  ASSERT_TRUE(RegisterShuffleBenchPayload().ok());
  // Same tag, different type.
  struct OtherType {
    int64_t x = 0;
  };
  auto status = net::RegisterPayloadCodec<OtherType>(
      static_cast<uint8_t>(net::PayloadTag::kShuffleBenchRecord),
      +[](const OtherType& v, BytesWriter* w) { w->WriteVarI64(v.x); },
      +[](BytesReader* r, OtherType* out) { return r->ReadVarI64(&out->x); });
  EXPECT_FALSE(status.ok());
  // Same type, different tag.
  auto retag = net::RegisterPayloadCodec<Record>(200, &EncodeRecord, &DecodeRecord);
  EXPECT_FALSE(retag.ok());
  // Tags below the registered range are refused outright.
  auto low = net::RegisterPayloadCodec<OtherType>(
      5, +[](const OtherType& v, BytesWriter* w) { w->WriteVarI64(v.x); },
      +[](BytesReader* r, OtherType* out) { return r->ReadVarI64(&out->x); });
  EXPECT_FALSE(low.ok());
}

TEST(ShuffleBenchWireTest, TruncatedRecordBodyIsAnError) {
  ASSERT_TRUE(RegisterShuffleBenchPayload().ok());
  Record rec;
  rec.key = 5;
  rec.payload = {9, 9, 9, 9};
  net::FrameHeader header;
  BytesWriter w;
  ASSERT_TRUE(net::EncodeDataFrame(header, {core::Item::Data<Record>(rec, 0)}, &w).ok());
  Bytes frame = w.buffer();
  // Chop the tail: every truncation must decode to an error, never a crash
  // or a silently short record.
  for (size_t len = 4; len < frame.size(); ++len) {
    auto decoded = net::DecodeFrame(frame.data(), len);
    EXPECT_FALSE(decoded.ok()) << "truncation at " << len << " decoded";
  }
}

// ---------------------------------------------------------------------------
// Matcher aggregate
// ---------------------------------------------------------------------------

TEST(MatcherAggregateTest, CountsAndFoldsState) {
  auto op = MatcherAggregate(/*state_bytes_per_key=*/32);
  MatcherState acc = op.create();
  Record a;
  a.key = 1;
  a.payload = Bytes(16, 0xFF);
  Record b;
  b.key = 1;
  b.payload = Bytes(16, 0x0F);
  op.accumulate(&acc, a);
  op.accumulate(&acc, b);
  EXPECT_EQ(op.finish(acc), 2);
  ASSERT_EQ(acc.state.size(), 32u);
  // XOR fold: 0xFF ^ 0x0F in the first 16 bytes, zero beyond.
  for (size_t i = 0; i < 16; ++i) EXPECT_EQ(acc.state[i], 0xF0) << i;
  for (size_t i = 16; i < 32; ++i) EXPECT_EQ(acc.state[i], 0x00) << i;
}

TEST(MatcherAggregateTest, CombineMatchesSequentialAccumulation) {
  auto op = MatcherAggregate(64);
  GeneratorConfig config;
  config.payload_bytes = 80;  // larger than state: exercises wrap-around
  RecordGenerator gen(config);

  MatcherState sequential = op.create();
  MatcherState left = op.create();
  MatcherState right = op.create();
  for (int64_t seq = 0; seq < 100; ++seq) {
    Record rec = gen.MakeRecord(seq);
    op.accumulate(&sequential, rec);
    op.accumulate(seq < 50 ? &left : &right, rec);
  }
  op.combine(&left, right);
  EXPECT_EQ(left.count, sequential.count);
  EXPECT_EQ(left.state, sequential.state);
}

TEST(MatcherAggregateTest, SerializeRoundTrips) {
  auto op = MatcherAggregate(48);
  MatcherState acc = op.create();
  Record rec;
  rec.key = 9;
  rec.payload = Bytes(48, 0xAB);
  op.accumulate(&acc, rec);
  op.accumulate(&acc, rec);

  BytesWriter w;
  op.serialize(acc, &w);
  BytesReader r(w.buffer());
  MatcherState restored = op.deserialize(&r);
  EXPECT_EQ(restored.count, acc.count);
  EXPECT_EQ(restored.state, acc.state);
}

// ---------------------------------------------------------------------------
// End-to-end matcher job
// ---------------------------------------------------------------------------

TEST(ShuffleBenchPipelineTest, ExactlyOnceMatcherJobOverSerializedExchange) {
  PipelineOptions options;
  options.generator.key_cardinality = 64;
  options.generator.payload_bytes = 32;
  options.state_bytes_per_key = 128;
  options.events_per_second = 20'000;
  options.source_duration = 400 * kNanosPerMilli;
  options.window_size = 50 * kNanosPerMilli;

  MatcherPipeline pipeline;
  ASSERT_TRUE(BuildMatcherPipeline(options, &pipeline).ok());

  cluster::ClusterConfig cluster_config;
  cluster_config.initial_nodes = 2;
  cluster_config.threads_per_node = 1;
  cluster::JetCluster jet(cluster_config);

  core::JobConfig job_config;
  job_config.guarantee = core::ProcessingGuarantee::kExactlyOnce;
  job_config.snapshot_interval = 100 * kNanosPerMilli;
  // The point of the workload: every shuffled Record round-trips through
  // the registered wire codec.
  job_config.serialize_exchange_frames = true;

  auto job = jet.SubmitJob(&pipeline.dag, job_config, /*job_id=*/11);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE((*job)->Join().ok());

  // Sum distinct (key, window) match counts; duplicates must agree.
  std::map<std::pair<uint64_t, Nanos>, int64_t> distinct;
  for (const auto& r : pipeline.collector->Snapshot()) {
    auto [it, inserted] = distinct.insert({{r.key, r.window_end}, r.value});
    ASSERT_TRUE(inserted || it->second == r.value)
        << "conflicting duplicate window result for key " << r.key;
  }
  int64_t total = 0;
  for (const auto& [kw, v] : distinct) total += v;
  EXPECT_EQ(total, ExpectedRecords(options));
}

}  // namespace
}  // namespace jet::shufflebench
