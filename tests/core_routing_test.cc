#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/collectors.h"
#include "core/dag.h"
#include "core/inbox_outbox.h"
#include "core/job.h"
#include "core/processors_basic.h"
#include "core/watermark.h"

namespace jet::core {
namespace {

// ---------------------------------------------------------------------------
// Inbox / Outbox
// ---------------------------------------------------------------------------

TEST(InboxTest, FifoPeekPoll) {
  Inbox inbox;
  EXPECT_TRUE(inbox.Empty());
  inbox.Add(Item::Data<int>(1, 10));
  inbox.Add(Item::Data<int>(2, 20));
  EXPECT_EQ(inbox.Size(), 2u);
  EXPECT_EQ(inbox.Peek()->payload.As<int>(), 1);
  Item first = inbox.Poll();
  EXPECT_EQ(first.payload.As<int>(), 1);
  inbox.RemoveFront();
  EXPECT_TRUE(inbox.Empty());
}

TEST(OutboxTest, BucketCapacityEnforced) {
  Outbox outbox(2, /*bucket_capacity=*/3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(outbox.Offer(0, Item::Data<int>(i, 0)));
  }
  EXPECT_FALSE(outbox.Offer(0, Item::Data<int>(9, 0)));  // bucket 0 full
  EXPECT_TRUE(outbox.Offer(1, Item::Data<int>(9, 0)));   // bucket 1 has room
}

TEST(OutboxTest, OfferToAllIsAtomicAcrossBuckets) {
  Outbox outbox(2, /*bucket_capacity=*/2);
  ASSERT_TRUE(outbox.OfferToAll(Item::Data<int>(1, 0)));
  ASSERT_TRUE(outbox.OfferToAll(Item::Data<int>(2, 0)));
  // Bucket 0 and 1 both full: OfferToAll must deliver to NEITHER.
  EXPECT_FALSE(outbox.OfferToAll(Item::Data<int>(3, 0)));
  EXPECT_EQ(outbox.bucket(0).size(), 2u);
  EXPECT_EQ(outbox.bucket(1).size(), 2u);
}

TEST(OutboxTest, OfferToAllMovesIntoLastBucketAndSharesTheRest) {
  // Regression for the deep-copy bug: broadcast used to copy the item into
  // every bucket and leave the source alive, i.e. n+1 payload references
  // for n buckets. The fixed path copies into the first n-1 buckets and
  // *moves* into the last, consuming the source.
  Outbox outbox(3, /*bucket_capacity=*/4);
  Item item = Item::Data<int>(42, 7);
  const int* original = &item.payload.As<int>();
  ASSERT_EQ(item.payload.SharedCount(), 1);

  ASSERT_TRUE(outbox.OfferToAll(std::move(item)));
  EXPECT_TRUE(item.payload.Empty());  // source consumed, not copied
  // The three buckets share one payload: refcount is exactly n, and the
  // last bucket holds the original allocation (a move, not a copy).
  EXPECT_EQ(outbox.bucket(0).front().payload.SharedCount(), 3);
  EXPECT_EQ(&outbox.bucket(2).front().payload.As<int>(), original);
  for (int b = 0; b < 3; ++b) {
    EXPECT_EQ(outbox.bucket(b).front().payload.As<int>(), 42);
  }
}

TEST(OutboxTest, OfferToAllRvalueLeavesSourceIntactOnFailure) {
  Outbox outbox(2, /*bucket_capacity=*/1);
  ASSERT_TRUE(outbox.OfferToAll(Item::Data<int>(1, 0)));
  Item item = Item::Data<int>(2, 0);
  EXPECT_FALSE(outbox.OfferToAll(std::move(item)));
  // A failed broadcast must not consume the item — the caller retries.
  EXPECT_FALSE(item.payload.Empty());
  EXPECT_EQ(item.payload.As<int>(), 2);
}

TEST(OutboxTest, SnapshotBucketIndependent) {
  Outbox outbox(1, 2);
  EXPECT_TRUE(outbox.OfferToSnapshot(StateEntry{}));
  EXPECT_TRUE(outbox.OfferToSnapshot(StateEntry{}));
  EXPECT_FALSE(outbox.OfferToSnapshot(StateEntry{}));
  EXPECT_TRUE(outbox.Offer(0, Item::Data<int>(1, 0)));  // data bucket unaffected
  EXPECT_FALSE(outbox.Empty());
}

// ---------------------------------------------------------------------------
// WatermarkCoalescer
// ---------------------------------------------------------------------------

TEST(WatermarkCoalescerTest, MinAcrossQueues) {
  WatermarkCoalescer c(3);
  EXPECT_EQ(c.Coalesced(), kMinWatermark);
  c.ObserveWatermark(0, 100);
  c.ObserveWatermark(1, 200);
  EXPECT_EQ(c.Coalesced(), kMinWatermark);  // queue 2 silent
  c.ObserveWatermark(2, 50);
  EXPECT_EQ(c.Coalesced(), 50);
  c.ObserveWatermark(2, 150);
  EXPECT_EQ(c.Coalesced(), 100);
}

TEST(WatermarkCoalescerTest, DoneQueuesStopHoldingBack) {
  WatermarkCoalescer c(2);
  c.ObserveWatermark(0, 500);
  EXPECT_EQ(c.Coalesced(), kMinWatermark);
  c.MarkDone(1);
  EXPECT_EQ(c.Coalesced(), 500);
  c.MarkDone(0);
  EXPECT_EQ(c.Coalesced(), kMaxWatermark);
}

TEST(WatermarkCoalescerTest, IgnoresRegression) {
  WatermarkCoalescer c(1);
  c.ObserveWatermark(0, 100);
  c.ObserveWatermark(0, 50);  // regression ignored
  EXPECT_EQ(c.Coalesced(), 100);
}

// ---------------------------------------------------------------------------
// OutboundCollector
// ---------------------------------------------------------------------------

std::vector<ItemQueuePtr> MakeQueues(int n, size_t capacity = 64) {
  std::vector<ItemQueuePtr> queues;
  for (int i = 0; i < n; ++i) queues.push_back(std::make_shared<ItemQueue>(capacity));
  return queues;
}

TEST(CollectorTest, PartitionedIsDeterministicByHash) {
  auto queues = MakeQueues(4);
  OutboundCollector collector(RoutingPolicy::kPartitioned, queues, {}, 4, 1, 0);
  for (uint64_t h = 0; h < 100; ++h) {
    Item item = Item::Data<int>(1, 0, h);
    ASSERT_TRUE(collector.OfferData(item));
  }
  // Each item landed in queue (hash % 4).
  for (int q = 0; q < 4; ++q) {
    size_t expected = 0;
    for (uint64_t h = 0; h < 100; ++h) {
      if (h % 4 == static_cast<uint64_t>(q)) ++expected;
    }
    EXPECT_EQ(queues[static_cast<size_t>(q)]->SizeApprox(), expected);
  }
}

TEST(CollectorTest, PartitionedRoutesRemoteNodes) {
  // 2 nodes x 2 local consumers; this collector is on node 0.
  auto queues = MakeQueues(2);
  std::vector<Item> remote;
  std::vector<RemoteSink> remotes = {[&remote](const Item& item) {
    remote.push_back(item);
    return true;
  }};
  OutboundCollector collector(RoutingPolicy::kPartitioned, queues, remotes,
                              /*total=*/4, /*nodes=*/2, /*node_id=*/0);
  // hash 0,1 -> global 0,1 (node 0); hash 2,3 -> global 2,3 (node 1).
  for (uint64_t h = 0; h < 4; ++h) {
    Item item = Item::Data<int>(1, 0, h);
    ASSERT_TRUE(collector.OfferData(item));
  }
  EXPECT_EQ(queues[0]->SizeApprox() + queues[1]->SizeApprox(), 2u);
  EXPECT_EQ(remote.size(), 2u);
}

TEST(CollectorTest, UnicastSkipsFullQueues) {
  auto queues = MakeQueues(2, /*capacity=*/2);
  OutboundCollector collector(RoutingPolicy::kUnicast, queues, {}, 2, 1, 0);
  for (int i = 0; i < 4; ++i) {
    Item item = Item::Data<int>(i, 0);
    ASSERT_TRUE(collector.OfferData(item));
  }
  // Both queues now full (2 each); further offers fail.
  Item overflow = Item::Data<int>(9, 0);
  EXPECT_FALSE(collector.OfferData(overflow));
  EXPECT_EQ(queues[0]->SizeApprox(), 2u);
  EXPECT_EQ(queues[1]->SizeApprox(), 2u);
}

TEST(CollectorTest, BroadcastDeliversToEveryQueueExactlyOnce) {
  auto queues = MakeQueues(3);
  OutboundCollector collector(RoutingPolicy::kBroadcast, queues, {}, 3, 1, 0);
  Item item = Item::Data<int>(7, 0);
  ASSERT_TRUE(collector.OfferData(item));
  for (auto& q : queues) EXPECT_EQ(q->SizeApprox(), 1u);
}

TEST(CollectorTest, BroadcastResumesAfterFullQueue) {
  auto queues = MakeQueues(2, /*capacity=*/2);
  OutboundCollector collector(RoutingPolicy::kBroadcast, queues, {}, 2, 1, 0);
  // Fill queue 1 (capacity rounds to 2).
  Item filler = Item::Data<int>(0, 0);
  queues[1]->TryPush(filler);
  filler = Item::Data<int>(0, 0);
  queues[1]->TryPush(filler);

  Item item = Item::Data<int>(7, 0);
  EXPECT_FALSE(collector.OfferData(item));  // queue 0 got it, queue 1 full
  EXPECT_EQ(queues[0]->SizeApprox(), 1u);

  // Drain queue 1 and retry the SAME item: queue 0 must not get a dup.
  Item out;
  queues[1]->TryPop(out);
  queues[1]->TryPop(out);
  EXPECT_TRUE(collector.OfferData(item));
  EXPECT_EQ(queues[0]->SizeApprox(), 1u);
  EXPECT_EQ(queues[1]->SizeApprox(), 1u);
}

TEST(CollectorTest, ControlReachesEveryQueue) {
  auto queues = MakeQueues(3);
  OutboundCollector collector(RoutingPolicy::kPartitioned, queues, {}, 3, 1, 0);
  ASSERT_TRUE(collector.OfferControl(Item::WatermarkAt(42)));
  for (auto& q : queues) {
    Item* front = q->Peek();
    ASSERT_NE(front, nullptr);
    EXPECT_TRUE(front->IsWatermark());
    EXPECT_EQ(front->timestamp, 42);
  }
}

// ---------------------------------------------------------------------------
// Property sweep: every routing policy delivers every item exactly once
// end-to-end across parallelism combinations.
// ---------------------------------------------------------------------------

struct RoutingCase {
  RoutingPolicy routing;
  int32_t producer_parallelism;
  int32_t consumer_parallelism;
};

class RoutingSweep : public ::testing::TestWithParam<RoutingCase> {};

TEST_P(RoutingSweep, DeliversEverythingExactlyOnce) {
  const RoutingCase& c = GetParam();
  constexpr int64_t kCount = 4'000;
  static ManualClock clock(int64_t{1} << 60);

  Dag dag;
  VertexId source = dag.AddVertex(
      "source",
      [](const ProcessorMeta&) -> std::unique_ptr<Processor> {
        GeneratorSourceP<int64_t>::Options opt;
        opt.events_per_second = 1e9;
        opt.duration = kCount;
        opt.watermark_interval = 500;
        opt.start_time = 0;
        return std::make_unique<GeneratorSourceP<int64_t>>(
            [](int64_t seq) {
              return std::make_pair(seq, HashU64(static_cast<uint64_t>(seq)));
            },
            opt);
      },
      c.producer_parallelism);
  auto collector = std::make_shared<SyncCollector<int64_t>>();
  VertexId sink = dag.AddVertex(
      "sink",
      [collector](const ProcessorMeta&) {
        return std::make_unique<CollectSinkP<int64_t>>(collector);
      },
      c.consumer_parallelism);
  dag.AddEdge(source, sink).routing = c.routing;

  JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 2;
  params.clock = &clock;
  auto job = Job::Create(params);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());

  auto values = collector->Snapshot();
  std::map<int64_t, int> occurrences;
  for (int64_t v : values) ++occurrences[v];

  int64_t expected_copies =
      c.routing == RoutingPolicy::kBroadcast ? c.consumer_parallelism : 1;
  ASSERT_EQ(values.size(), static_cast<size_t>(kCount * expected_copies));
  for (int64_t v = 0; v < kCount; ++v) {
    ASSERT_EQ(occurrences[v], expected_copies) << "value " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, RoutingSweep,
    ::testing::Values(RoutingCase{RoutingPolicy::kUnicast, 1, 1},
                      RoutingCase{RoutingPolicy::kUnicast, 2, 3},
                      RoutingCase{RoutingPolicy::kUnicast, 3, 1},
                      RoutingCase{RoutingPolicy::kPartitioned, 1, 4},
                      RoutingCase{RoutingPolicy::kPartitioned, 3, 2},
                      RoutingCase{RoutingPolicy::kBroadcast, 1, 3},
                      RoutingCase{RoutingPolicy::kBroadcast, 2, 2},
                      RoutingCase{RoutingPolicy::kIsolated, 2, 2},
                      RoutingCase{RoutingPolicy::kIsolated, 4, 4}));

// Partitioned routing sends a key to the same consumer instance always.
TEST(RoutingConsistencyTest, PartitionedKeysStayWithOneInstance) {
  constexpr int64_t kCount = 6'000;
  constexpr int64_t kKeys = 16;
  static ManualClock clock(int64_t{1} << 60);

  // Sink records which instance saw which key.
  struct InstanceTag {
    uint64_t key;
    int32_t instance;
  };
  auto tags = std::make_shared<SyncCollector<InstanceTag>>();

  class TaggingSink final : public Processor {
   public:
    explicit TaggingSink(std::shared_ptr<SyncCollector<InstanceTag>> tags)
        : tags_(std::move(tags)) {}
    void Process(int, Inbox* inbox) override {
      while (!inbox->Empty()) {
        tags_->Add(InstanceTag{inbox->Peek()->key_hash, ctx()->meta.global_index});
        inbox->RemoveFront();
      }
    }

   private:
    std::shared_ptr<SyncCollector<InstanceTag>> tags_;
  };

  Dag dag;
  VertexId source = dag.AddVertex(
      "source",
      [](const ProcessorMeta&) -> std::unique_ptr<Processor> {
        GeneratorSourceP<int64_t>::Options opt;
        opt.events_per_second = 1e9;
        opt.duration = kCount;
        opt.watermark_interval = 500;
        opt.start_time = 0;
        return std::make_unique<GeneratorSourceP<int64_t>>(
            [](int64_t seq) {
              return std::make_pair(seq, HashU64(static_cast<uint64_t>(seq % kKeys)));
            },
            opt);
      },
      2);
  VertexId sink = dag.AddVertex(
      "sink",
      [tags](const ProcessorMeta&) { return std::make_unique<TaggingSink>(tags); }, 3);
  dag.AddEdge(source, sink).routing = RoutingPolicy::kPartitioned;

  JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 2;
  params.clock = &clock;
  auto job = Job::Create(params);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());

  std::map<uint64_t, std::set<int32_t>> instances_per_key;
  for (const auto& tag : tags->Snapshot()) {
    instances_per_key[tag.key].insert(tag.instance);
  }
  EXPECT_EQ(instances_per_key.size(), static_cast<size_t>(kKeys));
  for (const auto& [key, instances] : instances_per_key) {
    EXPECT_EQ(instances.size(), 1u) << "key hash " << key << " visited several instances";
  }
}

}  // namespace
}  // namespace jet::core
