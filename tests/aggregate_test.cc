#include <gtest/gtest.h>

#include "core/aggregate.h"

namespace jet::core {
namespace {

// Generic round-trip checker: accumulate -> serialize -> deserialize ->
// combine behaves like direct accumulation.
template <typename Acc, typename Res>
void CheckSerdeRoundTrip(const AggregateOperation<int64_t, Acc, Res>& op,
                         const std::vector<int64_t>& inputs) {
  Acc direct = op.create();
  for (int64_t v : inputs) op.accumulate(&direct, v);

  // Split inputs over two partial accumulators, round-trip each through
  // bytes, then combine — the two-stage + snapshot path.
  Acc a = op.create(), b = op.create();
  for (size_t i = 0; i < inputs.size(); ++i) {
    op.accumulate(i % 2 == 0 ? &a : &b, inputs[i]);
  }
  BytesWriter wa, wb;
  op.serialize(a, &wa);
  op.serialize(b, &wb);
  BytesReader ra(wa.buffer()), rb(wb.buffer());
  Acc a2 = op.deserialize(&ra);
  Acc b2 = op.deserialize(&rb);
  op.combine(&a2, b2);

  EXPECT_EQ(op.finish(direct), op.finish(a2));
}

TEST(AggregateTest, CountingBasics) {
  auto op = CountingAggregate<int64_t>();
  int64_t acc = op.create();
  for (int i = 0; i < 5; ++i) op.accumulate(&acc, i);
  EXPECT_EQ(op.finish(acc), 5);
  int64_t other = op.create();
  op.accumulate(&other, 9);
  op.combine(&acc, other);
  EXPECT_EQ(op.finish(acc), 6);
  op.deduct(&acc, other);
  EXPECT_EQ(op.finish(acc), 5);
  CheckSerdeRoundTrip(op, {1, 2, 3, 4, 5, 6, 7});
}

TEST(AggregateTest, SummingWithDeduct) {
  auto op = SummingAggregate<int64_t>([](const int64_t& v) { return v; });
  int64_t acc = op.create();
  op.accumulate(&acc, 10);
  op.accumulate(&acc, 20);
  int64_t frame = op.create();
  op.accumulate(&frame, 10);
  op.deduct(&acc, frame);
  EXPECT_EQ(op.finish(acc), 20);
  CheckSerdeRoundTrip(op, {5, -3, 100, 42});
}

TEST(AggregateTest, AveragingMatchesArithmetic) {
  auto op = AveragingAggregate<int64_t>([](const int64_t& v) { return v; });
  AvgAcc acc = op.create();
  for (int64_t v : {2, 4, 6}) op.accumulate(&acc, v);
  EXPECT_DOUBLE_EQ(op.finish(acc), 4.0);
  EXPECT_DOUBLE_EQ(op.finish(op.create()), 0.0);  // empty average defined as 0
}

TEST(AggregateTest, MinMax) {
  auto max_op = MaxAggregate<int64_t>([](const int64_t& v) { return v; });
  auto min_op = MinAggregate<int64_t>([](const int64_t& v) { return v; });
  int64_t mx = max_op.create(), mn = min_op.create();
  for (int64_t v : {5, -2, 9, 3}) {
    max_op.accumulate(&mx, v);
    min_op.accumulate(&mn, v);
  }
  EXPECT_EQ(max_op.finish(mx), 9);
  EXPECT_EQ(min_op.finish(mn), -2);
  CheckSerdeRoundTrip(max_op, {3, 1, 4, 1, 5});
  CheckSerdeRoundTrip(min_op, {3, 1, 4, 1, 5});
}

TEST(AggregateTest, TopNKeepsLargestInOrder) {
  auto op = TopNAggregate<int64_t>([](const int64_t& v) { return v; },
                                   [](const int64_t& v) { return static_cast<uint64_t>(v); },
                                   3);
  TopNAcc acc = op.create();
  for (int64_t v : {5, 1, 9, 7, 3, 8}) op.accumulate(&acc, v);
  auto top = op.finish(acc);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 9);
  EXPECT_EQ(top[1].first, 8);
  EXPECT_EQ(top[2].first, 7);
}

TEST(AggregateTest, TopNCombineMergesPartials) {
  auto op = TopNAggregate<int64_t>([](const int64_t& v) { return v; },
                                   [](const int64_t& v) { return static_cast<uint64_t>(v); },
                                   2);
  TopNAcc a = op.create(), b = op.create();
  op.accumulate(&a, 10);
  op.accumulate(&a, 1);
  op.accumulate(&b, 7);
  op.accumulate(&b, 20);
  op.combine(&a, b);
  auto top = op.finish(a);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 20);
  EXPECT_EQ(top[1].first, 10);
}

TEST(AggregateTest, DistinctCountIgnoresDuplicates) {
  auto op = DistinctCountAggregate<int64_t>(
      [](const int64_t& v) { return static_cast<uint64_t>(v % 10); });
  DistinctAcc acc = op.create();
  for (int64_t v = 0; v < 100; ++v) op.accumulate(&acc, v);
  EXPECT_EQ(op.finish(acc), 10);
  CheckSerdeRoundTrip(op, {1, 2, 2, 3, 3, 3});
}

TEST(AggregateTest, LastNAverageWindowOfTen) {
  auto op = LastNAverageAggregate<int64_t>([](const int64_t& v) { return v; }, 3);
  LastNAcc acc = op.create();
  for (int64_t v : {1, 2, 3, 4, 5}) op.accumulate(&acc, v);  // keeps 3,4,5
  EXPECT_DOUBLE_EQ(op.finish(acc), 4.0);
}

}  // namespace
}  // namespace jet::core
