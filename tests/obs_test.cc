// Tests of the jet::obs observability subsystem: metrics registry
// single-writer/concurrent-reader discipline, the event-loop profiler,
// exporter round-trips, the IMDG metrics collector, and the cluster-wide
// diagnostics dump.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/jet_cluster.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "core/job.h"
#include "core/metrics.h"
#include "core/processors_basic.h"
#include "imdg/grid.h"
#include "obs/atomic_histogram.h"
#include "obs/collector_tasklet.h"
#include "obs/event_loop_profiler.h"
#include "obs/exporters.h"
#include "obs/metrics_registry.h"

namespace jet::obs {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry: single-writer instruments, concurrent polling
// ---------------------------------------------------------------------------

// The tsan payload: several writer threads hammer their own instruments
// while a reader polls snapshots. Per-counter values must be monotonic
// across snapshots and land on the exact totals.
TEST(MetricsRegistryTest, ConcurrentWritersMonotonicSnapshots) {
  constexpr int kWriters = 4;
  constexpr int64_t kIncrements = 200'000;
  MetricsRegistry registry;

  std::vector<Counter> counters;
  std::vector<Gauge> gauges;
  std::vector<HistogramHandle> hists;
  for (int w = 0; w < kWriters; ++w) {
    MetricTags tags;
    tags.worker = w;
    counters.push_back(registry.GetCounter("test.ops", tags));
    gauges.push_back(registry.GetGauge("test.level", tags));
    hists.push_back(registry.GetHistogram("test.latency", tags, /*max_value=*/1 << 20));
  }

  std::atomic<bool> stop{false};
  std::thread poller([&]() {
    std::vector<int64_t> last(kWriters, 0);
    while (!stop.load(std::memory_order_acquire)) {
      auto snap = registry.Snapshot();
      for (const auto& m : snap) {
        if (m.id.name != "test.ops") continue;
        auto w = static_cast<size_t>(m.id.tags.worker);
        EXPECT_GE(m.value, last[w]) << "counter went backwards";
        last[w] = m.value;
        if (m.histogram != nullptr) {
          // Histogram snapshots must be internally consistent too.
          EXPECT_GE(m.histogram->count(), 0);
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w]() {
      for (int64_t i = 0; i < kIncrements; ++i) {
        counters[static_cast<size_t>(w)].Add(1);
        gauges[static_cast<size_t>(w)].Set(i);
        if ((i & 1023) == 0) hists[static_cast<size_t>(w)].Record(i & 0xFFFF);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  poller.join();

  auto snap = registry.Snapshot();
  int64_t total = 0;
  for (const auto& m : snap) {
    if (m.id.name == "test.ops") total += m.value;
  }
  EXPECT_EQ(total, kWriters * kIncrements);
}

TEST(MetricsRegistryTest, HandlesAreIdempotentPerNameAndTags) {
  MetricsRegistry registry;
  MetricTags tags;
  tags.tasklet = "t";
  Counter a = registry.GetCounter("x", tags);
  Counter b = registry.GetCounter("x", tags);
  a.Add(3);
  b.Add(4);
  EXPECT_EQ(a.Value(), 7);  // same cell
  EXPECT_EQ(registry.size(), 1u);

  MetricTags other;
  other.tasklet = "u";
  registry.GetCounter("x", other);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistryTest, DefaultTagsAreMergedIn) {
  MetricTags defaults;
  defaults.job = 9;
  defaults.member = 2;
  MetricsRegistry registry(defaults);
  MetricTags tags;
  tags.tasklet = "t";
  registry.GetCounter("x", tags);
  auto snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].id.tags.job, 9);
  EXPECT_EQ(snap[0].id.tags.member, 2);
  EXPECT_EQ(snap[0].id.tags.tasklet, "t");
}

TEST(MetricsRegistryTest, CallbackGaugeEvaluatedAtSnapshotTime) {
  MetricsRegistry registry;
  auto level = std::make_shared<std::atomic<int64_t>>(0);
  registry.RegisterCallback("cb.level", {}, [level]() { return level->load(); });
  level->store(42);
  auto snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].value, 42);
  level->store(43);
  EXPECT_EQ(registry.Snapshot()[0].value, 43);
}

// ---------------------------------------------------------------------------
// AtomicHistogram
// ---------------------------------------------------------------------------

TEST(AtomicHistogramTest, MatchesPlainHistogram) {
  AtomicHistogram ah(/*max_value=*/1 << 20);
  Histogram h(/*max_value=*/1 << 20);
  for (int64_t v : {0LL, 1LL, 63LL, 64LL, 1000LL, 65'536LL, 999'999LL, 5'000'000LL}) {
    ah.Record(v);
    h.Record(v);
  }
  Histogram snap = ah.Snapshot();
  EXPECT_EQ(snap.count(), h.count());
  EXPECT_EQ(snap.max(), h.max());
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(snap.ValueAtQuantile(q), h.ValueAtQuantile(q)) << "q=" << q;
  }
}

TEST(AtomicHistogramTest, SnapshotWhileRecording) {
  AtomicHistogram ah(/*max_value=*/1 << 16);
  std::atomic<bool> stop{false};
  std::thread writer([&]() {
    int64_t v = 0;
    while (!stop.load(std::memory_order_acquire)) ah.Record(v++ & 0xFFF);
  });
  // Wait for the writer to actually start producing, then check that
  // concurrent snapshots are monotonic.
  while (ah.Snapshot().count() == 0) std::this_thread::yield();
  int64_t last_count = 0;
  for (int i = 0; i < 200; ++i) {
    Histogram snap = ah.Snapshot();
    EXPECT_GE(snap.count(), last_count);  // monotonic
    last_count = snap.count();
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_GT(ah.Snapshot().count(), 0);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

std::vector<MetricSnapshot> SampleSnapshots() {
  MetricTags defaults;
  defaults.job = 7;
  defaults.member = 1;
  auto registry = std::make_shared<MetricsRegistry>(defaults);
  MetricTags tags;
  tags.tasklet = "map#0";
  tags.vertex = 2;
  registry->GetCounter("tasklet.items_processed", tags).Add(123);
  registry->GetGauge("tasklet.inbox_depth", tags).Set(-5);
  auto h = registry->GetHistogram("tasklet.call_nanos", tags);
  for (int i = 1; i <= 1000; ++i) h.Record(i * 1000);
  return registry->Snapshot();
}

TEST(ExportersTest, PrometheusRoundTrip) {
  auto snap = SampleSnapshots();
  std::string text = RenderPrometheusText(snap);

  std::vector<PrometheusSample> samples;
  ASSERT_TRUE(ParsePrometheusText(text, &samples)) << text;
  ASSERT_FALSE(samples.empty());

  // The counter sample survives the round trip with its tags and value.
  bool found_counter = false;
  bool found_quantile = false;
  bool found_count = false;
  for (const auto& s : samples) {
    if (s.name == "jet_tasklet_items_processed") {
      found_counter = true;
      EXPECT_EQ(s.value, 123.0);
      EXPECT_EQ(s.labels.at("tasklet"), "map#0");
      EXPECT_EQ(s.labels.at("job"), "7");
      EXPECT_EQ(s.labels.at("member"), "1");
      EXPECT_EQ(s.labels.at("vertex"), "2");
    }
    if (s.name == "jet_tasklet_call_nanos" && s.labels.count("quantile") > 0) {
      found_quantile = true;
      EXPECT_GT(s.value, 0.0);
    }
    if (s.name == "jet_tasklet_call_nanos_count") {
      found_count = true;
      EXPECT_EQ(s.value, 1000.0);
    }
  }
  EXPECT_TRUE(found_counter);
  EXPECT_TRUE(found_quantile);
  EXPECT_TRUE(found_count);
}

TEST(ExportersTest, JsonDumpIsWellFormedAndComplete) {
  auto snap = SampleSnapshots();
  std::string json = RenderJson(snap);
  EXPECT_TRUE(JsonIsWellFormed(json)) << json;
  EXPECT_NE(json.find("\"tasklet.items_processed\""), std::string::npos);
  EXPECT_NE(json.find("\"tasklet.call_nanos\""), std::string::npos);
  EXPECT_NE(json.find("\"quantiles\""), std::string::npos);
  EXPECT_NE(json.find("-5"), std::string::npos);  // negative gauge survives
}

TEST(ExportersTest, JsonCheckerRejectsMalformed) {
  EXPECT_TRUE(JsonIsWellFormed("{}"));
  EXPECT_TRUE(JsonIsWellFormed("[1, 2.5, -3e4, \"a\\\"b\", true, null]"));
  EXPECT_TRUE(JsonIsWellFormed("{\"a\":{\"b\":[{}]}}"));
  EXPECT_FALSE(JsonIsWellFormed(""));
  EXPECT_FALSE(JsonIsWellFormed("{"));
  EXPECT_FALSE(JsonIsWellFormed("{\"a\":}"));
  EXPECT_FALSE(JsonIsWellFormed("[1,]"));
  EXPECT_FALSE(JsonIsWellFormed("{} extra"));
  EXPECT_FALSE(JsonIsWellFormed("\"unterminated"));
}

TEST(ExportersTest, PrometheusParserRejectsMalformed) {
  std::vector<PrometheusSample> out;
  EXPECT_FALSE(ParsePrometheusText("jet_x{tasklet=\"a\" 1\n", &out));
  EXPECT_FALSE(ParsePrometheusText("jet_x{} \n", &out));
  EXPECT_TRUE(ParsePrometheusText("# a comment\n\njet_x 1\n", &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].name, "jet_x");
}

// ---------------------------------------------------------------------------
// JobMetricsFromSnapshot
// ---------------------------------------------------------------------------

TEST(JobMetricsFromSnapshotTest, GroupsByTaskletTag) {
  MetricsRegistry registry;
  MetricTags a;
  a.tasklet = "src#0";
  MetricTags b;
  b.tasklet = "sink#0";
  registry.GetCounter("tasklet.items_processed", a).Add(10);
  registry.GetCounter("tasklet.calls", a).Add(100);
  registry.GetCounter("tasklet.idle_calls", a).Add(40);
  registry.GetGauge("tasklet.done", a).Set(1);
  registry.GetCounter("tasklet.items_processed", b).Add(10);
  // Profiler metrics use a different tag set ({tasklet, worker}) but must
  // fold into the same row.
  MetricTags aw = a;
  aw.worker = 3;
  registry.GetCounter("tasklet.overbudget_calls", aw).Add(2);
  auto h = registry.GetHistogram("tasklet.call_nanos", aw);
  h.Record(1000);
  h.Record(2000);
  // Non-tasklet metrics are ignored.
  registry.GetCounter("exchange.items_sent", a).Add(999);

  core::JobMetrics m = core::JobMetricsFromSnapshot(registry.Snapshot());
  ASSERT_EQ(m.tasklets.size(), 2u);
  EXPECT_EQ(m.tasklets[0].name, "src#0");
  EXPECT_EQ(m.tasklets[0].items_processed, 10);
  EXPECT_EQ(m.tasklets[0].calls, 100);
  EXPECT_EQ(m.tasklets[0].idle_calls, 40);
  EXPECT_TRUE(m.tasklets[0].done);
  EXPECT_EQ(m.tasklets[0].overbudget_calls, 2);
  EXPECT_GT(m.tasklets[0].p50_call_nanos, 0);
  EXPECT_GT(m.tasklets[0].max_call_nanos, 0);
  EXPECT_NEAR(m.tasklets[0].BusyFraction(), 0.6, 1e-9);
  EXPECT_EQ(m.tasklets[1].name, "sink#0");
  EXPECT_EQ(m.TotalItemsProcessed(), 20);
}

// ---------------------------------------------------------------------------
// Event-loop profiler (through a real single-node job)
// ---------------------------------------------------------------------------

// A cooperative processor that deliberately violates the §3.2 budget: every
// Complete() call burns ~4x the 1ms cooperative time slice before yielding.
class NonCooperativeBurnP final : public core::Processor {
 public:
  explicit NonCooperativeBurnP(int calls) : remaining_(calls) {}

  bool Complete() override {
    std::this_thread::sleep_for(std::chrono::milliseconds(4));
    return --remaining_ <= 0;
  }

 private:
  int remaining_;
};

TEST(EventLoopProfilerTest, MisbehavingTaskletShowsElevatedTail) {
  core::Dag dag;
  dag.AddVertex(
      "burner",
      [](const core::ProcessorMeta&) { return std::make_unique<NonCooperativeBurnP>(20); },
      1);

  core::JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 1;
  params.job_id = 5;
  auto job = core::Job::Create(params);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());

  core::JobMetrics m = (*job)->Metrics();
  ASSERT_EQ(m.tasklets.size(), 1u);
  const core::TaskletMetrics& t = m.tasklets[0];
  EXPECT_EQ(t.name, "burner#0");
  // Every burning call exceeded the 1ms budget, so the tail and the
  // overbudget counter both expose the misbehaving tasklet.
  EXPECT_GT(t.overbudget_calls, 0);
  EXPECT_GT(t.p9999_call_nanos, kNanosPerMilli);
  EXPECT_GT(t.max_call_nanos, kNanosPerMilli);
  EXPECT_GE(t.p9999_call_nanos, t.p50_call_nanos);
}

// ---------------------------------------------------------------------------
// MetricsCollectorTasklet (through a real single-node job)
// ---------------------------------------------------------------------------

TEST(CollectorTest, JobPublishesMetricsIntoGrid) {
  imdg::DataGrid grid(0);
  ASSERT_TRUE(grid.AddMember(0).ok());

  constexpr int64_t kCount = 10'000;
  core::Dag dag;
  core::VertexId source = dag.AddVertex(
      "source",
      [](const core::ProcessorMeta&) -> std::unique_ptr<core::Processor> {
        core::GeneratorSourceP<int64_t>::Options opt;
        opt.events_per_second = 1e9;
        opt.duration = kCount;
        opt.watermark_interval = 1000;
        return std::make_unique<core::GeneratorSourceP<int64_t>>(
            [](int64_t seq) {
              return std::make_pair(seq, HashU64(static_cast<uint64_t>(seq)));
            },
            opt);
      },
      1);
  auto counter = std::make_shared<std::atomic<int64_t>>(0);
  core::VertexId sink = dag.AddVertex(
      "sink",
      [counter](const core::ProcessorMeta&) {
        return std::make_unique<core::CountSinkP<int64_t>>(counter);
      },
      1);
  dag.AddEdge(source, sink);

  core::JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 2;
  params.job_id = 11;
  params.metrics_grid = &grid;
  params.metrics_publish_interval = 10 * kNanosPerMilli;
  auto job = core::Job::Create(params);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->Join().ok());

  const std::string key = "job-11/member-0";
  auto stored = grid.Get("__jet.metrics", Bytes(key.begin(), key.end()));
  ASSERT_TRUE(stored.ok());
  ASSERT_TRUE(stored->has_value());
  std::string json((*stored)->begin(), (*stored)->end());
  EXPECT_TRUE(JsonIsWellFormed(json)) << json;
  // The final publication covers the job's tasklets and their counters.
  EXPECT_NE(json.find("\"tasklet.calls\""), std::string::npos);
  EXPECT_NE(json.find("source#0"), std::string::npos);
  EXPECT_NE(json.find("sink#0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JetCluster::DiagnosticsDump (cluster integration)
// ---------------------------------------------------------------------------

TEST(DiagnosticsDumpTest, CoversEveryTaskletInBothFormats) {
  cluster::ClusterConfig config;
  config.initial_nodes = 2;
  config.threads_per_node = 1;
  cluster::JetCluster jet(config);

  constexpr int64_t kCount = 20'000;
  core::Dag dag;
  core::VertexId source = dag.AddVertex(
      "gen",
      [](const core::ProcessorMeta&) -> std::unique_ptr<core::Processor> {
        core::GeneratorSourceP<int64_t>::Options opt;
        opt.events_per_second = 1e9;
        opt.duration = kCount;
        opt.watermark_interval = 1000;
        return std::make_unique<core::GeneratorSourceP<int64_t>>(
            [](int64_t seq) {
              return std::make_pair(seq, HashU64(static_cast<uint64_t>(seq)));
            },
            opt);
      },
      1);
  auto counter = std::make_shared<std::atomic<int64_t>>(0);
  core::VertexId sink = dag.AddVertex(
      "count",
      [counter](const core::ProcessorMeta&) {
        return std::make_unique<core::CountSinkP<int64_t>>(counter);
      },
      1);
  core::Edge& e = dag.AddEdge(source, sink);
  e.routing = core::RoutingPolicy::kPartitioned;
  e.distributed = true;

  auto job = jet.SubmitJob(&dag, core::JobConfig{}, 3);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE((*job)->Join().ok());

  cluster::JetCluster::Diagnostics dump = jet.DiagnosticsDump();

  // JSON side: well-formed and mentions every tasklet of the job.
  EXPECT_TRUE(JsonIsWellFormed(dump.json));
  core::JobMetrics m = (*job)->Metrics();
  ASSERT_GT(m.tasklets.size(), 4u);  // 2 nodes x (gen, count) + exchange
  for (const auto& t : m.tasklets) {
    EXPECT_NE(dump.json.find("\"" + t.name + "\""), std::string::npos)
        << "tasklet " << t.name << " missing from JSON dump";
  }
  // Cluster-level sections are present.
  EXPECT_NE(dump.json.find("cluster.alive_members"), std::string::npos);
  EXPECT_NE(dump.json.find("imdg.partition_count"), std::string::npos);
  EXPECT_NE(dump.json.find("net.messages_sent"), std::string::npos);

  // Prometheus side: parses, and every tasklet appears as a label value.
  std::vector<PrometheusSample> samples;
  ASSERT_TRUE(ParsePrometheusText(dump.prometheus, &samples));
  std::set<std::string> seen;
  for (const auto& s : samples) {
    auto it = s.labels.find("tasklet");
    if (it != s.labels.end()) seen.insert(it->second);
  }
  for (const auto& t : m.tasklets) {
    EXPECT_TRUE(seen.count(t.name) > 0)
        << "tasklet " << t.name << " missing from Prometheus dump";
  }

  // Exchange instruments from the distributed edge made it in.
  EXPECT_NE(dump.json.find("exchange.items_sent"), std::string::npos);
  EXPECT_NE(dump.json.find("exchange.receive_window"), std::string::npos);

  // The per-member collectors published into the grid as well.
  for (int32_t member : jet.AliveNodes()) {
    const std::string key = "job-3/member-" + std::to_string(member);
    auto stored = jet.grid().Get("__jet.metrics", Bytes(key.begin(), key.end()));
    ASSERT_TRUE(stored.ok());
    EXPECT_TRUE(stored->has_value()) << key;
  }
}

// Extracts the "value" of the named metric from a DiagnosticsDump JSON
// payload ({"metrics":[{"name":...,"value":...}, ...]}). Returns -1 when the
// metric is absent.
int64_t GaugeValueInDump(const std::string& json, const std::string& name) {
  size_t at = json.find("\"" + name + "\"");
  if (at == std::string::npos) return -1;
  size_t v = json.find("\"value\":", at);
  if (v == std::string::npos) return -1;
  return std::strtoll(json.c_str() + v + 8, nullptr, 10);
}

TEST(DiagnosticsDumpTest, ImdgCapacityGaugesTrackGridContents) {
  cluster::ClusterConfig config;
  config.initial_nodes = 2;
  config.threads_per_node = 1;
  cluster::JetCluster jet(config);

  // Load a known volume directly into the grid: 500 entries of 8-byte keys
  // and 32-byte values, uniformly hashed across partitions.
  constexpr int64_t kEntries = 500;
  const Bytes value(32, 0x42);
  for (int64_t i = 0; i < kEntries; ++i) {
    BytesWriter key;
    key.WriteU64(HashU64(static_cast<uint64_t>(i)));
    ASSERT_TRUE(jet.grid().Put("capacity_probe", key.buffer(), value).ok());
  }

  cluster::JetCluster::Diagnostics dump = jet.DiagnosticsDump();
  ASSERT_TRUE(JsonIsWellFormed(dump.json));

  // The capacity surfaces are present and consistent with what we loaded.
  const int64_t entries = GaugeValueInDump(dump.json, "imdg.entries");
  EXPECT_GE(entries, kEntries);
  const int64_t bytes = GaugeValueInDump(dump.json, "imdg.bytes_approx");
  EXPECT_GE(bytes, kEntries * (8 + 32));
  const int64_t max_part =
      GaugeValueInDump(dump.json, "imdg.partition_max_entries");
  EXPECT_GT(max_part, 0);
  EXPECT_LE(max_part, entries);
  // Skew is reported x1000; a uniform hash load must stay well under the
  // pathological range but can never dip below a perfectly even 1.0.
  const int64_t skew_x1000 =
      GaugeValueInDump(dump.json, "imdg.partition_skew_x1000");
  EXPECT_GE(skew_x1000, 1000);
  EXPECT_LT(skew_x1000, 10'000);

  // The same gauges surface in the Prometheus rendering (names are
  // sanitized, so the dots become underscores).
  EXPECT_NE(dump.prometheus.find("imdg_entries"), std::string::npos);
  EXPECT_NE(dump.prometheus.find("imdg_bytes_approx"), std::string::npos);
}

}  // namespace
}  // namespace jet::obs
