// TSan race-stress suite (ISSUE 1): hammers the concurrency-sensitive
// primitives the paper's latency story rests on — the wait-free SPSC queue,
// the flow-control credit path, the metrics counters polled while workers
// run, the wire buffer, and the failure detector — with thread pairs sized
// to surface ordering bugs under `cmake --preset tsan && ctest --preset
// tsan`. The suite also runs (smaller but still useful) in uninstrumented
// builds, where the assertions check the functional invariants.
//
// The deliberate-misuse demos live at the bottom: a second concurrent
// producer on an SpscQueue is caught by the ThreadOwnershipGuard when
// JETSIM_DEBUG_CHECKS is on (death test), and reported by TSan when the
// guard is compiled out (DISABLED_ test, run via tools/check.sh --demo).

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/failure_detector.h"
#include "common/debug_check.h"
#include "common/spsc_queue.h"
#include "core/dag.h"
#include "core/execution_service.h"
#include "core/job.h"
#include "core/processors_basic.h"
#include "core/tasklet.h"
#include "imdg/grid.h"
#include "imdg/ownership.h"
#include "net/exchange.h"
#include "net/flow_control.h"
#include "net/network.h"
#include "obs/event_loop_profiler.h"
#include "obs/metrics_registry.h"

namespace jet {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

// Instrumented runs pay 5-15x per memory access; keep wall time sane while
// still crossing the ring boundary hundreds of times.
constexpr int64_t kQueueItems = kTsan ? 60'000 : 500'000;

// ---------------------------------------------------------------------------
// SpscQueue: mixed single-push/batch producer vs mixed pop/drain/peek
// consumer. FIFO and completeness checked; TSan checks the ordering.
// ---------------------------------------------------------------------------

TEST(RaceStressTest, SpscQueueMixedOperations) {
  SpscQueue<int64_t> q(128);
  std::thread producer([&q]() {
    int64_t next = 0;
    std::vector<int64_t> batch;
    while (next < kQueueItems) {
      if (next % 3 == 0) {
        batch.clear();
        for (int64_t v = next; v < std::min<int64_t>(next + 17, kQueueItems); ++v) {
          batch.push_back(v);
        }
        size_t pushed = q.PushBatch(batch.begin(), batch.end());
        next += static_cast<int64_t>(pushed);
      } else {
        int64_t v = next;
        if (q.TryPush(v)) ++next;
      }
    }
  });

  int64_t expected = 0;
  int64_t sum = 0;
  int mode = 0;
  while (expected < kQueueItems) {
    switch (mode++ % 3) {
      case 0: {
        int64_t out;
        if (q.TryPop(out)) {
          ASSERT_EQ(out, expected++);
          sum += out;
        }
        break;
      }
      case 1: {
        size_t n = q.DrainTo(
            [&](int64_t&& v) {
              ASSERT_EQ(v, expected++);
              sum += v;
            },
            23);
        (void)n;
        break;
      }
      default: {
        int64_t* front = q.Peek();
        if (front != nullptr) {
          ASSERT_EQ(*front, expected++);
          sum += *front;
          q.PopFront();
        }
        break;
      }
    }
  }
  producer.join();
  EXPECT_EQ(sum, kQueueItems * (kQueueItems - 1) / 2);
  EXPECT_TRUE(q.EmptyApprox());
}

// ---------------------------------------------------------------------------
// Flow control: the network thread applies acks while the sender thread
// gates sends on the advancing limit (§3.3). The receiver side sizes the
// window on its own thread.
// ---------------------------------------------------------------------------

TEST(RaceStressTest, FlowControlCreditUpdates) {
  constexpr int64_t kTotal = kTsan ? 40'000 : 400'000;
  net::SenderFlowState flow;
  std::atomic<int64_t> receiver_processed{0};
  std::atomic<bool> stop_acker{false};

  // "Network" thread: turns receiver progress into window acks, including
  // occasional stale (lower) limits that OnAck must ignore monotonically.
  std::thread acker([&]() {
    net::ReceiveWindowController ctl;
    Nanos now = 0;
    while (!stop_acker.load(std::memory_order_acquire)) {
      now += ctl.options().ack_interval;
      int64_t limit = ctl.MaybeAck(now, receiver_processed.load(std::memory_order_acquire));
      if (limit >= 0) {
        flow.OnAck(limit);
        flow.OnAck(limit - 7);  // stale ack: must not move the limit back
      }
    }
    flow.OnAck(kTotal + 1);  // final credit so the sender always finishes
  });

  std::thread sender([&]() {
    int64_t seq = 0;
    while (seq < kTotal) {
      if (flow.MaySend(seq)) {
        // "Send" = receiver observes it after a beat.
        receiver_processed.store(seq + 1, std::memory_order_release);
        ++seq;
      } else {
        std::this_thread::yield();
      }
    }
  });

  // Poll the limit concurrently; it must only move forward.
  int64_t last_limit = 0;
  for (int i = 0; i < 10'000; ++i) {
    int64_t limit = flow.send_limit.load(std::memory_order_acquire);
    ASSERT_GE(limit, last_limit);
    last_limit = limit;
  }
  sender.join();
  stop_acker.store(true, std::memory_order_release);
  acker.join();
  EXPECT_EQ(receiver_processed.load(), kTotal);
  EXPECT_GE(flow.send_limit.load(std::memory_order_acquire), kTotal);
}

// ---------------------------------------------------------------------------
// Metrics counters: poll Job::Metrics() continuously while the job's worker
// threads run. Before the counters became single-writer atomics this was a
// plain int64 data race on every poll.
// ---------------------------------------------------------------------------

TEST(RaceStressTest, MetricsPollingWhileJobRuns) {
  constexpr int64_t kCount = kTsan ? 20'000 : 100'000;
  core::Dag dag;
  core::VertexId source = dag.AddVertex(
      "source",
      [](const core::ProcessorMeta&) -> std::unique_ptr<core::Processor> {
        core::GeneratorSourceP<int64_t>::Options opt;
        opt.events_per_second = 1e9;
        opt.duration = kCount;
        opt.watermark_interval = 1;
        return std::make_unique<core::GeneratorSourceP<int64_t>>(
            [](int64_t seq) {
              return std::make_pair(seq, HashU64(static_cast<uint64_t>(seq)));
            },
            opt);
      },
      1);
  auto collector = std::make_shared<core::SyncCollector<int64_t>>();
  core::VertexId sink = dag.AddVertex(
      "sink",
      [collector](const core::ProcessorMeta&) {
        return std::make_unique<core::CollectSinkP<int64_t>>(collector);
      },
      1);
  dag.AddEdge(source, sink);

  core::JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 2;
  auto job = core::Job::Create(params);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE((*job)->Start().ok());

  int64_t last_total = 0;
  int64_t last_calls = 0;
  while (!(*job)->IsComplete()) {
    core::JobMetrics m = (*job)->Metrics();
    int64_t total = m.TotalItemsProcessed();
    int64_t calls = 0;
    for (const auto& t : m.tasklets) {
      calls += t.calls;
      ASSERT_GE(t.calls, t.idle_calls);
      ASSERT_GE(t.completed_snapshot_id, 0);
    }
    // Monotonic: single-writer counters may be stale but never go back.
    ASSERT_GE(total, last_total);
    ASSERT_GE(calls, last_calls);
    last_total = total;
    last_calls = calls;
  }
  ASSERT_TRUE((*job)->Join().ok());
  EXPECT_EQ(collector->Snapshot().size(), static_cast<size_t>(kCount));
}

// ---------------------------------------------------------------------------
// WireBuffer: the delivery thread pushes batches while the receiver tasklet
// thread drains.
// ---------------------------------------------------------------------------

TEST(RaceStressTest, WireBufferPushDrain) {
  constexpr int64_t kBatches = kTsan ? 2'000 : 20'000;
  constexpr int64_t kBatchSize = 8;
  net::WireBuffer buffer;
  std::thread pusher([&]() {
    int64_t seq = 0;
    for (int64_t b = 0; b < kBatches; ++b) {
      std::vector<core::Item> batch;
      batch.reserve(kBatchSize);
      for (int64_t i = 0; i < kBatchSize; ++i) {
        batch.push_back(core::Item::Data<int64_t>(seq, /*event_time=*/seq));
        ++seq;
      }
      buffer.Push(std::move(batch));
    }
  });

  std::deque<core::Item> out;
  int64_t drained = 0;
  int64_t expected_seq = 0;
  while (drained < kBatches * kBatchSize) {
    drained += static_cast<int64_t>(buffer.Drain(&out, 13));
    while (!out.empty()) {
      EXPECT_EQ(out.front().timestamp, expected_seq);  // FIFO preserved
      ++expected_seq;
      out.pop_front();
    }
  }
  pusher.join();
  EXPECT_EQ(buffer.Size(), 0u);
}

// ---------------------------------------------------------------------------
// SnapshotControl: coordinator/tasklet handshake counters.
// ---------------------------------------------------------------------------

TEST(RaceStressTest, SnapshotControlHandshake) {
  constexpr int64_t kSnapshots = kTsan ? 300 : 3'000;
  constexpr int kTasklets = 4;
  core::SnapshotControl control;
  std::vector<std::thread> tasklets;
  std::vector<int64_t> seen(kTasklets, 0);
  for (int t = 0; t < kTasklets; ++t) {
    tasklets.emplace_back([&, t]() {
      int64_t last_acked = 0;
      while (last_acked < kSnapshots) {
        int64_t requested = control.requested.load(std::memory_order_acquire);
        if (requested > last_acked) {
          last_acked = requested;
          seen[t] = requested;
          control.acks.fetch_add(1, std::memory_order_acq_rel);
        }
      }
    });
  }
  for (int64_t id = 1; id <= kSnapshots; ++id) {
    control.requested.store(id, std::memory_order_release);
    while (control.acks.load(std::memory_order_acquire) < id * kTasklets) {
      std::this_thread::yield();
    }
    control.committed.store(id, std::memory_order_release);
  }
  for (auto& t : tasklets) t.join();
  for (int t = 0; t < kTasklets; ++t) EXPECT_EQ(seen[t], kSnapshots);
}

// ---------------------------------------------------------------------------
// ExecutionService: cancellation racing the worker loops.
// ---------------------------------------------------------------------------

class SpinTasklet final : public core::Tasklet {
 public:
  explicit SpinTasklet(std::string name) : name_(std::move(name)) {}
  core::TaskletProgress Call() override {
    work_.fetch_add(1, std::memory_order_relaxed);
    return {true, false};  // endless until cancelled
  }
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  std::atomic<int64_t> work_{0};
};

TEST(RaceStressTest, ExecutionServiceCancelRace) {
  for (int round = 0; round < (kTsan ? 5 : 20); ++round) {
    SpinTasklet a("a"), b("b"), c("c");
    core::ExecutionService service(2);
    ASSERT_TRUE(service.Start({&a, &b, &c}).ok());
    std::thread canceller([&service]() { service.Cancel(); });
    canceller.join();
    ASSERT_TRUE(service.AwaitCompletion().ok());
    EXPECT_TRUE(service.IsComplete());
  }
}

// ---------------------------------------------------------------------------
// Failure detector: monitor + heartbeat pumps + concurrent polling.
// ---------------------------------------------------------------------------

TEST(RaceStressTest, FailureDetectorUnderPolling) {
  net::Network network(net::LinkModel{.base_latency = 50 * kNanosPerMicro, .jitter = 0});
  std::atomic<int32_t> failed_member{-1};
  cluster::HeartbeatFailureDetector::Options options;
  options.heartbeat_interval = 5 * kNanosPerMilli;
  options.suspicion_timeout = 40 * kNanosPerMilli;
  cluster::HeartbeatFailureDetector detector(
      &network, options,
      [&failed_member](int32_t m) { failed_member.store(m, std::memory_order_release); });
  detector.AddMember(1);
  detector.AddMember(2);
  detector.AddMember(3);
  detector.Start();

  std::thread poller([&detector]() {
    for (int i = 0; i < 200; ++i) {
      (void)detector.FailedMembers();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  detector.StopHeartbeats(2);
  WallClock clock;
  Nanos deadline = clock.Now() + 5'000 * kNanosPerMilli;
  while (failed_member.load(std::memory_order_acquire) != 2 && clock.Now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(failed_member.load(std::memory_order_acquire), 2);
  poller.join();
  detector.Stop();
  auto failed = detector.FailedMembers();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], 2);
  network.Shutdown();
}

// ---------------------------------------------------------------------------
// DataGrid listener fast path (PR 10 satellite audit): Put skips the
// listener_mutex_ acquisition entirely when the acquire load of
// listener_count_ reads 0. The claim being verified: registrations are
// inserted under listener_mutex_ BEFORE the release count store, and the
// registry is only ever read back under the same mutex — so a concurrent
// Put can at worst miss a listener whose registration it was never ordered
// after, and can never observe a torn registration. TSan checks the
// ordering while writers hammer Put against add/remove churn; the
// functional half asserts a listener registered before a Put is notified.
// ---------------------------------------------------------------------------

TEST(RaceStressTest, GridListenerChurnVsPutFastPath) {
  constexpr int64_t kPutsPerWriter = kTsan ? 5'000 : 40'000;
  constexpr int kWriters = 2;
  imdg::DataGrid grid(/*backup_count=*/0);
  ASSERT_TRUE(grid.AddMember(0).ok());

  std::atomic<bool> stop_churn{false};
  std::atomic<int64_t> notified{0};
  std::atomic<int64_t> put_failures{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&grid, &put_failures, w]() {
      for (int64_t i = 0; i < kPutsPerWriter; ++i) {
        const Bytes key = {static_cast<uint8_t>(w), static_cast<uint8_t>(i),
                           static_cast<uint8_t>(i >> 8)};
        if (!grid.Put("races", key, Bytes{1}).ok()) {
          put_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Churn: registrations and removals racing the writers' fast-path loads.
  // A torn registration would surface as TSan findings on the std::function
  // state the callback copy reads, or as a crash invoking a half-built
  // callback. Note a listener may legitimately run concurrently on both
  // writer threads (Put invokes copies outside every lock), so the callback
  // touches only atomic state.
  std::thread churn([&grid, &stop_churn, &notified]() {
    while (!stop_churn.load(std::memory_order_acquire)) {
      int64_t id = grid.AddEntryListener(
          "races", [&notified](const Bytes&, const Bytes&) {
            notified.fetch_add(1, std::memory_order_relaxed);
          });
      std::this_thread::yield();
      grid.RemoveEntryListener(id);
    }
  });

  for (auto& t : writers) t.join();
  stop_churn.store(true, std::memory_order_release);
  churn.join();
  EXPECT_EQ(put_failures.load(), 0);

  // Deterministic half: registered-before-Put must be notified, and the
  // count gate must not leak notifications after removal drains.
  std::atomic<int64_t> final_hits{0};
  int64_t id = grid.AddEntryListener(
      "races", [&final_hits](const Bytes&, const Bytes&) {
        final_hits.fetch_add(1, std::memory_order_relaxed);
      });
  ASSERT_TRUE(grid.Put("races", Bytes{0xFF}, Bytes{2}).ok());
  EXPECT_EQ(final_hits.load(), 1);
  grid.RemoveEntryListener(id);
  ASSERT_TRUE(grid.Put("races", Bytes{0xFE}, Bytes{3}).ok());
  EXPECT_EQ(final_hits.load(), 1);
}

// ---------------------------------------------------------------------------
// Single-writer invariant under rebalance storms (PR 10 tentpole): owned
// partition handles do plain, lock-free map mutations; the only thing
// keeping them race-free across scheduler migrations is the 3-step mailbox
// handoff (PrepareWorkerHandoff on the source thread, mailbox mutex,
// OnWorkerAdopted + first Call on the destination). This storm migrates
// owned-writer tasklets continuously — with InjectStall widening the
// windows — while every Call mutates grid state through the handles. TSan
// verifies the handoff edges; the assertions verify ownership followed the
// tasklet and no write was lost.
// ---------------------------------------------------------------------------

// Writes through owned handles on every call; carries its claims across
// worker migrations exactly like the keyed-aggregation processors do.
class OwnedWriterTasklet final : public core::Tasklet {
 public:
  OwnedWriterTasklet(std::string name, imdg::DataGrid* grid, int64_t tasklet_id,
                     std::vector<imdg::PartitionId> partitions,
                     const std::atomic<bool>* stop)
      : name_(std::move(name)), grid_(grid), tasklet_id_(tasklet_id),
        partitions_(std::move(partitions)), stop_(stop) {}

  Status Init() override {
    for (imdg::PartitionId p : partitions_) {
      JET_RETURN_IF_ERROR(grid_->ownership().Claim(p, -1, tasklet_id_));
      auto handle = grid_->AcquireOwnedPartition("storm", p, tasklet_id_);
      JET_RETURN_IF_ERROR(handle.status());
      handles_.push_back(std::move(handle).value());
    }
    return Status::OK();
  }

  core::TaskletProgress Call() override {
    // Oscillating weight (phase-shifted per tasklet): equal-weight tasklets
    // would let the rebalancer converge and stop migrating; shifting which
    // tasklet is heavy every 64 calls keeps the storm blowing.
    const int64_t phase =
        ((writes_.load(std::memory_order_relaxed) >> 6) + tasklet_id_) & 3;
    const Nanos spin_until =
        WallClock::Global().Now() + phase * 50 * kNanosPerMicro;
    while (WallClock::Global().Now() < spin_until) {
    }
    const Bytes key = {static_cast<uint8_t>(tasklet_id_)};
    for (auto& handle : handles_) {
      Status s = handle->Update(key, [](Bytes* v) {
        if (v->empty()) v->assign(8, 0);
        // 64-bit little-endian increment: the final value counts writes.
        for (size_t i = 0; i < v->size(); ++i) {
          if (++(*v)[i] != 0) break;
        }
      });
      if (!s.ok()) {
        error_ = s;
        return {false, true};
      }
    }
    const int64_t done = writes_.fetch_add(1, std::memory_order_acq_rel) + 1;
    // The single-writer check proper: read back through the handle — with
    // exactly one writer the counter must equal this tasklet's own write
    // count, every time, no matter how many workers the tasklet crossed.
    // A concurrent second writer (or a lost write across a handoff) breaks
    // the equality; TSan would additionally flag the plain map access.
    for (auto& handle : handles_) {
      std::optional<Bytes> v = handle->Get(key);
      int64_t counted = 0;
      if (v.has_value()) {
        for (size_t i = 0; i < 8 && i < v->size(); ++i) {
          counted |= static_cast<int64_t>((*v)[i]) << (8 * i);
        }
      }
      if (counted != done) {
        error_ = InternalError("partition " + std::to_string(handle->partition()) +
                               " counted " + std::to_string(counted) +
                               " writes, owner performed " + std::to_string(done));
        return {false, true};
      }
    }
    return {true, stop_->load(std::memory_order_acquire)};
  }

  void PrepareWorkerHandoff() override {
    for (auto& handle : handles_) handle->ReleaseThreadBinding();
  }

  void OnWorkerAdopted(int32_t worker_index) override {
    adoptions_.fetch_add(1, std::memory_order_acq_rel);
    for (imdg::PartitionId p : partitions_) {
      (void)grid_->ownership().Transfer(p, tasklet_id_, worker_index);
    }
  }

  void ReleaseClaims() {
    handles_.clear();
    for (imdg::PartitionId p : partitions_) {
      (void)grid_->ownership().Release(p, tasklet_id_);
    }
  }

  int64_t writes() const { return writes_.load(std::memory_order_acquire); }
  int64_t adoptions() const { return adoptions_.load(std::memory_order_acquire); }
  const Status& error() const { return error_; }
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  imdg::DataGrid* grid_;
  int64_t tasklet_id_;
  std::vector<imdg::PartitionId> partitions_;
  const std::atomic<bool>* stop_;
  std::vector<std::unique_ptr<imdg::OwnedPartitionHandle>> handles_;
  std::atomic<int64_t> writes_{0};
  std::atomic<int64_t> adoptions_{0};
  Status error_;
};

TEST(RaceStressTest, SingleWriterOwnedPartitionsSurviveRebalanceStorm) {
  constexpr int kTasklets = 4;
  constexpr int kPartitionsEach = 2;
  const Nanos kRunFor = (kTsan ? 400 : 800) * kNanosPerMilli;

  imdg::DataGrid grid(/*backup_count=*/0, /*partition_count=*/32);
  ASSERT_TRUE(grid.AddMember(0).ok());

  std::atomic<bool> stop{false};
  obs::MetricsRegistry registry;
  obs::EventLoopProfiler profiler(&registry);
  std::vector<std::unique_ptr<OwnedWriterTasklet>> tasklets;
  std::vector<core::Tasklet*> roster;
  for (int t = 0; t < kTasklets; ++t) {
    std::vector<imdg::PartitionId> mine;
    for (int p = 0; p < kPartitionsEach; ++p) {
      mine.push_back(static_cast<imdg::PartitionId>(t * kPartitionsEach + p));
    }
    tasklets.push_back(std::make_unique<OwnedWriterTasklet>(
        "owned" + std::to_string(t), &grid, t, std::move(mine), &stop));
    roster.push_back(tasklets.back().get());
  }

  core::ExecutionService::Options options;
  options.rebalance_interval = 0;  // storm driven manually below
  options.skew_threshold = 1.01;   // migrate on the slightest imbalance
  options.min_hot_load = 1;
  core::ExecutionService service(2, &profiler, options);
  ASSERT_TRUE(service.Start(roster).ok());

  // The storm: continuous rebalance passes with periodic stalls widening
  // the handoff windows.
  const Nanos until = WallClock::Global().Now() + kRunFor;
  int pass = 0;
  while (WallClock::Global().Now() < until) {
    service.TriggerRebalance();
    if (++pass % 16 == 0) service.InjectStall(kNanosPerMilli / 2);
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  stop.store(true, std::memory_order_release);
  ASSERT_TRUE(service.AwaitCompletion().ok());

  int64_t total_adoptions = 0;
  for (auto& t : tasklets) {
    ASSERT_TRUE(t->error().ok()) << t->name() << ": " << t->error().ToString();
    EXPECT_GT(t->writes(), 0) << t->name();
    total_adoptions += t->adoptions();
  }
  EXPECT_GT(total_adoptions, 0) << "storm never migrated an owned writer";
  EXPECT_GT(grid.ownership().transfers(), 0);
  EXPECT_EQ(grid.ownership().owned_count(), kTasklets * kPartitionsEach);
  for (auto& t : tasklets) t->ReleaseClaims();
  EXPECT_EQ(grid.ownership().owned_count(), 0);
}

// ---------------------------------------------------------------------------
// Deliberate misuse demos (ISSUE 1 acceptance): a second concurrent
// producer on an SpscQueue.
// ---------------------------------------------------------------------------

void RunTwoProducers(SpscQueue<int64_t>* q) {
  std::atomic<bool> go{false};
  auto produce = [q, &go]() {
    while (!go.load(std::memory_order_acquire)) {
    }
    for (int64_t i = 0; i < 50'000; ++i) {
      int64_t v = i;
      (void)q->TryPush(v);
      if ((i & 1023) == 0) {
        int64_t out;
        while (q->SizeApprox() > 64 && q->TryPop(out)) {
        }
      }
    }
  };
  std::thread p1(produce);
  std::thread p2(produce);
  go.store(true, std::memory_order_release);
  p1.join();
  p2.join();
}

#if JETSIM_DEBUG_CHECKS

// With debug checks on, the ownership guard aborts the instant the second
// producer thread touches the queue.
TEST(SpscQueueOwnershipDeathTest, SecondProducerCaughtByGuard) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  SpscQueue<int64_t> q(128);
  ASSERT_DEATH(RunTwoProducers(&q), "ownership.*SpscQueue producer");
}

#else

// With the guard compiled out, the same misuse is a raw data race on the
// head index / slots; ThreadSanitizer reports it. Disabled by default so
// the clean `ctest --preset tsan` run stays green — tools/check.sh --demo
// runs it explicitly and asserts that TSan complains.
TEST(RaceDemo, DISABLED_TwoProducersRaceUnderTsan) {
  SpscQueue<int64_t> q(128);
  RunTwoProducers(&q);
  SUCCEED() << "if TSan is active this test should have died before here";
}

#endif  // JETSIM_DEBUG_CHECKS

}  // namespace
}  // namespace jet
