#ifndef JETSIM_SIM_GC_MODEL_H_
#define JETSIM_SIM_GC_MODEL_H_

#include <algorithm>

#include "common/clock.h"
#include "common/rng.h"

namespace jet::sim {

/// Model of a G1-style concurrent collector configured with a small pause
/// target, as in §7.1 ("the G1 garbage collector is configured with a GC
/// pause target of at most 5 milliseconds. It does most of the GC work
/// concurrently").
///
/// Young-generation pauses arrive when the allocation rate fills the young
/// gen; their duration clusters around the pause target. Rare mixed and
/// full-ish pauses are one and two orders of magnitude longer — they are
/// what populates the latency tail above p99.9 (§5 "garbage collection is
/// recognized as one of the hidden performance enemies of stream
/// processing").
struct GcConfig {
  /// Bytes of garbage allocated per processed event (boxing, lambdas,
  /// intermediate records on the JVM).
  double alloc_bytes_per_event = 500;
  /// Allocation unrelated to the event rate (metrics, networking, cluster
  /// heartbeats) — keeps collections occurring at low load too.
  double baseline_alloc_bytes_per_second = 1.5e8;
  /// Young generation size; fills at alloc_rate and triggers a pause.
  double young_gen_bytes = 2.0e9;
  /// Young pause duration (lognormal-ish around the 5 ms target).
  double young_pause_mean_ms = 2.5;
  double young_pause_sd_ms = 0.8;
  /// Fraction of collections that are mixed (old regions included).
  double mixed_probability = 0.012;
  double mixed_pause_mean_ms = 8.0;
  double mixed_pause_sd_ms = 2.5;
  /// Very rare long stalls (humongous allocation / to-space exhaustion).
  double full_probability = 0.0004;
  double full_pause_mean_ms = 45.0;
  double full_pause_sd_ms = 15.0;
};

/// Per-node GC pause generator. Call `NextInterval` / `NextPause` at each
/// collection point.
class GcModel {
 public:
  GcModel(GcConfig config, double node_events_per_second, uint64_t seed)
      : config_(config), rng_(seed) {
    double alloc_rate = node_events_per_second * config_.alloc_bytes_per_event +
                        config_.baseline_alloc_bytes_per_second;
    mean_interval_ns_ =
        alloc_rate <= 0 ? 1e18 : config_.young_gen_bytes / alloc_rate * 1e9;
  }

  /// Nanoseconds until the next collection (exponential around the mean
  /// fill time, floored so the model stays sane at tiny rates).
  Nanos NextInterval() {
    double interval = rng_.NextExponential(mean_interval_ns_);
    return static_cast<Nanos>(std::max(interval, 1e6));
  }

  /// Duration of one pause.
  Nanos NextPause() {
    double u = rng_.NextDouble();
    double ms;
    if (u < config_.full_probability) {
      ms = rng_.NextGaussian(config_.full_pause_mean_ms, config_.full_pause_sd_ms);
    } else if (u < config_.full_probability + config_.mixed_probability) {
      ms = rng_.NextGaussian(config_.mixed_pause_mean_ms, config_.mixed_pause_sd_ms);
    } else {
      ms = rng_.NextGaussian(config_.young_pause_mean_ms, config_.young_pause_sd_ms);
    }
    return static_cast<Nanos>(std::max(ms, 0.3) * 1e6);
  }

  double mean_interval_ns() const { return mean_interval_ns_; }

 private:
  GcConfig config_;
  Rng rng_;
  double mean_interval_ns_;
};

}  // namespace jet::sim

#endif  // JETSIM_SIM_GC_MODEL_H_
