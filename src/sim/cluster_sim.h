#ifndef JETSIM_SIM_CLUSTER_SIM_H_
#define JETSIM_SIM_CLUSTER_SIM_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/histogram.h"
#include "sim/gc_model.h"

namespace jet::sim {

/// Per-query cost/shape profile driving the simulator. Costs are per-item
/// CPU time on one core; they subsume the whole fused stage (source +
/// transforms). Calibrated so a simple stateless query sustains ~2M
/// events/s/core, matching §4.6's "2M events per second per CPU core".
struct QueryProfile {
  std::string name = "q5";
  /// True for queries with a keyed windowed stage (two-stage aggregation);
  /// false for per-event queries (map/filter/side-input join).
  bool windowed = true;
  /// Stage-1 cost per input event (source + stateless transforms +
  /// keyed accumulation when windowed).
  double stage1_cost_ns = 420;
  /// Cost per partial accumulator combined at the stage-2 owner.
  double combine_cost_ns = 120;
  /// Cost to emit one window result (finish + sink).
  double emit_cost_ns = 160;
  /// Fraction of input events surviving to the output (stateless queries).
  double selectivity = 1.0;
  /// Fraction of the key space participating in each window's output
  /// (windowed joins emit only matching keys; aggregations emit all
  /// active keys).
  double output_key_fraction = 1.0;
};

/// Built-in profiles for the paper's query set.
QueryProfile ProfileForQuery(int query_number);

/// Cluster + workload configuration, defaulted to the paper's §7.1 setup.
struct SimConfig {
  int32_t nodes = 1;
  /// Cooperative threads per node ("12 cooperative threads per node").
  int32_t cores_per_node = 12;
  /// Total ingest rate across the cluster.
  double events_per_second = 1e6;
  /// Simulated measurement time (paper: 240 s) and warm-up (20 s).
  Nanos duration = 60 * kNanosPerSecond;
  Nanos warmup = 5 * kNanosPerSecond;
  int64_t keys = 10'000;
  Nanos window_size = 10 * kNanosPerSecond;
  Nanos window_slide = 10 * kNanosPerMilli;
  Nanos wm_interval = kNanosPerMilli;
  QueryProfile profile;

  /// Network hop between members (§3.3 link + exchange overhead).
  Nanos net_base_latency = 150 * kNanosPerMicro;
  Nanos net_jitter = 120 * kNanosPerMicro;

  GcConfig gc;

  /// Exactly-once snapshotting (Fig 13): when enabled, every
  /// `snapshot_interval` processing stalls while the aligned barriers
  /// drain and the state serializes into the IMDG (§4.4).
  bool exactly_once = false;
  /// At-least-once snapshotting (§4.4: "channels do not need to block,
  /// decreasing latency"; §7.6 names this the planned optimization):
  /// unaligned barriers let processing continue while state serializes,
  /// so only this fraction of the serialization time stalls the pipeline.
  bool at_least_once = false;
  double at_least_once_stall_fraction = 0.15;
  Nanos snapshot_interval = kNanosPerSecond;
  /// Serialized bytes per (key, frame) state cell.
  double state_bytes_per_cell = 24;
  /// State serialization + grid replication throughput per node.
  double snapshot_bytes_per_second = 1.6e9;

  /// Concurrent identical jobs sharing the cluster (§7.7 multi-tenancy).
  int32_t concurrent_jobs = 1;
  /// When false (default), jobs submitted together share the window epoch,
  /// so their emission bursts collide. True staggers each job's window
  /// phase uniformly across the slide (ablation: burst de-alignment).
  bool stagger_job_phases = false;

  /// Simulation tick. Smaller = finer queueing resolution.
  Nanos tick = kNanosPerMilli;
  uint64_t seed = 1234;
};

/// Result of one simulated run.
struct SimResult {
  /// End-to-end latency per §7.1: event occurrence (or window end) to
  /// result emission, in nanoseconds.
  Histogram latency;
  /// Input events processed per second of simulated time.
  double achieved_throughput = 0;
  /// Output results per second.
  double output_throughput = 0;
  /// Mean utilization of the busiest core (work / wall).
  double peak_utilization = 0;
  /// True when backlogs diverged (offered load beyond capacity).
  bool saturated = false;
  int64_t gc_pause_count = 0;
  Nanos max_gc_pause = 0;
  Nanos max_backlog = 0;
};

/// Runs the fluid/tick cluster simulation and returns the latency
/// distribution. Deterministic for a given config (seeded).
SimResult RunClusterSim(const SimConfig& config);

}  // namespace jet::sim

#endif  // JETSIM_SIM_CLUSTER_SIM_H_
