#include "sim/cluster_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace jet::sim {

QueryProfile ProfileForQuery(int query_number) {
  QueryProfile p;
  switch (query_number) {
    case 1:  // currency conversion: map
      p = {"q1", /*windowed=*/false, /*stage1=*/170, 0, /*emit=*/60, /*sel=*/0.92, 0};
      break;
    case 2:  // selection: filter
      p = {"q2", false, 150, 0, 60, 0.008, 0};
      break;
    case 3:  // person/auction window join, filtered
      p = {"q3", true, 300, 110, 150, 1.0, /*out_keys=*/0.004};
      break;
    case 4:  // auction/bid join + category average
      p = {"q4", true, 380, 120, 150, 1.0, 0.05};
      break;
    case 5:  // hot items: sliding count per auction (the stress query)
      p = {"q5", true, 380, 260, 330, 1.0, 1.0};
      break;
    case 6:  // winning bids, avg of last 10 per seller
      p = {"q6", true, 400, 130, 160, 1.0, 0.08};
      break;
    case 7:  // highest bid per period
      p = {"q7", true, 320, 100, 140, 1.0, 0.0002};
      break;
    case 8:  // new users who created auctions: person/auction window join
      p = {"q8", true, 330, 110, 150, 1.0, 0.015};
      break;
    case 13:  // bounded side-input hash join: per-event lookup
      p = {"q13", false, 210, 0, 70, 1.0, 0};
      break;
    default:
      p = {"custom", true, 380, 260, 330, 1.0, 1.0};
      break;
  }
  return p;
}

namespace {

struct CoreState {
  double backlog_ns = 0;  // queued work, in ns of service time
};

struct NodeState {
  Nanos gc_until = 0;
  Nanos next_gc = 0;
  std::vector<CoreState> cores;
};

// Stall overlap of [t, t+tick) with [0, stall_until).
Nanos StallOverlap(Nanos t, Nanos tick, Nanos stall_until) {
  if (stall_until <= t) return 0;
  return std::min(stall_until - t, tick);
}

}  // namespace

SimResult RunClusterSim(const SimConfig& config) {
  SimResult result;
  Rng rng(config.seed);

  const int32_t total_cores = config.nodes * config.cores_per_node;
  const double per_job_rate =
      config.events_per_second / std::max(1, config.concurrent_jobs);
  const double core_rate = config.events_per_second / total_cores;
  const double tick_sec = static_cast<double>(config.tick) / 1e9;

  // --- derived workload quantities (per job) ---
  const double events_per_slide =
      per_job_rate * static_cast<double>(config.window_slide) / 1e9;
  const double events_per_window =
      per_job_rate * static_cast<double>(config.window_size) / 1e9;
  const auto keys_d = static_cast<double>(config.keys);
  // Poisson occupancy: distinct keys hit by m uniform draws over K keys.
  auto active_keys = [keys_d](double draws) {
    return keys_d * (1.0 - std::exp(-draws / keys_d));
  };
  // Partials arriving per combiner per slide (one job): each stage-1
  // instance flushes its frame's active keys; the per-instance dedup is
  // what bounds exchange volume by the key-set size (§3.1 two-stage
  // combining — the effect behind Fig 10's constant exchange volume).
  const double partials_per_combiner = active_keys(events_per_slide / total_cores);
  const double window_keys = active_keys(events_per_window);
  const double out_keys_per_combiner =
      window_keys * config.profile.output_key_fraction / total_cores;

  // --- GC ---
  // Result emission allocates too (boxed results, map entries), so the
  // output rate drives collections alongside the input rate.
  const double output_events_per_second =
      config.profile.windowed
          ? out_keys_per_combiner * total_cores * config.concurrent_jobs *
                (1e9 / static_cast<double>(config.window_slide))
          : config.events_per_second * config.profile.selectivity;
  const double node_rate =
      (config.events_per_second + output_events_per_second) / config.nodes;
  std::vector<NodeState> nodes(static_cast<size_t>(config.nodes));
  std::vector<GcModel> gc_models;
  gc_models.reserve(nodes.size());
  for (size_t n = 0; n < nodes.size(); ++n) {
    nodes[n].cores.resize(static_cast<size_t>(config.cores_per_node));
    gc_models.emplace_back(config.gc, node_rate, config.seed + 17 * (n + 1));
    nodes[n].next_gc = gc_models[n].NextInterval();
  }

  // --- snapshots (Fig 13) ---
  // Retained state: stage-2 keeps window_size/slide frames of partial
  // accumulators per active key (plus stage-1 open frames, a small
  // fraction). Serialization + sync replication to the backup member
  // stalls processing while the aligned barriers drain (§4.4).
  Nanos snapshot_stall = 0;
  if (config.exactly_once || config.at_least_once) {
    double frames_per_window = static_cast<double>(config.window_size) /
                               static_cast<double>(config.window_slide);
    double cells = active_keys(events_per_slide) * frames_per_window *
                   config.concurrent_jobs;
    double bytes_per_node =
        2.0 /*primary+backup*/ * cells * config.state_bytes_per_cell / config.nodes;
    snapshot_stall = static_cast<Nanos>(bytes_per_node /
                                        config.snapshot_bytes_per_second * 1e9);
    if (config.at_least_once && !config.exactly_once) {
      snapshot_stall = static_cast<Nanos>(static_cast<double>(snapshot_stall) *
                                          config.at_least_once_stall_fraction);
    }
  }
  Nanos next_snapshot = (config.exactly_once || config.at_least_once)
                            ? config.snapshot_interval
                                            : std::numeric_limits<Nanos>::max();
  Nanos snapshot_stall_until = 0;

  // --- per-job window phases (aligned by default: concurrently submitted
  // jobs share the epoch, so emission bursts collide — §7.7) ---
  std::vector<Nanos> next_window(static_cast<size_t>(config.concurrent_jobs),
                                 config.window_slide);
  if (config.stagger_job_phases) {
    for (size_t j = 0; j < next_window.size(); ++j) {
      next_window[j] += static_cast<Nanos>(
          rng.NextBounded(static_cast<uint64_t>(config.window_slide)));
    }
  }

  const double stage1_work_per_tick =
      core_rate * tick_sec * config.profile.stage1_cost_ns *
      1.0;  // all jobs combined: core_rate is already the total

  // Stateless queries emit per event.
  const double stateless_emit_per_tick =
      config.profile.windowed
          ? 0
          : core_rate * tick_sec * config.profile.selectivity * config.profile.emit_cost_ns;

  double total_arrived_work = 0;
  double total_served_work = 0;
  double output_count_rate = 0;

  const Nanos end = config.duration;
  for (Nanos t = 0; t < end; t += config.tick) {
    const bool measuring = t >= config.warmup;

    // GC pause arrivals.
    for (size_t n = 0; n < nodes.size(); ++n) {
      NodeState& node = nodes[n];
      while (t >= node.next_gc) {
        Nanos pause = gc_models[n].NextPause();
        node.gc_until = std::max(node.gc_until, node.next_gc) + pause;
        node.next_gc += gc_models[n].NextInterval() + pause;
        ++result.gc_pause_count;
        result.max_gc_pause = std::max(result.max_gc_pause, pause);
      }
    }

    // Snapshot stalls.
    if (t >= next_snapshot) {
      snapshot_stall_until = t + snapshot_stall;
      next_snapshot += config.snapshot_interval;
    }

    // Advance cores: arrivals then service.
    for (size_t n = 0; n < nodes.size(); ++n) {
      NodeState& node = nodes[n];
      Nanos gc_stall = StallOverlap(t, config.tick, node.gc_until);
      Nanos snap_stall = StallOverlap(t, config.tick, snapshot_stall_until);
      auto avail =
          static_cast<double>(config.tick - std::min(config.tick, gc_stall + snap_stall));
      for (CoreState& core : node.cores) {
        double arrivals = stage1_work_per_tick + stateless_emit_per_tick;
        total_arrived_work += arrivals;
        core.backlog_ns += arrivals;
        double served = std::min(core.backlog_ns, avail);
        core.backlog_ns -= served;
        total_served_work += served;
        result.max_backlog =
            std::max(result.max_backlog, static_cast<Nanos>(core.backlog_ns));

        // Per-event latency recording for stateless queries: an event
        // arriving this tick waits for the backlog, any active stall, and
        // its own processing.
        if (!config.profile.windowed && measuring) {
          double events = core_rate * tick_sec * config.profile.selectivity;
          if (events > 0) {
            // Floor: queue hops plus the parked worker's wake-up latency
            // (the back-off idle strategy parks up to ~100us, §3.2).
            constexpr double kSchedulingFloorNs = 120'000;
            auto stall_residual = static_cast<double>(
                std::max<Nanos>(0, std::max(node.gc_until, snapshot_stall_until) - t));
            double base = kSchedulingFloorNs + core.backlog_ns + stall_residual +
                          config.profile.stage1_cost_ns + config.profile.emit_cost_ns;
            // Three sample points spread the intra-tick arrival jitter.
            result.latency.RecordN(static_cast<int64_t>(base),
                                   static_cast<int64_t>(events / 3) + 1);
            result.latency.RecordN(static_cast<int64_t>(base * 0.7 + 1),
                                   static_cast<int64_t>(events / 3) + 1);
            result.latency.RecordN(
                static_cast<int64_t>(base * 0.4 + config.profile.stage1_cost_ns),
                static_cast<int64_t>(events / 3) + 1);
            if (measuring) output_count_rate += events;
          }
        }
      }
    }

    // Window triggers (per job, at every slide boundary inside this tick).
    if (config.profile.windowed) {
      for (size_t j = 0; j < next_window.size(); ++j) {
        while (next_window[j] <= t + config.tick) {
          Nanos window_end = next_window[j];
          next_window[j] += config.window_slide;
          if (window_end < config.window_size) continue;  // window still filling

          // Stage-1 watermark lag: the slowest core in the cluster gates
          // the trigger (coalesced watermark = min over inputs).
          double max_d1 = 0;
          for (const NodeState& node : nodes) {
            auto gc_residual = static_cast<double>(
                std::max<Nanos>(0, std::max(node.gc_until, snapshot_stall_until) - t));
            for (const CoreState& core : node.cores) {
              max_d1 = std::max(max_d1, core.backlog_ns + gc_residual);
            }
          }
          double net = 0;
          if (config.nodes > 1) {
            net = static_cast<double>(config.net_base_latency) +
                  (config.net_jitter > 0
                       ? static_cast<double>(rng.NextBounded(
                             static_cast<uint64_t>(config.net_jitter)))
                       : 0);
          }

          // Each combiner core folds this job's partials and emits the
          // job's share of the window's results as a burst. The derived
          // quantities are already per-job (they use per_job_rate).
          double combine_work = partials_per_combiner * config.profile.combine_cost_ns;
          double emit_work = out_keys_per_combiner * config.profile.emit_cost_ns;

          for (NodeState& node : nodes) {
            auto gc_residual = static_cast<double>(
                std::max<Nanos>(0, std::max(node.gc_until, snapshot_stall_until) - t));
            for (CoreState& core : node.cores) {
              double d2 = core.backlog_ns + gc_residual;
              core.backlog_ns += combine_work + emit_work;
              total_arrived_work += combine_work + emit_work;
              if (!measuring) continue;
              double base = static_cast<double>(config.wm_interval) + max_d1 + net + d2 +
                            combine_work;
              double emission_time = emit_work;
              constexpr int kRampBuckets = 6;
              auto weight = static_cast<int64_t>(
                  std::max(1.0, out_keys_per_combiner / kRampBuckets));
              for (int b = 0; b < kRampBuckets; ++b) {
                double lat =
                    base + (b + 0.5) / kRampBuckets * emission_time +
                    config.profile.emit_cost_ns;
                result.latency.RecordN(static_cast<int64_t>(lat), weight);
              }
              output_count_rate += out_keys_per_combiner;
            }
          }
        }
      }
    }

    // Early exit on divergence.
    if (result.max_backlog > kNanosPerSecond) {
      result.saturated = true;
    }
  }

  double measured_sec =
      static_cast<double>(config.duration - config.warmup) / 1e9;
  result.output_throughput = output_count_rate / std::max(measured_sec, 1e-9);
  result.peak_utilization =
      total_served_work /
      (static_cast<double>(total_cores) * static_cast<double>(config.duration));
  if (total_arrived_work > 0 && total_served_work / total_arrived_work < 0.98) {
    result.saturated = true;
  }
  result.achieved_throughput =
      config.events_per_second *
      (total_arrived_work > 0 ? total_served_work / total_arrived_work : 1.0);
  return result;
}

}  // namespace jet::sim
