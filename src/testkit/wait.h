#ifndef JETSIM_TESTKIT_WAIT_H_
#define JETSIM_TESTKIT_WAIT_H_

#include <chrono>
#include <functional>
#include <thread>

#include "common/clock.h"

namespace jet::testkit {

/// Polls `pred` every `poll_interval` until it returns true or `timeout`
/// elapses. Returns whether the predicate became true. Replaces fixed
/// sleeps in tests: the wait ends the moment the condition holds, and a
/// generous timeout costs nothing on the happy path.
inline bool WaitUntil(const std::function<bool()>& pred, Nanos timeout,
                      Nanos poll_interval = kNanosPerMilli) {
  WallClock clock;
  Nanos deadline = clock.Now() + timeout;
  while (true) {
    if (pred()) return true;
    if (clock.Now() >= deadline) return pred();
    std::this_thread::sleep_for(std::chrono::nanoseconds(poll_interval));
  }
}

/// Asserts the negative: returns true iff `pred` stayed false for the whole
/// `duration` (e.g. "no spurious failure detection"). Exits early (false)
/// as soon as the predicate fires.
inline bool HeldFalseFor(const std::function<bool()>& pred, Nanos duration,
                         Nanos poll_interval = kNanosPerMilli) {
  return !WaitUntil(pred, duration, poll_interval);
}

}  // namespace jet::testkit

#endif  // JETSIM_TESTKIT_WAIT_H_
