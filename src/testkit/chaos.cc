#include "testkit/chaos.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "imdg/snapshot_store.h"
#include "testkit/wait.h"

namespace jet::testkit {

namespace {

std::string NanosToMsString(Nanos t) {
  return std::to_string(NanosToMillis(t)) + "ms";
}

}  // namespace

std::string ChaosEvent::ToString() const {
  std::string s = "+" + NanosToMsString(at) + " ";
  switch (type) {
    case ChaosEventType::kKillNode:
      return s + "kill(" + std::to_string(a) + ")";
    case ChaosEventType::kAddNode:
      return s + "join(" + std::to_string(a) + ")";
    case ChaosEventType::kPartition:
      return s + "partition(" + std::to_string(a) + "," + std::to_string(b) + ")";
    case ChaosEventType::kHeal:
      return s + "heal(" + std::to_string(a) + "," + std::to_string(b) + ")";
    case ChaosEventType::kDelaySpike:
      return s + "delay(" + std::to_string(a) + "," + std::to_string(b) + ",+" +
             NanosToMsString(latency) + ")";
    case ChaosEventType::kClearLink:
      return s + "clear(" + std::to_string(a) + "," + std::to_string(b) + ")";
    case ChaosEventType::kStallWorker:
      return s + "stall(" + std::to_string(a) + "," + NanosToMsString(duration) + ")";
  }
  return s + "?";
}

std::string TimelineToString(const std::vector<ChaosEvent>& timeline) {
  std::string s;
  for (const auto& e : timeline) {
    if (!s.empty()) s += " ";
    s += e.ToString();
  }
  return s;
}

std::vector<ChaosEvent> GenerateTimeline(uint64_t seed,
                                         const ChaosTimelineOptions& options) {
  Rng rng(seed);
  std::vector<ChaosEvent> timeline;

  // Mirror of the cluster state the timeline will produce. Joined members
  // get the ids JetCluster::AddNode will assign (next_node_id_ counts up
  // from initial_nodes).
  std::vector<int32_t> alive;
  for (int32_t i = 0; i < options.initial_nodes; ++i) alive.push_back(i);
  int32_t next_id = options.initial_nodes;
  int32_t kills = 0;
  // At most one link fault (partition or delay) open at a time, so the
  // cluster can always make progress again once its heal/clear fires, and
  // heals never accidentally clear an unrelated fault on the same pair.
  bool link_fault_open = false;
  std::pair<int32_t, int32_t> open_pair{-1, -1};
  bool open_is_partition = false;
  Nanos open_since = 0;

  const Nanos span = std::max<Nanos>(options.horizon - options.start_after, 1);
  const int32_t n = std::max<int32_t>(options.events, 1);

  auto pick_alive = [&](int32_t exclude = -1) {
    int32_t candidate;
    do {
      candidate = alive[rng.NextBounded(alive.size())];
    } while (candidate == exclude);
    return candidate;
  };

  auto close_open_fault = [&](Nanos at) {
    ChaosEvent e;
    e.at = at;
    e.type = open_is_partition ? ChaosEventType::kHeal : ChaosEventType::kClearLink;
    e.a = open_pair.first;
    e.b = open_pair.second;
    timeline.push_back(e);
    link_fault_open = false;
  };

  for (int32_t i = 0; i < n; ++i) {
    // Evenly spread slots with seeded jitter inside each slot.
    Nanos slot = span / n;
    Nanos at = options.start_after + slot * i +
               static_cast<Nanos>(rng.NextBounded(static_cast<uint64_t>(
                   std::max<Nanos>(slot / 2, 1))));

    // Close a long-open link fault before scheduling more mayhem on top.
    if (link_fault_open && at - open_since > span / 3) {
      close_open_fault(at);
      continue;
    }

    enum { kKill, kJoin, kPart, kDelay, kStall };
    std::vector<int> choices;
    if (kills < options.max_kills &&
        static_cast<int32_t>(alive.size()) > options.min_alive) {
      choices.push_back(kKill);
    }
    if (options.allow_join) choices.push_back(kJoin);
    if (options.allow_partition && !link_fault_open && alive.size() >= 2) {
      choices.push_back(kPart);
    }
    if (options.allow_delay && !link_fault_open && alive.size() >= 2) {
      choices.push_back(kDelay);
    }
    if (options.allow_stall) choices.push_back(kStall);
    if (choices.empty()) continue;

    ChaosEvent e;
    e.at = at;
    switch (choices[rng.NextBounded(choices.size())]) {
      case kKill: {
        e.type = ChaosEventType::kKillNode;
        e.a = pick_alive();
        alive.erase(std::find(alive.begin(), alive.end(), e.a));
        ++kills;
        break;
      }
      case kJoin: {
        e.type = ChaosEventType::kAddNode;
        e.a = next_id++;
        alive.push_back(e.a);
        break;
      }
      case kPart: {
        e.type = ChaosEventType::kPartition;
        e.a = pick_alive();
        e.b = pick_alive(e.a);
        link_fault_open = true;
        open_pair = {e.a, e.b};
        open_is_partition = true;
        open_since = at;
        break;
      }
      case kDelay: {
        e.type = ChaosEventType::kDelaySpike;
        e.a = pick_alive();
        e.b = pick_alive(e.a);
        e.latency = static_cast<Nanos>(1 + rng.NextBounded(4)) * kNanosPerMilli;
        link_fault_open = true;
        open_pair = {e.a, e.b};
        open_is_partition = false;
        open_since = at;
        break;
      }
      case kStall: {
        e.type = ChaosEventType::kStallWorker;
        e.a = pick_alive();
        e.duration = static_cast<Nanos>(30 + rng.NextBounded(120)) * kNanosPerMilli;
        break;
      }
    }
    timeline.push_back(e);
  }

  // Every fault ends: close any open partition/delay at the horizon.
  if (link_fault_open) close_open_fault(options.horizon);

  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const ChaosEvent& x, const ChaosEvent& y) { return x.at < y.at; });
  return timeline;
}

// ---------------------------------------------------------------------------
// ChaosScheduler
// ---------------------------------------------------------------------------

ChaosScheduler::ChaosScheduler(cluster::JetCluster* cluster,
                               std::vector<ChaosEvent> timeline, bool unattended)
    : cluster_(cluster), timeline_(std::move(timeline)), unattended_(unattended) {
  std::stable_sort(timeline_.begin(), timeline_.end(),
                   [](const ChaosEvent& x, const ChaosEvent& y) { return x.at < y.at; });
}

Status ChaosScheduler::Apply(const ChaosEvent& event) {
  net::Network& network = cluster_->network();
  switch (event.type) {
    case ChaosEventType::kKillNode: {
      // Unattended: fail-stop only; eviction and restart are the control
      // plane's job. Scripted: KillNode does the whole recovery inline.
      if (unattended_) {
        Status s = cluster_->CrashNode(event.a);
        // The control plane may have transiently evicted the target (e.g.
        // a partition minority); crashing an already-gone member is moot.
        if (s.code() == StatusCode::kNotFound) return Status::OK();
        return s;
      }
      return cluster_->KillNode(event.a);
    }
    case ChaosEventType::kAddNode: {
      auto added = cluster_->AddNode();
      if (!added.ok()) return added.status();
      if (*added != event.a) {
        return InternalError("timeline expected joined id " + std::to_string(event.a) +
                             ", cluster assigned " + std::to_string(*added));
      }
      return Status::OK();
    }
    case ChaosEventType::kPartition:
      network.Partition(event.a, event.b);
      return Status::OK();
    case ChaosEventType::kHeal:
      // Unattended: just unblock the link; the health monitor notices the
      // heal and the supervisor resumes or restarts on its own. Scripted:
      // stop-heal-restart (see JetCluster::RecoverAfterFault for why the
      // attempt must stop before the link comes back).
      if (unattended_) {
        network.Heal(event.a, event.b);
        return Status::OK();
      }
      return cluster_->RecoverAfterFault(
          [&network, &event]() { network.Heal(event.a, event.b); });
    case ChaosEventType::kClearLink:
      // Delay spikes lose no messages, so no recovery is needed — but never
      // clear a pair that is (unexpectedly) partitioned.
      if (!network.IsBlocked(event.a, event.b)) {
        network.SetLinkFault(event.a, event.b, net::FaultPlan{});
        network.SetLinkFault(event.b, event.a, net::FaultPlan{});
      }
      return Status::OK();
    case ChaosEventType::kDelaySpike: {
      net::FaultPlan plan;
      plan.extra_latency = event.latency;
      network.SetLinkFault(event.a, event.b, plan);
      network.SetLinkFault(event.b, event.a, plan);
      return Status::OK();
    }
    case ChaosEventType::kStallWorker: {
      Status s = cluster_->StallNode(event.a, event.duration);
      if (unattended_ && s.code() == StatusCode::kNotFound) return Status::OK();
      return s;
    }
  }
  return InternalError("unknown chaos event");
}

Status ChaosScheduler::Run() {
  WallClock clock;
  const Nanos start = clock.Now();
  for (const ChaosEvent& event : timeline_) {
    Nanos now = clock.Now();
    if (start + event.at > now) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(start + event.at - now));
    }
    Status s = Apply(event);
    log_.push_back(event.ToString() + (s.ok() ? "" : " -> " + s.ToString()));
    table_versions_.push_back(cluster_->grid().TableVersion());
    if (!s.ok()) return s;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ClusterFixture
// ---------------------------------------------------------------------------

namespace {

struct AuctionEvent {
  uint64_t auction = 0;
};

}  // namespace

ClusterFixture::ClusterFixture(FixtureOptions options) : options_(options) {
  cluster::ClusterConfig config;
  config.initial_nodes = options_.initial_nodes;
  config.threads_per_node = options_.threads_per_node;
  config.backup_count = options_.backup_count;
  config.supervisor = options_.supervisor;
  cluster_ = std::make_unique<cluster::JetCluster>(config);
  collector_ = std::make_shared<core::SyncCollector<core::WindowResult<int64_t>>>();
}

Status ClusterFixture::SubmitWindowedJob() {
  using core::ProcessorMeta;
  const double rate = options_.events_per_second;
  const Nanos duration = options_.source_duration;
  const int64_t keys = options_.key_count;
  core::WindowDef window = core::WindowDef::Tumbling(options_.window_size);
  auto op = core::CountingAggregate<AuctionEvent>();

  auto source = dag_.AddVertex(
      "bids",
      [rate, duration, keys](const ProcessorMeta&) -> std::unique_ptr<core::Processor> {
        core::GeneratorSourceP<AuctionEvent>::Options opt;
        opt.events_per_second = rate;
        opt.duration = duration;
        opt.watermark_interval = 5 * kNanosPerMilli;
        return std::make_unique<core::GeneratorSourceP<AuctionEvent>>(
            [keys](int64_t seq) {
              AuctionEvent e{static_cast<uint64_t>(seq % keys)};
              return std::make_pair(e, HashU64(e.auction));
            },
            opt);
      },
      1);
  auto accumulate = dag_.AddVertex(
      "accumulate",
      [op, window](const ProcessorMeta&) {
        return std::make_unique<core::AccumulateByFrameP<AuctionEvent, int64_t, int64_t>>(
            op, [](const AuctionEvent& e) { return e.auction; }, window);
      },
      1);
  auto combine = dag_.AddVertex(
      "combine",
      [op, window](const ProcessorMeta&) {
        return std::make_unique<core::CombineFramesP<AuctionEvent, int64_t, int64_t>>(
            op, window);
      },
      1);
  auto sink = dag_.AddVertex(
      "sink",
      [collector = collector_](const ProcessorMeta&) {
        return std::make_unique<core::CollectSinkP<core::WindowResult<int64_t>>>(
            collector);
      },
      1);
  dag_.AddEdge(source, accumulate);
  auto& exchange = dag_.AddEdge(accumulate, combine);
  exchange.routing = core::RoutingPolicy::kPartitioned;
  exchange.distributed = true;
  dag_.AddEdge(combine, sink);

  core::JobConfig config;
  config.guarantee = core::ProcessingGuarantee::kExactlyOnce;
  config.snapshot_interval = options_.snapshot_interval;
  config.serialize_exchange_frames = options_.serialize_exchange_frames;
  auto job = cluster_->SubmitJob(&dag_, config, options_.job_id);
  if (!job.ok()) return job.status();
  job_ = *job;
  return Status::OK();
}

bool ClusterFixture::WaitForCommittedSnapshot(int64_t min_id, Nanos timeout) {
  if (job_ == nullptr) return false;
  return WaitUntil([this, min_id]() { return job_->last_committed_snapshot() >= min_id; },
                   timeout);
}

Status ClusterFixture::JoinJob() {
  if (job_ == nullptr) return FailedPreconditionError("no job submitted");
  return job_->Join();
}

int64_t ClusterFixture::expected_total() const {
  // Mirror GeneratorSourceP: the emission period is truncated to whole
  // nanoseconds and events exist for every seq with seq * period < duration.
  auto period = static_cast<Nanos>(1e9 / options_.events_per_second);
  if (period < 1) period = 1;
  return (options_.source_duration + period - 1) / period;
}

Result<int64_t> ClusterFixture::DistinctTotal() const {
  std::map<std::pair<uint64_t, Nanos>, int64_t> distinct;
  for (const auto& r : collector_->Snapshot()) {
    auto [it, inserted] = distinct.insert({{r.key, r.window_end}, r.value});
    if (!inserted && it->second != r.value) {
      return InternalError("conflicting duplicate window result for key " +
                           std::to_string(r.key) + ": " + std::to_string(it->second) +
                           " vs " + std::to_string(r.value));
    }
  }
  int64_t total = 0;
  for (const auto& [kw, v] : distinct) total += v;
  return total;
}

Status ClusterFixture::VerifyExactlyOnce() const {
  auto total = DistinctTotal();
  if (!total.ok()) return total.status();
  if (*total != expected_total()) {
    return InternalError("exactly-once violated: expected " +
                         std::to_string(expected_total()) + " events, counted " +
                         std::to_string(*total));
  }
  return Status::OK();
}

Status ClusterFixture::VerifyDeliveryAccounting() {
  net::Network& network = cluster_->network();
  // Flush: after Shutdown every message is either delivered or dropped.
  network.Shutdown();
  int64_t sent = network.sent_count();
  int64_t delivered = network.delivered_count();
  int64_t dropped = network.dropped_count();
  if (sent != delivered + dropped) {
    return InternalError("delivery accounting leak: sent=" + std::to_string(sent) +
                         " delivered=" + std::to_string(delivered) +
                         " dropped=" + std::to_string(dropped));
  }
  return Status::OK();
}

Status ClusterFixture::VerifyClusterInvariants() const {
  JET_RETURN_IF_ERROR(cluster_->grid().ValidateTable());
  // No lost IMDG backups: every live snapshot epoch of the job must be
  // replica-consistent after all the membership churn.
  for (int64_t snapshot : cluster_->snapshot_store().LiveSnapshots(options_.job_id)) {
    JET_RETURN_IF_ERROR(cluster_->grid().CheckReplicaConsistency(
        imdg::SnapshotStore::MapNameFor(options_.job_id, snapshot)));
  }
  return Status::OK();
}

}  // namespace jet::testkit
