#ifndef JETSIM_TESTKIT_CHAOS_H_
#define JETSIM_TESTKIT_CHAOS_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/jet_cluster.h"
#include "common/clock.h"
#include "common/status.h"
#include "core/dag.h"
#include "core/processors_basic.h"
#include "core/processors_window.h"

namespace jet::testkit {

/// Deterministic fault-injection harness for the real engine (§4.4, §7.6):
/// scripted or seeded-random timelines of member kills, joins, link
/// partitions, delay spikes and GC-style stalls execute against a live
/// jet::cluster, and the recovery protocol must keep results exactly-once.
/// Every timeline derives purely from its seed, so a failing run replays
/// from the printed seed alone.

enum class ChaosEventType {
  kKillNode,     // fail-stop member `a`
  kAddNode,      // join a fresh member
  kPartition,    // block both directions between `a` and `b`
  kHeal,         // unblock (a, b) and restart jobs from the last snapshot
  kDelaySpike,   // add `latency` to both directions of (a, b)
  kClearLink,    // remove the delay spike on (a, b)
  kStallWorker,  // freeze member `a`'s workers for `duration` (GC pause)
};

struct ChaosEvent {
  Nanos at = 0;  // offset from timeline start
  ChaosEventType type = ChaosEventType::kKillNode;
  int32_t a = -1;      // member id / link endpoint
  int32_t b = -1;      // second link endpoint (partition/delay only)
  Nanos duration = 0;  // stall length (kStallWorker)
  Nanos latency = 0;   // added latency (kDelaySpike)

  std::string ToString() const;
};

/// Knobs of the seeded timeline generator.
struct ChaosTimelineOptions {
  /// No event fires before this offset (lets the job commit a snapshot).
  Nanos start_after = 250 * kNanosPerMilli;
  /// Last generated event fires before this offset.
  Nanos horizon = 1'400 * kNanosPerMilli;
  int32_t initial_nodes = 3;
  /// Kills never reduce the cluster below this.
  int32_t min_alive = 2;
  /// Number of primary events to generate (heals/clears are added on top).
  int32_t events = 4;
  int32_t max_kills = 1;
  bool allow_join = true;
  bool allow_partition = true;
  bool allow_delay = true;
  bool allow_stall = true;
};

/// Generates a valid fault timeline from `seed` alone: kills respect
/// `min_alive`, joined members get the ids JetCluster will actually assign,
/// every partition gets a matching heal, every delay spike a matching
/// clear, and no two link faults overlap on one pair. Same seed + options
/// => identical timeline, always.
std::vector<ChaosEvent> GenerateTimeline(uint64_t seed, const ChaosTimelineOptions& options);

std::string TimelineToString(const std::vector<ChaosEvent>& timeline);

/// Executes a timeline against a live cluster. Each event is applied at
/// its wall-clock offset from Run()'s start. Heals go through
/// JetCluster::RecoverAfterFault so stalled jobs restart from their last
/// committed snapshot once the link is back.
class ChaosScheduler {
 public:
  /// `unattended` switches the scheduler from scripted recovery to pure
  /// fault injection against a supervised cluster: kills go through
  /// CrashNode (no membership change — the control plane must detect the
  /// death itself) and heals just unblock the link (no RecoverAfterFault —
  /// the control plane must resume suspended jobs itself). Requires
  /// ClusterConfig::supervisor.enabled.
  ChaosScheduler(cluster::JetCluster* cluster, std::vector<ChaosEvent> timeline,
                 bool unattended = false);

  /// Blocks until every event has been applied. Returns the first error.
  Status Run();

  /// Human-readable record of what was applied (for failure messages).
  const std::vector<std::string>& log() const { return log_; }

  /// Grid partition-table version sampled after each event; must be
  /// non-decreasing (version monotonicity across kills/joins/heals).
  const std::vector<int64_t>& table_versions() const { return table_versions_; }

 private:
  Status Apply(const ChaosEvent& event);

  cluster::JetCluster* cluster_;
  std::vector<ChaosEvent> timeline_;
  bool unattended_;
  std::vector<std::string> log_;
  std::vector<int64_t> table_versions_;
};

/// Standard bring-up/teardown and result verification for chaos tests: an
/// in-process cluster running one snapshot-enabled NEXMark-style job (Q5's
/// shape — windowed counts per auction key over a distributed partitioned
/// edge), with exactly-once, delivery-accounting, and grid-invariant
/// checks at the end.
struct FixtureOptions {
  int32_t initial_nodes = 3;
  int32_t threads_per_node = 1;
  int32_t backup_count = 1;
  double events_per_second = 30'000;
  Nanos source_duration = 1'200 * kNanosPerMilli;
  int64_t key_count = 16;
  Nanos window_size = 50 * kNanosPerMilli;
  Nanos snapshot_interval = 80 * kNanosPerMilli;
  imdg::JobId job_id = 1;
  /// Round-trip every exchange frame through the wire codec even though
  /// the hops are in-process (JobConfig::serialize_exchange_frames): the
  /// simulated cluster pays the real serialization cost.
  bool serialize_exchange_frames = false;
  /// Forwarded into ClusterConfig::supervisor; enable for unattended chaos.
  cluster::SupervisorOptions supervisor;
};

class ClusterFixture {
 public:
  explicit ClusterFixture(FixtureOptions options = {});

  cluster::JetCluster& cluster() { return *cluster_; }
  net::Network& network() { return cluster_->network(); }
  cluster::ClusterJob* job() { return job_; }

  /// Builds and submits the standard exactly-once windowed-count job.
  Status SubmitWindowedJob();

  /// Waits until snapshot `min_id` has committed.
  bool WaitForCommittedSnapshot(int64_t min_id, Nanos timeout);

  /// Joins the job (blocks through any in-flight recoveries).
  Status JoinJob();

  /// Events the source is expected to emit over its full lifetime.
  int64_t expected_total() const;

  /// Sums the distinct (key, window) results; duplicate emissions must
  /// agree with the first occurrence or an error is returned.
  Result<int64_t> DistinctTotal() const;

  /// DistinctTotal == expected_total (the exactly-once assertion).
  Status VerifyExactlyOnce() const;

  /// Shuts the network down and checks sent == delivered + dropped.
  Status VerifyDeliveryAccounting();

  /// Partition-table Validate() + snapshot-map replica consistency (no
  /// lost IMDG backups).
  Status VerifyClusterInvariants() const;

 private:
  FixtureOptions options_;
  std::unique_ptr<cluster::JetCluster> cluster_;
  core::Dag dag_;
  std::shared_ptr<core::SyncCollector<core::WindowResult<int64_t>>> collector_;
  cluster::ClusterJob* job_ = nullptr;
};

}  // namespace jet::testkit

#endif  // JETSIM_TESTKIT_CHAOS_H_
