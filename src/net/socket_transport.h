#ifndef JETSIM_NET_SOCKET_TRANSPORT_H_
#define JETSIM_NET_SOCKET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/backoff.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace jet::net {

/// Upper bound on a single wire frame (length prefix value). A peer
/// announcing a larger frame is treated as a protocol error and the
/// connection is closed — a corrupt 4-byte prefix must not drive a
/// multi-gigabyte allocation.
inline constexpr uint32_t kMaxWireFrameBytes = 64u << 20;  // 64 MiB

/// A message-oriented, full-duplex connection over a stream socket
/// (Unix-domain first; the same code path serves TCP). Frames are
/// delimited by a little-endian u32 length prefix.
///
/// Threading model: one I/O thread per connection owns the socket. It
/// polls the socket plus a self-pipe; reads are drained into a growing
/// buffer and parsed into frames (delivered via the frame handler *on the
/// I/O thread*), writes are drained nonblocking from a pending queue.
/// SendFrame from any thread is a bounded enqueue + self-pipe wakeup —
/// it never touches the socket and never blocks on I/O, which is what
/// lets exchange tasklets call it from a cooperative Call().
///
/// Delivery accounting (PR 2 invariant): after Close() has returned,
/// sent() == delivered() + dropped(). A frame counts as delivered once
/// fully written to the socket, and as dropped if it was still pending
/// (or arrived after) close.
class SocketConnection {
 public:
  /// Invoked on the I/O thread with each complete inbound frame (without
  /// the length prefix). Must not block and must not call Close() on this
  /// connection (it may call SendFrame).
  using FrameHandler = std::function<void(Bytes frame)>;
  /// Invoked exactly once, on the I/O thread, when the connection stops —
  /// peer EOF, I/O or protocol error, or local Close(). Peer death
  /// detection (the kill -9 path) hangs off this firing before Close()
  /// was requested locally.
  using CloseHandler = std::function<void()>;

  /// Connects to a Unix-domain socket path.
  static Result<std::unique_ptr<SocketConnection>> ConnectUnix(const std::string& path);

  /// Connects to a Unix-domain socket path, retrying until the server
  /// starts listening or `timeout_ms` elapses. This is the reconnect
  /// primitive: a restarting member races the coordinator's listener.
  static Result<std::unique_ptr<SocketConnection>> ConnectUnixWithRetry(
      const std::string& path, int64_t timeout_ms);

  /// Connects to a TCP endpoint (dotted-quad host).
  static Result<std::unique_ptr<SocketConnection>> ConnectTcp(const std::string& host,
                                                              uint16_t port);

  /// Connects to a Unix-domain socket path under the shared RetryBackoff
  /// policy: bounded attempts with exponential backoff + seeded jitter
  /// before declaring the peer dead. `stream_id` decorrelates jitter
  /// between concurrent reconnectors (member index, connection ordinal).
  /// On exhaustion the error names the attempt count and the last cause.
  static Result<std::unique_ptr<SocketConnection>> ConnectUnixWithBackoff(
      const std::string& path, const BackoffOptions& backoff, uint64_t stream_id = 0);

  /// TCP variant of ConnectUnixWithBackoff — the cross-host reconnect
  /// primitive.
  static Result<std::unique_ptr<SocketConnection>> ConnectTcpWithBackoff(
      const std::string& host, uint16_t port, const BackoffOptions& backoff,
      uint64_t stream_id = 0);

  /// Wraps an already-connected fd (from accept(), or one end of a
  /// socketpair() in tests). Takes ownership of the fd.
  static std::unique_ptr<SocketConnection> Adopt(int fd);

  ~SocketConnection();
  SocketConnection(const SocketConnection&) = delete;
  SocketConnection& operator=(const SocketConnection&) = delete;

  /// Starts the I/O thread. Call exactly once before the first SendFrame.
  void Start(FrameHandler on_frame, CloseHandler on_close = nullptr);

  /// Enqueues one frame for transmission. Returns UnavailableError (and
  /// counts the frame as sent + dropped) if the connection is closed.
  // jet-verify audit: bounded work only — one uncontended queue push under
  // pending_mu_ and one nonblocking self-pipe byte; all socket I/O happens
  // on the connection's I/O thread.
  Status SendFrame(Bytes frame) JET_COOPERATIVE;

  /// Flushes pending writes (bounded grace period), closes the socket and
  /// joins the I/O thread. Idempotent; must not be called from handlers.
  void Close() JET_BLOCKING JET_EXCLUDES(pending_mu_);

  /// True until the connection stops (either side).
  bool IsOpen() const { return !stopped_.load(std::memory_order_acquire); }

  uint64_t sent() const { return sent_.load(std::memory_order_relaxed); }
  uint64_t delivered() const { return delivered_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  explicit SocketConnection(int fd);

  void IoLoop();
  /// Drains as much of the pending queue as the socket accepts; returns
  /// false on a fatal write error.
  bool FlushPending() JET_EXCLUDES(pending_mu_);
  /// Parses complete frames out of read_buf_, dispatching each. Returns
  /// false on protocol error (oversized frame).
  bool ParseFrames();
  void Wake();

  int fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread io_thread_;
  FrameHandler on_frame_;
  CloseHandler on_close_;

  Mutex pending_mu_;
  std::deque<Bytes> pending_ JET_GUARDED_BY(pending_mu_);  // prefix-attached
  size_t front_offset_ JET_GUARDED_BY(pending_mu_) = 0;
  bool closing_ JET_GUARDED_BY(pending_mu_) = false;

  // I/O-thread-local inbound reassembly buffer.
  Bytes read_buf_;
  size_t read_pos_ = 0;

  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> sent_{0};
  std::atomic<uint64_t> delivered_{0};
  std::atomic<uint64_t> dropped_{0};
};

/// Accepts connections on a Unix-domain or loopback TCP socket. Each
/// accepted connection is handed to the accept handler (on the accept
/// thread) un-started: the handler installs its frame handler and calls
/// Start().
class SocketServer {
 public:
  using AcceptHandler = std::function<void(std::unique_ptr<SocketConnection>)>;

  /// Binds and listens on a Unix-domain socket path (unlinks a stale one).
  static Result<std::unique_ptr<SocketServer>> ListenUnix(const std::string& path);

  /// Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port,
  /// readable from port()).
  static Result<std::unique_ptr<SocketServer>> ListenTcp(uint16_t port);

  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Starts the accept thread. Call exactly once.
  void Start(AcceptHandler on_accept);

  /// Stops accepting and joins the accept thread. Idempotent. Already
  /// accepted connections are unaffected.
  void Stop() JET_BLOCKING;

  /// Bound UDS path (empty for TCP).
  const std::string& path() const { return path_; }
  /// Bound TCP port (0 for UDS).
  uint16_t port() const { return port_; }

 private:
  SocketServer(int fd, std::string path, uint16_t port);
  void AcceptLoop();

  int fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::string path_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  AcceptHandler on_accept_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
};

}  // namespace jet::net

#endif  // JETSIM_NET_SOCKET_TRANSPORT_H_
