#include "net/exchange.h"

#include <algorithm>
#include <cassert>

namespace jet::net {
namespace {

/// The in-memory transport: frames travel as closures over net::Network,
/// so per-link faults, latency and delivery accounting keep applying.
/// With ExchangeOptions::serialize_frames the frame is encoded on the
/// sending side and decoded inside the delivery closure — the in-process
/// execution then pays the exact byte-level cost of the socket path.
class InProcessFrameLink final : public FrameLink {
 public:
  InProcessFrameLink(Network* network, const ExchangeChannel& channel, bool serialize,
                     FrameHeader header)
      : network_(network),
        wire_(channel.wire),
        flow_(channel.flow),
        data_channel_(channel.data_channel),
        ack_channel_(channel.ack_channel),
        serialize_(serialize),
        header_(header) {}

  void SendData(std::vector<core::Item>&& frame) override {
    if (serialize_) {
      BytesWriter w;
      Status s = EncodeDataFrame(header_, frame, &w);
      if (s.ok()) {
        network_->Send(data_channel_, [wire = wire_, bytes = w.Take()]() {
          auto decoded = DecodeFrame(bytes);
          JET_DCHECK(decoded.ok());
          if (decoded.ok()) wire->Push(std::move(decoded->items));
        });
        return;
      }
      // A payload type without a codec (local-only test jobs): ship the
      // in-memory frame instead — correctness over measured cost.
    }
    network_->Send(data_channel_,
                   [wire = wire_, b = std::move(frame)]() mutable { wire->Push(std::move(b)); });
  }

  void SendAck(int64_t new_limit) override {
    if (serialize_) {
      BytesWriter w;
      JET_DCHECK_OK(EncodeAckFrame(header_, new_limit, &w));
      network_->Send(ack_channel_, [flow = flow_, bytes = w.Take()]() {
        auto decoded = DecodeFrame(bytes);
        JET_DCHECK(decoded.ok());
        if (decoded.ok()) flow->OnAck(decoded->ack_limit);
      });
      return;
    }
    network_->Send(ack_channel_, [flow = flow_, new_limit]() { flow->OnAck(new_limit); });
  }

 private:
  Network* network_;
  std::shared_ptr<WireBuffer> wire_;
  std::shared_ptr<SenderFlowState> flow_;
  ChannelId data_channel_;
  ChannelId ack_channel_;
  bool serialize_;
  FrameHeader header_;
};

}  // namespace

std::shared_ptr<ExchangeChannel> ExchangeRegistry::GetOrCreate(int32_t edge_index,
                                                               int32_t from_node,
                                                               int32_t to_node) {
  jet::MutexLock lock(mutex_);
  auto key = std::make_tuple(edge_index, from_node, to_node);
  auto it = channels_.find(key);
  if (it != channels_.end()) return it->second;
  auto channel = std::make_shared<ExchangeChannel>();
  int32_t phys_from = PhysicalIdOf(from_node);
  int32_t phys_to = PhysicalIdOf(to_node);
  channel->data_channel = network_->OpenChannel(phys_from, phys_to);
  // Acks flow back receiver -> sender, so a one-way fault on (to, from)
  // affects them, not the data direction.
  channel->ack_channel = network_->OpenChannel(phys_to, phys_from);
  channel->link = MakeLink(*channel, edge_index, from_node, to_node);
  channels_[key] = channel;
  return channel;
}

std::shared_ptr<FrameLink> ExchangeRegistry::MakeLink(const ExchangeChannel& channel,
                                                      int32_t edge_index, int32_t from_node,
                                                      int32_t to_node) {
  FrameHeader header;
  header.edge_index = edge_index;
  header.from_node = from_node;
  header.to_node = to_node;
  header.epoch = options_.epoch;
  return std::make_shared<InProcessFrameLink>(network_, channel, options_.serialize_frames,
                                              header);
}

int32_t ExchangeRegistry::PhysicalIdOf(int32_t plan_node) const {
  if (plan_node >= 0 && static_cast<size_t>(plan_node) < physical_node_ids_.size()) {
    return physical_node_ids_[static_cast<size_t>(plan_node)];
  }
  return kAnyNode;
}

// ---------------------------------------------------------------------------
// SenderProcessor
// ---------------------------------------------------------------------------

SenderProcessor::SenderProcessor(std::shared_ptr<ExchangeChannel> channel, int32_t max_batch)
    : channel_(std::move(channel)), max_batch_(max_batch) {}

Status SenderProcessor::Init(core::ProcessorContext* ctx) {
  JET_RETURN_IF_ERROR(core::Processor::Init(ctx));
  if (ctx->metrics != nullptr) {
    items_sent_counter_ = ctx->metrics->GetCounter("exchange.items_sent", ctx->metric_tags);
    window_available_gauge_ =
        ctx->metrics->GetGauge("exchange.window_available", ctx->metric_tags);
    batch_size_hist_ = ctx->metrics->GetHistogram("exchange.batch_size", ctx->metric_tags,
                                                  /*max_value=*/64 * 1024);
    // The send limit is advanced by acks on the network thread; the atomic
    // read is safe from the registry's polling thread.
    auto flow = channel_->flow;
    ctx->metrics->RegisterCallback("exchange.send_limit", ctx->metric_tags,
                                   [flow]() { return flow->SendLimit(); });
  }
  return Status::OK();
}

void SenderProcessor::Process(int ordinal, core::Inbox* inbox) {
  (void)ordinal;
  // Bulk-move the inbox prefix into one wire frame (the inbox only ever
  // holds data items — the hosting tasklet strips control items before the
  // processor sees them). The frame is bounded by both the configured max
  // batch and the remaining receive window; items beyond the window stay in
  // the inbox, its queues fill up, and backpressure reaches the producers
  // (§3.3).
  const int64_t window = channel_->flow->SendLimit() - sent_seq_;
  if (window <= 0 || inbox->Empty()) {
    window_available_gauge_.Set(std::max<int64_t>(0, window));
    return;
  }
  const size_t limit =
      static_cast<size_t>(std::min<int64_t>(window, static_cast<int64_t>(max_batch_)));
  std::vector<core::Item> batch;
  batch.reserve(std::min(limit, inbox->Size()));
  const size_t n = inbox->DrainTo(&batch, limit);
  sent_seq_ += static_cast<int64_t>(n);
  items_sent_counter_.Add(static_cast<int64_t>(n));
  batch_size_hist_.Record(static_cast<int64_t>(n));
  window_available_gauge_.Set(std::max<int64_t>(0, channel_->flow->SendLimit() - sent_seq_));
  if (!batch.empty()) SendBatch(std::move(batch));
}

bool SenderProcessor::TryProcessWatermark(Nanos wm) {
  // Control items bypass the window: they are few and must not deadlock
  // behind it.
  std::vector<core::Item> batch;
  batch.push_back(core::Item::WatermarkAt(wm));
  SendBatch(std::move(batch));
  return true;
}

bool SenderProcessor::OnSnapshotCompleted(int64_t snapshot_id) {
  std::vector<core::Item> batch;
  batch.push_back(core::Item::BarrierFor(snapshot_id));
  SendBatch(std::move(batch));
  return true;
}

bool SenderProcessor::Complete() {
  if (!done_sent_) {
    std::vector<core::Item> batch;
    batch.push_back(core::Item::Done());
    SendBatch(std::move(batch));
    done_sent_ = true;
  }
  return true;
}

void SenderProcessor::SendBatch(std::vector<core::Item>&& batch) {
  channel_->link->SendData(std::move(batch));
}

// ---------------------------------------------------------------------------
// ReceiverProcessor
// ---------------------------------------------------------------------------

ReceiverProcessor::ReceiverProcessor(std::shared_ptr<ExchangeChannel> channel,
                                     ReceiveWindowController::Options window_options)
    : channel_(std::move(channel)), window_ctl_(window_options) {}

Status ReceiverProcessor::Init(core::ProcessorContext* ctx) {
  JET_RETURN_IF_ERROR(core::Processor::Init(ctx));
  if (ctx->metrics != nullptr) {
    items_forwarded_counter_ =
        ctx->metrics->GetCounter("exchange.items_forwarded", ctx->metric_tags);
    acks_sent_counter_ = ctx->metrics->GetCounter("exchange.acks_sent", ctx->metric_tags);
    receive_window_gauge_ =
        ctx->metrics->GetGauge("exchange.receive_window", ctx->metric_tags);
    receive_window_gauge_.Set(window_ctl_.window());
    // WireBuffer::Size takes the buffer's own mutex, so the registry may
    // poll it from any thread; capture the shared_ptr, never `this`.
    auto wire = channel_->wire;
    ctx->metrics->RegisterCallback("exchange.wire_depth", ctx->metric_tags, [wire]() {
      return static_cast<int64_t>(wire->Size());
    });
  }
  return Status::OK();
}

bool ReceiverProcessor::Complete() {
  if (staged_pos_ >= staged_.size() && !saw_done_) {
    staged_.clear();
    staged_pos_ = 0;
    channel_->wire->DrainInto(&staged_, 256);
  }
  bool blocked = false;
  while (staged_pos_ < staged_.size()) {
    core::Item& item = staged_[staged_pos_];
    if (item.IsDone()) {
      saw_done_ = true;
      ++staged_pos_;
      continue;
    }
    const bool is_data = item.IsData();
    // Move into the outbox: OfferToAll copies into the first n-1 buckets
    // and moves into the last, and leaves `item` untouched when it returns
    // false, so a blocked offer retries safely next Complete().
    if (!ctx()->outbox->OfferToAll(std::move(item))) {
      blocked = true;  // downstream full; retry later
      break;
    }
    if (is_data) {
      ++forwarded_seq_;
      items_forwarded_counter_.Add(1);
    }
    ++staged_pos_;
  }
  // Periodically ack our progress so the sender's window slides (§3.3).
  int64_t limit = window_ctl_.MaybeAck(ctx()->clock->Now(), forwarded_seq_);
  if (limit >= 0) {
    channel_->link->SendAck(limit);
    acks_sent_counter_.Add(1);
    receive_window_gauge_.Set(window_ctl_.window());
  }
  return !blocked && saw_done_ && staged_pos_ >= staged_.size();
}

// ---------------------------------------------------------------------------
// NetworkEdgeFactory
// ---------------------------------------------------------------------------

NetworkEdgeFactory::NetworkEdgeFactory(ExchangeRegistry* registry, const core::Dag* dag,
                                       core::NodeInfo node,
                                       const core::JobConfig& config,
                                       int32_t default_local_parallelism,
                                       const Clock* clock,
                                       const std::atomic<bool>* cancelled,
                                       core::SnapshotControl* snapshot_control)
    : registry_(registry),
      dag_(dag),
      node_(node),
      config_(config),
      default_local_parallelism_(default_local_parallelism),
      clock_(clock),
      cancelled_(cancelled),
      snapshot_control_(snapshot_control) {}

int32_t NetworkEdgeFactory::EdgeIndexOf(const core::Edge& e) const {
  return static_cast<int32_t>(&e - dag_->edges().data());
}

int32_t NetworkEdgeFactory::LocalParallelismOf(core::VertexId v) const {
  int32_t p = dag_->vertex(v).local_parallelism;
  return p == -1 ? default_local_parallelism_ : p;
}

core::ProcessorContext NetworkEdgeFactory::MakeContext(core::VertexId vertex) const {
  core::ProcessorContext ctx;
  ctx.meta.node_id = node_.node_id;
  ctx.meta.node_count = node_.node_count;
  ctx.clock = clock_;
  ctx.config = config_;
  ctx.cancelled = cancelled_;
  ctx.vertex_id = vertex;
  ctx.metrics = metrics_;
  return ctx;
}

core::RemoteSink NetworkEdgeFactory::SenderFor(const core::Edge& e, int32_t dest_node,
                                               int32_t producer_local_index) {
  int32_t ei = EdgeIndexOf(e);
  auto& queues = sender_queues_[{ei, dest_node}];
  while (static_cast<int32_t>(queues.size()) <= producer_local_index) {
    queues.push_back(
        std::make_shared<core::ItemQueue>(static_cast<size_t>(e.queue_size)));
  }
  auto queue = queues[static_cast<size_t>(producer_local_index)];
  // The release hook unbinds the queue's producer guard when the producer
  // tasklet migrates to another cooperative worker.
  return core::RemoteSink(
      [queue](const core::Item& item) {
        core::Item copy = item;
        return queue->TryPush(copy);
      },
      [queue]() { queue->ReleaseProducerOwnership(); });
}

std::vector<core::ItemQueuePtr> NetworkEdgeFactory::ReceiverQueuesFor(
    const core::Edge& e, int32_t consumer_local_index) {
  int32_t ei = EdgeIndexOf(e);
  std::vector<core::ItemQueuePtr> result;
  for (int32_t from = 0; from < node_.node_count; ++from) {
    if (from == node_.node_id) continue;
    auto& queues = receiver_queues_[{ei, from}];
    while (static_cast<int32_t>(queues.size()) <= consumer_local_index) {
      queues.push_back(
          std::make_shared<core::ItemQueue>(static_cast<size_t>(e.queue_size)));
    }
    result.push_back(queues[static_cast<size_t>(consumer_local_index)]);
  }
  return result;
}

std::vector<std::unique_ptr<core::ProcessorTasklet>> NetworkEdgeFactory::TakeTasklets() {
  std::vector<std::unique_ptr<core::ProcessorTasklet>> tasklets;

  for (auto& [key, queues] : sender_queues_) {
    auto [edge_index, dest_node] = key;
    const core::Edge& e = dag_->edges()[static_cast<size_t>(edge_index)];
    auto channel = registry_->GetOrCreate(edge_index, node_.node_id, dest_node);
    auto processor = std::make_unique<SenderProcessor>(channel);

    core::InboundStream stream;
    stream.ordinal = 0;
    stream.priority = 0;
    for (auto& q : queues) {
      core::InboundQueue iq;
      iq.queue = q;
      stream.queues.push_back(std::move(iq));
    }
    std::vector<core::InboundStream> inputs;
    inputs.push_back(std::move(stream));

    std::string name = "sender:e" + std::to_string(edge_index) + "->n" +
                       std::to_string(dest_node) + "@n" + std::to_string(node_.node_id);
    tasklets.push_back(std::make_unique<core::ProcessorTasklet>(
        std::move(name), std::move(processor), MakeContext(e.source), std::move(inputs),
        std::vector<core::OutboundCollector>{}, config_.guarantee, snapshot_control_));
  }

  for (auto& [key, queues] : receiver_queues_) {
    auto [edge_index, from_node] = key;
    const core::Edge& e = dag_->edges()[static_cast<size_t>(edge_index)];
    auto channel = registry_->GetOrCreate(edge_index, from_node, node_.node_id);
    auto processor = std::make_unique<ReceiverProcessor>(channel);

    int32_t dest_local = LocalParallelismOf(e.dest);
    std::vector<core::OutboundCollector> collectors;
    collectors.emplace_back(e.routing, queues, std::vector<core::RemoteSink>{},
                            node_.node_count * dest_local, node_.node_count,
                            node_.node_id, /*isolated_index=*/-1);

    std::string name = "receiver:e" + std::to_string(edge_index) + "<-n" +
                       std::to_string(from_node) + "@n" + std::to_string(node_.node_id);
    tasklets.push_back(std::make_unique<core::ProcessorTasklet>(
        std::move(name), std::move(processor), MakeContext(e.dest),
        std::vector<core::InboundStream>{}, std::move(collectors), config_.guarantee,
        snapshot_control_));
  }
  return tasklets;
}

}  // namespace jet::net
