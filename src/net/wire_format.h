#ifndef JETSIM_NET_WIRE_FORMAT_H_
#define JETSIM_NET_WIRE_FORMAT_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "core/item.h"

namespace jet::net {

/// Binary wire format for exchange traffic (version 1).
///
/// PR 5 made whole frames the unit of transfer; this codec makes them the
/// unit of *serialization*, so the same frame granularity crosses a real
/// socket. Every frame starts with a fixed 4-byte header:
///
///   offset  size  field
///   ------  ----  -----------------------------------------------
///   0       2     magic 0x4A 0x57 ("JW")
///   2       1     format version (kWireFormatVersion)
///   3       1     frame type (FrameType)
///
/// followed by a type-specific body of varint/length-prefixed fields (see
/// EncodeDataFrame / EncodeAckFrame / EncodeControlFrame). Decoding never
/// trusts a length or count it has not bounds-checked against the buffer,
/// returns an error Status on any malformed input, and requires the frame
/// to consume the whole buffer (trailing garbage is an error).
///
/// Versioning rules: additions that change any committed byte sequence
/// bump kWireFormatVersion; decoders reject frames from a different
/// version (no cross-version compatibility is attempted while the format
/// is young). The golden fixtures under tests/wire_fixtures/ pin the
/// byte-exact v1 encodings; see that directory's README for the bump
/// procedure.
inline constexpr uint8_t kFrameMagic0 = 0x4A;  // 'J'
inline constexpr uint8_t kFrameMagic1 = 0x57;  // 'W'
inline constexpr uint8_t kWireFormatVersion = 1;

enum class FrameType : uint8_t {
  kData = 1,     ///< a batch of exchange items for one directed hop
  kAck = 2,      ///< receive-window advance for one directed hop (§3.3)
  kControl = 3,  ///< opaque control-plane message (process-mode protocol)
};

/// Typed-item payload encoding. Common payload types get a compact native
/// encoding; anything pre-serialized by the producer travels as kBytes
/// (the opaque fallback). Tags are part of the committed format: never
/// renumber, only append.
enum class PayloadTag : uint8_t {
  kNone = 0,    ///< empty Any (control items never reach here)
  kI64 = 1,     ///< int64_t, zigzag varint
  kU64 = 2,     ///< uint64_t, varint
  kDouble = 3,  ///< IEEE-754 double, 8 bytes little-endian
  kString = 4,  ///< length-prefixed UTF-8/binary string
  kBytes = 5,   ///< opaque bytes fallback (jet::Bytes payload, verbatim)
  // 6..15 reserved for future primitives.
  // Composite types of the standard two-stage windowed aggregation jobs.
  kKeyedFrameI64 = 16,    ///< core::KeyedFrame<int64_t>
  kWindowResultI64 = 17,  ///< core::WindowResult<int64_t>
  // 18.. allocated through RegisterPayloadCodec (workload subsystems).
  // The allocations are part of the committed format too: record each one
  // here even though the codec lives with its subsystem.
  kShuffleBenchRecord = 18,  ///< shufflebench::Record (src/shufflebench/wire.h)
};

/// First tag available to RegisterPayloadCodec. Tags below this are the
/// built-in codecs hardwired into EncodePayload/DecodePayload.
inline constexpr uint8_t kFirstRegisteredPayloadTag = 18;

/// Extensible typed-payload registry.
///
/// Workload subsystems (nexmark, shufflebench, ...) own record types the
/// core codec cannot know about. Registering a codec gives such a type a
/// first-class wire tag, so `serialize_exchange_frames` mode pays the
/// type's real serde cost instead of requiring producers to pre-serialize
/// to the opaque kBytes fallback.
///
/// Contract:
///  - `tag` must be >= kFirstRegisteredPayloadTag. Allocations are
///    append-only format surface: record them in PayloadTag above.
///  - Registration is process-wide and thread-safe. Re-registering the
///    same (tag, type) pair is idempotent (OK); a conflicting
///    registration — same tag, different type, or same type, different
///    tag — returns InvalidArgumentError and leaves the registry as-is.
///  - `encode` writes the body only (no tag, no length — the framing
///    layer adds both). `decode` must consume exactly the body it is
///    given; DecodePayload rejects trailing body bytes.
///  - The encode/decode hot paths read the registry lock-free; the
///    registration path takes a mutex. Register at startup (static
///    initializer or main), not per-frame.
template <typename T>
Status RegisterPayloadCodec(uint8_t tag, void (*encode)(const T&, BytesWriter*),
                            Status (*decode)(BytesReader*, T*));

namespace internal {

/// Type-erased registry node. Immutable after publication; nodes are
/// never removed (the registry lives for the process).
struct RegisteredPayloadCodec {
  uint8_t tag = 0;
  const std::type_info* type = nullptr;
  /// Returns false if `payload` does not hold this codec's type;
  /// otherwise writes the body into `w` and returns true.
  std::function<bool(const core::Any&, BytesWriter*)> try_encode;
  /// Decodes one body into an Any of this codec's type.
  std::function<Status(BytesReader*, core::Any*)> decode;
  const RegisteredPayloadCodec* next = nullptr;  ///< encode-side chain
};

/// Takes ownership of `node`: published into the registry on success,
/// deleted on idempotent re-registration or rejection.
Status RegisterPayloadCodecNode(RegisteredPayloadCodec* node);

}  // namespace internal

template <typename T>
Status RegisterPayloadCodec(uint8_t tag, void (*encode)(const T&, BytesWriter*),
                            Status (*decode)(BytesReader*, T*)) {
  auto* node = new internal::RegisteredPayloadCodec;
  node->tag = tag;
  node->type = &typeid(T);
  node->try_encode = [encode](const core::Any& payload, BytesWriter* w) {
    const T* v = payload.TryAs<T>();
    if (v == nullptr) return false;
    encode(*v, w);
    return true;
  };
  node->decode = [decode](BytesReader* r, core::Any* out) {
    T v;
    JET_RETURN_IF_ERROR(decode(r, &v));
    *out = core::Any::Of<T>(std::move(v));
    return Status::OK();
  };
  return internal::RegisterPayloadCodecNode(node);  // takes ownership
}

/// Identity of a data/ack frame: which directed hop of which edge it
/// belongs to, and which execution epoch (attempt) produced it. The epoch
/// lets a receiver discard stragglers from a torn-down attempt — after a
/// kill -9 restart, plan-local node ids are reassigned, so a stale frame
/// routed by (edge, from, to) alone could corrupt the new attempt.
struct FrameHeader {
  FrameType type = FrameType::kData;
  int32_t edge_index = 0;
  int32_t from_node = 0;
  int32_t to_node = 0;
  int64_t epoch = 0;  ///< attempt number in process mode; 0 in-process
};

/// A decoded frame: header plus the one body field its type uses.
struct DecodedFrame {
  FrameHeader header;
  std::vector<core::Item> items;  ///< kData
  int64_t ack_limit = 0;          ///< kAck: new send limit (§3.3)
  Bytes control_body;             ///< kControl: opaque payload
};

/// Appends the typed encoding of one item:
///   u8 kind, zigzag-varint timestamp, then for data items only:
///   varint key_hash, u8 payload tag, varint payload length, payload.
/// Watermarks, barriers and done markers are kind + timestamp alone.
/// Returns UnimplementedError for a data payload type with no codec —
/// pre-serialize such payloads to jet::Bytes (the opaque fallback).
Status EncodeItem(const core::Item& item, BytesWriter* w);

/// Decodes one item written by EncodeItem. On error the reader position is
/// unspecified.
Status DecodeItem(BytesReader* r, core::Item* out);

/// DATA frame body: varint edge_index, varint from_node, varint to_node,
/// varint epoch, varint item count, items.
Status EncodeDataFrame(const FrameHeader& header, const std::vector<core::Item>& items,
                       BytesWriter* w);

/// ACK frame body: varint edge_index, varint from_node, varint to_node,
/// varint epoch, zigzag-varint new send limit. The hop identity is the
/// *data* direction's — the ack physically travels the reverse path but
/// names the flow it advances, preserving the §3.3 window end to end.
Status EncodeAckFrame(const FrameHeader& header, int64_t new_limit, BytesWriter* w);

/// CONTROL frame body: varint length + opaque bytes. The codec does not
/// interpret control payloads; the process-mode protocol layer does.
Status EncodeControlFrame(const Bytes& body, BytesWriter* w);

/// Decodes any frame. Rejects bad magic, unknown version, unknown frame
/// type, unknown payload tags, counts/lengths exceeding the buffer, and
/// trailing bytes. Never crashes or reads past `len`.
Result<DecodedFrame> DecodeFrame(const uint8_t* data, size_t len);
inline Result<DecodedFrame> DecodeFrame(const Bytes& b) {
  return DecodeFrame(b.data(), b.size());
}

}  // namespace jet::net

#endif  // JETSIM_NET_WIRE_FORMAT_H_
