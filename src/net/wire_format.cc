#include "net/wire_format.h"

#include <atomic>
#include <string>
#include <utility>

#include "common/thread_annotations.h"
#include "core/processors_window.h"

namespace jet::net {
namespace {

// ---- payload-codec registry ----------------------------------------------
//
// Registration (rare, startup-time) goes through g_registry_mutex; the
// per-item encode/decode paths read only the atomics below and never
// block. Publication order matters: a node is fully built before the
// release-store makes it visible, and readers acquire-load before
// touching it.

using internal::RegisteredPayloadCodec;

jet::Mutex& RegistryMutex() {
  static jet::Mutex mu;
  return mu;
}

// Encode-side chain of registered codecs (walked after the built-in type
// tests fail) and decode-side O(1) tag dispatch.
std::atomic<const RegisteredPayloadCodec*> g_registered_head{nullptr};
std::atomic<const RegisteredPayloadCodec*> g_registered_by_tag[256]{};

using core::Any;
using core::Item;
using core::ItemKind;
using KeyedFrameI64 = core::KeyedFrame<int64_t>;
using WindowResultI64 = core::WindowResult<int64_t>;

// ---- payload codecs ------------------------------------------------------
//
// Each payload is written as: u8 tag, varint length, body. The length
// prefix lets the decoder bound every body read against the enclosing
// frame before interpreting a single body byte.

void EncodeKeyedFrame(const KeyedFrameI64& f, BytesWriter* w) {
  w->WriteVarU64(f.key);
  w->WriteVarI64(f.frame_end);
  w->WriteVarI64(f.acc);
}

Status DecodeKeyedFrame(BytesReader* r, KeyedFrameI64* out) {
  JET_RETURN_IF_ERROR(r->ReadVarU64(&out->key));
  JET_RETURN_IF_ERROR(r->ReadVarI64(&out->frame_end));
  JET_RETURN_IF_ERROR(r->ReadVarI64(&out->acc));
  return Status::OK();
}

void EncodeWindowResult(const WindowResultI64& wr, BytesWriter* w) {
  w->WriteVarU64(wr.key);
  w->WriteVarI64(wr.window_start);
  w->WriteVarI64(wr.window_end);
  w->WriteVarI64(wr.value);
}

Status DecodeWindowResult(BytesReader* r, WindowResultI64* out) {
  JET_RETURN_IF_ERROR(r->ReadVarU64(&out->key));
  JET_RETURN_IF_ERROR(r->ReadVarI64(&out->window_start));
  JET_RETURN_IF_ERROR(r->ReadVarI64(&out->window_end));
  JET_RETURN_IF_ERROR(r->ReadVarI64(&out->value));
  return Status::OK();
}

// Writes tag + length-prefixed body for one payload. The body is staged in
// a scratch writer so the length prefix is exact.
Status EncodePayload(const Any& payload, BytesWriter* w) {
  BytesWriter body;
  uint8_t tag;
  if (const auto* v = payload.TryAs<int64_t>()) {
    tag = static_cast<uint8_t>(PayloadTag::kI64);
    body.WriteVarI64(*v);
  } else if (const auto* v = payload.TryAs<uint64_t>()) {
    tag = static_cast<uint8_t>(PayloadTag::kU64);
    body.WriteVarU64(*v);
  } else if (const auto* v = payload.TryAs<double>()) {
    tag = static_cast<uint8_t>(PayloadTag::kDouble);
    body.WriteDouble(*v);
  } else if (const auto* v = payload.TryAs<std::string>()) {
    tag = static_cast<uint8_t>(PayloadTag::kString);
    body.AppendRaw(v->data(), v->size());
  } else if (const auto* v = payload.TryAs<Bytes>()) {
    tag = static_cast<uint8_t>(PayloadTag::kBytes);
    body.AppendRaw(v->data(), v->size());
  } else if (const auto* v = payload.TryAs<KeyedFrameI64>()) {
    tag = static_cast<uint8_t>(PayloadTag::kKeyedFrameI64);
    EncodeKeyedFrame(*v, &body);
  } else if (const auto* v = payload.TryAs<WindowResultI64>()) {
    tag = static_cast<uint8_t>(PayloadTag::kWindowResultI64);
    EncodeWindowResult(*v, &body);
  } else {
    const RegisteredPayloadCodec* codec = nullptr;
    for (const auto* c = g_registered_head.load(std::memory_order_acquire);
         c != nullptr; c = c->next) {
      if (c->try_encode(payload, &body)) {
        codec = c;
        break;
      }
    }
    if (codec == nullptr) {
      return UnimplementedError(
          "no wire codec for this payload type; register one with "
          "RegisterPayloadCodec or pre-serialize it to jet::Bytes");
    }
    tag = codec->tag;
  }
  w->WriteU8(tag);
  w->WriteBytes(body.buffer());
  return Status::OK();
}

// Decodes tag + length-prefixed body into an Any. Composite bodies must be
// fully consumed — leftover body bytes mean a corrupt or mis-tagged frame.
Status DecodePayload(BytesReader* r, Any* out) {
  uint8_t raw_tag = 0;
  JET_RETURN_IF_ERROR(r->ReadU8(&raw_tag));
  Bytes body;
  JET_RETURN_IF_ERROR(r->ReadBytes(&body));
  BytesReader br(body);
  switch (static_cast<PayloadTag>(raw_tag)) {
    case PayloadTag::kI64: {
      int64_t v = 0;
      JET_RETURN_IF_ERROR(br.ReadVarI64(&v));
      *out = Any::Of<int64_t>(v);
      break;
    }
    case PayloadTag::kU64: {
      uint64_t v = 0;
      JET_RETURN_IF_ERROR(br.ReadVarU64(&v));
      *out = Any::Of<uint64_t>(v);
      break;
    }
    case PayloadTag::kDouble: {
      double v = 0;
      JET_RETURN_IF_ERROR(br.ReadDouble(&v));
      *out = Any::Of<double>(v);
      break;
    }
    case PayloadTag::kString:
      *out = Any::Of<std::string>(
          std::string(reinterpret_cast<const char*>(body.data()), body.size()));
      return Status::OK();  // whole body is the value, by construction
    case PayloadTag::kBytes:
      *out = Any::Of<Bytes>(std::move(body));
      return Status::OK();
    case PayloadTag::kKeyedFrameI64: {
      KeyedFrameI64 v;
      JET_RETURN_IF_ERROR(DecodeKeyedFrame(&br, &v));
      *out = Any::Of<KeyedFrameI64>(v);
      break;
    }
    case PayloadTag::kWindowResultI64: {
      WindowResultI64 v;
      JET_RETURN_IF_ERROR(DecodeWindowResult(&br, &v));
      *out = Any::Of<WindowResultI64>(v);
      break;
    }
    default: {
      const RegisteredPayloadCodec* codec =
          g_registered_by_tag[raw_tag].load(std::memory_order_acquire);
      if (codec == nullptr) {
        return InvalidArgumentError("unknown payload tag " + std::to_string(raw_tag));
      }
      JET_RETURN_IF_ERROR(codec->decode(&br, out));
      break;
    }
  }
  if (!br.AtEnd()) return InvalidArgumentError("payload body has trailing bytes");
  return Status::OK();
}

// ---- frame plumbing ------------------------------------------------------

void WriteFramePrefix(FrameType type, BytesWriter* w) {
  w->WriteU8(kFrameMagic0);
  w->WriteU8(kFrameMagic1);
  w->WriteU8(kWireFormatVersion);
  w->WriteU8(static_cast<uint8_t>(type));
}

void WriteHopIdentity(const FrameHeader& header, BytesWriter* w) {
  w->WriteVarU64(static_cast<uint64_t>(header.edge_index));
  w->WriteVarU64(static_cast<uint64_t>(header.from_node));
  w->WriteVarU64(static_cast<uint64_t>(header.to_node));
  w->WriteVarU64(static_cast<uint64_t>(header.epoch));
}

Status ReadHopIdentity(BytesReader* r, FrameHeader* header) {
  uint64_t edge = 0, from = 0, to = 0, epoch = 0;
  JET_RETURN_IF_ERROR(r->ReadVarU64(&edge));
  JET_RETURN_IF_ERROR(r->ReadVarU64(&from));
  JET_RETURN_IF_ERROR(r->ReadVarU64(&to));
  JET_RETURN_IF_ERROR(r->ReadVarU64(&epoch));
  if (edge > INT32_MAX || from > INT32_MAX || to > INT32_MAX || epoch > INT64_MAX) {
    return InvalidArgumentError("frame hop identity out of range");
  }
  header->edge_index = static_cast<int32_t>(edge);
  header->from_node = static_cast<int32_t>(from);
  header->to_node = static_cast<int32_t>(to);
  header->epoch = static_cast<int64_t>(epoch);
  return Status::OK();
}

}  // namespace

namespace internal {

Status RegisterPayloadCodecNode(RegisteredPayloadCodec* node) {
  // Takes ownership: the node is either published into the registry
  // (and lives for the process) or deleted here.
  if (node->tag < kFirstRegisteredPayloadTag) {
    Status s = InvalidArgumentError(
        "payload tag " + std::to_string(node->tag) +
        " is below the registered-tag range (" +
        std::to_string(kFirstRegisteredPayloadTag) + "..255)");
    delete node;
    return s;
  }
  MutexLock lock(RegistryMutex());
  const RegisteredPayloadCodec* existing =
      g_registered_by_tag[node->tag].load(std::memory_order_acquire);
  if (existing != nullptr) {
    Status s = *existing->type == *node->type
                   ? Status::OK()  // idempotent re-registration
                   : InvalidArgumentError(
                         "payload tag " + std::to_string(node->tag) +
                         " already registered for a different type");
    delete node;
    return s;
  }
  for (const auto* c = g_registered_head.load(std::memory_order_acquire);
       c != nullptr; c = c->next) {
    if (*c->type == *node->type) {
      Status s = InvalidArgumentError(
          "payload type already registered under tag " + std::to_string(c->tag));
      delete node;
      return s;
    }
  }
  node->next = g_registered_head.load(std::memory_order_acquire);
  g_registered_by_tag[node->tag].store(node, std::memory_order_release);
  g_registered_head.store(node, std::memory_order_release);
  return Status::OK();
}

}  // namespace internal

Status EncodeItem(const Item& item, BytesWriter* w) {
  w->WriteU8(static_cast<uint8_t>(item.kind));
  w->WriteVarI64(item.timestamp);
  if (item.kind != ItemKind::kData) return Status::OK();
  w->WriteVarU64(item.key_hash);
  return EncodePayload(item.payload, w);
}

Status DecodeItem(BytesReader* r, Item* out) {
  uint8_t raw_kind = 0;
  JET_RETURN_IF_ERROR(r->ReadU8(&raw_kind));
  if (raw_kind > static_cast<uint8_t>(ItemKind::kDone)) {
    return InvalidArgumentError("unknown item kind " + std::to_string(raw_kind));
  }
  Item item;
  item.kind = static_cast<ItemKind>(raw_kind);
  JET_RETURN_IF_ERROR(r->ReadVarI64(&item.timestamp));
  if (item.kind == ItemKind::kData) {
    JET_RETURN_IF_ERROR(r->ReadVarU64(&item.key_hash));
    JET_RETURN_IF_ERROR(DecodePayload(r, &item.payload));
  }
  *out = std::move(item);
  return Status::OK();
}

Status EncodeDataFrame(const FrameHeader& header, const std::vector<Item>& items,
                       BytesWriter* w) {
  WriteFramePrefix(FrameType::kData, w);
  WriteHopIdentity(header, w);
  w->WriteVarU64(items.size());
  for (const Item& item : items) {
    JET_RETURN_IF_ERROR(EncodeItem(item, w));
  }
  return Status::OK();
}

Status EncodeAckFrame(const FrameHeader& header, int64_t new_limit, BytesWriter* w) {
  WriteFramePrefix(FrameType::kAck, w);
  WriteHopIdentity(header, w);
  w->WriteVarI64(new_limit);
  return Status::OK();
}

Status EncodeControlFrame(const Bytes& body, BytesWriter* w) {
  WriteFramePrefix(FrameType::kControl, w);
  w->WriteBytes(body);
  return Status::OK();
}

Result<DecodedFrame> DecodeFrame(const uint8_t* data, size_t len) {
  BytesReader r(data, len);
  uint8_t m0 = 0, m1 = 0, version = 0, raw_type = 0;
  JET_RETURN_IF_ERROR(r.ReadU8(&m0));
  JET_RETURN_IF_ERROR(r.ReadU8(&m1));
  if (m0 != kFrameMagic0 || m1 != kFrameMagic1) {
    return InvalidArgumentError("bad frame magic");
  }
  JET_RETURN_IF_ERROR(r.ReadU8(&version));
  if (version != kWireFormatVersion) {
    return InvalidArgumentError("unsupported wire format version " + std::to_string(version));
  }
  JET_RETURN_IF_ERROR(r.ReadU8(&raw_type));

  DecodedFrame frame;
  switch (static_cast<FrameType>(raw_type)) {
    case FrameType::kData: {
      frame.header.type = FrameType::kData;
      JET_RETURN_IF_ERROR(ReadHopIdentity(&r, &frame.header));
      uint64_t count = 0;
      JET_RETURN_IF_ERROR(r.ReadVarU64(&count));
      // Every encoded item is at least 2 bytes, so a count exceeding the
      // remaining bytes is corrupt — reject before any allocation.
      if (count > r.Remaining()) {
        return InvalidArgumentError("item count exceeds frame size");
      }
      frame.items.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        Item item;
        JET_RETURN_IF_ERROR(DecodeItem(&r, &item));
        frame.items.push_back(std::move(item));
      }
      break;
    }
    case FrameType::kAck: {
      frame.header.type = FrameType::kAck;
      JET_RETURN_IF_ERROR(ReadHopIdentity(&r, &frame.header));
      JET_RETURN_IF_ERROR(r.ReadVarI64(&frame.ack_limit));
      break;
    }
    case FrameType::kControl: {
      frame.header.type = FrameType::kControl;
      JET_RETURN_IF_ERROR(r.ReadBytes(&frame.control_body));
      break;
    }
    default:
      return InvalidArgumentError("unknown frame type " + std::to_string(raw_type));
  }
  if (!r.AtEnd()) return InvalidArgumentError("frame has trailing bytes");
  return frame;
}

}  // namespace jet::net
