#ifndef JETSIM_NET_NETWORK_H_
#define JETSIM_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace jet::net {

/// Latency model of one network link. Real deployments of the paper run on
/// EC2 (c5.4xlarge); intra-VPC RTTs are ~100-500us. The jitter term makes
/// tail-latency effects observable.
struct LinkModel {
  Nanos base_latency = 100 * kNanosPerMicro;
  Nanos jitter = 20 * kNanosPerMicro;  // uniform in [0, jitter)

  Nanos Sample(Rng* rng) const {
    return base_latency +
           (jitter > 0 ? static_cast<Nanos>(rng->NextBounded(static_cast<uint64_t>(jitter)))
                       : 0);
  }
};

/// Endpoint wildcard for channels whose node identity is unknown or
/// irrelevant; such channels are never matched by link faults.
inline constexpr int32_t kAnyNode = -1;

/// Fault model of one *directed* link (from -> to), installed via
/// `Network::SetLinkFault`. All randomness draws from the network's seeded
/// Rng, so a given seed plus a given send sequence replays the same drops.
///
/// Faults act at send time: a blocked or dropped message is counted in
/// `dropped_count()` and never enqueued. Messages already in flight when a
/// fault is installed still deliver (they left the "NIC" before the cable
/// was cut).
struct FaultPlan {
  /// Probability in [0, 1] that a message on this link is dropped.
  double drop_probability = 0.0;
  /// Fixed extra latency added to every message on this link.
  Nanos extra_latency = 0;
  /// With probability `spike_probability`, adds `spike_latency` on top
  /// (models transient congestion / GC on the peer).
  double spike_probability = 0.0;
  Nanos spike_latency = 0;
  /// Hard partition: every message on this link is dropped.
  bool blocked = false;

  bool IsNoop() const {
    return drop_probability <= 0.0 && extra_latency == 0 &&
           (spike_probability <= 0.0 || spike_latency == 0) && !blocked;
  }
};

/// Identifier of a FIFO channel between two endpoints. Deliveries on one
/// channel never reorder (TCP-like semantics), which the snapshot barrier
/// protocol depends on.
using ChannelId = int64_t;

/// In-process message network connecting the nodes of a cluster.
///
/// A message is an arbitrary closure executed on the delivery thread after
/// the link latency elapses. Per-channel FIFO is enforced by never
/// scheduling a delivery earlier than the channel's previous one. The
/// closure should only move data into a thread-safe buffer and return
/// quickly.
///
/// Delivery accounting always closes: after `Shutdown`,
/// `sent_count() == delivered_count() + dropped_count()`. Drops come from
/// link faults (see FaultPlan), sends after shutdown, and messages still
/// queued at shutdown.
class Network {
 public:
  explicit Network(LinkModel link = LinkModel{}, uint64_t seed = 42);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Allocates a new FIFO channel. `from`/`to` optionally tag the channel
  /// with the node ids of its endpoints so per-link faults apply to it;
  /// untagged channels (kAnyNode) are immune to link faults.
  ChannelId OpenChannel(int32_t from = kAnyNode, int32_t to = kAnyNode);

  /// Schedules `deliver` to run after the sampled link latency, in FIFO
  /// order with previous sends on `channel`. Subject to any fault installed
  /// on the channel's (from, to) link. Called from exchange processors on
  /// cooperative workers; the critical section is a bounded enqueue (the
  /// holder never waits), an audited JET_COOPERATIVE boundary.
  void Send(ChannelId channel, std::function<void()> deliver) JET_COOPERATIVE;

  /// Stops the delivery thread; undelivered messages are dropped and
  /// counted in `dropped_count()` (used to model node/network failure at
  /// shutdown).
  void Shutdown();

  // --- Fault injection (testkit) ------------------------------------------

  /// Installs `plan` on the directed link from -> to, replacing any
  /// previous plan (a no-op plan removes the entry).
  void SetLinkFault(int32_t from, int32_t to, FaultPlan plan);

  /// Blocks both directions between `a` and `b` (full partition). Existing
  /// latency/drop settings on the pair are preserved.
  void Partition(int32_t a, int32_t b);

  /// Removes all faults (block, drop, latency) on both directions between
  /// `a` and `b`.
  void Heal(int32_t a, int32_t b);

  /// Removes every installed fault.
  void HealAll();

  /// True if the directed link from -> to is currently blocked.
  bool IsBlocked(int32_t from, int32_t to) const;

  // --- Accounting ---------------------------------------------------------

  /// Messages handed to Send so far (including ones later dropped).
  int64_t sent_count() const;

  /// Messages delivered so far.
  int64_t delivered_count() const;

  /// Messages dropped so far: fault-plan drops + blocked-link drops +
  /// sends after Shutdown + messages undelivered at Shutdown.
  int64_t dropped_count() const;

  /// Sets the latency model for subsequent sends.
  void set_link(LinkModel link);

 private:
  struct Delivery {
    Nanos due;
    int64_t seq;  // tie-break: preserves send order for equal due times
    std::function<void()> fn;
  };
  struct DeliveryLater {
    bool operator()(const Delivery& a, const Delivery& b) const {
      return a.due != b.due ? a.due > b.due : a.seq > b.seq;
    }
  };

  // Delivery thread body: drains queue_ hand-over-hand (closures run with
  // mutex_ released so a delivery may re-enter Send).
  void DeliveryLoop() JET_EXCLUDES(mutex_);

  // Fault plan covering `channel`, or nullptr.
  const FaultPlan* FaultFor(ChannelId channel) const JET_REQUIRES(mutex_);

  WallClock clock_;
  mutable jet::Mutex mutex_;
  jet::CondVar cv_;
  std::priority_queue<Delivery, std::vector<Delivery>, DeliveryLater> queue_
      JET_GUARDED_BY(mutex_);
  std::unordered_map<ChannelId, Nanos> channel_last_due_ JET_GUARDED_BY(mutex_);
  std::unordered_map<ChannelId, std::pair<int32_t, int32_t>> channel_endpoints_
      JET_GUARDED_BY(mutex_);
  std::map<std::pair<int32_t, int32_t>, FaultPlan> faults_ JET_GUARDED_BY(mutex_);
  LinkModel link_ JET_GUARDED_BY(mutex_);
  Rng rng_ JET_GUARDED_BY(mutex_);
  ChannelId next_channel_ JET_GUARDED_BY(mutex_) = 1;
  int64_t next_seq_ JET_GUARDED_BY(mutex_) = 0;
  int64_t sent_ JET_GUARDED_BY(mutex_) = 0;
  int64_t delivered_ JET_GUARDED_BY(mutex_) = 0;
  int64_t dropped_ JET_GUARDED_BY(mutex_) = 0;
  bool shutdown_ JET_GUARDED_BY(mutex_) = false;
  std::thread delivery_thread_;
};

}  // namespace jet::net

#endif  // JETSIM_NET_NETWORK_H_
