#ifndef JETSIM_NET_NETWORK_H_
#define JETSIM_NET_NETWORK_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"

namespace jet::net {

/// Latency model of one network link. Real deployments of the paper run on
/// EC2 (c5.4xlarge); intra-VPC RTTs are ~100-500us. The jitter term makes
/// tail-latency effects observable.
struct LinkModel {
  Nanos base_latency = 100 * kNanosPerMicro;
  Nanos jitter = 20 * kNanosPerMicro;  // uniform in [0, jitter)

  Nanos Sample(Rng* rng) const {
    return base_latency +
           (jitter > 0 ? static_cast<Nanos>(rng->NextBounded(static_cast<uint64_t>(jitter)))
                       : 0);
  }
};

/// Identifier of a FIFO channel between two endpoints. Deliveries on one
/// channel never reorder (TCP-like semantics), which the snapshot barrier
/// protocol depends on.
using ChannelId = int64_t;

/// In-process message network connecting the nodes of a cluster.
///
/// A message is an arbitrary closure executed on the delivery thread after
/// the link latency elapses. Per-channel FIFO is enforced by never
/// scheduling a delivery earlier than the channel's previous one. The
/// closure should only move data into a thread-safe buffer and return
/// quickly.
class Network {
 public:
  explicit Network(LinkModel link = LinkModel{}, uint64_t seed = 42);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Allocates a new FIFO channel.
  ChannelId OpenChannel();

  /// Schedules `deliver` to run after the sampled link latency, in FIFO
  /// order with previous sends on `channel`.
  void Send(ChannelId channel, std::function<void()> deliver);

  /// Stops the delivery thread; undelivered messages are dropped (used to
  /// model node/network failure at shutdown).
  void Shutdown();

  /// Messages delivered so far.
  int64_t delivered_count() const;

  /// Sets the latency model for subsequent sends.
  void set_link(LinkModel link);

 private:
  struct Delivery {
    Nanos due;
    int64_t seq;  // tie-break: preserves send order for equal due times
    std::function<void()> fn;
  };
  struct DeliveryLater {
    bool operator()(const Delivery& a, const Delivery& b) const {
      return a.due != b.due ? a.due > b.due : a.seq > b.seq;
    }
  };

  void DeliveryLoop();

  WallClock clock_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<Delivery, std::vector<Delivery>, DeliveryLater> queue_;
  std::unordered_map<ChannelId, Nanos> channel_last_due_;
  LinkModel link_;
  Rng rng_;
  ChannelId next_channel_ = 1;
  int64_t next_seq_ = 0;
  int64_t delivered_ = 0;
  bool shutdown_ = false;
  std::thread delivery_thread_;
};

}  // namespace jet::net

#endif  // JETSIM_NET_NETWORK_H_
