#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace jet::net {
namespace {

Status ErrnoError(const std::string& what) {
  return UnavailableError(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoError("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

Status FillUnixAddr(const std::string& path, sockaddr_un* addr) {
  if (path.size() >= sizeof(addr->sun_path)) {
    return InvalidArgumentError("unix socket path too long: " + path);
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::OK();
}

// Grace period Close() allows for flushing pending writes before the
// remainder is dropped.
constexpr int kCloseFlushMs = 2000;

}  // namespace

// ---- SocketConnection ------------------------------------------------------

SocketConnection::SocketConnection(int fd) : fd_(fd) {
  // The self-pipe lets SendFrame/Close wake the I/O thread out of poll()
  // without touching the socket. Nonblocking on both ends: a full pipe
  // just means a wakeup is already queued.
  if (::pipe(wake_pipe_) != 0) {
    wake_pipe_[0] = wake_pipe_[1] = -1;
  } else {
    (void)SetNonBlocking(wake_pipe_[0]);
    (void)SetNonBlocking(wake_pipe_[1]);
  }
  (void)SetNonBlocking(fd_);
#ifdef SO_NOSIGPIPE
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
}

std::unique_ptr<SocketConnection> SocketConnection::Adopt(int fd) {
  return std::unique_ptr<SocketConnection>(new SocketConnection(fd));
}

Result<std::unique_ptr<SocketConnection>> SocketConnection::ConnectUnix(
    const std::string& path) {
  sockaddr_un addr{};
  JET_RETURN_IF_ERROR(FillUnixAddr(path, &addr));
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("socket(AF_UNIX)");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = ErrnoError("connect(" + path + ")");
    ::close(fd);
    return s;
  }
  return Adopt(fd);
}

Result<std::unique_ptr<SocketConnection>> SocketConnection::ConnectUnixWithRetry(
    const std::string& path, int64_t timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  Status last = UnavailableError("connect not attempted");
  while (true) {
    auto conn = ConnectUnix(path);
    if (conn.ok()) return conn;
    last = conn.status();
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return last;
}

namespace {

// Shared retry loop of the *WithBackoff connectors: keep dialing under the
// RetryBackoff ladder until a connect succeeds or the budget runs out.
template <typename ConnectFn>
Result<std::unique_ptr<SocketConnection>> ConnectWithBackoffImpl(
    const std::string& target, const BackoffOptions& backoff, uint64_t stream_id,
    ConnectFn&& connect) {
  RetryBackoff policy(backoff, stream_id);
  int attempts = 0;
  while (true) {
    ++attempts;
    auto conn = connect();
    if (conn.ok()) return conn;
    auto delay = policy.NextDelay();
    if (!delay.has_value()) {
      return UnavailableError("connect(" + target + ") failed after " +
                              std::to_string(attempts) +
                              " attempts: " + conn.status().message());
    }
    std::this_thread::sleep_for(std::chrono::nanoseconds(*delay));
  }
}

}  // namespace

Result<std::unique_ptr<SocketConnection>> SocketConnection::ConnectUnixWithBackoff(
    const std::string& path, const BackoffOptions& backoff, uint64_t stream_id) {
  return ConnectWithBackoffImpl(path, backoff, stream_id,
                                [&] { return ConnectUnix(path); });
}

Result<std::unique_ptr<SocketConnection>> SocketConnection::ConnectTcpWithBackoff(
    const std::string& host, uint16_t port, const BackoffOptions& backoff,
    uint64_t stream_id) {
  return ConnectWithBackoffImpl(host + ":" + std::to_string(port), backoff,
                                stream_id, [&] { return ConnectTcp(host, port); });
}

Result<std::unique_ptr<SocketConnection>> SocketConnection::ConnectTcp(
    const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("bad IPv4 address: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("socket(AF_INET)");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = ErrnoError("connect(" + host + ")");
    ::close(fd);
    return s;
  }
  return Adopt(fd);
}

SocketConnection::~SocketConnection() { Close(); }

void SocketConnection::Start(FrameHandler on_frame, CloseHandler on_close) {
  on_frame_ = std::move(on_frame);
  on_close_ = std::move(on_close);
  io_thread_ = std::thread([this] { IoLoop(); });
}

Status SocketConnection::SendFrame(Bytes frame) {
  if (frame.size() > kMaxWireFrameBytes) {
    return InvalidArgumentError("frame exceeds kMaxWireFrameBytes");
  }
  // jet-verify: allow(single-writer) — monotonic stats counter; fetch_add
  // is a full RMW so concurrent senders never lose increments, and readers
  // only compare totals after Close().
  sent_.fetch_add(1, std::memory_order_relaxed);

  // Attach the length prefix here so the I/O thread's write path is a
  // single contiguous buffer per frame.
  Bytes buf;
  buf.reserve(frame.size() + 4);
  uint32_t len = static_cast<uint32_t>(frame.size());
  buf.push_back(static_cast<uint8_t>(len));
  buf.push_back(static_cast<uint8_t>(len >> 8));
  buf.push_back(static_cast<uint8_t>(len >> 16));
  buf.push_back(static_cast<uint8_t>(len >> 24));
  buf.insert(buf.end(), frame.begin(), frame.end());
  {
    MutexLock lock(pending_mu_);
    if (closing_ || stopped_.load(std::memory_order_acquire)) {
      // jet-verify: allow(single-writer) — monotonic stats counter (RMW);
      // post-close sends count as sent+dropped to keep accounting balanced.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return UnavailableError("connection closed");
    }
    pending_.push_back(std::move(buf));
  }
  Wake();
  return Status::OK();
}

void SocketConnection::Wake() {
  if (wake_pipe_[1] >= 0) {
    uint8_t b = 1;
    ssize_t ignored = ::write(wake_pipe_[1], &b, 1);  // full pipe == already awake
    (void)ignored;
  }
}

bool SocketConnection::FlushPending() {
  while (true) {
    const uint8_t* data = nullptr;
    size_t len = 0;
    {
      MutexLock lock(pending_mu_);
      if (pending_.empty()) return true;
      const Bytes& front = pending_.front();
      data = front.data() + front_offset_;
      len = front.size() - front_offset_;
    }
    // The front buffer stays stable while we write: only the I/O thread
    // pops, and SendFrame only appends at the back.
#ifdef MSG_NOSIGNAL
    ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
#else
    ssize_t n = ::send(fd_, data, len, 0);
#endif
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // poll for POLLOUT
      if (errno == EINTR) continue;
      return false;
    }
    MutexLock lock(pending_mu_);
    front_offset_ += static_cast<size_t>(n);
    if (front_offset_ == pending_.front().size()) {
      pending_.pop_front();
      front_offset_ = 0;
      // jet-verify: allow(single-writer) — monotonic stats counter with
      // exactly one writer (the I/O thread); readers compare after Close().
      delivered_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

bool SocketConnection::ParseFrames() {
  while (true) {
    size_t avail = read_buf_.size() - read_pos_;
    if (avail < 4) break;
    const uint8_t* p = read_buf_.data() + read_pos_;
    uint32_t len = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
                   (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
    if (len > kMaxWireFrameBytes) return false;  // protocol error
    if (avail < 4 + static_cast<size_t>(len)) break;
    Bytes frame(p + 4, p + 4 + len);
    read_pos_ += 4 + static_cast<size_t>(len);
    if (on_frame_) on_frame_(std::move(frame));
  }
  // Compact once the consumed prefix dominates, keeping parsing amortized
  // O(1) per byte instead of erase-from-front O(n^2).
  if (read_pos_ > 0 && read_pos_ * 2 >= read_buf_.size()) {
    read_buf_.erase(read_buf_.begin(), read_buf_.begin() + static_cast<ptrdiff_t>(read_pos_));
    read_pos_ = 0;
  }
  return true;
}

void SocketConnection::IoLoop() {
  bool failed = false;
  auto flush_deadline = std::chrono::steady_clock::time_point::max();
  uint8_t scratch[64 * 1024];

  while (true) {
    bool want_write = false;
    bool closing = false;
    {
      MutexLock lock(pending_mu_);
      want_write = !pending_.empty();
      closing = closing_;
    }
    if (failed) break;
    if (closing) {
      if (!want_write) break;  // flushed everything
      if (flush_deadline == std::chrono::steady_clock::time_point::max()) {
        flush_deadline =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(kCloseFlushMs);
      } else if (std::chrono::steady_clock::now() >= flush_deadline) {
        break;  // grace period over; the rest is dropped
      }
    }

    pollfd fds[2];
    fds[0].fd = fd_;
    fds[0].events = static_cast<short>(POLLIN | (want_write ? POLLOUT : 0));
    fds[0].revents = 0;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    int nfds = wake_pipe_[0] >= 0 ? 2 : 1;
    int rc = ::poll(fds, static_cast<nfds_t>(nfds), 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      failed = true;
      continue;
    }

    if (nfds == 2 && (fds[1].revents & POLLIN)) {
      uint8_t drain[256];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }

    if (fds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
      while (true) {
        ssize_t n = ::recv(fd_, scratch, sizeof(scratch), 0);
        if (n > 0) {
          read_buf_.insert(read_buf_.end(), scratch, scratch + n);
          continue;
        }
        if (n == 0) {
          failed = true;  // peer EOF (includes kill -9 of the peer)
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        failed = true;
        break;
      }
      if (!ParseFrames()) failed = true;  // oversized-frame protocol error
    }

    if (!failed && (fds[0].revents & POLLOUT || want_write)) {
      if (!FlushPending()) failed = true;
    }
  }

  // Account for everything that never made it out.
  {
    MutexLock lock(pending_mu_);
    closing_ = true;
    // jet-verify: allow(single-writer) — monotonic stats counter (RMW)
    // finalized under pending_mu_; read only after Close() returns.
    dropped_.fetch_add(pending_.size(), std::memory_order_relaxed);
    pending_.clear();
    front_offset_ = 0;
  }
  stopped_.store(true, std::memory_order_release);
  if (on_close_) on_close_();
}

void SocketConnection::Close() {
  bool already = false;
  {
    MutexLock lock(pending_mu_);
    already = closing_;
    closing_ = true;
  }
  if (!already) Wake();
  if (io_thread_.joinable() && io_thread_.get_id() != std::this_thread::get_id()) {
    io_thread_.join();
  }
  if (!io_thread_.joinable()) {
    // Never started: drop anything enqueued so accounting still balances.
    MutexLock lock(pending_mu_);
    // jet-verify: allow(single-writer) — monotonic stats counter (RMW)
    // finalized under pending_mu_; read only after Close() returns.
    dropped_.fetch_add(pending_.size(), std::memory_order_relaxed);
    pending_.clear();
    stopped_.store(true, std::memory_order_release);
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  for (int& p : wake_pipe_) {
    if (p >= 0) {
      ::close(p);
      p = -1;
    }
  }
}

// ---- SocketServer ----------------------------------------------------------

SocketServer::SocketServer(int fd, std::string path, uint16_t port)
    : fd_(fd), path_(std::move(path)), port_(port) {
  if (::pipe(wake_pipe_) != 0) {
    wake_pipe_[0] = wake_pipe_[1] = -1;
  } else {
    (void)SetNonBlocking(wake_pipe_[0]);
    (void)SetNonBlocking(wake_pipe_[1]);
  }
}

Result<std::unique_ptr<SocketServer>> SocketServer::ListenUnix(const std::string& path) {
  sockaddr_un addr{};
  JET_RETURN_IF_ERROR(FillUnixAddr(path, &addr));
  ::unlink(path.c_str());
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("socket(AF_UNIX)");
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = ErrnoError("bind(" + path + ")");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    Status s = ErrnoError("listen(" + path + ")");
    ::close(fd);
    return s;
  }
  return std::unique_ptr<SocketServer>(new SocketServer(fd, path, 0));
}

Result<std::unique_ptr<SocketServer>> SocketServer::ListenTcp(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("socket(AF_INET)");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = ErrnoError("bind(127.0.0.1)");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    Status s = ErrnoError("listen(tcp)");
    ::close(fd);
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    Status s = ErrnoError("getsockname");
    ::close(fd);
    return s;
  }
  return std::unique_ptr<SocketServer>(new SocketServer(fd, "", ntohs(addr.sin_port)));
}

SocketServer::~SocketServer() { Stop(); }

void SocketServer::Start(AcceptHandler on_accept) {
  on_accept_ = std::move(on_accept);
  started_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void SocketServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0].fd = fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    int nfds = wake_pipe_[0] >= 0 ? 2 : 1;
    int rc = ::poll(fds, static_cast<nfds_t>(nfds), 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (!(fds[0].revents & POLLIN)) continue;
    int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;
    }
    if (on_accept_) on_accept_(SocketConnection::Adopt(client));
  }
}

void SocketServer::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (wake_pipe_[1] >= 0) {
    uint8_t b = 1;
    ssize_t ignored = ::write(wake_pipe_[1], &b, 1);
    (void)ignored;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) ::unlink(path_.c_str());
  for (int& p : wake_pipe_) {
    if (p >= 0) {
      ::close(p);
      p = -1;
    }
  }
}

}  // namespace jet::net
