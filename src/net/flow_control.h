#ifndef JETSIM_NET_FLOW_CONTROL_H_
#define JETSIM_NET_FLOW_CONTROL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>

#include "common/clock.h"

namespace jet::net {

/// Sender-side state of the paper's adaptive receive-window protocol
/// (§3.3): "the producer must wait for an acknowledgment from the consumer
/// specifying how many data items the producer can send. After processing
/// item n, the receiver sends a message that the sender can send up to item
/// n + receive_window."
///
/// `send_limit` is updated by ack messages arriving on the network thread;
/// the sender thread reads it lock-free.
struct SenderFlowState {
  std::atomic<int64_t> send_limit{0};

  /// Applies an ack carrying a new limit (monotonic).
  void OnAck(int64_t new_limit) {
    int64_t cur = send_limit.load(std::memory_order_relaxed);
    while (new_limit > cur &&
           !send_limit.compare_exchange_weak(cur, new_limit, std::memory_order_release)) {
    }
  }

  /// True when `sent_seq` may still be sent.
  bool MaySend(int64_t sent_seq) const {
    return sent_seq < send_limit.load(std::memory_order_acquire);
  }

  /// Current limit; safe from any thread (obs callback gauges poll this).
  int64_t SendLimit() const { return send_limit.load(std::memory_order_acquire); }
};

/// Receiver-side window sizing (§3.3): the consumer acks every
/// `ack_interval` (100 ms in the paper) and "calculates the size of the
/// receive_window based on the rate of event processing ... In stable
/// state the receive_window contains roughly 300 milliseconds' worth of
/// data", i.e. window = window_multiplier * items processed per ack period.
class ReceiveWindowController {
 public:
  struct Options {
    Nanos ack_interval = 100 * kNanosPerMilli;
    /// Window as a multiple of per-ack-period throughput (300ms / 100ms).
    double window_multiplier = 3.0;
    int64_t min_window = 1024;
    int64_t max_window = 1 << 22;
  };

  ReceiveWindowController() : ReceiveWindowController(Options{}) {}
  explicit ReceiveWindowController(Options options) : options_(options) {}

  /// Called by the receiver after forwarding items downstream; returns the
  /// new send limit to ack, or -1 if it is not yet time to ack.
  int64_t MaybeAck(Nanos now, int64_t processed_seq) {
    if (last_ack_time_ >= 0 && now - last_ack_time_ < options_.ack_interval) return -1;
    int64_t processed_delta = processed_seq - processed_at_last_ack_;
    if (last_ack_time_ >= 0) {
      double periods = static_cast<double>(now - last_ack_time_) /
                       static_cast<double>(options_.ack_interval);
      if (periods > 0) {
        auto throughput_window = static_cast<int64_t>(
            options_.window_multiplier * static_cast<double>(processed_delta) / periods);
        window_ = std::clamp(throughput_window, options_.min_window, options_.max_window);
      }
    }
    last_ack_time_ = now;
    processed_at_last_ack_ = processed_seq;
    return processed_seq + window_;
  }

  int64_t window() const { return window_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  Nanos last_ack_time_ = -1;
  int64_t processed_at_last_ack_ = 0;
  int64_t window_ = 1024;  // initial window until the first measurement
};

}  // namespace jet::net

#endif  // JETSIM_NET_FLOW_CONTROL_H_
