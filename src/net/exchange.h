#ifndef JETSIM_NET_EXCHANGE_H_
#define JETSIM_NET_EXCHANGE_H_

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "common/debug_check.h"
#include "common/thread_annotations.h"
#include "core/execution_plan.h"
#include "core/processor.h"
#include "core/tasklet.h"
#include "net/flow_control.h"
#include "net/network.h"
#include "net/wire_format.h"
#include "obs/metrics_registry.h"

namespace jet::net {

/// Thread-safe inbound buffer of a network receiver; the network delivery
/// thread pushes item batches, the receiver tasklet drains them.
///
/// Batches are kept as whole frames (one vector per Push) so a push is a
/// single move under the lock rather than a per-item copy loop, and a
/// drain can steal an entire frame wholesale — the serialized-batch path
/// of §3.1's exchange operators.
///
/// The mutex makes any interleaving memory-safe, but the exchange protocol
/// additionally requires a single pusher (the channel's delivery thread —
/// FIFO order would break with two) and a single drainer (the receiver
/// tasklet); both roles are asserted under JETSIM_DEBUG_CHECKS.
///
/// The drain side runs on a cooperative worker inside Processor hot paths;
/// its critical sections are bounded (vector moves only, the holder never
/// blocks), so the JET_COOPERATIVE methods are an audited boundary for the
/// jet-verify blocking checker rather than a violation.
class WireBuffer {
 public:
  void Push(std::vector<core::Item>&& batch) {
    JET_DCHECK_SINGLE_THREAD(pusher_guard_, "WireBuffer pusher (Push)");
    if (batch.empty()) return;
    jet::MutexLock lock(mutex_);
    size_ += batch.size();
    frames_.push_back(std::move(batch));
  }

  /// Moves up to `limit` items into `out`; returns the number moved. When
  /// `out` is empty and the front frame fits under `limit` whole, the frame
  /// is stolen with a single vector move.
  size_t DrainInto(std::vector<core::Item>* out, size_t limit) JET_COOPERATIVE {
    JET_DCHECK_SINGLE_THREAD(drainer_guard_, "WireBuffer drainer (DrainInto)");
    jet::MutexLock lock(mutex_);
    size_t n = 0;
    while (n < limit && !frames_.empty()) {
      std::vector<core::Item>& front = frames_.front();
      if (n == 0 && front_pos_ == 0 && out->empty() && front.size() <= limit) {
        n = front.size();
        *out = std::move(front);
        frames_.pop_front();
        continue;
      }
      while (n < limit && front_pos_ < front.size()) {
        out->push_back(std::move(front[front_pos_]));
        ++front_pos_;
        ++n;
      }
      if (front_pos_ == front.size()) {
        frames_.pop_front();
        front_pos_ = 0;
      } else {
        break;
      }
    }
    size_ -= n;
    return n;
  }

  /// Item-at-a-time variant kept for callers staging into a deque.
  size_t Drain(std::deque<core::Item>* out, size_t limit) JET_COOPERATIVE {
    JET_DCHECK_SINGLE_THREAD(drainer_guard_, "WireBuffer drainer (Drain)");
    jet::MutexLock lock(mutex_);
    size_t n = 0;
    while (n < limit && !frames_.empty()) {
      std::vector<core::Item>& front = frames_.front();
      while (n < limit && front_pos_ < front.size()) {
        out->push_back(std::move(front[front_pos_]));
        ++front_pos_;
        ++n;
      }
      if (front_pos_ == front.size()) {
        frames_.pop_front();
        front_pos_ = 0;
      } else {
        break;
      }
    }
    size_ -= n;
    return n;
  }

  size_t Size() const JET_COOPERATIVE {
    jet::MutexLock lock(mutex_);
    return size_;
  }

  /// Unbinds the drainer role; called when the receiver tasklet is handed
  /// to another cooperative worker (the scheduler's migration protocol
  /// orders the release before the new owner's first Drain).
  void ReleaseDrainer() { drainer_guard_.Release(); }

 private:
  mutable jet::Mutex mutex_;
  std::deque<std::vector<core::Item>> frames_ JET_GUARDED_BY(mutex_);
  // consumed prefix of frames_.front()
  size_t front_pos_ JET_GUARDED_BY(mutex_) = 0;
  // total items across frames
  size_t size_ JET_GUARDED_BY(mutex_) = 0;
  debug::ThreadOwnershipGuard pusher_guard_;
  debug::ThreadOwnershipGuard drainer_guard_;
};

/// Transport of one directed hop of one distributed edge. The exchange
/// processors are written against this interface alone, so the same
/// sender/receiver logic runs over the in-memory bus (InProcessFrameLink)
/// or a real socket to another OS process (procmode's SocketFrameLink) —
/// the §3.3 flow-control protocol is identical either way.
///
/// Both methods are called from cooperative tasklet hot paths and must be
/// bounded: enqueue-and-wake only, never blocking I/O.
class FrameLink {
 public:
  virtual ~FrameLink() = default;
  /// Ships one frame of items toward the receiver's WireBuffer.
  virtual void SendData(std::vector<core::Item>&& frame) JET_COOPERATIVE = 0;
  /// Ships a receive-window advance (new send limit) back to the sender.
  virtual void SendAck(int64_t new_limit) JET_COOPERATIVE = 0;
};

/// Rendezvous state of one directed network hop of one distributed edge:
/// sender on `from` node, receiver on `to` node.
struct ExchangeChannel {
  std::shared_ptr<WireBuffer> wire = std::make_shared<WireBuffer>();
  std::shared_ptr<SenderFlowState> flow = std::make_shared<SenderFlowState>();
  std::shared_ptr<FrameLink> link;
  ChannelId data_channel = 0;
  ChannelId ack_channel = 0;
};

/// Knobs applied to every channel an ExchangeRegistry creates.
struct ExchangeOptions {
  /// Round-trip every data/ack frame through the wire codec even though
  /// the hop is in-process. Opt-in: it makes the simulated cluster pay the
  /// real serialization cost (EXPERIMENTS.md) at the price of the copy.
  bool serialize_frames = false;
  /// Execution epoch stamped into frame headers. Process mode uses the
  /// attempt number so a dispatcher can discard stragglers from a
  /// torn-down attempt; in-process executions leave it 0.
  int64_t epoch = 0;
};

/// Registry shared by all nodes of one job execution, pairing senders with
/// receivers. Thread-safe. Subclasses (procmode) override MakeLink to put
/// channels on a real transport.
class ExchangeRegistry {
 public:
  /// `physical_node_ids` maps plan-local node index -> the member's
  /// physical id, so channels are endpoint-tagged and per-link faults
  /// (Network::SetLinkFault / Partition) apply to this execution's
  /// traffic. When empty, channels are untagged and immune to faults.
  explicit ExchangeRegistry(Network* network, std::vector<int32_t> physical_node_ids = {},
                            ExchangeOptions options = {})
      : network_(network),
        physical_node_ids_(std::move(physical_node_ids)),
        options_(options) {}
  virtual ~ExchangeRegistry() = default;

  /// Returns (creating on first use) the channel of (edge, from, to).
  std::shared_ptr<ExchangeChannel> GetOrCreate(int32_t edge_index, int32_t from_node,
                                               int32_t to_node);

  Network* network() const { return network_; }

 protected:
  /// Builds the transport for a freshly created channel. Called with the
  /// registry mutex held — implementations must not re-enter GetOrCreate.
  /// The default wires the channel over the in-memory bus.
  virtual std::shared_ptr<FrameLink> MakeLink(const ExchangeChannel& channel,
                                              int32_t edge_index, int32_t from_node,
                                              int32_t to_node);

  const ExchangeOptions& options() const { return options_; }

 private:
  int32_t PhysicalIdOf(int32_t plan_node) const;

  Network* network_;
  std::vector<int32_t> physical_node_ids_;
  ExchangeOptions options_;
  jet::Mutex mutex_;
  std::map<std::tuple<int32_t, int32_t, int32_t>, std::shared_ptr<ExchangeChannel>>
      channels_ JET_GUARDED_BY(mutex_);
};

/// The sender-side exchange operator (§3.1): consumes the items the local
/// producers routed to one remote node and ships them over the network,
/// subject to the adaptive receive window (§3.3). Watermarks, snapshot
/// barriers and completion all travel through the same FIFO channel. The
/// hosting ProcessorTasklet performs the per-producer watermark coalescing
/// and exactly-once barrier alignment before this processor sees anything.
class SenderProcessor final : public core::Processor {
 public:
  explicit SenderProcessor(std::shared_ptr<ExchangeChannel> channel, int32_t max_batch = 64);

  Status Init(core::ProcessorContext* ctx) override;
  void Process(int ordinal, core::Inbox* inbox) override;
  bool TryProcessWatermark(Nanos wm) override;
  bool OnSnapshotCompleted(int64_t snapshot_id) override;
  bool Complete() override;

  int64_t items_sent() const { return sent_seq_; }

 private:
  void SendBatch(std::vector<core::Item>&& batch);

  std::shared_ptr<ExchangeChannel> channel_;
  int32_t max_batch_;
  int64_t sent_seq_ = 0;
  bool done_sent_ = false;

  // Flow-control instruments (§3.3), written only by the hosting tasklet's
  // worker thread; the send-limit gauge is a registry callback reading the
  // atomic SenderFlowState instead. batch_size records how many items each
  // wire frame carried — the lever the batched exchange path optimizes.
  obs::Counter items_sent_counter_;
  obs::Gauge window_available_gauge_;
  obs::HistogramHandle batch_size_hist_{/*max_value=*/64 * 1024};
};

/// The receiver-side exchange operator: drains the wire buffer, re-emits
/// data and control items to the local consumer queues, and acknowledges
/// progress every ack interval so the sender's window advances (§3.3).
/// Runs as an input-less tasklet but does NOT initiate snapshots — it
/// forwards the barriers that arrive on the wire.
class ReceiverProcessor final : public core::Processor {
 public:
  explicit ReceiverProcessor(std::shared_ptr<ExchangeChannel> channel,
                             ReceiveWindowController::Options window_options = {});

  Status Init(core::ProcessorContext* ctx) override;
  bool Complete() override;
  bool InitiatesSnapshots() const override { return false; }

  /// The receiver's worker thread holds the wire buffer's drainer role;
  /// unbind it so a migration can rebind on the new worker.
  void ReleaseWorkerOwnership() override { channel_->wire->ReleaseDrainer(); }

  int64_t items_forwarded() const { return forwarded_seq_; }
  int64_t current_window() const { return window_ctl_.window(); }

 private:
  std::shared_ptr<ExchangeChannel> channel_;
  ReceiveWindowController window_ctl_;
  // Staged wire frame, consumed through a cursor so frames drained with a
  // single vector steal need no per-item pop.
  std::vector<core::Item> staged_;
  size_t staged_pos_ = 0;
  int64_t forwarded_seq_ = 0;
  bool saw_done_ = false;

  // Receiver-side instruments: forwarded items, acks put on the wire, and
  // the adaptive receive-window size after each recalculation (§3.3). The
  // wire-buffer depth is a registry callback (WireBuffer::Size is
  // mutex-safe).
  obs::Counter items_forwarded_counter_;
  obs::Counter acks_sent_counter_;
  obs::Gauge receive_window_gauge_;
};

/// Builds the cross-node plumbing for one node of a multi-node execution:
/// implements core::RemoteEdgeFactory for ExecutionPlan::Build, then
/// `TakeTasklets()` returns the sender/receiver tasklets to schedule
/// alongside the plan's own.
class NetworkEdgeFactory final : public core::RemoteEdgeFactory {
 public:
  /// `registry` is shared by all nodes of the execution. `dag` must
  /// outlive the factory. `snapshot_control` is the node's control block
  /// (may be null without a guarantee).
  NetworkEdgeFactory(ExchangeRegistry* registry, const core::Dag* dag,
                     core::NodeInfo node, const core::JobConfig& config,
                     int32_t default_local_parallelism, const Clock* clock,
                     const std::atomic<bool>* cancelled,
                     core::SnapshotControl* snapshot_control);

  core::RemoteSink SenderFor(const core::Edge& e, int32_t dest_node,
                             int32_t producer_local_index) override;

  std::vector<core::ItemQueuePtr> ReceiverQueuesFor(
      const core::Edge& e, int32_t consumer_local_index) override;

  /// Builds and returns all sender/receiver tasklets. Call exactly once,
  /// after ExecutionPlan::Build.
  std::vector<std::unique_ptr<core::ProcessorTasklet>> TakeTasklets();

  /// Member-wide registry the exchange tasklets register their instruments
  /// with; call before TakeTasklets. Optional.
  void SetMetricsRegistry(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

 private:
  int32_t EdgeIndexOf(const core::Edge& e) const;
  int32_t LocalParallelismOf(core::VertexId v) const;
  core::ProcessorContext MakeContext(core::VertexId vertex) const;

  ExchangeRegistry* registry_;
  const core::Dag* dag_;
  core::NodeInfo node_;
  core::JobConfig config_;
  int32_t default_local_parallelism_;
  const Clock* clock_;
  const std::atomic<bool>* cancelled_;
  core::SnapshotControl* snapshot_control_;
  obs::MetricsRegistry* metrics_ = nullptr;

  // (edge_index, dest_node) -> per-producer queues feeding the sender.
  std::map<std::pair<int32_t, int32_t>, std::vector<core::ItemQueuePtr>> sender_queues_;
  // (edge_index, from_node) -> per-consumer-instance queues the receiver
  // fills.
  std::map<std::pair<int32_t, int32_t>, std::vector<core::ItemQueuePtr>> receiver_queues_;
};

}  // namespace jet::net

#endif  // JETSIM_NET_EXCHANGE_H_
