#include "net/network.h"

#include <algorithm>

namespace jet::net {

Network::Network(LinkModel link, uint64_t seed) : link_(link), rng_(seed) {
  delivery_thread_ = std::thread([this]() { DeliveryLoop(); });
}

Network::~Network() { Shutdown(); }

ChannelId Network::OpenChannel(int32_t from, int32_t to) {
  jet::MutexLock lock(mutex_);
  ChannelId id = next_channel_++;
  if (from != kAnyNode || to != kAnyNode) {
    channel_endpoints_.emplace(id, std::make_pair(from, to));
  }
  return id;
}

const FaultPlan* Network::FaultFor(ChannelId channel) const {
  if (faults_.empty()) return nullptr;
  auto ep = channel_endpoints_.find(channel);
  if (ep == channel_endpoints_.end()) return nullptr;
  auto it = faults_.find(ep->second);
  return it != faults_.end() ? &it->second : nullptr;
}

void Network::Send(ChannelId channel, std::function<void()> deliver) {
  jet::MutexLock lock(mutex_);
  ++sent_;
  if (shutdown_) {
    ++dropped_;
    return;
  }
  Nanos extra = 0;
  if (const FaultPlan* fault = FaultFor(channel); fault != nullptr) {
    if (fault->blocked ||
        (fault->drop_probability > 0.0 && rng_.NextDouble() < fault->drop_probability)) {
      ++dropped_;
      return;
    }
    extra = fault->extra_latency;
    if (fault->spike_probability > 0.0 && fault->spike_latency > 0 &&
        rng_.NextDouble() < fault->spike_probability) {
      extra += fault->spike_latency;
    }
  }
  Nanos due = clock_.Now() + link_.Sample(&rng_) + extra;
  // FIFO per channel: never schedule before the channel's previous message.
  auto [it, inserted] = channel_last_due_.try_emplace(channel, due);
  if (!inserted) {
    due = std::max(due, it->second);
    it->second = due;
  }
  queue_.push(Delivery{due, next_seq_++, std::move(deliver)});
  cv_.NotifyOne();
}

void Network::Shutdown() {
  {
    jet::MutexLock lock(mutex_);
    if (!shutdown_) {
      shutdown_ = true;
      // Everything still queued will never run: account it as dropped so
      // sent == delivered + dropped holds at teardown.
      dropped_ += static_cast<int64_t>(queue_.size());
    }
    cv_.NotifyAll();
  }
  if (delivery_thread_.joinable()) delivery_thread_.join();
}

void Network::SetLinkFault(int32_t from, int32_t to, FaultPlan plan) {
  jet::MutexLock lock(mutex_);
  auto key = std::make_pair(from, to);
  if (plan.IsNoop()) {
    faults_.erase(key);
  } else {
    faults_[key] = plan;
  }
}

void Network::Partition(int32_t a, int32_t b) {
  jet::MutexLock lock(mutex_);
  faults_[{a, b}].blocked = true;
  faults_[{b, a}].blocked = true;
}

void Network::Heal(int32_t a, int32_t b) {
  jet::MutexLock lock(mutex_);
  faults_.erase({a, b});
  faults_.erase({b, a});
}

void Network::HealAll() {
  jet::MutexLock lock(mutex_);
  faults_.clear();
}

bool Network::IsBlocked(int32_t from, int32_t to) const {
  jet::MutexLock lock(mutex_);
  auto it = faults_.find({from, to});
  return it != faults_.end() && it->second.blocked;
}

int64_t Network::sent_count() const {
  jet::MutexLock lock(mutex_);
  return sent_;
}

int64_t Network::delivered_count() const {
  jet::MutexLock lock(mutex_);
  return delivered_;
}

int64_t Network::dropped_count() const {
  jet::MutexLock lock(mutex_);
  return dropped_;
}

void Network::set_link(LinkModel link) {
  jet::MutexLock lock(mutex_);
  link_ = link;
}

void Network::DeliveryLoop() {
  jet::UniqueMutexLock lock(mutex_);
  while (true) {
    if (shutdown_) return;
    if (queue_.empty()) {
      cv_.Wait(mutex_, [this]() JET_REQUIRES(mutex_) {
        return shutdown_ || !queue_.empty();
      });
      continue;
    }
    Nanos now = clock_.Now();
    const Delivery& next = queue_.top();
    if (next.due > now) {
      cv_.WaitFor(mutex_, std::chrono::nanoseconds(next.due - now));
      continue;
    }
    // Move the closure out before unlocking.
    auto fn = std::move(const_cast<Delivery&>(next).fn);
    queue_.pop();
    ++delivered_;
    lock.Unlock();
    fn();
    lock.Lock();
  }
}

}  // namespace jet::net
