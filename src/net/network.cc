#include "net/network.h"

#include <algorithm>

namespace jet::net {

Network::Network(LinkModel link, uint64_t seed) : link_(link), rng_(seed) {
  delivery_thread_ = std::thread([this]() { DeliveryLoop(); });
}

Network::~Network() { Shutdown(); }

ChannelId Network::OpenChannel() {
  std::scoped_lock lock(mutex_);
  return next_channel_++;
}

void Network::Send(ChannelId channel, std::function<void()> deliver) {
  std::scoped_lock lock(mutex_);
  if (shutdown_) return;
  Nanos due = clock_.Now() + link_.Sample(&rng_);
  // FIFO per channel: never schedule before the channel's previous message.
  auto [it, inserted] = channel_last_due_.try_emplace(channel, due);
  if (!inserted) {
    due = std::max(due, it->second);
    it->second = due;
  }
  queue_.push(Delivery{due, next_seq_++, std::move(deliver)});
  cv_.notify_one();
}

void Network::Shutdown() {
  {
    std::scoped_lock lock(mutex_);
    if (shutdown_) {
      // Already requested; fall through to join below.
    }
    shutdown_ = true;
    cv_.notify_all();
  }
  if (delivery_thread_.joinable()) delivery_thread_.join();
}

int64_t Network::delivered_count() const {
  std::scoped_lock lock(mutex_);
  return delivered_;
}

void Network::set_link(LinkModel link) {
  std::scoped_lock lock(mutex_);
  link_ = link;
}

void Network::DeliveryLoop() {
  std::unique_lock lock(mutex_);
  while (true) {
    if (shutdown_) return;
    if (queue_.empty()) {
      cv_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
      continue;
    }
    Nanos now = clock_.Now();
    const Delivery& next = queue_.top();
    if (next.due > now) {
      cv_.wait_for(lock, std::chrono::nanoseconds(next.due - now));
      continue;
    }
    // Move the closure out before unlocking.
    auto fn = std::move(const_cast<Delivery&>(next).fn);
    queue_.pop();
    ++delivered_;
    lock.unlock();
    fn();
    lock.lock();
  }
}

}  // namespace jet::net
