#ifndef JETSIM_CLUSTER_JET_CLUSTER_H_
#define JETSIM_CLUSTER_JET_CLUSTER_H_

#include <atomic>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "cluster/health_monitor.h"
#include "common/thread_annotations.h"
#include "cluster/job_supervisor.h"
#include "core/dag.h"
#include "core/execution_plan.h"
#include "core/execution_service.h"
#include "core/job.h"
#include "core/metrics.h"
#include "imdg/grid.h"
#include "imdg/snapshot_store.h"
#include "net/exchange.h"
#include "net/network.h"
#include "obs/collector_tasklet.h"
#include "obs/event_loop_profiler.h"
#include "obs/exporters.h"
#include "obs/metrics_registry.h"

namespace jet::cluster {

/// Configuration of an in-process Jet cluster.
struct ClusterConfig {
  int32_t initial_nodes = 3;
  /// Cooperative worker threads per node (the paper uses 12 of 16 vCPUs;
  /// in-process clusters keep this small).
  int32_t threads_per_node = 2;
  /// IMDG backup replicas per partition.
  int32_t backup_count = 1;
  /// Network link model between members.
  net::LinkModel link;
  /// Time between a member's death and the cluster acting on it (the
  /// heartbeat failure-detector timeout; Hazelcast's default is several
  /// seconds). Applied inside KillNode before backup promotion.
  Nanos failure_detection_delay = 0;
  /// Self-healing control plane (§4.4's autonomous recovery): when
  /// enabled, a mesh heartbeat monitor detects member death and link
  /// partitions, and per-job supervisors restart jobs from the last
  /// committed snapshot with backoff + retry budget — no test-driven
  /// KillNode/RecoverAfterFault calls needed. See CrashNode.
  SupervisorOptions supervisor;
};

class ClusterJob;

/// An in-process Jet cluster: N member nodes sharing a data grid (state
/// backend, §2.4), connected by a simulated network, each running its own
/// cooperative execution service. This is the substitution for the paper's
/// multi-VM deployments — all inter-node data still flows through the
/// flow-controlled network channels and all state through the replicated
/// grid, so the distributed protocols (§3.3, §4) execute for real.
class JetCluster {
 public:
  explicit JetCluster(ClusterConfig config);
  ~JetCluster();

  JetCluster(const JetCluster&) = delete;
  JetCluster& operator=(const JetCluster&) = delete;

  /// Submits a job spanning all alive nodes. The returned pointer is owned
  /// by the cluster and valid until the cluster is destroyed.
  Result<ClusterJob*> SubmitJob(const core::Dag* dag, core::JobConfig config,
                                imdg::JobId job_id);

  /// Fail-stops a member: its worker threads halt, the grid promotes the
  /// backups of its partitions (§4.2, Fig. 6), and every running job
  /// restarts from its last committed snapshot on the surviving members
  /// (§4.4).
  Status KillNode(int32_t node_id);

  /// Fail-stops a member *without* telling the cluster (supervisor mode
  /// only): its worker threads halt and its heartbeats cease, but no
  /// membership change happens here — the health monitor must detect the
  /// death and the control plane must evict and recover on its own. This
  /// is the unattended counterpart of KillNode.
  Status CrashNode(int32_t node_id);

  /// Adds a member: the grid rebalances partitions onto it (§4.3) and
  /// running jobs restart, rescaled to include it.
  Result<int32_t> AddNode();

  /// Recovers running jobs after a network fault (testkit): stops every
  /// unfinished job's attempt *first*, then runs `heal` (typically
  /// Network::Heal / HealAll), then restarts the stopped jobs from their
  /// last committed snapshot. Ordering matters: while links are faulty no
  /// snapshot spanning them can commit, so the restore point predates the
  /// fault — but a done-marker or barrier that slipped through right after
  /// healing could complete or checkpoint an attempt that lost messages.
  /// Stopping before healing closes that window.
  Status RecoverAfterFault(const std::function<void()>& heal);

  /// Freezes the worker threads of `node_id` across all running jobs for
  /// `duration` (GC-pause injection; see ExecutionService::InjectStall).
  Status StallNode(int32_t node_id, Nanos duration);

  /// Physical ids of alive members.
  std::vector<int32_t> AliveNodes() const;

  /// A Management-Center-style dump of every metric in the cluster, in
  /// both exposition formats.
  struct Diagnostics {
    std::string prometheus;  ///< Prometheus text exposition format
    std::string json;        ///< JSON diagnostics document
  };

  /// Snapshots every running (or last-completed) job's registries plus
  /// cluster-level IMDG and network counters and renders them. Safe to
  /// call from any thread at any time.
  Diagnostics DiagnosticsDump() const;

  imdg::DataGrid& grid() { return grid_; }
  imdg::SnapshotStore& snapshot_store() { return store_; }
  net::Network& network() { return network_; }
  const ClusterConfig& config() const { return config_; }
  /// Health monitor, or nullptr when the supervisor is disabled.
  ClusterHealthMonitor* health_monitor() { return monitor_.get(); }

 private:
  friend class ClusterJob;

  // An event for the control thread (supervisor mode).
  struct ControlEvent {
    enum class Type { kHealth, kSnapshotTimeout };
    Type type = Type::kHealth;
    HealthReport report;               // kHealth
    ClusterJob* job = nullptr;         // kSnapshotTimeout
    const void* attempt = nullptr;     // kSnapshotTimeout: attempt identity
  };

  // Coordinator threads report watchdog-aborted snapshots here; the control
  // thread turns them into a failure-class restart. No-op when the
  // supervisor is disabled.
  void NotifySnapshotTimeout(ClusterJob* job, const void* attempt)
      JET_EXCLUDES(control_mutex_);

  void ControlLoop() JET_EXCLUDES(mutex_, control_mutex_);
  void HandleHealthReport(const HealthReport& report) JET_REQUIRES(mutex_);
  void HandleSnapshotTimeout(ClusterJob* job, const void* attempt)
      JET_REQUIRES(mutex_);
  void ReconcileJobs(Nanos now) JET_REQUIRES(mutex_);
  // Quorum rule: connected component of healthy links holding a strict
  // majority of the current membership, with broken-link endpoints greedily
  // dropped until the subset is clean. nullopt = no quorum.
  std::optional<std::vector<int32_t>> QuorumSubsetLocked(
      const HealthReport& report) const JET_REQUIRES(mutex_);
  // True when the latest health report shows every alive member up and
  // every alive-alive link healthy (the gate for launching a restart).
  bool AliveHealthyLocked() const JET_REQUIRES(mutex_);

  ClusterConfig config_;
  imdg::DataGrid grid_;
  imdg::SnapshotStore store_;
  net::Network network_;
  WallClock clock_;

  // Cluster membership/job lock. Lock order: mutex_ → ClusterJob::job_mutex_
  // (KillNode, ReconcileJobs); never the reverse. The control loop drains
  // events under control_mutex_, releases it, then takes mutex_ — the two
  // are never nested.
  mutable jet::Mutex mutex_;
  std::vector<int32_t> alive_nodes_ JET_GUARDED_BY(mutex_);
  // evicted by the control plane, may rejoin
  std::set<int32_t> evicted_ JET_GUARDED_BY(mutex_);
  // latest report processed by the control loop
  HealthReport last_report_ JET_GUARDED_BY(mutex_);
  int32_t next_node_id_ JET_GUARDED_BY(mutex_) = 0;
  std::vector<std::unique_ptr<ClusterJob>> jobs_ JET_GUARDED_BY(mutex_);

  // Supervisor-mode control plane (null / not started when disabled).
  std::unique_ptr<ClusterHealthMonitor> monitor_;
  std::thread control_;
  jet::Mutex control_mutex_;
  jet::CondVar control_cv_;
  std::deque<ControlEvent> events_ JET_GUARDED_BY(control_mutex_);
  bool control_stop_ JET_GUARDED_BY(control_mutex_) = false;
};

/// A job running on a JetCluster. A job execution is a sequence of
/// *attempts*; node failure or scale-out cancels the current attempt and
/// starts a new one restored from the last committed snapshot, exactly the
/// §4.4 recovery protocol.
class ClusterJob {
 public:
  ~ClusterJob();

  ClusterJob(const ClusterJob&) = delete;
  ClusterJob& operator=(const ClusterJob&) = delete;

  /// Blocks until an attempt runs to natural completion (all sources
  /// exhausted). Returns the first execution error.
  Status Join();

  /// Cancels the job.
  void Cancel();

  /// Id of the last committed snapshot (0 = none).
  int64_t last_committed_snapshot() const {
    return last_committed_.load(std::memory_order_acquire);
  }

  /// Number of attempts started (1 = no recoveries).
  int32_t attempts_started() const { return attempt_count_.load(std::memory_order_acquire); }

  /// Point-in-time metrics across all nodes of the current attempt (the
  /// Management Center view, §2), materialized from the members' registry
  /// snapshots.
  core::JobMetrics Metrics() const;

  /// Concatenated registry snapshots of every member of the current (or
  /// last completed) attempt, plus the supervisor's job-lifecycle metrics
  /// when supervised. Safe from any thread.
  std::vector<obs::MetricSnapshot> MetricSnapshots() const;

  /// Supervisor state machine, or nullptr for unsupervised jobs.
  JobSupervisor* supervisor() const { return supervisor_.get(); }

  /// Snapshots abandoned by the coordinator's watchdog, across attempts.
  int64_t snapshots_aborted() const {
    return snapshots_aborted_.load(std::memory_order_acquire);
  }

  /// Partitions currently claimed by this job's processors (current
  /// attempt; 0 between attempts). Safe from any thread.
  int64_t owned_partitions() const;

  /// Cumulative ownership transfers across all attempts (claims that
  /// migrated with their tasklet). Safe from any thread.
  int64_t ownership_transfers() const;

 private:
  friend class JetCluster;

  // One execution attempt across a fixed set of nodes.
  struct Attempt {
    std::vector<int32_t> nodes;  // physical ids; index in vector = plan node id
    std::atomic<bool> cancelled{false};
    core::SnapshotControl snapshot_control;
    // Single-writer state-ownership registry of this attempt. Per-attempt
    // (not per-cluster): a restarted attempt's processors re-claim the
    // same {vertex, partition} slots, which must not collide with the
    // stopped attempt's claims (released only when its processors die).
    // Declared before the plans so it outlives the claim releases running
    // in the processors' destructors.
    std::unique_ptr<imdg::OwnershipRegistry> ownership;
    // Per-member observability (index = plan node id). Declared before the
    // plans/tasklets/services so it is destroyed after them: tasklets and
    // workers hold instrument handles and profiler slots.
    std::vector<std::unique_ptr<obs::MetricsRegistry>> registries;
    std::vector<std::unique_ptr<obs::EventLoopProfiler>> profilers;
    std::vector<std::unique_ptr<obs::MetricsCollectorTasklet>> collectors;
    obs::Gauge snapshots_gauge;  // written by the coordinator thread only
    obs::Gauge committed_gauge;
    obs::Counter aborted_counter;  // snapshot.aborted, coordinator only
    std::unique_ptr<net::ExchangeRegistry> registry;
    std::vector<std::unique_ptr<net::NetworkEdgeFactory>> factories;
    std::vector<std::unique_ptr<core::ExecutionPlan>> plans;
    std::vector<std::vector<std::unique_ptr<core::ProcessorTasklet>>> net_tasklets;
    std::vector<std::unique_ptr<core::ExecutionService>> services;
    std::thread coordinator;
    std::atomic<bool> coordinator_stop{false};
    int64_t next_snapshot_id = 1;

    bool AllComplete() const;
    void StopAll();
  };

  ClusterJob(JetCluster* cluster, const core::Dag* dag, core::JobConfig config,
             imdg::JobId job_id);

  // Builds and starts an attempt on `nodes`; restores from
  // `restore_snapshot` if >= 0. Caller holds cluster mutex. (The
  // cluster-mutex contracts on this and the methods below cannot be
  // JET_REQUIRES(cluster_->mutex_): clang's analysis does not alias
  // `job->cluster_->mutex_` at the call sites with the `mutex_` the
  // caller holds, so the annotation would be a guaranteed false positive.
  // The serialization is enforced by JetCluster, whose own handlers ARE
  // annotated.)
  Status StartAttempt(std::vector<int32_t> nodes, int64_t restore_snapshot)
     ;

  // Stops the current attempt (cancel + join threads). Touches only
  // job_mutex_-guarded state; also reachable from Join(), which does not
  // hold the cluster mutex.
  void StopCurrentAttempt();

  // Stops the current attempt unless the job already finished naturally or
  // was cancelled. Returns true if an attempt was stopped (and therefore
  // needs a restart). Caller holds cluster mutex.
  bool StopForRecovery();

  // Starts a fresh attempt on the cluster's alive nodes, restored from the
  // last committed snapshot (if any). Caller holds cluster mutex.
  Status RestartFromLastSnapshot();

  // Reacts to a membership change. Caller holds cluster mutex.
  Status RestartOnMembershipChange();

  // Terminal failure: stops the attempt, records the error, releases
  // Join(). Caller holds cluster mutex.
  void FailTerminally(Status error);

  void CoordinatorLoop(Attempt* attempt);

  JetCluster* cluster_;
  const core::Dag* dag_;
  core::JobConfig config_;
  imdg::JobId job_id_;

  // mutable: MetricSnapshots() is logically const but must lock to read
  // attempt_ (previously expressed with a const_cast).
  mutable jet::Mutex job_mutex_;
  jet::CondVar attempt_cv_;
  std::shared_ptr<Attempt> attempt_ JET_GUARDED_BY(job_mutex_);
  // Last stopped attempt, kept for post-run Metrics().
  std::shared_ptr<Attempt> completed_attempt_ JET_GUARDED_BY(job_mutex_);
  std::atomic<int64_t> last_committed_{0};
  std::atomic<int64_t> snapshots_taken_{0};
  std::atomic<int32_t> attempt_count_{0};
  std::atomic<bool> job_cancelled_{false};
  std::atomic<bool> failed_{false};
  // Latched by Join() when the attempt finishes naturally, because Join
  // tears the attempt down right after — the control loop would otherwise
  // race a ~1ms window to observe AllComplete on the live attempt.
  std::atomic<bool> completed_naturally_{false};
  std::atomic<int64_t> snapshots_aborted_{0};
  // Ownership transfers folded in from stopped attempts (the live
  // attempt's registry is added on read).
  std::atomic<int64_t> ownership_transfers_base_{0};
  std::unique_ptr<JobSupervisor> supervisor_;
  Status first_error_;
};

}  // namespace jet::cluster

#endif  // JETSIM_CLUSTER_JET_CLUSTER_H_
