#include "cluster/jet_cluster.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace jet::cluster {

// ---------------------------------------------------------------------------
// JetCluster
// ---------------------------------------------------------------------------

JetCluster::JetCluster(ClusterConfig config)
    : config_(config),
      grid_(config.backup_count),
      store_(&grid_),
      network_(config.link) {
  for (int32_t i = 0; i < config_.initial_nodes; ++i) {
    int32_t id = next_node_id_++;
    auto added = grid_.AddMember(id);
    JET_CHECK(added.ok()) << added.status().ToString();
    alive_nodes_.push_back(id);
  }
}

JetCluster::~JetCluster() {
  std::vector<ClusterJob*> jobs;
  {
    std::scoped_lock lock(mutex_);
    for (auto& j : jobs_) jobs.push_back(j.get());
  }
  for (ClusterJob* j : jobs) {
    j->Cancel();
    (void)j->Join();
  }
  network_.Shutdown();
}

Result<ClusterJob*> JetCluster::SubmitJob(const core::Dag* dag, core::JobConfig config,
                                          imdg::JobId job_id) {
  JET_RETURN_IF_ERROR(dag->Validate());
  std::scoped_lock lock(mutex_);
  if (alive_nodes_.empty()) return UnavailableError("no alive nodes");
  auto job =
      std::unique_ptr<ClusterJob>(new ClusterJob(this, dag, config, job_id));
  JET_RETURN_IF_ERROR(job->StartAttempt(alive_nodes_, /*restore_snapshot=*/-1));
  jobs_.push_back(std::move(job));
  return jobs_.back().get();
}

Status JetCluster::KillNode(int32_t node_id) {
  std::scoped_lock lock(mutex_);
  auto it = std::find(alive_nodes_.begin(), alive_nodes_.end(), node_id);
  if (it == alive_nodes_.end()) return NotFoundError("node not alive");
  alive_nodes_.erase(it);
  if (alive_nodes_.empty()) return FailedPreconditionError("cannot kill the last node");

  // Fail-stop the member's workers immediately (its in-memory replicas and
  // execution state are gone).
  for (auto& job : jobs_) {
    std::scoped_lock job_lock(job->job_mutex_);
    if (job->attempt_ == nullptr) continue;
    auto& nodes = job->attempt_->nodes;
    auto idx = std::find(nodes.begin(), nodes.end(), node_id);
    if (idx != nodes.end()) {
      job->attempt_->services[static_cast<size_t>(idx - nodes.begin())]->Cancel();
    }
  }
  // The failure detector needs time to declare the member dead before the
  // cluster reacts (heartbeat timeout).
  if (config_.failure_detection_delay > 0) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(config_.failure_detection_delay));
  }
  // Promote backup replicas of the lost partitions (§4.2, Fig. 6).
  JET_RETURN_IF_ERROR(grid_.RemoveMember(node_id));
  // Restart affected jobs from their last committed snapshot (§4.4).
  for (auto& job : jobs_) {
    Status s = job->RestartOnMembershipChange();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status JetCluster::RecoverAfterFault(const std::function<void()>& heal) {
  std::scoped_lock lock(mutex_);
  // Stop unfinished attempts while the links are still faulty so no late
  // message can sneak a lossy attempt to "completion".
  std::vector<ClusterJob*> stopped;
  for (auto& job : jobs_) {
    if (job->StopForRecovery()) stopped.push_back(job.get());
  }
  if (heal) heal();
  for (ClusterJob* job : stopped) {
    JET_RETURN_IF_ERROR(job->RestartFromLastSnapshot());
  }
  return Status::OK();
}

Status JetCluster::StallNode(int32_t node_id, Nanos duration) {
  std::scoped_lock lock(mutex_);
  if (std::find(alive_nodes_.begin(), alive_nodes_.end(), node_id) ==
      alive_nodes_.end()) {
    return NotFoundError("node not alive");
  }
  for (auto& job : jobs_) {
    std::scoped_lock job_lock(job->job_mutex_);
    if (job->attempt_ == nullptr) continue;
    auto& nodes = job->attempt_->nodes;
    auto idx = std::find(nodes.begin(), nodes.end(), node_id);
    if (idx != nodes.end()) {
      job->attempt_->services[static_cast<size_t>(idx - nodes.begin())]->InjectStall(
          duration);
    }
  }
  return Status::OK();
}

Result<int32_t> JetCluster::AddNode() {
  std::scoped_lock lock(mutex_);
  int32_t id = next_node_id_++;
  auto migrated = grid_.AddMember(id);
  if (!migrated.ok()) return migrated.status();
  alive_nodes_.push_back(id);
  for (auto& job : jobs_) {
    JET_RETURN_IF_ERROR(job->RestartOnMembershipChange());
  }
  return id;
}

std::vector<int32_t> JetCluster::AliveNodes() const {
  std::scoped_lock lock(mutex_);
  return alive_nodes_;
}

// ---------------------------------------------------------------------------
// ClusterJob
// ---------------------------------------------------------------------------

ClusterJob::ClusterJob(JetCluster* cluster, const core::Dag* dag,
                       core::JobConfig config, imdg::JobId job_id)
    : cluster_(cluster), dag_(dag), config_(config), job_id_(job_id) {}

ClusterJob::~ClusterJob() {
  Cancel();
  (void)Join();
}

bool ClusterJob::Attempt::AllComplete() const {
  for (const auto& s : services) {
    if (!s->IsComplete()) return false;
  }
  return true;
}

void ClusterJob::Attempt::StopAll() {
  cancelled.store(true, std::memory_order_release);
  for (auto& s : services) s->Cancel();
  for (auto& s : services) (void)s->AwaitCompletion();
  coordinator_stop.store(true, std::memory_order_release);
  if (coordinator.joinable()) coordinator.join();
}

Status ClusterJob::StartAttempt(std::vector<int32_t> nodes, int64_t restore_snapshot) {
  auto attempt = std::make_shared<Attempt>();
  attempt->nodes = std::move(nodes);
  const auto node_count = static_cast<int32_t>(attempt->nodes.size());
  const Clock* clock = &WallClock::Global();

  core::SnapshotControl* sc = nullptr;
  if (config_.guarantee != core::ProcessingGuarantee::kNone) {
    sc = &attempt->snapshot_control;
    auto* store = &cluster_->store_;
    imdg::JobId job_id = job_id_;
    sc->write_entry = [store, job_id](int64_t snapshot_id, core::VertexId vertex,
                                      int32_t writer_index, core::StateEntry&& entry) {
      imdg::SnapshotStateEntry se;
      se.vertex_id = vertex;
      se.writer_index = writer_index;
      se.key_hash = entry.key_hash;
      se.key = std::move(entry.key);
      se.value = std::move(entry.value);
      Status s = store->WriteEntry(job_id, snapshot_id, se);
      if (!s.ok()) JET_LOG(kError) << "snapshot write failed: " << s.ToString();
      return s.ok();
    };
  }

  // Channels are tagged with physical member ids so testkit link faults
  // (partitions, drops, delay spikes) apply to this execution's traffic.
  attempt->registry =
      std::make_unique<net::ExchangeRegistry>(&cluster_->network_, attempt->nodes);
  for (int32_t i = 0; i < node_count; ++i) {
    core::NodeInfo node{i, node_count};
    auto factory = std::make_unique<net::NetworkEdgeFactory>(
        attempt->registry.get(), dag_, node, config_,
        cluster_->config_.threads_per_node, clock, &attempt->cancelled, sc);
    auto plan = core::ExecutionPlan::Build(*dag_, node, config_,
                                           cluster_->config_.threads_per_node, clock,
                                           &attempt->cancelled, factory.get(), sc);
    if (!plan.ok()) return plan.status();
    attempt->net_tasklets.push_back(factory->TakeTasklets());
    attempt->plans.push_back(std::move(plan.value()));
    attempt->factories.push_back(std::move(factory));
  }

  if (restore_snapshot >= 0) {
    for (auto& plan : attempt->plans) {
      JET_RETURN_IF_ERROR(core::LoadSnapshotIntoPlan(plan.get(), &cluster_->store_,
                                                     job_id_, restore_snapshot));
    }
    attempt->next_snapshot_id = restore_snapshot + 1;
    cluster_->store_.ClearInFlight(job_id_, attempt->next_snapshot_id);
  }

  for (int32_t i = 0; i < node_count; ++i) {
    auto service =
        std::make_unique<core::ExecutionService>(cluster_->config_.threads_per_node);
    std::vector<core::Tasklet*> tasklets =
        attempt->plans[static_cast<size_t>(i)]->Tasklets();
    for (auto& t : attempt->net_tasklets[static_cast<size_t>(i)]) {
      tasklets.push_back(t.get());
    }
    JET_RETURN_IF_ERROR(service->Start(std::move(tasklets)));
    attempt->services.push_back(std::move(service));
  }

  if (sc != nullptr) {
    Attempt* raw = attempt.get();
    attempt->coordinator = std::thread([this, raw]() { CoordinatorLoop(raw); });
  }

  attempt_count_.fetch_add(1, std::memory_order_acq_rel);
  std::scoped_lock lock(job_mutex_);
  attempt_ = std::move(attempt);
  attempt_cv_.notify_all();
  return Status::OK();
}

void ClusterJob::StopCurrentAttempt() {
  std::shared_ptr<Attempt> attempt;
  {
    std::scoped_lock lock(job_mutex_);
    attempt = std::move(attempt_);
  }
  if (attempt != nullptr) {
    attempt->StopAll();
    std::scoped_lock lock(job_mutex_);
    completed_attempt_ = std::move(attempt);
  }
}

bool ClusterJob::StopForRecovery() {
  {
    std::scoped_lock lock(job_mutex_);
    if (attempt_ == nullptr) return false;  // already finished/cancelled
    // A naturally-finished job does not restart.
    bool complete = attempt_->AllComplete() &&
                    !attempt_->cancelled.load(std::memory_order_acquire);
    if (complete || job_cancelled_.load(std::memory_order_acquire)) return false;
  }
  StopCurrentAttempt();
  return true;
}

Status ClusterJob::RestartFromLastSnapshot() {
  int64_t restore = -1;
  if (config_.guarantee != core::ProcessingGuarantee::kNone) {
    auto committed = cluster_->store_.LastCommitted(job_id_);
    if (committed.ok() && committed->has_value()) restore = **committed;
  }
  // Note: the caller (JetCluster) holds the cluster mutex, so alive_nodes_
  // is stable here.
  return StartAttempt(cluster_->alive_nodes_, restore);
}

Status ClusterJob::RestartOnMembershipChange() {
  if (!StopForRecovery()) return Status::OK();
  return RestartFromLastSnapshot();
}

void ClusterJob::CoordinatorLoop(Attempt* attempt) {
  using std::chrono::nanoseconds;
  const Nanos interval = config_.snapshot_interval;

  int64_t expected_acks = 0;
  for (const auto& plan : attempt->plans) {
    expected_acks += plan->snapshot_participant_count();
  }
  for (const auto& node_tasklets : attempt->net_tasklets) {
    for (const auto& t : node_tasklets) {
      if (t->ParticipatesInSnapshots()) ++expected_acks;
    }
  }

  while (!attempt->coordinator_stop.load(std::memory_order_acquire)) {
    Nanos slept = 0;
    while (slept < interval &&
           !attempt->coordinator_stop.load(std::memory_order_acquire)) {
      Nanos step = std::min<Nanos>(interval - slept, kNanosPerMilli);
      std::this_thread::sleep_for(nanoseconds(step));
      slept += step;
    }
    if (attempt->coordinator_stop.load(std::memory_order_acquire) ||
        attempt->AllComplete()) {
      break;
    }
    int64_t id = attempt->next_snapshot_id++;
    attempt->snapshot_control.acks.store(0, std::memory_order_release);
    attempt->snapshot_control.requested.store(id, std::memory_order_release);
    while (attempt->snapshot_control.acks.load(std::memory_order_acquire) <
           expected_acks) {
      if (attempt->coordinator_stop.load(std::memory_order_acquire) ||
          attempt->AllComplete()) {
        return;  // attempt winding down mid-snapshot: leave uncommitted
      }
      std::this_thread::sleep_for(nanoseconds(100 * kNanosPerMicro));
    }
    Status s = cluster_->store_.Commit(job_id_, id);
    if (!s.ok()) {
      JET_LOG(kError) << "snapshot commit failed: " << s.ToString();
      continue;
    }
    attempt->snapshot_control.committed.store(id, std::memory_order_release);
    last_committed_.store(id, std::memory_order_release);
  }
}

core::JobMetrics ClusterJob::Metrics() const {
  core::JobMetrics m;
  m.job_id = job_id_;
  m.last_committed_snapshot = last_committed_.load(std::memory_order_acquire);
  m.attempt = attempt_count_.load(std::memory_order_acquire);
  std::shared_ptr<Attempt> attempt;
  {
    std::scoped_lock lock(const_cast<std::mutex&>(job_mutex_));
    attempt = attempt_ != nullptr ? attempt_ : completed_attempt_;
  }
  if (attempt == nullptr) return m;
  auto append = [&m](const core::ProcessorTasklet* t) {
    core::TaskletMetrics tm;
    tm.name = t->name();
    tm.items_processed = t->items_processed();
    tm.calls = t->calls();
    tm.idle_calls = t->idle_calls();
    tm.completed_snapshot_id = t->completed_snapshot_id();
    tm.done = t->IsDone();
    m.tasklets.push_back(std::move(tm));
  };
  for (const auto& plan : attempt->plans) {
    for (const auto& info : plan->tasklet_infos()) append(info.tasklet);
  }
  for (const auto& node_tasklets : attempt->net_tasklets) {
    for (const auto& t : node_tasklets) append(t.get());
  }
  return m;
}

Status ClusterJob::Join() {
  while (true) {
    std::shared_ptr<Attempt> current;
    {
      std::scoped_lock lock(job_mutex_);
      current = attempt_;
    }
    if (job_cancelled_.load(std::memory_order_acquire)) break;
    if (current == nullptr) {
      // Between attempts (restart in progress) or already stopped.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    if (current->AllComplete()) {
      std::scoped_lock lock(job_mutex_);
      if (attempt_ == current &&
          !current->cancelled.load(std::memory_order_acquire)) {
        break;  // finished naturally
      }
      continue;  // superseded; wait for the new attempt
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  StopCurrentAttempt();
  return first_error_;
}

void ClusterJob::Cancel() {
  job_cancelled_.store(true, std::memory_order_release);
  std::scoped_lock lock(job_mutex_);
  if (attempt_ != nullptr) {
    attempt_->cancelled.store(true, std::memory_order_release);
    for (auto& s : attempt_->services) s->Cancel();
  }
}

}  // namespace jet::cluster
