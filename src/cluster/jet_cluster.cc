#include "cluster/jet_cluster.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iterator>
#include <map>

#include "common/logging.h"

namespace jet::cluster {

// ---------------------------------------------------------------------------
// JetCluster
// ---------------------------------------------------------------------------

JetCluster::JetCluster(ClusterConfig config)
    : config_(config),
      grid_(config.backup_count),
      store_(&grid_),
      network_(config.link) {
  for (int32_t i = 0; i < config_.initial_nodes; ++i) {
    int32_t id = next_node_id_++;
    auto added = grid_.AddMember(id);
    JET_CHECK(added.ok()) << added.status().ToString();
    alive_nodes_.push_back(id);
  }
  if (config_.supervisor.enabled) {
    ClusterHealthMonitor::Options mopts;
    mopts.heartbeat_interval = config_.supervisor.heartbeat_interval;
    mopts.suspect_after = config_.supervisor.suspect_after;
    mopts.suspicion_timeout = config_.supervisor.suspicion_timeout;
    monitor_ = std::make_unique<ClusterHealthMonitor>(
        &network_, mopts, [this](const HealthReport& report) {
          jet::MutexLock lock(control_mutex_);
          ControlEvent e;
          e.report = report;
          events_.push_back(std::move(e));
          control_cv_.NotifyAll();
        });
    for (int32_t id : alive_nodes_) monitor_->AddMember(id);
    monitor_->Start();
    control_ = std::thread([this]() { ControlLoop(); });
  }
}

JetCluster::~JetCluster() {
  if (control_.joinable()) {
    {
      jet::MutexLock lock(control_mutex_);
      control_stop_ = true;
      control_cv_.NotifyAll();
    }
    control_.join();
  }
  if (monitor_ != nullptr) monitor_->Stop();
  std::vector<ClusterJob*> jobs;
  {
    jet::MutexLock lock(mutex_);
    for (auto& j : jobs_) jobs.push_back(j.get());
  }
  for (ClusterJob* j : jobs) {
    j->Cancel();
    (void)j->Join();
  }
  network_.Shutdown();
}

Result<ClusterJob*> JetCluster::SubmitJob(const core::Dag* dag, core::JobConfig config,
                                          imdg::JobId job_id) {
  JET_RETURN_IF_ERROR(dag->Validate());
  // Supervised jobs get the snapshot watchdog by default: an unbounded ack
  // wait would otherwise hang the coordinator when a participant dies.
  if (config_.supervisor.enabled && config.snapshot_ack_timeout == 0) {
    config.snapshot_ack_timeout = config_.supervisor.snapshot_ack_timeout;
  }
  jet::MutexLock lock(mutex_);
  if (alive_nodes_.empty()) return UnavailableError("no alive nodes");
  auto job =
      std::unique_ptr<ClusterJob>(new ClusterJob(this, dag, config, job_id));
  JET_RETURN_IF_ERROR(job->StartAttempt(alive_nodes_, /*restore_snapshot=*/-1));
  jobs_.push_back(std::move(job));
  return jobs_.back().get();
}

Status JetCluster::KillNode(int32_t node_id) {
  jet::MutexLock lock(mutex_);
  auto it = std::find(alive_nodes_.begin(), alive_nodes_.end(), node_id);
  if (it == alive_nodes_.end()) return NotFoundError("node not alive");
  alive_nodes_.erase(it);
  if (alive_nodes_.empty()) return FailedPreconditionError("cannot kill the last node");

  // Fail-stop the member's workers immediately (its in-memory replicas and
  // execution state are gone).
  for (auto& job : jobs_) {
    jet::MutexLock job_lock(job->job_mutex_);
    if (job->attempt_ == nullptr) continue;
    auto& nodes = job->attempt_->nodes;
    auto idx = std::find(nodes.begin(), nodes.end(), node_id);
    if (idx != nodes.end()) {
      job->attempt_->services[static_cast<size_t>(idx - nodes.begin())]->Cancel();
    }
  }
  if (monitor_ != nullptr) monitor_->StopHeartbeats(node_id);
  // The failure detector needs time to declare the member dead before the
  // cluster reacts (heartbeat timeout).
  if (config_.failure_detection_delay > 0) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(config_.failure_detection_delay));
  }
  // Promote backup replicas of the lost partitions (§4.2, Fig. 6).
  JET_RETURN_IF_ERROR(grid_.RemoveMember(node_id));
  // Restart affected jobs from their last committed snapshot (§4.4).
  for (auto& job : jobs_) {
    Status s = job->RestartOnMembershipChange();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status JetCluster::CrashNode(int32_t node_id) {
  if (!config_.supervisor.enabled) {
    return FailedPreconditionError(
        "CrashNode requires ClusterConfig::supervisor.enabled");
  }
  jet::MutexLock lock(mutex_);
  if (std::find(alive_nodes_.begin(), alive_nodes_.end(), node_id) ==
      alive_nodes_.end()) {
    return NotFoundError("node not alive");
  }
  // Halt the member's workers and silence its heartbeats — and that is
  // all. Eviction, backup promotion and job restarts are the control
  // plane's problem, driven by heartbeat staleness like a real death.
  for (auto& job : jobs_) {
    jet::MutexLock job_lock(job->job_mutex_);
    if (job->attempt_ == nullptr) continue;
    auto& nodes = job->attempt_->nodes;
    auto idx = std::find(nodes.begin(), nodes.end(), node_id);
    if (idx != nodes.end()) {
      job->attempt_->services[static_cast<size_t>(idx - nodes.begin())]->Cancel();
    }
  }
  monitor_->StopHeartbeats(node_id);
  return Status::OK();
}

Status JetCluster::RecoverAfterFault(const std::function<void()>& heal) {
  jet::MutexLock lock(mutex_);
  // Stop unfinished attempts while the links are still faulty so no late
  // message can sneak a lossy attempt to "completion".
  std::vector<ClusterJob*> stopped;
  for (auto& job : jobs_) {
    if (job->StopForRecovery()) stopped.push_back(job.get());
  }
  if (heal) heal();
  for (ClusterJob* job : stopped) {
    JET_RETURN_IF_ERROR(job->RestartFromLastSnapshot());
  }
  return Status::OK();
}

Status JetCluster::StallNode(int32_t node_id, Nanos duration) {
  jet::MutexLock lock(mutex_);
  if (std::find(alive_nodes_.begin(), alive_nodes_.end(), node_id) ==
      alive_nodes_.end()) {
    return NotFoundError("node not alive");
  }
  for (auto& job : jobs_) {
    jet::MutexLock job_lock(job->job_mutex_);
    if (job->attempt_ == nullptr) continue;
    auto& nodes = job->attempt_->nodes;
    auto idx = std::find(nodes.begin(), nodes.end(), node_id);
    if (idx != nodes.end()) {
      job->attempt_->services[static_cast<size_t>(idx - nodes.begin())]->InjectStall(
          duration);
    }
  }
  return Status::OK();
}

Result<int32_t> JetCluster::AddNode() {
  jet::MutexLock lock(mutex_);
  int32_t id = next_node_id_++;
  auto migrated = grid_.AddMember(id);
  if (!migrated.ok()) return migrated.status();
  alive_nodes_.push_back(id);
  if (monitor_ != nullptr) monitor_->AddMember(id);
  if (config_.supervisor.enabled) {
    // Under supervision the scale-out restart routes through the control
    // plane as a free (uncharged) restart, launched once the membership is
    // healthy. The control thread's tick picks it up.
    Nanos now = clock_.Now();
    for (auto& job : jobs_) {
      JobSupervisor* sup = job->supervisor();
      if (sup == nullptr) continue;
      if (job->StopForRecovery()) sup->ScheduleFreeRestart(now);
    }
  } else {
    for (auto& job : jobs_) {
      JET_RETURN_IF_ERROR(job->RestartOnMembershipChange());
    }
  }
  return id;
}

std::vector<int32_t> JetCluster::AliveNodes() const {
  jet::MutexLock lock(mutex_);
  return alive_nodes_;
}

JetCluster::Diagnostics JetCluster::DiagnosticsDump() const {
  std::vector<obs::MetricSnapshot> all;
  int64_t owned_partitions = 0;
  int64_t ownership_migrations = 0;
  {
    jet::MutexLock lock(mutex_);
    for (const auto& job : jobs_) {
      auto snap = job->MetricSnapshots();
      all.insert(all.end(), std::make_move_iterator(snap.begin()),
                 std::make_move_iterator(snap.end()));
      owned_partitions += job->owned_partitions();
      ownership_migrations += job->ownership_transfers();
    }
    obs::MetricSnapshot alive;
    alive.id.name = "cluster.alive_members";
    alive.kind = obs::MetricKind::kGauge;
    alive.value = static_cast<int64_t>(alive_nodes_.size());
    all.push_back(std::move(alive));
    if (monitor_ != nullptr) {
      obs::MetricSnapshot suspected;
      suspected.id.name = "cluster.suspected_members";
      suspected.kind = obs::MetricKind::kGauge;
      suspected.value = static_cast<int64_t>(monitor_->SuspectedMembers().size());
      all.push_back(std::move(suspected));
      obs::MetricSnapshot quorum;
      quorum.id.name = "cluster.has_quorum";
      quorum.kind = obs::MetricKind::kGauge;
      quorum.value = QuorumSubsetLocked(last_report_).has_value() ? 1 : 0;
      all.push_back(std::move(quorum));
    }
  }

  auto add = [&all](const char* name, obs::MetricKind kind, int64_t value) {
    obs::MetricSnapshot s;
    s.id.name = name;
    s.kind = kind;
    s.value = value;
    all.push_back(std::move(s));
  };
  imdg::GridStats gs = grid_.stats();
  add("imdg.partition_count", obs::MetricKind::kGauge, grid_.partition_count());
  add("imdg.puts", obs::MetricKind::kCounter, gs.puts);
  add("imdg.gets", obs::MetricKind::kCounter, gs.gets);
  add("imdg.removes", obs::MetricKind::kCounter, gs.removes);
  add("imdg.replicated_bytes", obs::MetricKind::kCounter, gs.replicated_bytes);
  add("imdg.migrated_entries", obs::MetricKind::kCounter, gs.migrated_entries);
  // Capacity surfaces (primary replicas): how much state the grid holds
  // and how evenly the partitions carry it. The skew gauge is scaled by
  // 1000 (1000 = perfectly even) because the exposition value is integral.
  imdg::GridUsage gu = grid_.Usage();
  add("imdg.entries", obs::MetricKind::kGauge, gu.entries);
  add("imdg.bytes_approx", obs::MetricKind::kGauge, gu.bytes_approx);
  add("imdg.partition_max_entries", obs::MetricKind::kGauge, gu.max_partition_entries);
  add("imdg.partition_skew_x1000", obs::MetricKind::kGauge,
      static_cast<int64_t>(gu.partition_skew * 1000.0));
  add("imdg.snapshots_aborted", obs::MetricKind::kCounter, store_.aborted_count());
  // Single-writer ownership (ROADMAP item 3): partitions currently under
  // an exclusive owner (processor state domains + grid owned-access
  // handles) and how many claims migrated with their tasklet.
  add("grid.owned_partitions", obs::MetricKind::kGauge,
      owned_partitions + grid_.ownership().owned_count());
  add("grid.batched_partition_moves", obs::MetricKind::kCounter, gs.batched_moves);
  add("scheduler.ownership_migrations", obs::MetricKind::kCounter,
      ownership_migrations + grid_.ownership().transfers());
  add("net.messages_sent", obs::MetricKind::kCounter, network_.sent_count());
  add("net.messages_delivered", obs::MetricKind::kCounter, network_.delivered_count());
  add("net.messages_dropped", obs::MetricKind::kCounter, network_.dropped_count());

  Diagnostics d;
  d.prometheus = obs::RenderPrometheusText(all);
  d.json = obs::RenderJson(all);
  return d;
}

// ---------------------------------------------------------------------------
// Self-healing control plane (supervisor mode)
// ---------------------------------------------------------------------------

void JetCluster::NotifySnapshotTimeout(ClusterJob* job, const void* attempt) {
  if (!config_.supervisor.enabled) return;
  jet::MutexLock lock(control_mutex_);
  ControlEvent e;
  e.type = ControlEvent::Type::kSnapshotTimeout;
  e.job = job;
  e.attempt = attempt;
  events_.push_back(std::move(e));
  control_cv_.NotifyAll();
}

void JetCluster::ControlLoop() {
  while (true) {
    std::vector<ControlEvent> batch;
    {
      jet::MutexLock lock(control_mutex_);
      control_cv_.WaitFor(control_mutex_, std::chrono::milliseconds(2), [this]() {
        return control_stop_ || !events_.empty();
      });
      if (control_stop_) return;
      batch.assign(std::make_move_iterator(events_.begin()),
                   std::make_move_iterator(events_.end()));
      events_.clear();
    }
    jet::MutexLock lock(mutex_);
    for (const ControlEvent& e : batch) {
      if (e.type == ControlEvent::Type::kHealth) {
        last_report_ = e.report;
        HandleHealthReport(e.report);
      } else {
        HandleSnapshotTimeout(e.job, e.attempt);
      }
    }
    ReconcileJobs(clock_.Now());
  }
}

void JetCluster::HandleHealthReport(const HealthReport& report) {
  Nanos now = clock_.Now();

  // Re-admit evicted members whose heartbeats are clean again (partition
  // healed). This runs BEFORE the quorum check: readmission must be able
  // to restore quorum, or the cluster deadlocks — e.g. a 3-node cluster
  // that evicts one member over a broken link and then loses a second
  // member would be a permanent minority, with the healthy evicted member
  // locked out forever. Clean means clean in the full-mesh report (not
  // down, not suspected, no broken link), which every member observes, so
  // this cannot readmit into a minority side of a split.
  std::vector<int32_t> readmit;
  {
    std::set<int32_t> down(report.down.begin(), report.down.end());
    std::set<int32_t> suspected(report.suspected.begin(), report.suspected.end());
    for (int32_t m : evicted_) {
      if (down.count(m) != 0 || suspected.count(m) != 0) continue;
      bool broken = false;
      for (const auto& [a, b] : report.broken_links) {
        if (a == m || b == m) {
          broken = true;
          break;
        }
      }
      if (!broken) readmit.push_back(m);
    }
  }
  bool readmitted = false;
  for (int32_t m : readmit) {
    auto migrated = grid_.AddMember(m);
    if (!migrated.ok()) {
      JET_LOG(kError) << "re-admitting member " << m << ": "
                      << migrated.status().ToString();
      continue;
    }
    alive_nodes_.push_back(m);
    evicted_.erase(m);
    readmitted = true;
  }

  auto subset = QuorumSubsetLocked(report);
  // JETSIM_DEBUG_CONTROL=1 traces every membership decision on stderr —
  // the first thing to reach for when a chaos seed leaves a job parked.
  if (std::getenv("JETSIM_DEBUG_CONTROL") != nullptr) {
    std::string s = "[ctl] report=" + report.ToString() + " alive=";
    for (int32_t m : alive_nodes_) s += std::to_string(m) + ",";
    s += " quorum=";
    if (subset.has_value()) {
      for (int32_t m : *subset) s += std::to_string(m) + ",";
    } else {
      s += "NONE";
    }
    fprintf(stderr, "%s\n", s.c_str());
  }
  if (!subset.has_value()) {
    // No quorum: park every job until the partition heals. No membership
    // mutation — a minority must not promote backups or keep processing
    // while the majority might be doing the same (split-brain protection).
    for (auto& job : jobs_) {
      JobSupervisor* sup = job->supervisor();
      if (sup == nullptr) continue;
      if (job->StopForRecovery() || sup->state() == JobState::kRestarting) {
        sup->OnSuspend();
      }
    }
    return;
  }

  // Evict members the quorum subset cannot reach (dead or cut off): promote
  // backups of their partitions and charge affected jobs one restart.
  std::set<int32_t> keep(subset->begin(), subset->end());
  std::vector<int32_t> to_evict;
  for (int32_t m : alive_nodes_) {
    if (keep.count(m) == 0) to_evict.push_back(m);
  }
  for (int32_t m : to_evict) {
    alive_nodes_.erase(std::find(alive_nodes_.begin(), alive_nodes_.end(), m));
    evicted_.insert(m);
    Status s = grid_.RemoveMember(m);
    if (!s.ok()) JET_LOG(kError) << "evicting member " << m << ": " << s.ToString();
  }
  if (!to_evict.empty()) {
    for (auto& job : jobs_) {
      JobSupervisor* sup = job->supervisor();
      if (sup == nullptr) continue;
      if (!job->StopForRecovery()) continue;  // finished, cancelled, or parked
      auto delay = sup->OnFailure(now);
      if (!delay.has_value() && sup->state() == JobState::kFailed) {
        job->FailTerminally(UnavailableError(
            "retry budget exhausted recovering from member failure"));
      }
    }
  }

  // Resume parked jobs now that quorum holds; fold rejoins in as free
  // restarts (no budget charge — nothing failed, the membership grew).
  for (auto& job : jobs_) {
    JobSupervisor* sup = job->supervisor();
    if (sup == nullptr) continue;
    JobState s = sup->state();
    if (s == JobState::kSuspended) {
      sup->ScheduleFreeRestart(now);
      if (std::getenv("JETSIM_DEBUG_CONTROL") != nullptr)
        fprintf(stderr, "[ctl] resume job -> %s\n", JobStateName(sup->state()));
    } else if (readmitted && s == JobState::kRunning) {
      if (job->StopForRecovery()) sup->ScheduleFreeRestart(now);
    }
  }
}

void JetCluster::HandleSnapshotTimeout(ClusterJob* job, const void* attempt) {
  JobSupervisor* sup = job->supervisor();
  if (sup == nullptr) return;
  {
    jet::MutexLock job_lock(job->job_mutex_);
    if (job->attempt_.get() != attempt) return;  // stale: attempt replaced
  }
  if (!job->StopForRecovery()) return;
  auto delay = sup->OnFailure(clock_.Now());
  if (!delay.has_value() && sup->state() == JobState::kFailed) {
    job->FailTerminally(UnavailableError(
        "retry budget exhausted recovering from snapshot watchdog timeouts"));
  }
}

void JetCluster::ReconcileJobs(Nanos now) {
  for (auto& job : jobs_) {
    JobSupervisor* sup = job->supervisor();
    if (sup == nullptr) continue;
    if (sup->state() == JobState::kRunning) {
      jet::MutexLock job_lock(job->job_mutex_);
      if (job->completed_naturally_.load(std::memory_order_acquire) ||
          (job->attempt_ != nullptr && job->attempt_->AllComplete() &&
           !job->attempt_->cancelled.load(std::memory_order_acquire))) {
        sup->OnCompleted();
      }
      continue;
    }
    if (!sup->RestartDue(now)) continue;
    // Launch only into a healthy membership: restarting while a member is
    // down or a link is broken would burn the budget on a doomed attempt
    // (and the health event that reported it will reshape the membership
    // first anyway).
    if (!AliveHealthyLocked()) continue;
    Status st = job->RestartFromLastSnapshot();
    if (std::getenv("JETSIM_DEBUG_CONTROL") != nullptr)
      fprintf(stderr, "[ctl] restart launch: %s\n", st.ToString().c_str());
    if (st.ok()) {
      sup->OnRestartStarted(now);
    } else {
      JET_LOG(kError) << "supervised restart failed: " << st.ToString();
      job->FailTerminally(st);
    }
  }
}

std::optional<std::vector<int32_t>> JetCluster::QuorumSubsetLocked(
    const HealthReport& report) const {
  const size_t total = alive_nodes_.size();
  std::set<int32_t> up(alive_nodes_.begin(), alive_nodes_.end());
  for (int32_t m : report.down) up.erase(m);
  std::vector<std::pair<int32_t, int32_t>> broken;
  for (const auto& [a, b] : report.broken_links) {
    if (up.count(a) != 0 && up.count(b) != 0) broken.emplace_back(a, b);
  }
  auto linked = [&broken](int32_t a, int32_t b) {
    for (const auto& [x, y] : broken) {
      if ((x == a && y == b) || (x == b && y == a)) return false;
    }
    return true;
  };
  // Largest connected component over healthy links.
  std::set<int32_t> unvisited = up;
  std::vector<int32_t> best;
  while (!unvisited.empty()) {
    std::vector<int32_t> comp{*unvisited.begin()};
    unvisited.erase(unvisited.begin());
    for (size_t i = 0; i < comp.size(); ++i) {
      for (auto it = unvisited.begin(); it != unvisited.end();) {
        if (linked(comp[i], *it)) {
          comp.push_back(*it);
          it = unvisited.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (comp.size() > best.size()) best = comp;
  }
  // The component may still contain broken pairs (a and b both hear c but
  // not each other); no barrier can cross such a pair, so greedily drop the
  // endpoint with the most broken links (tie: higher id) until clean.
  std::set<int32_t> comp_set(best.begin(), best.end());
  while (true) {
    std::map<int32_t, int32_t> degree;
    for (const auto& [a, b] : broken) {
      if (comp_set.count(a) != 0 && comp_set.count(b) != 0) {
        ++degree[a];
        ++degree[b];
      }
    }
    if (degree.empty()) break;
    int32_t victim = degree.begin()->first;
    int32_t worst = 0;
    for (const auto& [m, d] : degree) {
      if (d > worst || (d == worst && m > victim)) {
        victim = m;
        worst = d;
      }
    }
    comp_set.erase(victim);
  }
  if (comp_set.empty()) return std::nullopt;
  if (config_.supervisor.require_quorum && comp_set.size() * 2 <= total) {
    return std::nullopt;
  }
  return std::vector<int32_t>(comp_set.begin(), comp_set.end());
}

bool JetCluster::AliveHealthyLocked() const {
  if (monitor_ == nullptr) return true;
  std::set<int32_t> alive(alive_nodes_.begin(), alive_nodes_.end());
  for (int32_t m : last_report_.down) {
    if (alive.count(m) != 0) return false;
  }
  // A suspected member blocks restarts too: it is either about to be
  // refuted (wait a beat) or about to be declared down (restarting onto it
  // would resurrect a crashed member's workers for a doomed attempt).
  for (int32_t m : last_report_.suspected) {
    if (alive.count(m) != 0) return false;
  }
  for (const auto& [a, b] : last_report_.broken_links) {
    if (alive.count(a) != 0 && alive.count(b) != 0) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// ClusterJob
// ---------------------------------------------------------------------------

ClusterJob::ClusterJob(JetCluster* cluster, const core::Dag* dag,
                       core::JobConfig config, imdg::JobId job_id)
    : cluster_(cluster), dag_(dag), config_(config), job_id_(job_id) {
  if (cluster_->config_.supervisor.enabled) {
    supervisor_ = std::make_unique<JobSupervisor>(static_cast<int64_t>(job_id_),
                                                  cluster_->config_.supervisor);
  }
}

ClusterJob::~ClusterJob() {
  Cancel();
  (void)Join();
}

bool ClusterJob::Attempt::AllComplete() const {
  for (const auto& s : services) {
    if (!s->IsComplete()) return false;
  }
  return true;
}

void ClusterJob::Attempt::StopAll() {
  cancelled.store(true, std::memory_order_release);
  for (auto& s : services) s->Cancel();
  for (auto& s : services) (void)s->AwaitCompletion();
  coordinator_stop.store(true, std::memory_order_release);
  if (coordinator.joinable()) coordinator.join();
}

Status ClusterJob::StartAttempt(std::vector<int32_t> nodes, int64_t restore_snapshot) {
  auto attempt = std::make_shared<Attempt>();
  attempt->ownership = std::make_unique<imdg::OwnershipRegistry>();
  attempt->nodes = std::move(nodes);
  const auto node_count = static_cast<int32_t>(attempt->nodes.size());
  const Clock* clock = &WallClock::Global();

  core::SnapshotControl* sc = nullptr;
  if (config_.guarantee != core::ProcessingGuarantee::kNone) {
    sc = &attempt->snapshot_control;
    auto* store = &cluster_->store_;
    imdg::JobId job_id = job_id_;
    sc->write_entry = [store, job_id](int64_t snapshot_id, core::VertexId vertex,
                                      int32_t writer_index, core::StateEntry&& entry) {
      imdg::SnapshotStateEntry se;
      se.vertex_id = vertex;
      se.writer_index = writer_index;
      se.key_hash = entry.key_hash;
      se.key = std::move(entry.key);
      se.value = std::move(entry.value);
      Status s = store->WriteEntry(job_id, snapshot_id, se);
      if (!s.ok()) JET_LOG(kError) << "snapshot write failed: " << s.ToString();
      return s.ok();
    };
  }

  // One metrics registry + profiler per member, tagged with the member's
  // physical id; the coordinator's job gauges live on member 0's registry.
  for (int32_t i = 0; i < node_count; ++i) {
    obs::MetricTags tags;
    tags.job = static_cast<int64_t>(job_id_);
    tags.member = attempt->nodes[static_cast<size_t>(i)];
    attempt->registries.push_back(std::make_unique<obs::MetricsRegistry>(tags));
    attempt->profilers.push_back(std::make_unique<obs::EventLoopProfiler>(
        attempt->registries.back().get(), clock));
  }
  attempt->snapshots_gauge = attempt->registries[0]->GetGauge("job.snapshots_taken");
  attempt->committed_gauge =
      attempt->registries[0]->GetGauge("job.last_committed_snapshot");
  attempt->aborted_counter = attempt->registries[0]->GetCounter("snapshot.aborted");

  // Channels are tagged with physical member ids so testkit link faults
  // (partitions, drops, delay spikes) apply to this execution's traffic.
  net::ExchangeOptions exchange_options;
  exchange_options.serialize_frames = config_.serialize_exchange_frames;
  exchange_options.epoch = attempt_count_.load(std::memory_order_acquire);
  attempt->registry = std::make_unique<net::ExchangeRegistry>(
      &cluster_->network_, attempt->nodes, exchange_options);
  for (int32_t i = 0; i < node_count; ++i) {
    core::NodeInfo node{i, node_count};
    auto factory = std::make_unique<net::NetworkEdgeFactory>(
        attempt->registry.get(), dag_, node, config_,
        cluster_->config_.threads_per_node, clock, &attempt->cancelled, sc);
    factory->SetMetricsRegistry(attempt->registries[static_cast<size_t>(i)].get());
    auto plan = core::ExecutionPlan::Build(
        *dag_, node, config_, cluster_->config_.threads_per_node, clock,
        &attempt->cancelled, factory.get(), sc,
        attempt->registries[static_cast<size_t>(i)].get(), attempt->ownership.get());
    if (!plan.ok()) return plan.status();
    attempt->net_tasklets.push_back(factory->TakeTasklets());
    attempt->plans.push_back(std::move(plan.value()));
    attempt->factories.push_back(std::move(factory));
  }

  if (restore_snapshot >= 0) {
    for (auto& plan : attempt->plans) {
      JET_RETURN_IF_ERROR(core::LoadSnapshotIntoPlan(plan.get(), &cluster_->store_,
                                                     job_id_, restore_snapshot));
    }
    attempt->next_snapshot_id = restore_snapshot + 1;
  }
  // Uncommitted epochs of a previous attempt (or a watchdog-aborted one)
  // are garbage now; sweep them before the new attempt starts writing.
  cluster_->store_.ClearInFlight(job_id_);

  for (int32_t i = 0; i < node_count; ++i) {
    const auto ni = static_cast<size_t>(i);
    core::ExecutionService::Options service_options;
    service_options.rebalance_interval = config_.rebalance_interval;
    service_options.skew_threshold = config_.rebalance_skew_threshold;
    service_options.min_hot_load = config_.rebalance_min_load;
    auto service = std::make_unique<core::ExecutionService>(
        cluster_->config_.threads_per_node, attempt->profilers[ni].get(),
        service_options);
    std::vector<core::Tasklet*> tasklets = attempt->plans[ni]->Tasklets();
    for (auto& t : attempt->net_tasklets[ni]) {
      tasklets.push_back(t.get());
    }
    // Each member publishes its registry into the grid — the paper's
    // Management Center persistence path. The collector completes once the
    // member's real tasklets have, so it never keeps the service alive.
    obs::MetricsCollectorTasklet::Options opts;
    opts.key = "job-" + std::to_string(job_id_) + "/member-" +
               std::to_string(attempt->nodes[ni]);
    Attempt* raw = attempt.get();
    attempt->collectors.push_back(std::make_unique<obs::MetricsCollectorTasklet>(
        attempt->registries[ni].get(), &cluster_->grid_, clock, std::move(opts),
        [raw, ni]() {
          for (const auto& info : raw->plans[ni]->tasklet_infos()) {
            if (!info.tasklet->IsDone()) return false;
          }
          for (const auto& t : raw->net_tasklets[ni]) {
            if (!t->IsDone()) return false;
          }
          return true;
        }));
    tasklets.push_back(attempt->collectors.back().get());
    JET_RETURN_IF_ERROR(service->Start(std::move(tasklets)));
    attempt->services.push_back(std::move(service));
  }

  if (sc != nullptr) {
    Attempt* raw = attempt.get();
    attempt->coordinator = std::thread([this, raw]() { CoordinatorLoop(raw); });
  }

  attempt_count_.fetch_add(1, std::memory_order_acq_rel);
  jet::MutexLock lock(job_mutex_);
  attempt_ = std::move(attempt);
  attempt_cv_.NotifyAll();
  return Status::OK();
}

void ClusterJob::StopCurrentAttempt() {
  std::shared_ptr<Attempt> attempt;
  {
    jet::MutexLock lock(job_mutex_);
    attempt = std::move(attempt_);
  }
  if (attempt != nullptr) {
    attempt->StopAll();
    if (attempt->ownership != nullptr) {
      ownership_transfers_base_.fetch_add(attempt->ownership->transfers(),
                                          std::memory_order_acq_rel);
    }
    jet::MutexLock lock(job_mutex_);
    completed_attempt_ = std::move(attempt);
  }
}

int64_t ClusterJob::owned_partitions() const {
  jet::MutexLock lock(job_mutex_);
  if (attempt_ == nullptr || attempt_->ownership == nullptr) return 0;
  return attempt_->ownership->owned_count();
}

int64_t ClusterJob::ownership_transfers() const {
  int64_t total = ownership_transfers_base_.load(std::memory_order_acquire);
  jet::MutexLock lock(job_mutex_);
  if (attempt_ != nullptr && attempt_->ownership != nullptr) {
    total += attempt_->ownership->transfers();
  }
  return total;
}

bool ClusterJob::StopForRecovery() {
  {
    jet::MutexLock lock(job_mutex_);
    if (attempt_ == nullptr) return false;  // already finished/cancelled
    // A naturally-finished job does not restart.
    bool complete = attempt_->AllComplete() &&
                    !attempt_->cancelled.load(std::memory_order_acquire);
    if (complete || job_cancelled_.load(std::memory_order_acquire)) return false;
  }
  StopCurrentAttempt();
  return true;
}

Status ClusterJob::RestartFromLastSnapshot() {
  int64_t restore = -1;
  if (config_.guarantee != core::ProcessingGuarantee::kNone) {
    auto committed = cluster_->store_.LastCommitted(job_id_);
    if (committed.ok() && committed->has_value()) restore = **committed;
  }
  // Note: the caller (JetCluster) holds the cluster mutex, so alive_nodes_
  // is stable here.
  return StartAttempt(cluster_->alive_nodes_, restore);
}

Status ClusterJob::RestartOnMembershipChange() {
  if (!StopForRecovery()) return Status::OK();
  return RestartFromLastSnapshot();
}

void ClusterJob::FailTerminally(Status error) {
  if (failed_.load(std::memory_order_acquire)) return;
  StopCurrentAttempt();
  first_error_ = std::move(error);
  failed_.store(true, std::memory_order_release);
  if (supervisor_ != nullptr) supervisor_->OnFailed();
}

void ClusterJob::CoordinatorLoop(Attempt* attempt) {
  using std::chrono::nanoseconds;
  const Nanos interval = config_.snapshot_interval;
  const Nanos ack_timeout = config_.snapshot_ack_timeout;

  // Commit is gated on every *participant* having persisted the epoch,
  // tracked per tasklet rather than with a shared ack counter: after a
  // watchdog abort, stragglers still acking the abandoned epoch must not
  // count toward the next one.
  std::vector<const core::ProcessorTasklet*> participants;
  for (const auto& plan : attempt->plans) {
    for (const auto& info : plan->tasklet_infos()) {
      if (info.tasklet->ParticipatesInSnapshots()) {
        participants.push_back(info.tasklet);
      }
    }
  }
  for (const auto& node_tasklets : attempt->net_tasklets) {
    for (const auto& t : node_tasklets) {
      if (t->ParticipatesInSnapshots()) participants.push_back(t.get());
    }
  }

  while (!attempt->coordinator_stop.load(std::memory_order_acquire)) {
    Nanos slept = 0;
    while (slept < interval &&
           !attempt->coordinator_stop.load(std::memory_order_acquire)) {
      Nanos step = std::min<Nanos>(interval - slept, kNanosPerMilli);
      std::this_thread::sleep_for(nanoseconds(step));
      slept += step;
    }
    if (attempt->coordinator_stop.load(std::memory_order_acquire) ||
        attempt->AllComplete()) {
      break;
    }
    int64_t id = attempt->next_snapshot_id++;
    attempt->snapshot_control.acks.store(0, std::memory_order_release);
    attempt->snapshot_control.requested.store(id, std::memory_order_release);
    auto all_completed = [&participants, id]() {
      for (const core::ProcessorTasklet* t : participants) {
        if (t->completed_snapshot_id() < id) return false;
      }
      return true;
    };
    const auto deadline = std::chrono::steady_clock::now() + nanoseconds(ack_timeout);
    bool aborted = false;
    while (!all_completed()) {
      if (attempt->coordinator_stop.load(std::memory_order_acquire) ||
          attempt->AllComplete()) {
        return;  // attempt winding down mid-snapshot: leave uncommitted
      }
      if (ack_timeout > 0 && std::chrono::steady_clock::now() >= deadline) {
        // Watchdog: a dead or cut-off participant will never persist this
        // epoch. Abandon it, GC its partial state, and hand the incident
        // to the control plane — the next epoch re-arms on schedule.
        cluster_->store_.Abort(job_id_, id);
        attempt->snapshot_control.aborted.store(id, std::memory_order_release);
        snapshots_aborted_.fetch_add(1, std::memory_order_acq_rel);
        attempt->aborted_counter.Add(1);
        cluster_->NotifySnapshotTimeout(this, attempt);
        aborted = true;
        break;
      }
      std::this_thread::sleep_for(nanoseconds(100 * kNanosPerMicro));
    }
    if (aborted) continue;
    Status s = cluster_->store_.Commit(job_id_, id);
    if (!s.ok()) {
      JET_LOG(kError) << "snapshot commit failed: " << s.ToString();
      continue;
    }
    attempt->snapshot_control.committed.store(id, std::memory_order_release);
    last_committed_.store(id, std::memory_order_release);
    int64_t taken = snapshots_taken_.fetch_add(1, std::memory_order_acq_rel) + 1;
    // The coordinator thread is the sole writer of the job gauges.
    attempt->snapshots_gauge.Set(taken);
    attempt->committed_gauge.Set(id);
  }
}

std::vector<obs::MetricSnapshot> ClusterJob::MetricSnapshots() const {
  std::shared_ptr<Attempt> attempt;
  {
    jet::MutexLock lock(job_mutex_);
    attempt = attempt_ != nullptr ? attempt_ : completed_attempt_;
  }
  std::vector<obs::MetricSnapshot> out;
  if (attempt != nullptr) {
    for (const auto& reg : attempt->registries) {
      auto snap = reg->Snapshot();
      out.insert(out.end(), std::make_move_iterator(snap.begin()),
                 std::make_move_iterator(snap.end()));
    }
  }
  if (supervisor_ != nullptr) {
    auto snap = supervisor_->MetricSnapshots();
    out.insert(out.end(), std::make_move_iterator(snap.begin()),
               std::make_move_iterator(snap.end()));
  }
  return out;
}

core::JobMetrics ClusterJob::Metrics() const {
  core::JobMetrics m = core::JobMetricsFromSnapshot(MetricSnapshots());
  m.job_id = job_id_;
  m.snapshots_taken = snapshots_taken_.load(std::memory_order_acquire);
  m.last_committed_snapshot = last_committed_.load(std::memory_order_acquire);
  m.attempt = attempt_count_.load(std::memory_order_acquire);
  return m;
}

Status ClusterJob::Join() {
  while (true) {
    if (failed_.load(std::memory_order_acquire)) return first_error_;
    std::shared_ptr<Attempt> current;
    {
      jet::MutexLock lock(job_mutex_);
      current = attempt_;
    }
    if (job_cancelled_.load(std::memory_order_acquire)) break;
    if (current == nullptr) {
      // Between attempts (restart in progress) or already stopped.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    if (current->AllComplete()) {
      jet::MutexLock lock(job_mutex_);
      if (attempt_ == current &&
          !current->cancelled.load(std::memory_order_acquire)) {
        completed_naturally_.store(true, std::memory_order_release);
        break;  // finished naturally
      }
      continue;  // superseded; wait for the new attempt
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  StopCurrentAttempt();
  return first_error_;
}

void ClusterJob::Cancel() {
  job_cancelled_.store(true, std::memory_order_release);
  jet::MutexLock lock(job_mutex_);
  if (attempt_ != nullptr) {
    attempt_->cancelled.store(true, std::memory_order_release);
    for (auto& s : attempt_->services) s->Cancel();
  }
}

}  // namespace jet::cluster
