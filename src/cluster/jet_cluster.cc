#include "cluster/jet_cluster.h"

#include <algorithm>
#include <chrono>
#include <iterator>

#include "common/logging.h"

namespace jet::cluster {

// ---------------------------------------------------------------------------
// JetCluster
// ---------------------------------------------------------------------------

JetCluster::JetCluster(ClusterConfig config)
    : config_(config),
      grid_(config.backup_count),
      store_(&grid_),
      network_(config.link) {
  for (int32_t i = 0; i < config_.initial_nodes; ++i) {
    int32_t id = next_node_id_++;
    auto added = grid_.AddMember(id);
    JET_CHECK(added.ok()) << added.status().ToString();
    alive_nodes_.push_back(id);
  }
}

JetCluster::~JetCluster() {
  std::vector<ClusterJob*> jobs;
  {
    std::scoped_lock lock(mutex_);
    for (auto& j : jobs_) jobs.push_back(j.get());
  }
  for (ClusterJob* j : jobs) {
    j->Cancel();
    (void)j->Join();
  }
  network_.Shutdown();
}

Result<ClusterJob*> JetCluster::SubmitJob(const core::Dag* dag, core::JobConfig config,
                                          imdg::JobId job_id) {
  JET_RETURN_IF_ERROR(dag->Validate());
  std::scoped_lock lock(mutex_);
  if (alive_nodes_.empty()) return UnavailableError("no alive nodes");
  auto job =
      std::unique_ptr<ClusterJob>(new ClusterJob(this, dag, config, job_id));
  JET_RETURN_IF_ERROR(job->StartAttempt(alive_nodes_, /*restore_snapshot=*/-1));
  jobs_.push_back(std::move(job));
  return jobs_.back().get();
}

Status JetCluster::KillNode(int32_t node_id) {
  std::scoped_lock lock(mutex_);
  auto it = std::find(alive_nodes_.begin(), alive_nodes_.end(), node_id);
  if (it == alive_nodes_.end()) return NotFoundError("node not alive");
  alive_nodes_.erase(it);
  if (alive_nodes_.empty()) return FailedPreconditionError("cannot kill the last node");

  // Fail-stop the member's workers immediately (its in-memory replicas and
  // execution state are gone).
  for (auto& job : jobs_) {
    std::scoped_lock job_lock(job->job_mutex_);
    if (job->attempt_ == nullptr) continue;
    auto& nodes = job->attempt_->nodes;
    auto idx = std::find(nodes.begin(), nodes.end(), node_id);
    if (idx != nodes.end()) {
      job->attempt_->services[static_cast<size_t>(idx - nodes.begin())]->Cancel();
    }
  }
  // The failure detector needs time to declare the member dead before the
  // cluster reacts (heartbeat timeout).
  if (config_.failure_detection_delay > 0) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(config_.failure_detection_delay));
  }
  // Promote backup replicas of the lost partitions (§4.2, Fig. 6).
  JET_RETURN_IF_ERROR(grid_.RemoveMember(node_id));
  // Restart affected jobs from their last committed snapshot (§4.4).
  for (auto& job : jobs_) {
    Status s = job->RestartOnMembershipChange();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status JetCluster::RecoverAfterFault(const std::function<void()>& heal) {
  std::scoped_lock lock(mutex_);
  // Stop unfinished attempts while the links are still faulty so no late
  // message can sneak a lossy attempt to "completion".
  std::vector<ClusterJob*> stopped;
  for (auto& job : jobs_) {
    if (job->StopForRecovery()) stopped.push_back(job.get());
  }
  if (heal) heal();
  for (ClusterJob* job : stopped) {
    JET_RETURN_IF_ERROR(job->RestartFromLastSnapshot());
  }
  return Status::OK();
}

Status JetCluster::StallNode(int32_t node_id, Nanos duration) {
  std::scoped_lock lock(mutex_);
  if (std::find(alive_nodes_.begin(), alive_nodes_.end(), node_id) ==
      alive_nodes_.end()) {
    return NotFoundError("node not alive");
  }
  for (auto& job : jobs_) {
    std::scoped_lock job_lock(job->job_mutex_);
    if (job->attempt_ == nullptr) continue;
    auto& nodes = job->attempt_->nodes;
    auto idx = std::find(nodes.begin(), nodes.end(), node_id);
    if (idx != nodes.end()) {
      job->attempt_->services[static_cast<size_t>(idx - nodes.begin())]->InjectStall(
          duration);
    }
  }
  return Status::OK();
}

Result<int32_t> JetCluster::AddNode() {
  std::scoped_lock lock(mutex_);
  int32_t id = next_node_id_++;
  auto migrated = grid_.AddMember(id);
  if (!migrated.ok()) return migrated.status();
  alive_nodes_.push_back(id);
  for (auto& job : jobs_) {
    JET_RETURN_IF_ERROR(job->RestartOnMembershipChange());
  }
  return id;
}

std::vector<int32_t> JetCluster::AliveNodes() const {
  std::scoped_lock lock(mutex_);
  return alive_nodes_;
}

JetCluster::Diagnostics JetCluster::DiagnosticsDump() const {
  std::vector<obs::MetricSnapshot> all;
  {
    std::scoped_lock lock(mutex_);
    for (const auto& job : jobs_) {
      auto snap = job->MetricSnapshots();
      all.insert(all.end(), std::make_move_iterator(snap.begin()),
                 std::make_move_iterator(snap.end()));
    }
    obs::MetricSnapshot alive;
    alive.id.name = "cluster.alive_members";
    alive.kind = obs::MetricKind::kGauge;
    alive.value = static_cast<int64_t>(alive_nodes_.size());
    all.push_back(std::move(alive));
  }

  auto add = [&all](const char* name, obs::MetricKind kind, int64_t value) {
    obs::MetricSnapshot s;
    s.id.name = name;
    s.kind = kind;
    s.value = value;
    all.push_back(std::move(s));
  };
  imdg::GridStats gs = grid_.stats();
  add("imdg.partition_count", obs::MetricKind::kGauge, grid_.partition_count());
  add("imdg.puts", obs::MetricKind::kCounter, gs.puts);
  add("imdg.gets", obs::MetricKind::kCounter, gs.gets);
  add("imdg.removes", obs::MetricKind::kCounter, gs.removes);
  add("imdg.replicated_bytes", obs::MetricKind::kCounter, gs.replicated_bytes);
  add("imdg.migrated_entries", obs::MetricKind::kCounter, gs.migrated_entries);
  add("net.messages_sent", obs::MetricKind::kCounter, network_.sent_count());
  add("net.messages_delivered", obs::MetricKind::kCounter, network_.delivered_count());
  add("net.messages_dropped", obs::MetricKind::kCounter, network_.dropped_count());

  Diagnostics d;
  d.prometheus = obs::RenderPrometheusText(all);
  d.json = obs::RenderJson(all);
  return d;
}

// ---------------------------------------------------------------------------
// ClusterJob
// ---------------------------------------------------------------------------

ClusterJob::ClusterJob(JetCluster* cluster, const core::Dag* dag,
                       core::JobConfig config, imdg::JobId job_id)
    : cluster_(cluster), dag_(dag), config_(config), job_id_(job_id) {}

ClusterJob::~ClusterJob() {
  Cancel();
  (void)Join();
}

bool ClusterJob::Attempt::AllComplete() const {
  for (const auto& s : services) {
    if (!s->IsComplete()) return false;
  }
  return true;
}

void ClusterJob::Attempt::StopAll() {
  cancelled.store(true, std::memory_order_release);
  for (auto& s : services) s->Cancel();
  for (auto& s : services) (void)s->AwaitCompletion();
  coordinator_stop.store(true, std::memory_order_release);
  if (coordinator.joinable()) coordinator.join();
}

Status ClusterJob::StartAttempt(std::vector<int32_t> nodes, int64_t restore_snapshot) {
  auto attempt = std::make_shared<Attempt>();
  attempt->nodes = std::move(nodes);
  const auto node_count = static_cast<int32_t>(attempt->nodes.size());
  const Clock* clock = &WallClock::Global();

  core::SnapshotControl* sc = nullptr;
  if (config_.guarantee != core::ProcessingGuarantee::kNone) {
    sc = &attempt->snapshot_control;
    auto* store = &cluster_->store_;
    imdg::JobId job_id = job_id_;
    sc->write_entry = [store, job_id](int64_t snapshot_id, core::VertexId vertex,
                                      int32_t writer_index, core::StateEntry&& entry) {
      imdg::SnapshotStateEntry se;
      se.vertex_id = vertex;
      se.writer_index = writer_index;
      se.key_hash = entry.key_hash;
      se.key = std::move(entry.key);
      se.value = std::move(entry.value);
      Status s = store->WriteEntry(job_id, snapshot_id, se);
      if (!s.ok()) JET_LOG(kError) << "snapshot write failed: " << s.ToString();
      return s.ok();
    };
  }

  // One metrics registry + profiler per member, tagged with the member's
  // physical id; the coordinator's job gauges live on member 0's registry.
  for (int32_t i = 0; i < node_count; ++i) {
    obs::MetricTags tags;
    tags.job = static_cast<int64_t>(job_id_);
    tags.member = attempt->nodes[static_cast<size_t>(i)];
    attempt->registries.push_back(std::make_unique<obs::MetricsRegistry>(tags));
    attempt->profilers.push_back(std::make_unique<obs::EventLoopProfiler>(
        attempt->registries.back().get(), clock));
  }
  attempt->snapshots_gauge = attempt->registries[0]->GetGauge("job.snapshots_taken");
  attempt->committed_gauge =
      attempt->registries[0]->GetGauge("job.last_committed_snapshot");

  // Channels are tagged with physical member ids so testkit link faults
  // (partitions, drops, delay spikes) apply to this execution's traffic.
  attempt->registry =
      std::make_unique<net::ExchangeRegistry>(&cluster_->network_, attempt->nodes);
  for (int32_t i = 0; i < node_count; ++i) {
    core::NodeInfo node{i, node_count};
    auto factory = std::make_unique<net::NetworkEdgeFactory>(
        attempt->registry.get(), dag_, node, config_,
        cluster_->config_.threads_per_node, clock, &attempt->cancelled, sc);
    factory->SetMetricsRegistry(attempt->registries[static_cast<size_t>(i)].get());
    auto plan = core::ExecutionPlan::Build(
        *dag_, node, config_, cluster_->config_.threads_per_node, clock,
        &attempt->cancelled, factory.get(), sc,
        attempt->registries[static_cast<size_t>(i)].get());
    if (!plan.ok()) return plan.status();
    attempt->net_tasklets.push_back(factory->TakeTasklets());
    attempt->plans.push_back(std::move(plan.value()));
    attempt->factories.push_back(std::move(factory));
  }

  if (restore_snapshot >= 0) {
    for (auto& plan : attempt->plans) {
      JET_RETURN_IF_ERROR(core::LoadSnapshotIntoPlan(plan.get(), &cluster_->store_,
                                                     job_id_, restore_snapshot));
    }
    attempt->next_snapshot_id = restore_snapshot + 1;
    cluster_->store_.ClearInFlight(job_id_, attempt->next_snapshot_id);
  }

  for (int32_t i = 0; i < node_count; ++i) {
    const auto ni = static_cast<size_t>(i);
    auto service = std::make_unique<core::ExecutionService>(
        cluster_->config_.threads_per_node, attempt->profilers[ni].get());
    std::vector<core::Tasklet*> tasklets = attempt->plans[ni]->Tasklets();
    for (auto& t : attempt->net_tasklets[ni]) {
      tasklets.push_back(t.get());
    }
    // Each member publishes its registry into the grid — the paper's
    // Management Center persistence path. The collector completes once the
    // member's real tasklets have, so it never keeps the service alive.
    obs::MetricsCollectorTasklet::Options opts;
    opts.key = "job-" + std::to_string(job_id_) + "/member-" +
               std::to_string(attempt->nodes[ni]);
    Attempt* raw = attempt.get();
    attempt->collectors.push_back(std::make_unique<obs::MetricsCollectorTasklet>(
        attempt->registries[ni].get(), &cluster_->grid_, clock, std::move(opts),
        [raw, ni]() {
          for (const auto& info : raw->plans[ni]->tasklet_infos()) {
            if (!info.tasklet->IsDone()) return false;
          }
          for (const auto& t : raw->net_tasklets[ni]) {
            if (!t->IsDone()) return false;
          }
          return true;
        }));
    tasklets.push_back(attempt->collectors.back().get());
    JET_RETURN_IF_ERROR(service->Start(std::move(tasklets)));
    attempt->services.push_back(std::move(service));
  }

  if (sc != nullptr) {
    Attempt* raw = attempt.get();
    attempt->coordinator = std::thread([this, raw]() { CoordinatorLoop(raw); });
  }

  attempt_count_.fetch_add(1, std::memory_order_acq_rel);
  std::scoped_lock lock(job_mutex_);
  attempt_ = std::move(attempt);
  attempt_cv_.notify_all();
  return Status::OK();
}

void ClusterJob::StopCurrentAttempt() {
  std::shared_ptr<Attempt> attempt;
  {
    std::scoped_lock lock(job_mutex_);
    attempt = std::move(attempt_);
  }
  if (attempt != nullptr) {
    attempt->StopAll();
    std::scoped_lock lock(job_mutex_);
    completed_attempt_ = std::move(attempt);
  }
}

bool ClusterJob::StopForRecovery() {
  {
    std::scoped_lock lock(job_mutex_);
    if (attempt_ == nullptr) return false;  // already finished/cancelled
    // A naturally-finished job does not restart.
    bool complete = attempt_->AllComplete() &&
                    !attempt_->cancelled.load(std::memory_order_acquire);
    if (complete || job_cancelled_.load(std::memory_order_acquire)) return false;
  }
  StopCurrentAttempt();
  return true;
}

Status ClusterJob::RestartFromLastSnapshot() {
  int64_t restore = -1;
  if (config_.guarantee != core::ProcessingGuarantee::kNone) {
    auto committed = cluster_->store_.LastCommitted(job_id_);
    if (committed.ok() && committed->has_value()) restore = **committed;
  }
  // Note: the caller (JetCluster) holds the cluster mutex, so alive_nodes_
  // is stable here.
  return StartAttempt(cluster_->alive_nodes_, restore);
}

Status ClusterJob::RestartOnMembershipChange() {
  if (!StopForRecovery()) return Status::OK();
  return RestartFromLastSnapshot();
}

void ClusterJob::CoordinatorLoop(Attempt* attempt) {
  using std::chrono::nanoseconds;
  const Nanos interval = config_.snapshot_interval;

  int64_t expected_acks = 0;
  for (const auto& plan : attempt->plans) {
    expected_acks += plan->snapshot_participant_count();
  }
  for (const auto& node_tasklets : attempt->net_tasklets) {
    for (const auto& t : node_tasklets) {
      if (t->ParticipatesInSnapshots()) ++expected_acks;
    }
  }

  while (!attempt->coordinator_stop.load(std::memory_order_acquire)) {
    Nanos slept = 0;
    while (slept < interval &&
           !attempt->coordinator_stop.load(std::memory_order_acquire)) {
      Nanos step = std::min<Nanos>(interval - slept, kNanosPerMilli);
      std::this_thread::sleep_for(nanoseconds(step));
      slept += step;
    }
    if (attempt->coordinator_stop.load(std::memory_order_acquire) ||
        attempt->AllComplete()) {
      break;
    }
    int64_t id = attempt->next_snapshot_id++;
    attempt->snapshot_control.acks.store(0, std::memory_order_release);
    attempt->snapshot_control.requested.store(id, std::memory_order_release);
    while (attempt->snapshot_control.acks.load(std::memory_order_acquire) <
           expected_acks) {
      if (attempt->coordinator_stop.load(std::memory_order_acquire) ||
          attempt->AllComplete()) {
        return;  // attempt winding down mid-snapshot: leave uncommitted
      }
      std::this_thread::sleep_for(nanoseconds(100 * kNanosPerMicro));
    }
    Status s = cluster_->store_.Commit(job_id_, id);
    if (!s.ok()) {
      JET_LOG(kError) << "snapshot commit failed: " << s.ToString();
      continue;
    }
    attempt->snapshot_control.committed.store(id, std::memory_order_release);
    last_committed_.store(id, std::memory_order_release);
    int64_t taken = snapshots_taken_.fetch_add(1, std::memory_order_acq_rel) + 1;
    // The coordinator thread is the sole writer of the job gauges.
    attempt->snapshots_gauge.Set(taken);
    attempt->committed_gauge.Set(id);
  }
}

std::vector<obs::MetricSnapshot> ClusterJob::MetricSnapshots() const {
  std::shared_ptr<Attempt> attempt;
  {
    std::scoped_lock lock(const_cast<std::mutex&>(job_mutex_));
    attempt = attempt_ != nullptr ? attempt_ : completed_attempt_;
  }
  std::vector<obs::MetricSnapshot> out;
  if (attempt == nullptr) return out;
  for (const auto& reg : attempt->registries) {
    auto snap = reg->Snapshot();
    out.insert(out.end(), std::make_move_iterator(snap.begin()),
               std::make_move_iterator(snap.end()));
  }
  return out;
}

core::JobMetrics ClusterJob::Metrics() const {
  core::JobMetrics m = core::JobMetricsFromSnapshot(MetricSnapshots());
  m.job_id = job_id_;
  m.snapshots_taken = snapshots_taken_.load(std::memory_order_acquire);
  m.last_committed_snapshot = last_committed_.load(std::memory_order_acquire);
  m.attempt = attempt_count_.load(std::memory_order_acquire);
  return m;
}

Status ClusterJob::Join() {
  while (true) {
    std::shared_ptr<Attempt> current;
    {
      std::scoped_lock lock(job_mutex_);
      current = attempt_;
    }
    if (job_cancelled_.load(std::memory_order_acquire)) break;
    if (current == nullptr) {
      // Between attempts (restart in progress) or already stopped.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    if (current->AllComplete()) {
      std::scoped_lock lock(job_mutex_);
      if (attempt_ == current &&
          !current->cancelled.load(std::memory_order_acquire)) {
        break;  // finished naturally
      }
      continue;  // superseded; wait for the new attempt
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  StopCurrentAttempt();
  return first_error_;
}

void ClusterJob::Cancel() {
  job_cancelled_.store(true, std::memory_order_release);
  std::scoped_lock lock(job_mutex_);
  if (attempt_ != nullptr) {
    attempt_->cancelled.store(true, std::memory_order_release);
    for (auto& s : attempt_->services) s->Cancel();
  }
}

}  // namespace jet::cluster
