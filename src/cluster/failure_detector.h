#ifndef JETSIM_CLUSTER_FAILURE_DETECTOR_H_
#define JETSIM_CLUSTER_FAILURE_DETECTOR_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/network.h"

namespace jet::cluster {

/// Heartbeat-based failure detector: every member periodically sends a
/// heartbeat over the cluster network; a member whose heartbeat has not
/// arrived within `suspicion_timeout` is declared failed and the
/// `on_failure` callback fires (once per member). This is the detection
/// step implicit in §4.4's "When a member node in a Jet cluster fails" —
/// Hazelcast uses exactly this mechanism, with a multi-second default
/// timeout (which is why recovery gaps include a detection component; see
/// bench_active_active).
///
/// Heartbeats travel through the same in-process Network as data, so they
/// experience the same link latency.
class HeartbeatFailureDetector {
 public:
  struct Options {
    Nanos heartbeat_interval = 50 * kNanosPerMilli;
    Nanos suspicion_timeout = 250 * kNanosPerMilli;
    /// When > 0, a member whose heartbeat is older than this (but younger
    /// than suspicion_timeout) is *suspected*; a fresh heartbeat refutes
    /// the suspicion (Hazelcast's phi-accrual detector has the same
    /// two-phase shape). 0 disables the suspicion phase.
    Nanos suspect_after = 0;
    /// Node id of the member running this detector. Heartbeat channels are
    /// tagged (member -> observer_node), so a testkit link partition
    /// between a member and the observer starves its heartbeats — letting
    /// tests distinguish "link down" from "process down" (the detector,
    /// correctly, cannot).
    int32_t observer_node = net::kAnyNode;
  };

  /// `on_failure(member)` is invoked from the detector thread, at most once
  /// per member. The callback must not destroy the detector.
  HeartbeatFailureDetector(net::Network* network, Options options,
                           std::function<void(int32_t)> on_failure)
      : network_(network), options_(options), on_failure_(std::move(on_failure)) {}

  ~HeartbeatFailureDetector() { Stop(); }

  HeartbeatFailureDetector(const HeartbeatFailureDetector&) = delete;
  HeartbeatFailureDetector& operator=(const HeartbeatFailureDetector&) = delete;

  /// Registers a member and starts its heartbeat pump thread. Re-registering
  /// a member whose pump was stopped or that was declared failed resets its
  /// per-member state — the member rejoined, and a later silence must fire
  /// `on_failure` again. Re-registering a live, healthy member is a no-op.
  void AddMember(int32_t member) {
    std::shared_ptr<MemberState> stale;
    {
      jet::MutexLock lock(mutex_);
      auto it = members_.find(member);
      if (it != members_.end()) {
        bool failed =
            std::find(failed_.begin(), failed_.end(), member) != failed_.end();
        bool stopped = it->second->stop.load(std::memory_order_acquire);
        if (!failed && !stopped) return;
        stale = it->second;
        members_.erase(it);
        failed_.erase(std::remove(failed_.begin(), failed_.end(), member),
                      failed_.end());
        suspected_.erase(member);
      }
    }
    if (stale != nullptr) {
      stale->stop.store(true, std::memory_order_release);
      if (stale->pump.joinable()) stale->pump.join();
    }
    jet::MutexLock lock(mutex_);
    if (members_.count(member) != 0) return;
    auto state = std::make_shared<MemberState>();
    state->channel = network_->OpenChannel(member, options_.observer_node);
    state->last_heartbeat.store(clock_.Now(), std::memory_order_release);
    members_[member] = state;
    // The member's heartbeat pump: models the member process periodically
    // pinging the cluster. StopHeartbeats() kills it (a crashed process
    // stops pinging — that is exactly what the detector detects).
    state->pump = std::thread([this, state]() {
      while (!state->stop.load(std::memory_order_acquire)) {
        network_->Send(state->channel, [this, state]() {
          state->last_heartbeat.store(clock_.Now(), std::memory_order_release);
        });
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(options_.heartbeat_interval));
      }
    });
  }

  /// Simulates the member's process dying: its heartbeats cease. The
  /// detector will declare it failed after the suspicion timeout.
  void StopHeartbeats(int32_t member) {
    std::shared_ptr<MemberState> state;
    {
      jet::MutexLock lock(mutex_);
      auto it = members_.find(member);
      if (it == members_.end()) return;
      state = it->second;
    }
    state->stop.store(true, std::memory_order_release);
    if (state->pump.joinable()) state->pump.join();
  }

  /// Starts the monitoring thread.
  void Start() {
    if (running_.exchange(true)) return;
    monitor_ = std::thread([this]() { MonitorLoop(); });
  }

  /// Stops monitoring and all heartbeat pumps.
  void Stop() {
    running_.store(false, std::memory_order_release);
    if (monitor_.joinable()) monitor_.join();
    std::vector<std::shared_ptr<MemberState>> states;
    {
      jet::MutexLock lock(mutex_);
      for (auto& [id, state] : members_) states.push_back(state);
    }
    for (auto& state : states) {
      state->stop.store(true, std::memory_order_release);
      if (state->pump.joinable()) state->pump.join();
    }
  }

  /// Members declared failed so far.
  std::vector<int32_t> FailedMembers() const {
    jet::MutexLock lock(mutex_);
    return failed_;
  }

  /// Members currently suspected (stale heartbeat, not yet declared
  /// failed). Always empty unless Options::suspect_after > 0.
  std::vector<int32_t> SuspectedMembers() const {
    jet::MutexLock lock(mutex_);
    return std::vector<int32_t>(suspected_.begin(), suspected_.end());
  }

  /// Times a suspicion was withdrawn because a late heartbeat arrived.
  int64_t refutation_count() const {
    jet::MutexLock lock(mutex_);
    return refutations_;
  }

 private:
  struct MemberState {
    net::ChannelId channel = 0;
    std::atomic<Nanos> last_heartbeat{0};
    std::atomic<bool> stop{false};
    std::thread pump;
  };

  // Detector thread body; on_failure_ fires after mutex_ is released so
  // callback-side locks never nest under the detector's.
  void MonitorLoop() JET_EXCLUDES(mutex_) {
    while (running_.load(std::memory_order_acquire)) {
      Nanos now = clock_.Now();
      std::vector<int32_t> newly_failed;
      {
        jet::MutexLock lock(mutex_);
        for (auto& [member, state] : members_) {
          if (std::find(failed_.begin(), failed_.end(), member) != failed_.end()) {
            continue;
          }
          Nanos last = state->last_heartbeat.load(std::memory_order_acquire);
          Nanos age = now - last;
          if (age > options_.suspicion_timeout) {
            suspected_.erase(member);
            failed_.push_back(member);
            newly_failed.push_back(member);
          } else if (options_.suspect_after > 0) {
            if (age > options_.suspect_after) {
              suspected_.insert(member);
            } else if (suspected_.erase(member) > 0) {
              ++refutations_;  // late heartbeat refuted the suspicion
            }
          }
        }
      }
      for (int32_t member : newly_failed) {
        if (on_failure_) on_failure_(member);
      }
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(options_.heartbeat_interval / 2));
    }
  }

  net::Network* network_;
  Options options_;
  std::function<void(int32_t)> on_failure_;
  WallClock clock_;
  mutable jet::Mutex mutex_;
  std::map<int32_t, std::shared_ptr<MemberState>> members_ JET_GUARDED_BY(mutex_);
  std::vector<int32_t> failed_ JET_GUARDED_BY(mutex_);
  std::set<int32_t> suspected_ JET_GUARDED_BY(mutex_);
  int64_t refutations_ JET_GUARDED_BY(mutex_) = 0;
  std::atomic<bool> running_{false};
  std::thread monitor_;
};

}  // namespace jet::cluster

#endif  // JETSIM_CLUSTER_FAILURE_DETECTOR_H_
