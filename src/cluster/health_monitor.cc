#include "cluster/health_monitor.h"

#include <algorithm>
#include <chrono>

namespace jet::cluster {

std::string HealthReport::ToString() const {
  std::string s = "down=[";
  for (size_t i = 0; i < down.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(down[i]);
  }
  s += "] suspected=[";
  for (size_t i = 0; i < suspected.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(suspected[i]);
  }
  s += "] broken=[";
  for (size_t i = 0; i < broken_links.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(broken_links[i].first) + "-" +
         std::to_string(broken_links[i].second);
  }
  return s + "]";
}

ClusterHealthMonitor::ClusterHealthMonitor(
    net::Network* network, Options options,
    std::function<void(const HealthReport&)> on_change)
    : network_(network), options_(options), on_change_(std::move(on_change)) {}

ClusterHealthMonitor::~ClusterHealthMonitor() { Stop(); }

void ClusterHealthMonitor::AddMember(int32_t member) {
  std::shared_ptr<MemberState> stale;
  {
    jet::MutexLock lock(mutex_);
    auto it = members_.find(member);
    if (it != members_.end()) {
      if (!it->second->stop.load(std::memory_order_acquire)) return;
      stale = it->second;  // rejoin after StopHeartbeats: replace the pump
      members_.erase(it);
    }
  }
  if (stale != nullptr && stale->pump.joinable()) stale->pump.join();

  std::shared_ptr<MemberState> state;
  {
    jet::MutexLock lock(mutex_);
    if (members_.count(member) != 0) return;
    // Fresh link state in both directions with every existing member, so a
    // (re)joining member does not start out down or broken.
    Nanos now = clock_.Now();
    for (const auto& [peer, unused] : members_) {
      for (auto key : {std::make_pair(member, peer), std::make_pair(peer, member)}) {
        Link& link = links_[key];
        if (link.last_rx == nullptr) {
          link.channel = network_->OpenChannel(key.first, key.second);
          link.last_rx = std::make_shared<std::atomic<Nanos>>(now);
        } else {
          link.last_rx->store(now, std::memory_order_release);
        }
      }
    }
    state = std::make_shared<MemberState>();
    members_[member] = state;
  }
  state->pump = std::thread([this, member, state]() { PumpLoop(member, state); });
}

void ClusterHealthMonitor::StopHeartbeats(int32_t member) {
  std::shared_ptr<MemberState> state;
  {
    jet::MutexLock lock(mutex_);
    auto it = members_.find(member);
    if (it == members_.end()) return;
    state = it->second;
  }
  state->stop.store(true, std::memory_order_release);
  if (state->pump.joinable()) state->pump.join();
}

void ClusterHealthMonitor::Start() {
  if (running_.exchange(true)) return;
  monitor_ = std::thread([this]() { MonitorLoop(); });
}

void ClusterHealthMonitor::Stop() {
  running_.store(false, std::memory_order_release);
  if (monitor_.joinable()) monitor_.join();
  std::vector<std::shared_ptr<MemberState>> states;
  {
    jet::MutexLock lock(mutex_);
    for (auto& [id, state] : members_) states.push_back(state);
  }
  for (auto& state : states) {
    state->stop.store(true, std::memory_order_release);
    if (state->pump.joinable()) state->pump.join();
  }
}

void ClusterHealthMonitor::PumpLoop(int32_t member,
                                    std::shared_ptr<MemberState> state) {
  while (!state->stop.load(std::memory_order_acquire)) {
    // Snapshot the outbound links each round so heartbeats reach members
    // that joined after this pump started.
    std::vector<Link> out;
    {
      jet::MutexLock lock(mutex_);
      for (const auto& [key, link] : links_) {
        if (key.first == member) out.push_back(link);
      }
    }
    for (const Link& link : out) {
      auto cell = link.last_rx;
      WallClock* clock = &clock_;
      network_->Send(link.channel, [cell, clock]() {
        cell->store(clock->Now(), std::memory_order_release);
      });
    }
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(options_.heartbeat_interval));
  }
}

HealthReport ClusterHealthMonitor::Evaluate(Nanos now) const {
  HealthReport r;
  std::vector<int32_t> ids;
  for (const auto& [id, state] : members_) ids.push_back(id);
  auto age = [this, now](int32_t from, int32_t to) -> Nanos {
    auto it = links_.find({from, to});
    if (it == links_.end()) return 0;
    return now - it->second.last_rx->load(std::memory_order_acquire);
  };
  std::set<int32_t> down;
  for (int32_t m : ids) {
    bool has_peer = false;
    bool any_fresh = false;
    for (int32_t o : ids) {
      if (o == m) continue;
      has_peer = true;
      if (age(m, o) <= options_.suspicion_timeout) {
        any_fresh = true;
        break;
      }
    }
    if (has_peer && !any_fresh) down.insert(m);
  }
  r.down.assign(down.begin(), down.end());
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      int32_t a = ids[i], b = ids[j];
      if (down.count(a) != 0 || down.count(b) != 0) continue;
      if (age(a, b) > options_.suspicion_timeout ||
          age(b, a) > options_.suspicion_timeout) {
        r.broken_links.emplace_back(a, b);
      }
    }
  }
  for (int32_t m : ids) {
    if (down.count(m) != 0) continue;
    for (int32_t o : ids) {
      if (o == m) continue;
      Nanos a = age(m, o);
      if (a > options_.suspect_after && a <= options_.suspicion_timeout) {
        r.suspected.push_back(m);
        break;
      }
    }
  }
  return r;
}

void ClusterHealthMonitor::MonitorLoop() {
  HealthReport last;
  while (running_.load(std::memory_order_acquire)) {
    HealthReport report;
    {
      jet::MutexLock lock(mutex_);
      report = Evaluate(clock_.Now());
      std::set<int32_t> now_suspected(report.suspected.begin(),
                                      report.suspected.end());
      std::set<int32_t> now_down(report.down.begin(), report.down.end());
      for (int32_t m : last_suspected_) {
        if (now_suspected.count(m) == 0 && now_down.count(m) == 0) {
          ++refutations_;  // fresh heartbeat withdrew the suspicion
        }
      }
      last_suspected_ = std::move(now_suspected);
    }
    if (report != last) {
      last = report;
      if (on_change_) on_change_(report);
    }
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(options_.heartbeat_interval / 2));
  }
}

HealthReport ClusterHealthMonitor::Snapshot() const {
  jet::MutexLock lock(mutex_);
  return Evaluate(clock_.Now());
}

std::vector<int32_t> ClusterHealthMonitor::SuspectedMembers() const {
  jet::MutexLock lock(mutex_);
  return std::vector<int32_t>(last_suspected_.begin(), last_suspected_.end());
}

int64_t ClusterHealthMonitor::refutation_count() const {
  jet::MutexLock lock(mutex_);
  return refutations_;
}

}  // namespace jet::cluster
