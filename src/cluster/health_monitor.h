#ifndef JETSIM_CLUSTER_HEALTH_MONITOR_H_
#define JETSIM_CLUSTER_HEALTH_MONITOR_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "net/network.h"

namespace jet::cluster {

/// Point-in-time cluster health as seen from heartbeat freshness.
struct HealthReport {
  /// Members whose heartbeats are stale to *every* peer: either the process
  /// died or the member is cut off from the whole cluster.
  std::vector<int32_t> down;
  /// Members with a heartbeat stale to some peer (past suspect_after) but
  /// not yet past the suspicion timeout anywhere. A fresh heartbeat refutes
  /// the suspicion.
  std::vector<int32_t> suspected;
  /// Unordered pairs (a < b) of non-down members that cannot hear each
  /// other (heartbeats past the suspicion timeout in either direction):
  /// the signature of a link partition rather than a process death.
  std::vector<std::pair<int32_t, int32_t>> broken_links;

  bool operator==(const HealthReport& other) const {
    return down == other.down && suspected == other.suspected &&
           broken_links == other.broken_links;
  }
  bool operator!=(const HealthReport& other) const { return !(*this == other); }

  std::string ToString() const;
};

/// Full-mesh heartbeat health monitor: every registered member runs a pump
/// thread that periodically heartbeats every *other* member over a channel
/// tagged (member -> observer), so testkit link faults starve exactly the
/// observations that a real partition would. A monitor thread folds the
/// per-link freshness matrix into a HealthReport and invokes `on_change`
/// (from the monitor thread) whenever the report changes.
///
/// This is the detection layer of the self-healing control plane: unlike
/// HeartbeatFailureDetector (single observer, fires once per member), the
/// mesh view distinguishes "process down" (stale to all peers) from "link
/// down" (stale to some), which is what quorum decisions need. A member
/// whose heartbeats return — e.g. after a partition heals — simply leaves
/// the `down` set; nothing is latched.
class ClusterHealthMonitor {
 public:
  struct Options {
    Nanos heartbeat_interval = 15 * kNanosPerMilli;
    /// Heartbeat age after which a link observation is *suspect*.
    Nanos suspect_after = 45 * kNanosPerMilli;
    /// Heartbeat age after which a link observation is *dead*.
    Nanos suspicion_timeout = 120 * kNanosPerMilli;
  };

  /// `on_change(report)` runs on the monitor thread whenever the folded
  /// report changes; it must not destroy the monitor. May be null.
  ClusterHealthMonitor(net::Network* network, Options options,
                       std::function<void(const HealthReport&)> on_change);
  ~ClusterHealthMonitor();

  ClusterHealthMonitor(const ClusterHealthMonitor&) = delete;
  ClusterHealthMonitor& operator=(const ClusterHealthMonitor&) = delete;

  /// Registers a member and starts its heartbeat pump. Re-registering a
  /// member whose pump was stopped restarts it with fresh link state (a
  /// rejoin); re-registering a live member is a no-op. Every (member,
  /// peer) link in both directions starts out fresh.
  void AddMember(int32_t member);

  /// Simulates the member's process dying: its outbound heartbeats cease
  /// and every peer's observation of it goes stale. The member stays
  /// registered — a dead process never refutes, so it stays `down`.
  void StopHeartbeats(int32_t member);

  /// Starts the monitor thread.
  void Start();

  /// Stops the monitor thread and every pump.
  void Stop();

  /// Latest folded report (recomputed on demand).
  HealthReport Snapshot() const JET_EXCLUDES(mutex_);

  /// Members currently suspected somewhere in the mesh.
  std::vector<int32_t> SuspectedMembers() const JET_EXCLUDES(mutex_);

  /// Times a suspicion was withdrawn because a fresh heartbeat arrived.
  int64_t refutation_count() const;

 private:
  struct MemberState {
    std::atomic<bool> stop{false};
    std::thread pump;
  };
  struct Link {
    net::ChannelId channel = 0;
    // Written by the network delivery thread, read by the monitor.
    std::shared_ptr<std::atomic<Nanos>> last_rx;
  };

  // Dedicated heartbeat thread per member; sleeps between beats.
  void PumpLoop(int32_t member, std::shared_ptr<MemberState> state)
      JET_EXCLUDES(mutex_);
  // Monitor thread body. Audited callback scope: on_change_ is invoked
  // AFTER mutex_ is released (the report is folded under the lock, copied
  // out, and the callback — which re-enters JetCluster's control mutex —
  // runs lock-free), so monitor-internal and callback-side locks never
  // nest.
  void MonitorLoop() JET_EXCLUDES(mutex_);
  // Folds the freshness matrix into a report.
  HealthReport Evaluate(Nanos now) const JET_REQUIRES(mutex_);

  net::Network* network_;
  Options options_;
  std::function<void(const HealthReport&)> on_change_;
  WallClock clock_;

  mutable jet::Mutex mutex_;
  std::map<int32_t, std::shared_ptr<MemberState>> members_ JET_GUARDED_BY(mutex_);
  // (from, to)
  std::map<std::pair<int32_t, int32_t>, Link> links_ JET_GUARDED_BY(mutex_);
  std::set<int32_t> last_suspected_ JET_GUARDED_BY(mutex_);
  int64_t refutations_ JET_GUARDED_BY(mutex_) = 0;

  std::atomic<bool> running_{false};
  std::thread monitor_;
};

}  // namespace jet::cluster

#endif  // JETSIM_CLUSTER_HEALTH_MONITOR_H_
