#ifndef JETSIM_CLUSTER_JOB_SUPERVISOR_H_
#define JETSIM_CLUSTER_JOB_SUPERVISOR_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/clock.h"
#include "obs/metrics_registry.h"

namespace jet::cluster {

/// Lifecycle state of a supervised job (§4.4's autonomous recovery story):
///
///                 failure (budget left)
///   RUNNING ───────────────────────────▶ RESTARTING ──▶ RUNNING
///      │                                    │  ▲
///      │ quorum lost                        │  │ quorum lost / heal
///      ▼                                    ▼  │
///   SUSPENDED ──────────────────────────▶ RESTARTING
///                  quorum restored
///
///   RUNNING/RESTARTING ──(budget exhausted)──▶ FAILED      (terminal)
///   RUNNING ──(sources exhausted)────────────▶ COMPLETED   (terminal)
enum class JobState : int64_t {
  kRunning = 1,
  kSuspended = 2,
  kRestarting = 3,
  kFailed = 4,
  kCompleted = 5,
};

const char* JobStateName(JobState state);

/// Policy knobs of the self-healing control plane. Owned by ClusterConfig;
/// disabled by default so scripted (test-driven) recovery keeps working
/// unchanged.
struct SupervisorOptions {
  bool enabled = false;

  // -- failure detection (ClusterHealthMonitor thresholds) --
  Nanos heartbeat_interval = 15 * kNanosPerMilli;
  Nanos suspect_after = 45 * kNanosPerMilli;
  Nanos suspicion_timeout = 120 * kNanosPerMilli;

  // -- restart policy (the jet::RetryBackoff vocabulary, kept flat here
  //    for config ergonomics; see common/backoff.h) --
  /// Failure-class restarts (member death, snapshot watchdog) charged
  /// before the job turns terminally FAILED. Quorum suspensions, resumes
  /// and membership rejoins are free.
  int32_t retry_budget = 8;
  Nanos initial_backoff = 20 * kNanosPerMilli;
  double backoff_multiplier = 2.0;
  Nanos max_backoff = 2 * kNanosPerSecond;
  /// Seed of the per-job jitter stream (xored with the job id): spreads
  /// simultaneous restarts, deterministically per seed.
  uint64_t jitter_seed = 0x5E1F;
  /// Jitter added on top of the base backoff, as a fraction of it.
  double jitter_fraction = 0.25;
  /// RUNNING uninterrupted this long resets the backoff exponent (flap
  /// damping: an isolated incident after a stable stretch starts the
  /// backoff ladder from the bottom again).
  Nanos stability_period = 1 * kNanosPerSecond;

  /// The restart-policy fields above as a BackoffOptions.
  BackoffOptions RestartBackoff() const {
    BackoffOptions b;
    b.retry_budget = retry_budget;
    b.initial_backoff = initial_backoff;
    b.backoff_multiplier = backoff_multiplier;
    b.max_backoff = max_backoff;
    b.jitter_seed = jitter_seed;
    b.jitter_fraction = jitter_fraction;
    return b;
  }

  // -- snapshot watchdog --
  /// Default JobConfig::snapshot_ack_timeout applied to supervised jobs
  /// that did not set one.
  Nanos snapshot_ack_timeout = 250 * kNanosPerMilli;

  /// Operate only with a strict majority of the current membership
  /// reachable; a minority partition suspends jobs instead of
  /// double-processing (split-brain protection). When false, the largest
  /// connected component keeps running.
  bool require_quorum = true;
};

/// Per-job restart policy and state machine of the self-healing control
/// plane. Pure bookkeeping: JetCluster's control thread is the only writer
/// (all methods below except the const accessors), while any thread may
/// read `state()` and the metric snapshots. The supervisor owns its own
/// registry so `job.state`, `job.restarts` and `job.backoff_nanos` survive
/// attempt churn (attempt registries die with their attempt).
class JobSupervisor {
 public:
  JobSupervisor(int64_t job_id, const SupervisorOptions& options);

  JobState state() const { return state_.load(std::memory_order_acquire); }

  /// Supervisor-initiated restarts launched so far.
  int64_t restarts() const { return restarts_.load(std::memory_order_acquire); }

  /// Failure-class restarts still allowed before terminal FAILED.
  int32_t budget_remaining() const {
    return budget_remaining_.load(std::memory_order_acquire);
  }

  // --- control-thread-only transitions ------------------------------------

  /// A failure-class incident (member down, snapshot watchdog timeout).
  /// Returns the backoff delay to wait before restarting, or std::nullopt
  /// when the retry budget is exhausted — the caller must fail the job.
  /// Incidents arriving while a restart is already pending coalesce into
  /// it (no extra charge, no rescheduling): that is what collapses a
  /// restart storm from one root cause into one restart.
  std::optional<Nanos> OnFailure(Nanos now);

  /// Quorum lost: the job parks until the partition heals. No charge.
  void OnSuspend();

  /// Schedules a free restart (quorum restored, member rejoined, scale-out
  /// under supervision). No charge, no backoff.
  void ScheduleFreeRestart(Nanos now);

  /// A new attempt was launched for this job.
  void OnRestartStarted(Nanos now);

  /// Terminal transitions.
  void OnFailed();
  void OnCompleted();

  /// True when a restart is pending and its backoff deadline has passed.
  bool RestartDue(Nanos now) const;

  std::vector<obs::MetricSnapshot> MetricSnapshots() const {
    return registry_.Snapshot();
  }

 private:
  void SetState(JobState state);

  SupervisorOptions options_;

  std::atomic<JobState> state_{JobState::kRunning};
  std::atomic<int64_t> restarts_{0};
  std::atomic<int32_t> budget_remaining_{0};

  // Control-thread-only bookkeeping.
  RetryBackoff backoff_;
  Nanos running_since_ = 0;
  Nanos restart_due_ = 0;
  bool restart_pending_ = false;

  obs::MetricsRegistry registry_;
  obs::Gauge state_gauge_;          // job.state (JobState numeric value)
  obs::Counter restarts_counter_;   // job.restarts
  obs::Gauge backoff_gauge_;        // job.backoff_nanos (last delay)
  obs::Gauge budget_gauge_;         // job.retry_budget_remaining
};

}  // namespace jet::cluster

#endif  // JETSIM_CLUSTER_JOB_SUPERVISOR_H_
