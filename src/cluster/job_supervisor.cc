#include "cluster/job_supervisor.h"

#include <algorithm>

namespace jet::cluster {

namespace {

obs::MetricTags TagsFor(int64_t job_id) {
  obs::MetricTags tags;
  tags.job = job_id;
  return tags;
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kRunning:
      return "RUNNING";
    case JobState::kSuspended:
      return "SUSPENDED";
    case JobState::kRestarting:
      return "RESTARTING";
    case JobState::kFailed:
      return "FAILED";
    case JobState::kCompleted:
      return "COMPLETED";
  }
  return "?";
}

JobSupervisor::JobSupervisor(int64_t job_id, const SupervisorOptions& options)
    : options_(options),
      backoff_(options.RestartBackoff(), static_cast<uint64_t>(job_id)),
      registry_(TagsFor(job_id)) {
  budget_remaining_.store(options_.retry_budget, std::memory_order_release);
  running_since_ = WallClock::Global().Now();
  state_gauge_ = registry_.GetGauge("job.state");
  restarts_counter_ = registry_.GetCounter("job.restarts");
  backoff_gauge_ = registry_.GetGauge("job.backoff_nanos");
  budget_gauge_ = registry_.GetGauge("job.retry_budget_remaining");
  state_gauge_.Set(static_cast<int64_t>(JobState::kRunning));
  budget_gauge_.Set(options_.retry_budget);
}

void JobSupervisor::SetState(JobState state) {
  state_.store(state, std::memory_order_release);
  state_gauge_.Set(static_cast<int64_t>(state));
}

std::optional<Nanos> JobSupervisor::OnFailure(Nanos now) {
  JobState s = state();
  if (s == JobState::kFailed || s == JobState::kCompleted) return std::nullopt;
  if (restart_pending_) {
    // Storm collapse: a second symptom of the same incident (e.g. the
    // snapshot watchdog firing right after the member was declared down)
    // folds into the already-scheduled restart.
    return restart_due_ - now;
  }
  // Flap damping: a long stable RUNNING stretch resets the exponent.
  if (s == JobState::kRunning &&
      now - running_since_ >= options_.stability_period) {
    backoff_.ResetLadder();
  }
  std::optional<Nanos> delay = backoff_.NextDelay();
  if (!delay.has_value()) {
    SetState(JobState::kFailed);
    return std::nullopt;
  }
  budget_remaining_.store(backoff_.budget_remaining(),
                          std::memory_order_release);
  budget_gauge_.Set(backoff_.budget_remaining());
  restart_pending_ = true;
  restart_due_ = now + *delay;
  backoff_gauge_.Set(*delay);
  SetState(JobState::kRestarting);
  return delay;
}

void JobSupervisor::OnSuspend() {
  JobState s = state();
  if (s == JobState::kFailed || s == JobState::kCompleted) return;
  restart_pending_ = false;
  SetState(JobState::kSuspended);
}

void JobSupervisor::ScheduleFreeRestart(Nanos now) {
  JobState s = state();
  if (s == JobState::kFailed || s == JobState::kCompleted) return;
  if (restart_pending_ && restart_due_ <= now) return;  // already due
  restart_pending_ = true;
  restart_due_ = now;
  backoff_gauge_.Set(0);
  SetState(JobState::kRestarting);
}

void JobSupervisor::OnRestartStarted(Nanos now) {
  restart_pending_ = false;
  running_since_ = now;
  restarts_.fetch_add(1, std::memory_order_acq_rel);
  restarts_counter_.Add(1);
  SetState(JobState::kRunning);
}

void JobSupervisor::OnFailed() {
  restart_pending_ = false;
  SetState(JobState::kFailed);
}

void JobSupervisor::OnCompleted() {
  JobState s = state();
  if (s == JobState::kFailed) return;
  restart_pending_ = false;
  SetState(JobState::kCompleted);
}

bool JobSupervisor::RestartDue(Nanos now) const {
  return state() == JobState::kRestarting && restart_pending_ &&
         now >= restart_due_;
}

}  // namespace jet::cluster
