#ifndef JETSIM_NEXMARK_GENERATOR_H_
#define JETSIM_NEXMARK_GENERATOR_H_

#include <utility>

#include "common/clock.h"
#include "common/rng.h"
#include "core/processors_basic.h"
#include "nexmark/model.h"

namespace jet::nexmark {

/// Configuration of the NEXMark workload, defaulted to the paper's §7.1
/// setup: "10 thousand distinct keys that correspond to persons and
/// auctions; we generate 1M records per second, by drawing keys randomly".
struct GeneratorConfig {
  /// Distinct person ids.
  int64_t people = 10'000;
  /// Distinct auction ids.
  int64_t auctions = 10'000;
  /// Out of every `total_proportion` events: 1 person, 3 auctions, rest
  /// bids (Beam's default 1:3:46).
  int32_t person_proportion = 1;
  int32_t auction_proportion = 3;
  int32_t total_proportion = 50;
  /// Seed mixed into every derived pseudo-random draw.
  uint64_t seed = 0x5EEDBA5EULL;
};

/// Deterministically derives the NEXMark event with global sequence number
/// `seq`. Being a pure function of (config, seq), replay after recovery
/// regenerates identical events — the replayable-source property of §4.5.
inline Event MakeEvent(const GeneratorConfig& config, int64_t seq) {
  Event event;
  const uint64_t h = HashU64(static_cast<uint64_t>(seq) * 0x9E3779B97F4A7C15ULL ^
                             config.seed);
  const auto r = static_cast<int32_t>(seq % config.total_proportion);
  if (r < config.person_proportion) {
    event.kind = EventKind::kPerson;
    event.person.id = static_cast<int64_t>(h % static_cast<uint64_t>(config.people));
    event.person.state = static_cast<int32_t>((h >> 16) % kStates);
    event.person.city = static_cast<int32_t>((h >> 24) % 1000);
  } else if (r < config.person_proportion + config.auction_proportion) {
    event.kind = EventKind::kAuction;
    event.auction.id = static_cast<int64_t>(h % static_cast<uint64_t>(config.auctions));
    event.auction.seller =
        static_cast<int64_t>((h >> 13) % static_cast<uint64_t>(config.people));
    event.auction.category = static_cast<int32_t>((h >> 29) % kCategories);
    event.auction.initial_bid = 100 + static_cast<int64_t>((h >> 33) % 1000);
    event.auction.expires = 0;  // filled by callers that need event time
  } else {
    event.kind = EventKind::kBid;
    event.bid.auction = static_cast<int64_t>(h % static_cast<uint64_t>(config.auctions));
    event.bid.bidder =
        static_cast<int64_t>((h >> 13) % static_cast<uint64_t>(config.people));
    event.bid.price = 100 + static_cast<int64_t>((h >> 29) % 10'000);
  }
  return event;
}

/// Routing hash of an event: the id of its primary entity.
inline uint64_t EventKeyHash(const Event& e) {
  switch (e.kind) {
    case EventKind::kPerson:
      return HashU64(static_cast<uint64_t>(e.person.id));
    case EventKind::kAuction:
      return HashU64(static_cast<uint64_t>(e.auction.id));
    case EventKind::kBid:
      return HashU64(static_cast<uint64_t>(e.bid.auction));
  }
  return 0;
}

/// GenFn adapter for GeneratorSourceP<Event>.
inline core::GeneratorSourceP<Event>::GenFn MakeEventGenFn(GeneratorConfig config) {
  return [config](int64_t seq) {
    Event e = MakeEvent(config, seq);
    return std::make_pair(e, EventKeyHash(e));
  };
}

}  // namespace jet::nexmark

#endif  // JETSIM_NEXMARK_GENERATOR_H_
