#ifndef JETSIM_NEXMARK_QUERIES_H_
#define JETSIM_NEXMARK_QUERIES_H_

#include <memory>
#include <vector>

#include "common/histogram.h"
#include "pipeline/pipeline.h"
#include "nexmark/generator.h"
#include "nexmark/model.h"

namespace jet::nexmark {

/// Workload + topology configuration of one NEXMark query run, defaulted
/// to the paper's §7.1 methodology: 1M events/s, 10k keys, 10s windows
/// sliding by 10ms, latency measured from each event's predetermined
/// occurrence time.
struct QueryConfig {
  GeneratorConfig generator;
  double events_per_second = 1'000'000;
  Nanos duration = 10 * kNanosPerSecond;
  Nanos window_size = 10 * kNanosPerSecond;
  Nanos window_slide = 10 * kNanosPerMilli;
  Nanos watermark_interval = kNanosPerMilli;
  int32_t source_parallelism = 1;
  int32_t sink_parallelism = 1;
  /// Shared event-time anchor; -1 = each source instance anchors itself.
  Nanos start_time = -1;
};

/// Output record of Q3 (sellers in particular US states).
struct Q3Result {
  int64_t person = 0;
  int32_t city = 0;
  int64_t auction = 0;
};

/// Intermediate record of Q4/Q6: a bid matched to its auction.
struct AuctionSale {
  int64_t auction = 0;
  int64_t seller = 0;
  int32_t category = 0;
  int64_t price = 0;
};

/// Q5/Q7 helper: the hottest item (argmax of bid count / price).
struct HotItemAcc {
  int64_t key = -1;
  int64_t value = -1;
};

/// A built NEXMark query: keep this object alive while the job runs. The
/// pipeline's terminal stage records per-result latency into `latency`
/// (per §7.1: the clock starts at the event's predetermined occurrence
/// time / the window's end, and stops when the result is emitted).
struct NexmarkQuery {
  int query_number = 0;
  pipeline::Pipeline pipeline;
  std::shared_ptr<core::LatencyRecorder> latency =
      std::make_shared<core::LatencyRecorder>();

  /// Merged latency histogram across sink instances (call once quiesced).
  Histogram MergedLatency() const { return latency->Merged(); }
};

/// Queries implemented (paper §7.1): 1, 2, 3, 4, 5, 6, 7, 8, 13.
bool IsQuerySupported(int query_number);

/// Builds NEXMark query `query_number` as a Pipeline. Returns
/// InvalidArgument for unsupported numbers.
Result<std::unique_ptr<NexmarkQuery>> BuildQuery(int query_number,
                                                 const QueryConfig& config);

/// The query numbers evaluated in the paper's experiments (Figures 8-12).
std::vector<int> PaperQuerySet();

}  // namespace jet::nexmark

#endif  // JETSIM_NEXMARK_QUERIES_H_
