#include "nexmark/queries.h"

namespace jet::nexmark {

namespace {

using core::AggregateOperation;
using core::WindowDef;
using core::WindowResult;
using pipeline::StreamStage;

/// Argmax aggregate used by Q5 (most-bid auction) and Q7 (highest bid).
template <typename In>
AggregateOperation<In, HotItemAcc, HotItemAcc> ArgMaxAggregate(
    std::function<int64_t(const In&)> key_of, std::function<int64_t(const In&)> value_of) {
  AggregateOperation<In, HotItemAcc, HotItemAcc> op;
  op.create = []() { return HotItemAcc{}; };
  op.accumulate = [key_of, value_of](HotItemAcc* acc, const In& in) {
    int64_t v = value_of(in);
    if (v > acc->value) *acc = HotItemAcc{key_of(in), v};
  };
  op.combine = [](HotItemAcc* acc, const HotItemAcc& other) {
    if (other.value > acc->value) *acc = other;
  };
  op.finish = [](const HotItemAcc& acc) { return acc; };
  op.serialize = [](const HotItemAcc& acc, BytesWriter* w) {
    w->WriteVarI64(acc.key);
    w->WriteVarI64(acc.value);
  };
  op.deserialize = [](BytesReader* r) {
    HotItemAcc acc;
    (void)r->ReadVarI64(&acc.key);
    (void)r->ReadVarI64(&acc.value);
    return acc;
  };
  return op;
}

/// Max-price-with-seller aggregate used by Q6's winning-bid step.
AggregateOperation<AuctionSale, AuctionSale, AuctionSale> WinningBidAggregate() {
  AggregateOperation<AuctionSale, AuctionSale, AuctionSale> op;
  op.create = []() { return AuctionSale{0, 0, 0, -1}; };
  op.accumulate = [](AuctionSale* acc, const AuctionSale& in) {
    if (in.price > acc->price) *acc = in;
  };
  op.combine = [](AuctionSale* acc, const AuctionSale& other) {
    if (other.price > acc->price) *acc = other;
  };
  op.finish = [](const AuctionSale& acc) { return acc; };
  op.serialize = [](const AuctionSale& acc, BytesWriter* w) {
    w->WriteVarI64(acc.auction);
    w->WriteVarI64(acc.seller);
    w->WriteVarI64(acc.category);
    w->WriteVarI64(acc.price);
  };
  op.deserialize = [](BytesReader* r) {
    AuctionSale acc;
    int64_t category = 0;
    (void)r->ReadVarI64(&acc.auction);
    (void)r->ReadVarI64(&acc.seller);
    (void)r->ReadVarI64(&category);
    (void)r->ReadVarI64(&acc.price);
    acc.category = static_cast<int32_t>(category);
    return acc;
  };
  return op;
}

/// The common event source of every query.
StreamStage<Event> AddSource(NexmarkQuery* q, const QueryConfig& config) {
  core::GeneratorSourceP<Event>::Options opt;
  opt.events_per_second = config.events_per_second;
  opt.duration = config.duration;
  opt.watermark_interval = config.watermark_interval;
  opt.start_time = config.start_time;
  return q->pipeline.ReadFrom<Event>("nexmark-source",
                                     MakeEventGenFn(config.generator), opt,
                                     config.source_parallelism);
}

StreamStage<Bid> Bids(StreamStage<Event> events) {
  return events.FlatMap<Bid>("bids", [](const Event& e, std::vector<Bid>* out) {
    if (e.kind == EventKind::kBid) out->push_back(e.bid);
  });
}

StreamStage<Auction> Auctions(StreamStage<Event> events) {
  return events.FlatMap<Auction>("auctions",
                                 [](const Event& e, std::vector<Auction>* out) {
                                   if (e.kind == EventKind::kAuction)
                                     out->push_back(e.auction);
                                 });
}

StreamStage<Person> Persons(StreamStage<Event> events) {
  return events.FlatMap<Person>("persons", [](const Event& e, std::vector<Person>* out) {
    if (e.kind == EventKind::kPerson) out->push_back(e.person);
  });
}

void Sink(NexmarkQuery* q, const QueryConfig& config, auto stage) {
  stage.WriteToLatencySink("latency-sink", q->latency.get(), config.sink_parallelism);
}

// --- Q1: currency conversion (simple map, §7.1) ---
void BuildQ1(NexmarkQuery* q, const QueryConfig& config) {
  auto out = Bids(AddSource(q, config)).Map<Bid>("dol-to-eur", [](const Bid& b) {
    Bid converted = b;
    converted.price = static_cast<int64_t>(static_cast<double>(b.price) * kDolToEur);
    return converted;
  });
  Sink(q, config, out);
}

// --- Q2: selection — bids on a subset of auction numbers (§7.1) ---
void BuildQ2(NexmarkQuery* q, const QueryConfig& config) {
  auto out = Bids(AddSource(q, config)).Filter("auction-mod", [](const Bid& b) {
    return b.auction % 123 == 0;
  });
  Sink(q, config, out);
}

// --- Q3: join + filter — sellers in particular US states (§7.1) ---
void BuildQ3(NexmarkQuery* q, const QueryConfig& config) {
  auto events = AddSource(q, config);
  auto persons = Persons(events).Filter("in-states", [](const Person& p) {
    return p.state == 0 || p.state == 5 || p.state == 10;  // "OR, ID, CA"
  });
  auto auctions = Auctions(events).Filter("category-10-ish", [](const Auction& a) {
    return a.category == 1;
  });
  auto joined = persons.WindowJoin<Auction, Q3Result>(
      "person-auction-join", auctions,
      [](const Person& p) { return static_cast<uint64_t>(p.id); },
      [](const Auction& a) { return static_cast<uint64_t>(a.seller); },
      [](const Person& p, const Auction& a) {
        return Q3Result{p.id, p.city, a.id};
      },
      config.window_size);
  Sink(q, config, joined);
}

// --- Q4: average selling price per category (§7.1) ---
void BuildQ4(NexmarkQuery* q, const QueryConfig& config) {
  auto events = AddSource(q, config);
  auto auctions = Auctions(events);
  auto bids = Bids(events);
  auto sales = auctions.WindowJoin<Bid, AuctionSale>(
      "auction-bid-join", bids,
      [](const Auction& a) { return static_cast<uint64_t>(a.id); },
      [](const Bid& b) { return static_cast<uint64_t>(b.auction); },
      [](const Auction& a, const Bid& b) {
        return AuctionSale{a.id, a.seller, a.category, b.price};
      },
      config.window_size);
  auto avg =
      sales
          .GroupingKey([](const AuctionSale& s) { return static_cast<uint64_t>(s.category); })
          .Window(WindowDef::Tumbling(config.window_size))
          .Aggregate<core::AvgAcc, double>(
              "avg-price-per-category",
              core::AveragingAggregate<AuctionSale>(
                  [](const AuctionSale& s) { return s.price; }));
  Sink(q, config, avg);
}

// --- Q5: hot items — sliding-window bid counts per auction (§7.1, the
// paper's stress query: 10s window sliding by 10ms) ---
void BuildQ5(NexmarkQuery* q, const QueryConfig& config) {
  auto counts =
      Bids(AddSource(q, config))
          .GroupingKey([](const Bid& b) { return static_cast<uint64_t>(b.auction); })
          .Window(WindowDef::Sliding(config.window_size, config.window_slide))
          .Aggregate<int64_t, int64_t>("bid-count", core::CountingAggregate<Bid>());
  // Latency is measured at the aggregating stage's emission, per §7.1
  // ("the clock stops when Jet has started emitting the window results").
  Sink(q, config, counts);
}

// --- Q6: average selling price per seller over their last 10 closed
// auctions (§7.1, the oil-rig-like specialized combiner) ---
void BuildQ6(NexmarkQuery* q, const QueryConfig& config) {
  auto events = AddSource(q, config);
  auto sales = Auctions(events).WindowJoin<Bid, AuctionSale>(
      "auction-bid-join", Bids(events),
      [](const Auction& a) { return static_cast<uint64_t>(a.id); },
      [](const Bid& b) { return static_cast<uint64_t>(b.auction); },
      [](const Auction& a, const Bid& b) {
        return AuctionSale{a.id, a.seller, a.category, b.price};
      },
      config.window_size);
  // Winning (max) bid per auction per window = the closing price.
  auto winning =
      sales.GroupingKey([](const AuctionSale& s) { return static_cast<uint64_t>(s.auction); })
          .Window(WindowDef::Tumbling(config.window_size))
          .Aggregate<AuctionSale, AuctionSale>("winning-bid", WinningBidAggregate());
  // Average of each seller's last 10 closing prices.
  auto avg =
      winning
          .Map<AuctionSale>("unwrap",
                            [](const WindowResult<AuctionSale>& r) { return r.value; })
          .GroupingKey(
              [](const AuctionSale& s) { return static_cast<uint64_t>(s.seller); })
          .Window(WindowDef::Tumbling(config.window_size))
          .Aggregate<core::LastNAcc, double>(
              "avg-last-10",
              core::LastNAverageAggregate<AuctionSale>(
                  [](const AuctionSale& s) { return s.price; }, 10));
  Sink(q, config, avg);
}

// --- Q7: highest bid per period (§7.1 "fanout using side input") ---
void BuildQ7(NexmarkQuery* q, const QueryConfig& config) {
  auto highest =
      Bids(AddSource(q, config))
          .GroupingKey([](const Bid&) { return uint64_t{0}; })  // global window
          .Window(WindowDef::Tumbling(config.window_size))
          .Aggregate<HotItemAcc, HotItemAcc>(
              "highest-bid",
              ArgMaxAggregate<Bid>([](const Bid& b) { return b.auction; },
                                   [](const Bid& b) { return b.price; }));
  Sink(q, config, highest);
}

// --- Q8: monitor new users — persons who created an auction in the last
// period (§7.1) ---
void BuildQ8(NexmarkQuery* q, const QueryConfig& config) {
  auto events = AddSource(q, config);
  auto joined = Persons(events).WindowJoin<Auction, int64_t>(
      "new-user-auction-join", Auctions(events),
      [](const Person& p) { return static_cast<uint64_t>(p.id); },
      [](const Auction& a) { return static_cast<uint64_t>(a.seller); },
      [](const Person& p, const Auction&) { return p.id; }, config.window_size);
  Sink(q, config, joined);
}

// --- Q13: join with a bounded side input (§7.1) ---
void BuildQ13(NexmarkQuery* q, const QueryConfig& config) {
  // The bounded side input: one static metadata row per auction id.
  std::vector<std::pair<int64_t, uint64_t>> side;
  side.reserve(static_cast<size_t>(config.generator.auctions));
  for (int64_t id = 0; id < config.generator.auctions; ++id) {
    side.push_back({id * 7 + 1, HashU64(static_cast<uint64_t>(id))});
  }
  auto side_stage = q->pipeline.ReadFromList<int64_t>("side-input", std::move(side));

  auto enriched =
      Bids(AddSource(q, config))
          .HashJoin<int64_t, Bid>(
              "bid-side-join", side_stage,
              [](const int64_t& meta) { return static_cast<uint64_t>((meta - 1) / 7); },
              [](const Bid& b) { return static_cast<uint64_t>(b.auction); },
              [](const Bid& b, const std::vector<int64_t>& metas, std::vector<Bid>* out) {
                Bid enriched_bid = b;
                if (!metas.empty()) enriched_bid.price += metas.front() % 10;
                out->push_back(enriched_bid);
              });
  Sink(q, config, enriched);
}

}  // namespace

bool IsQuerySupported(int query_number) {
  switch (query_number) {
    case 1:
    case 2:
    case 3:
    case 4:
    case 5:
    case 6:
    case 7:
    case 8:
    case 13:
      return true;
    default:
      return false;
  }
}

std::vector<int> PaperQuerySet() { return {1, 2, 5, 8, 13}; }

Result<std::unique_ptr<NexmarkQuery>> BuildQuery(int query_number,
                                                 const QueryConfig& config) {
  if (!IsQuerySupported(query_number)) {
    return InvalidArgumentError("unsupported NEXMark query " +
                                std::to_string(query_number));
  }
  auto q = std::make_unique<NexmarkQuery>();
  q->query_number = query_number;
  switch (query_number) {
    case 1:
      BuildQ1(q.get(), config);
      break;
    case 2:
      BuildQ2(q.get(), config);
      break;
    case 3:
      BuildQ3(q.get(), config);
      break;
    case 4:
      BuildQ4(q.get(), config);
      break;
    case 5:
      BuildQ5(q.get(), config);
      break;
    case 6:
      BuildQ6(q.get(), config);
      break;
    case 7:
      BuildQ7(q.get(), config);
      break;
    case 8:
      BuildQ8(q.get(), config);
      break;
    case 13:
      BuildQ13(q.get(), config);
      break;
    default:
      return InvalidArgumentError("unreachable");
  }
  return q;
}

}  // namespace jet::nexmark
