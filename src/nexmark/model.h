#ifndef JETSIM_NEXMARK_MODEL_H_
#define JETSIM_NEXMARK_MODEL_H_

#include <cstdint>

namespace jet::nexmark {

/// Kind of a NEXMark event. The benchmark models an online auction site
/// with three entity streams [Tucker et al., NEXMark tech report].
enum class EventKind : uint8_t { kPerson = 0, kAuction = 1, kBid = 2 };

/// A person registering on the auction site (potential seller/bidder).
struct Person {
  int64_t id = 0;
  int32_t state = 0;  ///< US state index [0, 50)
  int32_t city = 0;
};

/// An item being auctioned.
struct Auction {
  int64_t id = 0;
  int64_t seller = 0;   ///< Person id
  int32_t category = 0; ///< [0, kCategories)
  int64_t initial_bid = 0;
  int64_t expires = 0;  ///< event-time of auction close (ns)
};

/// A bid on an auction.
struct Bid {
  int64_t auction = 0;  ///< Auction id
  int64_t bidder = 0;   ///< Person id
  int64_t price = 0;    ///< price in cents (USD)
};

/// One generated event (tagged union kept flat for cheap copies).
struct Event {
  EventKind kind = EventKind::kBid;
  Person person;
  Auction auction;
  Bid bid;
};

/// Number of auction categories (Beam's generator uses 5).
constexpr int32_t kCategories = 5;

/// Number of US states a person can be in.
constexpr int32_t kStates = 50;

/// Dollar -> Euro conversion rate used by Q1 (matches Beam).
constexpr double kDolToEur = 0.908;

}  // namespace jet::nexmark

#endif  // JETSIM_NEXMARK_MODEL_H_
