#include "shufflebench/pipeline.h"

#include <utility>

#include "shufflebench/wire.h"

namespace jet::shufflebench {

Status BuildMatcherPipeline(const PipelineOptions& options, MatcherPipeline* out) {
  using core::ProcessorMeta;
  JET_RETURN_IF_ERROR(RegisterShuffleBenchPayload());

  out->collector = std::make_shared<core::SyncCollector<core::WindowResult<int64_t>>>();
  core::WindowDef window = core::WindowDef::Tumbling(options.window_size);
  auto op = MatcherAggregate(options.state_bytes_per_key);

  auto source = out->dag.AddVertex(
      "generate",
      [options](const ProcessorMeta&) -> std::unique_ptr<core::Processor> {
        core::GeneratorSourceP<Record>::Options opt;
        opt.events_per_second = options.events_per_second;
        opt.duration = options.source_duration;
        opt.watermark_interval = options.watermark_interval;
        // Grid-owned mode routes by grid partition so each matcher
        // instance receives exactly the partitions it owns.
        auto gen_fn = options.owned_state_grid != nullptr
                          ? MakeGridRoutedRecordGenFn(
                                options.generator,
                                options.owned_state_grid->partition_count())
                          : MakeRecordGenFn(options.generator);
        return std::make_unique<core::GeneratorSourceP<Record>>(std::move(gen_fn),
                                                                opt);
      },
      1);
  auto match = out->dag.AddVertex(
      "match",
      [op, window, options](const ProcessorMeta&) -> std::unique_ptr<core::Processor> {
        if (options.owned_state_grid != nullptr) {
          return std::make_unique<GridMatcherP>(options.owned_state_grid,
                                                options.owned_state_map,
                                                options.state_bytes_per_key, window);
        }
        return std::make_unique<core::AccumulateByFrameP<Record, MatcherState, int64_t>>(
            op, [](const Record& rec) { return rec.key; }, window);
      },
      1);
  auto combine = out->dag.AddVertex(
      "combine",
      [op, window](const ProcessorMeta&) {
        return std::make_unique<core::CombineFramesP<Record, MatcherState, int64_t>>(
            op, window);
      },
      1);
  auto sink = out->dag.AddVertex(
      "sink",
      [collector = out->collector](const ProcessorMeta&) {
        return std::make_unique<core::CollectSinkP<core::WindowResult<int64_t>>>(
            collector);
      },
      1);

  // The record shuffle: distributed so frames cross members (and the wire
  // codec when serialize_exchange_frames is on), partitioned so each key's
  // records converge on one matcher.
  auto& shuffle = out->dag.AddEdge(source, match);
  shuffle.routing = core::RoutingPolicy::kPartitioned;
  shuffle.distributed = true;
  // Frames then flow to the combiner partitioned by the same key hash;
  // the shuffle already co-located each key, so this hop stays local.
  auto& frames = out->dag.AddEdge(match, combine);
  frames.routing = core::RoutingPolicy::kPartitioned;
  frames.distributed = true;
  out->dag.AddEdge(combine, sink);
  return Status::OK();
}

int64_t ExpectedRecords(const PipelineOptions& options) {
  auto period = static_cast<Nanos>(1e9 / options.events_per_second);
  if (period < 1) period = 1;
  return (options.source_duration + period - 1) / period;
}

}  // namespace jet::shufflebench
