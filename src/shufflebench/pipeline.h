#ifndef JETSIM_SHUFFLEBENCH_PIPELINE_H_
#define JETSIM_SHUFFLEBENCH_PIPELINE_H_

#include <memory>

#include "common/clock.h"
#include "common/status.h"
#include "core/dag.h"
#include "core/processors_basic.h"
#include "core/processors_window.h"
#include "shufflebench/generator.h"
#include "shufflebench/grid_matcher.h"
#include "shufflebench/matcher.h"

namespace jet::shufflebench {

/// Knobs of the standard ShuffleBench matcher job.
struct PipelineOptions {
  GeneratorConfig generator;
  /// Matcher state bytes held per key (the "large state" axis).
  int32_t state_bytes_per_key = 64;
  double events_per_second = 100'000;
  Nanos source_duration = 500 * kNanosPerMilli;
  Nanos window_size = 50 * kNanosPerMilli;
  Nanos watermark_interval = 5 * kNanosPerMilli;
  /// When set, the matcher runs grid-owned (GridMatcherP): per-key state
  /// blocks live in this grid's partitions under single-writer owned
  /// access, the shuffle routes by grid partition, and the per-event path
  /// takes zero locks. The grid must outlive the job, and the previous
  /// execution over `owned_state_map` must be destroyed before
  /// resubmitting (see GridMatcherP).
  imdg::DataGrid* owned_state_grid = nullptr;
  std::string owned_state_map = "shufflebench.matcher";
};

/// The built job: a DAG wired as
///
///   generate ──[distributed, partitioned]──> match ──[partitioned]──> combine ──> sink
///
/// The generate→match hop is the shuffle: every Record crosses the PR 5
/// batched exchange routed by key hash, and with
/// JobConfig::serialize_exchange_frames it round-trips through the
/// registered kShuffleBenchRecord wire codec (real serde cost, not the
/// opaque-bytes fallback). `match` accumulates per-key MatcherState in
/// tumbling windows; `combine` merges frames and emits
/// core::WindowResult<int64_t> match counts into `collector`.
struct MatcherPipeline {
  core::Dag dag;
  std::shared_ptr<core::SyncCollector<core::WindowResult<int64_t>>> collector;
};

/// Populates `out` from `options` and registers the Record wire codec
/// (idempotent). `out->dag` must outlive any job submitted from it.
Status BuildMatcherPipeline(const PipelineOptions& options, MatcherPipeline* out);

/// Records the source will emit over its full lifetime (mirrors
/// GeneratorSourceP's truncated-period emission schedule).
int64_t ExpectedRecords(const PipelineOptions& options);

}  // namespace jet::shufflebench

#endif  // JETSIM_SHUFFLEBENCH_PIPELINE_H_
