#ifndef JETSIM_SHUFFLEBENCH_RECORD_H_
#define JETSIM_SHUFFLEBENCH_RECORD_H_

#include <cstdint>

#include "common/serde.h"

namespace jet::shufflebench {

/// The ShuffleBench record (Henning et al., arXiv 2403.04570): a routing
/// key drawn from a configurable cardinality plus a fixed-size opaque
/// payload. The engine never interprets the payload — it only pays the
/// cost of shuffling and serializing it — which is exactly what makes the
/// workload a shuffle benchmark rather than a query benchmark.
struct Record {
  uint64_t key = 0;
  Bytes payload;

  bool operator==(const Record& other) const {
    return key == other.key && payload == other.payload;
  }
  bool operator!=(const Record& other) const { return !(*this == other); }
};

}  // namespace jet::shufflebench

#endif  // JETSIM_SHUFFLEBENCH_RECORD_H_
