#ifndef JETSIM_SHUFFLEBENCH_GENERATOR_H_
#define JETSIM_SHUFFLEBENCH_GENERATOR_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/processors_basic.h"
#include "shufflebench/record.h"

namespace jet::shufflebench {

/// Knobs of the ShuffleBench record stream. Defaults follow the paper's
/// base setup scaled to one box: uniform keys, small opaque payloads.
struct GeneratorConfig {
  /// Distinct record keys. The headline scenarios sweep 1e4 / 1e5 / 1e6.
  int64_t key_cardinality = 100'000;
  /// Opaque payload bytes carried by every record.
  int32_t payload_bytes = 64;
  /// Zipf skew exponent; 0 disables skew (uniform key draw). With s > 0,
  /// key rank r is drawn with probability proportional to 1 / (r+1)^s, so
  /// a handful of keys dominate — the hot-partition case.
  double zipf_exponent = 0.0;
  /// Seed mixed into every derived pseudo-random draw (keys and payload
  /// bytes alike).
  uint64_t seed = 0x5EEDBA5EULL;
};

/// Deterministic record stream: record `seq` is a pure function of
/// (config, seq), so replay after recovery regenerates byte-identical
/// records (the replayable-source property of §4.5), and two generators
/// with the same config produce byte-identical streams.
///
/// The Zipf path precomputes the CDF over key ranks once at construction
/// (O(cardinality) doubles, built deterministically from the config), then
/// maps a hash-derived uniform draw through it with a binary search per
/// record. The uniform path is a plain modulo.
class RecordGenerator {
 public:
  explicit RecordGenerator(GeneratorConfig config) : config_(config) {
    if (config_.zipf_exponent > 0.0) {
      zipf_cdf_.reserve(static_cast<size_t>(config_.key_cardinality));
      double total = 0;
      for (int64_t r = 0; r < config_.key_cardinality; ++r) {
        total += 1.0 / std::pow(static_cast<double>(r + 1), config_.zipf_exponent);
        zipf_cdf_.push_back(total);
      }
      for (double& c : zipf_cdf_) c /= total;
    }
  }

  const GeneratorConfig& config() const { return config_; }

  /// Derives record `seq`. Pure in (config, seq).
  Record MakeRecord(int64_t seq) const {
    Record rec;
    const uint64_t h =
        HashU64(static_cast<uint64_t>(seq) * 0x9E3779B97F4A7C15ULL ^ config_.seed);
    rec.key = DrawKey(h);
    rec.payload.resize(static_cast<size_t>(config_.payload_bytes));
    // Fill the payload 8 bytes at a time from a per-record hash chain, so
    // payload content is deterministic but incompressible-looking.
    uint64_t chunk_seed = HashU64(h ^ 0xA5A5A5A5A5A5A5A5ULL);
    for (size_t off = 0; off < rec.payload.size(); off += 8) {
      chunk_seed = HashU64(chunk_seed);
      const size_t n = std::min<size_t>(8, rec.payload.size() - off);
      for (size_t b = 0; b < n; ++b) {
        rec.payload[off + b] = static_cast<uint8_t>(chunk_seed >> (8 * b));
      }
    }
    return rec;
  }

  /// Routing hash of a record.
  static uint64_t KeyHash(const Record& rec) { return HashU64(rec.key); }

 private:
  uint64_t DrawKey(uint64_t h) const {
    if (zipf_cdf_.empty()) {
      return h % static_cast<uint64_t>(config_.key_cardinality);
    }
    // 53-bit uniform in [0, 1) from the hash, mapped through the CDF.
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    const auto rank = static_cast<uint64_t>(it - zipf_cdf_.begin());
    // Scatter ranks over the key space so the hot keys are not 0..k —
    // rank r deterministically owns key position perm(r).
    return HashU64(rank ^ config_.seed) % static_cast<uint64_t>(config_.key_cardinality);
  }

  GeneratorConfig config_;
  std::vector<double> zipf_cdf_;  ///< empty when zipf_exponent == 0
};

/// GenFn adapter for GeneratorSourceP<Record>. The generator (and its
/// Zipf table) is shared immutably by every clone of the closure.
inline core::GeneratorSourceP<Record>::GenFn MakeRecordGenFn(GeneratorConfig config) {
  auto gen = std::make_shared<const RecordGenerator>(config);
  return [gen](int64_t seq) {
    Record rec = gen->MakeRecord(seq);
    const uint64_t key_hash = RecordGenerator::KeyHash(rec);
    return std::make_pair(std::move(rec), key_hash);
  };
}

}  // namespace jet::shufflebench

#endif  // JETSIM_SHUFFLEBENCH_GENERATOR_H_
