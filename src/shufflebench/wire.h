#ifndef JETSIM_SHUFFLEBENCH_WIRE_H_
#define JETSIM_SHUFFLEBENCH_WIRE_H_

#include "common/serde.h"
#include "common/status.h"
#include "shufflebench/record.h"

namespace jet::shufflebench {

/// Wire encoding of a Record payload body: varint key, length-prefixed
/// payload. Registered under net::PayloadTag::kShuffleBenchRecord (18), so
/// `serialize_exchange_frames` mode pays the record's real serde cost on
/// the shuffle hop instead of the opaque-bytes fallback.
void EncodeRecord(const Record& rec, BytesWriter* w);
Status DecodeRecord(BytesReader* r, Record* out);

/// Registers the Record payload codec with the net wire format. Idempotent
/// and thread-safe; call before submitting a shufflebench job with
/// serialize_exchange_frames enabled (BuildMatcherPipeline calls it).
Status RegisterShuffleBenchPayload();

}  // namespace jet::shufflebench

#endif  // JETSIM_SHUFFLEBENCH_WIRE_H_
