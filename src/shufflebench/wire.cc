#include "shufflebench/wire.h"

#include "net/wire_format.h"

namespace jet::shufflebench {

void EncodeRecord(const Record& rec, BytesWriter* w) {
  w->WriteVarU64(rec.key);
  w->WriteBytes(rec.payload);
}

Status DecodeRecord(BytesReader* r, Record* out) {
  JET_RETURN_IF_ERROR(r->ReadVarU64(&out->key));
  JET_RETURN_IF_ERROR(r->ReadBytes(&out->payload));
  return Status::OK();
}

Status RegisterShuffleBenchPayload() {
  return net::RegisterPayloadCodec<Record>(
      static_cast<uint8_t>(net::PayloadTag::kShuffleBenchRecord), &EncodeRecord,
      &DecodeRecord);
}

}  // namespace jet::shufflebench
