#ifndef JETSIM_SHUFFLEBENCH_MATCHER_H_
#define JETSIM_SHUFFLEBENCH_MATCHER_H_

#include <algorithm>
#include <cstdint>

#include "common/serde.h"
#include "core/aggregate.h"
#include "shufflebench/record.h"

namespace jet::shufflebench {

/// Per-key matcher state: a fixed-size byte block every record folds into,
/// plus a match counter. The byte block models ShuffleBench's "matcher"
/// holding configurable state per key — it is what makes snapshots large
/// and windows heavy, which is the point of the workload. The fold is a
/// position-wise XOR, so state content depends on every record seen
/// (ordering-insensitive, hence combinable across partial accumulators).
struct MatcherState {
  Bytes state;
  int64_t count = 0;
};

/// AggregateOperation over Records with `state_bytes_per_key` bytes of
/// matcher state per key. `finish` reports the match count, so downstream
/// results are core::WindowResult<int64_t> — the existing wire tag 17 —
/// while the heavy state stays inside the accumulator (and its
/// snapshots). No deduct: the XOR fold is its own inverse only per
/// record, not per frame accumulator with a count.
inline core::AggregateOperation<Record, MatcherState, int64_t> MatcherAggregate(
    int32_t state_bytes_per_key) {
  core::AggregateOperation<Record, MatcherState, int64_t> op;
  op.create = []() { return MatcherState{}; };
  op.accumulate = [state_bytes_per_key](MatcherState* acc, const Record& rec) {
    if (acc->state.size() != static_cast<size_t>(state_bytes_per_key)) {
      acc->state.assign(static_cast<size_t>(state_bytes_per_key), 0);
    }
    // Fold the whole payload into the state block, wrapping around — every
    // state byte is touched when payloads are at least as large as the
    // state, and every payload byte always contributes.
    const size_t n = acc->state.size();
    if (n != 0) {
      for (size_t i = 0; i < rec.payload.size(); ++i) {
        acc->state[i % n] ^= rec.payload[i];
      }
    }
    ++acc->count;
  };
  op.combine = [](MatcherState* acc, const MatcherState& other) {
    if (acc->state.size() < other.state.size()) {
      acc->state.resize(other.state.size(), 0);
    }
    for (size_t i = 0; i < other.state.size(); ++i) acc->state[i] ^= other.state[i];
    acc->count += other.count;
  };
  op.finish = [](const MatcherState& acc) { return acc.count; };
  op.serialize = [](const MatcherState& acc, BytesWriter* w) {
    w->WriteVarI64(acc.count);
    w->WriteBytes(acc.state);
  };
  op.deserialize = [](BytesReader* r) {
    MatcherState acc;
    (void)r->ReadVarI64(&acc.count);
    (void)r->ReadBytes(&acc.state);
    return acc;
  };
  return op;
}

}  // namespace jet::shufflebench

#endif  // JETSIM_SHUFFLEBENCH_MATCHER_H_
