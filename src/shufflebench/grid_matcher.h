#ifndef JETSIM_SHUFFLEBENCH_GRID_MATCHER_H_
#define JETSIM_SHUFFLEBENCH_GRID_MATCHER_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/processor.h"
#include "core/processors_window.h"
#include "core/state_ownership.h"
#include "imdg/grid.h"
#include "shufflebench/generator.h"
#include "shufflebench/matcher.h"
#include "shufflebench/record.h"

namespace jet::shufflebench {

/// Matcher stage whose per-key state block lives in DataGrid partitions
/// under single-writer owned access (the grid-owned pipeline mode). Each
/// instance claims the grid partitions {p : p % total_parallelism ==
/// global_index} and folds every record's payload into the key's state via
/// OwnedPartitionHandle::Update — replicated grid state with zero lock
/// operations on the per-event path. Match counts per (key, frame) stay
/// processor-local and flow downstream as KeyedFrame<MatcherState> (empty
/// state block, the heavy bytes never leave the grid), so the standard
/// CombineFramesP/MatcherAggregate stage-2 works unchanged.
///
/// Routing contract: the inbound partitioned edge must route by
/// `record.key % grid->partition_count()` (MakeGridRoutedRecordGenFn), so
/// every record of grid partition p arrives at instance p %
/// total_parallelism — exactly the claim set above.
///
/// Lifecycle: the grid's ownership claims and owned handles are released
/// in the destructor. A re-submission over the same grid map must destroy
/// the previous execution's processors first (cluster restarts keep the
/// stopped attempt alive for metrics, so grid-owned jobs are for
/// single-attempt bench/test runs; per-vertex domains have no such
/// constraint because the registry itself is per-attempt).
class GridMatcherP final : public core::Processor {
 public:
  GridMatcherP(imdg::DataGrid* grid, std::string map_name,
               int32_t state_bytes_per_key, core::WindowDef window)
      : grid_(grid),
        map_name_(std::move(map_name)),
        state_bytes_per_key_(state_bytes_per_key),
        window_(window) {}

  Status Init(core::ProcessorContext* ctx) override {
    JET_RETURN_IF_ERROR(Processor::Init(ctx));
    partition_count_ = grid_->partition_count();
    const int32_t total = ctx->meta.total_parallelism;
    const auto g = static_cast<imdg::PartitionId>(ctx->meta.global_index);
    std::vector<imdg::PartitionId> share;
    for (imdg::PartitionId p = g; p < partition_count_; p += total) {
      share.push_back(p);
    }
    JET_RETURN_IF_ERROR(claim_.ClaimPartitions(&grid_->ownership(), share, g));
    for (imdg::PartitionId p : share) {
      auto handle = grid_->AcquireOwnedPartition(map_name_, p, g);
      if (!handle.ok()) return handle.status();
      handles_[p] = std::move(handle).value();
    }
    return Status::OK();
  }

  void ReleaseWorkerOwnership() override {
    for (auto& [p, handle] : handles_) handle->ReleaseThreadBinding();
  }

  void AdoptWorkerOwnership(int32_t worker_index) override {
    claim_.AdoptWorker(worker_index);
  }

  void Process(int ordinal, core::Inbox* inbox) override {
    (void)ordinal;
    while (!inbox->Empty()) {
      const core::Item* item = inbox->Peek();
      const Nanos frame_end = window_.FrameEndFor(item->timestamp);
      if (frame_end <= flushed_up_to_) {
        ++late_events_dropped_;
        inbox->RemoveFront();
        continue;
      }
      const Record& rec = item->payload.As<Record>();
      const auto p = static_cast<imdg::PartitionId>(
          rec.key % static_cast<uint64_t>(partition_count_));
      auto handle_it = handles_.find(p);
      if (handle_it != handles_.end()) {
        BytesWriter kw;
        kw.WriteVarU64(rec.key);
        // The owned-access fast path: no layout_rw_, no partition mutex —
        // the same wrap-around XOR fold as MatcherAggregate, applied to
        // the replicated grid value in place.
        (void)handle_it->second->Update(kw.Take(), [&](Bytes* state) {
          if (state->size() != static_cast<size_t>(state_bytes_per_key_)) {
            state->assign(static_cast<size_t>(state_bytes_per_key_), 0);
          }
          const size_t n = state->size();
          if (n != 0) {
            for (size_t i = 0; i < rec.payload.size(); ++i) {
              (*state)[i % n] ^= rec.payload[i];
            }
          }
        });
      }
      ++frames_[frame_end][rec.key];
      inbox->RemoveFront();
    }
  }

  bool TryProcessWatermark(Nanos wm) override {
    if (wm > flushed_up_to_) flushed_up_to_ = wm;
    while (!frames_.empty() && frames_.begin()->first <= wm) {
      auto frame_it = frames_.begin();
      const Nanos frame_end = frame_it->first;
      for (auto& [key, count] : frame_it->second) {
        MatcherState partial;
        partial.count = count;
        pending_.push_back(core::Item::Data<core::KeyedFrame<MatcherState>>(
            core::KeyedFrame<MatcherState>{key, frame_end, std::move(partial)},
            frame_end, HashU64(key)));
      }
      frames_.erase(frame_it);
    }
    return FlushPending();
  }

  bool SaveToSnapshot() override {
    // Only the local (key, frame) counts need the job snapshot; the state
    // blocks live in the grid, which replicates and survives on its own.
    if (!snapshot_building_) {
      snapshot_pending_.clear();
      for (const auto& [frame_end, keyed] : frames_) {
        for (const auto& [key, count] : keyed) {
          core::StateEntry entry;
          entry.key_hash = HashU64(key);
          BytesWriter kw;
          kw.WriteVarU64(key);
          kw.WriteVarI64(frame_end);
          entry.key = kw.Take();
          BytesWriter vw;
          vw.WriteVarI64(count);
          entry.value = vw.Take();
          snapshot_pending_.push_back(std::move(entry));
        }
      }
      snapshot_building_ = true;
    }
    while (!snapshot_pending_.empty()) {
      if (!ctx()->outbox->OfferToSnapshot(std::move(snapshot_pending_.front()))) {
        return false;
      }
      snapshot_pending_.pop_front();
    }
    snapshot_building_ = false;
    return true;
  }

  Status RestoreFromSnapshot(const core::StateEntry& entry) override {
    BytesReader kr(entry.key);
    uint64_t key = 0;
    int64_t frame_end = 0;
    JET_RETURN_IF_ERROR(kr.ReadVarU64(&key));
    JET_RETURN_IF_ERROR(kr.ReadVarI64(&frame_end));
    BytesReader vr(entry.value);
    int64_t count = 0;
    JET_RETURN_IF_ERROR(vr.ReadVarI64(&count));
    frames_[frame_end][key] += count;
    return Status::OK();
  }

  /// Items dropped because their frame had already been flushed.
  int64_t late_events_dropped() const { return late_events_dropped_; }

  /// Grid partitions this instance owns (post-Init).
  size_t owned_partition_count() const { return handles_.size(); }

 private:
  bool FlushPending() {
    while (!pending_.empty()) {
      if (!ctx()->outbox->OfferToAll(pending_.front())) return false;
      pending_.pop_front();
    }
    return true;
  }

  imdg::DataGrid* grid_;
  std::string map_name_;
  int32_t state_bytes_per_key_;
  core::WindowDef window_;
  int32_t partition_count_ = 0;
  // Declared before the handles: handles must die first (they unregister
  // from the grid), then the claims release in the ownership table.
  core::StateOwnershipClaim claim_;
  std::unordered_map<imdg::PartitionId, std::unique_ptr<imdg::OwnedPartitionHandle>>
      handles_;
  std::map<Nanos, std::unordered_map<uint64_t, int64_t>> frames_;
  Nanos flushed_up_to_ = core::kMinWatermark;
  int64_t late_events_dropped_ = 0;
  std::deque<core::Item> pending_;
  std::deque<core::StateEntry> snapshot_pending_;
  bool snapshot_building_ = false;
};

/// GenFn emitting the grid-owned routing hash: key_hash = key % partition
/// count, so the partitioned edge sends grid partition p's records to
/// instance p % total_parallelism — the partitions that instance owns.
inline core::GeneratorSourceP<Record>::GenFn MakeGridRoutedRecordGenFn(
    GeneratorConfig config, int32_t grid_partition_count) {
  auto gen = std::make_shared<const RecordGenerator>(config);
  const auto partitions = static_cast<uint64_t>(grid_partition_count);
  return [gen, partitions](int64_t seq) {
    Record rec = gen->MakeRecord(seq);
    const uint64_t key_hash = rec.key % partitions;
    return std::make_pair(std::move(rec), key_hash);
  };
}

}  // namespace jet::shufflebench

#endif  // JETSIM_SHUFFLEBENCH_GRID_MATCHER_H_
