#include "obs/exporters.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace jet::obs {

namespace {

// "tasklet.call_nanos" -> "jet_tasklet_call_nanos".
std::string PrometheusName(const std::string& name) {
  std::string out = "jet_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Renders the tag set as Prometheus labels; `extra` appends e.g. a
// quantile label. Returns "" when no label is set.
std::string LabelBlock(const MetricTags& tags, const std::string& extra = "") {
  std::string inner;
  auto add = [&inner](const std::string& k, const std::string& v) {
    if (!inner.empty()) inner += ",";
    inner += k + "=\"" + v + "\"";
  };
  if (tags.job >= 0) add("job", std::to_string(tags.job));
  if (tags.vertex >= 0) add("vertex", std::to_string(tags.vertex));
  if (!tags.tasklet.empty()) add("tasklet", EscapeLabelValue(tags.tasklet));
  if (tags.worker >= 0) add("worker", std::to_string(tags.worker));
  if (tags.member >= 0) add("member", std::to_string(tags.member));
  if (!extra.empty()) {
    if (!inner.empty()) inner += ",";
    inner += extra;
  }
  if (inner.empty()) return "";
  return "{" + inner + "}";
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string EscapeJson(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonTags(const MetricTags& tags) {
  std::string out = "{";
  bool first = true;
  auto add = [&out, &first](const std::string& k, const std::string& v) {
    if (!first) out += ",";
    first = false;
    out += "\"" + k + "\":" + v;
  };
  if (tags.job >= 0) add("job", std::to_string(tags.job));
  if (tags.vertex >= 0) add("vertex", std::to_string(tags.vertex));
  if (!tags.tasklet.empty()) add("tasklet", "\"" + EscapeJson(tags.tasklet) + "\"");
  if (tags.worker >= 0) add("worker", std::to_string(tags.worker));
  if (tags.member >= 0) add("member", std::to_string(tags.member));
  out += "}";
  return out;
}

constexpr double kSummaryQuantiles[] = {0.5, 0.9, 0.99, 0.999, 0.9999};

}  // namespace

std::string RenderPrometheusText(const std::vector<MetricSnapshot>& metrics) {
  // Group sample indices by metric name, preserving first-seen order: the
  // exposition format requires all samples of one metric to be contiguous.
  std::vector<std::string> name_order;
  std::map<std::string, std::vector<size_t>> by_name;
  for (size_t i = 0; i < metrics.size(); ++i) {
    const std::string& n = metrics[i].id.name;
    auto [it, inserted] = by_name.try_emplace(n);
    if (inserted) name_order.push_back(n);
    it->second.push_back(i);
  }

  std::string out;
  for (const std::string& name : name_order) {
    const auto& idxs = by_name[name];
    const MetricSnapshot& first = metrics[idxs.front()];
    std::string pname = PrometheusName(name);
    const char* type = first.kind == MetricKind::kCounter    ? "counter"
                       : first.kind == MetricKind::kHistogram ? "summary"
                                                              : "gauge";
    out += "# TYPE " + pname + " " + type + "\n";
    for (size_t i : idxs) {
      const MetricSnapshot& m = metrics[i];
      if (m.kind == MetricKind::kHistogram && m.histogram != nullptr) {
        const Histogram& h = *m.histogram;
        for (double q : kSummaryQuantiles) {
          out += pname + LabelBlock(m.id.tags, "quantile=\"" + FormatDouble(q) + "\"") +
                 " " + std::to_string(h.ValueAtQuantile(q)) + "\n";
        }
        std::string labels = LabelBlock(m.id.tags);
        out += pname + "_sum" + labels + " " +
               FormatDouble(h.Mean() * static_cast<double>(h.count())) + "\n";
        out += pname + "_count" + labels + " " + std::to_string(h.count()) + "\n";
        out += pname + "_min" + labels + " " + std::to_string(h.min()) + "\n";
        out += pname + "_max" + labels + " " + std::to_string(h.max()) + "\n";
      } else {
        out += pname + LabelBlock(m.id.tags) + " " + std::to_string(m.value) + "\n";
      }
    }
  }
  return out;
}

std::string RenderJson(const std::vector<MetricSnapshot>& metrics) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricSnapshot& m : metrics) {
    if (!first) out += ",";
    first = false;
    const char* kind = m.kind == MetricKind::kCounter    ? "counter"
                       : m.kind == MetricKind::kHistogram ? "histogram"
                                                          : "gauge";
    out += "{\"name\":\"" + EscapeJson(m.id.name) + "\",\"kind\":\"" + kind +
           "\",\"tags\":" + JsonTags(m.id.tags);
    if (m.kind == MetricKind::kHistogram && m.histogram != nullptr) {
      const Histogram& h = *m.histogram;
      out += ",\"count\":" + std::to_string(h.count());
      out += ",\"sum\":" + FormatDouble(h.Mean() * static_cast<double>(h.count()));
      out += ",\"min\":" + std::to_string(h.min());
      out += ",\"max\":" + std::to_string(h.max());
      out += ",\"mean\":" + FormatDouble(h.Mean());
      out += ",\"quantiles\":{";
      bool qfirst = true;
      for (double q : kSummaryQuantiles) {
        if (!qfirst) out += ",";
        qfirst = false;
        out += "\"" + FormatDouble(q) + "\":" + std::to_string(h.ValueAtQuantile(q));
      }
      out += "}";
    } else {
      out += ",\"value\":" + std::to_string(m.value);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Parsers (verification + tooling)
// ---------------------------------------------------------------------------

namespace {

bool ParseLabels(const std::string& line, size_t* pos,
                 std::map<std::string, std::string>* labels) {
  // *pos points at '{'.
  size_t i = *pos + 1;
  while (i < line.size() && line[i] != '}') {
    size_t name_start = i;
    while (i < line.size() && (std::isalnum(static_cast<unsigned char>(line[i])) ||
                               line[i] == '_')) {
      ++i;
    }
    if (i == name_start || i >= line.size() || line[i] != '=') return false;
    std::string key = line.substr(name_start, i - name_start);
    ++i;  // '='
    if (i >= line.size() || line[i] != '"') return false;
    ++i;  // opening quote
    std::string value;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) {
        char next = line[i + 1];
        value.push_back(next == 'n' ? '\n' : next);
        i += 2;
      } else {
        value.push_back(line[i++]);
      }
    }
    if (i >= line.size()) return false;  // unterminated value
    ++i;                                 // closing quote
    (*labels)[key] = value;
    if (i < line.size() && line[i] == ',') ++i;
  }
  if (i >= line.size()) return false;  // missing '}'
  *pos = i + 1;
  return true;
}

}  // namespace

bool ParsePrometheusText(const std::string& text, std::vector<PrometheusSample>* out) {
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (end == text.size() && line.empty()) break;
    if (line.empty() || line[0] == '#') continue;

    PrometheusSample sample;
    size_t i = 0;
    while (i < line.size() && (std::isalnum(static_cast<unsigned char>(line[i])) ||
                               line[i] == '_' || line[i] == ':')) {
      ++i;
    }
    if (i == 0) return false;  // no metric name
    sample.name = line.substr(0, i);
    if (i < line.size() && line[i] == '{') {
      if (!ParseLabels(line, &i, &sample.labels)) return false;
    }
    if (i >= line.size() || line[i] != ' ') return false;
    while (i < line.size() && line[i] == ' ') ++i;
    char* parse_end = nullptr;
    std::string value_text = line.substr(i);
    sample.value = std::strtod(value_text.c_str(), &parse_end);
    if (parse_end == value_text.c_str()) return false;  // no number
    if (out != nullptr) out->push_back(std::move(sample));
  }
  return true;
}

namespace {

struct JsonCursor {
  const std::string& text;
  size_t pos = 0;

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }
  bool Eof() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }
};

bool SkipJsonValue(JsonCursor* c);

bool SkipJsonString(JsonCursor* c) {
  if (c->Eof() || c->Peek() != '"') return false;
  ++c->pos;
  while (!c->Eof() && c->Peek() != '"') {
    if (c->Peek() == '\\') {
      ++c->pos;
      if (c->Eof()) return false;
    }
    ++c->pos;
  }
  if (c->Eof()) return false;
  ++c->pos;  // closing quote
  return true;
}

bool SkipJsonNumber(JsonCursor* c) {
  size_t start = c->pos;
  if (!c->Eof() && (c->Peek() == '-' || c->Peek() == '+')) ++c->pos;
  bool digits = false;
  while (!c->Eof() && (std::isdigit(static_cast<unsigned char>(c->Peek())) ||
                       c->Peek() == '.' || c->Peek() == 'e' || c->Peek() == 'E' ||
                       c->Peek() == '-' || c->Peek() == '+')) {
    if (std::isdigit(static_cast<unsigned char>(c->Peek()))) digits = true;
    ++c->pos;
  }
  return digits && c->pos > start;
}

bool SkipJsonLiteral(JsonCursor* c, const char* word) {
  size_t n = std::char_traits<char>::length(word);
  if (c->text.compare(c->pos, n, word) != 0) return false;
  c->pos += n;
  return true;
}

bool SkipJsonValue(JsonCursor* c) {
  c->SkipWs();
  if (c->Eof()) return false;
  char ch = c->Peek();
  if (ch == '"') return SkipJsonString(c);
  if (ch == 't') return SkipJsonLiteral(c, "true");
  if (ch == 'f') return SkipJsonLiteral(c, "false");
  if (ch == 'n') return SkipJsonLiteral(c, "null");
  if (ch == '{') {
    ++c->pos;
    c->SkipWs();
    if (!c->Eof() && c->Peek() == '}') {
      ++c->pos;
      return true;
    }
    while (true) {
      c->SkipWs();
      if (!SkipJsonString(c)) return false;  // key
      c->SkipWs();
      if (c->Eof() || c->Peek() != ':') return false;
      ++c->pos;
      if (!SkipJsonValue(c)) return false;
      c->SkipWs();
      if (c->Eof()) return false;
      if (c->Peek() == ',') {
        ++c->pos;
        continue;
      }
      if (c->Peek() == '}') {
        ++c->pos;
        return true;
      }
      return false;
    }
  }
  if (ch == '[') {
    ++c->pos;
    c->SkipWs();
    if (!c->Eof() && c->Peek() == ']') {
      ++c->pos;
      return true;
    }
    while (true) {
      if (!SkipJsonValue(c)) return false;
      c->SkipWs();
      if (c->Eof()) return false;
      if (c->Peek() == ',') {
        ++c->pos;
        continue;
      }
      if (c->Peek() == ']') {
        ++c->pos;
        return true;
      }
      return false;
    }
  }
  return SkipJsonNumber(c);
}

}  // namespace

bool JsonIsWellFormed(const std::string& text) {
  JsonCursor c{text};
  if (!SkipJsonValue(&c)) return false;
  c.SkipWs();
  return c.Eof();
}

}  // namespace jet::obs
