#ifndef JETSIM_OBS_EXPORTERS_H_
#define JETSIM_OBS_EXPORTERS_H_

#include <map>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"

namespace jet::obs {

/// Renders metric snapshots in the Prometheus text exposition format.
/// Scalar metrics become `jet_<name>{tags} value` samples with `# TYPE`
/// headers; histograms are exported summary-style: one sample per standard
/// quantile (0.5 / 0.9 / 0.99 / 0.999 / 0.9999) plus `_sum`, `_count`,
/// `_min` and `_max`. Samples of the same metric name are grouped, as the
/// format requires.
std::string RenderPrometheusText(const std::vector<MetricSnapshot>& metrics);

/// Renders metric snapshots as a JSON document:
///   {"metrics":[{"name":...,"kind":...,"tags":{...},"value":...}, ...]}
/// Histogram entries carry count/sum/min/max/mean and a "quantiles" object
/// instead of "value". This is the payload of JetCluster::DiagnosticsDump()
/// and of the MetricsCollectorTasklet's IMDG publications; consumed by
/// tools/metrics_dump.py.
std::string RenderJson(const std::vector<MetricSnapshot>& metrics);

/// One parsed Prometheus sample (round-trip verification + tooling).
struct PrometheusSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0;
};

/// Parses Prometheus text exposition; returns false on any malformed line.
/// Comment (#) and blank lines are skipped.
bool ParsePrometheusText(const std::string& text, std::vector<PrometheusSample>* out);

/// True iff `text` is one syntactically well-formed JSON value (objects,
/// arrays, strings, numbers, true/false/null). A validator, not a DOM —
/// enough to make exporter round-trip tests meaningful without a JSON
/// dependency.
bool JsonIsWellFormed(const std::string& text);

}  // namespace jet::obs

#endif  // JETSIM_OBS_EXPORTERS_H_
