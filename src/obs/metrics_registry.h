#ifndef JETSIM_OBS_METRICS_REGISTRY_H_
#define JETSIM_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "obs/atomic_histogram.h"
#include "obs/metric_id.h"

namespace jet::obs {

namespace detail {
/// Shared storage of one scalar instrument. The owning writer thread
/// updates it with plain load+store relaxed (no RMW on the hot path);
/// pollers load it race-free from any thread. Handles share the cell via
/// shared_ptr so instruments stay valid even if the registry dies first.
struct ValueCell {
  std::atomic<int64_t> value{0};
};
}  // namespace detail

/// Monotonic counter handle. Single writer: only the owning thread calls
/// Add(); any thread may read Value(). Default-constructed handles carry a
/// private unregistered cell, so instrument owners work unchanged without
/// a registry.
class Counter {
 public:
  Counter() : cell_(std::make_shared<detail::ValueCell>()) {}

  void Add(int64_t delta = 1) {
    // jet-verify: allow(single-writer) — instrument cell owned by one writer
    // thread; pollers tolerate staleness (DESIGN.md §6)
    cell_->value.store(cell_->value.load(std::memory_order_relaxed) + delta,
                       std::memory_order_relaxed);
  }

  int64_t Value() const { return cell_->value.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::shared_ptr<detail::ValueCell> cell_;
};

/// Point-in-time level handle; same single-writer discipline as Counter
/// but the value may move in both directions.
class Gauge {
 public:
  Gauge() : cell_(std::make_shared<detail::ValueCell>()) {}

  void Set(int64_t value) {
    // jet-verify: allow(single-writer) — instrument cell owned by one writer
    // thread; pollers tolerate staleness
    cell_->value.store(value, std::memory_order_relaxed);
  }

  void Add(int64_t delta) {
    // jet-verify: allow(single-writer) — instrument cell owned by one writer
    // thread; pollers tolerate staleness
    cell_->value.store(cell_->value.load(std::memory_order_relaxed) + delta,
                       std::memory_order_relaxed);
  }

  int64_t Value() const { return cell_->value.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::shared_ptr<detail::ValueCell> cell_;
};

/// Distribution handle backed by an AtomicHistogram (single writer,
/// concurrent snapshots).
class HistogramHandle {
 public:
  /// Default bound: 10 s in nanoseconds — ample for call durations while
  /// keeping the bucket array small.
  static constexpr int64_t kDefaultMaxValue = 10LL * 1'000'000'000;

  explicit HistogramHandle(int64_t max_value = kDefaultMaxValue)
      : hist_(std::make_shared<AtomicHistogram>(max_value)) {}

  void Record(int64_t value) { hist_->Record(value); }

  Histogram Snapshot() const { return hist_->Snapshot(); }

 private:
  friend class MetricsRegistry;
  std::shared_ptr<AtomicHistogram> hist_;
};

/// One metric's state captured by MetricsRegistry::Snapshot().
struct MetricSnapshot {
  MetricId id;
  MetricKind kind = MetricKind::kGauge;
  int64_t value = 0;  ///< counter / gauge reading
  /// Set iff kind == kHistogram.
  std::shared_ptr<const Histogram> histogram;
};

/// Registry of instruments with the {job, vertex, tasklet, worker, member}
/// tag taxonomy.
///
/// Threading model: registration (GetCounter/GetGauge/GetHistogram/
/// RegisterCallback) takes a mutex — it happens at plan-build or Init time,
/// off the hot path. Recording into the returned handles is allocation-free
/// and lock-free under the single-writer rule. Snapshot() may run
/// concurrently with recording from any thread.
///
/// Requesting an instrument with a (name, tags) pair that already exists
/// returns a handle to the same cell, so re-registration is idempotent.
class MetricsRegistry {
 public:
  /// `default_tags` (typically {job, member}) are merged into every
  /// instrument's tags at registration.
  explicit MetricsRegistry(MetricTags default_tags = {});

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter GetCounter(const std::string& name, const MetricTags& tags = {});
  Gauge GetGauge(const std::string& name, const MetricTags& tags = {});
  HistogramHandle GetHistogram(const std::string& name, const MetricTags& tags = {},
                               int64_t max_value = HistogramHandle::kDefaultMaxValue);

  /// Registers a gauge whose value is computed at snapshot time. `fn` MUST
  /// be safe to call from any thread (e.g. SpscQueue::SizeApprox, a
  /// mutex-guarded size) and must not retain raw pointers that can dangle
  /// before the registry dies — capture shared_ptrs.
  void RegisterCallback(const std::string& name, const MetricTags& tags,
                        std::function<int64_t()> fn,
                        MetricKind kind = MetricKind::kGauge);

  /// Reads every instrument. Counter/gauge reads are relaxed loads of
  /// single-writer atomics, so per-metric values are monotonic across
  /// successive snapshots (for counters) and never torn. Insertion order
  /// is preserved.
  std::vector<MetricSnapshot> Snapshot() const;

  const MetricTags& default_tags() const { return default_tags_; }

  /// Number of registered instruments (tests).
  size_t size() const;

 private:
  struct Entry {
    MetricId id;
    MetricKind kind = MetricKind::kGauge;
    std::shared_ptr<detail::ValueCell> cell;        // counter / gauge
    std::shared_ptr<AtomicHistogram> hist;          // histogram
    std::function<int64_t()> callback;              // callback gauge
  };

  Entry* Find(const std::string& name, const MetricTags& tags)
      JET_REQUIRES(mutex_);

  MetricTags default_tags_;
  mutable jet::Mutex mutex_;
  // deque-like stability is not required (Snapshot copies), vector is fine.
  std::vector<Entry> entries_ JET_GUARDED_BY(mutex_);
};

}  // namespace jet::obs

#endif  // JETSIM_OBS_METRICS_REGISTRY_H_
