#include "obs/metrics_registry.h"

namespace jet::obs {

MetricsRegistry::MetricsRegistry(MetricTags default_tags)
    : default_tags_(std::move(default_tags)) {}

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name,
                                              const MetricTags& tags) {
  for (auto& e : entries_) {
    if (e.id.name == name && e.id.tags == tags) return &e;
  }
  return nullptr;
}

Counter MetricsRegistry::GetCounter(const std::string& name, const MetricTags& tags) {
  MetricTags merged = tags.MergedWith(default_tags_);
  jet::MutexLock lock(mutex_);
  Counter c;
  if (Entry* e = Find(name, merged); e != nullptr && e->cell != nullptr) {
    c.cell_ = e->cell;
    return c;
  }
  Entry e;
  e.id = MetricId{name, merged};
  e.kind = MetricKind::kCounter;
  e.cell = c.cell_;
  entries_.push_back(std::move(e));
  return c;
}

Gauge MetricsRegistry::GetGauge(const std::string& name, const MetricTags& tags) {
  MetricTags merged = tags.MergedWith(default_tags_);
  jet::MutexLock lock(mutex_);
  Gauge g;
  if (Entry* e = Find(name, merged); e != nullptr && e->cell != nullptr) {
    g.cell_ = e->cell;
    return g;
  }
  Entry e;
  e.id = MetricId{name, merged};
  e.kind = MetricKind::kGauge;
  e.cell = g.cell_;
  entries_.push_back(std::move(e));
  return g;
}

HistogramHandle MetricsRegistry::GetHistogram(const std::string& name,
                                              const MetricTags& tags,
                                              int64_t max_value) {
  MetricTags merged = tags.MergedWith(default_tags_);
  jet::MutexLock lock(mutex_);
  if (Entry* e = Find(name, merged); e != nullptr && e->hist != nullptr) {
    HistogramHandle h;
    h.hist_ = e->hist;
    return h;
  }
  HistogramHandle h(max_value);
  Entry e;
  e.id = MetricId{name, merged};
  e.kind = MetricKind::kHistogram;
  e.hist = h.hist_;
  entries_.push_back(std::move(e));
  return h;
}

void MetricsRegistry::RegisterCallback(const std::string& name, const MetricTags& tags,
                                       std::function<int64_t()> fn, MetricKind kind) {
  MetricTags merged = tags.MergedWith(default_tags_);
  jet::MutexLock lock(mutex_);
  if (Find(name, merged) != nullptr) return;  // idempotent
  Entry e;
  e.id = MetricId{name, merged};
  e.kind = kind;
  e.callback = std::move(fn);
  entries_.push_back(std::move(e));
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  jet::MutexLock lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSnapshot s;
    s.id = e.id;
    s.kind = e.kind;
    if (e.hist != nullptr) {
      s.histogram = std::make_shared<const Histogram>(e.hist->Snapshot());
    } else if (e.callback) {
      s.value = e.callback();
    } else if (e.cell != nullptr) {
      s.value = e.cell->value.load(std::memory_order_relaxed);
    }
    out.push_back(std::move(s));
  }
  return out;
}

size_t MetricsRegistry::size() const {
  jet::MutexLock lock(mutex_);
  return entries_.size();
}

}  // namespace jet::obs
