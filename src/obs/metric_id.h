#ifndef JETSIM_OBS_METRIC_ID_H_
#define JETSIM_OBS_METRIC_ID_H_

#include <cstdint>
#include <string>

namespace jet::obs {

/// What a metric's value means to a consumer.
enum class MetricKind : uint8_t {
  kCounter,    ///< monotonically non-decreasing
  kGauge,      ///< point-in-time level, may go down
  kHistogram,  ///< value distribution (call durations, latencies)
};

/// The stable tag taxonomy of every instrument: which job / DAG vertex /
/// tasklet instance / worker thread / cluster member it describes. -1 (or
/// an empty tasklet name) means "not applicable" — e.g. cluster-wide
/// gauges carry only `member`, job-level gauges only `job`.
///
/// This mirrors the label set of the paper's Management Center: drill-down
/// goes job -> vertex -> parallel instance (tasklet) -> hosting thread.
struct MetricTags {
  int64_t job = -1;
  int64_t vertex = -1;
  std::string tasklet;  ///< tasklet instance name, e.g. "tumble#3"
  int32_t worker = -1;  ///< worker-thread index within the member
  int32_t member = -1;  ///< physical cluster member id

  bool operator==(const MetricTags& o) const {
    return job == o.job && vertex == o.vertex && tasklet == o.tasklet &&
           worker == o.worker && member == o.member;
  }

  /// Returns these tags with every unset field filled from `defaults`
  /// (registries carry {job, member} defaults so call sites only supply
  /// what they know locally).
  MetricTags MergedWith(const MetricTags& defaults) const {
    MetricTags t = *this;
    if (t.job < 0) t.job = defaults.job;
    if (t.vertex < 0) t.vertex = defaults.vertex;
    if (t.tasklet.empty()) t.tasklet = defaults.tasklet;
    if (t.worker < 0) t.worker = defaults.worker;
    if (t.member < 0) t.member = defaults.member;
    return t;
  }
};

/// A metric's identity: dotted name ("tasklet.call_nanos") plus tags.
struct MetricId {
  std::string name;
  MetricTags tags;

  bool operator==(const MetricId& o) const { return name == o.name && tags == o.tags; }
};

}  // namespace jet::obs

#endif  // JETSIM_OBS_METRIC_ID_H_
