#ifndef JETSIM_OBS_EVENT_LOOP_PROFILER_H_
#define JETSIM_OBS_EVENT_LOOP_PROFILER_H_

#include <deque>
#include <string>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "obs/metrics_registry.h"

namespace jet::obs {

/// Times every tasklet Call() against the cooperative time-slice budget
/// (§3.2: a tasklet call must do a bounded amount of work, well under a
/// millisecond — one misbehaving tasklet delays every other tasklet on its
/// worker and shows up as a 99.99th-percentile latency knee).
///
/// The ExecutionService registers each tasklet once before the worker
/// threads start and wraps Call() with two clock reads; per-call recording
/// goes into single-writer instruments ("tasklet.call_nanos" histogram and
/// "tasklet.overbudget_calls" counter, tagged {tasklet, worker}).
class EventLoopProfiler {
 public:
  struct Options {
    /// Budget one cooperative Call() should stay under.
    Nanos call_budget = kNanosPerMilli;
    /// Upper bound of the call-duration histograms.
    Nanos max_call_nanos = 10 * kNanosPerSecond;
  };

  /// Per-tasklet recording slot; written only by the hosting worker. When a
  /// tasklet migrates to another worker the scheduler registers a *new*
  /// profile under the new {tasklet, worker} tag pair and stops writing the
  /// old one, so each slot keeps the single-writer discipline and per-worker
  /// histograms stay attributable.
  class TaskletProfile {
   public:
    void RecordCall(Nanos duration) {
      if (duration < 0) duration = 0;
      call_nanos_.Record(duration);
      if (duration > budget_) overbudget_.Add(1);
    }

    /// Start/end variant: additionally records the scheduling delay — the
    /// gap since this tasklet's previous call ended on this worker. On an
    /// overloaded worker the delay is dominated by the siblings' time
    /// slices, which is exactly the §3.2 tail-latency mechanism the
    /// rebalancer exists to fix.
    void RecordCall(Nanos start, Nanos end) {
      RecordCall(end - start);
      if (last_end_ > 0 && start > last_end_) sched_delay_nanos_.Record(start - last_end_);
      last_end_ = end;
    }

    Histogram CallHistogram() const { return call_nanos_.Snapshot(); }
    Histogram SchedDelayHistogram() const { return sched_delay_nanos_.Snapshot(); }
    int64_t overbudget_calls() const { return overbudget_.Value(); }

   private:
    friend class EventLoopProfiler;
    TaskletProfile(HistogramHandle call_nanos, HistogramHandle sched_delay,
                   Counter overbudget, Nanos budget)
        : call_nanos_(std::move(call_nanos)),
          sched_delay_nanos_(std::move(sched_delay)),
          overbudget_(std::move(overbudget)),
          budget_(budget) {}

    HistogramHandle call_nanos_;
    HistogramHandle sched_delay_nanos_;
    Counter overbudget_;
    Nanos budget_;
    Nanos last_end_ = 0;
  };

  /// Per-worker recording slot ("worker.round_nanos": duration of one full
  /// round-robin pass). Written only by that worker's thread.
  class WorkerProfile {
   public:
    void RecordRound(Nanos duration) {
      if (duration < 0) duration = 0;
      round_nanos_.Record(duration);
    }

    Histogram RoundHistogram() const { return round_nanos_.Snapshot(); }

   private:
    friend class EventLoopProfiler;
    explicit WorkerProfile(HistogramHandle round_nanos)
        : round_nanos_(std::move(round_nanos)) {}

    HistogramHandle round_nanos_;
  };

  /// `registry` must outlive the profiler. `clock` defaults to wall time.
  explicit EventLoopProfiler(MetricsRegistry* registry, const Clock* clock = nullptr)
      : EventLoopProfiler(registry, clock, Options()) {}

  EventLoopProfiler(MetricsRegistry* registry, const Clock* clock, Options options)
      : registry_(registry),
        clock_(clock != nullptr ? clock : &WallClock::Global()),
        options_(options) {}

  EventLoopProfiler(const EventLoopProfiler&) = delete;
  EventLoopProfiler& operator=(const EventLoopProfiler&) = delete;

  /// Registers `tasklet_name` hosted on worker-thread `worker`. The
  /// returned slot stays valid for the profiler's lifetime (deque-backed).
  /// Safe from any thread; the *caller* must guarantee that writes into the
  /// returned slot come from one thread at a time (the scheduler's
  /// round-boundary handoff does).
  TaskletProfile* Register(const std::string& tasklet_name, int32_t worker) {
    MetricTags tags;
    tags.tasklet = tasklet_name;
    tags.worker = worker;
    HistogramHandle h = registry_->GetHistogram("tasklet.call_nanos", tags,
                                                options_.max_call_nanos);
    HistogramHandle delay = registry_->GetHistogram("tasklet.sched_delay_nanos", tags,
                                                    options_.max_call_nanos);
    Counter over = registry_->GetCounter("tasklet.overbudget_calls", tags);
    jet::MutexLock lock(mutex_);
    profiles_.push_back(TaskletProfile(std::move(h), std::move(delay), std::move(over),
                                       options_.call_budget));
    return &profiles_.back();
  }

  /// Registers cooperative worker `worker`'s round-duration slot.
  WorkerProfile* RegisterWorker(int32_t worker) {
    MetricTags tags;
    tags.worker = worker;
    HistogramHandle h =
        registry_->GetHistogram("worker.round_nanos", tags, options_.max_call_nanos);
    jet::MutexLock lock(mutex_);
    worker_profiles_.push_back(WorkerProfile(std::move(h)));
    return &worker_profiles_.back();
  }

  const Clock& clock() const { return *clock_; }
  Nanos call_budget() const { return options_.call_budget; }

  /// Registry the profiles live in; the scheduler hangs its own
  /// "scheduler.*" instruments off the same registry.
  MetricsRegistry* registry() const { return registry_; }

 private:
  MetricsRegistry* registry_;
  const Clock* clock_;
  Options options_;
  jet::Mutex mutex_;
  std::deque<TaskletProfile> profiles_ JET_GUARDED_BY(mutex_);
  std::deque<WorkerProfile> worker_profiles_ JET_GUARDED_BY(mutex_);
};

}  // namespace jet::obs

#endif  // JETSIM_OBS_EVENT_LOOP_PROFILER_H_
