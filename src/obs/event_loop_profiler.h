#ifndef JETSIM_OBS_EVENT_LOOP_PROFILER_H_
#define JETSIM_OBS_EVENT_LOOP_PROFILER_H_

#include <deque>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "obs/metrics_registry.h"

namespace jet::obs {

/// Times every tasklet Call() against the cooperative time-slice budget
/// (§3.2: a tasklet call must do a bounded amount of work, well under a
/// millisecond — one misbehaving tasklet delays every other tasklet on its
/// worker and shows up as a 99.99th-percentile latency knee).
///
/// The ExecutionService registers each tasklet once before the worker
/// threads start and wraps Call() with two clock reads; per-call recording
/// goes into single-writer instruments ("tasklet.call_nanos" histogram and
/// "tasklet.overbudget_calls" counter, tagged {tasklet, worker}).
class EventLoopProfiler {
 public:
  struct Options {
    /// Budget one cooperative Call() should stay under.
    Nanos call_budget = kNanosPerMilli;
    /// Upper bound of the call-duration histograms.
    Nanos max_call_nanos = 10 * kNanosPerSecond;
  };

  /// Per-tasklet recording slot; written only by the hosting worker.
  class TaskletProfile {
   public:
    void RecordCall(Nanos duration) {
      if (duration < 0) duration = 0;
      call_nanos_.Record(duration);
      if (duration > budget_) overbudget_.Add(1);
    }

    Histogram CallHistogram() const { return call_nanos_.Snapshot(); }
    int64_t overbudget_calls() const { return overbudget_.Value(); }

   private:
    friend class EventLoopProfiler;
    TaskletProfile(HistogramHandle call_nanos, Counter overbudget, Nanos budget)
        : call_nanos_(std::move(call_nanos)),
          overbudget_(std::move(overbudget)),
          budget_(budget) {}

    HistogramHandle call_nanos_;
    Counter overbudget_;
    Nanos budget_;
  };

  /// `registry` must outlive the profiler. `clock` defaults to wall time.
  explicit EventLoopProfiler(MetricsRegistry* registry, const Clock* clock = nullptr)
      : EventLoopProfiler(registry, clock, Options()) {}

  EventLoopProfiler(MetricsRegistry* registry, const Clock* clock, Options options)
      : registry_(registry),
        clock_(clock != nullptr ? clock : &WallClock::Global()),
        options_(options) {}

  EventLoopProfiler(const EventLoopProfiler&) = delete;
  EventLoopProfiler& operator=(const EventLoopProfiler&) = delete;

  /// Registers `tasklet_name` hosted on worker-thread `worker`. The
  /// returned slot stays valid for the profiler's lifetime (deque-backed).
  TaskletProfile* Register(const std::string& tasklet_name, int32_t worker) {
    MetricTags tags;
    tags.tasklet = tasklet_name;
    tags.worker = worker;
    HistogramHandle h = registry_->GetHistogram("tasklet.call_nanos", tags,
                                                options_.max_call_nanos);
    Counter over = registry_->GetCounter("tasklet.overbudget_calls", tags);
    std::scoped_lock lock(mutex_);
    profiles_.push_back(
        TaskletProfile(std::move(h), std::move(over), options_.call_budget));
    return &profiles_.back();
  }

  const Clock& clock() const { return *clock_; }
  Nanos call_budget() const { return options_.call_budget; }

 private:
  MetricsRegistry* registry_;
  const Clock* clock_;
  Options options_;
  std::mutex mutex_;
  std::deque<TaskletProfile> profiles_;
};

}  // namespace jet::obs

#endif  // JETSIM_OBS_EVENT_LOOP_PROFILER_H_
