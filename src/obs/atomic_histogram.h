#ifndef JETSIM_OBS_ATOMIC_HISTOGRAM_H_
#define JETSIM_OBS_ATOMIC_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/histogram.h"

namespace jet::obs {

/// Single-writer histogram that readers may snapshot concurrently.
///
/// Uses jet::Histogram's bucket layout, but every bucket is an atomic that
/// the owning worker thread updates with plain load+store (relaxed, no RMW
/// — the same discipline as the tasklet counters) while pollers read it
/// race-free from any thread. `Snapshot()` materializes a regular
/// jet::Histogram whose count is derived from the summed bucket loads, so
/// a snapshot is always internally consistent (count == sum of buckets)
/// even when it races with recording; successive snapshots see
/// non-decreasing counts.
class AtomicHistogram {
 public:
  explicit AtomicHistogram(int64_t max_value = int64_t{1} << 42)
      : max_value_(max_value < 1 ? 1 : max_value),
        buckets_(static_cast<size_t>(Histogram::BucketCountFor(max_value_))) {}

  /// Records one observation. Must only be called by the owning thread.
  void Record(int64_t value) {
    // jet-verify: allow(single-writer) — bucket/min/max/sum cells have one
    // owning writer thread; Snapshot() readers tolerate staleness
    if (value < 0) value = 0;
    if (value > max_value_) value = max_value_;
    auto& bucket = buckets_[static_cast<size_t>(Histogram::BucketIndexOf(value, max_value_))];
    bucket.store(bucket.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    sum_.store(sum_.load(std::memory_order_relaxed) + static_cast<double>(value),
               std::memory_order_relaxed);
    if (!any_.load(std::memory_order_relaxed)) {
      min_.store(value, std::memory_order_relaxed);
      max_.store(value, std::memory_order_relaxed);
      any_.store(true, std::memory_order_release);
    } else {
      if (value < min_.load(std::memory_order_relaxed)) {
        min_.store(value, std::memory_order_relaxed);
      }
      if (value > max_.load(std::memory_order_relaxed)) {
        max_.store(value, std::memory_order_relaxed);
      }
    }
  }

  /// Materializes a point-in-time jet::Histogram. Safe from any thread.
  Histogram Snapshot() const {
    Histogram h(max_value_);
    std::vector<int64_t> counts(buckets_.size());
    for (size_t i = 0; i < buckets_.size(); ++i) {
      counts[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    int64_t min = 0;
    int64_t max = max_value_;
    if (any_.load(std::memory_order_acquire)) {
      min = min_.load(std::memory_order_relaxed);
      max = max_.load(std::memory_order_relaxed);
    }
    h.MergeBucketCounts(counts.data(), counts.size(), min, max,
                        sum_.load(std::memory_order_relaxed));
    return h;
  }

  int64_t max_value() const { return max_value_; }

 private:
  int64_t max_value_;
  // std::vector value-initializes the atomics to zero.
  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<double> sum_{0.0};
  std::atomic<int64_t> min_{0};
  std::atomic<int64_t> max_{0};
  std::atomic<bool> any_{false};
};

}  // namespace jet::obs

#endif  // JETSIM_OBS_ATOMIC_HISTOGRAM_H_
