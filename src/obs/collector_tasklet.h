#ifndef JETSIM_OBS_COLLECTOR_TASKLET_H_
#define JETSIM_OBS_COLLECTOR_TASKLET_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "common/clock.h"
#include "core/tasklet.h"
#include "imdg/grid.h"
#include "obs/exporters.h"
#include "obs/metrics_registry.h"

namespace jet::obs {

/// Periodically publishes a JSON snapshot of a member's metrics registry
/// into the IMDG (the paper's Management Center persists job metrics in
/// IMaps so they survive the member that produced them and can be queried
/// cluster-wide). Scheduled as one more cooperative tasklet on the
/// member's execution service; runs until the watched tasklets finish,
/// then publishes one final snapshot and completes.
///
/// Header-only on purpose: jet_obs links only against jet_common, and this
/// adapter is the single place obs meets core/imdg types.
class MetricsCollectorTasklet final : public core::Tasklet {
 public:
  struct Options {
    /// IMDG map holding the snapshots.
    std::string map_name = "__jet.metrics";
    /// Entry key, e.g. "job-7/member-0".
    std::string key;
    Nanos publish_interval = 500 * kNanosPerMilli;
  };

  /// `registry`, `grid` and `clock` must outlive the tasklet.
  /// `upstream_done` reports whether the member's real tasklets have all
  /// finished (thread-safe); once it returns true the collector publishes
  /// a final snapshot and completes, so it never keeps the execution
  /// service alive on its own.
  MetricsCollectorTasklet(const MetricsRegistry* registry, imdg::DataGrid* grid,
                          const Clock* clock, Options options,
                          std::function<bool()> upstream_done)
      : registry_(registry),
        grid_(grid),
        clock_(clock),
        options_(std::move(options)),
        upstream_done_(std::move(upstream_done)),
        name_("metrics-collector/" + options_.key) {}

  core::TaskletProgress Call() override {
    const bool done = !upstream_done_ || upstream_done_();
    const Nanos now = clock_->Now();
    if (!done && published_once_ && now < next_publish_) return {false, false};
    Publish();
    next_publish_ = now + options_.publish_interval;
    return {true, done};
  }

  const std::string& name() const override { return name_; }

  int64_t publishes() const { return publishes_.Value(); }

 private:
  void Publish() {
    // jet-verify: allow(lock-in-call) — the registry snapshot and the grid
    // put take short internal locks; at the publish cadence (2 Hz) this
    // stays well within the cooperative budget.
    std::string json = RenderJson(registry_->Snapshot());
    Bytes key(options_.key.begin(), options_.key.end());
    Bytes value(json.begin(), json.end());
    (void)grid_->Put(options_.map_name, key, value);
    published_once_ = true;
    publishes_.Add(1);
  }

  const MetricsRegistry* registry_;
  imdg::DataGrid* grid_;
  const Clock* clock_;
  Options options_;
  std::function<bool()> upstream_done_;
  std::string name_;
  Nanos next_publish_ = 0;
  bool published_once_ = false;
  Counter publishes_;  // standalone cell; readable from any thread
};

}  // namespace jet::obs

#endif  // JETSIM_OBS_COLLECTOR_TASKLET_H_
