#ifndef JETSIM_CORE_PROCESSORS_EXTERNAL_H_
#define JETSIM_CORE_PROCESSORS_EXTERNAL_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "core/processor.h"
#include "core/watermark.h"

namespace jet::core {

// ===========================================================================
// §4.5 "Assumptions and External Systems": sources must be replayable or
// acknowledging; sinks must be transactional or idempotent for end-to-end
// exactly-once delivery. This header provides in-memory models of such
// external systems and the processors integrating with them.
// ===========================================================================

/// An external queueing system that is NOT replayable but supports
/// acknowledgements (a JMS-like broker): records have stable ids; records
/// that were delivered but never acknowledged are re-delivered after the
/// consumer reconnects. Thread-safe.
template <typename T>
class AckingBroker {
 public:
  struct Record {
    int64_t id = 0;
    T value{};
    Nanos timestamp = 0;
  };

  /// Producer side: enqueues a record; ids must be unique.
  void Publish(int64_t id, T value, Nanos timestamp) JET_COOPERATIVE {
    jet::MutexLock lock(mutex_);
    records_[id] = Record{id, std::move(value), timestamp};
    pending_delivery_.push_back(id);
  }

  /// Consumer side: next undelivered record, if any. Called from the
  /// source processor's cooperative hot path; the critical section is a
  /// bounded map lookup (audited).
  std::optional<Record> Poll() JET_COOPERATIVE {
    jet::MutexLock lock(mutex_);
    while (!pending_delivery_.empty()) {
      int64_t id = pending_delivery_.front();
      pending_delivery_.pop_front();
      auto it = records_.find(id);
      if (it == records_.end()) continue;  // already acked
      return it->second;
    }
    return std::nullopt;
  }

  /// Consumer side: deletes acknowledged records permanently ("accepts
  /// acknowledgements that the data it stores can be safely deleted").
  void Ack(const std::vector<int64_t>& ids) JET_COOPERATIVE {
    jet::MutexLock lock(mutex_);
    for (int64_t id : ids) records_.erase(id);
  }

  /// Simulates consumer reconnect after a failure: every unacknowledged
  /// record becomes deliverable again ("the remote system re-sends
  /// unacknowledged messages after a recovery"). Reached from the source's
  /// snapshot-restore path on a cooperative worker; bounded critical
  /// section (audited).
  void RedeliverUnacked() JET_COOPERATIVE {
    jet::MutexLock lock(mutex_);
    pending_delivery_.clear();
    for (const auto& [id, record] : records_) pending_delivery_.push_back(id);
  }

  /// Unacknowledged records still held by the broker.
  size_t UnackedCount() const {
    jet::MutexLock lock(mutex_);
    return records_.size();
  }

 private:
  mutable jet::Mutex mutex_;
  // ordered => deterministic redelivery
  std::map<int64_t, Record> records_ JET_GUARDED_BY(mutex_);
  std::deque<int64_t> pending_delivery_ JET_GUARDED_BY(mutex_);
};

/// Source over an AckingBroker providing the exactly-once *delivery*
/// guarantee of §4.5: items are acknowledged "only after they are processed
/// by the entire pipeline and a successful snapshot has been taken", and
/// record ids seen before the snapshot are deduplicated when the broker
/// re-sends them after recovery.
///
/// Use with total parallelism 1 (brokers of this kind have a single
/// consumer session); Init fails otherwise.
template <typename T>
class AcknowledgingSourceP final : public Processor {
 public:
  /// `key_of` supplies the routing hash for each record.
  AcknowledgingSourceP(std::shared_ptr<AckingBroker<T>> broker,
                       std::function<uint64_t(const T&)> key_of)
      : broker_(std::move(broker)), key_of_(std::move(key_of)) {}

  Status Init(ProcessorContext* context) override {
    JET_RETURN_IF_ERROR(Processor::Init(context));
    if (context->meta.total_parallelism != 1) {
      return InvalidArgumentError(
          "AcknowledgingSourceP requires total parallelism 1 (single broker "
          "consumer session)");
    }
    return Status::OK();
  }

  bool Complete() override {
    if (ctx()->IsCancelled()) return true;
    // Release acknowledgements for epochs whose snapshot has committed:
    // "acknowledging items only after ... a successful snapshot has been
    // taken".
    int64_t committed = ctx()->CommittedSnapshot();
    while (!epochs_.empty() && epochs_.begin()->first <= committed) {
      broker_->Ack(epochs_.begin()->second);
      for (int64_t id : epochs_.begin()->second) seen_.erase(id);
      epochs_.erase(epochs_.begin());
    }
    // Retry a record the outbox rejected earlier.
    if (stashed_.has_value()) {
      if (!EmitRecord(*stashed_)) return false;
      stashed_.reset();
    }
    int budget = 64;
    while (budget-- > 0) {
      auto record = broker_->Poll();
      if (!record.has_value()) break;
      if (seen_.count(record->id) != 0) continue;  // §4.5 dedup by record id
      if (!EmitRecord(*record)) {
        stashed_ = std::move(record);
        return false;  // backpressure: retry this record next call
      }
    }
    return false;  // streaming source: runs until cancelled
  }

  bool SaveToSnapshot() override {
    // The ids delivered since the previous barrier become this snapshot's
    // epoch; all unacked seen-ids (with their epoch) persist for dedup.
    if (!epoch_staged_) {
      auto& epoch = epochs_[ctx()->current_snapshot_id];
      epoch.insert(epoch.end(), current_epoch_.begin(), current_epoch_.end());
      current_epoch_.clear();
      epoch_staged_ = true;
      save_items_.clear();
      for (const auto& [epoch_id, ids] : epochs_) {
        for (int64_t id : ids) save_items_.push_back({epoch_id, id});
      }
    }
    while (save_cursor_ < save_items_.size()) {
      auto [epoch_id, id] = save_items_[save_cursor_];
      StateEntry entry;
      entry.key_hash = 0;  // the single instance owns everything
      BytesWriter kw;
      kw.WriteVarI64(id);
      entry.key = kw.Take();
      BytesWriter vw;
      vw.WriteVarI64(epoch_id);
      entry.value = vw.Take();
      if (!ctx()->outbox->OfferToSnapshot(std::move(entry))) return false;
      ++save_cursor_;
    }
    save_cursor_ = 0;
    epoch_staged_ = false;
    return true;
  }

  Status RestoreFromSnapshot(const StateEntry& entry) override {
    BytesReader kr(entry.key);
    int64_t id = 0;
    JET_RETURN_IF_ERROR(kr.ReadVarI64(&id));
    BytesReader vr(entry.value);
    int64_t epoch = 0;
    JET_RETURN_IF_ERROR(vr.ReadVarI64(&epoch));
    seen_.insert(id);
    epochs_[epoch].push_back(id);
    return Status::OK();
  }

  bool FinishSnapshotRestore() override {
    // After reconnecting, the broker re-sends everything unacked; the
    // restored seen-set filters the duplicates.
    broker_->RedeliverUnacked();
    return true;
  }

 private:
  bool EmitRecord(const typename AckingBroker<T>::Record& record) {
    Item item = Item::Data<T>(record.value, record.timestamp, key_of_(record.value));
    if (!ctx()->outbox->OfferToAll(item)) return false;
    seen_.insert(record.id);
    current_epoch_.push_back(record.id);
    if (record.timestamp > last_wm_) {
      if (ctx()->outbox->OfferToAll(Item::WatermarkAt(record.timestamp))) {
        last_wm_ = record.timestamp;
      }
    }
    return true;
  }

  std::shared_ptr<AckingBroker<T>> broker_;
  std::function<uint64_t(const T&)> key_of_;
  std::set<int64_t> seen_;
  std::map<int64_t, std::vector<int64_t>> epochs_;  // snapshot id -> ids
  std::vector<int64_t> current_epoch_;
  std::vector<std::pair<int64_t, int64_t>> save_items_;
  bool epoch_staged_ = false;
  size_t save_cursor_ = 0;
  std::optional<typename AckingBroker<T>::Record> stashed_;
  Nanos last_wm_ = kMinWatermark;
};

/// An external system supporting transactions (the paper's "transactional
/// sink", §4.5): output is staged under a transaction id, made durable by
/// Prepare, and becomes visible only at Commit. Commit is idempotent per
/// transaction id — re-committing after recovery has no additional effect.
/// Thread-safe.
template <typename T>
class TransactionalCollector {
 public:
  /// Stages the items of transaction `txn` durably (phase 1). Re-preparing
  /// a committed transaction is a no-op.
  void Prepare(int64_t txn, std::vector<T> items) JET_COOPERATIVE {
    jet::MutexLock lock(mutex_);
    if (committed_txns_.count(txn) != 0) return;
    prepared_[txn] = std::move(items);
  }

  /// Publishes transaction `txn` (phase 2). Idempotent. Reached from the
  /// sink's cooperative path at barrier commit; bounded critical section.
  void Commit(int64_t txn) JET_COOPERATIVE {
    jet::MutexLock lock(mutex_);
    auto it = prepared_.find(txn);
    if (it == prepared_.end()) return;  // unknown or already committed
    if (committed_txns_.insert(txn).second) {
      for (auto& v : it->second) visible_.push_back(std::move(v));
    }
    prepared_.erase(it);
  }

  /// Drops a prepared-but-uncommitted transaction (abort).
  void Abort(int64_t txn) JET_COOPERATIVE {
    jet::MutexLock lock(mutex_);
    prepared_.erase(txn);
  }

  /// True if `txn` is prepared and not yet committed.
  bool IsPrepared(int64_t txn) const {
    jet::MutexLock lock(mutex_);
    return prepared_.count(txn) != 0;
  }

  /// The output visible to the outside world.
  std::vector<T> Visible() const {
    jet::MutexLock lock(mutex_);
    return visible_;
  }

  size_t VisibleCount() const {
    jet::MutexLock lock(mutex_);
    return visible_.size();
  }

  size_t PreparedCount() const {
    jet::MutexLock lock(mutex_);
    return prepared_.size();
  }

 private:
  mutable jet::Mutex mutex_;
  std::unordered_map<int64_t, std::vector<T>> prepared_ JET_GUARDED_BY(mutex_);
  std::unordered_set<int64_t> committed_txns_ JET_GUARDED_BY(mutex_);
  std::vector<T> visible_ JET_GUARDED_BY(mutex_);
};

/// Sink with the two-phase-commit protocol of §4.5: "A transactional sink
/// withholds output and only makes it available to the outside world when a
/// checkpoint is complete. The commit-prepare phase executes when a
/// checkpoint begins, with the second phase commit happening after the
/// checkpoint is complete."
///
/// Items received between barriers buffer in memory; at the barrier the
/// buffer is Prepared under the snapshot's transaction id (the external
/// system is the durable party of the 2PC) and a marker goes into the
/// snapshot state. Once the coordinator commits the snapshot, the
/// transaction commits; after a restore the marker re-issues the (idempotent)
/// commit. Combined with a replayable or acknowledging source this yields
/// end-to-end exactly-once delivery.
template <typename T>
class TransactionalSinkP final : public Processor {
 public:
  explicit TransactionalSinkP(std::shared_ptr<TransactionalCollector<T>> collector)
      : collector_(std::move(collector)) {}

  Status Init(ProcessorContext* context) override {
    JET_RETURN_IF_ERROR(Processor::Init(context));
    instance_ = context->meta.global_index;
    return Status::OK();
  }

  void Process(int ordinal, Inbox* inbox) override {
    (void)ordinal;
    MaybeCommit();
    while (!inbox->Empty()) {
      buffer_.push_back(inbox->Peek()->payload.template As<T>());
      inbox->RemoveFront();
    }
  }

  bool TryProcess() override {
    MaybeCommit();
    return true;
  }

  bool Complete() override {
    MaybeCommit();
    // End of stream with no further snapshots: publish the tail under a
    // final synthetic transaction so finite jobs don't lose their last
    // items. (Streaming jobs commit through snapshots.)
    if (!buffer_.empty()) {
      collector_->Prepare(kFinalTxnBase + instance_, std::move(buffer_));
      buffer_.clear();
      // jet-verify: allow(lock-in-call) — text-backend name collision: the
      // callee is TransactionalCollector::Commit (audited JET_COOPERATIVE),
      // not the locking SnapshotStore::Commit
      collector_->Commit(kFinalTxnBase + instance_);
    }
    return true;
  }

  bool SaveToSnapshot() override {
    int64_t snapshot_id = ctx()->current_snapshot_id;
    // Phase 1: prepare this barrier's transaction at the external system.
    if (!staged_) {
      collector_->Prepare(TxnId(snapshot_id), std::move(buffer_));
      buffer_.clear();
      staged_ = true;
    }
    // Durable marker: "transaction TxnId(snapshot_id) exists and belongs to
    // this snapshot" — restoring this snapshot re-commits it.
    StateEntry entry;
    entry.key_hash = static_cast<uint64_t>(instance_);
    BytesWriter kw;
    kw.WriteVarI64(snapshot_id);
    kw.WriteVarU64(static_cast<uint64_t>(instance_));
    entry.key = kw.Take();
    BytesWriter vw;
    vw.WriteVarI64(TxnId(snapshot_id));
    entry.value = vw.Take();
    if (!ctx()->outbox->OfferToSnapshot(std::move(entry))) return false;
    staged_ = false;
    pending_commits_.push_back(snapshot_id);
    return true;
  }

  Status RestoreFromSnapshot(const StateEntry& entry) override {
    BytesReader vr(entry.value);
    int64_t txn = 0;
    JET_RETURN_IF_ERROR(vr.ReadVarI64(&txn));
    restored_txns_.insert(txn);
    return Status::OK();
  }

  bool FinishSnapshotRestore() override {
    // The restored snapshot is committed by definition, so its prepared
    // transaction must become visible; Commit is idempotent, so this is
    // safe whether or not the pre-crash execution got to commit it.
    // jet-verify: allow(lock-in-call) — text-backend name collision: the
    // callee is TransactionalCollector::Commit (audited JET_COOPERATIVE),
    // not the locking SnapshotStore::Commit
    for (int64_t txn : restored_txns_) collector_->Commit(txn);
    restored_txns_.clear();
    return true;
  }

 private:
  static constexpr int64_t kFinalTxnBase = int64_t{1} << 60;

  // Transactions are per sink instance: pack (snapshot, instance).
  int64_t TxnId(int64_t snapshot) const { return snapshot * 4096 + instance_; }

  void MaybeCommit() {
    int64_t committed = ctx()->CommittedSnapshot();
    while (!pending_commits_.empty() && pending_commits_.front() <= committed) {
      // jet-verify: allow(lock-in-call) — text-backend name collision: the
      // callee is TransactionalCollector::Commit (audited JET_COOPERATIVE),
      // not the locking SnapshotStore::Commit
      collector_->Commit(TxnId(pending_commits_.front()));
      pending_commits_.pop_front();
    }
  }

  std::shared_ptr<TransactionalCollector<T>> collector_;
  std::vector<T> buffer_;
  bool staged_ = false;
  std::deque<int64_t> pending_commits_;
  std::set<int64_t> restored_txns_;
  int32_t instance_ = 0;
};

/// Keyed external store with idempotent writes (§4.5: "Idempotent writes
/// have the exact same effect irrespective of the number of times they are
/// applied"). Thread-safe.
template <typename V>
class IdempotentStore {
 public:
  /// Upsert: applying the same (key, value) twice equals applying it once.
  /// Called from the sink's cooperative hot path; bounded critical section.
  void Put(uint64_t key, const V& value) JET_COOPERATIVE {
    jet::MutexLock lock(mutex_);
    data_[key] = value;
    ++writes_;
  }

  std::optional<V> Get(uint64_t key) const {
    jet::MutexLock lock(mutex_);
    auto it = data_.find(key);
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }

  size_t Size() const {
    jet::MutexLock lock(mutex_);
    return data_.size();
  }

  /// Total writes applied (>= Size() when re-processing occurred).
  int64_t WriteCount() const {
    jet::MutexLock lock(mutex_);
    return writes_;
  }

  std::unordered_map<uint64_t, V> SnapshotAll() const {
    jet::MutexLock lock(mutex_);
    return data_;
  }

 private:
  mutable jet::Mutex mutex_;
  std::unordered_map<uint64_t, V> data_ JET_GUARDED_BY(mutex_);
  int64_t writes_ JET_GUARDED_BY(mutex_) = 0;
};

/// Sink performing idempotent keyed upserts — re-processing after recovery
/// "obviates the need for deduplication" (§4.5).
template <typename T, typename V>
class IdempotentSinkP final : public Processor {
 public:
  IdempotentSinkP(std::shared_ptr<IdempotentStore<V>> store,
                  std::function<uint64_t(const T&)> key_of,
                  std::function<V(const T&)> value_of)
      : store_(std::move(store)),
        key_of_(std::move(key_of)),
        value_of_(std::move(value_of)) {}

  void Process(int ordinal, Inbox* inbox) override {
    (void)ordinal;
    while (!inbox->Empty()) {
      const T& value = inbox->Peek()->payload.template As<T>();
      // jet-verify: allow(lock-in-call) — text-backend name collision: the
      // callee is IdempotentStore::Put (audited JET_COOPERATIVE), not the
      // locking DataGrid::Put
      store_->Put(key_of_(value), value_of_(value));
      inbox->RemoveFront();
    }
  }

 private:
  std::shared_ptr<IdempotentStore<V>> store_;
  std::function<uint64_t(const T&)> key_of_;
  std::function<V(const T&)> value_of_;
};

}  // namespace jet::core

#endif  // JETSIM_CORE_PROCESSORS_EXTERNAL_H_
