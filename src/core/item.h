#ifndef JETSIM_CORE_ITEM_H_
#define JETSIM_CORE_ITEM_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <typeinfo>
#include <utility>

#include "common/clock.h"

namespace jet::core {

/// Cheap type-erased payload container for the data plane.
///
/// Holds an immutable, reference-counted value; copying an `Any` (needed for
/// broadcast edges) only bumps a refcount. `As<T>()` type-checks in debug
/// builds.
class Any {
 public:
  /// Empty payload.
  Any() = default;

  /// Creates an Any holding a copy/move of `value`.
  template <typename T>
  static Any Of(T value) {
    Any a;
    a.ptr_ = std::make_shared<T>(std::move(value));
    a.type_ = &typeid(T);
    return a;
  }

  Any(const Any&) = default;
  Any& operator=(const Any&) = default;
  Any(Any&&) noexcept = default;
  Any& operator=(Any&&) noexcept = default;

  /// True if no value is held.
  bool Empty() const { return ptr_ == nullptr; }

  /// Returns the held value. The caller must know the correct type;
  /// debug builds assert on mismatch.
  template <typename T>
  const T& As() const {
    assert(ptr_ != nullptr && "Any::As on empty Any");
    assert(*type_ == typeid(T) && "Any::As type mismatch");
    return *static_cast<const T*>(ptr_.get());
  }

  /// Returns a pointer to the held value if it has type T, else nullptr.
  template <typename T>
  const T* TryAs() const {
    if (ptr_ == nullptr || *type_ != typeid(T)) return nullptr;
    return static_cast<const T*>(ptr_.get());
  }

  /// Number of Any instances sharing this payload (0 when empty). Test
  /// inspection only: distinguishes a refcount-bumping copy from a move,
  /// which leaves the source Empty() and the count unchanged.
  long SharedCount() const { return ptr_.use_count(); }

 private:
  std::shared_ptr<const void> ptr_;
  const std::type_info* type_ = nullptr;
};

/// Kind of an item traveling along an edge.
enum class ItemKind : uint8_t {
  kData = 0,       ///< a user data record
  kWatermark = 1,  ///< event-time watermark (timestamp field)
  kBarrier = 2,    ///< snapshot barrier (timestamp field = snapshot id)
  kDone = 3,       ///< end-of-stream marker from one producer
};

/// The unit of data exchange between tasklets: either a data record with an
/// event timestamp and a routing hash, or a control item (watermark /
/// snapshot barrier / end-of-stream).
struct Item {
  ItemKind kind = ItemKind::kData;
  /// Event time for data items and watermarks; snapshot id for barriers.
  Nanos timestamp = 0;
  /// Precomputed hash of the record's key, used by partitioned edges. 0 for
  /// un-keyed records.
  uint64_t key_hash = 0;
  Any payload;

  /// Makes a data item.
  template <typename T>
  static Item Data(T value, Nanos event_time, uint64_t key_hash = 0) {
    Item item;
    item.kind = ItemKind::kData;
    item.timestamp = event_time;
    item.key_hash = key_hash;
    item.payload = Any::Of<T>(std::move(value));
    return item;
  }

  /// Makes a watermark item: "no data item with timestamp <= ts will follow".
  static Item WatermarkAt(Nanos ts) {
    Item item;
    item.kind = ItemKind::kWatermark;
    item.timestamp = ts;
    return item;
  }

  /// Makes a snapshot barrier for the given snapshot id.
  static Item BarrierFor(int64_t snapshot_id) {
    Item item;
    item.kind = ItemKind::kBarrier;
    item.timestamp = snapshot_id;
    return item;
  }

  /// Makes an end-of-stream marker.
  static Item Done() {
    Item item;
    item.kind = ItemKind::kDone;
    return item;
  }

  bool IsData() const { return kind == ItemKind::kData; }
  bool IsWatermark() const { return kind == ItemKind::kWatermark; }
  bool IsBarrier() const { return kind == ItemKind::kBarrier; }
  bool IsDone() const { return kind == ItemKind::kDone; }
};

}  // namespace jet::core

#endif  // JETSIM_CORE_ITEM_H_
