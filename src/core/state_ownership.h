#ifndef JETSIM_CORE_STATE_OWNERSHIP_H_
#define JETSIM_CORE_STATE_OWNERSHIP_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/processor.h"
#include "imdg/ownership.h"

namespace jet::core {

/// RAII bundle of one processor instance's single-writer partition claims
/// (ROADMAP item 3). A keyed-aggregation processor claims its share of the
/// vertex's state domain at Init, transfers the claims to the adopting
/// worker when the scheduler migrates its tasklet (AdoptWorkerOwnership),
/// and releases them on destruction. Claims are pure bookkeeping on the
/// cold path: they assert the single-writer discipline the partitioned
/// edge already provides, feed the `grid.owned_partitions` /
/// `scheduler.ownership_migrations` gauges, and let jet-verify and the
/// tsan suites pin exactly one writer per partition.
///
/// All methods run on the tasklet's current owner thread; cross-thread
/// ordering is the scheduler's mailbox handoff (PrepareWorkerHandoff
/// happens-before OnWorkerAdopted).
class StateOwnershipClaim {
 public:
  StateOwnershipClaim() = default;
  StateOwnershipClaim(const StateOwnershipClaim&) = delete;
  StateOwnershipClaim& operator=(const StateOwnershipClaim&) = delete;
  ~StateOwnershipClaim() { ReleaseAll(); }

  /// Claims this instance's slot of its vertex's keyed-state domain.
  /// A partitioned edge routes key_hash % total_parallelism, so the
  /// domain has total_parallelism partitions and instance g owns exactly
  /// partition g — every key this instance will ever see. No-op (OK) when
  /// the execution runs without an ownership registry.
  Status ClaimVertexShare(const ProcessorContext& ctx) {
    if (ctx.ownership == nullptr) return Status::OK();
    imdg::PartitionOwnershipTable* table = ctx.ownership->TableFor(
        "vertex." + std::to_string(ctx.vertex_id), ctx.meta.total_parallelism);
    if (table == nullptr) {
      return FailedPreconditionError(
          "ownership domain partition-count conflict for vertex " +
          std::to_string(ctx.vertex_id));
    }
    return ClaimPartitions(table, {ctx.meta.global_index}, ctx.meta.global_index);
  }

  /// Claims an explicit partition set in `table` for owner id `tasklet`.
  /// Used by grid-owned processors whose state lives in DataGrid
  /// partitions rather than a per-vertex domain.
  Status ClaimPartitions(imdg::PartitionOwnershipTable* table,
                         std::vector<imdg::PartitionId> partitions, int64_t tasklet) {
    ReleaseAll();
    table_ = table;
    tasklet_ = tasklet;
    for (imdg::PartitionId p : partitions) {
      Status s = table_->Claim(p, /*worker=*/-1, tasklet_);
      if (!s.ok()) {
        ReleaseAll();
        return s;
      }
      partitions_.push_back(p);
    }
    return Status::OK();
  }

  /// The hosting tasklet was adopted by `worker_index`: re-register every
  /// claim under the new worker (counts as an ownership migration).
  void AdoptWorker(int32_t worker_index) {
    if (table_ == nullptr) return;
    for (imdg::PartitionId p : partitions_) {
      (void)table_->Transfer(p, tasklet_, worker_index);
    }
  }

  void ReleaseAll() {
    if (table_ == nullptr) return;
    for (imdg::PartitionId p : partitions_) {
      (void)table_->Release(p, tasklet_);
    }
    partitions_.clear();
    table_ = nullptr;
  }

  /// Whether any claim is active (false without a registry).
  bool active() const { return table_ != nullptr && !partitions_.empty(); }

  const std::vector<imdg::PartitionId>& partitions() const { return partitions_; }

 private:
  imdg::PartitionOwnershipTable* table_ = nullptr;
  int64_t tasklet_ = imdg::PartitionOwnershipTable::kNoTasklet;
  std::vector<imdg::PartitionId> partitions_;
};

}  // namespace jet::core

#endif  // JETSIM_CORE_STATE_OWNERSHIP_H_
