#include "core/dag.h"

#include <algorithm>
#include <queue>

namespace jet::core {

VertexId Dag::AddVertex(std::string name, ProcessorSupplier supplier,
                        int32_t local_parallelism) {
  auto id = static_cast<VertexId>(vertices_.size());
  vertices_.push_back(Vertex{id, std::move(name), std::move(supplier), local_parallelism});
  return id;
}

int32_t Dag::NextOrdinal(VertexId v, bool outbound) const {
  int32_t next = 0;
  for (const Edge& e : edges_) {
    if (outbound && e.source == v) next = std::max(next, e.source_ordinal + 1);
    if (!outbound && e.dest == v) next = std::max(next, e.dest_ordinal + 1);
  }
  return next;
}

Edge& Dag::AddEdge(VertexId source, VertexId dest, int32_t source_ordinal,
                   int32_t dest_ordinal) {
  Edge e;
  e.source = source;
  e.dest = dest;
  e.source_ordinal = source_ordinal >= 0 ? source_ordinal : NextOrdinal(source, true);
  e.dest_ordinal = dest_ordinal >= 0 ? dest_ordinal : NextOrdinal(dest, false);
  edges_.push_back(e);
  return edges_.back();
}

Status Dag::Validate() const {
  const auto n = static_cast<VertexId>(vertices_.size());
  if (n == 0) return InvalidArgumentError("DAG has no vertices");
  for (const Vertex& v : vertices_) {
    if (!v.supplier) {
      return InvalidArgumentError("vertex '" + v.name + "' has no processor supplier");
    }
    if (v.local_parallelism == 0 || v.local_parallelism < -1) {
      return InvalidArgumentError("vertex '" + v.name + "' has invalid parallelism");
    }
  }
  for (const Edge& e : edges_) {
    if (e.source < 0 || e.source >= n || e.dest < 0 || e.dest >= n) {
      return InvalidArgumentError("edge references unknown vertex");
    }
    if (e.source == e.dest) return InvalidArgumentError("self-loop edge");
    if (e.queue_size < 2) return InvalidArgumentError("edge queue_size too small");
    if (e.routing == RoutingPolicy::kIsolated) {
      if (vertices_[static_cast<size_t>(e.source)].local_parallelism !=
          vertices_[static_cast<size_t>(e.dest)].local_parallelism) {
        return InvalidArgumentError(
            "isolated edge requires equal local parallelism on both vertices");
      }
      if (e.distributed) {
        return InvalidArgumentError("isolated edge cannot be distributed");
      }
    }
  }
  // Dense input ordinals per vertex (0..k-1, no duplicates).
  for (VertexId v = 0; v < n; ++v) {
    std::vector<int32_t> ordinals;
    for (const Edge& e : edges_) {
      if (e.dest == v) ordinals.push_back(e.dest_ordinal);
    }
    std::sort(ordinals.begin(), ordinals.end());
    for (size_t i = 0; i < ordinals.size(); ++i) {
      if (ordinals[i] != static_cast<int32_t>(i)) {
        return InvalidArgumentError("vertex '" + vertices_[static_cast<size_t>(v)].name +
                                    "' has non-dense or duplicate input ordinals");
      }
    }
  }
  // Acyclicity via Kahn's algorithm.
  if (TopologicalOrder().size() != vertices_.size()) {
    return InvalidArgumentError("DAG contains a cycle");
  }
  return Status::OK();
}

std::vector<const Edge*> Dag::InboundEdges(VertexId v) const {
  std::vector<const Edge*> out;
  for (const Edge& e : edges_) {
    if (e.dest == v) out.push_back(&e);
  }
  std::sort(out.begin(), out.end(),
            [](const Edge* a, const Edge* b) { return a->dest_ordinal < b->dest_ordinal; });
  return out;
}

std::vector<const Edge*> Dag::OutboundEdges(VertexId v) const {
  std::vector<const Edge*> out;
  for (const Edge& e : edges_) {
    if (e.source == v) out.push_back(&e);
  }
  std::sort(out.begin(), out.end(), [](const Edge* a, const Edge* b) {
    return a->source_ordinal < b->source_ordinal;
  });
  return out;
}

std::vector<VertexId> Dag::TopologicalOrder() const {
  const auto n = static_cast<VertexId>(vertices_.size());
  std::vector<int32_t> in_degree(static_cast<size_t>(n), 0);
  for (const Edge& e : edges_) {
    if (e.dest >= 0 && e.dest < n) ++in_degree[static_cast<size_t>(e.dest)];
  }
  std::queue<VertexId> ready;
  for (VertexId v = 0; v < n; ++v) {
    if (in_degree[static_cast<size_t>(v)] == 0) ready.push(v);
  }
  std::vector<VertexId> order;
  while (!ready.empty()) {
    VertexId v = ready.front();
    ready.pop();
    order.push_back(v);
    for (const Edge& e : edges_) {
      if (e.source != v) continue;
      if (--in_degree[static_cast<size_t>(e.dest)] == 0) ready.push(e.dest);
    }
  }
  return order;
}

}  // namespace jet::core
