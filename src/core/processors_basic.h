#ifndef JETSIM_CORE_PROCESSORS_BASIC_H_
#define JETSIM_CORE_PROCESSORS_BASIC_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/thread_annotations.h"
#include "common/rng.h"
#include "core/processor.h"
#include "core/watermark.h"

namespace jet::core {

// ---------------------------------------------------------------------------
// Transforms
// ---------------------------------------------------------------------------

/// One output record of a flat-map function. Unset fields inherit the input
/// item's timestamp / key hash.
template <typename Out>
struct OutRecord {
  Out value;
  std::optional<Nanos> timestamp;
  std::optional<uint64_t> key_hash;
};

/// Stateless record-at-a-time transform covering map, filter and flatMap:
/// for each input of type `In` the function appends zero or more
/// `OutRecord<Out>` to the supplied buffer. Consecutive stateless stages
/// are fused into a single FlatMapP by the pipeline planner (§3.1 operator
/// fusion).
template <typename In, typename Out>
class FlatMapP final : public Processor {
 public:
  using Fn = std::function<void(const In&, std::vector<OutRecord<Out>>*)>;

  explicit FlatMapP(Fn fn) : fn_(std::move(fn)) {}

  void Process(int ordinal, Inbox* inbox) override {
    (void)ordinal;
    if (!FlushPending()) return;
    while (!inbox->Empty()) {
      const Item* item = inbox->Peek();
      buf_.clear();
      fn_(item->payload.As<In>(), &buf_);
      for (auto& rec : buf_) {
        Nanos ts = rec.timestamp.value_or(item->timestamp);
        uint64_t key = rec.key_hash.value_or(item->key_hash);
        pending_.push_back(Item::Data<Out>(std::move(rec.value), ts, key));
      }
      inbox->RemoveFront();
      if (!FlushPending()) return;
    }
  }

 private:
  bool FlushPending() {
    while (!pending_.empty()) {
      if (!ctx()->outbox->OfferToAll(pending_.front())) return false;
      pending_.pop_front();
    }
    return true;
  }

  Fn fn_;
  std::vector<OutRecord<Out>> buf_;
  std::deque<Item> pending_;
};

/// Convenience factory: 1-to-1 map.
template <typename In, typename Out>
std::unique_ptr<Processor> MakeMapP(std::function<Out(const In&)> fn) {
  return std::make_unique<FlatMapP<In, Out>>(
      [fn = std::move(fn)](const In& in, std::vector<OutRecord<Out>>* out) {
        out->push_back(OutRecord<Out>{fn(in), std::nullopt, std::nullopt});
      });
}

/// Convenience factory: filter (Out == In).
template <typename In>
std::unique_ptr<Processor> MakeFilterP(std::function<bool(const In&)> pred) {
  return std::make_unique<FlatMapP<In, In>>(
      [pred = std::move(pred)](const In& in, std::vector<OutRecord<In>>* out) {
        if (pred(in)) out->push_back(OutRecord<In>{in, std::nullopt, std::nullopt});
      });
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Rate-controlled, replayable generator source implementing the paper's
/// latency methodology (§7.1): every event has a *predetermined time of
/// occurrence*; the source may only emit it once the clock passes that
/// time, and any emission delay counts against the reported latency
/// because downstream latency is measured from the event timestamp.
///
/// The global event sequence is sharded over `virtual_partitions` fixed
/// shards (a Kafka-like replayable source, §4.5): global sequence `s`
/// belongs to shard `s % virtual_partitions`, and instance `i` of `P`
/// owns the shards `{v : v % P == i}`. Sharding by a *fixed* count makes
/// the per-shard replay cursors redistribute cleanly when the job is
/// rescaled to a different parallelism after recovery.
///
/// Event `s` occurs at `s / events_per_second` after the start time. The
/// source emits a watermark after each batch (bounded by
/// `watermark_interval` of event time) and completes after `duration` of
/// event time, which flushes all windows downstream.
template <typename Out>
class GeneratorSourceP final : public Processor {
 public:
  /// Produces the event with global sequence number `seq`, returning its
  /// value and key hash.
  using GenFn = std::function<std::pair<Out, uint64_t>(int64_t seq)>;

  struct Options {
    double events_per_second = 1'000'000;
    /// Total event time to generate; the job completes afterwards.
    Nanos duration = kNanosPerSecond;
    /// Max event-time distance between watermarks.
    Nanos watermark_interval = kNanosPerMilli;
    /// Max events emitted per Complete() call (time-slice bound).
    int32_t max_batch = 256;
    /// Absolute clock value to anchor event time 0 at; -1 anchors each
    /// instance at its first Complete() call. Pass a common value so all
    /// parallel instances agree on event occurrence times.
    Nanos start_time = -1;
    /// Fixed shard count of the replayable sequence space. Must be >= the
    /// source's total parallelism.
    int32_t virtual_partitions = 64;
    /// Bounded out-of-orderness: each event's timestamp is shifted back by
    /// a deterministic pseudo-random amount in [0, max_disorder), while
    /// emission still follows the original schedule. Watermarks lag by
    /// max_disorder so no emitted watermark is ever violated (the
    /// out-of-order processing model of [Li et al. 2008] the paper builds
    /// on).
    Nanos max_disorder = 0;
  };

  GeneratorSourceP(GenFn gen, Options options)
      : gen_(std::move(gen)), options_(options) {}

  Status Init(ProcessorContext* context) override {
    JET_RETURN_IF_ERROR(Processor::Init(context));
    const int32_t total = context->meta.total_parallelism;
    const int32_t vp_count = options_.virtual_partitions;
    if (vp_count < total) {
      return InvalidArgumentError("virtual_partitions below source parallelism");
    }
    period_ = static_cast<Nanos>(1e9 / options_.events_per_second);
    if (period_ < 1) period_ = 1;
    for (int32_t vp = context->meta.global_index; vp < vp_count; vp += total) {
      shards_.push_back(Shard{vp, /*next_round=*/0});
    }
    return Status::OK();
  }

  bool Complete() override {
    if (ctx()->IsCancelled()) return true;
    if (shards_.empty()) return true;
    if (start_time_ < 0) {
      // Anchor event time: either the shared configured start or this
      // instance's first Complete() call. The anchor is per *shard* — a
      // shard restored from a snapshot keeps the anchor it was generated
      // with, so replayed events reproduce their original timestamps even
      // when a rescale moves shards between instances with different
      // anchors.
      start_time_ = options_.start_time >= 0 ? options_.start_time : ctx()->clock->Now();
    }
    for (auto& shard : shards_) {
      if (shard.start_time < 0) shard.start_time = start_time_;
    }
    const Nanos now = ctx()->clock->Now();
    const auto vp_count = static_cast<int64_t>(options_.virtual_partitions);
    int32_t budget = options_.max_batch;
    while (budget-- > 0) {
      // The next event overall is the unexhausted shard with the earliest
      // next event time.
      Shard* next = nullptr;
      for (auto& shard : shards_) {
        if (shard.NextSeq(vp_count) * period_ >= options_.duration) continue;
        if (next == nullptr ||
            shard.NextEventTime(vp_count, period_) <
                next->NextEventTime(vp_count, period_)) {
          next = &shard;
        }
      }
      if (next == nullptr) {
        // All shards exhausted: emit a final watermark so downstream
        // windows flush, then finish.
        if (!final_wm_emitted_) {
          if (!ctx()->outbox->OfferToAll(Item::WatermarkAt(kMaxWatermark))) {
            return false;
          }
          final_wm_emitted_ = true;
        }
        return true;
      }
      const int64_t seq = next->NextSeq(vp_count);
      const Nanos event_time = next->NextEventTime(vp_count, period_);
      if (event_time > now) break;  // not yet due
      auto [value, key_hash] = gen_(seq);
      Nanos stamped_time = event_time;
      if (options_.max_disorder > 0) {
        stamped_time -= static_cast<Nanos>(
            HashU64(static_cast<uint64_t>(seq) ^ 0xD15C0DEDULL) %
            static_cast<uint64_t>(options_.max_disorder));
        if (stamped_time < 0) stamped_time = 0;
      }
      if (!ctx()->outbox->OfferToAll(
              Item::Data<Out>(std::move(value), stamped_time, key_hash))) {
        return false;  // backpressure: retry the same event later
      }
      ++next->next_round;
      if (event_time > last_emitted_ts_) last_emitted_ts_ = event_time;
      ++events_emitted_;
      if (last_emitted_ts_ - last_wm_ >= options_.watermark_interval) {
        // The watermark trails the schedule by the disorder bound, so no
        // future event can be stamped at or before it.
        Nanos wm = last_emitted_ts_ - options_.max_disorder;
        if (ctx()->outbox->OfferToAll(Item::WatermarkAt(wm))) {
          last_wm_ = last_emitted_ts_;
        }
        // If the watermark didn't fit we simply retry after more events;
        // watermarks are only delayed, never lost.
      }
    }
    return false;
  }

  bool SaveToSnapshot() override {
    // One entry per shard, keyed by the shard id so a rescaled job routes
    // each replay cursor to the shard's new owner.
    while (snapshot_index_ < shards_.size()) {
      const Shard& shard = shards_[snapshot_index_];
      StateEntry entry;
      entry.key_hash = static_cast<uint64_t>(shard.vp);
      BytesWriter key;
      key.WriteVarU64(static_cast<uint64_t>(shard.vp));
      entry.key = key.Take();
      BytesWriter value;
      value.WriteVarI64(shard.next_round);
      value.WriteI64(shard.start_time);
      value.WriteI64(last_wm_);
      entry.value = value.Take();
      if (!ctx()->outbox->OfferToSnapshot(std::move(entry))) return false;
      ++snapshot_index_;
    }
    snapshot_index_ = 0;
    return true;
  }

  Status RestoreFromSnapshot(const StateEntry& entry) override {
    BytesReader kr(entry.key);
    uint64_t vp = 0;
    JET_RETURN_IF_ERROR(kr.ReadVarU64(&vp));
    BytesReader vr(entry.value);
    int64_t next_round = 0;
    Nanos start = 0;
    Nanos wm = 0;
    JET_RETURN_IF_ERROR(vr.ReadVarI64(&next_round));
    JET_RETURN_IF_ERROR(vr.ReadI64(&start));
    JET_RETURN_IF_ERROR(vr.ReadI64(&wm));
    for (auto& shard : shards_) {
      if (shard.vp == static_cast<int32_t>(vp)) {
        shard.next_round = next_round;
        shard.start_time = start;  // replay with the original anchor
      }
    }
    if (start_time_ < 0 || start < start_time_) start_time_ = start;
    if (wm > last_wm_) last_wm_ = wm;
    return Status::OK();
  }

  int64_t events_emitted() const { return events_emitted_; }

 private:
  struct Shard {
    int32_t vp = 0;
    int64_t next_round = 0;   // events this shard has emitted
    Nanos start_time = -1;    // event-time anchor this shard was born with

    int64_t NextSeq(int64_t vp_count) const { return next_round * vp_count + vp; }
    Nanos NextEventTime(int64_t vp_count, Nanos period) const {
      return start_time + NextSeq(vp_count) * period;
    }
  };

  GenFn gen_;
  Options options_;
  std::vector<Shard> shards_;
  Nanos period_ = 1000;
  Nanos start_time_ = -1;
  Nanos last_emitted_ts_ = kMinWatermark;
  Nanos last_wm_ = 0;
  bool final_wm_emitted_ = false;
  int64_t events_emitted_ = 0;
  size_t snapshot_index_ = 0;
};

/// Batch source that emits a fixed list of records (with timestamp 0) and
/// completes. Used for hash-join build sides and tests.
template <typename Out>
class ListSourceP final : public Processor {
 public:
  /// `records` are (value, key_hash) pairs; the instance emits its
  /// round-robin share.
  explicit ListSourceP(std::shared_ptr<const std::vector<std::pair<Out, uint64_t>>> records)
      : records_(std::move(records)) {}

  Status Init(ProcessorContext* context) override {
    JET_RETURN_IF_ERROR(Processor::Init(context));
    index_ = context->meta.global_index;
    stride_ = context->meta.total_parallelism;
    return Status::OK();
  }

  bool Complete() override {
    while (index_ < static_cast<int64_t>(records_->size())) {
      const auto& [value, key] = (*records_)[static_cast<size_t>(index_)];
      if (!ctx()->outbox->OfferToAll(Item::Data<Out>(value, 0, key))) return false;
      index_ += stride_;
    }
    return true;
  }

 private:
  std::shared_ptr<const std::vector<std::pair<Out, uint64_t>>> records_;
  int64_t index_ = 0;
  int32_t stride_ = 1;
};

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Thread-safe collection target shared by the parallel instances of a
/// CollectSinkP.
template <typename T>
class SyncCollector {
 public:
  /// Called from Processor::Process on a cooperative worker; the critical
  /// section is one push_back, an audited bounded lock.
  void Add(const T& value) JET_COOPERATIVE {
    jet::MutexLock lock(mutex_);
    values_.push_back(value);
  }

  std::vector<T> Snapshot() const {
    jet::MutexLock lock(mutex_);
    return values_;
  }

  size_t Size() const {
    jet::MutexLock lock(mutex_);
    return values_.size();
  }

 private:
  mutable jet::Mutex mutex_;
  std::vector<T> values_ JET_GUARDED_BY(mutex_);
};

/// Sink collecting all received values into a SyncCollector (tests and
/// examples).
template <typename In>
class CollectSinkP final : public Processor {
 public:
  explicit CollectSinkP(std::shared_ptr<SyncCollector<In>> collector)
      : collector_(std::move(collector)) {}

  void Process(int ordinal, Inbox* inbox) override {
    (void)ordinal;
    while (!inbox->Empty()) {
      collector_->Add(inbox->Peek()->payload.template As<In>());
      inbox->RemoveFront();
    }
  }

 private:
  std::shared_ptr<SyncCollector<In>> collector_;
};

/// Aggregates per-instance latency histograms of LatencySinkP instances.
class LatencyRecorder {
 public:
  /// Registers a new per-instance histogram; the pointer stays valid for
  /// the recorder's lifetime.
  Histogram* NewHistogram() {
    jet::MutexLock lock(mutex_);
    histograms_.emplace_back();
    return &histograms_.back();
  }

  /// Merged view across all instances. Only call when the job is quiesced
  /// (instances record without locking).
  Histogram Merged() const {
    jet::MutexLock lock(mutex_);
    Histogram merged;
    for (const auto& h : histograms_) merged.Merge(h);
    return merged;
  }

 private:
  // Guards the deque's *structure* only; instances write their Histogram
  // cells without the lock (see Merged's contract).
  mutable jet::Mutex mutex_;
  std::deque<Histogram> histograms_ JET_GUARDED_BY(mutex_);
};

/// Sink recording, for every received item, the difference between the
/// current clock reading and the item's timestamp — the end-to-end latency
/// metric of §7.1 (for window results the item timestamp is the window end
/// time, so the recorded value is "emission delay past window close").
class LatencySinkP final : public Processor {
 public:
  explicit LatencySinkP(LatencyRecorder* recorder) : recorder_(recorder) {}

  Status Init(ProcessorContext* context) override {
    JET_RETURN_IF_ERROR(Processor::Init(context));
    histogram_ = recorder_->NewHistogram();
    return Status::OK();
  }

  void Process(int ordinal, Inbox* inbox) override {
    (void)ordinal;
    const Nanos now = ctx()->clock->Now();
    while (!inbox->Empty()) {
      histogram_->Record(now - inbox->Peek()->timestamp);
      inbox->RemoveFront();
    }
  }

 private:
  LatencyRecorder* recorder_;
  Histogram* histogram_ = nullptr;
};

/// Sink that counts items (per shared atomic counter).
template <typename In>
class CountSinkP final : public Processor {
 public:
  explicit CountSinkP(std::shared_ptr<std::atomic<int64_t>> counter)
      : counter_(std::move(counter)) {}

  void Process(int ordinal, Inbox* inbox) override {
    (void)ordinal;
    int64_t n = 0;
    while (!inbox->Empty()) {
      ++n;
      inbox->RemoveFront();
    }
    // jet-verify: allow(single-writer) — statistics tally, no payload
    // published; readers tolerate staleness
    counter_->fetch_add(n, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<int64_t>> counter_;
};

}  // namespace jet::core

#endif  // JETSIM_CORE_PROCESSORS_BASIC_H_
