#include "core/metrics.h"

#include <cstdio>
#include <string_view>
#include <unordered_map>

namespace jet::core {

std::string JobMetrics::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "job %lld  attempt %d  snapshots=%lld committed=%lld  items=%lld\n",
                static_cast<long long>(job_id), attempt,
                static_cast<long long>(snapshots_taken),
                static_cast<long long>(last_committed_snapshot),
                static_cast<long long>(TotalItemsProcessed()));
  out += line;
  for (const auto& t : tasklets) {
    std::snprintf(line, sizeof(line),
                  "  %-28s items=%-10lld calls=%-10lld busy=%5.1f%%%s\n",
                  t.name.c_str(), static_cast<long long>(t.items_processed),
                  static_cast<long long>(t.calls), t.BusyFraction() * 100.0,
                  t.done ? "  [done]" : "");
    out += line;
    if (t.max_call_nanos > 0) {
      std::snprintf(line, sizeof(line),
                    "  %-28s call p50=%lldns p99.99=%lldns max=%lldns overbudget=%lld\n",
                    "", static_cast<long long>(t.p50_call_nanos),
                    static_cast<long long>(t.p9999_call_nanos),
                    static_cast<long long>(t.max_call_nanos),
                    static_cast<long long>(t.overbudget_calls));
      out += line;
    }
  }
  return out;
}

JobMetrics JobMetricsFromSnapshot(const std::vector<obs::MetricSnapshot>& snapshot) {
  constexpr std::string_view kPrefix = "tasklet.";
  JobMetrics job;
  std::unordered_map<std::string, size_t> row_of;
  for (const auto& m : snapshot) {
    std::string_view name = m.id.name;
    if (name.substr(0, kPrefix.size()) != kPrefix) continue;
    if (m.id.tags.tasklet.empty()) continue;
    auto [it, inserted] = row_of.emplace(m.id.tags.tasklet, job.tasklets.size());
    if (inserted) {
      job.tasklets.emplace_back();
      job.tasklets.back().name = m.id.tags.tasklet;
    }
    TaskletMetrics& row = job.tasklets[it->second];
    std::string_view field = name.substr(kPrefix.size());
    if (field == "items_processed") {
      row.items_processed += m.value;
    } else if (field == "calls") {
      row.calls += m.value;
    } else if (field == "idle_calls") {
      row.idle_calls += m.value;
    } else if (field == "completed_snapshot_id") {
      row.completed_snapshot_id = m.value;
    } else if (field == "done") {
      row.done = m.value != 0;
    } else if (field == "inbox_depth") {
      row.inbox_depth = m.value;
    } else if (field == "input_queue_depth") {
      row.input_queue_depth = m.value;
    } else if (field == "outbox_depth") {
      row.outbox_depth = m.value;
    } else if (field == "overbudget_calls") {
      row.overbudget_calls += m.value;
    } else if (field == "call_nanos" && m.histogram != nullptr) {
      const Histogram& h = *m.histogram;
      if (h.count() > 0) {
        row.p50_call_nanos = h.ValueAtQuantile(0.5);
        row.p9999_call_nanos = h.ValueAtQuantile(0.9999);
        row.max_call_nanos = h.max();
      }
    }
  }
  return job;
}

}  // namespace jet::core
