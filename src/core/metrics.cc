#include "core/metrics.h"

#include <cstdio>

namespace jet::core {

std::string JobMetrics::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "job %lld  attempt %d  snapshots=%lld committed=%lld  items=%lld\n",
                static_cast<long long>(job_id), attempt,
                static_cast<long long>(snapshots_taken),
                static_cast<long long>(last_committed_snapshot),
                static_cast<long long>(TotalItemsProcessed()));
  out += line;
  for (const auto& t : tasklets) {
    std::snprintf(line, sizeof(line),
                  "  %-28s items=%-10lld calls=%-10lld busy=%5.1f%%%s\n",
                  t.name.c_str(), static_cast<long long>(t.items_processed),
                  static_cast<long long>(t.calls), t.BusyFraction() * 100.0,
                  t.done ? "  [done]" : "");
    out += line;
  }
  return out;
}

}  // namespace jet::core
