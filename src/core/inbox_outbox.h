#ifndef JETSIM_CORE_INBOX_OUTBOX_H_
#define JETSIM_CORE_INBOX_OUTBOX_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/debug_check.h"
#include "common/serde.h"
#include "core/item.h"

namespace jet::core {

/// Batch of input items handed to a processor. The owning tasklet refills
/// the inbox from one inbound queue at a time (§3.2: "the tasklet refills
/// the processor's inbox with more input").
///
/// The processor consumes from the front with Peek/Poll; items it leaves in
/// place are re-offered on the next Process call (used when the outbox
/// fills up mid-batch).
///
/// Not thread-safe: the inbox belongs to exactly one tasklet, and every
/// mutating call must come from that tasklet's worker thread (checked under
/// JETSIM_DEBUG_CHECKS).
class Inbox {
 public:
  /// True when no items remain.
  bool Empty() const { return items_.empty(); }

  /// Number of items remaining.
  size_t Size() const { return items_.size(); }

  /// Returns the front item without removing it; nullptr when empty.
  const Item* Peek() const { return items_.empty() ? nullptr : &items_.front(); }

  /// Removes and returns the front item. Requires !Empty().
  Item Poll() {
    JET_DCHECK_SINGLE_THREAD(owner_guard_, "Inbox owner (Poll)");
    JET_DCHECK(!items_.empty());
    Item item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Removes the front item. Requires !Empty().
  void RemoveFront() {
    JET_DCHECK_SINGLE_THREAD(owner_guard_, "Inbox owner (RemoveFront)");
    JET_DCHECK(!items_.empty());
    items_.pop_front();
  }

  /// Adds an item at the back (called by the owning tasklet only).
  void Add(Item item) {
    JET_DCHECK_SINGLE_THREAD(owner_guard_, "Inbox owner (Add)");
    items_.push_back(std::move(item));
  }

  /// Drops all items.
  void Clear() {
    JET_DCHECK_SINGLE_THREAD(owner_guard_, "Inbox owner (Clear)");
    items_.clear();
  }

 private:
  std::deque<Item> items_;
  debug::ThreadOwnershipGuard owner_guard_;
};

/// One entry of processor state emitted during snapshotting.
struct StateEntry {
  uint64_t key_hash = 0;
  Bytes key;
  Bytes value;
};

/// Buffer for a processor's output (§3.2: "each processor includes ... an
/// outbox of output records to be dispatched downstream").
///
/// The outbox has one bucket per output edge plus a bucket for snapshot
/// state. Buckets have bounded capacity; `Offer*` returns false when a
/// bucket is full, which is the backpressure signal telling the processor
/// to stop and yield (the tasklet will drain buckets into the outbound
/// queues and retry).
///
/// Not thread-safe: offers and drains must all come from the owning
/// tasklet's worker thread (checked under JETSIM_DEBUG_CHECKS).
class Outbox {
 public:
  /// Creates an outbox with `edge_count` edge buckets of capacity
  /// `bucket_capacity` items each.
  explicit Outbox(int edge_count, size_t bucket_capacity = 128)
      : buckets_(static_cast<size_t>(edge_count)), capacity_(bucket_capacity) {}

  /// Offers an item to one output edge. Returns false (and does not
  /// consume) if that bucket is full.
  bool Offer(int ordinal, Item item) {
    JET_DCHECK_SINGLE_THREAD(owner_guard_, "Outbox owner (Offer)");
    JET_DCHECK(ordinal >= 0 && ordinal < edge_count());
    auto& bucket = buckets_[static_cast<size_t>(ordinal)];
    if (bucket.size() >= capacity_) return false;
    bucket.push_back(std::move(item));
    return true;
  }

  /// Offers an item to every output edge; returns false (and consumes
  /// nothing) unless all buckets have room.
  bool OfferToAll(const Item& item) {
    JET_DCHECK_SINGLE_THREAD(owner_guard_, "Outbox owner (OfferToAll)");
    for (const auto& bucket : buckets_) {
      if (bucket.size() >= capacity_) return false;
    }
    for (auto& bucket : buckets_) bucket.push_back(item);
    return true;
  }

  /// Offers a state entry to the snapshot bucket. Returns false if full.
  bool OfferToSnapshot(StateEntry entry) {
    JET_DCHECK_SINGLE_THREAD(owner_guard_, "Outbox owner (OfferToSnapshot)");
    if (snapshot_bucket_.size() >= capacity_) return false;
    snapshot_bucket_.push_back(std::move(entry));
    return true;
  }

  /// Number of output edges.
  int edge_count() const { return static_cast<int>(buckets_.size()); }

  /// True when all buckets (including snapshot) are empty.
  bool Empty() const {
    if (!snapshot_bucket_.empty()) return false;
    for (const auto& bucket : buckets_) {
      if (!bucket.empty()) return false;
    }
    return true;
  }

  /// The tasklet-side view of one edge bucket.
  std::deque<Item>& bucket(int ordinal) { return buckets_[static_cast<size_t>(ordinal)]; }

  /// The tasklet-side view of the snapshot bucket.
  std::deque<StateEntry>& snapshot_bucket() { return snapshot_bucket_; }

 private:
  std::vector<std::deque<Item>> buckets_;
  std::deque<StateEntry> snapshot_bucket_;
  size_t capacity_;
  debug::ThreadOwnershipGuard owner_guard_;
};

}  // namespace jet::core

#endif  // JETSIM_CORE_INBOX_OUTBOX_H_
