#ifndef JETSIM_CORE_INBOX_OUTBOX_H_
#define JETSIM_CORE_INBOX_OUTBOX_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "common/debug_check.h"
#include "common/serde.h"
#include "core/item.h"

namespace jet::core {

/// Batch of input items handed to a processor. The owning tasklet refills
/// the inbox from one inbound queue at a time (§3.2: "the tasklet refills
/// the processor's inbox with more input").
///
/// The processor consumes from the front with Peek/Poll; items it leaves in
/// place are re-offered on the next Process call (used when the outbox
/// fills up mid-batch).
///
/// Backed by a flat vector with a consume cursor rather than a deque:
/// refills append in one contiguous run, bulk consumers (the network
/// sender) move whole spans out with DrainTo, and the storage is reused
/// across batches instead of deque's chunked allocation.
///
/// Not thread-safe: the inbox belongs to exactly one tasklet, and every
/// mutating call must come from that tasklet's worker thread (checked under
/// JETSIM_DEBUG_CHECKS).
class Inbox {
 public:
  /// True when no items remain.
  bool Empty() const { return pos_ >= items_.size(); }

  /// Number of items remaining.
  size_t Size() const { return items_.size() - pos_; }

  /// Returns the front item without removing it; nullptr when empty.
  const Item* Peek() const { return Empty() ? nullptr : &items_[pos_]; }

  /// Removes and returns the front item. Requires !Empty().
  Item Poll() {
    JET_DCHECK_SINGLE_THREAD(owner_guard_, "Inbox owner (Poll)");
    JET_DCHECK(!Empty());
    Item item = std::move(items_[pos_]);
    ++pos_;
    MaybeReset();
    return item;
  }

  /// Removes the front item. Requires !Empty().
  void RemoveFront() {
    JET_DCHECK_SINGLE_THREAD(owner_guard_, "Inbox owner (RemoveFront)");
    JET_DCHECK(!Empty());
    ++pos_;
    MaybeReset();
  }

  /// Adds an item at the back (called by the owning tasklet only).
  void Add(Item item) {
    JET_DCHECK_SINGLE_THREAD(owner_guard_, "Inbox owner (Add)");
    Compact();
    items_.push_back(std::move(item));
  }

  /// Moves up to `limit` items from the front into `out` (appended).
  /// Returns the number moved. This is the batched consume path: one
  /// cursor bump instead of per-item pops.
  size_t DrainTo(std::vector<Item>* out, size_t limit) {
    JET_DCHECK_SINGLE_THREAD(owner_guard_, "Inbox owner (DrainTo)");
    const size_t n = std::min(limit, Size());
    for (size_t i = 0; i < n; ++i) out->push_back(std::move(items_[pos_ + i]));
    pos_ += n;
    MaybeReset();
    return n;
  }

  /// Drops all items.
  void Clear() {
    JET_DCHECK_SINGLE_THREAD(owner_guard_, "Inbox owner (Clear)");
    items_.clear();
    pos_ = 0;
  }

  /// Unbinds the owner guard so the inbox can move to another worker
  /// thread (tasklet migration). The scheduler guarantees a happens-before
  /// edge between the old owner's last access and the new owner's first.
  void ReleaseOwner() { owner_guard_.Release(); }

 private:
  void MaybeReset() {
    if (pos_ >= items_.size()) {
      items_.clear();
      pos_ = 0;
    }
  }

  // Drops the consumed prefix before appending, so the buffer never grows
  // with already-consumed slots (refills normally happen on an empty inbox,
  // making this a no-op).
  void Compact() {
    if (pos_ == 0) return;
    items_.erase(items_.begin(), items_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }

  std::vector<Item> items_;
  size_t pos_ = 0;
  debug::ThreadOwnershipGuard owner_guard_;
};

/// One entry of processor state emitted during snapshotting.
struct StateEntry {
  uint64_t key_hash = 0;
  Bytes key;
  Bytes value;
};

/// Buffer for a processor's output (§3.2: "each processor includes ... an
/// outbox of output records to be dispatched downstream").
///
/// The outbox has one bucket per output edge plus a bucket for snapshot
/// state. Buckets have bounded capacity; `Offer*` returns false when a
/// bucket is full, which is the backpressure signal telling the processor
/// to stop and yield (the tasklet will drain buckets into the outbound
/// queues and retry).
///
/// Not thread-safe: offers and drains must all come from the owning
/// tasklet's worker thread (checked under JETSIM_DEBUG_CHECKS).
class Outbox {
 public:
  /// Creates an outbox with `edge_count` edge buckets of capacity
  /// `bucket_capacity` items each.
  explicit Outbox(int edge_count, size_t bucket_capacity = 128)
      : buckets_(static_cast<size_t>(edge_count)), capacity_(bucket_capacity) {}

  /// Offers an item to one output edge. Returns false (and does not
  /// consume) if that bucket is full.
  bool Offer(int ordinal, Item item) {
    JET_DCHECK_SINGLE_THREAD(owner_guard_, "Outbox owner (Offer)");
    JET_DCHECK(ordinal >= 0 && ordinal < edge_count());
    auto& bucket = buckets_[static_cast<size_t>(ordinal)];
    if (bucket.size() >= capacity_) return false;
    bucket.push_back(std::move(item));
    return true;
  }

  /// Offers an item to every output edge; returns false (and consumes
  /// nothing) unless all buckets have room. The item is *moved* into the
  /// last bucket and refcount-copied into the first n-1 — the caller's
  /// item is consumed (left empty) on success, untouched on failure.
  bool OfferToAll(Item&& item) {
    JET_DCHECK_SINGLE_THREAD(owner_guard_, "Outbox owner (OfferToAll)");
    for (const auto& bucket : buckets_) {
      if (bucket.size() >= capacity_) return false;
    }
    const size_t n = buckets_.size();
    for (size_t i = 0; i + 1 < n; ++i) buckets_[i].push_back(item);
    if (n > 0) buckets_[n - 1].push_back(std::move(item));
    return true;
  }

  /// Lvalue overload: copies into every bucket (broadcast callers that
  /// must keep the item). Prefer the rvalue overload on hot paths.
  bool OfferToAll(const Item& item) {
    Item copy = item;
    return OfferToAll(std::move(copy));
  }

  /// Offers a state entry to the snapshot bucket. Returns false if full.
  bool OfferToSnapshot(StateEntry entry) {
    JET_DCHECK_SINGLE_THREAD(owner_guard_, "Outbox owner (OfferToSnapshot)");
    if (snapshot_bucket_.size() >= capacity_) return false;
    snapshot_bucket_.push_back(std::move(entry));
    return true;
  }

  /// Number of output edges.
  int edge_count() const { return static_cast<int>(buckets_.size()); }

  /// True when all buckets (including snapshot) are empty.
  bool Empty() const {
    if (!snapshot_bucket_.empty()) return false;
    for (const auto& bucket : buckets_) {
      if (!bucket.empty()) return false;
    }
    return true;
  }

  /// The tasklet-side view of one edge bucket. Flat vector so the tasklet
  /// drains it as a contiguous batch (prefix-erase after delivery).
  std::vector<Item>& bucket(int ordinal) { return buckets_[static_cast<size_t>(ordinal)]; }

  /// The tasklet-side view of the snapshot bucket.
  std::deque<StateEntry>& snapshot_bucket() { return snapshot_bucket_; }

  /// Unbinds the owner guard for tasklet migration (see Inbox::ReleaseOwner).
  void ReleaseOwner() { owner_guard_.Release(); }

 private:
  std::vector<std::vector<Item>> buckets_;
  std::deque<StateEntry> snapshot_bucket_;
  size_t capacity_;
  debug::ThreadOwnershipGuard owner_guard_;
};

}  // namespace jet::core

#endif  // JETSIM_CORE_INBOX_OUTBOX_H_
