#ifndef JETSIM_CORE_WATERMARK_H_
#define JETSIM_CORE_WATERMARK_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/clock.h"

namespace jet::core {

/// Watermark value meaning "no watermark seen yet".
constexpr Nanos kMinWatermark = std::numeric_limits<Nanos>::min();

/// Watermark value meaning "stream exhausted" (emitted when a producer
/// completes so downstream windows flush).
constexpr Nanos kMaxWatermark = std::numeric_limits<Nanos>::max();

/// Combines the watermarks of several input queues into one coherent
/// watermark: the minimum across queues, where exhausted (done) queues no
/// longer hold the watermark back. This implements the standard
/// out-of-order stream coalescing Jet applies on every multi-input tasklet.
class WatermarkCoalescer {
 public:
  explicit WatermarkCoalescer(size_t queue_count)
      : queue_wms_(queue_count, kMinWatermark), done_(queue_count, false) {}

  /// Records that queue `index` reported watermark `wm`. Watermarks within
  /// one queue must be non-decreasing.
  void ObserveWatermark(size_t index, Nanos wm) {
    if (wm > queue_wms_[index]) queue_wms_[index] = wm;
  }

  /// Records that queue `index` is exhausted; it no longer participates in
  /// the minimum.
  void MarkDone(size_t index) { done_[index] = true; }

  /// The coalesced watermark: min over non-done queues, or kMaxWatermark
  /// when all queues are done.
  Nanos Coalesced() const {
    Nanos min_wm = kMaxWatermark;
    bool any_active = false;
    for (size_t i = 0; i < queue_wms_.size(); ++i) {
      if (done_[i]) continue;
      any_active = true;
      if (queue_wms_[i] < min_wm) min_wm = queue_wms_[i];
    }
    return any_active ? min_wm : kMaxWatermark;
  }

  size_t queue_count() const { return queue_wms_.size(); }

 private:
  std::vector<Nanos> queue_wms_;
  std::vector<bool> done_;
};

}  // namespace jet::core

#endif  // JETSIM_CORE_WATERMARK_H_
