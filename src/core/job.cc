#include "core/job.h"

#include <chrono>

#include "common/logging.h"

namespace jet::core {

Status LoadSnapshotIntoPlan(ExecutionPlan* plan, imdg::SnapshotStore* store,
                            imdg::JobId job, int64_t snapshot_id) {
  // Group tasklets by vertex so each vertex's snapshot data is scanned once.
  std::unordered_map<VertexId, std::vector<const TaskletInfo*>> by_vertex;
  for (const TaskletInfo& info : plan->tasklet_infos()) {
    by_vertex[info.vertex].push_back(&info);
  }
  for (auto& [vertex, infos] : by_vertex) {
    int32_t total = infos.front()->total_parallelism;
    std::vector<std::vector<StateEntry>> per_instance(static_cast<size_t>(total));
    for (int32_t p = 0; p < imdg::kDefaultPartitionCount; ++p) {
      Status s = store->ReadEntries(
          job, snapshot_id, vertex, p,
          [&per_instance, total](imdg::SnapshotStateEntry e) {
            auto owner = static_cast<size_t>(e.key_hash % static_cast<uint64_t>(total));
            StateEntry entry;
            entry.key_hash = e.key_hash;
            entry.key = std::move(e.key);
            entry.value = std::move(e.value);
            per_instance[owner].push_back(std::move(entry));
          });
      JET_RETURN_IF_ERROR(s);
    }
    for (const TaskletInfo* info : infos) {
      info->tasklet->SetRestoreEntries(
          std::move(per_instance[static_cast<size_t>(info->global_index)]));
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<Job>> Job::Create(JobParams params) {
  if (params.dag == nullptr) return InvalidArgumentError("job has no DAG");
  if (params.config.guarantee != ProcessingGuarantee::kNone &&
      params.snapshot_store == nullptr) {
    return InvalidArgumentError("processing guarantee requires a snapshot store");
  }
  auto job = std::unique_ptr<Job>(new Job());
  job->params_ = params;
  if (job->params_.clock == nullptr) job->params_.clock = &WallClock::Global();

  int32_t threads = params.cooperative_threads;
  if (threads <= 0) {
    threads = static_cast<int32_t>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }

  // Bind the snapshot writer to the store.
  if (params.snapshot_store != nullptr) {
    auto* store = params.snapshot_store;
    imdg::JobId job_id = params.job_id;
    job->snapshot_control_.write_entry = [store, job_id](int64_t snapshot_id,
                                                         VertexId vertex,
                                                         int32_t writer_index,
                                                         StateEntry&& entry) {
      imdg::SnapshotStateEntry se;
      se.vertex_id = vertex;
      se.writer_index = writer_index;
      se.key_hash = entry.key_hash;
      se.key = std::move(entry.key);
      se.value = std::move(entry.value);
      Status s = store->WriteEntry(job_id, snapshot_id, se);
      if (!s.ok()) {
        JET_LOG(kError) << "snapshot write failed: " << s.ToString();
        return false;
      }
      return true;
    };
  }

  // Member-wide observability: one registry per (job, member), profiled
  // execution service, instruments tagged {job, member} by default.
  obs::MetricTags member_tags;
  member_tags.job = static_cast<int64_t>(params.job_id);
  member_tags.member = 0;
  job->registry_ = std::make_unique<obs::MetricsRegistry>(member_tags);
  job->profiler_ =
      std::make_unique<obs::EventLoopProfiler>(job->registry_.get(), job->params_.clock);
  job->snapshots_gauge_ = job->registry_->GetGauge("job.snapshots_taken");
  job->committed_gauge_ = job->registry_->GetGauge("job.last_committed_snapshot");
  job->aborted_counter_ = job->registry_->GetCounter("snapshot.aborted");

  NodeInfo node;  // single-node
  auto plan = ExecutionPlan::Build(
      *params.dag, node, params.config, threads, job->params_.clock, &job->cancelled_,
      /*remote_edges=*/nullptr,
      params.config.guarantee != ProcessingGuarantee::kNone ? &job->snapshot_control_
                                                            : nullptr,
      job->registry_.get());
  if (!plan.ok()) return plan.status();
  job->plan_ = std::move(plan.value());
  ExecutionService::Options service_options;
  service_options.rebalance_interval = params.config.rebalance_interval;
  service_options.skew_threshold = params.config.rebalance_skew_threshold;
  service_options.min_hot_load = params.config.rebalance_min_load;
  job->service_ =
      std::make_unique<ExecutionService>(threads, job->profiler_.get(), service_options);

  if (params.restore_snapshot_id.has_value()) {
    JET_RETURN_IF_ERROR(job->LoadRestoreEntries(*params.restore_snapshot_id));
    job->next_snapshot_id_ = *params.restore_snapshot_id + 1;
    params.snapshot_store->ClearInFlight(params.job_id);
  }
  return job;
}

Status Job::LoadRestoreEntries(int64_t snapshot_id) {
  auto* store = params_.snapshot_store;
  if (store == nullptr) return InvalidArgumentError("restore requires a snapshot store");
  return LoadSnapshotIntoPlan(plan_.get(), store, params_.job_id, snapshot_id);
}

Status Job::Start() {
  std::vector<Tasklet*> tasklets = plan_->Tasklets();
  if (params_.metrics_grid != nullptr) {
    obs::MetricsCollectorTasklet::Options opts;
    opts.key = "job-" + std::to_string(params_.job_id) + "/member-0";
    opts.publish_interval = params_.metrics_publish_interval;
    ExecutionPlan* plan = plan_.get();
    collector_ = std::make_unique<obs::MetricsCollectorTasklet>(
        registry_.get(), params_.metrics_grid, params_.clock, std::move(opts),
        [plan]() {
          for (const TaskletInfo& info : plan->tasklet_infos()) {
            if (!info.tasklet->IsDone()) return false;
          }
          return true;
        });
    tasklets.push_back(collector_.get());
  }
  JET_RETURN_IF_ERROR(service_->Start(std::move(tasklets)));
  if (params_.config.guarantee != ProcessingGuarantee::kNone) {
    coordinator_ = std::thread([this]() { SnapshotCoordinatorLoop(); });
  }
  return Status::OK();
}

void Job::SnapshotCoordinatorLoop() {
  using std::chrono::nanoseconds;
  using std::chrono::steady_clock;
  const Nanos interval = params_.config.snapshot_interval;
  const Nanos ack_timeout = params_.config.snapshot_ack_timeout;
  // Commit condition: every snapshot participant has completed the epoch.
  // Polling per-tasklet completed ids (rather than a shared ack counter)
  // keeps a straggler acking an aborted epoch from being miscounted toward
  // the next one.
  std::vector<const ProcessorTasklet*> participants;
  for (const TaskletInfo& info : plan_->tasklet_infos()) {
    if (info.tasklet->ParticipatesInSnapshots()) participants.push_back(info.tasklet);
  }
  while (!coordinator_stop_.load(std::memory_order_acquire)) {
    // Sleep through the interval in small steps so cancellation is prompt.
    Nanos slept = 0;
    while (slept < interval && !coordinator_stop_.load(std::memory_order_acquire)) {
      Nanos step = std::min<Nanos>(interval - slept, kNanosPerMilli);
      std::this_thread::sleep_for(nanoseconds(step));
      slept += step;
    }
    if (coordinator_stop_.load(std::memory_order_acquire) || service_->IsComplete()) {
      break;
    }
    // Trigger snapshot N and wait for every participant to complete it.
    int64_t id = next_snapshot_id_++;
    snapshot_control_.acks.store(0, std::memory_order_release);
    snapshot_control_.requested.store(id, std::memory_order_release);
    const auto deadline = steady_clock::now() + nanoseconds(ack_timeout);
    bool aborted = false;
    auto all_completed = [&participants, id]() {
      for (const ProcessorTasklet* t : participants) {
        if (t->completed_snapshot_id() < id) return false;
      }
      return true;
    };
    while (!all_completed()) {
      if (coordinator_stop_.load(std::memory_order_acquire) || service_->IsComplete()) {
        return;  // winding down mid-snapshot: leave it uncommitted
      }
      if (ack_timeout > 0 && steady_clock::now() >= deadline) {
        // Watchdog: a participant is stuck (or dead); drop the epoch and
        // re-arm the next one instead of stalling this thread forever.
        params_.snapshot_store->Abort(params_.job_id, id);
        snapshot_control_.aborted.store(id, std::memory_order_release);
        snapshots_aborted_.fetch_add(1, std::memory_order_acq_rel);
        aborted_counter_.Add(1);
        aborted = true;
        break;
      }
      std::this_thread::sleep_for(nanoseconds(100 * kNanosPerMicro));
    }
    if (aborted) continue;
    Status s = params_.snapshot_store->Commit(params_.job_id, id);
    if (!s.ok()) {
      JET_LOG(kError) << "snapshot commit failed: " << s.ToString();
      continue;
    }
    snapshot_control_.committed.store(id, std::memory_order_release);
    last_committed_snapshot_.store(id, std::memory_order_release);
    snapshots_taken_.fetch_add(1, std::memory_order_acq_rel);
    // The coordinator thread is the sole writer of the job gauges.
    snapshots_gauge_.Set(snapshots_taken_.load(std::memory_order_relaxed));
    committed_gauge_.Set(id);
  }
}

JobMetrics Job::Metrics() const {
  JobMetrics m = JobMetricsFromSnapshot(registry_->Snapshot());
  m.job_id = params_.job_id;
  m.snapshots_taken = snapshots_taken_.load(std::memory_order_acquire);
  m.last_committed_snapshot = last_committed_snapshot_.load(std::memory_order_acquire);
  return m;
}

void Job::Cancel() {
  cancelled_.store(true, std::memory_order_release);
  coordinator_stop_.store(true, std::memory_order_release);
  service_->Cancel();
}

Status Job::Join() {
  Status s = service_->AwaitCompletion();
  coordinator_stop_.store(true, std::memory_order_release);
  if (coordinator_.joinable()) coordinator_.join();
  return s;
}

Job::~Job() {
  Cancel();
  Join();
}

}  // namespace jet::core
