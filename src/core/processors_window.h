#ifndef JETSIM_CORE_PROCESSORS_WINDOW_H_
#define JETSIM_CORE_PROCESSORS_WINDOW_H_

#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/aggregate.h"
#include "core/processor.h"
#include "core/state_ownership.h"
#include "core/watermark.h"

namespace jet::core {

/// Definition of a time window. `slide == size` makes it tumbling.
struct WindowDef {
  Nanos size = kNanosPerSecond;
  Nanos slide = kNanosPerSecond;

  static WindowDef Tumbling(Nanos size) { return WindowDef{size, size}; }
  static WindowDef Sliding(Nanos size, Nanos slide) { return WindowDef{size, slide}; }

  /// End timestamp of the frame containing event time `ts` (frames are the
  /// slide-aligned buckets shared by overlapping windows).
  Nanos FrameEndFor(Nanos ts) const { return (ts / slide) * slide + slide; }
};

/// Partial aggregation result for one key in one frame, flowing from the
/// accumulate stage to the combine stage.
template <typename Acc>
struct KeyedFrame {
  uint64_t key = 0;
  Nanos frame_end = 0;
  Acc acc{};
};

/// Final windowed aggregation result.
template <typename Res>
struct WindowResult {
  uint64_t key = 0;
  Nanos window_start = 0;
  Nanos window_end = 0;
  Res value{};
};

/// Stage 1 of the two-stage windowed aggregation (§3.1: "local partial
/// results followed by global combining"). Each instance accumulates the
/// events it happens to receive into per-(key, frame) partial accumulators
/// and flushes a frame downstream once the watermark passes its end. The
/// downstream edge is partitioned by key, so stage 2 sees all partials of
/// a key.
template <typename In, typename Acc, typename Res>
class AccumulateByFrameP final : public Processor {
 public:
  AccumulateByFrameP(AggregateOperation<In, Acc, Res> op,
                     std::function<uint64_t(const In&)> key_fn, WindowDef window,
                     std::shared_ptr<std::atomic<int64_t>> late_counter = nullptr)
      : op_(std::move(op)),
        key_fn_(std::move(key_fn)),
        window_(window),
        late_counter_(std::move(late_counter)) {}

  Status Init(ProcessorContext* ctx) override {
    JET_RETURN_IF_ERROR(Processor::Init(ctx));
    return claim_.ClaimVertexShare(*ctx);
  }

  void AdoptWorkerOwnership(int32_t worker_index) override {
    claim_.AdoptWorker(worker_index);
  }

  void Process(int ordinal, Inbox* inbox) override {
    (void)ordinal;
    while (!inbox->Empty()) {
      const Item* item = inbox->Peek();
      Nanos frame_end = window_.FrameEndFor(item->timestamp);
      if (frame_end <= flushed_up_to_) {
        // The item's frame was already flushed downstream: it is late
        // beyond the watermark. Drop it (counted) rather than resurrect a
        // zombie frame that would double-emit.
        ++late_events_dropped_;
        if (late_counter_ != nullptr) {
          // jet-verify: allow(single-writer) — late-event tally, no payload
          // published; readers tolerate staleness
          late_counter_->fetch_add(1, std::memory_order_relaxed);
        }
        inbox->RemoveFront();
        continue;
      }
      const In& in = item->payload.As<In>();
      uint64_t key = key_fn_(in);
      auto& frame = frames_[frame_end];
      auto [it, inserted] = frame.try_emplace(key, op_.create());
      op_.accumulate(&it->second, in);
      inbox->RemoveFront();
    }
  }

  /// Items dropped because their frame had already been flushed.
  int64_t late_events_dropped() const { return late_events_dropped_; }

  bool TryProcessWatermark(Nanos wm) override {
    if (wm > flushed_up_to_) flushed_up_to_ = wm;
    // Move closed frames into the pending-emission queue, then flush.
    while (!frames_.empty() && frames_.begin()->first <= wm) {
      auto frame_it = frames_.begin();
      const Nanos frame_end = frame_it->first;
      for (auto& [key, acc] : frame_it->second) {
        pending_.push_back(Item::Data<KeyedFrame<Acc>>(
            KeyedFrame<Acc>{key, frame_end, std::move(acc)}, frame_end, HashU64(key)));
      }
      frames_.erase(frame_it);
    }
    return FlushPending();
  }

  bool SaveToSnapshot() override {
    if (!snapshot_building_) {
      snapshot_pending_.clear();
      for (const auto& [frame_end, keyed] : frames_) {
        for (const auto& [key, acc] : keyed) {
          StateEntry entry;
          entry.key_hash = HashU64(key);
          BytesWriter kw;
          kw.WriteVarU64(key);
          kw.WriteVarI64(frame_end);
          entry.key = kw.Take();
          BytesWriter vw;
          op_.serialize(acc, &vw);
          entry.value = vw.Take();
          snapshot_pending_.push_back(std::move(entry));
        }
      }
      snapshot_building_ = true;
    }
    while (!snapshot_pending_.empty()) {
      if (!ctx()->outbox->OfferToSnapshot(std::move(snapshot_pending_.front()))) {
        return false;
      }
      snapshot_pending_.pop_front();
    }
    snapshot_building_ = false;
    return true;
  }

  Status RestoreFromSnapshot(const StateEntry& entry) override {
    BytesReader kr(entry.key);
    uint64_t key = 0;
    int64_t frame_end = 0;
    JET_RETURN_IF_ERROR(kr.ReadVarU64(&key));
    JET_RETURN_IF_ERROR(kr.ReadVarI64(&frame_end));
    BytesReader vr(entry.value);
    Acc acc = op_.deserialize(&vr);
    auto& frame = frames_[frame_end];
    auto [it, inserted] = frame.try_emplace(key, std::move(acc));
    if (!inserted) op_.combine(&it->second, acc);
    return Status::OK();
  }

 private:
  bool FlushPending() {
    while (!pending_.empty()) {
      if (!ctx()->outbox->OfferToAll(pending_.front())) return false;
      pending_.pop_front();
    }
    return true;
  }

  AggregateOperation<In, Acc, Res> op_;
  std::function<uint64_t(const In&)> key_fn_;
  WindowDef window_;
  StateOwnershipClaim claim_;
  std::shared_ptr<std::atomic<int64_t>> late_counter_;
  std::map<Nanos, std::unordered_map<uint64_t, Acc>> frames_;
  Nanos flushed_up_to_ = kMinWatermark;
  int64_t late_events_dropped_ = 0;
  std::deque<Item> pending_;
  std::deque<StateEntry> snapshot_pending_;
  bool snapshot_building_ = false;
};

/// Stage 2 of the two-stage windowed aggregation: combines per-frame
/// partials from all stage-1 instances and emits one WindowResult per key
/// per window once the watermark passes the window end.
///
/// When the aggregate supports `deduct`, the window slides in O(keys) per
/// slide by keeping one running accumulator per key (add the entering
/// frame, deduct the leaving one); otherwise each window recombines its
/// frames. Result items carry the window end as their timestamp, so a
/// LatencySinkP downstream measures exactly the paper's §7.1 latency.
template <typename In, typename Acc, typename Res>
class CombineFramesP final : public Processor {
 public:
  CombineFramesP(AggregateOperation<In, Acc, Res> op, WindowDef window)
      : op_(std::move(op)), window_(window) {}

  Status Init(ProcessorContext* ctx) override {
    JET_RETURN_IF_ERROR(Processor::Init(ctx));
    return claim_.ClaimVertexShare(*ctx);
  }

  void AdoptWorkerOwnership(int32_t worker_index) override {
    claim_.AdoptWorker(worker_index);
  }

  void Process(int ordinal, Inbox* inbox) override {
    (void)ordinal;
    while (!inbox->Empty()) {
      const Item* item = inbox->Peek();
      const auto& kf = item->payload.As<KeyedFrame<Acc>>();
      auto& frame = frames_[kf.frame_end];
      auto [it, inserted] = frame.try_emplace(kf.key, op_.create());
      op_.combine(&it->second, kf.acc);
      inbox->RemoveFront();
    }
  }

  bool TryProcessWatermark(Nanos wm) override {
    while (true) {
      if (!FlushPending()) return false;
      // Once all state is gone there is nothing left to emit (guards the
      // final kMaxWatermark flush against running forever).
      if (frames_.empty() && running_.empty()) break;
      Nanos next = NextWindowEnd();
      if (next == kMinWatermark || next > wm) break;
      EmitWindow(next);
      last_window_end_ = next;
    }
    return FlushPending();
  }

  bool SaveToSnapshot() override {
    if (!snapshot_building_) {
      snapshot_pending_.clear();
      for (const auto& [frame_end, keyed] : frames_) {
        for (const auto& [key, acc] : keyed) {
          StateEntry entry;
          entry.key_hash = HashU64(key);
          BytesWriter kw;
          kw.WriteU8(0);  // 0 = frame entry
          kw.WriteVarU64(key);
          kw.WriteVarI64(frame_end);
          entry.key = kw.Take();
          BytesWriter vw;
          op_.serialize(acc, &vw);
          entry.value = vw.Take();
          snapshot_pending_.push_back(std::move(entry));
        }
      }
      // Per-instance meta entry: the emission position.
      StateEntry meta;
      meta.key_hash = static_cast<uint64_t>(ctx()->meta.global_index);
      BytesWriter kw;
      kw.WriteU8(1);  // 1 = meta entry
      kw.WriteVarU64(static_cast<uint64_t>(ctx()->meta.global_index));
      meta.key = kw.Take();
      BytesWriter vw;
      vw.WriteI64(last_window_end_);
      meta.value = vw.Take();
      snapshot_pending_.push_back(std::move(meta));
      snapshot_building_ = true;
    }
    while (!snapshot_pending_.empty()) {
      if (!ctx()->outbox->OfferToSnapshot(std::move(snapshot_pending_.front()))) {
        return false;
      }
      snapshot_pending_.pop_front();
    }
    snapshot_building_ = false;
    return true;
  }

  Status RestoreFromSnapshot(const StateEntry& entry) override {
    BytesReader kr(entry.key);
    uint8_t tag = 0;
    JET_RETURN_IF_ERROR(kr.ReadU8(&tag));
    if (tag == 1) {
      BytesReader vr(entry.value);
      int64_t last = 0;
      JET_RETURN_IF_ERROR(vr.ReadI64(&last));
      // Several old instances' meta entries may land here after a rescale;
      // the max is the safe (no window skipped twice) choice.
      if (!restored_meta_ || last > last_window_end_) last_window_end_ = last;
      restored_meta_ = true;
      return Status::OK();
    }
    uint64_t key = 0;
    int64_t frame_end = 0;
    JET_RETURN_IF_ERROR(kr.ReadVarU64(&key));
    JET_RETURN_IF_ERROR(kr.ReadVarI64(&frame_end));
    BytesReader vr(entry.value);
    Acc acc = op_.deserialize(&vr);
    auto& frame = frames_[frame_end];
    auto [it, inserted] = frame.try_emplace(key, std::move(acc));
    if (!inserted) op_.combine(&it->second, acc);
    return Status::OK();
  }

  bool FinishSnapshotRestore() override {
    // Rebuild the running per-key accumulators for frames that were already
    // folded into the window before the snapshot (ends <= last emission).
    if (op_.HasDeduct() && last_window_end_ != kMinWatermark) {
      for (const auto& [frame_end, keyed] : frames_) {
        if (frame_end > last_window_end_) continue;
        for (const auto& [key, acc] : keyed) AddToRunning(key, acc);
      }
    }
    return true;
  }

 private:
  struct Running {
    Acc acc;
    int32_t frame_count = 0;
  };

  /// The next window end to emit, or kMinWatermark if no state exists yet.
  /// Windows containing no data are skipped wholesale (they would emit
  /// nothing), so an idle key space never costs per-slide work.
  Nanos NextWindowEnd() const {
    if (last_window_end_ == kMinWatermark) {
      if (frames_.empty()) return kMinWatermark;
      return frames_.begin()->first;  // first window = earliest closed frame
    }
    Nanos next = last_window_end_ + window_.slide;
    if (running_.empty() && !frames_.empty() && frames_.begin()->first > next) {
      next = frames_.begin()->first;  // jump over the empty gap
    }
    return next;
  }

  void AddToRunning(uint64_t key, const Acc& acc) {
    auto [it, inserted] = running_.try_emplace(key, Running{op_.create(), 0});
    op_.combine(&it->second.acc, acc);
    ++it->second.frame_count;
  }

  void EmitWindow(Nanos window_end) {
    const Nanos window_start = window_end - window_.size;
    if (op_.HasDeduct()) {
      // Fold in the entering frame.
      auto entering = frames_.find(window_end);
      if (entering != frames_.end()) {
        for (const auto& [key, acc] : entering->second) AddToRunning(key, acc);
      }
      for (const auto& [key, run] : running_) {
        pending_.push_back(Item::Data<WindowResult<Res>>(
            WindowResult<Res>{key, window_start, window_end, op_.finish(run.acc)},
            window_end, HashU64(key)));
      }
      // Deduct and drop every frame that leaves before the next window.
      // (All frames with end <= window_end have been folded into the
      // running accumulators, so deducting here is always balanced.)
      const Nanos leaving = window_end - window_.size + window_.slide;
      while (!frames_.empty() && frames_.begin()->first <= leaving) {
        auto it = frames_.begin();
        for (const auto& [key, acc] : it->second) {
          auto run_it = running_.find(key);
          if (run_it == running_.end()) continue;
          op_.deduct(&run_it->second.acc, acc);
          if (--run_it->second.frame_count == 0) running_.erase(run_it);
        }
        frames_.erase(it);
      }
    } else {
      // Recombine all frames inside (window_start, window_end].
      std::unordered_map<uint64_t, Acc> combined;
      auto lo = frames_.upper_bound(window_start);
      auto hi = frames_.upper_bound(window_end);
      for (auto it = lo; it != hi; ++it) {
        for (const auto& [key, acc] : it->second) {
          auto [cit, inserted] = combined.try_emplace(key, op_.create());
          op_.combine(&cit->second, acc);
        }
      }
      for (const auto& [key, acc] : combined) {
        pending_.push_back(Item::Data<WindowResult<Res>>(
            WindowResult<Res>{key, window_start, window_end, op_.finish(acc)},
            window_end, HashU64(key)));
      }
      const Nanos leaving = window_end - window_.size + window_.slide;
      while (!frames_.empty() && frames_.begin()->first <= leaving) {
        frames_.erase(frames_.begin());
      }
    }
  }

  bool FlushPending() {
    while (!pending_.empty()) {
      if (!ctx()->outbox->OfferToAll(pending_.front())) return false;
      pending_.pop_front();
    }
    return true;
  }

  AggregateOperation<In, Acc, Res> op_;
  WindowDef window_;
  StateOwnershipClaim claim_;
  std::map<Nanos, std::unordered_map<uint64_t, Acc>> frames_;
  std::unordered_map<uint64_t, Running> running_;
  Nanos last_window_end_ = kMinWatermark;
  bool restored_meta_ = false;
  std::deque<Item> pending_;
  std::deque<StateEntry> snapshot_pending_;
  bool snapshot_building_ = false;
};

/// Session windows: per-key windows that grow while events keep arriving
/// within `gap` of each other and close once the watermark passes the last
/// event plus the gap (Jet's session windows; the natural fit for the §6
/// stateful-AI/chat sessions). Single-stage: the input edge must be
/// partitioned by the session key.
template <typename In, typename Acc, typename Res>
class SessionWindowP final : public Processor {
 public:
  SessionWindowP(AggregateOperation<In, Acc, Res> op,
                 std::function<uint64_t(const In&)> key_fn, Nanos gap)
      : op_(std::move(op)), key_fn_(std::move(key_fn)), gap_(gap) {}

  Status Init(ProcessorContext* ctx) override {
    JET_RETURN_IF_ERROR(Processor::Init(ctx));
    return claim_.ClaimVertexShare(*ctx);
  }

  void AdoptWorkerOwnership(int32_t worker_index) override {
    claim_.AdoptWorker(worker_index);
  }

  void Process(int ordinal, Inbox* inbox) override {
    (void)ordinal;
    while (!inbox->Empty()) {
      const Item* item = inbox->Peek();
      const In& in = item->payload.As<In>();
      AddToSession(key_fn_(in), item->timestamp, in);
      inbox->RemoveFront();
    }
  }

  bool TryProcessWatermark(Nanos wm) override {
    // A session is closed once no future event (ts > wm) can extend it.
    for (auto key_it = sessions_.begin(); key_it != sessions_.end();) {
      auto& sessions = key_it->second;
      for (auto it = sessions.begin(); it != sessions.end();) {
        if (it->end <= wm) {
          pending_.push_back(Item::Data<WindowResult<Res>>(
              WindowResult<Res>{key_it->first, it->start, it->end,
                                op_.finish(it->acc)},
              it->end, HashU64(key_it->first)));
          it = sessions.erase(it);
        } else {
          ++it;
        }
      }
      key_it = sessions.empty() ? sessions_.erase(key_it) : std::next(key_it);
    }
    return FlushPending();
  }

  bool SaveToSnapshot() override {
    if (!snapshot_building_) {
      snapshot_pending_.clear();
      for (const auto& [key, sessions] : sessions_) {
        int64_t index = 0;
        for (const auto& session : sessions) {
          StateEntry entry;
          entry.key_hash = HashU64(key);
          BytesWriter kw;
          kw.WriteVarU64(key);
          kw.WriteVarI64(index++);
          entry.key = kw.Take();
          BytesWriter vw;
          vw.WriteI64(session.start);
          vw.WriteI64(session.end);
          op_.serialize(session.acc, &vw);
          entry.value = vw.Take();
          snapshot_pending_.push_back(std::move(entry));
        }
      }
      snapshot_building_ = true;
    }
    while (!snapshot_pending_.empty()) {
      if (!ctx()->outbox->OfferToSnapshot(std::move(snapshot_pending_.front()))) {
        return false;
      }
      snapshot_pending_.pop_front();
    }
    snapshot_building_ = false;
    return true;
  }

  Status RestoreFromSnapshot(const StateEntry& entry) override {
    BytesReader kr(entry.key);
    uint64_t key = 0;
    int64_t index = 0;
    JET_RETURN_IF_ERROR(kr.ReadVarU64(&key));
    JET_RETURN_IF_ERROR(kr.ReadVarI64(&index));
    BytesReader vr(entry.value);
    Session session;
    JET_RETURN_IF_ERROR(vr.ReadI64(&session.start));
    JET_RETURN_IF_ERROR(vr.ReadI64(&session.end));
    session.acc = op_.deserialize(&vr);
    InsertSession(key, std::move(session));
    return Status::OK();
  }

  size_t open_session_count() const {
    size_t n = 0;
    for (const auto& [key, sessions] : sessions_) n += sessions.size();
    return n;
  }

 private:
  struct Session {
    Nanos start = 0;
    Nanos end = 0;  // last event ts + gap
    Acc acc{};
  };

  void AddToSession(uint64_t key, Nanos ts, const In& in) {
    auto& sessions = sessions_[key];
    Session incoming;
    incoming.start = ts;
    incoming.end = ts + gap_;
    incoming.acc = op_.create();
    op_.accumulate(&incoming.acc, in);
    // Merge every existing session that overlaps [ts, ts+gap).
    for (auto it = sessions.begin(); it != sessions.end();) {
      if (it->start <= incoming.end && incoming.start <= it->end) {
        incoming.start = std::min(incoming.start, it->start);
        incoming.end = std::max(incoming.end, it->end);
        op_.combine(&incoming.acc, it->acc);
        it = sessions.erase(it);
      } else {
        ++it;
      }
    }
    sessions.push_back(std::move(incoming));
  }

  void InsertSession(uint64_t key, Session session) {
    auto& sessions = sessions_[key];
    for (auto it = sessions.begin(); it != sessions.end();) {
      if (it->start <= session.end && session.start <= it->end) {
        session.start = std::min(session.start, it->start);
        session.end = std::max(session.end, it->end);
        op_.combine(&session.acc, it->acc);
        it = sessions.erase(it);
      } else {
        ++it;
      }
    }
    sessions.push_back(std::move(session));
  }

  bool FlushPending() {
    while (!pending_.empty()) {
      if (!ctx()->outbox->OfferToAll(pending_.front())) return false;
      pending_.pop_front();
    }
    return true;
  }

  AggregateOperation<In, Acc, Res> op_;
  std::function<uint64_t(const In&)> key_fn_;
  Nanos gap_;
  StateOwnershipClaim claim_;
  std::unordered_map<uint64_t, std::vector<Session>> sessions_;
  std::deque<Item> pending_;
  std::deque<StateEntry> snapshot_pending_;
  bool snapshot_building_ = false;
};

/// Result of a rolling (non-windowed) keyed aggregation: the running value
/// for `key` as of the triggering event.
template <typename Res>
struct RollingResult {
  uint64_t key = 0;
  Res value{};
};

/// Rolling keyed aggregate: maintains one running accumulator per key and
/// emits the refreshed result on every input event (Jet's rollingAggregate
/// — the pattern behind the §6 view-maintenance and stateful-AI use cases).
/// The input edge must be partitioned by the grouping key so each key has
/// exactly one owner. State is snapshot-capable, so exactly-once jobs keep
/// their running values across failures.
template <typename In, typename Acc, typename Res>
class RollingAggregateP final : public Processor {
 public:
  RollingAggregateP(AggregateOperation<In, Acc, Res> op,
                    std::function<uint64_t(const In&)> key_fn)
      : op_(std::move(op)), key_fn_(std::move(key_fn)) {}

  Status Init(ProcessorContext* ctx) override {
    JET_RETURN_IF_ERROR(Processor::Init(ctx));
    return claim_.ClaimVertexShare(*ctx);
  }

  void AdoptWorkerOwnership(int32_t worker_index) override {
    claim_.AdoptWorker(worker_index);
  }

  void Process(int ordinal, Inbox* inbox) override {
    (void)ordinal;
    if (!FlushPending()) return;
    while (!inbox->Empty()) {
      const Item* item = inbox->Peek();
      const In& in = item->payload.As<In>();
      uint64_t key = key_fn_(in);
      auto [it, inserted] = state_.try_emplace(key, op_.create());
      op_.accumulate(&it->second, in);
      pending_.push_back(Item::Data<RollingResult<Res>>(
          RollingResult<Res>{key, op_.finish(it->second)}, item->timestamp,
          HashU64(key)));
      inbox->RemoveFront();
      if (!FlushPending()) return;
    }
  }

  bool SaveToSnapshot() override {
    if (!snapshot_building_) {
      snapshot_pending_.clear();
      for (const auto& [key, acc] : state_) {
        StateEntry entry;
        entry.key_hash = HashU64(key);
        BytesWriter kw;
        kw.WriteVarU64(key);
        entry.key = kw.Take();
        BytesWriter vw;
        op_.serialize(acc, &vw);
        entry.value = vw.Take();
        snapshot_pending_.push_back(std::move(entry));
      }
      snapshot_building_ = true;
    }
    while (!snapshot_pending_.empty()) {
      if (!ctx()->outbox->OfferToSnapshot(std::move(snapshot_pending_.front()))) {
        return false;
      }
      snapshot_pending_.pop_front();
    }
    snapshot_building_ = false;
    return true;
  }

  Status RestoreFromSnapshot(const StateEntry& entry) override {
    BytesReader kr(entry.key);
    uint64_t key = 0;
    JET_RETURN_IF_ERROR(kr.ReadVarU64(&key));
    BytesReader vr(entry.value);
    Acc acc = op_.deserialize(&vr);
    auto [it, inserted] = state_.try_emplace(key, std::move(acc));
    if (!inserted) op_.combine(&it->second, acc);
    return Status::OK();
  }

  size_t key_count() const { return state_.size(); }

 private:
  bool FlushPending() {
    while (!pending_.empty()) {
      if (!ctx()->outbox->OfferToAll(pending_.front())) return false;
      pending_.pop_front();
    }
    return true;
  }

  AggregateOperation<In, Acc, Res> op_;
  std::function<uint64_t(const In&)> key_fn_;
  StateOwnershipClaim claim_;
  std::unordered_map<uint64_t, Acc> state_;
  std::deque<Item> pending_;
  std::deque<StateEntry> snapshot_pending_;
  bool snapshot_building_ = false;
};

}  // namespace jet::core

#endif  // JETSIM_CORE_PROCESSORS_WINDOW_H_
