#ifndef JETSIM_CORE_EXECUTION_SERVICE_H_
#define JETSIM_CORE_EXECUTION_SERVICE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/tasklet.h"
#include "obs/event_loop_profiler.h"

namespace jet::core {

/// Runs tasklets on a fixed pool of cooperative worker threads (§3.2,
/// Fig. 4): "Jet deploys as many JVM threads as there are CPU cores ... a
/// thread takes over the execution of a number of tasklets. On each
/// thread, Jet runs a loop that executes its tasklets in a round-robin
/// fashion."
///
/// Cooperative tasklets are spread round-robin over `thread_count` worker
/// threads. Non-cooperative tasklets each get a dedicated thread with a
/// gentler idling policy. When none of a worker's tasklets makes progress
/// the worker backs off progressively (spin -> yield -> park) instead of
/// burning the core.
class ExecutionService {
 public:
  /// `thread_count` cooperative workers (>= 1). When `profiler` is set the
  /// workers time every tasklet Call() against the cooperative budget
  /// (§3.2 "well under a millisecond") and feed per-tasklet call-duration
  /// histograms; it must outlive the service.
  explicit ExecutionService(int32_t thread_count,
                            obs::EventLoopProfiler* profiler = nullptr);

  ExecutionService(const ExecutionService&) = delete;
  ExecutionService& operator=(const ExecutionService&) = delete;

  ~ExecutionService();

  /// Starts executing `tasklets` (non-owning; they must outlive the
  /// service). May be called once.
  Status Start(std::vector<Tasklet*> tasklets);

  /// Requests cooperative cancellation: workers stop calling tasklets and
  /// exit their loops.
  void Cancel();

  /// Fault injection (testkit): freezes every worker loop for `duration`,
  /// modeling a stop-the-world GC pause on this member (§7.6 blames such
  /// pauses for recovery-latency tails). Workers finish their in-flight
  /// tasklet call, then stall; cancellation still interrupts the stall.
  void InjectStall(Nanos duration);

  /// Blocks until all tasklets are done (or cancellation took effect) and
  /// returns the first tasklet Init error, if any.
  Status AwaitCompletion();

  /// True once every tasklet has finished.
  bool IsComplete() const {
    return started_.load(std::memory_order_acquire) &&
           active_workers_.load(std::memory_order_acquire) == 0;
  }

  int32_t thread_count() const { return thread_count_; }

 private:
  /// A tasklet plus its (optional) profiler slot; the profile pointer is
  /// fixed before the worker thread starts.
  struct RunEntry {
    Tasklet* tasklet = nullptr;
    obs::EventLoopProfiler::TaskletProfile* profile = nullptr;
  };

  void CooperativeWorkerLoop(std::vector<RunEntry> tasklets);
  void DedicatedWorkerLoop(RunEntry entry);
  void RecordError(const Status& status);
  void MaybeStall() const;
  TaskletProgress TimedCall(RunEntry& entry);

  int32_t thread_count_;
  obs::EventLoopProfiler* profiler_;
  std::vector<std::thread> threads_;
  std::atomic<bool> cancelled_{false};
  std::atomic<Nanos> stall_until_{0};
  std::atomic<bool> started_{false};
  std::atomic<int32_t> active_workers_{0};
  std::mutex error_mutex_;
  Status first_error_;
  bool joined_ = false;
};

}  // namespace jet::core

#endif  // JETSIM_CORE_EXECUTION_SERVICE_H_
