#ifndef JETSIM_CORE_EXECUTION_SERVICE_H_
#define JETSIM_CORE_EXECUTION_SERVICE_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/tasklet.h"
#include "obs/event_loop_profiler.h"

namespace jet::core {

/// Runs tasklets on a fixed pool of cooperative worker threads (§3.2,
/// Fig. 4): "Jet deploys as many JVM threads as there are CPU cores ... a
/// thread takes over the execution of a number of tasklets. On each
/// thread, Jet runs a loop that executes its tasklets in a round-robin
/// fashion."
///
/// Cooperative tasklets are spread round-robin over `thread_count` worker
/// threads initially, then *rebalanced*: the service accounts each
/// tasklet's busy time (the same clock reads that feed the event-loop
/// profiler) and a periodic pass migrates tasklets from overloaded workers
/// to underloaded ones when the busy-time skew exceeds a threshold. The
/// paper's static whole-DAG-per-core layout leaves a worker stuck with two
/// heavy tasklets inflating the 99.99th percentile while siblings idle;
/// migration is what keeps Fig. 9's tail flat under uneven load.
///
/// Migration protocol (single-owner invariant, checked by
/// ThreadOwnershipGuard under JETSIM_DEBUG_CHECKS):
///  1. the rebalance pass registers the tasklet with the profiler under the
///     destination worker's tag and deposits a migration *order* in the
///     source worker's mailbox;
///  2. the source worker picks the order up at a round boundary — never
///     mid-Call — removes the tasklet from its round, calls
///     Tasklet::PrepareWorkerHandoff() (unbinding every ownership guard),
///     and pushes the tasklet into the destination worker's mailbox;
///  3. the destination worker adopts it at its next round start. Both
///     mailbox handoffs are mutex-protected, giving the happens-before edge
///     that makes the guard release sound and keeps every profile cell
///     single-writer.
/// A stale order (tasklet already finished or already moved on) is dropped
/// harmlessly; the next pass re-reads actual ownership and reissues.
///
/// Non-cooperative tasklets each get a dedicated thread with a gentler
/// idling policy and never migrate. When none of a worker's tasklets makes
/// progress the worker backs off progressively (spin -> yield -> park)
/// instead of burning the core.
class ExecutionService {
 public:
  /// Load-balancing knobs (defaults mirror JobConfig's).
  struct Options {
    /// Period of the background rebalance pass; 0 disables the background
    /// thread (TriggerRebalance() still works, which deterministic tests
    /// use).
    Nanos rebalance_interval = 50 * kNanosPerMilli;
    /// Migrate only when the hottest worker's busy time per period exceeds
    /// the coldest's by this factor.
    double skew_threshold = 1.5;
    /// Ignore skew while the hottest worker was busy less than this per
    /// period.
    Nanos min_hot_load = kNanosPerMilli;
    /// Master switch; load balancing also requires a profiler (its clock
    /// provides the busy-time samples) and >= 2 workers.
    bool load_balancing = true;
  };

  /// `thread_count` cooperative workers (>= 1). When `profiler` is set the
  /// workers time every tasklet Call() against the cooperative budget
  /// (§3.2 "well under a millisecond") and feed per-tasklet call-duration
  /// histograms; it must outlive the service. Load balancing is active only
  /// with a profiler and >= 2 workers.
  ExecutionService(int32_t thread_count, obs::EventLoopProfiler* profiler,
                   Options options);
  explicit ExecutionService(int32_t thread_count,
                            obs::EventLoopProfiler* profiler = nullptr);

  ExecutionService(const ExecutionService&) = delete;
  ExecutionService& operator=(const ExecutionService&) = delete;

  ~ExecutionService();

  /// Starts executing `tasklets` (non-owning; they must outlive the
  /// service). May be called once.
  Status Start(std::vector<Tasklet*> tasklets);

  /// Requests cooperative cancellation: workers stop calling tasklets and
  /// exit their loops.
  void Cancel();

  /// Fault injection (testkit): freezes every worker loop for `duration`,
  /// modeling a stop-the-world GC pause on this member (§7.6 blames such
  /// pauses for recovery-latency tails). Workers finish their in-flight
  /// tasklet call, then stall; cancellation still interrupts the stall.
  void InjectStall(Nanos duration);

  /// Blocks until all tasklets are done (or cancellation took effect) and
  /// returns the first tasklet Init error, if any. Safe to call from
  /// multiple threads concurrently.
  Status AwaitCompletion();

  /// True once every tasklet has finished.
  bool IsComplete() const {
    return started_.load(std::memory_order_acquire) &&
           active_workers_.load(std::memory_order_acquire) == 0;
  }

  /// Runs one rebalance pass now (also what the background thread calls).
  /// No-op unless load balancing is active. Thread-safe; deterministic
  /// tests call it instead of waiting for the interval.
  void TriggerRebalance();

  /// Number of rebalance passes that issued at least one migration.
  int64_t rebalances() const { return rebalances_total_.load(std::memory_order_acquire); }

  /// Number of tasklet migrations actually executed by workers.
  int64_t migrated_tasklets() const {
    return migrated_ == nullptr ? 0 : migrated_->load(std::memory_order_acquire);
  }

  /// Whether the load balancer is active for this service.
  bool load_balancing_enabled() const { return lb_enabled_; }

  int32_t thread_count() const { return thread_count_; }

 private:
  /// Shared per-tasklet accounting record. `busy_nanos` is written only by
  /// the worker currently running the tasklet (plain load+store; handoffs
  /// are ordered by the mailbox mutexes) and read by the rebalance pass.
  /// `worker` is updated by the worker that adopts the tasklet.
  struct TaskletRecord {
    Tasklet* tasklet = nullptr;
    std::atomic<int64_t> busy_nanos{0};
    std::atomic<int32_t> worker{-1};
    std::atomic<bool> done{false};
    /// Bumped by the adopting worker on every migration handoff. The
    /// rebalance pass compares it against `last_adoptions` to detect that a
    /// tasklet moved since the previous pass: its busy-time delta straddles
    /// two workers and must not be attributed to either (doing so made the
    /// first post-migration pass see a phantom hot spot on the new worker
    /// and ping-pong the tasklet straight back).
    std::atomic<uint32_t> adoptions{0};
    /// Rebalancer-private: busy_nanos at the previous pass (delta base).
    int64_t last_busy_nanos = 0;
    /// Rebalancer-private: adoptions observed at the previous pass.
    uint32_t last_adoptions = 0;
  };

  /// A tasklet plus its (optional) profiler slot and accounting record.
  struct RunEntry {
    Tasklet* tasklet = nullptr;
    obs::EventLoopProfiler::TaskletProfile* profile = nullptr;
    TaskletRecord* record = nullptr;
  };

  /// "Move `tasklet` to `dest_worker`" — executed by the source worker at
  /// a round boundary; the profile was pre-registered by the rebalancer.
  struct MigrationOrder {
    Tasklet* tasklet = nullptr;
    int32_t dest_worker = -1;
    obs::EventLoopProfiler::TaskletProfile* dest_profile = nullptr;
  };

  /// Per-cooperative-worker shared state. The mailbox mutex is the only
  /// synchronization tasklet handoff needs.
  struct WorkerState {
    jet::Mutex mailbox_mutex;
    // migrants, pushed by source workers
    std::vector<RunEntry> incoming JET_GUARDED_BY(mailbox_mutex);
    // pushed by the rebalance pass
    std::vector<MigrationOrder> orders JET_GUARDED_BY(mailbox_mutex);
    /// Number of tasklets currently hosted (worker-written, pass-read).
    std::atomic<int32_t> tasklet_count{0};
    /// Round-duration slot; fixed before the worker thread starts.
    obs::EventLoopProfiler::WorkerProfile* profile = nullptr;
  };

  void CooperativeWorkerLoop(int32_t worker_index, std::vector<RunEntry> tasklets);
  void DedicatedWorkerLoop(RunEntry entry);
  void RebalanceLoop();
  void InitTasklet(const RunEntry& entry);
  /// Drains the worker's mailbox into `round`; returns true if any arrived.
  bool AdoptIncoming(int32_t worker_index, std::vector<RunEntry>* round);
  /// Executes pending migration orders against `round` (round boundary).
  void ExecuteMigrationOrders(int32_t worker_index, std::vector<RunEntry>* round);
  void RecordError(const Status& status);
  void MaybeStall() const;
  TaskletProgress TimedCall(RunEntry& entry);

  int32_t thread_count_;
  obs::EventLoopProfiler* profiler_;
  Options options_;
  bool lb_enabled_ = false;
  /// lb_enabled_ plus "there is actually something to balance" (>= 2
  /// cooperative tasklets); finalized in Start before any thread spawns.
  bool lb_armed_ = false;
  std::vector<std::thread> threads_;
  std::atomic<bool> cancelled_{false};
  std::atomic<Nanos> stall_until_{0};
  std::atomic<bool> started_{false};
  std::atomic<int32_t> active_workers_{0};
  /// Cooperative tasklets not yet done; workers stay parked (able to adopt
  /// migrants) until this reaches zero.
  std::atomic<int32_t> live_cooperative_{0};

  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::unique_ptr<TaskletRecord>> records_;

  /// Serializes rebalance passes (background thread + TriggerRebalance).
  jet::Mutex rebalance_mutex_;
  /// Wakes the background rebalance thread on Cancel.
  jet::Mutex rebalance_cv_mutex_;
  jet::CondVar rebalance_cv_;

  /// Executed-migration count. Workers (several threads) fetch_add it, so
  /// it cannot be a single-writer obs::Counter; the registry sees it
  /// through a callback gauge holding this shared_ptr (no dangling if the
  /// registry outlives the service).
  std::shared_ptr<std::atomic<int64_t>> migrated_;
  std::atomic<int64_t> rebalances_total_{0};
  /// Rebalancer-thread-only instruments (single writer under
  /// rebalance_mutex_).
  obs::Counter rebalances_counter_;
  obs::Gauge load_skew_gauge_;

  jet::Mutex join_mutex_;
  bool joined_ JET_GUARDED_BY(join_mutex_) = false;
  jet::Mutex error_mutex_;
  Status first_error_ JET_GUARDED_BY(error_mutex_);
};

}  // namespace jet::core

#endif  // JETSIM_CORE_EXECUTION_SERVICE_H_
