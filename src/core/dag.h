#ifndef JETSIM_CORE_DAG_H_
#define JETSIM_CORE_DAG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace jet::core {

class Processor;

/// Identifier of a vertex within its DAG (dense, 0-based).
using VertexId = int32_t;

/// How an edge routes items from a producer instance to one of the
/// consumer's parallel instances (Core API concept, §2.2).
enum class RoutingPolicy : uint8_t {
  /// Any consumer may get any item; the collector round-robins across
  /// consumers, preferring ones with queue space.
  kUnicast = 0,
  /// Items with equal `key_hash` always go to the same consumer instance
  /// (`hash % total parallelism`). Used by keyed aggregations and joins.
  kPartitioned = 1,
  /// Every consumer instance receives every item (used for hash-join build
  /// sides and fan-out).
  kBroadcast = 2,
  /// Producer instance i connects only to consumer instance i. Requires
  /// equal parallelism; preserves order and locality (used inside fused
  /// chains and for source->map chains).
  kIsolated = 3,
};

/// Compile-time metadata handed to a processor factory for one instance.
struct ProcessorMeta {
  /// Index of this instance among all instances of the vertex, across the
  /// whole cluster [0, total_parallelism).
  int32_t global_index = 0;
  /// Instances of this vertex in the whole cluster.
  int32_t total_parallelism = 1;
  /// Index of this instance on its node [0, local_parallelism).
  int32_t local_index = 0;
  /// Instances of this vertex on each node.
  int32_t local_parallelism = 1;
  /// The node this instance runs on.
  int32_t node_id = 0;
  /// Number of nodes in the job's cluster.
  int32_t node_count = 1;
};

/// Factory creating one processor instance per parallel slot.
using ProcessorSupplier = std::function<std::unique_ptr<Processor>(const ProcessorMeta&)>;

/// An edge of the dataflow DAG, connecting `source` vertex output ordinal
/// `source_ordinal` to `dest` vertex input ordinal `dest_ordinal`.
struct Edge {
  VertexId source = 0;
  VertexId dest = 0;
  int32_t source_ordinal = 0;
  int32_t dest_ordinal = 0;
  RoutingPolicy routing = RoutingPolicy::kUnicast;
  /// Distributed edges may ship items to other nodes; local edges always
  /// stay on the producer's node (§3.1).
  bool distributed = false;
  /// Lower value = higher priority: a consumer exhausts all higher-priority
  /// input edges before touching lower ones (used to drain a hash-join's
  /// build side before probing).
  int32_t priority = 0;
  /// Capacity of each SPSC queue backing this edge.
  int32_t queue_size = 1024;
};

/// A vertex of the dataflow DAG.
struct Vertex {
  VertexId id = 0;
  std::string name;
  ProcessorSupplier supplier;
  /// Parallel instances per node; -1 = use the node's cooperative thread
  /// count (the "whole DAG on every core" deployment of §3.1).
  int32_t local_parallelism = -1;
};

/// The dataflow graph of the Core API (§2.2): vertices apply processors to
/// streams flowing along edges. Build with `AddVertex`/`AddEdge`, then hand
/// to an ExecutionPlan.
class Dag {
 public:
  Dag() = default;

  /// Adds a vertex and returns its id.
  VertexId AddVertex(std::string name, ProcessorSupplier supplier,
                     int32_t local_parallelism = -1);

  /// Adds an edge. Ordinals: `source_ordinal` is the source's n-th output
  /// bucket, `dest_ordinal` the destination's n-th input. Returns a
  /// reference whose fields (routing, distributed, priority, queue_size)
  /// may be adjusted before the DAG is instantiated.
  Edge& AddEdge(VertexId source, VertexId dest, int32_t source_ordinal = -1,
                int32_t dest_ordinal = -1);

  /// Checks structural sanity: ids in range, ordinals dense per vertex,
  /// graph acyclic, isolated edges between equal-parallelism vertices.
  Status Validate() const;

  const std::vector<Vertex>& vertices() const { return vertices_; }
  const std::vector<Edge>& edges() const { return edges_; }
  const Vertex& vertex(VertexId id) const { return vertices_[static_cast<size_t>(id)]; }

  /// Edges entering `v`, sorted by dest_ordinal.
  std::vector<const Edge*> InboundEdges(VertexId v) const;

  /// Edges leaving `v`, sorted by source_ordinal.
  std::vector<const Edge*> OutboundEdges(VertexId v) const;

  /// Vertices in a topological order. Requires a validated (acyclic) DAG.
  std::vector<VertexId> TopologicalOrder() const;

 private:
  int32_t NextOrdinal(VertexId v, bool outbound) const;

  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
};

}  // namespace jet::core

#endif  // JETSIM_CORE_DAG_H_
