#ifndef JETSIM_CORE_CONFIG_H_
#define JETSIM_CORE_CONFIG_H_

#include <cstdint>

#include "common/clock.h"

namespace jet::core {

/// Processing guarantee of a job (§4.4, §4.5).
enum class ProcessingGuarantee : uint8_t {
  /// No snapshots; after a failure the job restarts empty.
  kNone = 0,
  /// Snapshots without barrier alignment: channels never block, items may
  /// be re-processed after recovery (lower latency, possible duplicates).
  kAtLeastOnce = 1,
  /// Chandy-Lamport aligned barriers: each input's effects are reflected in
  /// the state exactly once despite failures (§4.4).
  kExactlyOnce = 2,
};

/// Configuration of one job.
struct JobConfig {
  ProcessingGuarantee guarantee = ProcessingGuarantee::kNone;
  /// Interval between automatic snapshots (ignored for kNone).
  Nanos snapshot_interval = kNanosPerSecond;
  /// Cooperative worker threads per node; -1 = one per hardware core.
  int32_t cooperative_threads = -1;
  /// Default capacity of inter-tasklet SPSC queues.
  int32_t default_queue_size = 1024;
  /// Outbox bucket capacity (items buffered per edge before the tasklet
  /// must drain them into queues).
  int32_t outbox_capacity = 128;
  /// Max items moved into a processor's inbox per tasklet call; bounds the
  /// time slice a tasklet spends in one call (§3.2: "executing for a very
  /// short period of time, typically under 1 millisecond").
  int32_t max_inbox_batch = 256;
  /// Period of the scheduler's load-rebalance pass (§3.2): the service
  /// samples per-tasklet busy time and migrates tasklets off overloaded
  /// cooperative workers. 0 disables the background pass (manual
  /// ExecutionService::TriggerRebalance still works).
  Nanos rebalance_interval = 50 * kNanosPerMilli;
  /// A worker is considered overloaded when its busy time over the last
  /// rebalance period exceeds the least-loaded worker's by this factor.
  double rebalance_skew_threshold = 1.5;
  /// Ignore skew while the hottest worker was busy less than this per
  /// period — migrating tasklets between near-idle workers is churn.
  Nanos rebalance_min_load = kNanosPerMilli;
  /// Watchdog bound on the coordinator's wait for snapshot barrier acks.
  /// When a participant dies mid-snapshot the acks never arrive; after this
  /// long the in-flight epoch is aborted and garbage-collected instead of
  /// stalling the snapshot thread forever. 0 = wait without bound.
  Nanos snapshot_ack_timeout = 0;
  /// Round-trip every distributed-edge frame through the binary wire codec
  /// even when the hop stays in-process, so the execution pays the real
  /// serialization cost (EXPERIMENTS.md). Off by default; process-mode
  /// transports always serialize regardless of this flag.
  bool serialize_exchange_frames = false;
};

}  // namespace jet::core

#endif  // JETSIM_CORE_CONFIG_H_
