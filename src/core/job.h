#ifndef JETSIM_CORE_JOB_H_
#define JETSIM_CORE_JOB_H_

#include <atomic>
#include <memory>
#include <optional>
#include <thread>

#include "common/status.h"
#include "core/dag.h"
#include "core/execution_plan.h"
#include "core/execution_service.h"
#include "core/metrics.h"
#include "imdg/snapshot_store.h"
#include "obs/collector_tasklet.h"
#include "obs/event_loop_profiler.h"
#include "obs/metrics_registry.h"

namespace jet::core {

/// Loads the committed snapshot `snapshot_id` of `job` from `store` and
/// distributes the state entries to the plan's tasklets: each entry goes to
/// the instance owning its key (`key_hash % total_parallelism`). Call after
/// ExecutionPlan::Build and before starting execution. Multi-node
/// executions call this once per node's plan.
Status LoadSnapshotIntoPlan(ExecutionPlan* plan, imdg::SnapshotStore* store,
                            imdg::JobId job, int64_t snapshot_id);

/// Parameters for a single-node job execution.
struct JobParams {
  /// The dataflow to execute; must outlive the job.
  const Dag* dag = nullptr;
  JobConfig config;
  /// Cooperative worker threads; -1 = hardware concurrency.
  int32_t cooperative_threads = -1;
  /// Snapshot storage; required when config.guarantee != kNone.
  imdg::SnapshotStore* snapshot_store = nullptr;
  imdg::JobId job_id = 1;
  /// When set, processor state is restored from this committed snapshot
  /// before any input is processed.
  std::optional<int64_t> restore_snapshot_id;
  /// Time source; nullptr = global wall clock.
  const Clock* clock = nullptr;
  /// When set, a MetricsCollectorTasklet publishes periodic JSON snapshots
  /// of the job's metrics into this grid (map "__jet.metrics", key
  /// "job-<id>/member-0") — the Management-Center persistence path.
  imdg::DataGrid* metrics_grid = nullptr;
  Nanos metrics_publish_interval = 500 * kNanosPerMilli;
};

/// A running (single-node) job: the execution plan, its worker threads and
/// — when a processing guarantee is configured — a snapshot coordinator
/// that periodically triggers distributed snapshots (§4.4) and commits them
/// to the snapshot store once every tasklet has acknowledged its barrier.
class Job {
 public:
  /// Builds the physical plan. Call Start() to begin execution.
  static Result<std::unique_ptr<Job>> Create(JobParams params);

  ~Job();

  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  /// Starts the worker threads (and the snapshot coordinator, if any).
  Status Start();

  /// Requests cancellation; Join() afterwards to wait for the teardown.
  void Cancel();

  /// Waits for the job to finish (all tasklets done, or cancelled) and
  /// returns the first execution error.
  Status Join();

  /// True once all tasklets completed.
  bool IsComplete() const { return service_ != nullptr && service_->IsComplete(); }

  /// Id of the last snapshot committed by the coordinator (0 = none).
  int64_t last_committed_snapshot() const {
    return last_committed_snapshot_.load(std::memory_order_acquire);
  }

  /// Number of snapshots committed during this execution.
  int64_t snapshots_taken() const { return snapshots_taken_.load(std::memory_order_acquire); }

  /// Number of in-flight snapshots the watchdog abandoned (see
  /// JobConfig::snapshot_ack_timeout).
  int64_t snapshots_aborted() const {
    return snapshots_aborted_.load(std::memory_order_acquire);
  }

  /// Tasklet metadata (tests).
  const std::vector<TaskletInfo>& tasklet_infos() const { return plan_->tasklet_infos(); }

  /// Point-in-time metrics of the running job (the Management Center view,
  /// §2), materialized from a race-free registry snapshot. Safe to call
  /// from any thread; values are monotonic across consecutive calls.
  JobMetrics Metrics() const;

  /// Raw registry snapshot — every instrument of this job's member,
  /// including exchange and profiler metrics the JobMetrics view folds
  /// away. Feed to obs::RenderJson / obs::RenderPrometheusText.
  std::vector<obs::MetricSnapshot> MetricSnapshots() const {
    return registry_->Snapshot();
  }

  /// JSON diagnostics dump of all instruments (single-node counterpart of
  /// JetCluster::DiagnosticsDump).
  std::string DiagnosticsJson() const { return obs::RenderJson(MetricSnapshots()); }

  /// The member-wide registry; valid for the job's lifetime.
  obs::MetricsRegistry* metrics_registry() const { return registry_.get(); }

 private:
  Job() = default;

  Status LoadRestoreEntries(int64_t snapshot_id);
  void SnapshotCoordinatorLoop();

  JobParams params_;
  SnapshotControl snapshot_control_;
  std::atomic<bool> cancelled_{false};
  // Observability lives above the plan/service so it is destroyed last:
  // tasklets and workers hold instrument handles and profiler slots.
  std::unique_ptr<obs::MetricsRegistry> registry_;
  std::unique_ptr<obs::EventLoopProfiler> profiler_;
  std::unique_ptr<obs::MetricsCollectorTasklet> collector_;
  obs::Gauge snapshots_gauge_;   // written by the coordinator thread only
  obs::Gauge committed_gauge_;
  obs::Counter aborted_counter_;  // coordinator thread only
  std::unique_ptr<ExecutionPlan> plan_;
  std::unique_ptr<ExecutionService> service_;
  std::thread coordinator_;
  std::atomic<bool> coordinator_stop_{false};
  std::atomic<int64_t> last_committed_snapshot_{0};
  std::atomic<int64_t> snapshots_taken_{0};
  std::atomic<int64_t> snapshots_aborted_{0};
  int64_t next_snapshot_id_ = 1;
};

}  // namespace jet::core

#endif  // JETSIM_CORE_JOB_H_
