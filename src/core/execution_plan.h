#ifndef JETSIM_CORE_EXECUTION_PLAN_H_
#define JETSIM_CORE_EXECUTION_PLAN_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/dag.h"
#include "core/tasklet.h"

namespace jet::core {

/// Identifies one node's place in a (possibly multi-node) job execution.
struct NodeInfo {
  int32_t node_id = 0;
  int32_t node_count = 1;
};

/// Supplies the cross-node plumbing for distributed edges. Implemented by
/// the cluster runtime; a single-node execution passes nullptr and all
/// edges stay local.
///
/// SPSC discipline: the sink returned by `SenderFor` is owned by exactly
/// one producer tasklet, and each queue returned by `ReceiverQueuesFor` is
/// written by exactly one receiver tasklet.
class RemoteEdgeFactory {
 public:
  virtual ~RemoteEdgeFactory() = default;

  /// Returns a sink delivering items of edge `e` from producer instance
  /// `producer_local_index` on this node to node `dest_node`.
  virtual RemoteSink SenderFor(const Edge& e, int32_t dest_node,
                               int32_t producer_local_index) = 0;

  /// Returns the queues that remote nodes' items arrive on for consumer
  /// instance `consumer_local_index` of edge `e` — one queue per remote
  /// node, ordered by node id.
  virtual std::vector<ItemQueuePtr> ReceiverQueuesFor(const Edge& e,
                                                      int32_t consumer_local_index) = 0;
};

/// One instantiated tasklet plus the identity of the processor instance it
/// drives (used to route snapshot-restore state to the right instance).
struct TaskletInfo {
  ProcessorTasklet* tasklet = nullptr;
  VertexId vertex = 0;
  int32_t global_index = 0;
  int32_t total_parallelism = 0;
};

/// The per-node physical plan: all tasklets and queues instantiated from a
/// DAG (§3.1: "deploys the complete dataflow graph on every available CPU
/// core"). Build once per node, hand the tasklets to an ExecutionService.
class ExecutionPlan {
 public:
  /// Instantiates the plan for this node.
  ///
  /// `dag` must outlive the plan and have been Validate()d.
  /// `default_local_parallelism` replaces vertices' -1 parallelism
  /// (normally the node's cooperative thread count). `remote_edges` is
  /// required iff `node.node_count > 1`. `snapshot_control` may be null
  /// when the job runs without a processing guarantee. `metrics` (optional)
  /// is handed to every tasklet's ProcessorContext so the tasklets and
  /// their processors register "tasklet.*" / exchange instruments with it.
  /// `ownership` (optional) is the member's single-writer state-ownership
  /// registry; keyed-aggregation processors claim their partition share in
  /// it at Init and access that state lock-free afterwards.
  static Result<std::unique_ptr<ExecutionPlan>> Build(
      const Dag& dag, const NodeInfo& node, const JobConfig& config,
      int32_t default_local_parallelism, const Clock* clock,
      const std::atomic<bool>* cancelled, RemoteEdgeFactory* remote_edges,
      SnapshotControl* snapshot_control, obs::MetricsRegistry* metrics = nullptr,
      imdg::OwnershipRegistry* ownership = nullptr);

  /// All tasklets of this node, in creation order.
  std::vector<Tasklet*> Tasklets();

  /// Tasklet metadata for snapshot restore.
  const std::vector<TaskletInfo>& tasklet_infos() const { return infos_; }

  /// Number of tasklets.
  int64_t tasklet_count() const { return static_cast<int64_t>(tasklets_.size()); }

  /// Number of tasklets that acknowledge snapshot barriers (the snapshot
  /// coordinator waits for this many acks per node).
  int64_t snapshot_participant_count() const {
    int64_t n = 0;
    for (const auto& t : tasklets_) {
      if (t->ParticipatesInSnapshots()) ++n;
    }
    return n;
  }

 private:
  ExecutionPlan() = default;

  std::vector<std::unique_ptr<ProcessorTasklet>> tasklets_;
  std::vector<TaskletInfo> infos_;
};

}  // namespace jet::core

#endif  // JETSIM_CORE_EXECUTION_PLAN_H_
