#include "core/execution_service.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "common/clock.h"
#include "common/idle_strategy.h"
#include "common/logging.h"

namespace jet::core {

ExecutionService::ExecutionService(int32_t thread_count, obs::EventLoopProfiler* profiler,
                                   Options options)
    : thread_count_(std::max<int32_t>(1, thread_count)),
      profiler_(profiler),
      options_(options),
      migrated_(std::make_shared<std::atomic<int64_t>>(0)) {
  lb_enabled_ = options_.load_balancing && profiler_ != nullptr && thread_count_ > 1;
  if (lb_enabled_) {
    obs::MetricsRegistry* registry = profiler_->registry();
    rebalances_counter_ = registry->GetCounter("scheduler.rebalances");
    load_skew_gauge_ = registry->GetGauge("scheduler.worker_load_skew");
    // Several worker threads execute migrations, so the count cannot be a
    // single-writer registry counter; expose the shared atomic through a
    // callback instead (the shared_ptr keeps it alive even if the registry
    // outlives this service).
    auto migrated = migrated_;
    registry->RegisterCallback(
        "scheduler.migrated_tasklets", {},
        [migrated]() { return migrated->load(std::memory_order_acquire); },
        obs::MetricKind::kCounter);
  }
}

ExecutionService::ExecutionService(int32_t thread_count, obs::EventLoopProfiler* profiler)
    : ExecutionService(thread_count, profiler, Options()) {}

ExecutionService::~ExecutionService() {
  Cancel();
  AwaitCompletion();
}

Status ExecutionService::Start(std::vector<Tasklet*> tasklets) {
  if (started_.exchange(true)) return FailedPreconditionError("service already started");

  // Split cooperative from non-cooperative tasklets; the latter each get a
  // dedicated thread (§3.2). The round-robin spread is only the *initial*
  // placement — the rebalance pass corrects it against observed load.
  std::vector<std::vector<RunEntry>> per_thread(static_cast<size_t>(thread_count_));
  std::vector<RunEntry> dedicated;
  size_t cursor = 0;
  int32_t cooperative_count = 0;
  for (Tasklet* t : tasklets) {
    if (t->IsCooperative()) {
      per_thread[cursor % static_cast<size_t>(thread_count_)].push_back(
          RunEntry{t, nullptr, nullptr});
      ++cursor;
      ++cooperative_count;
    } else {
      dedicated.push_back(RunEntry{t, nullptr, nullptr});
    }
  }
  lb_armed_ = lb_enabled_ && cooperative_count >= 2;
  live_cooperative_.store(cooperative_count, std::memory_order_release);

  for (int32_t w = 0; w < thread_count_; ++w) {
    workers_.push_back(std::make_unique<WorkerState>());
  }

  // Register every tasklet with the profiler before any worker thread
  // exists, so initial registration never races with the loops below.
  // Cooperative workers are numbered 0..thread_count-1; dedicated threads
  // continue on. (Migration re-registers under the new worker's tag — that
  // is safe at runtime because Register is mutex-protected and the new
  // slot's writer is ordered by the migration handoff.)
  if (profiler_ != nullptr) {
    int32_t worker = 0;
    for (auto& group : per_thread) {
      for (RunEntry& entry : group) {
        entry.profile = profiler_->Register(entry.tasklet->name(), worker);
      }
      workers_[static_cast<size_t>(worker)]->profile = profiler_->RegisterWorker(worker);
      ++worker;
    }
    for (RunEntry& entry : dedicated) {
      entry.profile = profiler_->Register(entry.tasklet->name(), worker);
      ++worker;
    }
  }

  // Load-accounting records for cooperative tasklets.
  if (lb_armed_) {
    for (int32_t w = 0; w < thread_count_; ++w) {
      for (RunEntry& entry : per_thread[static_cast<size_t>(w)]) {
        auto record = std::make_unique<TaskletRecord>();
        record->tasklet = entry.tasklet;
        record->worker.store(w, std::memory_order_release);
        entry.record = record.get();
        records_.push_back(std::move(record));
      }
      workers_[static_cast<size_t>(w)]->tasklet_count.store(
          static_cast<int32_t>(per_thread[static_cast<size_t>(w)].size()),
          std::memory_order_release);
    }
  }

  for (int32_t w = 0; w < thread_count_; ++w) {
    auto& group = per_thread[static_cast<size_t>(w)];
    // Without load balancing, a worker with no tasklets would never gain
    // any — keep the legacy behavior of not spawning it. With balancing
    // armed, every worker must run so it can adopt migrants.
    if (group.empty() && !lb_armed_) continue;
    active_workers_.fetch_add(1, std::memory_order_acq_rel);
    threads_.emplace_back([this, w, group = std::move(group)]() mutable {
      CooperativeWorkerLoop(w, std::move(group));
    });
  }
  for (RunEntry& entry : dedicated) {
    active_workers_.fetch_add(1, std::memory_order_acq_rel);
    threads_.emplace_back([this, entry]() { DedicatedWorkerLoop(entry); });
  }
  if (lb_armed_ && options_.rebalance_interval > 0) {
    threads_.emplace_back([this]() { RebalanceLoop(); });
  }
  return Status::OK();
}

void ExecutionService::RecordError(const Status& status) {
  jet::MutexLock lock(error_mutex_);
  if (first_error_.ok()) first_error_ = status;
}

void ExecutionService::InitTasklet(const RunEntry& entry) {
  Status s = entry.tasklet->Init();
  if (!s.ok()) {
    RecordError(s);
    cancelled_.store(true, std::memory_order_release);
  }
}

TaskletProgress ExecutionService::TimedCall(RunEntry& entry) {
  if (entry.profile == nullptr && entry.record == nullptr) return entry.tasklet->Call();
  const Clock& clock = profiler_->clock();
  Nanos start = clock.Now();
  TaskletProgress p = entry.tasklet->Call();
  Nanos end = clock.Now();
  if (entry.profile != nullptr) entry.profile->RecordCall(start, end);
  if (entry.record != nullptr) {
    // jet-verify: allow(single-writer) — single-writer cell: only the
    // hosting worker writes (the inner load is relaxed, the store is
    // release); handoffs are ordered by the mailbox mutexes
    entry.record->busy_nanos.store(
        entry.record->busy_nanos.load(std::memory_order_relaxed) + (end - start),
        std::memory_order_release);
  }
  return p;
}

bool ExecutionService::AdoptIncoming(int32_t worker_index, std::vector<RunEntry>* round) {
  WorkerState& ws = *workers_[static_cast<size_t>(worker_index)];
  std::vector<RunEntry> migrants;
  {
    jet::MutexLock lock(ws.mailbox_mutex);
    if (ws.incoming.empty()) return false;
    migrants.swap(ws.incoming);
  }
  for (RunEntry& m : migrants) {
    // Adoption point: from here on this thread is the single owner. The
    // record's worker field is what the next rebalance pass reads, so a
    // stale order issued against the old worker self-heals.
    if (m.record != nullptr) {
      m.record->worker.store(worker_index, std::memory_order_release);
      m.record->adoptions.fetch_add(1, std::memory_order_acq_rel);
    }
    // Re-register transferable per-worker state (partition ownership
    // claims) under this worker before the first Call() touches it. The
    // mailbox mutex already ordered PrepareWorkerHandoff() before us.
    m.tasklet->OnWorkerAdopted(worker_index);
    round->push_back(m);
  }
  return true;
}

void ExecutionService::ExecuteMigrationOrders(int32_t worker_index,
                                              std::vector<RunEntry>* round) {
  WorkerState& ws = *workers_[static_cast<size_t>(worker_index)];
  std::vector<MigrationOrder> orders;
  {
    jet::MutexLock lock(ws.mailbox_mutex);
    if (ws.orders.empty()) return;
    orders.swap(ws.orders);
  }
  for (MigrationOrder& order : orders) {
    if (order.dest_worker == worker_index || order.dest_worker < 0 ||
        order.dest_worker >= static_cast<int32_t>(workers_.size())) {
      continue;
    }
    auto it = std::find_if(round->begin(), round->end(), [&](const RunEntry& e) {
      return e.tasklet == order.tasklet;
    });
    if (it == round->end()) continue;  // stale: tasklet finished or moved on
    RunEntry moving = *it;
    round->erase(it);
    // Round boundary: no Call() in flight. Unbind every ownership guard on
    // this (the owning) thread, then publish through the destination
    // mailbox — the mutex provides the happens-before edge to the new
    // owner's first Call().
    moving.tasklet->PrepareWorkerHandoff();
    moving.profile = order.dest_profile;
    WorkerState& dest = *workers_[static_cast<size_t>(order.dest_worker)];
    {
      jet::MutexLock lock(dest.mailbox_mutex);
      dest.incoming.push_back(moving);
    }
    migrated_->fetch_add(1, std::memory_order_acq_rel);
  }
}

void ExecutionService::CooperativeWorkerLoop(int32_t worker_index,
                                             std::vector<RunEntry> tasklets) {
  WorkerState& ws = *workers_[static_cast<size_t>(worker_index)];
  // Initialize on the owning thread for cache affinity. Migrants arriving
  // later were already initialized by their first worker.
  for (RunEntry& entry : tasklets) InitTasklet(entry);
  BackoffIdleStrategy idle;
  std::vector<RunEntry> round = std::move(tasklets);
  // Round-robin over live tasklets (§3.2, Fig. 4).
  while (!cancelled_.load(std::memory_order_acquire)) {
    if (lb_armed_ && AdoptIncoming(worker_index, &round)) {
      ws.tasklet_count.store(static_cast<int32_t>(round.size()), std::memory_order_release);
      idle.Reset();
    }
    if (round.empty()) {
      if (!lb_armed_) break;  // legacy: no rebalancing, no future work
      // Stay parked, able to adopt migrants, until every cooperative
      // tasklet in the service is done.
      if (live_cooperative_.load(std::memory_order_acquire) == 0) break;
      MaybeStall();
      idle.Idle();
      continue;
    }
    MaybeStall();
    bool any_progress = false;
    size_t done_count = 0;
    Nanos round_start = 0;
    if (ws.profile != nullptr) round_start = profiler_->clock().Now();
    for (RunEntry& entry : round) {
      TaskletProgress p = TimedCall(entry);
      any_progress |= p.made_progress;
      if (p.done) {
        // Deferred removal (fairness): erasing here would shift the later
        // tasklets forward and hand them an extra Call() this round. Null
        // the slot, sweep after the round.
        if (entry.record != nullptr) entry.record->done.store(true, std::memory_order_release);
        entry.tasklet = nullptr;
        entry.profile = nullptr;
        entry.record = nullptr;
        ++done_count;
      }
    }
    if (ws.profile != nullptr) {
      ws.profile->RecordRound(profiler_->clock().Now() - round_start);
    }
    if (done_count > 0) {
      round.erase(std::remove_if(round.begin(), round.end(),
                                 [](const RunEntry& e) { return e.tasklet == nullptr; }),
                  round.end());
      live_cooperative_.fetch_sub(static_cast<int32_t>(done_count),
                                  std::memory_order_acq_rel);
    }
    if (lb_armed_) {
      ExecuteMigrationOrders(worker_index, &round);
      ws.tasklet_count.store(static_cast<int32_t>(round.size()), std::memory_order_release);
    }
    if (any_progress) {
      idle.Reset();
    } else {
      idle.Idle();
    }
  }
  active_workers_.fetch_sub(1, std::memory_order_acq_rel);
}

void ExecutionService::DedicatedWorkerLoop(RunEntry entry) {
  InitTasklet(entry);
  BackoffIdleStrategy idle(/*max_spins=*/0, /*max_yields=*/1,
                           /*min_park_nanos=*/10'000, /*max_park_nanos=*/1'000'000);
  while (!cancelled_.load(std::memory_order_acquire)) {
    MaybeStall();
    TaskletProgress p = TimedCall(entry);
    if (p.done) break;
    if (p.made_progress) {
      idle.Reset();
    } else {
      idle.Idle();
    }
  }
  active_workers_.fetch_sub(1, std::memory_order_acq_rel);
}

void ExecutionService::RebalanceLoop() {
  const auto interval = std::chrono::nanoseconds(options_.rebalance_interval);
  jet::UniqueMutexLock lock(rebalance_cv_mutex_);
  while (!cancelled_.load(std::memory_order_acquire) &&
         live_cooperative_.load(std::memory_order_acquire) > 0) {
    rebalance_cv_.WaitFor(rebalance_cv_mutex_, interval);
    if (cancelled_.load(std::memory_order_acquire) ||
        live_cooperative_.load(std::memory_order_acquire) == 0) {
      break;
    }
    lock.Unlock();
    TriggerRebalance();
    lock.Lock();
  }
}

void ExecutionService::TriggerRebalance() {
  if (!lb_armed_ || !started_.load(std::memory_order_acquire)) return;
  jet::MutexLock lock(rebalance_mutex_);

  // Sample per-tasklet busy time since the previous pass and aggregate per
  // worker. Records of finished tasklets still advance their delta base but
  // drop out of the placement model.
  struct Candidate {
    TaskletRecord* record;
    int64_t delta;
    int32_t worker;
  };
  const auto n_workers = static_cast<int32_t>(workers_.size());
  std::vector<int64_t> load(static_cast<size_t>(n_workers), 0);
  std::vector<int32_t> count(static_cast<size_t>(n_workers), 0);
  std::vector<Candidate> candidates;
  candidates.reserve(records_.size());
  for (auto& record_ptr : records_) {
    TaskletRecord& record = *record_ptr;
    const int64_t busy = record.busy_nanos.load(std::memory_order_acquire);
    int64_t delta = busy - record.last_busy_nanos;
    record.last_busy_nanos = busy;
    // A tasklet that migrated since the previous pass accrued its delta on
    // *two* workers; attributing the whole of it to the current worker
    // fabricates a hot spot there and ping-pongs the tasklet back. Zero the
    // delta for this pass — it still counts toward `count`, the next pass
    // sees a clean single-worker sample.
    const uint32_t adoptions = record.adoptions.load(std::memory_order_acquire);
    if (adoptions != record.last_adoptions) {
      record.last_adoptions = adoptions;
      delta = 0;
    }
    if (record.done.load(std::memory_order_acquire)) continue;
    const int32_t w = record.worker.load(std::memory_order_acquire);
    if (w < 0 || w >= n_workers) continue;
    load[static_cast<size_t>(w)] += delta;
    count[static_cast<size_t>(w)] += 1;
    candidates.push_back(Candidate{&record, delta, w});
  }
  if (candidates.empty()) return;

  auto hottest = [&]() {
    return static_cast<size_t>(
        std::max_element(load.begin(), load.end()) - load.begin());
  };
  auto coldest = [&]() {
    return static_cast<size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
  };

  // Export the observed skew (hot/cold busy ratio, permille) before any
  // corrective moves so the gauge reflects what the pass actually saw.
  {
    const int64_t hi = load[hottest()];
    const int64_t lo = load[coldest()];
    int64_t skew_permille;
    if (hi <= 0) {
      skew_permille = 1000;
    } else if (lo <= 0) {
      skew_permille = std::numeric_limits<int32_t>::max();
    } else {
      skew_permille = hi * 1000 / lo;
    }
    load_skew_gauge_.Set(skew_permille);
  }

  // Greedy: while the skew threshold is exceeded, move the tasklet of the
  // hottest worker whose load lands closest to the midpoint of the
  // hot/cold gap. Only strict improvements are admitted (0 < delta < gap:
  // the new imbalance |gap - 2*delta| is then < gap), so the canonical
  // two-equal-heavies case splits perfectly while a move that would merely
  // flip the imbalance is rejected.
  int64_t issued = 0;
  for (size_t guard = 0; guard < candidates.size(); ++guard) {
    const size_t hot = hottest();
    const size_t cold = coldest();
    const int64_t hi = load[hot];
    const int64_t lo = load[cold];
    if (hi < options_.min_hot_load) break;
    if (count[hot] < 2) break;
    if (static_cast<double>(hi) <=
        options_.skew_threshold * static_cast<double>(std::max<int64_t>(lo, 1))) {
      break;
    }
    const int64_t gap = hi - lo;
    Candidate* best = nullptr;
    int64_t best_dist = 0;
    for (Candidate& c : candidates) {
      if (c.worker != static_cast<int32_t>(hot)) continue;
      if (c.delta <= 0 || c.delta >= gap) continue;
      int64_t dist = 2 * c.delta - gap;
      if (dist < 0) dist = -dist;
      if (best == nullptr || dist < best_dist) {
        best = &c;
        best_dist = dist;
      }
    }
    if (best == nullptr) break;

    // Pre-register the destination profile here (any-thread-safe), so the
    // source worker's handoff is pointer swaps only.
    obs::EventLoopProfiler::TaskletProfile* dest_profile =
        profiler_->Register(best->record->tasklet->name(), static_cast<int32_t>(cold));
    {
      WorkerState& src = *workers_[hot];
      jet::MutexLock mailbox_lock(src.mailbox_mutex);
      src.orders.push_back(MigrationOrder{best->record->tasklet,
                                          static_cast<int32_t>(cold), dest_profile});
    }
    load[hot] -= best->delta;
    load[cold] += best->delta;
    count[hot] -= 1;
    count[cold] += 1;
    best->worker = static_cast<int32_t>(cold);
    ++issued;
  }
  if (issued > 0) {
    rebalances_total_.fetch_add(1, std::memory_order_acq_rel);
    rebalances_counter_.Add(1);
  }
}

void ExecutionService::Cancel() {
  cancelled_.store(true, std::memory_order_release);
  rebalance_cv_.NotifyAll();
}

void ExecutionService::InjectStall(Nanos duration) {
  if (duration <= 0) return;
  Nanos until = WallClock::Global().Now() + duration;
  // Keep the later deadline if stalls overlap.
  Nanos prev = stall_until_.load(std::memory_order_relaxed);
  while (prev < until &&
         !stall_until_.compare_exchange_weak(prev, until, std::memory_order_acq_rel)) {
  }
}

void ExecutionService::MaybeStall() const {
  if (stall_until_.load(std::memory_order_acquire) == 0) return;
  while (!cancelled_.load(std::memory_order_acquire) &&
         WallClock::Global().Now() < stall_until_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

Status ExecutionService::AwaitCompletion() {
  // Join under its own mutex: concurrent waiters must not race on joined_
  // or double-join a thread. error_mutex_ stays out of the join section —
  // workers take it in RecordError, so holding it across join() would
  // deadlock.
  {
    jet::MutexLock join_lock(join_mutex_);
    if (!joined_) {
      for (auto& t : threads_) {
        if (t.joinable()) t.join();
      }
      joined_ = true;
    }
  }
  jet::MutexLock lock(error_mutex_);
  return first_error_;
}

}  // namespace jet::core
