#include "core/execution_service.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/clock.h"
#include "common/idle_strategy.h"
#include "common/logging.h"

namespace jet::core {

ExecutionService::ExecutionService(int32_t thread_count, obs::EventLoopProfiler* profiler)
    : thread_count_(std::max<int32_t>(1, thread_count)), profiler_(profiler) {}

ExecutionService::~ExecutionService() {
  Cancel();
  AwaitCompletion();
}

Status ExecutionService::Start(std::vector<Tasklet*> tasklets) {
  if (started_.exchange(true)) return FailedPreconditionError("service already started");

  // Split cooperative from non-cooperative tasklets; the latter each get a
  // dedicated thread (§3.2).
  std::vector<std::vector<RunEntry>> per_thread(static_cast<size_t>(thread_count_));
  std::vector<RunEntry> dedicated;
  size_t cursor = 0;
  for (Tasklet* t : tasklets) {
    if (t->IsCooperative()) {
      per_thread[cursor % static_cast<size_t>(thread_count_)].push_back(RunEntry{t, nullptr});
      ++cursor;
    } else {
      dedicated.push_back(RunEntry{t, nullptr});
    }
  }

  // Register every tasklet with the profiler before any worker thread
  // exists, so registration never races with the loops below. Cooperative
  // workers are numbered 0..thread_count-1; dedicated threads continue on.
  if (profiler_ != nullptr) {
    int32_t worker = 0;
    for (auto& group : per_thread) {
      for (RunEntry& entry : group) {
        entry.profile = profiler_->Register(entry.tasklet->name(), worker);
      }
      ++worker;
    }
    for (RunEntry& entry : dedicated) {
      entry.profile = profiler_->Register(entry.tasklet->name(), worker);
      ++worker;
    }
  }

  for (auto& group : per_thread) {
    if (group.empty()) continue;
    active_workers_.fetch_add(1, std::memory_order_acq_rel);
    threads_.emplace_back(
        [this, group = std::move(group)]() mutable { CooperativeWorkerLoop(std::move(group)); });
  }
  for (RunEntry& entry : dedicated) {
    active_workers_.fetch_add(1, std::memory_order_acq_rel);
    threads_.emplace_back([this, entry]() { DedicatedWorkerLoop(entry); });
  }
  return Status::OK();
}

void ExecutionService::RecordError(const Status& status) {
  std::scoped_lock lock(error_mutex_);
  if (first_error_.ok()) first_error_ = status;
}

TaskletProgress ExecutionService::TimedCall(RunEntry& entry) {
  if (entry.profile == nullptr) return entry.tasklet->Call();
  const Clock& clock = profiler_->clock();
  Nanos start = clock.Now();
  TaskletProgress p = entry.tasklet->Call();
  entry.profile->RecordCall(clock.Now() - start);
  return p;
}

void ExecutionService::CooperativeWorkerLoop(std::vector<RunEntry> tasklets) {
  // Initialize on the owning thread for cache affinity.
  for (RunEntry& entry : tasklets) {
    Status s = entry.tasklet->Init();
    if (!s.ok()) {
      RecordError(s);
      cancelled_.store(true, std::memory_order_release);
    }
  }
  BackoffIdleStrategy idle;
  // Round-robin over live tasklets (§3.2, Fig. 4).
  while (!tasklets.empty() && !cancelled_.load(std::memory_order_acquire)) {
    MaybeStall();
    bool any_progress = false;
    for (size_t i = 0; i < tasklets.size();) {
      TaskletProgress p = TimedCall(tasklets[i]);
      any_progress |= p.made_progress;
      if (p.done) {
        tasklets.erase(tasklets.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    if (any_progress) {
      idle.Reset();
    } else {
      idle.Idle();
    }
  }
  active_workers_.fetch_sub(1, std::memory_order_acq_rel);
}

void ExecutionService::DedicatedWorkerLoop(RunEntry entry) {
  Status s = entry.tasklet->Init();
  if (!s.ok()) {
    RecordError(s);
    cancelled_.store(true, std::memory_order_release);
  }
  BackoffIdleStrategy idle(/*max_spins=*/0, /*max_yields=*/1,
                           /*min_park_nanos=*/10'000, /*max_park_nanos=*/1'000'000);
  while (!cancelled_.load(std::memory_order_acquire)) {
    MaybeStall();
    TaskletProgress p = TimedCall(entry);
    if (p.done) break;
    if (p.made_progress) {
      idle.Reset();
    } else {
      idle.Idle();
    }
  }
  active_workers_.fetch_sub(1, std::memory_order_acq_rel);
}

void ExecutionService::Cancel() { cancelled_.store(true, std::memory_order_release); }

void ExecutionService::InjectStall(Nanos duration) {
  if (duration <= 0) return;
  Nanos until = WallClock::Global().Now() + duration;
  // Keep the later deadline if stalls overlap.
  Nanos prev = stall_until_.load(std::memory_order_relaxed);
  while (prev < until &&
         !stall_until_.compare_exchange_weak(prev, until, std::memory_order_acq_rel)) {
  }
}

void ExecutionService::MaybeStall() const {
  if (stall_until_.load(std::memory_order_acquire) == 0) return;
  while (!cancelled_.load(std::memory_order_acquire) &&
         WallClock::Global().Now() < stall_until_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

Status ExecutionService::AwaitCompletion() {
  if (joined_) return first_error_;
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  joined_ = true;
  std::scoped_lock lock(error_mutex_);
  return first_error_;
}

}  // namespace jet::core
