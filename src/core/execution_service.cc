#include "core/execution_service.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/clock.h"
#include "common/idle_strategy.h"
#include "common/logging.h"

namespace jet::core {

ExecutionService::ExecutionService(int32_t thread_count)
    : thread_count_(std::max<int32_t>(1, thread_count)) {}

ExecutionService::~ExecutionService() {
  Cancel();
  AwaitCompletion();
}

Status ExecutionService::Start(std::vector<Tasklet*> tasklets) {
  if (started_.exchange(true)) return FailedPreconditionError("service already started");

  // Split cooperative from non-cooperative tasklets; the latter each get a
  // dedicated thread (§3.2).
  std::vector<std::vector<Tasklet*>> per_thread(static_cast<size_t>(thread_count_));
  std::vector<Tasklet*> dedicated;
  size_t cursor = 0;
  for (Tasklet* t : tasklets) {
    if (t->IsCooperative()) {
      per_thread[cursor % static_cast<size_t>(thread_count_)].push_back(t);
      ++cursor;
    } else {
      dedicated.push_back(t);
    }
  }

  for (auto& group : per_thread) {
    if (group.empty()) continue;
    active_workers_.fetch_add(1, std::memory_order_acq_rel);
    threads_.emplace_back(
        [this, group = std::move(group)]() mutable { CooperativeWorkerLoop(group); });
  }
  for (Tasklet* t : dedicated) {
    active_workers_.fetch_add(1, std::memory_order_acq_rel);
    threads_.emplace_back([this, t]() { DedicatedWorkerLoop(t); });
  }
  return Status::OK();
}

void ExecutionService::RecordError(const Status& status) {
  std::scoped_lock lock(error_mutex_);
  if (first_error_.ok()) first_error_ = status;
}

void ExecutionService::CooperativeWorkerLoop(std::vector<Tasklet*> tasklets) {
  // Initialize on the owning thread for cache affinity.
  for (Tasklet* t : tasklets) {
    Status s = t->Init();
    if (!s.ok()) {
      RecordError(s);
      cancelled_.store(true, std::memory_order_release);
    }
  }
  BackoffIdleStrategy idle;
  // Round-robin over live tasklets (§3.2, Fig. 4).
  while (!tasklets.empty() && !cancelled_.load(std::memory_order_acquire)) {
    MaybeStall();
    bool any_progress = false;
    for (size_t i = 0; i < tasklets.size();) {
      TaskletProgress p = tasklets[i]->Call();
      any_progress |= p.made_progress;
      if (p.done) {
        tasklets.erase(tasklets.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    if (any_progress) {
      idle.Reset();
    } else {
      idle.Idle();
    }
  }
  active_workers_.fetch_sub(1, std::memory_order_acq_rel);
}

void ExecutionService::DedicatedWorkerLoop(Tasklet* tasklet) {
  Status s = tasklet->Init();
  if (!s.ok()) {
    RecordError(s);
    cancelled_.store(true, std::memory_order_release);
  }
  BackoffIdleStrategy idle(/*max_spins=*/0, /*max_yields=*/1,
                           /*min_park_nanos=*/10'000, /*max_park_nanos=*/1'000'000);
  while (!cancelled_.load(std::memory_order_acquire)) {
    MaybeStall();
    TaskletProgress p = tasklet->Call();
    if (p.done) break;
    if (p.made_progress) {
      idle.Reset();
    } else {
      idle.Idle();
    }
  }
  active_workers_.fetch_sub(1, std::memory_order_acq_rel);
}

void ExecutionService::Cancel() { cancelled_.store(true, std::memory_order_release); }

void ExecutionService::InjectStall(Nanos duration) {
  if (duration <= 0) return;
  Nanos until = WallClock::Global().Now() + duration;
  // Keep the later deadline if stalls overlap.
  Nanos prev = stall_until_.load(std::memory_order_relaxed);
  while (prev < until &&
         !stall_until_.compare_exchange_weak(prev, until, std::memory_order_acq_rel)) {
  }
}

void ExecutionService::MaybeStall() const {
  if (stall_until_.load(std::memory_order_acquire) == 0) return;
  while (!cancelled_.load(std::memory_order_acquire) &&
         WallClock::Global().Now() < stall_until_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

Status ExecutionService::AwaitCompletion() {
  if (joined_) return first_error_;
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  joined_ = true;
  std::scoped_lock lock(error_mutex_);
  return first_error_;
}

}  // namespace jet::core
