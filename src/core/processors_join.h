#ifndef JETSIM_CORE_PROCESSORS_JOIN_H_
#define JETSIM_CORE_PROCESSORS_JOIN_H_

#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/processor.h"
#include "core/watermark.h"

namespace jet::core {

/// Hash join between a *batch* build side (input ordinal 0) and a
/// *streaming* probe side (input ordinal 1) — the hybrid batch/streaming
/// pattern of §2.1 Listing 2: "The batch side will pull all the inputs ...
/// when the pipeline initializes, and then the stream will simply probe the
/// hashtable for each incoming event."
///
/// Give the build edge priority 0 and the probe edge priority 1 so the
/// tasklet drains the build side completely before probing. The build edge
/// is typically broadcast (every instance holds the whole table) and the
/// probe edge unicast; alternatively both can be partitioned by key.
template <typename Build, typename Probe, typename Out>
class HashJoinP final : public Processor {
 public:
  /// `join` returns the outputs for one probe record given all matching
  /// build records (empty vector = no match, emits nothing).
  HashJoinP(std::function<uint64_t(const Build&)> build_key,
            std::function<uint64_t(const Probe&)> probe_key,
            std::function<void(const Probe&, const std::vector<Build>&,
                               std::vector<Out>*)>
                join)
      : build_key_(std::move(build_key)),
        probe_key_(std::move(probe_key)),
        join_(std::move(join)) {}

  void Process(int ordinal, Inbox* inbox) override {
    if (ordinal == 0) {
      while (!inbox->Empty()) {
        const Build& b = inbox->Peek()->payload.template As<Build>();
        table_[build_key_(b)].push_back(b);
        inbox->RemoveFront();
      }
      return;
    }
    if (!FlushPending()) return;
    while (!inbox->Empty()) {
      const Item* item = inbox->Peek();
      const Probe& p = item->payload.template As<Probe>();
      auto it = table_.find(probe_key_(p));
      if (it != table_.end()) {
        out_buf_.clear();
        join_(p, it->second, &out_buf_);
        for (auto& out : out_buf_) {
          pending_.push_back(
              Item::Data<Out>(std::move(out), item->timestamp, item->key_hash));
        }
      }
      inbox->RemoveFront();
      if (!FlushPending()) return;
    }
  }

  size_t build_table_size() const { return table_.size(); }

 private:
  bool FlushPending() {
    while (!pending_.empty()) {
      if (!ctx()->outbox->OfferToAll(pending_.front())) return false;
      pending_.pop_front();
    }
    return true;
  }

  std::function<uint64_t(const Build&)> build_key_;
  std::function<uint64_t(const Probe&)> probe_key_;
  std::function<void(const Probe&, const std::vector<Build>&, std::vector<Out>*)> join_;
  std::unordered_map<uint64_t, std::vector<Build>> table_;
  std::vector<Out> out_buf_;
  std::deque<Item> pending_;
};

/// Stream-to-stream equi-join over tumbling windows (NEXMark Q8 shape:
/// "join of the stream of new users with the stream of auctions ... in the
/// last period"). Left records arrive on ordinal 0, right records on
/// ordinal 1; both edges must be partitioned by the join key. Records are
/// buffered per (window frame, key); when the coalesced watermark passes a
/// frame end, matching pairs are emitted with the frame end as timestamp
/// and the frame is dropped.
template <typename L, typename R, typename Out>
class WindowJoinP final : public Processor {
 public:
  WindowJoinP(std::function<uint64_t(const L&)> left_key,
              std::function<uint64_t(const R&)> right_key,
              std::function<Out(const L&, const R&)> join, Nanos window_size)
      : left_key_(std::move(left_key)),
        right_key_(std::move(right_key)),
        join_(std::move(join)),
        window_size_(window_size) {}

  void Process(int ordinal, Inbox* inbox) override {
    while (!inbox->Empty()) {
      const Item* item = inbox->Peek();
      Nanos frame_end = FrameEndFor(item->timestamp);
      auto& frame = frames_[frame_end];
      if (ordinal == 0) {
        const L& l = item->payload.template As<L>();
        frame[left_key_(l)].left.push_back(l);
      } else {
        const R& r = item->payload.template As<R>();
        frame[right_key_(r)].right.push_back(r);
      }
      inbox->RemoveFront();
    }
  }

  bool TryProcessWatermark(Nanos wm) override {
    while (!frames_.empty() && frames_.begin()->first <= wm) {
      if (!FlushPending()) return false;
      auto it = frames_.begin();
      const Nanos frame_end = it->first;
      for (auto& [key, bucket] : it->second) {
        for (const L& l : bucket.left) {
          for (const R& r : bucket.right) {
            pending_.push_back(
                Item::Data<Out>(join_(l, r), frame_end, HashU64(key)));
          }
        }
      }
      frames_.erase(it);
    }
    return FlushPending();
  }

  bool SaveToSnapshot() override {
    // Buffered raw records are not snapshotted in this reproduction; jobs
    // combining WindowJoinP with a processing guarantee would lose at most
    // one open window on recovery. (Documented substitution: Jet serializes
    // operator state generically via its serializer registry.)
    return true;
  }

  Status RestoreFromSnapshot(const StateEntry& entry) override {
    (void)entry;
    return Status::OK();
  }

 private:
  struct Bucket {
    std::vector<L> left;
    std::vector<R> right;
  };

  Nanos FrameEndFor(Nanos ts) const { return (ts / window_size_) * window_size_ + window_size_; }

  bool FlushPending() {
    while (!pending_.empty()) {
      if (!ctx()->outbox->OfferToAll(pending_.front())) return false;
      pending_.pop_front();
    }
    return true;
  }

  std::function<uint64_t(const L&)> left_key_;
  std::function<uint64_t(const R&)> right_key_;
  std::function<Out(const L&, const R&)> join_;
  Nanos window_size_;
  std::map<Nanos, std::unordered_map<uint64_t, Bucket>> frames_;
  std::deque<Item> pending_;
};

}  // namespace jet::core

#endif  // JETSIM_CORE_PROCESSORS_JOIN_H_
