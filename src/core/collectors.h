#ifndef JETSIM_CORE_COLLECTORS_H_
#define JETSIM_CORE_COLLECTORS_H_

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/spsc_queue.h"
#include "core/dag.h"
#include "core/item.h"

namespace jet::core {

/// Queue type carrying items between tasklets.
using ItemQueue = SpscQueue<Item>;
using ItemQueuePtr = std::shared_ptr<ItemQueue>;

/// Delivery endpoint for a remote node on a distributed edge. `offer`
/// returns false when the channel is saturated (backpressure) and must not
/// consume the item. `release_owner` (optional) unbinds whatever
/// single-producer guard the sink's transport holds, so the producing
/// tasklet can migrate to another worker thread; it is called only at a
/// migration point, with a happens-before edge to the new worker's first
/// offer.
struct RemoteSink {
  std::function<bool(const Item&)> offer;
  std::function<void()> release_owner;

  RemoteSink() = default;
  RemoteSink(std::function<bool(const Item&)> o, std::function<void()> r)
      : offer(std::move(o)), release_owner(std::move(r)) {}
  /// Implicit from any offer callable, so plain-lambda sinks (tests,
  /// single-threaded transports with nothing to release) keep working.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, RemoteSink> &&
                std::is_invocable_r_v<bool, F, const Item&>>>
  RemoteSink(F f) : offer(std::move(f)) {}  // NOLINT(google-explicit-constructor)

  bool operator()(const Item& item) const { return offer(item); }
};

/// Producer-side routing of one output edge (the "exchange operator" of
/// §3.1): decides which consumer queue (or remote node) each item goes to.
///
/// Data items route according to the edge's RoutingPolicy; control items
/// (watermarks, barriers, done markers) must reach *every* consumer queue
/// and every remote node, which `OfferControl` handles with resumable
/// progress so a full queue never drops or duplicates a control item.
class OutboundCollector {
 public:
  /// `queues[j]` is the SPSC queue into local consumer instance j that this
  /// producer owns; `remotes[r]` delivers to the r-th remote node.
  OutboundCollector(RoutingPolicy routing, std::vector<ItemQueuePtr> queues,
                    std::vector<RemoteSink> remotes, int32_t total_parallelism,
                    int32_t node_count, int32_t node_id, int32_t isolated_index = -1)
      : routing_(routing),
        queues_(std::move(queues)),
        remotes_(std::move(remotes)),
        total_parallelism_(total_parallelism),
        node_count_(node_count),
        node_id_(node_id),
        isolated_index_(isolated_index) {}

  /// Routes one data item. Returns false (nothing delivered) when the
  /// target queue/channel is full; the caller must retry with the same
  /// item later. Broadcast of data items uses resumable progress like
  /// control items.
  bool OfferData(const Item& item) {
    switch (routing_) {
      case RoutingPolicy::kUnicast:
        return OfferUnicast(item, nullptr);
      case RoutingPolicy::kPartitioned:
        return OfferPartitioned(item, nullptr);
      case RoutingPolicy::kBroadcast:
        return OfferEverywhere(item);
      case RoutingPolicy::kIsolated:
        return TryLocal(static_cast<size_t>(isolated_index_), item, nullptr);
    }
    return false;
  }

  /// Move-aware variant of OfferData for single-target routes: the item is
  /// moved into the destination SPSC queue instead of refcount-copied. On
  /// success `item` is left moved-from; on failure it is untouched so the
  /// caller can retry. Broadcast still copies (every target needs its own
  /// reference); remote sinks copy at the network boundary.
  bool OfferDataMove(Item& item) {
    switch (routing_) {
      case RoutingPolicy::kUnicast:
        return OfferUnicast(item, &item);
      case RoutingPolicy::kPartitioned:
        return OfferPartitioned(item, &item);
      case RoutingPolicy::kBroadcast:
        return OfferEverywhere(item);
      case RoutingPolicy::kIsolated:
        return TryLocal(static_cast<size_t>(isolated_index_), item, &item);
    }
    return false;
  }

  /// Delivers a control item to every local queue and every remote node.
  /// Safe to call repeatedly with the same item until it returns true.
  bool OfferControl(const Item& item) { return OfferEverywhere(item); }

  /// Unbinds the producer guards of every local queue (and asks every
  /// remote sink to do the same) so this collector can be driven from a
  /// different worker thread. Migration-time only; the scheduler provides
  /// the happens-before edge.
  void ReleaseProducerOwnership() {
    for (auto& q : queues_) q->ReleaseProducerOwnership();
    for (auto& r : remotes_) {
      if (r.release_owner) r.release_owner();
    }
  }

  int32_t total_parallelism() const { return total_parallelism_; }

 private:
  // Delivers to local queue `index`; moves from `move_from` when non-null
  // (SpscQueue::TryPush(T&) only consumes on success), else pushes a copy.
  bool TryLocal(size_t index, const Item& item, Item* move_from) {
    if (move_from != nullptr) return queues_[index]->TryPush(*move_from);
    Item copy = item;
    return queues_[index]->TryPush(copy);
  }

  bool OfferUnicast(const Item& item, Item* move_from) {
    // Prefer the next queue round-robin, but fall through to any queue
    // with space so one slow consumer doesn't block the rest.
    const size_t n = queues_.size() + remotes_.size();
    for (size_t attempt = 0; attempt < n; ++attempt) {
      size_t idx = (cursor_ + attempt) % n;
      bool delivered = idx < queues_.size()
                           ? TryLocal(idx, item, move_from)
                           : remotes_[idx - queues_.size()].offer(item);
      if (delivered) {
        cursor_ = (idx + 1) % n;
        return true;
      }
    }
    return false;
  }

  bool OfferPartitioned(const Item& item, Item* move_from) {
    // Global consumer index across the cluster; instances are laid out
    // node-major: global = node * local_parallelism + local_index.
    auto global = static_cast<int32_t>(item.key_hash %
                                       static_cast<uint64_t>(total_parallelism_));
    int32_t local_per_node = total_parallelism_ / node_count_;
    int32_t target_node = global / local_per_node;
    int32_t local_index = global % local_per_node;
    if (target_node == node_id_ || remotes_.empty()) {
      return TryLocal(static_cast<size_t>(local_index), item, move_from);
    }
    // remotes_ are ordered by node id, skipping self.
    size_t remote_idx =
        static_cast<size_t>(target_node > node_id_ ? target_node - 1 : target_node);
    return remotes_[remote_idx].offer(item);
  }

  bool OfferEverywhere(const Item& item) {
    // Resumable broadcast: remember how far we got if some queue is full.
    const size_t n = queues_.size() + remotes_.size();
    while (broadcast_progress_ < n) {
      size_t idx = broadcast_progress_;
      bool delivered = idx < queues_.size()
                           ? TryLocal(idx, item, nullptr)
                           : remotes_[idx - queues_.size()].offer(item);
      if (!delivered) return false;
      ++broadcast_progress_;
    }
    broadcast_progress_ = 0;
    return true;
  }

  RoutingPolicy routing_;
  std::vector<ItemQueuePtr> queues_;
  std::vector<RemoteSink> remotes_;
  int32_t total_parallelism_;
  int32_t node_count_;
  int32_t node_id_;
  int32_t isolated_index_;
  size_t cursor_ = 0;
  size_t broadcast_progress_ = 0;
};

}  // namespace jet::core

#endif  // JETSIM_CORE_COLLECTORS_H_
