#include "core/execution_plan.h"

#include <unordered_map>

namespace jet::core {

Result<std::unique_ptr<ExecutionPlan>> ExecutionPlan::Build(
    const Dag& dag, const NodeInfo& node, const JobConfig& config,
    int32_t default_local_parallelism, const Clock* clock,
    const std::atomic<bool>* cancelled, RemoteEdgeFactory* remote_edges,
    SnapshotControl* snapshot_control, obs::MetricsRegistry* metrics,
    imdg::OwnershipRegistry* ownership) {
  JET_RETURN_IF_ERROR(dag.Validate());
  if (node.node_count > 1 && remote_edges == nullptr) {
    return InvalidArgumentError("multi-node plan requires a RemoteEdgeFactory");
  }
  if (default_local_parallelism < 1) {
    return InvalidArgumentError("default_local_parallelism must be >= 1");
  }

  auto plan = std::unique_ptr<ExecutionPlan>(new ExecutionPlan());
  const auto& vertices = dag.vertices();
  const auto nv = static_cast<VertexId>(vertices.size());

  std::vector<int32_t> local_p(static_cast<size_t>(nv));
  for (VertexId v = 0; v < nv; ++v) {
    int32_t p = vertices[static_cast<size_t>(v)].local_parallelism;
    local_p[static_cast<size_t>(v)] = p == -1 ? default_local_parallelism : p;
  }

  // 1. Create the SPSC queues of every local edge hop. For edge e the
  // matrix holds queues[producer_local][consumer_local]; isolated edges
  // only populate the diagonal.
  const auto& edges = dag.edges();
  std::vector<std::vector<std::vector<ItemQueuePtr>>> edge_queues(edges.size());
  for (size_t ei = 0; ei < edges.size(); ++ei) {
    const Edge& e = edges[ei];
    int32_t sp = local_p[static_cast<size_t>(e.source)];
    int32_t dp = local_p[static_cast<size_t>(e.dest)];
    auto& matrix = edge_queues[ei];
    matrix.resize(static_cast<size_t>(sp));
    for (int32_t i = 0; i < sp; ++i) {
      if (e.routing == RoutingPolicy::kIsolated) {
        matrix[static_cast<size_t>(i)].resize(static_cast<size_t>(dp));
        matrix[static_cast<size_t>(i)][static_cast<size_t>(i)] =
            std::make_shared<ItemQueue>(static_cast<size_t>(e.queue_size));
      } else {
        for (int32_t j = 0; j < dp; ++j) {
          matrix[static_cast<size_t>(i)].push_back(
              std::make_shared<ItemQueue>(static_cast<size_t>(e.queue_size)));
        }
      }
    }
  }

  // 2. Instantiate processor tasklets per vertex instance.
  for (VertexId v = 0; v < nv; ++v) {
    const Vertex& vertex = vertices[static_cast<size_t>(v)];
    const int32_t p = local_p[static_cast<size_t>(v)];
    auto inbound = dag.InboundEdges(v);
    auto outbound = dag.OutboundEdges(v);

    for (int32_t local = 0; local < p; ++local) {
      // --- input streams, in dest-ordinal order ---
      std::vector<InboundStream> inputs;
      inputs.reserve(inbound.size());
      for (const Edge* e : inbound) {
        size_t ei = static_cast<size_t>(e - edges.data());
        InboundStream stream;
        stream.ordinal = e->dest_ordinal;
        stream.priority = e->priority;
        int32_t sp = local_p[static_cast<size_t>(e->source)];
        if (e->routing == RoutingPolicy::kIsolated) {
          InboundQueue q;
          q.queue = edge_queues[ei][static_cast<size_t>(local)][static_cast<size_t>(local)];
          stream.queues.push_back(std::move(q));
        } else {
          for (int32_t i = 0; i < sp; ++i) {
            InboundQueue q;
            q.queue = edge_queues[ei][static_cast<size_t>(i)][static_cast<size_t>(local)];
            stream.queues.push_back(std::move(q));
          }
        }
        if (e->distributed && node.node_count > 1) {
          for (auto& rq : remote_edges->ReceiverQueuesFor(*e, local)) {
            InboundQueue q;
            q.queue = std::move(rq);
            stream.queues.push_back(std::move(q));
          }
        }
        inputs.push_back(std::move(stream));
      }

      // --- outbound collectors, in source-ordinal order ---
      std::vector<OutboundCollector> collectors;
      collectors.reserve(outbound.size());
      for (const Edge* e : outbound) {
        size_t ei = static_cast<size_t>(e - edges.data());
        int32_t dp = local_p[static_cast<size_t>(e->dest)];
        std::vector<ItemQueuePtr> queues;
        int32_t isolated_index = -1;
        if (e->routing == RoutingPolicy::kIsolated) {
          queues.push_back(
              edge_queues[ei][static_cast<size_t>(local)][static_cast<size_t>(local)]);
          isolated_index = 0;
        } else {
          queues = edge_queues[ei][static_cast<size_t>(local)];
        }
        std::vector<RemoteSink> remotes;
        bool distributed = e->distributed && node.node_count > 1;
        if (distributed) {
          for (int32_t n = 0; n < node.node_count; ++n) {
            if (n == node.node_id) continue;
            remotes.push_back(remote_edges->SenderFor(*e, n, local));
          }
        }
        int32_t routing_nodes = distributed ? node.node_count : 1;
        int32_t routing_node_id = distributed ? node.node_id : 0;
        int32_t total = distributed ? node.node_count * dp : dp;
        collectors.emplace_back(e->routing, std::move(queues), std::move(remotes), total,
                                routing_nodes, routing_node_id, isolated_index);
      }

      // --- metadata + context ---
      ProcessorMeta meta;
      meta.local_index = local;
      meta.local_parallelism = p;
      meta.node_id = node.node_id;
      meta.node_count = node.node_count;
      meta.total_parallelism = node.node_count * p;
      meta.global_index = node.node_id * p + local;

      ProcessorContext ctx;
      ctx.meta = meta;
      ctx.clock = clock;
      ctx.config = config;
      ctx.cancelled = cancelled;
      ctx.vertex_id = v;
      ctx.metrics = metrics;
      ctx.ownership = ownership;
      if (snapshot_control != nullptr) {
        ctx.committed_snapshot = &snapshot_control->committed;
      }

      auto processor = vertex.supplier(meta);
      if (processor == nullptr) {
        return InternalError("processor supplier returned null for vertex '" +
                             vertex.name + "'");
      }
      std::string name = vertex.name + "#" + std::to_string(meta.global_index);
      auto tasklet = std::make_unique<ProcessorTasklet>(
          std::move(name), std::move(processor), std::move(ctx), std::move(inputs),
          std::move(collectors), config.guarantee, snapshot_control);
      plan->infos_.push_back(
          TaskletInfo{tasklet.get(), v, meta.global_index, meta.total_parallelism});
      plan->tasklets_.push_back(std::move(tasklet));
    }
  }
  return plan;
}

std::vector<Tasklet*> ExecutionPlan::Tasklets() {
  std::vector<Tasklet*> out;
  out.reserve(tasklets_.size());
  for (auto& t : tasklets_) out.push_back(t.get());
  return out;
}

}  // namespace jet::core
