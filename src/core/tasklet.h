#ifndef JETSIM_CORE_TASKLET_H_
#define JETSIM_CORE_TASKLET_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/debug_check.h"
#include "core/collectors.h"
#include "core/config.h"
#include "core/processor.h"
#include "core/watermark.h"
#include "obs/metrics_registry.h"

namespace jet::core {

/// Result of one tasklet invocation.
struct TaskletProgress {
  bool made_progress = false;
  bool done = false;
};

/// A small unit of computation cooperatively scheduled on a worker thread
/// (§3.2). A tasklet call performs a bounded amount of work and returns; it
/// must never block.
class Tasklet {
 public:
  virtual ~Tasklet() = default;

  /// Called once on the owning worker thread before the first Call.
  virtual Status Init() { return Status::OK(); }

  /// Performs one slice of work.
  virtual TaskletProgress Call() = 0;

  /// Non-cooperative tasklets get a dedicated thread (§3.2).
  virtual bool IsCooperative() const { return true; }

  /// Called by the scheduler on the *current* owner thread, between two
  /// Call()s (round boundary), right before this tasklet is handed to
  /// another cooperative worker. Implementations unbind every
  /// single-thread role the tasklet holds (ownership guards on queues,
  /// inbox/outbox, transport buffers) so the new worker can bind them. The
  /// scheduler provides the happens-before edge (mailbox mutex) between
  /// this call and the new worker's first Call().
  virtual void PrepareWorkerHandoff() {}

  /// Called by the adopting worker thread right after it received this
  /// tasklet from its mailbox (the counterpart of PrepareWorkerHandoff,
  /// ordered after it by the mailbox mutex). Implementations re-register
  /// transferable per-worker state — notably single-writer partition
  /// ownership claims, which migrate *with* the tasklet.
  virtual void OnWorkerAdopted(int32_t worker_index) { (void)worker_index; }

  /// Diagnostic name.
  virtual const std::string& name() const = 0;
};

/// Writes one snapshot state entry for `vertex` under the given snapshot
/// id; returns false if the store is temporarily unable to accept it.
/// `writer_index` is the emitting instance's global index — it
/// discriminates entries of instances that hold partial state for the
/// same key (e.g. the unicast-fed accumulate stage), which would otherwise
/// overwrite each other in the store; restore combines them.
using SnapshotWriterFn = std::function<bool(int64_t snapshot_id, VertexId vertex,
                                            int32_t writer_index, StateEntry&& entry)>;

/// Shared, lock-free coordination block between a job's snapshot
/// coordinator and its tasklets.
struct SnapshotControl {
  /// Snapshot id the coordinator wants taken (monotonic; 0 = none yet).
  std::atomic<int64_t> requested{0};
  /// Number of tasklets that completed their part of `requested`.
  std::atomic<int64_t> acks{0};
  /// Highest snapshot id the coordinator has committed to the store.
  /// Acknowledging sources and transactional sinks poll this to release
  /// their pending work (§4.5).
  std::atomic<int64_t> committed{0};
  /// Highest snapshot id the coordinator's watchdog abandoned (0 = none).
  /// Tasklets still mid-way through an aborted snapshot skip the state
  /// persist step — the epoch's map is gone — but still forward the barrier
  /// so downstream alignment unblocks.
  std::atomic<int64_t> aborted{0};
  /// Writer persisting state entries (bound to job + store by the plan).
  SnapshotWriterFn write_entry;
};

/// One inbound queue of a tasklet plus its control-item bookkeeping.
struct InboundQueue {
  ItemQueuePtr queue;
  /// Barrier id received and awaiting alignment; -1 when none.
  int64_t pending_barrier = -1;
  /// Exactly-once: queue is blocked until alignment completes.
  bool blocked = false;
  bool done = false;
};

/// All queues feeding one input ordinal of a tasklet.
struct InboundStream {
  int32_t ordinal = 0;
  int32_t priority = 0;
  std::vector<InboundQueue> queues;
  bool completed_delivered = false;  // CompleteEdge already run

  bool AllDone() const {
    for (const auto& q : queues) {
      if (!q.done) return false;
    }
    return true;
  }
};

/// The tasklet driving one processor instance (§3.2): moves items between
/// the inbound SPSC queues, the processor's inbox/outbox, and the outbound
/// collectors; coalesces watermarks; aligns snapshot barriers; forwards
/// control items; and manages the processor's lifecycle
/// (restore -> process -> complete-edges -> complete -> done).
class ProcessorTasklet final : public Tasklet {
 public:
  ProcessorTasklet(std::string name, std::unique_ptr<Processor> processor,
                   ProcessorContext context, std::vector<InboundStream> inputs,
                   std::vector<OutboundCollector> collectors,
                   ProcessingGuarantee guarantee, SnapshotControl* snapshot_control);

  /// Entries to replay into the processor before any input (set when the
  /// job starts from a snapshot).
  void SetRestoreEntries(std::vector<StateEntry> entries);

  Status Init() override;
  TaskletProgress Call() override;
  bool IsCooperative() const override { return cooperative_; }
  void PrepareWorkerHandoff() override;
  void OnWorkerAdopted(int32_t worker_index) override;
  const std::string& name() const override { return name_; }

  /// Number of data items this tasklet pushed into its processor. Safe to
  /// read from any thread: single-writer registry counter.
  int64_t items_processed() const { return items_processed_.Value(); }

  /// Total Call() invocations.
  int64_t calls() const { return calls_.Value(); }

  /// Call() invocations that made no progress.
  int64_t idle_calls() const { return idle_calls_.Value(); }

  /// True once the tasklet reached its terminal state. Safe from any thread.
  bool IsDone() const { return done_flag_.load(std::memory_order_acquire); }

  /// Last snapshot id this tasklet completed.
  int64_t completed_snapshot_id() const {
    return completed_snapshot_id_.load(std::memory_order_relaxed);
  }

  /// Whether this tasklet acknowledges snapshots: tasklets with inputs do
  /// (barrier alignment), input-less tasklets only if their processor
  /// initiates snapshots (network receivers don't). The coordinator's
  /// expected-ack count sums this.
  bool ParticipatesInSnapshots() const {
    return !inputs_.empty() || processor_->InitiatesSnapshots();
  }

 private:
  enum class State {
    kRestore,
    kFinishRestore,
    kProcess,
    kWatermark,
    kSnapshotSave,
    kSnapshotBarrier,
    kCompleteEdge,
    kComplete,
    kEmitDone,
    kDone,
  };

  // Attempts to move outbox contents into collectors / the snapshot store.
  // Returns true when the outbox is fully drained.
  bool DrainOutbox();

  // Moves items from one eligible inbound queue into the inbox. Returns
  // true if any item was moved.
  bool FillInbox();

  // Handles a control item popped from queue `q` of stream `stream`;
  // returns true if draining of this queue must stop.
  bool HandleControlItem(InboundStream& stream, size_t queue_index, const Item& item);

  // Recomputes the coalesced watermark; arms pending_wm_ when it advanced.
  void UpdateCoalescedWatermark();

  // True when every active queue has the same pending barrier (alignment
  // complete) and arms the snapshot.
  void CheckBarrierAlignment();

  // Unblocks queues after a snapshot completes.
  void FinishSnapshot();

  // Steps of Call(), one per state.
  void DoRestore();
  void DoFinishRestore();
  void DoProcess();
  void DoWatermark();
  void DoSnapshotSave();
  void DoSnapshotBarrier();
  void DoCompleteEdge();
  void DoComplete();
  void DoEmitDone();

  bool AllStreamsDone() const;

  void MarkProgress() { made_progress_ = true; }

  // Registers this tasklet's instruments ("tasklet.*" counters and queue
  // depth gauges) with context_.metrics. Runs in the constructor — before
  // any worker thread exists — so registration never races with Call().
  void RegisterMetrics();

  // Refreshes the inbox/outbox depth gauges (end of every Call).
  void UpdateQueueGauges();

  std::string name_;
  std::unique_ptr<Processor> processor_;
  ProcessorContext context_;
  Outbox outbox_;
  Inbox inbox_;
  std::vector<InboundStream> inputs_;
  std::vector<OutboundCollector> collectors_;
  ProcessingGuarantee guarantee_;
  SnapshotControl* snapshot_control_;
  bool cooperative_ = true;

  State state_ = State::kProcess;
  bool made_progress_ = false;

  WatermarkCoalescer coalescer_;
  Nanos last_forwarded_wm_ = kMinWatermark;
  Nanos pending_wm_ = kMinWatermark;
  bool wm_armed_ = false;
  bool wm_processed_by_processor_ = false;

  // Snapshot machinery.
  int64_t pending_snapshot_id_ = -1;  // armed snapshot to take
  std::atomic<int64_t> completed_snapshot_id_{0};  // polled by metrics
  State resume_state_after_snapshot_ = State::kProcess;

  // Which input stream the inbox was filled from.
  int32_t current_ordinal_ = 0;
  size_t fill_cursor_ = 0;  // round-robin over (stream, queue)

  // Pending control forwarding progress (per collector).
  Item pending_control_;
  size_t control_progress_ = 0;
  bool control_armed_ = false;

  // Restore.
  std::vector<StateEntry> restore_entries_;
  size_t restore_index_ = 0;

  // Complete-edge bookkeeping.
  std::vector<int32_t> edges_to_complete_;

  // Instruments are written only by the owning worker thread but polled by
  // registry snapshots from arbitrary threads (single-writer rule: plain
  // load+store, no RMW on the hot path). When the execution has no
  // registry the handles fall back to standalone cells, so the accessors
  // above always work.
  obs::Counter items_processed_;
  obs::Counter calls_;
  obs::Counter idle_calls_;
  obs::Gauge done_gauge_;
  obs::Gauge completed_snapshot_gauge_;
  obs::Gauge inbox_depth_gauge_;
  obs::Gauge outbox_depth_gauge_;
  std::atomic<bool> done_flag_{false};

  // Binds Call()/Init() to the tasklet's assigned worker thread.
  debug::ThreadOwnershipGuard worker_guard_;

  // Global queue index base per stream (for the coalescer).
  std::vector<size_t> stream_queue_base_;
};

}  // namespace jet::core

#endif  // JETSIM_CORE_TASKLET_H_
