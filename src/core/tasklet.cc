#include "core/tasklet.h"

#include <algorithm>

#include "common/logging.h"

namespace jet::core {

namespace {
size_t TotalQueueCount(const std::vector<InboundStream>& inputs) {
  size_t n = 0;
  for (const auto& s : inputs) n += s.queues.size();
  return n;
}
}  // namespace

ProcessorTasklet::ProcessorTasklet(std::string name, std::unique_ptr<Processor> processor,
                                   ProcessorContext context,
                                   std::vector<InboundStream> inputs,
                                   std::vector<OutboundCollector> collectors,
                                   ProcessingGuarantee guarantee,
                                   SnapshotControl* snapshot_control)
    : name_(std::move(name)),
      processor_(std::move(processor)),
      context_(std::move(context)),
      outbox_(static_cast<int>(collectors.size()),
              static_cast<size_t>(context_.config.outbox_capacity)),
      inputs_(std::move(inputs)),
      collectors_(std::move(collectors)),
      guarantee_(guarantee),
      snapshot_control_(snapshot_control),
      coalescer_(TotalQueueCount(inputs_)) {
  context_.outbox = &outbox_;
  stream_queue_base_.reserve(inputs_.size());
  size_t base = 0;
  for (const auto& s : inputs_) {
    stream_queue_base_.push_back(base);
    base += s.queues.size();
  }
  if (context_.metric_tags.tasklet.empty()) context_.metric_tags.tasklet = name_;
  if (context_.metric_tags.vertex < 0) context_.metric_tags.vertex = context_.vertex_id;
  RegisterMetrics();
}

void ProcessorTasklet::RegisterMetrics() {
  obs::MetricsRegistry* registry = context_.metrics;
  if (registry == nullptr) return;  // handles keep their standalone cells
  const obs::MetricTags& tags = context_.metric_tags;
  // idle_calls before calls: snapshots read in registration order, and
  // reading the idle count first keeps "idle_calls <= calls" true in every
  // racy poll (idle is bumped after calls within one Call()).
  items_processed_ = registry->GetCounter("tasklet.items_processed", tags);
  idle_calls_ = registry->GetCounter("tasklet.idle_calls", tags);
  calls_ = registry->GetCounter("tasklet.calls", tags);
  done_gauge_ = registry->GetGauge("tasklet.done", tags);
  completed_snapshot_gauge_ = registry->GetGauge("tasklet.completed_snapshot_id", tags);
  inbox_depth_gauge_ = registry->GetGauge("tasklet.inbox_depth", tags);
  outbox_depth_gauge_ = registry->GetGauge("tasklet.outbox_depth", tags);
  // SPSC occupancy of every inbound queue, summed at poll time:
  // SizeApprox() is safe from any thread, and the shared_ptr captures keep
  // the queues alive as long as the registry can poll them.
  std::vector<ItemQueuePtr> queues;
  for (const auto& s : inputs_) {
    for (const auto& q : s.queues) queues.push_back(q.queue);
  }
  if (!queues.empty()) {
    registry->RegisterCallback("tasklet.input_queue_depth", tags,
                               [queues = std::move(queues)]() {
                                 int64_t depth = 0;
                                 for (const auto& q : queues) {
                                   depth += static_cast<int64_t>(q->SizeApprox());
                                 }
                                 return depth;
                               });
  }
}

void ProcessorTasklet::UpdateQueueGauges() {
  inbox_depth_gauge_.Set(static_cast<int64_t>(inbox_.Size()));
  int64_t outbox_depth = 0;
  for (int o = 0; o < outbox_.edge_count(); ++o) {
    outbox_depth += static_cast<int64_t>(outbox_.bucket(o).size());
  }
  outbox_depth_gauge_.Set(outbox_depth);
}

void ProcessorTasklet::SetRestoreEntries(std::vector<StateEntry> entries) {
  restore_entries_ = std::move(entries);
  restore_index_ = 0;
  state_ = State::kRestore;
}

Status ProcessorTasklet::Init() {
  JET_DCHECK_SINGLE_THREAD(worker_guard_, "ProcessorTasklet worker (Init)");
  JET_RETURN_IF_ERROR(processor_->Init(&context_));
  cooperative_ = processor_->IsCooperative();
  if (state_ != State::kRestore) {
    state_ = inputs_.empty() ? State::kComplete : State::kProcess;
  }
  return Status::OK();
}

TaskletProgress ProcessorTasklet::Call() {
  // A tasklet is pinned to one worker; Call() from a second thread is a
  // scheduling bug (§3.2's cooperative model has no work stealing).
  JET_DCHECK_SINGLE_THREAD(worker_guard_, "ProcessorTasklet worker (Call)");
  calls_.Add(1);
  made_progress_ = false;
  if (!DrainOutbox()) {
    // Downstream queues are full: backpressure. Nothing else can run until
    // the outbox drains (§3.3 "tasklets back off as soon as all their
    // output queues are full").
    if (!made_progress_) idle_calls_.Add(1);
    UpdateQueueGauges();
    return {made_progress_, false};
  }
  switch (state_) {
    case State::kRestore:
      DoRestore();
      break;
    case State::kFinishRestore:
      DoFinishRestore();
      break;
    case State::kProcess:
      DoProcess();
      break;
    case State::kWatermark:
      DoWatermark();
      break;
    case State::kSnapshotSave:
      DoSnapshotSave();
      break;
    case State::kSnapshotBarrier:
      DoSnapshotBarrier();
      break;
    case State::kCompleteEdge:
      DoCompleteEdge();
      break;
    case State::kComplete:
      DoComplete();
      break;
    case State::kEmitDone:
      DoEmitDone();
      break;
    case State::kDone:
      return {false, true};
  }
  DrainOutbox();
  if (!made_progress_) idle_calls_.Add(1);
  UpdateQueueGauges();
  return {made_progress_, state_ == State::kDone};
}

void ProcessorTasklet::PrepareWorkerHandoff() {
  // Runs on the current owner thread at a round boundary: no Call() is in
  // flight, the new worker has not touched the tasklet yet, and the
  // scheduler's mailbox mutex orders everything below before the new
  // worker's first Call(). Unbind every single-thread role this tasklet
  // holds so the new worker can bind them on first use.
  worker_guard_.Release();
  inbox_.ReleaseOwner();
  outbox_.ReleaseOwner();
  for (auto& stream : inputs_) {
    for (auto& q : stream.queues) q.queue->ReleaseConsumerOwnership();
  }
  for (auto& collector : collectors_) collector.ReleaseProducerOwnership();
  processor_->ReleaseWorkerOwnership();
}

void ProcessorTasklet::OnWorkerAdopted(int32_t worker_index) {
  // Adopting-worker half of the migration handoff: move transferable
  // per-worker state (partition ownership claims) to the new worker before
  // the first Call() touches any owned state.
  processor_->AdoptWorkerOwnership(worker_index);
}

bool ProcessorTasklet::DrainOutbox() {
  bool fully_drained = true;
  for (int o = 0; o < outbox_.edge_count(); ++o) {
    auto& bucket = outbox_.bucket(o);
    auto& collector = collectors_[static_cast<size_t>(o)];
    // Deliver a contiguous prefix, then erase it in one shot: data items
    // are *moved* into their target queue (single-target routes), so the
    // hot path never bumps the payload refcount.
    size_t delivered = 0;
    while (delivered < bucket.size()) {
      Item& front = bucket[delivered];
      bool ok = front.IsData() ? collector.OfferDataMove(front)
                               : collector.OfferControl(front);
      if (!ok) {
        fully_drained = false;
        break;
      }
      ++delivered;
      MarkProgress();
    }
    if (delivered > 0) {
      bucket.erase(bucket.begin(), bucket.begin() + static_cast<std::ptrdiff_t>(delivered));
    }
  }
  auto& snapshot_bucket = outbox_.snapshot_bucket();
  while (!snapshot_bucket.empty()) {
    if (snapshot_control_ == nullptr || !snapshot_control_->write_entry) {
      snapshot_bucket.pop_front();
      continue;
    }
    if (!snapshot_control_->write_entry(pending_snapshot_id_, context_.vertex_id,
                                        context_.meta.global_index,
                                        std::move(snapshot_bucket.front()))) {
      fully_drained = false;
      break;
    }
    snapshot_bucket.pop_front();
    MarkProgress();
  }
  return fully_drained;
}

void ProcessorTasklet::UpdateCoalescedWatermark() {
  Nanos coalesced = coalescer_.Coalesced();
  if (coalesced > last_forwarded_wm_ && (!wm_armed_ || coalesced > pending_wm_)) {
    pending_wm_ = coalesced;
    wm_armed_ = true;
    wm_processed_by_processor_ = false;
  }
}

void ProcessorTasklet::CheckBarrierAlignment() {
  if (snapshot_control_ == nullptr) return;
  int64_t id = -1;
  for (const auto& stream : inputs_) {
    for (const auto& q : stream.queues) {
      if (q.done) continue;
      if (q.pending_barrier < 0) return;  // some queue hasn't delivered it yet
      if (id < 0) {
        id = q.pending_barrier;
      } else if (q.pending_barrier != id) {
        return;  // mixed ids; wait for alignment of the newer snapshot
      }
    }
  }
  if (id < 0) return;  // all queues done; no snapshot to take
  pending_snapshot_id_ = id;
}

void ProcessorTasklet::FinishSnapshot() {
  for (auto& stream : inputs_) {
    for (auto& q : stream.queues) {
      q.pending_barrier = -1;
      q.blocked = false;
    }
  }
}

bool ProcessorTasklet::HandleControlItem(InboundStream& stream, size_t queue_index,
                                         const Item& item) {
  InboundQueue& q = stream.queues[queue_index];
  size_t global_index =
      stream_queue_base_[static_cast<size_t>(&stream - inputs_.data())] + queue_index;
  switch (item.kind) {
    case ItemKind::kWatermark:
      coalescer_.ObserveWatermark(global_index, item.timestamp);
      UpdateCoalescedWatermark();
      return true;  // watermark is a draining boundary
    case ItemKind::kBarrier:
      q.pending_barrier = item.timestamp;
      if (guarantee_ == ProcessingGuarantee::kExactlyOnce) {
        // Align: stop consuming this queue until all inputs delivered the
        // barrier (§4.4 "that channel needs to block and wait").
        q.blocked = true;
        CheckBarrierAlignment();
        return true;
      }
      // At-least-once: never block (§4.4), snapshot once all inputs saw it.
      CheckBarrierAlignment();
      return false;
    case ItemKind::kDone:
      q.done = true;
      coalescer_.MarkDone(global_index);
      UpdateCoalescedWatermark();
      CheckBarrierAlignment();
      return true;
    case ItemKind::kData:
      break;
  }
  return false;
}

bool ProcessorTasklet::FillInbox() {
  // Only streams at the minimum (= highest) priority among unfinished
  // streams are eligible; this lets hash-join build sides drain first.
  int32_t best_priority = std::numeric_limits<int32_t>::max();
  for (const auto& s : inputs_) {
    if (!s.AllDone()) best_priority = std::min(best_priority, s.priority);
  }
  if (best_priority == std::numeric_limits<int32_t>::max()) return false;

  // Enumerate eligible queues and rotate the starting point for fairness.
  struct QueueRef {
    size_t stream;
    size_t queue;
  };
  std::vector<QueueRef> eligible;
  for (size_t si = 0; si < inputs_.size(); ++si) {
    const auto& s = inputs_[si];
    if (s.priority != best_priority) continue;
    for (size_t qi = 0; qi < s.queues.size(); ++qi) {
      const auto& q = s.queues[qi];
      if (!q.done && !q.blocked) eligible.push_back({si, qi});
    }
  }
  if (eligible.empty()) return false;

  for (size_t attempt = 0; attempt < eligible.size(); ++attempt) {
    QueueRef ref = eligible[(fill_cursor_ + attempt) % eligible.size()];
    InboundStream& stream = inputs_[ref.stream];
    InboundQueue& q = stream.queues[ref.queue];
    if (q.queue->Peek() == nullptr) continue;
    fill_cursor_ = (fill_cursor_ + attempt + 1) % eligible.size();

    bool got_data = false;
    int budget = context_.config.max_inbox_batch;
    while (budget > 0) {
      // Batched refill: move the whole run of data items up to the next
      // control item (or the budget) with a single queue-index update,
      // instead of a Peek/PopFront pair per item.
      size_t moved = q.queue->DrainWhile(
          [](const Item& it) { return it.IsData(); },
          [this](Item&& it) { inbox_.Add(std::move(it)); },
          static_cast<size_t>(budget));
      budget -= static_cast<int>(moved);
      if (moved > 0) got_data = true;
      if (budget <= 0) break;
      Item* front = q.queue->Peek();
      if (front == nullptr || front->IsData()) break;  // empty or budget hit
      Item control = *front;
      q.queue->PopFront();
      --budget;
      MarkProgress();
      if (HandleControlItem(stream, ref.queue, control)) break;
    }
    if (got_data) {
      current_ordinal_ = stream.ordinal;
      MarkProgress();
      return true;
    }
    // Only control items were consumed; the control state machine will
    // react on this same Call.
    return false;
  }
  return false;
}

bool ProcessorTasklet::AllStreamsDone() const {
  for (const auto& s : inputs_) {
    if (!s.AllDone()) return false;
  }
  return true;
}

void ProcessorTasklet::DoRestore() {
  int budget = 64;
  while (budget-- > 0 && restore_index_ < restore_entries_.size()) {
    Status s = processor_->RestoreFromSnapshot(restore_entries_[restore_index_]);
    JET_CHECK(s.ok()) << "snapshot restore failed in " << name_ << ": " << s.ToString();
    ++restore_index_;
    MarkProgress();
  }
  if (restore_index_ >= restore_entries_.size()) {
    restore_entries_.clear();
    state_ = State::kFinishRestore;
  }
}

void ProcessorTasklet::DoFinishRestore() {
  if (!processor_->FinishSnapshotRestore()) return;
  MarkProgress();
  state_ = inputs_.empty() ? State::kComplete : State::kProcess;
}

void ProcessorTasklet::DoProcess() {
  if (inbox_.Empty()) {
    // Control transitions fire only at a batch boundary, i.e. when the
    // processor has fully consumed the items that preceded the control
    // item in its queue.
    if (wm_armed_) {
      state_ = State::kWatermark;
      MarkProgress();
      return;
    }
    if (pending_snapshot_id_ >= 0) {
      resume_state_after_snapshot_ = State::kProcess;
      state_ = State::kSnapshotSave;
      MarkProgress();
      return;
    }
    for (auto& s : inputs_) {
      if (s.AllDone() && !s.completed_delivered) {
        s.completed_delivered = true;
        edges_to_complete_.push_back(s.ordinal);
      }
    }
    if (!edges_to_complete_.empty()) {
      state_ = State::kCompleteEdge;
      MarkProgress();
      return;
    }
    if (AllStreamsDone()) {
      state_ = State::kComplete;
      MarkProgress();
      return;
    }
    if (!FillInbox()) {
      // Idle: give the processor its periodic time-driven slice (Jet's
      // tryProcess()).
      processor_->TryProcess();
      return;
    }
  }
  if (!inbox_.Empty()) {
    size_t before = inbox_.Size();
    processor_->Process(current_ordinal_, &inbox_);
    size_t after = inbox_.Size();
    items_processed_.Add(static_cast<int64_t>(before - after));
    if (after != before) MarkProgress();
  }
}

void ProcessorTasklet::DoWatermark() {
  if (!wm_processed_by_processor_) {
    if (!processor_->TryProcessWatermark(pending_wm_)) return;  // outbox full; retry
    wm_processed_by_processor_ = true;
    MarkProgress();
    if (!DrainOutbox()) return;
  }
  if (!control_armed_) {
    pending_control_ = Item::WatermarkAt(pending_wm_);
    control_armed_ = true;
    control_progress_ = 0;
  }
  while (control_progress_ < collectors_.size()) {
    if (!collectors_[control_progress_].OfferControl(pending_control_)) return;
    ++control_progress_;
    MarkProgress();
  }
  last_forwarded_wm_ = pending_wm_;
  wm_armed_ = false;
  control_armed_ = false;
  state_ = State::kProcess;
  MarkProgress();
}

void ProcessorTasklet::DoSnapshotSave() {
  if (snapshot_control_ != nullptr &&
      snapshot_control_->aborted.load(std::memory_order_acquire) >= pending_snapshot_id_) {
    // The watchdog abandoned this epoch: its map is gone, so skip the
    // persist step, but still run the barrier step — downstream tasklets
    // are blocked on alignment and need the barrier to pass through.
    state_ = State::kSnapshotBarrier;
    control_armed_ = false;
    MarkProgress();
    return;
  }
  context_.current_snapshot_id = pending_snapshot_id_;
  if (!processor_->SaveToSnapshot()) {
    // Partial save: the snapshot bucket drains at the top of each Call.
    MarkProgress();
    return;
  }
  if (!DrainOutbox()) return;  // flush remaining state entries
  state_ = State::kSnapshotBarrier;
  control_armed_ = false;
  MarkProgress();
}

void ProcessorTasklet::DoSnapshotBarrier() {
  if (!control_armed_) {
    pending_control_ = Item::BarrierFor(pending_snapshot_id_);
    control_armed_ = true;
    control_progress_ = 0;
  }
  while (control_progress_ < collectors_.size()) {
    if (!collectors_[control_progress_].OfferControl(pending_control_)) return;
    ++control_progress_;
    MarkProgress();
  }
  if (!processor_->OnSnapshotCompleted(pending_snapshot_id_)) return;
  control_armed_ = false;
  // jet-verify: allow(single-writer) — worker-written progress marker; the
  // coordinator's read side orders via the snapshot-control mutex
  completed_snapshot_id_.store(pending_snapshot_id_, std::memory_order_relaxed);
  completed_snapshot_gauge_.Set(pending_snapshot_id_);
  pending_snapshot_id_ = -1;
  FinishSnapshot();
  if (snapshot_control_ != nullptr) {
    snapshot_control_->acks.fetch_add(1, std::memory_order_acq_rel);
  }
  state_ = resume_state_after_snapshot_;
  MarkProgress();
}

void ProcessorTasklet::DoCompleteEdge() {
  while (!edges_to_complete_.empty()) {
    if (!processor_->CompleteEdge(edges_to_complete_.back())) return;
    edges_to_complete_.pop_back();
    MarkProgress();
  }
  state_ = State::kProcess;
}

void ProcessorTasklet::DoComplete() {
  // Source tasklets (no inputs) initiate snapshots when the coordinator
  // requests one; downstream tasklets are driven by barriers instead.
  if (snapshot_control_ != nullptr && inputs_.empty() &&
      processor_->InitiatesSnapshots()) {
    int64_t requested = snapshot_control_->requested.load(std::memory_order_acquire);
    if (requested > completed_snapshot_id_.load(std::memory_order_relaxed) &&
        requested > pending_snapshot_id_) {
      pending_snapshot_id_ = requested;
      resume_state_after_snapshot_ = State::kComplete;
      state_ = State::kSnapshotSave;
      MarkProgress();
      return;
    }
  }
  if (processor_->Complete()) {
    state_ = State::kEmitDone;
    control_armed_ = false;
    MarkProgress();
  }
}

void ProcessorTasklet::DoEmitDone() {
  if (!control_armed_) {
    pending_control_ = Item::Done();
    control_armed_ = true;
    control_progress_ = 0;
  }
  while (control_progress_ < collectors_.size()) {
    if (!collectors_[control_progress_].OfferControl(pending_control_)) return;
    ++control_progress_;
    MarkProgress();
  }
  control_armed_ = false;
  state_ = State::kDone;
  done_flag_.store(true, std::memory_order_release);
  done_gauge_.Set(1);
  MarkProgress();
}

}  // namespace jet::core
