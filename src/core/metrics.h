#ifndef JETSIM_CORE_METRICS_H_
#define JETSIM_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"

namespace jet::core {

/// Point-in-time counters of one tasklet, materialized from a registry
/// snapshot (obs::MetricsRegistry::Snapshot). The snapshot itself is
/// race-free: instruments are single-writer cells polled atomically, so
/// every value here is internally consistent and monotonic across
/// consecutive snapshots.
struct TaskletMetrics {
  std::string name;
  int64_t items_processed = 0;
  int64_t calls = 0;
  int64_t idle_calls = 0;  ///< calls that made no progress
  int64_t completed_snapshot_id = 0;
  bool done = false;

  // Queue-depth gauges (last value the owning worker published).
  int64_t inbox_depth = 0;
  int64_t input_queue_depth = 0;  ///< total items waiting in inbound SPSC queues
  int64_t outbox_depth = 0;

  // Event-loop profiler view (zero when the execution ran unprofiled).
  int64_t p50_call_nanos = 0;
  int64_t p9999_call_nanos = 0;  ///< 99.99th percentile Call() duration
  int64_t max_call_nanos = 0;
  int64_t overbudget_calls = 0;  ///< calls exceeding the cooperative budget

  /// Fraction of calls that found work (a core-utilization proxy; §3.2's
  /// cooperative model keeps idle calls cheap).
  double BusyFraction() const {
    return calls == 0 ? 0.0
                      : static_cast<double>(calls - idle_calls) /
                            static_cast<double>(calls);
  }
};

/// Point-in-time view of a running job — the data the paper's Management
/// Center web UI displays (§2: "a web UI and REST API from where users can
/// manage and monitor Jet jobs").
struct JobMetrics {
  int64_t job_id = 0;
  int64_t snapshots_taken = 0;
  int64_t last_committed_snapshot = 0;
  int32_t attempt = 1;
  std::vector<TaskletMetrics> tasklets;

  /// Total items moved through all processors.
  int64_t TotalItemsProcessed() const {
    int64_t total = 0;
    for (const auto& t : tasklets) total += t.items_processed;
    return total;
  }

  /// Renders a human-readable status report.
  std::string ToString() const;
};

/// Groups a registry snapshot's "tasklet.*" metrics into per-tasklet rows,
/// keyed by the `tasklet` tag, in first-seen order. Job-level fields
/// (job_id, snapshots, attempt) are left at defaults — callers fill them
/// from their own state. Entries whose name lacks the "tasklet." prefix
/// are ignored, so registries holding exchange/job/obs metrics too can be
/// passed as-is.
JobMetrics JobMetricsFromSnapshot(const std::vector<obs::MetricSnapshot>& snapshot);

}  // namespace jet::core

#endif  // JETSIM_CORE_METRICS_H_
