#ifndef JETSIM_CORE_METRICS_H_
#define JETSIM_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace jet::core {

/// Point-in-time counters of one tasklet. Reads are racy-by-design (the
/// worker thread owns the counters); values are monotonic so a snapshot is
/// always internally plausible.
struct TaskletMetrics {
  std::string name;
  int64_t items_processed = 0;
  int64_t calls = 0;
  int64_t idle_calls = 0;  ///< calls that made no progress
  int64_t completed_snapshot_id = 0;
  bool done = false;

  /// Fraction of calls that found work (a core-utilization proxy; §3.2's
  /// cooperative model keeps idle calls cheap).
  double BusyFraction() const {
    return calls == 0 ? 0.0
                      : static_cast<double>(calls - idle_calls) /
                            static_cast<double>(calls);
  }
};

/// Point-in-time view of a running job — the data the paper's Management
/// Center web UI displays (§2: "a web UI and REST API from where users can
/// manage and monitor Jet jobs").
struct JobMetrics {
  int64_t job_id = 0;
  int64_t snapshots_taken = 0;
  int64_t last_committed_snapshot = 0;
  int32_t attempt = 1;
  std::vector<TaskletMetrics> tasklets;

  /// Total items moved through all processors.
  int64_t TotalItemsProcessed() const {
    int64_t total = 0;
    for (const auto& t : tasklets) total += t.items_processed;
    return total;
  }

  /// Renders a human-readable status report.
  std::string ToString() const;
};

}  // namespace jet::core

#endif  // JETSIM_CORE_METRICS_H_
