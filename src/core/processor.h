#ifndef JETSIM_CORE_PROCESSOR_H_
#define JETSIM_CORE_PROCESSOR_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/clock.h"
#include "common/status.h"
#include "core/config.h"
#include "core/dag.h"
#include "core/inbox_outbox.h"
#include "core/item.h"
#include "obs/metric_id.h"
#include "obs/metrics_registry.h"

namespace jet::imdg {
class OwnershipRegistry;
}  // namespace jet::imdg

namespace jet::core {

/// Everything a processor instance can see about its execution environment.
/// Owned by the tasklet; valid from Init until the tasklet finishes.
struct ProcessorContext {
  ProcessorMeta meta;
  /// The processor writes all output (and snapshot state) here.
  Outbox* outbox = nullptr;
  /// Engine clock: wall time in the real engine, virtual time in tests.
  const Clock* clock = nullptr;
  /// Job-wide configuration.
  JobConfig config;
  /// Set when the job is cancelled; long-running Complete() loops should
  /// poll it and wind down.
  const std::atomic<bool>* cancelled = nullptr;
  /// Vertex this instance belongs to.
  VertexId vertex_id = 0;
  /// Highest committed snapshot id (§4.5); nullptr without a guarantee.
  const std::atomic<int64_t>* committed_snapshot = nullptr;
  /// Id of the snapshot currently being taken; set by the tasklet before
  /// SaveToSnapshot and valid until OnSnapshotCompleted returns.
  int64_t current_snapshot_id = 0;
  /// Member-wide metrics registry; nullptr when the execution runs without
  /// observability. Processors with interesting internals (the exchange
  /// operators) register instruments in Init() using `metric_tags`.
  obs::MetricsRegistry* metrics = nullptr;
  /// Identity ({vertex, tasklet}) the plan assigned to this instance, ready
  /// to tag instruments with.
  obs::MetricTags metric_tags;
  /// Single-writer state-ownership registry (ROADMAP item 3); nullptr when
  /// the execution runs without ownership tracking. Keyed-aggregation
  /// processors claim their partition share in their vertex's domain at
  /// Init; the scheduler transfers the claims on worker handoff via
  /// AdoptWorkerOwnership.
  imdg::OwnershipRegistry* ownership = nullptr;

  /// Highest snapshot id the coordinator committed (0 when none/unknown).
  int64_t CommittedSnapshot() const {
    return committed_snapshot == nullptr
               ? 0
               : committed_snapshot->load(std::memory_order_acquire);
  }

  bool IsCancelled() const {
    return cancelled != nullptr && cancelled->load(std::memory_order_relaxed);
  }
};

/// The unit of custom logic attached to a DAG vertex (§3.2 "Jet
/// Processors"). One instance exists per parallel slot; instances never
/// share state and are only ever called from one thread, so implementations
/// need no synchronization.
///
/// Cooperative contract: every method must complete quickly (well under a
/// millisecond of work) and never block. Methods that cannot finish —
/// because the outbox is full or more input is needed — return and are
/// called again later. Processors that must block (3rd-party sources/sinks,
/// §3.1) return false from `IsCooperative()` and run on dedicated threads.
class Processor {
 public:
  virtual ~Processor() = default;

  /// Called once before any other method. `ctx` remains valid for the
  /// processor's lifetime.
  virtual Status Init(ProcessorContext* ctx) {
    ctx_ = ctx;
    return Status::OK();
  }

  /// Consumes items from `inbox` (input edge `ordinal`), emitting results
  /// to the outbox. The processor should consume as much as it can; items
  /// left in the inbox are re-offered on the next call (do this when the
  /// outbox rejects an emission). Source processors (no input edges) keep
  /// the default no-op and do their work in Complete().
  virtual void Process(int ordinal, Inbox* inbox) {
    (void)ordinal;
    (void)inbox;
  }

  /// Called periodically when the tasklet found no input to process (and
  /// at least once between input batches), mirroring Jet's tryProcess():
  /// lets processors do time-driven work — flush buffers, release
  /// transactions whose snapshot committed, emit periodic output. Return
  /// false to be called again before any new input is offered.
  virtual bool TryProcess() { return true; }

  /// A watermark `wm` has been coalesced across all input queues: no data
  /// item with timestamp <= wm will arrive on any input. Return true when
  /// fully handled; returning false re-delivers the same watermark later
  /// (use when the outbox is full mid-flush).
  virtual bool TryProcessWatermark(Nanos wm) {
    (void)wm;
    return true;
  }

  /// Input edge `ordinal` is exhausted (all producers sent Done). Return
  /// true when done handling; false to be called again.
  virtual bool CompleteEdge(int ordinal) {
    (void)ordinal;
    return true;
  }

  /// All input edges are exhausted (sources: called immediately). Emit any
  /// final output. Return true when finished — the tasklet then completes —
  /// or false to be called again. Streaming sources return false until
  /// cancelled/deadline.
  virtual bool Complete() { return true; }

  /// Save all state to the outbox's snapshot bucket. Return true when all
  /// state has been offered; false to continue in a later call (outbox
  /// full). Called between two input batches, never concurrently with
  /// Process.
  virtual bool SaveToSnapshot() { return true; }

  /// Restore one state entry captured by SaveToSnapshot. Called before any
  /// Process call, once per entry owned by this instance's partitions.
  virtual Status RestoreFromSnapshot(const StateEntry& entry) {
    (void)entry;
    return InternalError("processor does not support snapshot restore");
  }

  /// Called after the last RestoreFromSnapshot. Return true when finished.
  virtual bool FinishSnapshotRestore() { return true; }

  /// Called after SaveToSnapshot finished and the barrier was forwarded to
  /// all local collectors, before the tasklet acknowledges the snapshot.
  /// Network sender processors use this to put the barrier on the wire.
  /// Return false to be called again (e.g. the wire is saturated).
  virtual bool OnSnapshotCompleted(int64_t snapshot_id) {
    (void)snapshot_id;
    return true;
  }

  /// Whether a tasklet with no input edges should initiate snapshots when
  /// the coordinator requests one. True for real sources; false for
  /// network receivers, which forward barriers arriving on the wire
  /// instead of creating their own.
  virtual bool InitiatesSnapshots() const { return true; }

  /// Cooperative processors run multiplexed on shared worker threads;
  /// non-cooperative ones get a dedicated thread (§3.2).
  virtual bool IsCooperative() const { return true; }

  /// The hosting tasklet is about to migrate to another worker thread
  /// (load rebalancing, round boundary only). Processors holding
  /// single-thread transport roles (e.g. the receiver's wire-buffer
  /// drainer) unbind them here; the scheduler guarantees a happens-before
  /// edge to the new worker's first call.
  virtual void ReleaseWorkerOwnership() {}

  /// The hosting tasklet has just been adopted by worker `worker_index`
  /// (counterpart of ReleaseWorkerOwnership, ordered after it). Processors
  /// holding partition-ownership claims re-register them under the new
  /// worker here, so state ownership migrates together with the tasklet.
  virtual void AdoptWorkerOwnership(int32_t worker_index) { (void)worker_index; }

 protected:
  /// Available after Init.
  ProcessorContext* ctx() const { return ctx_; }

 private:
  ProcessorContext* ctx_ = nullptr;
};

}  // namespace jet::core

#endif  // JETSIM_CORE_PROCESSOR_H_
