#ifndef JETSIM_CORE_AGGREGATE_H_
#define JETSIM_CORE_AGGREGATE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/serde.h"

namespace jet::core {

/// An aggregate operation over inputs of type `In` with accumulator `Acc`
/// and result `Res` — Jet's AggregateOperation contract.
///
/// `combine` merges two partial accumulators; it is what enables the
/// two-stage (local partial + global combine) aggregation of §3.1.
/// `deduct`, when provided, removes a previously-combined accumulator and
/// enables O(1)-per-slide sliding windows (the paper's §2.3 cites
/// worst-case-constant-time sliding aggregation); without it the window
/// processor recombines all frames each slide.
///
/// `serialize`/`deserialize` make the accumulator snapshottable.
template <typename In, typename Acc, typename Res>
struct AggregateOperation {
  std::function<Acc()> create;
  std::function<void(Acc*, const In&)> accumulate;
  std::function<void(Acc*, const Acc&)> combine;
  /// Optional inverse of combine; empty function disables the deduct path.
  std::function<void(Acc*, const Acc&)> deduct;
  std::function<Res(const Acc&)> finish;
  std::function<void(const Acc&, BytesWriter*)> serialize;
  std::function<Acc(BytesReader*)> deserialize;

  bool HasDeduct() const { return static_cast<bool>(deduct); }
};

/// Counts inputs. Supports deduct.
template <typename In>
AggregateOperation<In, int64_t, int64_t> CountingAggregate() {
  AggregateOperation<In, int64_t, int64_t> op;
  op.create = []() { return int64_t{0}; };
  op.accumulate = [](int64_t* acc, const In&) { ++*acc; };
  op.combine = [](int64_t* acc, const int64_t& other) { *acc += other; };
  op.deduct = [](int64_t* acc, const int64_t& other) { *acc -= other; };
  op.finish = [](const int64_t& acc) { return acc; };
  op.serialize = [](const int64_t& acc, BytesWriter* w) { w->WriteVarI64(acc); };
  op.deserialize = [](BytesReader* r) {
    int64_t v = 0;
    (void)r->ReadVarI64(&v);
    return v;
  };
  return op;
}

/// Sums a projected int64 of each input. Supports deduct.
template <typename In>
AggregateOperation<In, int64_t, int64_t> SummingAggregate(
    std::function<int64_t(const In&)> projector) {
  AggregateOperation<In, int64_t, int64_t> op;
  op.create = []() { return int64_t{0}; };
  op.accumulate = [projector](int64_t* acc, const In& in) { *acc += projector(in); };
  op.combine = [](int64_t* acc, const int64_t& other) { *acc += other; };
  op.deduct = [](int64_t* acc, const int64_t& other) { *acc -= other; };
  op.finish = [](const int64_t& acc) { return acc; };
  op.serialize = [](const int64_t& acc, BytesWriter* w) { w->WriteVarI64(acc); };
  op.deserialize = [](BytesReader* r) {
    int64_t v = 0;
    (void)r->ReadVarI64(&v);
    return v;
  };
  return op;
}

/// Accumulator of AveragingAggregate.
struct AvgAcc {
  int64_t sum = 0;
  int64_t count = 0;
};

/// Arithmetic mean of a projected int64. Supports deduct.
template <typename In>
AggregateOperation<In, AvgAcc, double> AveragingAggregate(
    std::function<int64_t(const In&)> projector) {
  AggregateOperation<In, AvgAcc, double> op;
  op.create = []() { return AvgAcc{}; };
  op.accumulate = [projector](AvgAcc* acc, const In& in) {
    acc->sum += projector(in);
    ++acc->count;
  };
  op.combine = [](AvgAcc* acc, const AvgAcc& other) {
    acc->sum += other.sum;
    acc->count += other.count;
  };
  op.deduct = [](AvgAcc* acc, const AvgAcc& other) {
    acc->sum -= other.sum;
    acc->count -= other.count;
  };
  op.finish = [](const AvgAcc& acc) {
    return acc.count == 0 ? 0.0
                          : static_cast<double>(acc.sum) / static_cast<double>(acc.count);
  };
  op.serialize = [](const AvgAcc& acc, BytesWriter* w) {
    w->WriteVarI64(acc.sum);
    w->WriteVarI64(acc.count);
  };
  op.deserialize = [](BytesReader* r) {
    AvgAcc acc;
    (void)r->ReadVarI64(&acc.sum);
    (void)r->ReadVarI64(&acc.count);
    return acc;
  };
  return op;
}

/// Maximum of a projected int64. No deduct (max has no inverse); sliding
/// windows recombine frames — this exercises the non-deduct path.
template <typename In>
AggregateOperation<In, int64_t, int64_t> MaxAggregate(
    std::function<int64_t(const In&)> projector) {
  AggregateOperation<In, int64_t, int64_t> op;
  op.create = []() { return std::numeric_limits<int64_t>::min(); };
  op.accumulate = [projector](int64_t* acc, const In& in) {
    *acc = std::max(*acc, projector(in));
  };
  op.combine = [](int64_t* acc, const int64_t& other) { *acc = std::max(*acc, other); };
  op.finish = [](const int64_t& acc) { return acc; };
  op.serialize = [](const int64_t& acc, BytesWriter* w) { w->WriteVarI64(acc); };
  op.deserialize = [](BytesReader* r) {
    int64_t v = 0;
    (void)r->ReadVarI64(&v);
    return v;
  };
  return op;
}

/// Keeps the last `n` projected values in arrival order (used by NEXMark
/// Q6: average price of a seller's last 10 closed auctions). No deduct.
struct LastNAcc {
  std::vector<int64_t> values;  // newest last
};

template <typename In>
AggregateOperation<In, LastNAcc, double> LastNAverageAggregate(
    std::function<int64_t(const In&)> projector, size_t n) {
  AggregateOperation<In, LastNAcc, double> op;
  op.create = []() { return LastNAcc{}; };
  op.accumulate = [projector, n](LastNAcc* acc, const In& in) {
    acc->values.push_back(projector(in));
    if (acc->values.size() > n) {
      acc->values.erase(acc->values.begin(),
                        acc->values.end() - static_cast<std::ptrdiff_t>(n));
    }
  };
  op.combine = [n](LastNAcc* acc, const LastNAcc& other) {
    acc->values.insert(acc->values.end(), other.values.begin(), other.values.end());
    if (acc->values.size() > n) {
      acc->values.erase(acc->values.begin(),
                        acc->values.end() - static_cast<std::ptrdiff_t>(n));
    }
  };
  op.finish = [](const LastNAcc& acc) {
    if (acc.values.empty()) return 0.0;
    int64_t sum = 0;
    for (int64_t v : acc.values) sum += v;
    return static_cast<double>(sum) / static_cast<double>(acc.values.size());
  };
  op.serialize = [](const LastNAcc& acc, BytesWriter* w) {
    w->WriteVarU64(acc.values.size());
    for (int64_t v : acc.values) w->WriteVarI64(v);
  };
  op.deserialize = [](BytesReader* r) {
    LastNAcc acc;
    uint64_t count = 0;
    (void)r->ReadVarU64(&count);
    acc.values.resize(count);
    for (auto& v : acc.values) (void)r->ReadVarI64(&v);
    return acc;
  };
  return op;
}

/// Minimum of a projected int64. No deduct.
template <typename In>
AggregateOperation<In, int64_t, int64_t> MinAggregate(
    std::function<int64_t(const In&)> projector) {
  AggregateOperation<In, int64_t, int64_t> op;
  op.create = []() { return std::numeric_limits<int64_t>::max(); };
  op.accumulate = [projector](int64_t* acc, const In& in) {
    *acc = std::min(*acc, projector(in));
  };
  op.combine = [](int64_t* acc, const int64_t& other) { *acc = std::min(*acc, other); };
  op.finish = [](const int64_t& acc) { return acc; };
  op.serialize = [](const int64_t& acc, BytesWriter* w) { w->WriteVarI64(acc); };
  op.deserialize = [](BytesReader* r) {
    int64_t v = 0;
    (void)r->ReadVarI64(&v);
    return v;
  };
  return op;
}

/// Accumulator of TopNAggregate: the n largest (value, tag) pairs.
struct TopNAcc {
  std::vector<std::pair<int64_t, uint64_t>> entries;  // sorted descending
};

/// Keeps the N largest projected values, with a caller-supplied tag (e.g.
/// the entity id) carried alongside — NEXMark-style "hot items" lists.
/// No deduct (evicted entries are unrecoverable).
template <typename In>
AggregateOperation<In, TopNAcc, std::vector<std::pair<int64_t, uint64_t>>> TopNAggregate(
    std::function<int64_t(const In&)> value_of, std::function<uint64_t(const In&)> tag_of,
    size_t n) {
  using Res = std::vector<std::pair<int64_t, uint64_t>>;
  auto insert = [n](TopNAcc* acc, int64_t value, uint64_t tag) {
    auto& e = acc->entries;
    auto pos = std::upper_bound(
        e.begin(), e.end(), value,
        [](int64_t v, const std::pair<int64_t, uint64_t>& p) { return v > p.first; });
    e.insert(pos, {value, tag});
    if (e.size() > n) e.pop_back();
  };
  AggregateOperation<In, TopNAcc, Res> op;
  op.create = []() { return TopNAcc{}; };
  op.accumulate = [insert, value_of, tag_of](TopNAcc* acc, const In& in) {
    insert(acc, value_of(in), tag_of(in));
  };
  op.combine = [insert](TopNAcc* acc, const TopNAcc& other) {
    for (const auto& [value, tag] : other.entries) insert(acc, value, tag);
  };
  op.finish = [](const TopNAcc& acc) { return acc.entries; };
  op.serialize = [](const TopNAcc& acc, BytesWriter* w) {
    w->WriteVarU64(acc.entries.size());
    for (const auto& [value, tag] : acc.entries) {
      w->WriteVarI64(value);
      w->WriteVarU64(tag);
    }
  };
  op.deserialize = [](BytesReader* r) {
    TopNAcc acc;
    uint64_t count = 0;
    (void)r->ReadVarU64(&count);
    acc.entries.resize(count);
    for (auto& [value, tag] : acc.entries) {
      (void)r->ReadVarI64(&value);
      (void)r->ReadVarU64(&tag);
    }
    return acc;
  };
  return op;
}

/// Accumulator of DistinctCountAggregate: the set of seen hashes.
struct DistinctAcc {
  std::vector<uint64_t> hashes;  // kept sorted + unique
};

/// Exact distinct count of a projected key (set-based; for sketch-sized
/// state use a HyperLogLog — exactness is preferable at NEXMark's 10k-key
/// scale). No deduct.
template <typename In>
AggregateOperation<In, DistinctAcc, int64_t> DistinctCountAggregate(
    std::function<uint64_t(const In&)> key_of) {
  auto insert = [](DistinctAcc* acc, uint64_t h) {
    auto pos = std::lower_bound(acc->hashes.begin(), acc->hashes.end(), h);
    if (pos == acc->hashes.end() || *pos != h) acc->hashes.insert(pos, h);
  };
  AggregateOperation<In, DistinctAcc, int64_t> op;
  op.create = []() { return DistinctAcc{}; };
  op.accumulate = [insert, key_of](DistinctAcc* acc, const In& in) {
    insert(acc, HashU64(key_of(in)));
  };
  op.combine = [insert](DistinctAcc* acc, const DistinctAcc& other) {
    for (uint64_t h : other.hashes) insert(acc, h);
  };
  op.finish = [](const DistinctAcc& acc) {
    return static_cast<int64_t>(acc.hashes.size());
  };
  op.serialize = [](const DistinctAcc& acc, BytesWriter* w) {
    w->WriteVarU64(acc.hashes.size());
    for (uint64_t h : acc.hashes) w->WriteU64(h);
  };
  op.deserialize = [](BytesReader* r) {
    DistinctAcc acc;
    uint64_t count = 0;
    (void)r->ReadVarU64(&count);
    acc.hashes.resize(count);
    for (auto& h : acc.hashes) (void)r->ReadU64(&h);
    return acc;
  };
  return op;
}

}  // namespace jet::core

#endif  // JETSIM_CORE_AGGREGATE_H_
