#include "imdg/partition_table.h"

#include <algorithm>
#include <limits>

namespace jet::imdg {

PartitionTable::PartitionTable(int32_t partition_count, int32_t backup_count)
    : partition_count_(partition_count), backup_count_(backup_count) {
  replicas_.assign(partition_count_,
                   std::vector<MemberId>(backup_count_ + 1, kInvalidMember));
}

Status PartitionTable::Assign(const std::vector<MemberId>& members) {
  if (members.empty()) return InvalidArgumentError("no members to assign partitions to");
  members_ = members;
  const auto n = static_cast<int32_t>(members_.size());
  for (PartitionId p = 0; p < partition_count_; ++p) {
    for (int32_t i = 0; i <= backup_count_; ++i) {
      replicas_[p][i] = i < n ? members_[(p + i) % n] : kInvalidMember;
    }
  }
  ++version_;
  return Status::OK();
}

std::vector<Migration> PartitionTable::AddMember(MemberId member) {
  std::vector<Migration> migrations;
  members_.push_back(member);
  const auto n = static_cast<int32_t>(members_.size());
  const int32_t target_primaries = partition_count_ / n;

  // Move primaries from the most-loaded members to the new member until it
  // holds an equal share. The displaced primary stays in the chain as the
  // first backup (it already has the data => no extra copy), and the last
  // backup is dropped.
  for (int32_t moved = 0; moved < target_primaries; ++moved) {
    // Find the member currently owning the most primaries.
    MemberId donor = kInvalidMember;
    int32_t donor_count = 0;
    for (MemberId m : members_) {
      if (m == member) continue;
      auto count = static_cast<int32_t>(PrimariesOf(m).size());
      if (count > donor_count) {
        donor_count = count;
        donor = m;
      }
    }
    if (donor == kInvalidMember || donor_count <= target_primaries) break;

    // Take one primary from the donor.
    for (PartitionId p = 0; p < partition_count_; ++p) {
      if (replicas_[p][0] != donor) continue;
      // Skip partitions that already host the new member as a backup.
      if (std::find(replicas_[p].begin(), replicas_[p].end(), member) !=
          replicas_[p].end()) {
        continue;
      }
      // Shift the chain right: [donor, b1, .., bk] -> [member, donor, b1,
      // .., b(k-1)]. Only the new primary copy moves over the wire.
      for (int32_t i = backup_count_; i >= 1; --i) {
        replicas_[p][i] = replicas_[p][i - 1];
      }
      replicas_[p][0] = member;
      migrations.push_back(Migration{p, 0, donor, member});
      break;
    }
  }
  ++version_;
  return migrations;
}

std::vector<Migration> PartitionTable::RemoveMember(MemberId member) {
  std::vector<Migration> migrations;
  members_.erase(std::remove(members_.begin(), members_.end(), member), members_.end());
  for (PartitionId p = 0; p < partition_count_; ++p) {
    auto& chain = replicas_[p];
    // Drop the failed member and shift surviving replicas up; a shift of
    // slot 0 is exactly the backup promotion of Fig. 6 (no data moves: the
    // promoted member already holds a replica).
    auto it = std::find(chain.begin(), chain.end(), member);
    if (it == chain.end()) continue;
    chain.erase(it);
    chain.push_back(kInvalidMember);
  }
  FillBackupSlots(&migrations);
  ++version_;
  return migrations;
}

void PartitionTable::FillBackupSlots(std::vector<Migration>* migrations) {
  if (members_.empty()) return;
  for (PartitionId p = 0; p < partition_count_; ++p) {
    auto& chain = replicas_[p];
    for (int32_t i = 1; i <= backup_count_; ++i) {
      if (chain[i] != kInvalidMember) continue;
      if (static_cast<size_t>(i) >= members_.size()) break;  // not enough members
      // Choose the least-loaded member not already in this chain.
      MemberId best = kInvalidMember;
      int32_t best_count = std::numeric_limits<int32_t>::max();
      for (MemberId m : members_) {
        if (std::find(chain.begin(), chain.begin() + i, m) != chain.begin() + i) {
          continue;
        }
        int32_t count = ReplicaCountOf(m);
        if (count < best_count) {
          best_count = count;
          best = m;
        }
      }
      if (best == kInvalidMember) break;
      chain[i] = best;
      migrations->push_back(Migration{p, i, chain[0], best});
    }
  }
}

MemberId PartitionTable::PrimaryFor(PartitionId partition) const {
  return replicas_[partition][0];
}

MemberId PartitionTable::ReplicaFor(PartitionId partition, int32_t replica_index) const {
  if (replica_index < 0 || replica_index > backup_count_) return kInvalidMember;
  return replicas_[partition][replica_index];
}

std::vector<PartitionId> PartitionTable::PrimariesOf(MemberId member) const {
  std::vector<PartitionId> out;
  for (PartitionId p = 0; p < partition_count_; ++p) {
    if (replicas_[p][0] == member) out.push_back(p);
  }
  return out;
}

std::vector<PartitionId> PartitionTable::ReplicasOf(MemberId member) const {
  std::vector<PartitionId> out;
  for (PartitionId p = 0; p < partition_count_; ++p) {
    if (std::find(replicas_[p].begin(), replicas_[p].end(), member) !=
        replicas_[p].end()) {
      out.push_back(p);
    }
  }
  return out;
}

int32_t PartitionTable::ReplicaCountOf(MemberId member) const {
  int32_t count = 0;
  for (const auto& chain : replicas_) {
    count += static_cast<int32_t>(std::count(chain.begin(), chain.end(), member));
  }
  return count;
}

Status PartitionTable::Validate() const {
  for (PartitionId p = 0; p < partition_count_; ++p) {
    const auto& chain = replicas_[p];
    if (!members_.empty() && chain[0] == kInvalidMember) {
      return InternalError("partition without a primary");
    }
    for (size_t i = 0; i < chain.size(); ++i) {
      if (chain[i] == kInvalidMember) continue;
      if (std::find(members_.begin(), members_.end(), chain[i]) == members_.end()) {
        return InternalError("replica assigned to a non-member");
      }
      for (size_t j = i + 1; j < chain.size(); ++j) {
        if (chain[j] != kInvalidMember && chain[i] == chain[j]) {
          return InternalError("member appears twice in a replica chain");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace jet::imdg
