#ifndef JETSIM_IMDG_PARTITION_H_
#define JETSIM_IMDG_PARTITION_H_

#include <cstdint>

#include "common/rng.h"

namespace jet::imdg {

/// Identifier of one data partition. Hazelcast's default partition count is
/// 271 (a prime, so key hashes spread evenly); we keep the same default.
using PartitionId = int32_t;

/// Identifier of a grid member (a "node" in the paper's terminology).
using MemberId = int32_t;

constexpr MemberId kInvalidMember = -1;

/// Default number of partitions in a grid (Hazelcast's default).
constexpr int32_t kDefaultPartitionCount = 271;

/// Maps a key hash to its partition, matching the partitioning used by both
/// the execution engine and the IMDG so state stays local (§4.1: "the
/// partitioning of a Jet vertex matches the partitioning of the IMap").
inline PartitionId PartitionForHash(uint64_t key_hash, int32_t partition_count) {
  return static_cast<PartitionId>(key_hash % static_cast<uint64_t>(partition_count));
}

/// Convenience: hashes a 64-bit key and maps it to a partition.
inline PartitionId PartitionForKey(uint64_t key, int32_t partition_count) {
  return PartitionForHash(HashU64(key), partition_count);
}

}  // namespace jet::imdg

#endif  // JETSIM_IMDG_PARTITION_H_
