#ifndef JETSIM_IMDG_OWNERSHIP_H_
#define JETSIM_IMDG_OWNERSHIP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "imdg/partition.h"

namespace jet::imdg {

/// Registry of single-writer partition ownership (ROADMAP item 3, after
/// Prasaad et al.: per-core state ownership beats shared locked state).
/// Each partition of a keyed-state domain is owned by at most one
/// {worker, tasklet} pair; the owner — and only the owner — may write the
/// partition's state without taking the domain's locks. The scheduler
/// migrates ownership together with the tasklet: `Transfer` re-registers a
/// claim under the adopting worker at the rebalancer's round boundary.
///
/// The table itself is a cold-path structure (claims change only at job
/// start/end and at tasklet migrations), so a plain mutex suffices; the
/// hot path never consults it — it holds an OwnedPartitionHandle instead.
class PartitionOwnershipTable {
 public:
  /// Sentinel tasklet id meaning "unowned".
  static constexpr int64_t kNoTasklet = -1;

  struct Owner {
    /// Worker thread index currently hosting the owning tasklet; -1 until
    /// the first adoption binds one.
    int32_t worker = -1;
    /// Opaque owner id (the processor instance's global index).
    int64_t tasklet = kNoTasklet;
  };

  explicit PartitionOwnershipTable(int32_t partition_count);

  PartitionOwnershipTable(const PartitionOwnershipTable&) = delete;
  PartitionOwnershipTable& operator=(const PartitionOwnershipTable&) = delete;

  /// Claims `partition` for `tasklet` (hosted on `worker`, -1 if not yet
  /// bound). Fails with kFailedPrecondition if a different tasklet owns it.
  /// Re-claiming by the same tasklet only updates the worker.
  Status Claim(PartitionId partition, int32_t worker, int64_t tasklet);

  /// Moves `tasklet`'s claim on `partition` to `new_worker` (the adoption
  /// half of the scheduler's migration handoff). Fails with
  /// kFailedPrecondition if `tasklet` does not own the partition.
  Status Transfer(PartitionId partition, int64_t tasklet, int32_t new_worker);

  /// Releases `tasklet`'s claim on `partition`. Fails if not the owner.
  Status Release(PartitionId partition, int64_t tasklet);

  /// Releases every claim held by `tasklet`; returns how many were held.
  int64_t ReleaseAllOf(int64_t tasklet);

  /// Current owner of `partition`, or nullopt when unowned.
  std::optional<Owner> OwnerOf(PartitionId partition) const;

  /// True iff `tasklet` currently owns `partition`.
  bool IsOwnedBy(PartitionId partition, int64_t tasklet) const;

  /// Number of currently-claimed partitions (`grid.owned_partitions`).
  int64_t owned_count() const {
    return owned_count_.load(std::memory_order_acquire);
  }

  /// Cumulative successful Transfer calls (`scheduler.ownership_migrations`).
  int64_t transfers() const { return transfers_.load(std::memory_order_acquire); }

  int32_t partition_count() const {
    return static_cast<int32_t>(owners_size_);
  }

 private:
  mutable jet::Mutex mutex_;
  std::vector<Owner> owners_ JET_GUARDED_BY(mutex_);
  size_t owners_size_;  // fixed at construction; readable without the mutex
  std::atomic<int64_t> owned_count_{0};
  std::atomic<int64_t> transfers_{0};
};

/// Named ownership domains. Independent keyed-state spaces (one per DAG
/// vertex, plus the grid's own partition space) each get their own table:
/// the accumulate and combine stages of a two-stage aggregation both own
/// "their" partition p, but of different state, so a single flat table
/// would report false conflicts.
class OwnershipRegistry {
 public:
  OwnershipRegistry() = default;
  OwnershipRegistry(const OwnershipRegistry&) = delete;
  OwnershipRegistry& operator=(const OwnershipRegistry&) = delete;

  /// Returns the table for `domain`, creating it with `partition_count`
  /// partitions on first use. The pointer stays valid for the registry's
  /// lifetime. Returns nullptr when an existing domain's partition count
  /// conflicts with the request.
  PartitionOwnershipTable* TableFor(const std::string& domain,
                                    int32_t partition_count);

  /// Sum of owned partitions across all domains.
  int64_t owned_count() const;

  /// Sum of ownership transfers across all domains.
  int64_t transfers() const;

 private:
  mutable jet::Mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<PartitionOwnershipTable>> tables_
      JET_GUARDED_BY(mutex_);
};

}  // namespace jet::imdg

#endif  // JETSIM_IMDG_OWNERSHIP_H_
