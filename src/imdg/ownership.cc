#include "imdg/ownership.h"

namespace jet::imdg {

PartitionOwnershipTable::PartitionOwnershipTable(int32_t partition_count)
    : owners_(static_cast<size_t>(partition_count > 0 ? partition_count : 0)),
      owners_size_(static_cast<size_t>(partition_count > 0 ? partition_count : 0)) {}

Status PartitionOwnershipTable::Claim(PartitionId partition, int32_t worker,
                                      int64_t tasklet) {
  if (partition < 0 || static_cast<size_t>(partition) >= owners_size_) {
    return InvalidArgumentError("partition out of range");
  }
  if (tasklet == kNoTasklet) return InvalidArgumentError("invalid tasklet id");
  jet::MutexLock lock(mutex_);
  Owner& owner = owners_[static_cast<size_t>(partition)];
  if (owner.tasklet != kNoTasklet && owner.tasklet != tasklet) {
    return FailedPreconditionError("partition " + std::to_string(partition) +
                                   " already owned by tasklet " +
                                   std::to_string(owner.tasklet));
  }
  if (owner.tasklet == kNoTasklet) {
    owned_count_.fetch_add(1, std::memory_order_acq_rel);
  }
  owner.tasklet = tasklet;
  owner.worker = worker;
  return Status::OK();
}

Status PartitionOwnershipTable::Transfer(PartitionId partition, int64_t tasklet,
                                         int32_t new_worker) {
  if (partition < 0 || static_cast<size_t>(partition) >= owners_size_) {
    return InvalidArgumentError("partition out of range");
  }
  jet::MutexLock lock(mutex_);
  Owner& owner = owners_[static_cast<size_t>(partition)];
  if (owner.tasklet != tasklet) {
    return FailedPreconditionError("transfer by non-owner of partition " +
                                   std::to_string(partition));
  }
  owner.worker = new_worker;
  transfers_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status PartitionOwnershipTable::Release(PartitionId partition, int64_t tasklet) {
  if (partition < 0 || static_cast<size_t>(partition) >= owners_size_) {
    return InvalidArgumentError("partition out of range");
  }
  jet::MutexLock lock(mutex_);
  Owner& owner = owners_[static_cast<size_t>(partition)];
  if (owner.tasklet != tasklet) {
    return FailedPreconditionError("release by non-owner of partition " +
                                   std::to_string(partition));
  }
  owner = Owner{};
  owned_count_.fetch_sub(1, std::memory_order_acq_rel);
  return Status::OK();
}

int64_t PartitionOwnershipTable::ReleaseAllOf(int64_t tasklet) {
  if (tasklet == kNoTasklet) return 0;
  jet::MutexLock lock(mutex_);
  int64_t released = 0;
  for (Owner& owner : owners_) {
    if (owner.tasklet != tasklet) continue;
    owner = Owner{};
    ++released;
  }
  if (released > 0) {
    owned_count_.fetch_sub(released, std::memory_order_acq_rel);
  }
  return released;
}

std::optional<PartitionOwnershipTable::Owner> PartitionOwnershipTable::OwnerOf(
    PartitionId partition) const {
  if (partition < 0 || static_cast<size_t>(partition) >= owners_size_) {
    return std::nullopt;
  }
  jet::MutexLock lock(mutex_);
  const Owner& owner = owners_[static_cast<size_t>(partition)];
  if (owner.tasklet == kNoTasklet) return std::nullopt;
  return owner;
}

bool PartitionOwnershipTable::IsOwnedBy(PartitionId partition, int64_t tasklet) const {
  if (partition < 0 || static_cast<size_t>(partition) >= owners_size_) return false;
  jet::MutexLock lock(mutex_);
  return owners_[static_cast<size_t>(partition)].tasklet == tasklet;
}

PartitionOwnershipTable* OwnershipRegistry::TableFor(const std::string& domain,
                                                     int32_t partition_count) {
  jet::MutexLock lock(mutex_);
  auto it = tables_.find(domain);
  if (it != tables_.end()) {
    if (it->second->partition_count() != partition_count) return nullptr;
    return it->second.get();
  }
  auto table = std::make_unique<PartitionOwnershipTable>(partition_count);
  PartitionOwnershipTable* raw = table.get();
  tables_[domain] = std::move(table);
  return raw;
}

int64_t OwnershipRegistry::owned_count() const {
  jet::MutexLock lock(mutex_);
  int64_t total = 0;
  for (const auto& [name, table] : tables_) total += table->owned_count();
  return total;
}

int64_t OwnershipRegistry::transfers() const {
  jet::MutexLock lock(mutex_);
  int64_t total = 0;
  for (const auto& [name, table] : tables_) total += table->transfers();
  return total;
}

}  // namespace jet::imdg
