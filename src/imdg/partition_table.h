#ifndef JETSIM_IMDG_PARTITION_TABLE_H_
#define JETSIM_IMDG_PARTITION_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "imdg/partition.h"

namespace jet::imdg {

/// One planned replica movement produced by rebalancing.
struct Migration {
  PartitionId partition = 0;
  int32_t replica_index = 0;        // 0 = primary, >=1 = backup
  MemberId source = kInvalidMember; // member currently holding the data
                                    // (kInvalidMember => fresh/empty replica)
  MemberId destination = kInvalidMember;
};

/// Assignment of every partition's replica chain to members, plus the
/// rebalancing logic used for elasticity (§4.3) and failure recovery (§4.2).
///
/// Replica index 0 is the primary; indices 1..backup_count are backups.
/// The assignment strategy is deterministic and minimizes data movement on
/// membership change, in the spirit of consistent hashing [Chord, §4.3 of
/// the paper]: on member join, only the partitions re-assigned to the new
/// member move; on member failure, each lost primary is replaced by
/// promoting its first surviving backup (Fig. 6).
class PartitionTable {
 public:
  /// Creates a table with `partition_count` partitions, each with one
  /// primary and `backup_count` backups.
  PartitionTable(int32_t partition_count, int32_t backup_count);

  /// Performs the initial assignment across `members` (must be non-empty,
  /// distinct ids). Replica chains are spread round-robin so every member
  /// owns ~partition_count/N primaries.
  Status Assign(const std::vector<MemberId>& members);

  /// Handles a member joining: re-assigns an equal share of partitions to
  /// it and returns the migrations required (data copies from the current
  /// owner to the new member). The table is updated in place.
  std::vector<Migration> AddMember(MemberId member);

  /// Handles a member failing: promotes backups to primary for partitions
  /// whose primary was on `member` (Fig. 6) and appoints replacement
  /// backups. Returns the migrations needed to re-create lost replicas
  /// (destination = the member that must receive a fresh copy, source = the
  /// member that now holds the primary).
  std::vector<Migration> RemoveMember(MemberId member);

  /// Member holding the primary replica of `partition`.
  MemberId PrimaryFor(PartitionId partition) const;

  /// Member holding the `replica_index`-th replica (0 = primary) or
  /// kInvalidMember if that replica is currently unassigned.
  MemberId ReplicaFor(PartitionId partition, int32_t replica_index) const;

  /// All partitions whose primary is on `member`.
  std::vector<PartitionId> PrimariesOf(MemberId member) const;

  /// All partitions with any replica on `member`.
  std::vector<PartitionId> ReplicasOf(MemberId member) const;

  /// Current members, in join order.
  const std::vector<MemberId>& members() const { return members_; }

  int32_t partition_count() const { return partition_count_; }
  int32_t backup_count() const { return backup_count_; }

  /// Monotonic version, bumped on every membership change. Lets caches
  /// detect staleness.
  int64_t version() const { return version_; }

  /// Validates internal invariants: every partition has a primary, no
  /// member appears twice in one replica chain. Used by tests.
  Status Validate() const;

 private:
  // Fills unassigned (kInvalidMember) backup slots, preferring the members
  // with the fewest replicas, never duplicating a member within a chain.
  // Appends a migration (from the partition's primary) for each fill.
  void FillBackupSlots(std::vector<Migration>* migrations);

  int32_t ReplicaCountOf(MemberId member) const;

  int32_t partition_count_;
  int32_t backup_count_;
  int64_t version_ = 0;
  std::vector<MemberId> members_;
  // replicas_[p] has backup_count_+1 entries: [primary, backup1, ...].
  std::vector<std::vector<MemberId>> replicas_;
};

}  // namespace jet::imdg

#endif  // JETSIM_IMDG_PARTITION_TABLE_H_
