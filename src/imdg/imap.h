#ifndef JETSIM_IMDG_IMAP_H_
#define JETSIM_IMDG_IMAP_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "common/serde.h"
#include "common/status.h"
#include "imdg/grid.h"

namespace jet::imdg {

/// Codec turning a value into bytes and back. Specialize or provide your
/// own for custom types; built-ins below cover integers, doubles and
/// strings.
template <typename T>
struct Codec;

template <>
struct Codec<int64_t> {
  static Bytes Encode(const int64_t& v) {
    BytesWriter w;
    w.WriteI64(v);
    return w.Take();
  }
  static Result<int64_t> Decode(const Bytes& b) {
    BytesReader r(b);
    int64_t v = 0;
    JET_RETURN_IF_ERROR(r.ReadI64(&v));
    return v;
  }
};

template <>
struct Codec<uint64_t> {
  static Bytes Encode(const uint64_t& v) {
    BytesWriter w;
    w.WriteU64(v);
    return w.Take();
  }
  static Result<uint64_t> Decode(const Bytes& b) {
    BytesReader r(b);
    uint64_t v = 0;
    JET_RETURN_IF_ERROR(r.ReadU64(&v));
    return v;
  }
};

template <>
struct Codec<double> {
  static Bytes Encode(const double& v) {
    BytesWriter w;
    w.WriteDouble(v);
    return w.Take();
  }
  static Result<double> Decode(const Bytes& b) {
    BytesReader r(b);
    double v = 0;
    JET_RETURN_IF_ERROR(r.ReadDouble(&v));
    return v;
  }
};

template <>
struct Codec<std::string> {
  static Bytes Encode(const std::string& v) {
    BytesWriter w;
    w.WriteString(v);
    return w.Take();
  }
  static Result<std::string> Decode(const Bytes& b) {
    BytesReader r(b);
    std::string v;
    JET_RETURN_IF_ERROR(r.ReadString(&v));
    return v;
  }
};

/// Typed view over one named map in a DataGrid, mirroring Hazelcast's IMap
/// interface (the structure Jet stores its state snapshots in, §2.4).
///
/// The IMap does not own data; it is a thin facade over the grid, so
/// several IMap instances over the same name observe the same entries.
template <typename K, typename V, typename KCodec = Codec<K>, typename VCodec = Codec<V>>
class IMap {
 public:
  /// Binds to map `name` in `grid`. The grid must outlive the IMap.
  IMap(DataGrid* grid, std::string name) : grid_(grid), name_(std::move(name)) {}

  /// Stores `value` under `key` on the primary and all backup replicas.
  Status Put(const K& key, const V& value) {
    return grid_->Put(name_, KCodec::Encode(key), VCodec::Encode(value));
  }

  /// Returns the value under `key`, or std::nullopt if absent.
  Result<std::optional<V>> Get(const K& key) const {
    auto raw = grid_->Get(name_, KCodec::Encode(key));
    if (!raw.ok()) return raw.status();
    if (!raw->has_value()) return std::optional<V>();
    auto decoded = VCodec::Decode(**raw);
    if (!decoded.ok()) return decoded.status();
    return std::optional<V>(std::move(decoded.value()));
  }

  /// Removes `key`; returns true if it was present.
  Result<bool> Remove(const K& key) { return grid_->Remove(name_, KCodec::Encode(key)); }

  /// Observes every update to this map (§4.2 "observable"): `listener` is
  /// invoked with the decoded key and value after each Put. Returns the
  /// listener id (pass to the grid's RemoveEntryListener to unregister).
  int64_t AddListener(std::function<void(const K&, const V&)> listener) {
    return grid_->AddEntryListener(
        name_, [listener](const Bytes& raw_key, const Bytes& raw_value) {
          auto key = KCodec::Decode(raw_key);
          auto value = VCodec::Decode(raw_value);
          if (key.ok() && value.ok()) listener(*key, *value);
        });
  }

  /// Returns all entries satisfying `predicate` (§4.2 "queryable").
  std::vector<std::pair<K, V>> EntriesWhere(
      const std::function<bool(const K&, const V&)>& predicate) const {
    std::vector<std::pair<K, V>> out;
    auto raw = grid_->EntriesWhere(name_, [&](const Bytes& rk, const Bytes& rv) {
      auto key = KCodec::Decode(rk);
      auto value = VCodec::Decode(rv);
      return key.ok() && value.ok() && predicate(*key, *value);
    });
    for (auto& [rk, rv] : raw) {
      auto key = KCodec::Decode(rk);
      auto value = VCodec::Decode(rv);
      if (key.ok() && value.ok()) out.emplace_back(std::move(*key), std::move(*value));
    }
    return out;
  }

  /// Pre-sizes the map's per-partition hash stores for `expected_entries`
  /// (see DataGrid::Reserve) so bulk loads avoid incremental rehashes.
  Status Reserve(int64_t expected_entries) { return grid_->Reserve(name_, expected_entries); }

  /// Number of entries.
  int64_t Size() const { return grid_->Size(name_); }

  /// Removes all entries.
  void Clear() { grid_->Clear(name_); }

  const std::string& name() const { return name_; }

 private:
  DataGrid* grid_;
  std::string name_;
};

}  // namespace jet::imdg

#endif  // JETSIM_IMDG_IMAP_H_
