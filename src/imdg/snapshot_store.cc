#include "imdg/snapshot_store.h"

#include <algorithm>

#include "imdg/imap.h"

namespace jet::imdg {

namespace {
constexpr char kMetaMap[] = "__snapshot.meta";
// Retained committed snapshots per job: the current one plus its
// predecessor, so a crash while the newest is being restored still leaves
// a usable fallback epoch.
constexpr size_t kRetainedCommitted = 2;
}  // namespace

SnapshotStore::SnapshotStore(DataGrid* grid) : grid_(grid) {}

std::string SnapshotStore::MapNameFor(JobId job, SnapshotId snapshot) {
  return "__snapshot." + std::to_string(job) + "." + std::to_string(snapshot);
}

Bytes SnapshotStore::EncodeEntryKey(int32_t vertex_id, int32_t writer_index,
                                    const Bytes& key) {
  BytesWriter w;
  w.WriteVarU64(static_cast<uint64_t>(vertex_id));
  w.WriteVarU64(static_cast<uint64_t>(writer_index));
  w.WriteBytes(key);
  return w.Take();
}

Status SnapshotStore::DecodeEntryKey(const Bytes& raw, int32_t* vertex_id,
                                     int32_t* writer_index, Bytes* key) {
  BytesReader r(raw);
  uint64_t v = 0;
  JET_RETURN_IF_ERROR(r.ReadVarU64(&v));
  *vertex_id = static_cast<int32_t>(v);
  JET_RETURN_IF_ERROR(r.ReadVarU64(&v));
  *writer_index = static_cast<int32_t>(v);
  return r.ReadBytes(key);
}

Status SnapshotStore::WriteEntry(JobId job, SnapshotId snapshot,
                                 const SnapshotStateEntry& entry) {
  {
    jet::MutexLock lock(mutex_);
    auto& live = epochs_[job].live;
    auto it = std::lower_bound(live.begin(), live.end(), snapshot);
    if (it == live.end() || *it != snapshot) live.insert(it, snapshot);
  }
  // The entry is placed in the partition of its state key so restore can
  // read exactly the partitions a processor owns. key_hash is persisted in
  // the value envelope.
  PartitionId partition =
      PartitionForHash(entry.key_hash, grid_->partition_count());
  BytesWriter value;
  value.WriteU64(entry.key_hash);
  value.WriteBytes(entry.value);
  return grid_->PutInPartition(
      MapNameFor(job, snapshot), partition,
      EncodeEntryKey(entry.vertex_id, entry.writer_index, entry.key), value.Take());
}

Status SnapshotStore::Commit(JobId job, SnapshotId snapshot) {
  IMap<int64_t, int64_t> meta(grid_, kMetaMap);
  JET_RETURN_IF_ERROR(meta.Put(job, snapshot));
  jet::MutexLock lock(mutex_);
  auto& epochs = epochs_[job];
  auto it = std::lower_bound(epochs.live.begin(), epochs.live.end(), snapshot);
  if (it == epochs.live.end() || *it != snapshot) epochs.live.insert(it, snapshot);
  it = std::lower_bound(epochs.committed.begin(), epochs.committed.end(), snapshot);
  if (it == epochs.committed.end() || *it != snapshot) epochs.committed.insert(it, snapshot);
  // Retention: keep the newest kRetainedCommitted committed epochs; every
  // older epoch — superseded committed snapshots and stale in-flight ones
  // left behind by aborted attempts — is destroyed.
  SnapshotId oldest_retained = epochs.committed.size() > kRetainedCommitted
                                   ? epochs.committed[epochs.committed.size() - kRetainedCommitted]
                                   : epochs.committed.front();
  std::vector<SnapshotId> keep;
  for (SnapshotId id : epochs.live) {
    bool is_committed =
        std::binary_search(epochs.committed.begin(), epochs.committed.end(), id);
    if ((is_committed && id >= oldest_retained) || (!is_committed && id > snapshot)) {
      keep.push_back(id);
    } else {
      grid_->Destroy(MapNameFor(job, id));
    }
  }
  epochs.live = std::move(keep);
  epochs.committed.erase(
      epochs.committed.begin(),
      std::lower_bound(epochs.committed.begin(), epochs.committed.end(), oldest_retained));
  return Status::OK();
}

void SnapshotStore::Abort(JobId job, SnapshotId snapshot) {
  jet::MutexLock lock(mutex_);
  auto it = epochs_.find(job);
  if (it == epochs_.end()) return;
  auto& epochs = it->second;
  if (std::binary_search(epochs.committed.begin(), epochs.committed.end(), snapshot)) {
    return;  // committed epochs are immutable history
  }
  auto live_it = std::lower_bound(epochs.live.begin(), epochs.live.end(), snapshot);
  if (live_it == epochs.live.end() || *live_it != snapshot) return;
  epochs.live.erase(live_it);
  grid_->Destroy(MapNameFor(job, snapshot));
  ++aborted_count_;
}

Result<std::optional<SnapshotId>> SnapshotStore::LastCommitted(JobId job) const {
  IMap<int64_t, int64_t> meta(grid_, kMetaMap);
  return meta.Get(job);
}

Status SnapshotStore::ReadEntries(
    JobId job, SnapshotId snapshot, int32_t vertex_id, PartitionId partition,
    const std::function<void(SnapshotStateEntry)>& fn) const {
  Status status = Status::OK();
  grid_->ForEachInPartition(
      MapNameFor(job, snapshot), partition,
      [&](const Bytes& raw_key, const Bytes& raw_value) {
        if (!status.ok()) return;
        SnapshotStateEntry entry;
        Status s = DecodeEntryKey(raw_key, &entry.vertex_id, &entry.writer_index, &entry.key);
        if (!s.ok()) {
          status = s;
          return;
        }
        if (entry.vertex_id != vertex_id) return;
        BytesReader r(raw_value);
        s = r.ReadU64(&entry.key_hash);
        if (s.ok()) s = r.ReadBytes(&entry.value);
        if (!s.ok()) {
          status = s;
          return;
        }
        fn(std::move(entry));
      });
  return status;
}

int64_t SnapshotStore::EntryCount(JobId job, SnapshotId snapshot) const {
  return grid_->Size(MapNameFor(job, snapshot));
}

void SnapshotStore::ClearInFlight(JobId job) {
  jet::MutexLock lock(mutex_);
  auto it = epochs_.find(job);
  if (it == epochs_.end()) return;
  auto& epochs = it->second;
  std::vector<SnapshotId> keep;
  for (SnapshotId id : epochs.live) {
    if (std::binary_search(epochs.committed.begin(), epochs.committed.end(), id)) {
      keep.push_back(id);
    } else {
      grid_->Destroy(MapNameFor(job, id));
    }
  }
  epochs.live = std::move(keep);
}

void SnapshotStore::DeleteJob(JobId job) {
  jet::MutexLock lock(mutex_);
  auto it = epochs_.find(job);
  if (it != epochs_.end()) {
    for (SnapshotId id : it->second.live) grid_->Destroy(MapNameFor(job, id));
    epochs_.erase(it);
  }
  IMap<int64_t, int64_t> meta(grid_, kMetaMap);
  meta.Remove(job);
}

std::vector<SnapshotId> SnapshotStore::LiveSnapshots(JobId job) const {
  jet::MutexLock lock(mutex_);
  auto it = epochs_.find(job);
  return it == epochs_.end() ? std::vector<SnapshotId>{} : it->second.live;
}

std::vector<SnapshotId> SnapshotStore::CommittedSnapshots(JobId job) const {
  jet::MutexLock lock(mutex_);
  auto it = epochs_.find(job);
  return it == epochs_.end() ? std::vector<SnapshotId>{} : it->second.committed;
}

int64_t SnapshotStore::aborted_count() const {
  jet::MutexLock lock(mutex_);
  return aborted_count_;
}

}  // namespace jet::imdg
