#include "imdg/snapshot_store.h"

#include "imdg/imap.h"

namespace jet::imdg {

namespace {
constexpr char kMetaMap[] = "__snapshot.meta";
}  // namespace

SnapshotStore::SnapshotStore(DataGrid* grid) : grid_(grid) {}

std::string SnapshotStore::MapNameFor(JobId job, SnapshotId snapshot) {
  return "__snapshot." + std::to_string(job) + "." + std::to_string(snapshot % 2);
}

Bytes SnapshotStore::EncodeEntryKey(int32_t vertex_id, int32_t writer_index,
                                    const Bytes& key) {
  BytesWriter w;
  w.WriteVarU64(static_cast<uint64_t>(vertex_id));
  w.WriteVarU64(static_cast<uint64_t>(writer_index));
  w.WriteBytes(key);
  return w.Take();
}

Status SnapshotStore::DecodeEntryKey(const Bytes& raw, int32_t* vertex_id,
                                     int32_t* writer_index, Bytes* key) {
  BytesReader r(raw);
  uint64_t v = 0;
  JET_RETURN_IF_ERROR(r.ReadVarU64(&v));
  *vertex_id = static_cast<int32_t>(v);
  JET_RETURN_IF_ERROR(r.ReadVarU64(&v));
  *writer_index = static_cast<int32_t>(v);
  return r.ReadBytes(key);
}

Status SnapshotStore::WriteEntry(JobId job, SnapshotId snapshot,
                                 const SnapshotStateEntry& entry) {
  // The entry is placed in the partition of its state key so restore can
  // read exactly the partitions a processor owns. key_hash is persisted in
  // the value envelope.
  PartitionId partition =
      PartitionForHash(entry.key_hash, grid_->partition_count());
  BytesWriter value;
  value.WriteU64(entry.key_hash);
  value.WriteBytes(entry.value);
  return grid_->PutInPartition(
      MapNameFor(job, snapshot), partition,
      EncodeEntryKey(entry.vertex_id, entry.writer_index, entry.key), value.Take());
}

Status SnapshotStore::Commit(JobId job, SnapshotId snapshot) {
  IMap<int64_t, int64_t> meta(grid_, kMetaMap);
  JET_RETURN_IF_ERROR(meta.Put(job, snapshot));
  // Clear the other alternating map so the next snapshot starts clean.
  grid_->Clear(MapNameFor(job, snapshot + 1));
  return Status::OK();
}

Result<std::optional<SnapshotId>> SnapshotStore::LastCommitted(JobId job) const {
  IMap<int64_t, int64_t> meta(grid_, kMetaMap);
  return meta.Get(job);
}

Status SnapshotStore::ReadEntries(
    JobId job, SnapshotId snapshot, int32_t vertex_id, PartitionId partition,
    const std::function<void(SnapshotStateEntry)>& fn) const {
  Status status = Status::OK();
  grid_->ForEachInPartition(
      MapNameFor(job, snapshot), partition,
      [&](const Bytes& raw_key, const Bytes& raw_value) {
        if (!status.ok()) return;
        SnapshotStateEntry entry;
        Status s = DecodeEntryKey(raw_key, &entry.vertex_id, &entry.writer_index, &entry.key);
        if (!s.ok()) {
          status = s;
          return;
        }
        if (entry.vertex_id != vertex_id) return;
        BytesReader r(raw_value);
        s = r.ReadU64(&entry.key_hash);
        if (s.ok()) s = r.ReadBytes(&entry.value);
        if (!s.ok()) {
          status = s;
          return;
        }
        fn(std::move(entry));
      });
  return status;
}

int64_t SnapshotStore::EntryCount(JobId job, SnapshotId snapshot) const {
  return grid_->Size(MapNameFor(job, snapshot));
}

void SnapshotStore::ClearInFlight(JobId job, SnapshotId next_snapshot) {
  grid_->Clear(MapNameFor(job, next_snapshot));
}

void SnapshotStore::DeleteJob(JobId job) {
  grid_->Destroy(MapNameFor(job, 0));
  grid_->Destroy(MapNameFor(job, 1));
  IMap<int64_t, int64_t> meta(grid_, kMetaMap);
  meta.Remove(job);
}

}  // namespace jet::imdg
