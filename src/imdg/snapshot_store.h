#ifndef JETSIM_IMDG_SNAPSHOT_STORE_H_
#define JETSIM_IMDG_SNAPSHOT_STORE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "imdg/grid.h"

namespace jet::imdg {

/// Identifies a job.
using JobId = int64_t;

/// Identifies a snapshot of a job; ids are assigned in increasing order.
using SnapshotId = int64_t;

/// One piece of processor state captured in a snapshot: the state of key
/// `key` of vertex `vertex_id`. The entry is stored in the grid partition
/// that `key_hash` maps to, so snapshot locality matches processing
/// locality (§2.4).
struct SnapshotStateEntry {
  int32_t vertex_id = 0;
  /// Global index of the processor instance that wrote the entry. Part of
  /// the storage key: several instances may hold partial state for the
  /// same logical key (two-stage aggregation), and restore combines them.
  int32_t writer_index = 0;
  uint64_t key_hash = 0;
  Bytes key;
  Bytes value;
};

/// Stores job state snapshots in the data grid (§4.4).
///
/// Entries of snapshot S of job J live in an IMap named
/// "__snapshot.<J>.<S % 2>" — like Jet, two alternating maps per job are
/// kept so a failed in-flight snapshot never corrupts the last committed
/// one. A small metadata map records the id of the last committed snapshot.
class SnapshotStore {
 public:
  /// Binds to `grid`; the grid must outlive the store.
  explicit SnapshotStore(DataGrid* grid);

  /// Writes one state entry of an in-flight snapshot.
  Status WriteEntry(JobId job, SnapshotId snapshot, const SnapshotStateEntry& entry);

  /// Marks `snapshot` as the committed snapshot of `job`; the previous
  /// snapshot's map is cleared for reuse.
  Status Commit(JobId job, SnapshotId snapshot);

  /// Id of the last committed snapshot of `job`, or std::nullopt.
  Result<std::optional<SnapshotId>> LastCommitted(JobId job) const;

  /// Streams all committed-state entries of `vertex_id` that live in grid
  /// partition `partition` to `fn`. Used on restore: each processor reads
  /// only the partitions it owns.
  Status ReadEntries(JobId job, SnapshotId snapshot, int32_t vertex_id,
                     PartitionId partition,
                     const std::function<void(SnapshotStateEntry)>& fn) const;

  /// Total entries in the given snapshot (all vertices).
  int64_t EntryCount(JobId job, SnapshotId snapshot) const;

  /// Drops all snapshot data of `job`.
  void DeleteJob(JobId job);

  /// Clears leftovers of an aborted in-flight snapshot: call with the id
  /// the restarted execution will use next, so stale entries written by the
  /// failed attempt cannot leak into the new attempt's first snapshot
  /// (the two snapshot maps alternate by parity).
  void ClearInFlight(JobId job, SnapshotId next_snapshot);

  /// Name of the IMap holding snapshot `snapshot` of `job` (two alternating
  /// maps per job).
  static std::string MapNameFor(JobId job, SnapshotId snapshot);

 private:
  static Bytes EncodeEntryKey(int32_t vertex_id, int32_t writer_index, const Bytes& key);
  static Status DecodeEntryKey(const Bytes& raw, int32_t* vertex_id, int32_t* writer_index,
                               Bytes* key);

  DataGrid* grid_;
};

}  // namespace jet::imdg

#endif  // JETSIM_IMDG_SNAPSHOT_STORE_H_
