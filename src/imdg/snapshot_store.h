#ifndef JETSIM_IMDG_SNAPSHOT_STORE_H_
#define JETSIM_IMDG_SNAPSHOT_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/serde.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "imdg/grid.h"

namespace jet::imdg {

/// Identifies a job.
using JobId = int64_t;

/// Identifies a snapshot of a job; ids are assigned in increasing order.
using SnapshotId = int64_t;

/// One piece of processor state captured in a snapshot: the state of key
/// `key` of vertex `vertex_id`. The entry is stored in the grid partition
/// that `key_hash` maps to, so snapshot locality matches processing
/// locality (§2.4).
struct SnapshotStateEntry {
  int32_t vertex_id = 0;
  /// Global index of the processor instance that wrote the entry. Part of
  /// the storage key: several instances may hold partial state for the
  /// same logical key (two-stage aggregation), and restore combines them.
  int32_t writer_index = 0;
  uint64_t key_hash = 0;
  Bytes key;
  Bytes value;
};

/// Stores job state snapshots in the data grid (§4.4).
///
/// Entries of snapshot S of job J live in an IMap named "__snapshot.<J>.<S>"
/// — one map per snapshot epoch, so a failed or aborted in-flight snapshot
/// can be dropped wholesale without ever touching the last committed one.
/// A small metadata map records the id of the last committed snapshot; the
/// last two committed snapshots are retained per job and older epochs are
/// garbage-collected on commit.
class SnapshotStore {
 public:
  /// Binds to `grid`; the grid must outlive the store.
  explicit SnapshotStore(DataGrid* grid);

  /// Writes one state entry of an in-flight snapshot.
  Status WriteEntry(JobId job, SnapshotId snapshot, const SnapshotStateEntry& entry);

  /// Marks `snapshot` as the committed snapshot of `job`. Retains the last
  /// two committed snapshots (current + previous, so a failure while the
  /// current one is being restored still leaves a fallback) and destroys
  /// every older epoch, committed or not.
  Status Commit(JobId job, SnapshotId snapshot);

  /// Drops an aborted in-flight snapshot epoch: destroys its map and
  /// forgets it. Committed snapshots cannot be aborted (no-op).
  void Abort(JobId job, SnapshotId snapshot);

  /// Id of the last committed snapshot of `job`, or std::nullopt.
  Result<std::optional<SnapshotId>> LastCommitted(JobId job) const;

  /// Streams all committed-state entries of `vertex_id` that live in grid
  /// partition `partition` to `fn`. Used on restore: each processor reads
  /// only the partitions it owns.
  Status ReadEntries(JobId job, SnapshotId snapshot, int32_t vertex_id,
                     PartitionId partition,
                     const std::function<void(SnapshotStateEntry)>& fn) const;

  /// Total entries in the given snapshot (all vertices).
  int64_t EntryCount(JobId job, SnapshotId snapshot) const;

  /// Drops all snapshot data of `job`.
  void DeleteJob(JobId job);

  /// Sweeps every uncommitted in-flight epoch of `job`: called before a
  /// restarted execution begins so stale entries written by the failed
  /// attempt cannot leak into the new attempt's snapshots.
  void ClearInFlight(JobId job);

  /// Ids of all snapshot epochs of `job` that still hold data (committed
  /// and in-flight), ascending.
  std::vector<SnapshotId> LiveSnapshots(JobId job) const;

  /// Ids of the retained committed snapshots of `job`, ascending.
  std::vector<SnapshotId> CommittedSnapshots(JobId job) const;

  /// Number of snapshot epochs dropped via Abort() since construction.
  int64_t aborted_count() const;

  /// Name of the IMap holding snapshot `snapshot` of `job`.
  static std::string MapNameFor(JobId job, SnapshotId snapshot);

 private:
  struct JobEpochs {
    std::vector<SnapshotId> live;       // ascending; every epoch with a map
    std::vector<SnapshotId> committed;  // ascending; subset of live
  };

  static Bytes EncodeEntryKey(int32_t vertex_id, int32_t writer_index, const Bytes& key);
  static Status DecodeEntryKey(const Bytes& raw, int32_t* vertex_id, int32_t* writer_index,
                               Bytes* key);

  DataGrid* grid_;
  // Epoch bookkeeping lock. Held across grid_->Destroy() calls (which take
  // the grid layout lock exclusively); safe because the grid never calls
  // back into the snapshot store, so the order mutex_ → layout_rw_ is
  // acyclic.
  mutable jet::Mutex mutex_;
  std::map<JobId, JobEpochs> epochs_ JET_GUARDED_BY(mutex_);
  int64_t aborted_count_ JET_GUARDED_BY(mutex_) = 0;
};

}  // namespace jet::imdg

#endif  // JETSIM_IMDG_SNAPSHOT_STORE_H_
